package cc

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/vm"
)

// Code generation model
//
// Expressions evaluate into a stack of scratch registers r14..r27 (depth 0
// maps to r14). The stack pointer is r1; locals live at fixed positive
// displacements from SP, exactly like the "stw r5,240(sp)" listings in the
// paper's Figure 4, so stack-shift faults manipulate these displacement
// operands. r12 is the prologue/epilogue temporary, r3..r10 carry arguments
// and results.
const (
	scratchBase = 14
	maxScratch  = 14
	regTmp      = 12
	spillBase   = 0              // spill area at SP+0
	spillBytes  = maxScratch * 4 // one slot per scratch register
	localsBase  = spillBase + spillBytes
)

// pendingCheck is a CheckInfo whose addresses are still instruction indices
// and label names; it is resolved after assembly.
type pendingCheck struct {
	fn       string
	line     int
	col      int
	op       string
	cmpIdx   int // -1 when absent
	bcIdx    int
	cond     vm.Cond
	altCond  vm.Cond
	negated  bool
	takenLbl string
	fallIdx  int // instruction index that follows the bc
	altLbl   string
	loads    []pendingLoad
}

type pendingLoad struct {
	idx      int
	elemSize int32
}

// pendingAssign mirrors AssignInfo pre-resolution.
type pendingAssign struct {
	fn         string
	line       int
	col        int
	lhs        string
	storeIdx   int
	storeByte  bool
	valueStart int
	inHeader   bool
}

type pendingFunc struct {
	name      string
	entryIdx  int
	endIdx    int
	frameSize int32
	locals    []LocalVar
	line      int
}

type pendingSpan struct {
	fn    string
	line  int
	start int
	end   int
}

// codegen holds per-compilation state.
type codegen struct {
	b       *asm.Builder
	file    *File
	nextLbl int

	checks  []pendingCheck
	assigns []pendingAssign
	funcs   []pendingFunc
	spans   []pendingSpan

	// per-function state
	fnName    string
	frameSize int32
	retLabel  string
	breakLbl  []string
	contLbl   []string
	inHeader  bool

	// array-element loads recorded since function start; relational
	// operators slice this list to attribute loads to their comparison.
	loads []pendingLoad

	strCount int
}

// Compiled is the output of Compile: a loadable program, its debug
// information, the checked AST and the original source.
type Compiled struct {
	Prog   *asm.Program
	Debug  *DebugInfo
	AST    *File
	Source string
}

// Compile parses, checks and compiles a mini-C translation unit.
func Compile(src string) (*Compiled, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := Check(f); err != nil {
		return nil, err
	}
	cg := &codegen{b: asm.NewBuilder(), file: f}
	if err := cg.genFile(); err != nil {
		return nil, err
	}
	prog, err := cg.b.Assemble("_start")
	if err != nil {
		return nil, fmt.Errorf("cc: internal assembly error: %w", err)
	}
	dbg, err := cg.resolve(prog)
	if err != nil {
		return nil, err
	}
	return &Compiled{Prog: prog, Debug: dbg, AST: f, Source: src}, nil
}

func (cg *codegen) label() string {
	cg.nextLbl++
	return fmt.Sprintf(".L%d", cg.nextLbl)
}

func (cg *codegen) emit(in vm.Inst)                  { cg.b.Emit(in) }
func (cg *codegen) branch(in vm.Inst, target string) { cg.b.EmitBranch(in, target) }

// reg maps an expression-stack depth to its scratch register.
func reg(depth int) (uint8, error) {
	if depth >= maxScratch {
		return 0, fmt.Errorf("cc: expression too complex (scratch depth %d)", depth)
	}
	return uint8(scratchBase + depth), nil
}

// genFile compiles globals, the runtime entry stub and every function.
func (cg *codegen) genFile() error {
	// Entry stub: call main, exit with its return value.
	cg.b.MustLabel("_start")
	cg.branch(vm.Inst{Op: vm.OpBl}, "main")
	main := cg.findFunc("main")
	if main != nil && main.Ret.Kind == TypeVoid {
		cg.emit(vm.Inst{Op: vm.OpAddi, RD: vm.RegRet, RA: vm.RegZero, Imm: 0})
	}
	cg.emit(vm.Inst{Op: vm.OpAddi, RD: vm.RegSys, RA: vm.RegZero, Imm: vm.SysExit})
	cg.emit(vm.Inst{Op: vm.OpSc})

	// Globals go to the data segment; their symbols must exist before any
	// function references them.
	for _, g := range cg.file.Globals {
		cg.b.AlignData()
		g.Sym = g.Name
		if err := cg.b.DataLabel(g.Sym); err != nil {
			return fmt.Errorf("cc: global %s: %w", g.Name, err)
		}
		if g.Init != nil {
			lit := g.Init.(*IntLit) // validated by sema
			switch g.Type.Kind {
			case TypeChar:
				cg.b.Bytes([]byte{byte(lit.Val)})
			default:
				cg.b.Word(uint32(lit.Val))
			}
		} else {
			cg.b.Space(uint32(g.Type.Size()))
		}
	}

	for _, fn := range cg.file.Funcs {
		if err := cg.genFunc(fn); err != nil {
			return err
		}
	}
	return nil
}

func (cg *codegen) findFunc(name string) *FuncDecl {
	for _, fn := range cg.file.Funcs {
		if fn.Name == name {
			return fn
		}
	}
	return nil
}

// layoutFrame assigns stack offsets to parameters and locals and returns the
// frame size and the LocalVar table.
func layoutFrame(fn *FuncDecl) (int32, []LocalVar) {
	cursor := int32(localsBase)
	var locals []LocalVar
	place := func(d *VarDecl) {
		size := d.Type.Size()
		align := int32(4)
		if d.Type.Kind == TypeChar {
			// Scalar chars are promoted to word slots (they are loaded and
			// stored with lwz/stw).
			size = 4
		}
		// char arrays keep byte granularity so that the [80] vs [81]
		// declaration difference shifts subsequent offsets, as in the
		// paper's Figure 4 fault; ints that follow are re-aligned to 4.
		if d.Type.Kind == TypeArray && d.Type.Elem.Size() == 1 {
			align = 1
		}
		for cursor%align != 0 {
			cursor++
		}
		d.Offset = cursor
		d.IsGlobal = false
		locals = append(locals, LocalVar{Name: d.Name, Offset: cursor, Size: size})
		cursor += size
	}
	for _, p := range fn.Params {
		place(p)
	}
	for _, l := range FuncLocals(fn)[len(fn.Params):] {
		place(l)
	}
	for cursor%4 != 0 {
		cursor++
	}
	frame := cursor + 4 // saved LR
	if frame%8 != 0 {
		frame += 4
	}
	return frame, locals
}

func (cg *codegen) genFunc(fn *FuncDecl) error {
	frame, locals := layoutFrame(fn)
	cg.fnName = fn.Name
	cg.frameSize = frame
	cg.retLabel = cg.label()
	cg.breakLbl = nil
	cg.contLbl = nil
	cg.loads = nil
	entryIdx := cg.b.Len()
	if err := cg.b.Label(fn.Name); err != nil {
		return fmt.Errorf("cc: function %s collides with another symbol: %w", fn.Name, err)
	}

	// Prologue.
	cg.emit(vm.Inst{Op: vm.OpMflr, RD: regTmp})
	cg.emit(vm.Inst{Op: vm.OpAddi, RD: vm.RegSP, RA: vm.RegSP, Imm: -frame})
	cg.emit(vm.Inst{Op: vm.OpStw, RD: regTmp, RA: vm.RegSP, Imm: frame - 4})
	for i, p := range fn.Params {
		cg.emit(vm.Inst{Op: vm.OpStw, RD: uint8(3 + i), RA: vm.RegSP, Imm: p.Offset})
	}

	if err := cg.genStmt(fn.Body, fn); err != nil {
		return err
	}

	// Fall off the end: void functions return, int functions return 0
	// (pre-ANSI C tolerance; several contest programs rely on it).
	if fn.Ret.Kind != TypeVoid {
		cg.emit(vm.Inst{Op: vm.OpAddi, RD: vm.RegRet, RA: vm.RegZero, Imm: 0})
	}
	cg.b.MustLabel(cg.retLabel)
	cg.emit(vm.Inst{Op: vm.OpLwz, RD: regTmp, RA: vm.RegSP, Imm: frame - 4})
	cg.emit(vm.Inst{Op: vm.OpMtlr, RD: regTmp})
	cg.emit(vm.Inst{Op: vm.OpAddi, RD: vm.RegSP, RA: vm.RegSP, Imm: frame})
	cg.emit(vm.Inst{Op: vm.OpBlr})

	cg.funcs = append(cg.funcs, pendingFunc{
		name: fn.Name, entryIdx: entryIdx, endIdx: cg.b.Len(),
		frameSize: frame, locals: locals, line: fn.Line,
	})
	return nil
}

// span records a statement span for line-to-address mapping.
func (cg *codegen) span(line, start int) {
	cg.spans = append(cg.spans, pendingSpan{fn: cg.fnName, line: line, start: start, end: cg.b.Len()})
}

func (cg *codegen) genStmt(s Stmt, fn *FuncDecl) error {
	switch st := s.(type) {
	case *Block:
		for _, sub := range st.Stmts {
			if err := cg.genStmt(sub, fn); err != nil {
				return err
			}
		}
		return nil
	case *DeclStmt:
		if st.Decl.Init == nil {
			return nil
		}
		start := cg.b.Len()
		if err := cg.genAssignTo(st.Decl, st.Decl.Init, st.Line); err != nil {
			return err
		}
		cg.span(st.Line, start)
		return nil
	case *ExprStmt:
		start := cg.b.Len()
		if _, err := cg.genExpr(st.E, 0); err != nil {
			return err
		}
		cg.span(st.Line, start)
		return nil
	case *If:
		start := cg.b.Len()
		lThen, lEnd := cg.label(), cg.label()
		lElse := lEnd
		if st.Else != nil {
			lElse = cg.label()
		}
		if err := cg.genCondTo(st.Cond, lThen, lElse, lThen); err != nil {
			return err
		}
		cg.span(st.Line, start)
		cg.b.MustLabel(lThen)
		if err := cg.genStmt(st.Then, fn); err != nil {
			return err
		}
		if st.Else != nil {
			cg.branch(vm.Inst{Op: vm.OpB}, lEnd)
			cg.b.MustLabel(lElse)
			if err := cg.genStmt(st.Else, fn); err != nil {
				return err
			}
		}
		cg.b.MustLabel(lEnd)
		return nil
	case *While:
		lCond, lBody, lEnd := cg.label(), cg.label(), cg.label()
		cg.b.MustLabel(lCond)
		start := cg.b.Len()
		if err := cg.genCondTo(st.Cond, lBody, lEnd, lBody); err != nil {
			return err
		}
		cg.span(st.Line, start)
		cg.b.MustLabel(lBody)
		cg.breakLbl = append(cg.breakLbl, lEnd)
		cg.contLbl = append(cg.contLbl, lCond)
		if err := cg.genStmt(st.Body, fn); err != nil {
			return err
		}
		cg.breakLbl = cg.breakLbl[:len(cg.breakLbl)-1]
		cg.contLbl = cg.contLbl[:len(cg.contLbl)-1]
		cg.branch(vm.Inst{Op: vm.OpB}, lCond)
		cg.b.MustLabel(lEnd)
		return nil
	case *For:
		lCond, lBody, lPost, lEnd := cg.label(), cg.label(), cg.label(), cg.label()
		if st.Init != nil {
			start := cg.b.Len()
			cg.inHeader = true
			err := cg.genStmt(st.Init, fn)
			cg.inHeader = false
			if err != nil {
				return err
			}
			cg.span(st.Line, start)
		}
		cg.b.MustLabel(lCond)
		if st.Cond != nil {
			start := cg.b.Len()
			if err := cg.genCondTo(st.Cond, lBody, lEnd, lBody); err != nil {
				return err
			}
			cg.span(st.Line, start)
		}
		cg.b.MustLabel(lBody)
		cg.breakLbl = append(cg.breakLbl, lEnd)
		cg.contLbl = append(cg.contLbl, lPost)
		if err := cg.genStmt(st.Body, fn); err != nil {
			return err
		}
		cg.breakLbl = cg.breakLbl[:len(cg.breakLbl)-1]
		cg.contLbl = cg.contLbl[:len(cg.contLbl)-1]
		cg.b.MustLabel(lPost)
		if st.Post != nil {
			start := cg.b.Len()
			cg.inHeader = true
			err := cg.genStmt(st.Post, fn)
			cg.inHeader = false
			if err != nil {
				return err
			}
			cg.span(st.Line, start)
		}
		cg.branch(vm.Inst{Op: vm.OpB}, lCond)
		cg.b.MustLabel(lEnd)
		return nil
	case *Return:
		start := cg.b.Len()
		if st.E != nil {
			r, err := cg.genExpr(st.E, 0)
			if err != nil {
				return err
			}
			cg.emit(vm.Inst{Op: vm.OpOr, RD: vm.RegRet, RA: r, RB: r})
		}
		cg.branch(vm.Inst{Op: vm.OpB}, cg.retLabel)
		cg.span(st.Line, start)
		return nil
	case *Break:
		cg.branch(vm.Inst{Op: vm.OpB}, cg.breakLbl[len(cg.breakLbl)-1])
		return nil
	case *Continue:
		cg.branch(vm.Inst{Op: vm.OpB}, cg.contLbl[len(cg.contLbl)-1])
		return nil
	}
	return fmt.Errorf("cc: cannot compile statement %T", s)
}

// genAssignTo compiles "decl = init" for declaration initialisers.
func (cg *codegen) genAssignTo(d *VarDecl, init Expr, line int) error {
	valueStart := cg.b.Len()
	r, err := cg.genExpr(init, 0)
	if err != nil {
		return err
	}
	storeIdx := cg.b.Len()
	cg.emit(vm.Inst{Op: vm.OpStw, RD: r, RA: vm.RegSP, Imm: d.Offset})
	cg.assigns = append(cg.assigns, pendingAssign{
		fn: cg.fnName, line: line, lhs: d.Name,
		storeIdx: storeIdx, valueStart: valueStart,
		inHeader: cg.inHeader,
	})
	return nil
}

// genExpr evaluates e into the scratch register for depth and returns that
// register.
func (cg *codegen) genExpr(e Expr, depth int) (uint8, error) {
	rd, err := reg(depth)
	if err != nil {
		return 0, err
	}
	switch ex := e.(type) {
	case *IntLit:
		cg.b.EmitLoadImm32(rd, ex.Val)
		return rd, nil
	case *StrLit:
		sym := cg.internString(ex.Val)
		cg.b.EmitLoadAddr(rd, sym)
		return rd, nil
	case *Ident:
		d := ex.Decl
		if d.Type.Kind == TypeArray {
			// Array-to-pointer decay: the value is the address.
			return rd, cg.emitVarAddr(d, rd)
		}
		if d.IsGlobal {
			if err := cg.emitVarAddr(d, rd); err != nil {
				return 0, err
			}
			if d.Type.Kind == TypeChar {
				cg.emit(vm.Inst{Op: vm.OpLbz, RD: rd, RA: rd, Imm: 0})
			} else {
				cg.emit(vm.Inst{Op: vm.OpLwz, RD: rd, RA: rd, Imm: 0})
			}
			return rd, nil
		}
		cg.emit(vm.Inst{Op: vm.OpLwz, RD: rd, RA: vm.RegSP, Imm: d.Offset})
		return rd, nil
	case *Unary:
		return cg.genUnary(ex, depth)
	case *Binary:
		switch ex.Op {
		case "==", "!=", "<", "<=", ">", ">=", "&&", "||":
			return cg.materializeCond(ex, depth)
		}
		return cg.genArith(ex, depth)
	case *Assign:
		return cg.genAssign(ex, depth)
	case *CondExpr:
		lT, lF, lEnd := cg.label(), cg.label(), cg.label()
		if err := cg.genCondTo(ex.C, lT, lF, lT); err != nil {
			return 0, err
		}
		cg.b.MustLabel(lT)
		if _, err := cg.genExpr(ex.T, depth); err != nil {
			return 0, err
		}
		cg.branch(vm.Inst{Op: vm.OpB}, lEnd)
		cg.b.MustLabel(lF)
		if _, err := cg.genExpr(ex.F, depth); err != nil {
			return 0, err
		}
		cg.b.MustLabel(lEnd)
		return rd, nil
	case *Call:
		return cg.genCall(ex, depth)
	case *Index:
		if ex.Typ.Kind == TypeArray {
			// Row of a multi-dimensional array: value is the address.
			return rd, cg.genAddr(ex, depth)
		}
		if err := cg.genAddr(ex, depth); err != nil {
			return 0, err
		}
		loadIdx := cg.b.Len()
		if ex.Typ.Size() == 1 {
			cg.emit(vm.Inst{Op: vm.OpLbz, RD: rd, RA: rd, Imm: 0})
		} else {
			cg.emit(vm.Inst{Op: vm.OpLwz, RD: rd, RA: rd, Imm: 0})
		}
		cg.loads = append(cg.loads, pendingLoad{idx: loadIdx, elemSize: ex.Typ.Size()})
		return rd, nil
	}
	return 0, fmt.Errorf("cc: cannot compile expression %T", e)
}

// emitVarAddr materialises the address of a variable into rd.
func (cg *codegen) emitVarAddr(d *VarDecl, rd uint8) error {
	if d.IsGlobal {
		cg.b.EmitLoadAddr(rd, d.Sym)
		return nil
	}
	cg.emit(vm.Inst{Op: vm.OpAddi, RD: rd, RA: vm.RegSP, Imm: d.Offset})
	return nil
}

func (cg *codegen) genUnary(ex *Unary, depth int) (uint8, error) {
	rd, err := reg(depth)
	if err != nil {
		return 0, err
	}
	switch ex.Op {
	case "-":
		if _, err := cg.genExpr(ex.X, depth); err != nil {
			return 0, err
		}
		cg.emit(vm.Inst{Op: vm.OpNeg, RD: rd, RA: rd})
		return rd, nil
	case "!":
		return cg.materializeCond(ex, depth)
	case "*":
		if _, err := cg.genExpr(ex.X, depth); err != nil {
			return 0, err
		}
		if ex.Typ.Size() == 1 {
			cg.emit(vm.Inst{Op: vm.OpLbz, RD: rd, RA: rd, Imm: 0})
		} else if ex.Typ.IsScalar() {
			cg.emit(vm.Inst{Op: vm.OpLwz, RD: rd, RA: rd, Imm: 0})
		}
		return rd, nil
	case "&":
		return rd, cg.genAddr(ex.X, depth)
	}
	return 0, fmt.Errorf("cc: unary %s", ex.Op)
}

func (cg *codegen) genArith(ex *Binary, depth int) (uint8, error) {
	rd, err := reg(depth)
	if err != nil {
		return 0, err
	}
	if _, err := cg.genExpr(ex.X, depth); err != nil {
		return 0, err
	}
	ry, err := reg(depth + 1)
	if err != nil {
		return 0, err
	}
	if _, err := cg.genExpr(ex.Y, depth+1); err != nil {
		return 0, err
	}
	xt := ex.X.TypeOf()
	yt := ex.Y.TypeOf()
	// Pointer arithmetic scaling.
	if ex.Op == "+" || ex.Op == "-" {
		if xt.Kind == TypePointer && yt.Kind != TypePointer {
			if sz := xt.Elem.Size(); sz > 1 {
				cg.emit(vm.Inst{Op: vm.OpMulli, RD: ry, RA: ry, Imm: sz})
			}
		} else if yt.Kind == TypePointer && xt.Kind != TypePointer && ex.Op == "+" {
			if sz := yt.Elem.Size(); sz > 1 {
				cg.emit(vm.Inst{Op: vm.OpMulli, RD: rd, RA: rd, Imm: sz})
			}
		}
	}
	switch ex.Op {
	case "+":
		cg.emit(vm.Inst{Op: vm.OpAdd, RD: rd, RA: rd, RB: ry})
	case "-":
		cg.emit(vm.Inst{Op: vm.OpSubf, RD: rd, RA: ry, RB: rd})
	case "*":
		cg.emit(vm.Inst{Op: vm.OpMullw, RD: rd, RA: rd, RB: ry})
	case "/":
		cg.emit(vm.Inst{Op: vm.OpDivw, RD: rd, RA: rd, RB: ry})
	case "%":
		cg.emit(vm.Inst{Op: vm.OpMod, RD: rd, RA: rd, RB: ry})
	default:
		return 0, fmt.Errorf("cc: arith %s", ex.Op)
	}
	return rd, nil
}

// genAddr computes the address of an lvalue into the scratch register for
// depth.
func (cg *codegen) genAddr(e Expr, depth int) error {
	rd, err := reg(depth)
	if err != nil {
		return err
	}
	switch ex := e.(type) {
	case *Ident:
		return cg.emitVarAddr(ex.Decl, rd)
	case *Unary:
		if ex.Op != "*" {
			return fmt.Errorf("cc: cannot take address of unary %s", ex.Op)
		}
		_, err := cg.genExpr(ex.X, depth)
		return err
	case *Index:
		// Base address.
		if err := cg.genAddr(ex.X, depth); err != nil {
			// X is not an lvalue with an address (e.g. pointer-valued
			// expression); evaluate it as a value instead.
			if _, verr := cg.genExpr(ex.X, depth); verr != nil {
				return verr
			}
		} else if xt := ex.X.TypeOf(); xt.Kind == TypePointer && !isArrayObject(ex.X) {
			// The lvalue holds a pointer; load it to get the base.
			cg.emit(vm.Inst{Op: vm.OpLwz, RD: rd, RA: rd, Imm: 0})
		}
		ri, err := reg(depth + 1)
		if err != nil {
			return err
		}
		if _, err := cg.genExpr(ex.Idx, depth+1); err != nil {
			return err
		}
		if sz := ex.Typ.Size(); sz > 1 {
			cg.emit(vm.Inst{Op: vm.OpMulli, RD: ri, RA: ri, Imm: sz})
		}
		cg.emit(vm.Inst{Op: vm.OpAdd, RD: rd, RA: rd, RB: ri})
		return nil
	}
	return fmt.Errorf("cc: not an lvalue: %T", e)
}

// isArrayObject reports whether e directly designates an array object (so
// its "address" is the array base, with no pointer load needed).
func isArrayObject(e Expr) bool {
	switch ex := e.(type) {
	case *Ident:
		return ex.Decl.Type.Kind == TypeArray
	case *Index:
		return ex.Typ.Kind == TypeArray
	}
	return false
}

// lhsString renders an assignment target for debug records.
func lhsString(e Expr) string {
	switch ex := e.(type) {
	case *Ident:
		return ex.Name
	case *Index:
		return lhsString(ex.X) + "[]"
	case *Unary:
		if ex.Op == "*" {
			return "*" + lhsString(ex.X)
		}
	}
	return "?"
}

// genAssign compiles an assignment expression, recording its AssignInfo
// fault location. The assigned value remains in the depth register.
func (cg *codegen) genAssign(ex *Assign, depth int) (uint8, error) {
	rv, err := reg(depth)
	if err != nil {
		return 0, err
	}
	valueStart := cg.b.Len()
	if _, err := cg.genExpr(ex.RHS, depth); err != nil {
		return 0, err
	}
	line, col := ex.Pos()

	// Direct store for scalar locals and globals; indirect for the rest.
	var storeIdx int
	var byteStore bool
	switch lhs := ex.LHS.(type) {
	case *Ident:
		d := lhs.Decl
		if d.IsGlobal {
			ra, err := reg(depth + 1)
			if err != nil {
				return 0, err
			}
			cg.b.EmitLoadAddr(ra, d.Sym)
			storeIdx = cg.b.Len()
			if d.Type.Kind == TypeChar {
				byteStore = true
				cg.emit(vm.Inst{Op: vm.OpStb, RD: rv, RA: ra, Imm: 0})
			} else {
				cg.emit(vm.Inst{Op: vm.OpStw, RD: rv, RA: ra, Imm: 0})
			}
		} else {
			storeIdx = cg.b.Len()
			cg.emit(vm.Inst{Op: vm.OpStw, RD: rv, RA: vm.RegSP, Imm: d.Offset})
		}
	default:
		ra, err := reg(depth + 1)
		if err != nil {
			return 0, err
		}
		if err := cg.genAddr(ex.LHS, depth+1); err != nil {
			return 0, err
		}
		storeIdx = cg.b.Len()
		if ex.Typ.Size() == 1 {
			byteStore = true
			cg.emit(vm.Inst{Op: vm.OpStb, RD: rv, RA: ra, Imm: 0})
		} else {
			cg.emit(vm.Inst{Op: vm.OpStw, RD: rv, RA: ra, Imm: 0})
		}
	}
	cg.assigns = append(cg.assigns, pendingAssign{
		fn: cg.fnName, line: line, col: col, lhs: lhsString(ex.LHS),
		storeIdx: storeIdx, storeByte: byteStore, valueStart: valueStart,
		inHeader: cg.inHeader,
	})
	return rv, nil
}

// internString places a string literal in the data segment.
func (cg *codegen) internString(s string) string {
	cg.strCount++
	sym := fmt.Sprintf(".str%d", cg.strCount)
	cg.b.AlignData()
	if err := cg.b.DataLabel(sym); err != nil {
		panic(err) // generated names cannot collide
	}
	cg.b.Bytes(append([]byte(s), 0))
	return sym
}

// condForOp returns the branch condition testing "op holds" and, negated,
// the condition testing "op does not hold".
func condForOp(op string, negated bool) (vm.Cond, bool) {
	var pos, neg vm.Cond
	switch op {
	case "<":
		pos, neg = vm.CondLT, vm.CondGE
	case "<=":
		pos, neg = vm.CondLE, vm.CondGT
	case ">":
		pos, neg = vm.CondGT, vm.CondLE
	case ">=":
		pos, neg = vm.CondGE, vm.CondLT
	case "==":
		pos, neg = vm.CondEQ, vm.CondNE
	case "!=":
		pos, neg = vm.CondNE, vm.CondEQ
	default:
		return 0, false
	}
	if negated {
		return neg, true
	}
	return pos, true
}

// connectiveAlt returns the branch condition X's bc acquires under the
// and<->or mutation: the un-negated form of X's test. Truth tests invert
// between eq and ne directly.
func (cg *codegen) connectiveAlt(x pendingCheck) (vm.Cond, bool) {
	if x.op == "truth" {
		if x.cond == vm.CondEQ {
			return vm.CondNE, true
		}
		return vm.CondEQ, true
	}
	return condForOp(x.op, !x.negated)
}

// genCondTo compiles e as a branch: control reaches label tL when e is true
// and fL when false. next names whichever of the two labels is emitted
// immediately after this code, so only one branch is needed for simple
// comparisons. It records CheckInfo fault locations for every comparison and
// connective.
func (cg *codegen) genCondTo(e Expr, tL, fL, next string) error {
	_, err := cg.genCond(e, tL, fL, next, 0)
	return err
}

// genCond is genCondTo at a given scratch depth. It returns the index into
// cg.checks of the single comparison it emitted, or -1 when the condition is
// compound or constant (used by the and/or mutation bookkeeping).
func (cg *codegen) genCond(e Expr, tL, fL, next string, depth int) (int, error) {
	switch ex := e.(type) {
	case *Binary:
		switch ex.Op {
		case "<", "<=", ">", ">=", "==", "!=":
			return cg.genRelational(ex, tL, fL, next, depth)
		case "&&":
			lMid := cg.label()
			xi, err := cg.genCond(ex.X, lMid, fL, lMid, depth)
			if err != nil {
				return -1, err
			}
			cg.b.MustLabel(lMid)
			if xi >= 0 {
				// Record the connective: mutating && to || rewrites X's
				// branch to jump to tL when X holds.
				x := cg.checks[xi]
				if altCond, ok := cg.connectiveAlt(x); ok {
					line, col := ex.Pos()
					cg.checks = append(cg.checks, pendingCheck{
						fn: cg.fnName, line: line, col: col, op: "&&",
						cmpIdx: x.cmpIdx, bcIdx: x.bcIdx, cond: x.cond, altCond: altCond,
						negated: x.negated, takenLbl: x.takenLbl, fallIdx: x.fallIdx,
						altLbl: tL,
					})
				}
			}
			if _, err := cg.genCond(ex.Y, tL, fL, next, depth); err != nil {
				return -1, err
			}
			return -1, nil
		case "||":
			lMid := cg.label()
			xi, err := cg.genCond(ex.X, tL, lMid, lMid, depth)
			if err != nil {
				return -1, err
			}
			cg.b.MustLabel(lMid)
			if xi >= 0 {
				x := cg.checks[xi]
				if altCond, ok := cg.connectiveAlt(x); ok {
					line, col := ex.Pos()
					cg.checks = append(cg.checks, pendingCheck{
						fn: cg.fnName, line: line, col: col, op: "||",
						cmpIdx: x.cmpIdx, bcIdx: x.bcIdx, cond: x.cond, altCond: altCond,
						negated: x.negated, takenLbl: x.takenLbl, fallIdx: x.fallIdx,
						altLbl: fL,
					})
				}
			}
			if _, err := cg.genCond(ex.Y, tL, fL, next, depth); err != nil {
				return -1, err
			}
			return -1, nil
		}
	case *Unary:
		if ex.Op == "!" {
			// Swap the true/false targets; next still names the same
			// physical label.
			return cg.genCond(ex.X, fL, tL, next, depth)
		}
	case *IntLit:
		// Constant condition: unconditional control flow, no check exists
		// at machine level.
		if ex.Val != 0 {
			if next != tL {
				cg.branch(vm.Inst{Op: vm.OpB}, tL)
			}
		} else {
			if next != fL {
				cg.branch(vm.Inst{Op: vm.OpB}, fL)
			}
		}
		return -1, nil
	}
	// Generic truth test: e != 0.
	rv, err := cg.genExpr(e, depth)
	if err != nil {
		return -1, err
	}
	line, col := e.Pos()
	cmpIdx := cg.b.Len()
	cg.emit(vm.Inst{Op: vm.OpCmpwi, RD: 0, RA: rv, Imm: 0})
	bcIdx := cg.b.Len()
	var cond vm.Cond
	var taken string
	negated := false
	if next == fL {
		cond, taken = vm.CondNE, tL
	} else {
		cond, taken, negated = vm.CondEQ, fL, true
	}
	cg.branch(vm.Inst{Op: vm.OpBc, RD: uint8(cond)}, taken)
	ci := len(cg.checks)
	cg.checks = append(cg.checks, pendingCheck{
		fn: cg.fnName, line: line, col: col, op: "truth",
		cmpIdx: cmpIdx, bcIdx: bcIdx, cond: cond, negated: negated,
		takenLbl: taken, fallIdx: cg.b.Len(),
	})
	return ci, nil
}

// genRelational emits cmp + bc for a comparison and records its CheckInfo.
func (cg *codegen) genRelational(ex *Binary, tL, fL, next string, depth int) (int, error) {
	loadLo := len(cg.loads)
	rx, err := reg(depth)
	if err != nil {
		return -1, err
	}
	if _, err := cg.genExpr(ex.X, depth); err != nil {
		return -1, err
	}
	ry, err := reg(depth + 1)
	if err != nil {
		return -1, err
	}
	if _, err := cg.genExpr(ex.Y, depth+1); err != nil {
		return -1, err
	}
	loadHi := len(cg.loads)
	line, col := ex.Pos()
	cmpIdx := cg.b.Len()
	cg.emit(vm.Inst{Op: vm.OpCmpw, RD: 0, RA: rx, RB: ry})
	bcIdx := cg.b.Len()
	negated := next == tL
	var taken string
	if negated {
		taken = fL
	} else {
		taken = tL
	}
	cond, _ := condForOp(ex.Op, negated)
	cg.branch(vm.Inst{Op: vm.OpBc, RD: uint8(cond)}, taken)
	ci := len(cg.checks)
	cg.checks = append(cg.checks, pendingCheck{
		fn: cg.fnName, line: line, col: col, op: ex.Op,
		cmpIdx: cmpIdx, bcIdx: bcIdx, cond: cond, negated: negated,
		takenLbl: taken, fallIdx: cg.b.Len(),
		loads: append([]pendingLoad(nil), cg.loads[loadLo:loadHi]...),
	})
	return ci, nil
}

// materializeCond evaluates a boolean expression to 0/1 in the depth
// register.
func (cg *codegen) materializeCond(e Expr, depth int) (uint8, error) {
	rd, err := reg(depth)
	if err != nil {
		return 0, err
	}
	lT, lF, lEnd := cg.label(), cg.label(), cg.label()
	if _, err := cg.genCond(e, lT, lF, lT, depth); err != nil {
		return 0, err
	}
	cg.b.MustLabel(lT)
	cg.emit(vm.Inst{Op: vm.OpAddi, RD: rd, RA: vm.RegZero, Imm: 1})
	cg.branch(vm.Inst{Op: vm.OpB}, lEnd)
	cg.b.MustLabel(lF)
	cg.emit(vm.Inst{Op: vm.OpAddi, RD: rd, RA: vm.RegZero, Imm: 0})
	cg.b.MustLabel(lEnd)
	return rd, nil
}

// genCall compiles a call to a user function or builtin.
func (cg *codegen) genCall(ex *Call, depth int) (uint8, error) {
	rd, err := reg(depth)
	if err != nil {
		return 0, err
	}
	if _, ok := builtins[ex.Name]; ok {
		return cg.genBuiltin(ex, depth)
	}
	// Evaluate arguments at depth, depth+1, ...
	for i, a := range ex.Args {
		if _, err := cg.genExpr(a, depth+i); err != nil {
			return 0, err
		}
	}
	// Spill live scratch registers below depth.
	for i := 0; i < depth; i++ {
		cg.emit(vm.Inst{Op: vm.OpStw, RD: uint8(scratchBase + i), RA: vm.RegSP, Imm: int32(spillBase + i*4)})
	}
	// Move arguments into r3..; scratch and argument ranges are disjoint.
	for i := range ex.Args {
		ra := uint8(scratchBase + depth + i)
		cg.emit(vm.Inst{Op: vm.OpOr, RD: uint8(3 + i), RA: ra, RB: ra})
	}
	cg.branch(vm.Inst{Op: vm.OpBl}, ex.Name)
	cg.emit(vm.Inst{Op: vm.OpOr, RD: rd, RA: vm.RegRet, RB: vm.RegRet})
	for i := 0; i < depth; i++ {
		cg.emit(vm.Inst{Op: vm.OpLwz, RD: uint8(scratchBase + i), RA: vm.RegSP, Imm: int32(spillBase + i*4)})
	}
	return rd, nil
}

func (cg *codegen) genBuiltin(ex *Call, depth int) (uint8, error) {
	rd, err := reg(depth)
	if err != nil {
		return 0, err
	}
	emitSc := func(n int32) {
		cg.emit(vm.Inst{Op: vm.OpAddi, RD: vm.RegSys, RA: vm.RegZero, Imm: n})
		cg.emit(vm.Inst{Op: vm.OpSc})
	}
	switch ex.Name {
	case "read_int":
		emitSc(vm.SysReadInt)
		cg.emit(vm.Inst{Op: vm.OpOr, RD: rd, RA: vm.RegRet, RB: vm.RegRet})
	case "read_char":
		emitSc(vm.SysReadChar)
		cg.emit(vm.Inst{Op: vm.OpOr, RD: rd, RA: vm.RegRet, RB: vm.RegRet})
	case "print_int", "print_char", "exit", "malloc":
		if _, err := cg.genExpr(ex.Args[0], depth); err != nil {
			return 0, err
		}
		cg.emit(vm.Inst{Op: vm.OpOr, RD: vm.RegRet, RA: rd, RB: rd})
		switch ex.Name {
		case "print_int":
			emitSc(vm.SysWriteInt)
		case "print_char":
			emitSc(vm.SysWriteChar)
		case "exit":
			emitSc(vm.SysExit)
		case "malloc":
			emitSc(vm.SysBrk)
			cg.emit(vm.Inst{Op: vm.OpOr, RD: rd, RA: vm.RegRet, RB: vm.RegRet})
		}
	case "free":
		// Evaluate the argument for effect; the bump allocator never
		// reclaims (documented substitution).
		if _, err := cg.genExpr(ex.Args[0], depth); err != nil {
			return 0, err
		}
	default:
		return 0, fmt.Errorf("cc: unknown builtin %s", ex.Name)
	}
	return rd, nil
}

// resolve converts pending debug records into address-based DebugInfo.
func (cg *codegen) resolve(prog *asm.Program) (*DebugInfo, error) {
	lookup := func(lbl string) (uint32, error) {
		if lbl == "" {
			return 0, nil
		}
		s, ok := prog.Lookup(lbl)
		if !ok {
			return 0, fmt.Errorf("cc: internal: unresolved debug label %q", lbl)
		}
		return s.Addr, nil
	}
	d := &DebugInfo{}
	for _, a := range cg.assigns {
		d.Assigns = append(d.Assigns, AssignInfo{
			Func: a.fn, Line: a.line, Col: a.col, LHS: a.lhs,
			StoreAddr: asm.TextAddr(a.storeIdx), StoreByte: a.storeByte,
			ValueStart:   asm.TextAddr(a.valueStart),
			InLoopHeader: a.inHeader,
		})
	}
	for _, c := range cg.checks {
		taken, err := lookup(c.takenLbl)
		if err != nil {
			return nil, err
		}
		alt, err := lookup(c.altLbl)
		if err != nil {
			return nil, err
		}
		ci := CheckInfo{
			Func: c.fn, Line: c.line, Col: c.col, Op: c.op,
			BcAddr: asm.TextAddr(c.bcIdx), BcCond: c.cond, Negated: c.negated,
			TakenAddr: taken, FallAddr: asm.TextAddr(c.fallIdx),
			AltAddr: alt, AltCond: c.altCond,
		}
		if c.cmpIdx >= 0 {
			ci.CmpAddr = asm.TextAddr(c.cmpIdx)
		}
		for _, l := range c.loads {
			ci.ArrayLoads = append(ci.ArrayLoads, ArrayLoad{Addr: asm.TextAddr(l.idx), ElemSize: l.elemSize})
		}
		d.Checks = append(d.Checks, ci)
	}
	for _, f := range cg.funcs {
		d.Funcs = append(d.Funcs, FuncInfo{
			Name: f.name, Entry: asm.TextAddr(f.entryIdx), End: asm.TextAddr(f.endIdx),
			FrameSize: f.frameSize, Locals: f.locals, Line: f.line,
		})
	}
	for _, s := range cg.spans {
		d.Spans = append(d.Spans, StmtSpan{
			Func: s.fn, Line: s.line,
			Start: asm.TextAddr(s.start), End: asm.TextAddr(s.end),
		})
	}
	return d, nil
}

// CondFor exposes the branch-condition encoding used by the code generator:
// it returns the vm condition that tests "op holds" (negated=false) or "op
// does not hold" (negated=true). The fault locator uses it to build mutated
// branch instructions for the checking error types.
func CondFor(op string, negated bool) (vm.Cond, bool) {
	return condForOp(op, negated)
}
