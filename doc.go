// Package repro is a full reproduction of "On the Emulation of Software
// Faults by Software Fault Injection" (Madeira, Costa, Vieira — DSN 2000).
//
// The repository builds every system the paper's experiments depend on:
//
//   - internal/vm — a PowerPC-flavoured 32-bit machine with binary
//     instruction encoding, two hardware breakpoint registers and bus
//     hooks, standing in for the Parsytec PowerXplorer / PowerPC 601;
//   - internal/cc — a mini-C compiler producing machine code plus the
//     symbol tables and statement-level debug information the fault
//     locator needs;
//   - internal/injector — the Xception-equivalent SWIFI engine (hardware
//     breakpoints vs trap insertion);
//   - internal/fault, internal/locator, internal/odc — the
//     What/Where/Which/When fault model, Table 3 error types and ODC;
//   - internal/programs, internal/workload — the target-program suite with
//     the seven real faults of §5 and the input generators;
//   - internal/campaign, internal/stats, internal/metrics, internal/core —
//     the experiment manager, report renderers, §6.1 complexity metrics
//     and the top-level engine.
//
// See DESIGN.md for the system inventory and per-experiment index, and
// EXPERIMENTS.md for paper-versus-measured results. The benchmarks in
// bench_test.go regenerate every table and figure; cmd/swifi prints them.
package repro
