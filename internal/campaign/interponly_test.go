package campaign_test

import (
	"reflect"
	"testing"

	"repro/internal/campaign"
	"repro/internal/injector"
)

// TestInterpOnlyCampaignEquivalence is the engine A/B gate: a campaign run
// with Config.InterpOnly (every machine on the per-instruction interpreter)
// must produce a deep-equal Result to the default block-compiled run. This
// is the -interp-only CLI contract — the flag may only change speed, never
// verdicts — and it covers both trigger modes, since the hardware mode
// leans on IABR arming mid-run and the trap mode on ExecuteInjected, the
// two paths where the block engine most aggressively bails to the
// interpreter.
func TestInterpOnlyCampaignEquivalence(t *testing.T) {
	for _, mode := range []injector.Mode{injector.ModeHardware, injector.ModeTrap} {
		base := smallCfg()
		base.Mode = mode

		compiled, err := campaign.Run(base)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}

		interp := base
		interp.InterpOnly = true
		ref, err := campaign.Run(interp)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}

		if !reflect.DeepEqual(compiled.Entries, ref.Entries) {
			t.Errorf("mode %v: Entries differ between engines:\nblock:  %+v\ninterp: %+v", mode, compiled.Entries, ref.Entries)
		}
		if !reflect.DeepEqual(compiled.Plans, ref.Plans) {
			t.Errorf("mode %v: Plans differ between engines", mode)
		}
		if compiled.Runs != ref.Runs {
			t.Errorf("mode %v: Runs differ: block %d, interp %d", mode, compiled.Runs, ref.Runs)
		}
		if compiled.Runs == 0 {
			t.Fatalf("mode %v: campaign executed zero runs; the equivalence check is vacuous", mode)
		}
	}
}
