package golden

import (
	"sync"
	"testing"

	"repro/internal/programs"
	"repro/internal/vm"
	"repro/internal/workload"
)

func compiled(t *testing.T, name string) (*programs.Program, *workloadPair) {
	t.Helper()
	p, ok := programs.ByName(name)
	if !ok {
		t.Fatalf("%s missing from the suite", name)
	}
	cases, err := workload.Cached(p.Kind, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	return p, &workloadPair{cs: &cases[0]}
}

type workloadPair struct{ cs *workload.Case }

func TestWatchSetCanonicalisation(t *testing.T) {
	a := NewWatchSet([]uint32{0x1010, 0x1004, 0x1010, 0x1004})
	b := NewWatchSet([]uint32{0x1004, 0x1010})
	if len(a.Addrs()) != 2 {
		t.Fatalf("dedup failed: %v", a.Addrs())
	}
	if a.key != b.key {
		t.Fatal("order/duplication changed the watch-set fingerprint")
	}
	c := NewWatchSet([]uint32{0x1004, 0x1014})
	if a.key == c.key {
		t.Fatal("distinct address sets share a fingerprint")
	}
}

func TestRecordFactsMatchPlainRun(t *testing.T) {
	p, wp := compiled(t, "JB.team6")
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	// Reference: an unwatched run.
	m := vm.New(vm.Config{})
	if err := m.Load(c.Prog.Image); err != nil {
		t.Fatal(err)
	}
	m.SetInput(wp.cs.Input.Ints)
	m.SetByteInput(wp.cs.Input.Bytes)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}

	entry := c.Prog.Image.Entry
	ws := NewWatchSet([]uint32{entry})
	st := NewStore()
	rec, err := st.Run(c, wp.cs, vm.DefaultMaxCycles, nil, ws)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != m.State() || rec.Cycles != m.Cycles() || rec.Output != string(m.Output()) ||
		rec.ExitStatus != m.ExitStatus() {
		t.Fatalf("record facts diverge from the plain run: %+v", rec)
	}
	if rec.Count[entry] == 0 {
		t.Fatal("entry address never counted")
	}
	if f, ok := rec.First[entry]; !ok || f != 0 {
		t.Fatalf("entry first-arrival = %d, want 0", f)
	}
	if len(rec.Checkpoints) == 0 {
		t.Fatal("no checkpoint at the watched address")
	}
	// Resuming the first-arrival checkpoint must finish like the plain run.
	cp := rec.Nearest(rec.First[entry])
	if cp == nil || cp.Cycles != 0 {
		t.Fatalf("nearest checkpoint to cycle 0: %+v", cp)
	}
	r := vm.New(vm.Config{})
	if err := r.Load(c.Prog.Image); err != nil {
		t.Fatal(err)
	}
	if err := r.Restore(cp.Snap); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Cycles() != rec.Cycles || string(r.Output()) != rec.Output {
		t.Fatal("resumed checkpoint does not reproduce the golden run")
	}
}

func TestRestorePoint(t *testing.T) {
	rec := &Record{
		First: map[uint32]uint64{0x1000: 40, 0x2000: 10},
		Count: map[uint32]uint64{0x1000: 3, 0x2000: 1},
	}
	// Both addresses execute: safe is the earlier first arrival.
	applying, safe := rec.RestorePoint([]uint32{0x1000, 0x2000}, 0)
	if !applying || safe != 10 {
		t.Fatalf("applying=%v safe=%d, want true/10", applying, safe)
	}
	// Skip past 0x2000's single execution: 0x1000 still applies.
	applying, safe = rec.RestorePoint([]uint32{0x1000, 0x2000}, 1)
	if !applying || safe != 10 {
		t.Fatalf("skip=1: applying=%v safe=%d, want true/10", applying, safe)
	}
	// Skip past every execution: dormant.
	if applying, _ = rec.RestorePoint([]uint32{0x1000, 0x2000}, 3); applying {
		t.Fatal("skip=3 should be dormant")
	}
	// An address that never executed is dormant and contributes no bound.
	applying, safe = rec.RestorePoint([]uint32{0x3000}, 0)
	if applying || safe != ^uint64(0) {
		t.Fatalf("unexecuted addr: applying=%v safe=%d", applying, safe)
	}
}

func TestNearest(t *testing.T) {
	rec := &Record{Checkpoints: []Checkpoint{
		{Cycles: 10}, {Cycles: 50}, {Cycles: 90},
	}}
	if cp := rec.Nearest(5); cp != nil {
		t.Fatalf("cycle 5 has no preceding checkpoint, got %+v", cp)
	}
	if cp := rec.Nearest(50); cp == nil || cp.Cycles != 50 {
		t.Fatalf("cycle 50 should hit the exact checkpoint, got %+v", cp)
	}
	if cp := rec.Nearest(89); cp == nil || cp.Cycles != 50 {
		t.Fatalf("cycle 89 should round down to 50, got %+v", cp)
	}
	if cp := rec.Nearest(1000); cp == nil || cp.Cycles != 90 {
		t.Fatalf("cycle 1000 should take the last checkpoint, got %+v", cp)
	}
}

// TestStoreSingleFlight hammers one key from many goroutines and requires
// exactly one recording (the record pointer is shared) and identical facts.
func TestStoreSingleFlight(t *testing.T) {
	p, wp := compiled(t, "SOR")
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWatchSet([]uint32{c.Prog.Image.Entry})
	st := NewStore()
	const n = 16
	recs := make([]*Record, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec, err := st.Run(c, wp.cs, vm.DefaultMaxCycles, nil, ws)
			if err != nil {
				t.Error(err)
				return
			}
			recs[i] = rec
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if recs[i] != recs[0] {
			t.Fatal("concurrent callers received distinct records for one key")
		}
	}
	records, _, _ := st.Stats()
	if records != 1 {
		t.Fatalf("store holds %d records, want 1", records)
	}
	st.Purge()
	if records, _, _ = st.Stats(); records != 0 {
		t.Fatal("purge left records behind")
	}
}

// TestStoreKeysByWatchSet ensures records built for one campaign's address
// set are not served to a campaign watching different addresses.
func TestStoreKeysByWatchSet(t *testing.T) {
	p, wp := compiled(t, "SOR")
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	entry := c.Prog.Image.Entry
	st := NewStore()
	a, err := st.Run(c, wp.cs, vm.DefaultMaxCycles, nil, NewWatchSet([]uint32{entry}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := st.Run(c, wp.cs, vm.DefaultMaxCycles, nil, NewWatchSet([]uint32{entry, entry + 4}))
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("different watch sets shared one record")
	}
	if records, _, _ := st.Stats(); records != 2 {
		t.Fatal("expected two records")
	}
}

// TestCheckpointsCarryValidSums: every checkpoint the store records must
// verify against its snapshot, and a tampered Sum must fail Verify — the
// hook degraded-mode execution hangs off.
func TestCheckpointsCarryValidSums(t *testing.T) {
	rec := buildRecordForTest(t)
	if len(rec.Checkpoints) == 0 {
		t.Fatal("record carries no checkpoints; the integrity check is vacuous")
	}
	for i := range rec.Checkpoints {
		cp := &rec.Checkpoints[i]
		if cp.Sum == 0 {
			t.Fatalf("checkpoint %d has no integrity sum", i)
		}
		if !cp.Verify() {
			t.Fatalf("checkpoint %d fails verification right after recording", i)
		}
	}
	cp := rec.Checkpoints[0]
	cp.Sum ^= 0xdeadbeef
	if cp.Verify() {
		t.Fatal("tampered checkpoint still verifies")
	}
}

// buildRecordForTest records one JB.team6 golden run with a checkpoint at
// the entry address.
func buildRecordForTest(t *testing.T) *Record {
	t.Helper()
	p, wp := compiled(t, "JB.team6")
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWatchSet([]uint32{c.Prog.Image.Entry})
	rec, err := NewStore().Run(c, wp.cs, vm.DefaultMaxCycles, nil, ws)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}
