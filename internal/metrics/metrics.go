// Package metrics computes software-complexity metrics over mini-C
// programs and uses them to guide fault injection, implementing the §6.1
// proposal: when field data about real faults is unavailable, fault
// probability correlates with module complexity, so complexity metrics can
// "choose the modules to inject faults or decide on the number of faults to
// inject in each module".
package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/cc"
)

// FuncMetrics are the per-function complexity measures.
type FuncMetrics struct {
	Name       string
	Statements int
	Cyclomatic int // 1 + decision points (if, loops, ternary, && and ||)
	MaxNesting int
	Calls      int // call sites (fan-out, with repetition)

	// Halstead counts.
	Operators       int // N1
	Operands        int // N2
	UniqueOperators int // n1
	UniqueOperands  int // n2
}

// HalsteadVolume returns N log2 n, the classic program-volume measure.
func (m FuncMetrics) HalsteadVolume() float64 {
	n := m.UniqueOperators + m.UniqueOperands
	bigN := m.Operators + m.Operands
	if n == 0 {
		return 0
	}
	return float64(bigN) * math.Log2(float64(n))
}

// Score is the fault-proneness score used to weight injection: a blend of
// cyclomatic complexity and Halstead volume, both of which the studies the
// paper cites correlate with fault density.
func (m FuncMetrics) Score() float64 {
	return float64(m.Cyclomatic) + m.HalsteadVolume()/100
}

// Report aggregates a program's metrics.
type Report struct {
	Program string
	Funcs   []FuncMetrics
}

// FuncByName returns the named function's metrics.
func (r *Report) FuncByName(name string) (FuncMetrics, bool) {
	for _, f := range r.Funcs {
		if f.Name == name {
			return f, true
		}
	}
	return FuncMetrics{}, false
}

// TotalCyclomatic sums cyclomatic complexity across functions.
func (r *Report) TotalCyclomatic() int {
	total := 0
	for _, f := range r.Funcs {
		total += f.Cyclomatic
	}
	return total
}

// Analyze computes metrics for every function of a checked AST.
func Analyze(program string, file *cc.File) *Report {
	r := &Report{Program: program}
	for _, fn := range file.Funcs {
		a := analyzer{ops: map[string]int{}, opnds: map[string]int{}}
		a.stmt(fn.Body, 0)
		r.Funcs = append(r.Funcs, FuncMetrics{
			Name:            fn.Name,
			Statements:      a.statements,
			Cyclomatic:      1 + a.decisions,
			MaxNesting:      a.maxNesting,
			Calls:           a.calls,
			Operators:       a.operators,
			Operands:        a.operands,
			UniqueOperators: len(a.ops),
			UniqueOperands:  len(a.opnds),
		})
	}
	sort.Slice(r.Funcs, func(i, j int) bool { return r.Funcs[i].Name < r.Funcs[j].Name })
	return r
}

// AnalyzeSource parses, checks and analyzes a source string.
func AnalyzeSource(program, src string) (*Report, error) {
	f, err := cc.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := cc.Check(f); err != nil {
		return nil, err
	}
	return Analyze(program, f), nil
}

// analyzer walks one function body.
type analyzer struct {
	statements int
	decisions  int
	maxNesting int
	calls      int
	operators  int
	operands   int
	ops        map[string]int
	opnds      map[string]int
}

func (a *analyzer) op(name string) {
	a.operators++
	a.ops[name]++
}

func (a *analyzer) operand(name string) {
	a.operands++
	a.opnds[name]++
}

func (a *analyzer) nest(depth int) {
	if depth > a.maxNesting {
		a.maxNesting = depth
	}
}

func (a *analyzer) stmt(s cc.Stmt, depth int) {
	if s == nil {
		return
	}
	switch st := s.(type) {
	case *cc.Block:
		for _, sub := range st.Stmts {
			a.stmt(sub, depth)
		}
	case *cc.If:
		a.statements++
		a.decisions++
		a.op("if")
		a.nest(depth + 1)
		a.expr(st.Cond)
		a.stmt(st.Then, depth+1)
		if st.Else != nil {
			a.op("else")
			a.stmt(st.Else, depth+1)
		}
	case *cc.While:
		a.statements++
		a.decisions++
		a.op("while")
		a.nest(depth + 1)
		a.expr(st.Cond)
		a.stmt(st.Body, depth+1)
	case *cc.For:
		a.statements++
		a.decisions++
		a.op("for")
		a.nest(depth + 1)
		a.stmt(st.Init, depth)
		if st.Cond != nil {
			a.expr(st.Cond)
		}
		a.stmt(st.Post, depth)
		a.stmt(st.Body, depth+1)
	case *cc.Return:
		a.statements++
		a.op("return")
		if st.E != nil {
			a.expr(st.E)
		}
	case *cc.Break:
		a.statements++
		a.op("break")
	case *cc.Continue:
		a.statements++
		a.op("continue")
	case *cc.ExprStmt:
		a.statements++
		a.expr(st.E)
	case *cc.DeclStmt:
		a.statements++
		a.operand(st.Decl.Name)
		if st.Decl.Init != nil {
			a.op("=")
			a.expr(st.Decl.Init)
		}
	}
}

func (a *analyzer) expr(e cc.Expr) {
	switch ex := e.(type) {
	case *cc.IntLit:
		a.operand(fmt.Sprintf("#%d", ex.Val))
	case *cc.StrLit:
		a.operand("#str")
	case *cc.Ident:
		a.operand(ex.Name)
	case *cc.Unary:
		a.op("u" + ex.Op)
		a.expr(ex.X)
	case *cc.Binary:
		a.op(ex.Op)
		if ex.Op == "&&" || ex.Op == "||" {
			a.decisions++
		}
		a.expr(ex.X)
		a.expr(ex.Y)
	case *cc.Assign:
		a.op("=")
		a.expr(ex.LHS)
		a.expr(ex.RHS)
	case *cc.CondExpr:
		a.op("?:")
		a.decisions++
		a.expr(ex.C)
		a.expr(ex.T)
		a.expr(ex.F)
	case *cc.Call:
		a.calls++
		a.op("call")
		a.operand(ex.Name)
		for _, arg := range ex.Args {
			a.expr(arg)
		}
	case *cc.Index:
		a.op("[]")
		a.expr(ex.X)
		a.expr(ex.Idx)
	}
}

// ChooseWeighted draws n distinct indices from [0, len(weights)) with
// probability proportional to weight, deterministically from the seed. A
// non-positive weight counts as a tiny epsilon so every location stays
// reachable. It implements §6.1's metric-guided location selection: build
// the weight of each candidate fault location from its function's Score.
func ChooseWeighted(weights []float64, n int, seed int64) []int {
	if n >= len(weights) {
		out := make([]int, len(weights))
		for i := range out {
			out[i] = i
		}
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	const eps = 1e-9
	// Weighted sampling without replacement via exponential keys
	// (Efraimidis-Spirakis): smallest -ln(u)/w win.
	type keyed struct {
		idx int
		key float64
	}
	keys := make([]keyed, len(weights))
	for i, w := range weights {
		if w <= 0 {
			w = eps
		}
		keys[i] = keyed{idx: i, key: -math.Log(1-rng.Float64()) / w}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].key < keys[j].key })
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = keys[i].idx
	}
	sort.Ints(out)
	return out
}

// LocationWeights builds per-location weights for a compiled program's
// assignment or checking locations from the complexity report: each
// location inherits its enclosing function's score.
func LocationWeights(rep *Report, funcs []string) []float64 {
	out := make([]float64, len(funcs))
	for i, fn := range funcs {
		if m, ok := rep.FuncByName(fn); ok {
			out[i] = m.Score()
		}
	}
	return out
}

// AssignFuncs extracts the enclosing function of every assignment location.
func AssignFuncs(c *cc.Compiled) []string {
	out := make([]string, len(c.Debug.Assigns))
	for i, a := range c.Debug.Assigns {
		out[i] = a.Func
	}
	return out
}

// CheckFuncs extracts the enclosing function of every checking location.
func CheckFuncs(c *cc.Compiled) []string {
	out := make([]string, len(c.Debug.Checks))
	for i, ck := range c.Debug.Checks {
		out[i] = ck.Func
	}
	return out
}
