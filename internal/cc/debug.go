package cc

import "repro/internal/vm"

// This file defines the debug information emitted by the code generator.
// It is the moral equivalent of the symbol tables and labels the paper used
// to locate assignment and checking statements at machine-code level (§6.3,
// step 1), plus the per-statement records needed by the §5 case studies.

// AssignInfo records one assignment fault location: a source-level statement
// that commits a value to a variable, and the machine instruction that
// performs the store. The §6 assignment error types (value+1, value-1,
// no-assign, random) all act on this store instruction.
type AssignInfo struct {
	Func string // enclosing function
	Line int    // source line
	Col  int
	LHS  string // printable left-hand side ("i", "time[x][y]", "*p")

	StoreAddr uint32 // address of the stw/stb/stwx/stbx
	StoreByte bool   // true when the store is byte-sized
	// ValueStart is the address of the first instruction of the RHS
	// evaluation; the whole assignment occupies [ValueStart, StoreAddr+4).
	ValueStart uint32
	// InLoopHeader marks assignments inside for-headers (init/post); the
	// Figure 3 fault lives in one of these.
	InLoopHeader bool
}

// CheckInfo records one checking fault location: a source-level comparison
// or logical connective and the cmp/bc instruction pair implementing it.
// The §6 checking error types rewrite the bc condition field, force it
// always/never taken, or offset the array loads feeding the comparison —
// all single-instruction corruptions, as in the paper's Figure 5.
type CheckInfo struct {
	Func string
	Line int
	Col  int
	Op   string // source operator: "<", "<=", ">", ">=", "==", "!=", "&&", "||", "truth"

	CmpAddr uint32  // address of cmpw/cmpwi (0 when Op is a connective)
	BcAddr  uint32  // address of the conditional branch
	BcCond  vm.Cond // condition encoded in the bc
	// Negated is true when the bc tests the negation of the source
	// operator (branch-around-then pattern). A source-level operator
	// mutation must then encode the negation of the mutated operator.
	Negated bool
	// TakenAddr and FallAddr are the two successor addresses of the bc;
	// "stuck true"/"stuck false" mutations replace the bc with an
	// unconditional branch to one of them. For connectives, the and<->or
	// mutation rewrites the bc to branch to AltAddr under AltCond.
	TakenAddr uint32
	FallAddr  uint32
	AltAddr   uint32  // valid only for "&&"/"||"
	AltCond   vm.Cond // valid only for "&&"/"||"
	// ArrayLoads lists the array-element load instructions that feed the
	// comparison operands, enabling the [i]->[i±1] error types ("only for
	// checking over arrays", Table 3).
	ArrayLoads []ArrayLoad
}

// ArrayLoad is one array-element load instruction and its element size.
type ArrayLoad struct {
	Addr     uint32 // address of the lwzx/lbzx/lwz/lbz
	ElemSize int32  // 4 for int elements, 1 for char
}

// LocalVar describes one stack-resident variable, giving the SP-relative
// displacement that the Figure 4 stack-shift emulation manipulates.
type LocalVar struct {
	Name   string
	Offset int32 // displacement from SP
	Size   int32
}

// FuncInfo is the debug record of one compiled function.
type FuncInfo struct {
	Name      string
	Entry     uint32 // address of the first instruction
	End       uint32 // one past the last instruction
	FrameSize int32
	Locals    []LocalVar
	Line      int
}

// StmtSpan maps a source line to the half-open address range of the code
// generated for it (used to render the paper-style side-by-side listings).
type StmtSpan struct {
	Func  string
	Line  int
	Start uint32
	End   uint32
}

// DebugInfo aggregates everything the locator and the case studies need.
type DebugInfo struct {
	Assigns []AssignInfo
	Checks  []CheckInfo
	Funcs   []FuncInfo
	Spans   []StmtSpan
}

// FuncAt returns the function containing address a.
func (d *DebugInfo) FuncAt(a uint32) *FuncInfo {
	for i := range d.Funcs {
		f := &d.Funcs[i]
		if a >= f.Entry && a < f.End {
			return f
		}
	}
	return nil
}

// FuncByName returns the named function's record.
func (d *DebugInfo) FuncByName(name string) *FuncInfo {
	for i := range d.Funcs {
		if d.Funcs[i].Name == name {
			return &d.Funcs[i]
		}
	}
	return nil
}

// SpansForLine returns the address ranges generated for a source line.
func (d *DebugInfo) SpansForLine(line int) []StmtSpan {
	var out []StmtSpan
	for _, s := range d.Spans {
		if s.Line == line {
			out = append(out, s)
		}
	}
	return out
}
