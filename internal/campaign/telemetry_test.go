package campaign_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/campaign"
	"repro/internal/golden"
	"repro/internal/journal"
	"repro/internal/telemetry"
)

// fullTelemetry builds a Telemetry handle with every plane enabled: a
// registry, a tracer sinking JSONL to a temp file, and a non-TTY progress
// line into a discarded buffer.
func fullTelemetry(t *testing.T) (*telemetry.Telemetry, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := telemetry.NewTracer(telemetry.DefaultTraceCap)
	tr.SinkJSONL(f)
	var buf bytes.Buffer
	return &telemetry.Telemetry{
		Reg:      telemetry.NewRegistry(),
		Trace:    tr,
		Progress: telemetry.NewProgress(&buf, false, 0),
	}, path
}

// TestTelemetryDoesNotChangeResults is the acceptance property: a campaign
// observed by every telemetry plane produces a Result bit-identical to the
// same campaign with telemetry off.
func TestTelemetryDoesNotChangeResults(t *testing.T) {
	cfg := resumeBase()
	ref, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	tel, _ := fullTelemetry(t)
	cfg2 := resumeBase()
	cfg2.Workers = 4
	cfg2.Telemetry = tel
	res, err := campaign.Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tel.Trace.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, ref) {
		t.Errorf("telemetry changed the Result:\nobserved: %+v\nplain:    %+v", res, ref)
	}
}

// TestTelemetryCountersMatchResult cross-checks the live counters against
// the Result they observed: done units, per-mode verdicts, fast-forward
// accounting.
func TestTelemetryCountersMatchResult(t *testing.T) {
	// The shared golden store survives across tests in this process; start
	// it cold so golden_runs_total deterministically counts this campaign's
	// golden runs (they are rebuilt on demand, so other tests are unharmed).
	golden.Shared.Purge()
	tel, _ := fullTelemetry(t)
	cfg := resumeBase()
	cfg.Telemetry = tel
	res, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := tel.Reg.Counters()
	if got := c["campaign_units_done_total"]; got != uint64(res.Runs) {
		t.Errorf("campaign_units_done_total = %d, want %d", got, res.Runs)
	}
	if got := c["campaign_units_executed_total"]; got != uint64(res.Runs) {
		t.Errorf("campaign_units_executed_total = %d, want %d (nothing replayed)", got, res.Runs)
	}
	if got := c["campaign_units_replayed_total"]; got != 0 {
		t.Errorf("campaign_units_replayed_total = %d, want 0", got)
	}
	if got := c["campaign_units_total"]; got != uint64(res.Runs) {
		t.Errorf("campaign_units_total gauge = %d, want %d", got, res.Runs)
	}
	var verdictSum uint64
	for _, mode := range campaign.Modes() {
		verdictSum += c[`campaign_verdicts_total{mode="`+mode.String()+`"}`]
	}
	verdictSum += c[`campaign_verdicts_total{mode="hostfault"}`]
	if verdictSum != uint64(res.Runs) {
		t.Errorf("verdict counters sum to %d, want %d", verdictSum, res.Runs)
	}
	// Fast-forward accounting covers every executed unit that had a
	// location-triggered fault: hits + misses + dormant skips > 0 on this
	// campaign (all §6 faults are location-triggered).
	ffwd := c["campaign_ffwd_hits_total"] + c["campaign_ffwd_misses_total"] + c["campaign_dormant_skips_total"]
	if ffwd != uint64(res.Runs) {
		t.Errorf("ffwd hits+misses+dormant = %d, want %d", ffwd, res.Runs)
	}
	if c["golden_runs_total"] == 0 {
		t.Error("golden_runs_total = 0, want > 0")
	}
	// The latency histogram saw every unit.
	var found bool
	for _, h := range tel.Reg.Histograms() {
		if h.Name == "campaign_unit_latency_us" {
			found = true
			if h.Count != uint64(res.Runs) {
				t.Errorf("campaign_unit_latency_us count = %d, want %d", h.Count, res.Runs)
			}
		}
	}
	if !found {
		t.Error("campaign_unit_latency_us histogram missing")
	}
}

// TestTelemetryTraceLifecycle checks the JSONL sink holds a complete
// lifecycle per unit: planned, dispatched, executed and verdict counts all
// equal the number of units.
func TestTelemetryTraceLifecycle(t *testing.T) {
	tel, path := fullTelemetry(t)
	cfg := resumeBase()
	cfg.Telemetry = tel
	res, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tel.Trace.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := telemetry.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make(map[string]int)
	for _, e := range events {
		kinds[e.Kind]++
	}
	for _, k := range []string{telemetry.KindPlanned, telemetry.KindDispatched, telemetry.KindExecuted, telemetry.KindVerdict} {
		if kinds[k] != res.Runs {
			t.Errorf("trace has %d %q events, want %d", kinds[k], k, res.Runs)
		}
	}
	// The in-memory summary agrees with the sink.
	sum := tel.Trace.Summary()
	if sum[telemetry.KindVerdict] != res.Runs {
		t.Errorf("tracer summary verdicts = %d, want %d", sum[telemetry.KindVerdict], res.Runs)
	}
}

// TestTelemetryResumeSurfacesReplayed: a resumed campaign reports the
// journal-replayed split on the replayed counter, in Exec.Replayed, and in
// the trace.
func TestTelemetryResumeSurfacesReplayed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	j, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := resumeBase()
	cfg.Journal = j
	ref, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	tel, _ := fullTelemetry(t)
	cfg2 := resumeBase()
	cfg2.Journal = j2
	cfg2.Telemetry = tel
	res, err := campaign.Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exec.Replayed != ref.Runs {
		t.Errorf("Exec.Replayed = %d, want %d", res.Exec.Replayed, ref.Runs)
	}
	c := tel.Reg.Counters()
	if got := c["campaign_units_replayed_total"]; got != uint64(ref.Runs) {
		t.Errorf("campaign_units_replayed_total = %d, want %d", got, ref.Runs)
	}
	if got := c["campaign_units_executed_total"]; got != 0 {
		t.Errorf("campaign_units_executed_total = %d, want 0 on a full replay", got)
	}
	if got := c["journal_appends_total"]; got != 0 {
		t.Errorf("journal_appends_total = %d, want 0 on a full replay", got)
	}
	if sum := tel.Trace.Summary(); sum[telemetry.KindReplayed] != ref.Runs {
		t.Errorf("trace replayed events = %d, want %d", sum[telemetry.KindReplayed], ref.Runs)
	}

	// The report composes the same split.
	r := telemetry.NewReport("test")
	campaign.FillReport(r, res)
	if r.Units.Replayed != ref.Runs || r.Units.Executed != 0 {
		t.Errorf("report units = %+v, want all %d replayed", r.Units, ref.Runs)
	}
	if r.Resilience["replayed"] != ref.Runs {
		t.Errorf("report resilience = %+v", r.Resilience)
	}
}

// TestFillReportTallies pins the report's tally shape on a plain run.
func TestFillReportTallies(t *testing.T) {
	res, err := campaign.Run(resumeBase())
	if err != nil {
		t.Fatal(err)
	}
	r := telemetry.NewReport("test")
	campaign.FillReport(r, res)
	if r.Units.Total != res.Runs || r.Units.Executed != res.Runs {
		t.Errorf("units = %+v, want %d executed", r.Units, res.Runs)
	}
	var sum int
	for _, n := range r.Tallies {
		sum += n
	}
	if sum != res.Runs {
		t.Errorf("tallies sum to %d, want %d", sum, res.Runs)
	}
	if len(r.Group("assignment/program")) == 0 || len(r.Group("checking/errtype")) == 0 {
		t.Errorf("groups missing: %+v", r.Groups)
	}
}
