// Package telemetry is the runtime observability layer of the campaign
// stack: low-overhead metrics (counters, gauges, fixed-bucket histograms in
// a Prometheus-text registry), structured trace events in a bounded ring
// buffer with an optional JSONL sink, a TTY-aware live progress line, an
// opt-in HTTP debug server (/metrics, expvar, pprof), and a machine-readable
// end-of-run report.
//
// The package is dependency-free (standard library only) so every layer of
// the repository — journal, golden store, worker supervisor, campaign
// executor — can import it without cycles. Every instrument is nil-safe:
// methods on a nil *Counter, *Gauge, *Histogram, *Tracer or *Telemetry are
// no-ops, so uninstrumented paths pay exactly one pointer check and
// instrumentation never needs to be conditionally compiled in or out.
// Telemetry observes execution; it must never change it — the campaign
// property tests assert that results are bit-identical with telemetry on
// and off.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// counterShards is the fan-out of one Counter: hot-path writers that know
// their worker index spread over shards to avoid cache-line ping-pong;
// writers that do not use shard 0. Power of two so the mask is one AND.
const counterShards = 8

// shard is one cache-line-padded counter cell. The padding keeps two shards
// out of the same 64-byte line, so concurrent workers do not false-share.
type shard struct {
	n atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing sharded atomic counter. The zero
// value is ready to use; a nil *Counter is a no-op.
type Counter struct {
	name   string
	shards [counterShards]shard
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d on shard 0 (callers without a worker identity).
func (c *Counter) Add(d uint64) {
	if c == nil {
		return
	}
	c.shards[0].n.Add(d)
}

// AddShard adds d on the shard selected by w — the executor's worker index.
// Any w is valid; it is reduced mod the shard count.
func (c *Counter) AddShard(w int, d uint64) {
	if c == nil {
		return
	}
	c.shards[uint(w)%counterShards].n.Add(d)
}

// Value returns the counter's total across shards.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var t uint64
	for i := range c.shards {
		t += c.shards[i].n.Load()
	}
	return t
}

// Name returns the registered metric name ("" for an unregistered counter).
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is an atomic instantaneous value. The zero value is ready to use; a
// nil *Gauge is a no-op.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds d.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the gauge's current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBuckets is the fixed bucket ladder used for every latency
// histogram in the repository, in microseconds: roughly exponential from
// 1µs to 10s. Fixed buckets keep Observe allocation-free and O(log n).
var DefaultLatencyBuckets = []uint64{
	1, 2, 5, 10, 20, 50, 100, 200, 500,
	1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000, 500_000,
	1_000_000, 2_000_000, 5_000_000, 10_000_000,
}

// Histogram is a fixed-bucket histogram with atomic cells. Bucket i counts
// observations v <= uppers[i]; the last cell counts the overflow (+Inf).
// The value unit is whatever the caller observes — latency histograms in
// this repository use microseconds. A nil *Histogram is a no-op.
type Histogram struct {
	name   string
	uppers []uint64        // sorted bucket upper bounds
	counts []atomic.Uint64 // len(uppers)+1; last is +Inf
	sum    atomic.Uint64
}

// newHistogram builds a detached histogram (registries use Histogram()).
func newHistogram(name string, uppers []uint64) *Histogram {
	u := append([]uint64(nil), uppers...)
	sort.Slice(u, func(i, j int) bool { return u[i] < u[j] })
	return &Histogram{name: name, uppers: u, counts: make([]atomic.Uint64, len(u)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.uppers), func(i int) bool { return v <= h.uppers[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// ObserveSince records the elapsed time since start, in microseconds — the
// one-liner for latency instrumentation sites.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(uint64(time.Since(start).Microseconds()))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var t uint64
	for i := range h.counts {
		t += h.counts[i].Load()
	}
	return t
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// HistogramSnapshot is a point-in-time copy of a histogram, used by reports.
type HistogramSnapshot struct {
	Name    string        `json:"name"`
	Count   uint64        `json:"count"`
	Sum     uint64        `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one non-empty histogram bucket: the cumulative count of
// observations at or below Le (Le == 0 with Inf set is the overflow bucket).
type BucketCount struct {
	Le  uint64 `json:"le"`
	Inf bool   `json:"inf,omitempty"`
	N   uint64 `json:"n"`
}

// Snapshot copies the histogram's current state, keeping only non-empty
// buckets (counts here are per-bucket, not cumulative).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{Name: h.name, Sum: h.sum.Load()}
	for i := range h.counts {
		n := h.counts[i].Load()
		s.Count += n
		if n == 0 {
			continue
		}
		b := BucketCount{N: n}
		if i < len(h.uppers) {
			b.Le = h.uppers[i]
		} else {
			b.Inf = true
		}
		s.Buckets = append(s.Buckets, b)
	}
	return s
}

// Registry holds the named instruments of one campaign (or process) and
// renders them in Prometheus text exposition format. Registration is
// idempotent per name; lookups after the first return the same instrument.
// A nil *Registry hands out nil instruments, which are themselves no-ops —
// the disabled-telemetry configuration costs one nil check per call site.
//
// Metric names may carry a constant label suffix in braces, e.g.
// `campaign_verdicts_total{mode="correct"}`; the registry treats the whole
// string as the identity and splices histogram `le` labels in correctly.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	order  []string // registration order, for stable iteration before sorting
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the registered counter with the given name, creating it on
// first use. A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counts[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.counts[name] = c
	r.order = append(r.order, name)
	return c
}

// Gauge returns the registered gauge with the given name, creating it on
// first use. A nil registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	r.gauges[name] = g
	r.order = append(r.order, name)
	return g
}

// Histogram returns the registered histogram with the given name, creating
// it with the given bucket upper bounds on first use (later calls ignore
// the bounds). A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, uppers []uint64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := newHistogram(name, uppers)
	r.hists[name] = h
	r.order = append(r.order, name)
	return h
}

// baseName strips a label suffix: `foo{mode="x"}` -> `foo`.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// withLabel splices an extra label into a possibly-labelled name:
// withLabel(`foo`, `le="5"`) -> `foo{le="5"}`,
// withLabel(`foo{a="b"}`, `le="5"`) -> `foo{a="b",le="5"}`.
func withLabel(name, label string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:len(name)-1] + "," + label + "}"
	}
	return name + "{" + label + "}"
}

// WithLabel is withLabel for other packages — the fabric coordinator uses
// it to re-register federated executor series under a host label, keeping
// the label-in-name convention in one place.
func WithLabel(name, label string) string { return withLabel(name, label) }

// WritePrometheus renders every registered instrument in Prometheus text
// exposition format, sorted by name so scrapes are diffable. Histogram
// bucket lines are cumulative and end with the +Inf bucket, per the format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	r.mu.Unlock()
	sort.Strings(names)

	typed := make(map[string]bool) // base names with an emitted # TYPE line
	emitType := func(name, kind string) error {
		base := baseName(name)
		if typed[base] {
			return nil
		}
		typed[base] = true
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		return err
	}

	for _, name := range names {
		r.mu.Lock()
		c, isC := r.counts[name]
		g, isG := r.gauges[name]
		h, isH := r.hists[name]
		r.mu.Unlock()
		switch {
		case isC:
			if err := emitType(name, "counter"); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", name, c.Value()); err != nil {
				return err
			}
		case isG:
			if err := emitType(name, "gauge"); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", name, g.Value()); err != nil {
				return err
			}
		case isH:
			if err := emitType(name, "histogram"); err != nil {
				return err
			}
			var cum uint64
			for i := range h.counts {
				cum += h.counts[i].Load()
				le := "+Inf"
				if i < len(h.uppers) {
					le = fmt.Sprintf("%d", h.uppers[i])
				}
				line := withLabel(name+"_bucket", `le="`+le+`"`)
				if _, err := fmt.Fprintf(w, "%s %d\n", line, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %d\n", name, h.Sum()); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count %d\n", name, cum); err != nil {
				return err
			}
		}
	}
	return nil
}

// Counters returns a name → value snapshot of every registered counter and
// gauge (gauges as their current value), for reports and expvar.
func (r *Registry) Counters() map[string]uint64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64, len(r.counts)+len(r.gauges))
	for name, c := range r.counts {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = uint64(g.Value())
	}
	return out
}

// Histograms returns snapshots of every registered histogram with at least
// one observation, sorted by name.
func (r *Registry) Histograms() []HistogramSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	hs := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hs = append(hs, h)
	}
	r.mu.Unlock()
	var out []HistogramSnapshot
	for _, h := range hs {
		if s := h.Snapshot(); s.Count > 0 {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// JournalMetrics is the instrument bundle the journal accepts: append count,
// append latency, and a gauge that latches to 1 when a write failure flips
// the journal into degraded (journal-disabled) mode. The zero value (nil
// instruments) disables all of it.
type JournalMetrics struct {
	Appends       *Counter
	AppendLatency *Histogram
	DegradedMode  *Gauge
}

// GoldenMetrics is the instrument bundle the golden-run store accepts:
// golden runs recorded, checkpoints retained, and record latency. The zero
// value disables all three.
type GoldenMetrics struct {
	Runs        *Counter
	Checkpoints *Counter
	RunLatency  *Histogram
}

// WorkerMetrics is the instrument bundle the worker supervisor accepts.
// A nil *WorkerMetrics (the Options default) disables all of it.
type WorkerMetrics struct {
	Restarts        *Counter   // abnormal worker deaths (spawn failures included)
	Redeliveries    *Counter   // units redelivered after killing a worker
	Quarantines     *Counter   // units quarantined after exhausting deliveries
	HeartbeatGap    *Histogram // µs between received heartbeats, per worker
	DeliveryLatency *Histogram // µs from unit dispatch to verdict
	BreakerOpen     *Gauge     // 1 once the restart circuit breaker tripped
	FramesRejected  *Counter   // pipe frames dropped for a CRC mismatch
}

// NewWorkerMetrics registers the worker-supervisor instruments on reg under
// their canonical names; every caller that enables supervision metrics —
// the campaign executor's proc path, faultgen, progrun — goes through here,
// so the same registry always yields the same counter instances. A nil
// registry yields a nil bundle (disabled).
func NewWorkerMetrics(reg *Registry) *WorkerMetrics {
	if reg == nil {
		return nil
	}
	return &WorkerMetrics{
		Restarts:        reg.Counter("worker_restarts_total"),
		Redeliveries:    reg.Counter("worker_redeliveries_total"),
		Quarantines:     reg.Counter("worker_quarantines_total"),
		HeartbeatGap:    reg.Histogram("worker_heartbeat_gap_us", DefaultLatencyBuckets),
		DeliveryLatency: reg.Histogram("worker_delivery_latency_us", DefaultLatencyBuckets),
		BreakerOpen:     reg.Gauge("worker_breaker_open"),
		FramesRejected:  reg.Counter("worker_frames_rejected_total"),
	}
}

// Telemetry is the top-level handle a CLI builds and threads through the
// engine into the campaign layer: the metric registry, the tracer, and the
// progress surface. Any field may be nil; a nil *Telemetry disables
// everything (the accessors below are nil-safe).
type Telemetry struct {
	Reg      *Registry
	Trace    *Tracer
	Progress *Progress
}

// Registry returns the metric registry, or nil.
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.Reg
}

// Tracer returns the tracer, or nil.
func (t *Telemetry) Tracer() *Tracer {
	if t == nil {
		return nil
	}
	return t.Trace
}

// ProgressSurface returns the progress line, or nil.
func (t *Telemetry) ProgressSurface() *Progress {
	if t == nil {
		return nil
	}
	return t.Progress
}
