// Package locator enumerates fault locations in a compiled program and
// expands them into injectable fault definitions, implementing §6.3 of the
// paper:
//
//  1. all possible fault locations are identified from the compiler's
//     debug information (the paper did this manually at assembly level,
//     assisted by symbol tables and labels);
//  2. a random subset of locations is chosen (where);
//  3. for each location, every applicable error type from Table 3 is
//     generated (what);
//  4. the trigger is the location's own instruction (which), fired on every
//     execution (when).
package locator

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/cc"
	"repro/internal/fault"
	"repro/internal/vm"
)

// Plan is the fault list for one (program, class) pair, along with the
// counts reported in the paper's Table 4.
type Plan struct {
	Program  string
	Class    fault.Class
	Possible int           // all possible fault locations
	Chosen   []int         // indices (into the possible list) of chosen locations
	Faults   []fault.Fault // chosen locations expanded by error type
}

// ChooseLocations returns n distinct indices in [0, possible), drawn with
// the given seed. If n >= possible, every index is returned.
func ChooseLocations(possible, n int, seed int64) []int {
	if n >= possible {
		out := make([]int, possible)
		for i := range out {
			out[i] = i
		}
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(possible)[:n]
	sort.Ints(perm)
	return perm
}

// PlanAssignment builds the assignment-class fault list for a compiled
// program: nChosen random assignment locations, each expanded into the four
// assignment error types of Table 3.
func PlanAssignment(c *cc.Compiled, program string, nChosen int, seed int64) (*Plan, error) {
	return PlanAssignmentChosen(c, program, ChooseLocations(len(c.Debug.Assigns), nChosen, seed), seed)
}

// PlanAssignmentChosen is PlanAssignment with an explicit set of location
// indices — the hook for alternative selection policies such as the §6.1
// complexity-guided choice.
func PlanAssignmentChosen(c *cc.Compiled, program string, chosen []int, seed int64) (*Plan, error) {
	locs := c.Debug.Assigns
	p := &Plan{
		Program:  program,
		Class:    fault.ClassAssignment,
		Possible: len(locs),
		Chosen:   chosen,
	}
	rng := rand.New(rand.NewSource(seed + 1))
	for _, li := range p.Chosen {
		if li < 0 || li >= len(locs) {
			return nil, fmt.Errorf("locator: assignment location %d out of range (%d possible)", li, len(locs))
		}
		a := locs[li]
		where := fault.Location{Program: program, Func: a.Func, Line: a.Line, Detail: a.LHS}
		for _, et := range fault.AssignmentErrTypes() {
			f, err := AssignmentFault(a, et, where, rng.Uint32())
			if err != nil {
				return nil, err
			}
			f.ID = fmt.Sprintf("%s/assign/L%d/%s", program, li, et)
			p.Faults = append(p.Faults, *f)
		}
	}
	return p, nil
}

// AssignmentFault builds one assignment fault at location a. randomValue is
// used only by the "random" error type (pre-drawn so runs are
// deterministic).
func AssignmentFault(a cc.AssignInfo, et fault.ErrType, where fault.Location, randomValue uint32) (*fault.Fault, error) {
	f := &fault.Fault{
		Class:   fault.ClassAssignment,
		ErrType: et,
		Trigger: fault.Trigger{Kind: fault.TriggerOnLocation},
		Where:   where,
	}
	switch et {
	case fault.ErrValuePlusOne:
		f.Corruptions = []fault.Corruption{{Kind: fault.CorruptStoreData, Addr: a.StoreAddr, Op: fault.ValPlusOne}}
	case fault.ErrValueMinusOne:
		f.Corruptions = []fault.Corruption{{Kind: fault.CorruptStoreData, Addr: a.StoreAddr, Op: fault.ValMinusOne}}
	case fault.ErrNoAssign:
		f.Corruptions = []fault.Corruption{{Kind: fault.CorruptFetch, Addr: a.StoreAddr, NewWord: vm.Encode(vm.Inst{Op: vm.OpNop})}}
	case fault.ErrRandomValue:
		f.Corruptions = []fault.Corruption{{Kind: fault.CorruptStoreData, Addr: a.StoreAddr, Op: fault.ValSet, Operand: randomValue}}
	default:
		return nil, fmt.Errorf("locator: %s is not an assignment error type", et)
	}
	return f, nil
}

// PlanChecking builds the checking-class fault list: nChosen random checking
// locations, each expanded into every applicable checking error type.
func PlanChecking(c *cc.Compiled, program string, nChosen int, seed int64) (*Plan, error) {
	return PlanCheckingChosen(c, program, ChooseLocations(len(c.Debug.Checks), nChosen, seed), seed)
}

// PlanCheckingChosen is PlanChecking with an explicit set of location
// indices (see PlanAssignmentChosen).
func PlanCheckingChosen(c *cc.Compiled, program string, chosen []int, seed int64) (*Plan, error) {
	locs := c.Debug.Checks
	p := &Plan{
		Program:  program,
		Class:    fault.ClassChecking,
		Possible: len(locs),
		Chosen:   chosen,
	}
	for _, li := range p.Chosen {
		if li < 0 || li >= len(locs) {
			return nil, fmt.Errorf("locator: checking location %d out of range (%d possible)", li, len(locs))
		}
		ck := locs[li]
		faults, err := CheckingFaults(c, ck)
		if err != nil {
			return nil, err
		}
		for i := range faults {
			faults[i].Where.Program = program
			faults[i].ID = fmt.Sprintf("%s/check/L%d/%s", program, li, faults[i].ErrType)
		}
		p.Faults = append(p.Faults, faults...)
	}
	return p, nil
}

// CheckingFaults expands one checking location into every applicable error
// type of Table 3. The number of applicable types depends on the actual
// instruction, as the paper notes.
func CheckingFaults(c *cc.Compiled, ck cc.CheckInfo) ([]fault.Fault, error) {
	where := fault.Location{Func: ck.Func, Line: ck.Line, Detail: ck.Op}
	mk := func(et fault.ErrType, corr fault.Corruption) fault.Fault {
		return fault.Fault{
			Class:       fault.ClassChecking,
			ErrType:     et,
			Trigger:     fault.Trigger{Kind: fault.TriggerOnLocation},
			Corruptions: []fault.Corruption{corr},
			Where:       where,
		}
	}
	var out []fault.Fault

	origWord, err := c.Prog.ReadTextWord(ck.BcAddr)
	if err != nil {
		return nil, fmt.Errorf("locator: check at %#x: %w", ck.BcAddr, err)
	}
	origBc, err := vm.Decode(origWord)
	if err != nil || origBc.Op != vm.OpBc {
		return nil, fmt.Errorf("locator: check at %#x does not hold a bc (%v)", ck.BcAddr, err)
	}

	switch ck.Op {
	case "&&", "||":
		// and<->or: retarget X's branch with the alternate condition.
		off := int64(ck.AltAddr) - int64(ck.BcAddr)
		if off >= -32768 && off <= 32767 {
			mut := origBc
			mut.RD = uint8(ck.AltCond)
			mut.Imm = int32(off)
			et := fault.ErrAndOr
			if ck.Op == "||" {
				et = fault.ErrOrAnd
			}
			out = append(out, mk(et, fault.Corruption{
				Kind: fault.CorruptFetch, Addr: ck.BcAddr, NewWord: vm.Encode(mut),
			}))
		}
	default:
		// Operator mutations (e.g. "<" -> "<=").
		for et, mutOp := range fault.OperatorMutations(ck.Op) {
			cond, ok := cc.CondFor(mutOp, ck.Negated)
			if !ok {
				continue
			}
			mut := origBc
			mut.RD = uint8(cond)
			out = append(out, mk(et, fault.Corruption{
				Kind: fault.CorruptFetch, Addr: ck.BcAddr, NewWord: vm.Encode(mut),
			}))
		}
		// Stuck-false ("true false") and stuck-true ("false true"): the
		// source condition is forced constant by making the branch
		// unconditional or removing it.
		alwaysWord, neverWord := stuckWords(ck, origBc)
		out = append(out, mk(fault.ErrTrueFalse, fault.Corruption{
			Kind: fault.CorruptFetch, Addr: ck.BcAddr, NewWord: neverWord,
		}))
		out = append(out, mk(fault.ErrFalseTrue, fault.Corruption{
			Kind: fault.CorruptFetch, Addr: ck.BcAddr, NewWord: alwaysWord,
		}))
		// Array-index offsets, only for checking over arrays.
		if len(ck.ArrayLoads) > 0 {
			al := ck.ArrayLoads[0]
			out = append(out, mk(fault.ErrIdxPlus, fault.Corruption{
				Kind: fault.CorruptLoadAddr, Addr: al.Addr, Offset: al.ElemSize,
			}))
			out = append(out, mk(fault.ErrIdxMinus, fault.Corruption{
				Kind: fault.CorruptLoadAddr, Addr: al.Addr, Offset: -al.ElemSize,
			}))
		}
	}
	// Sort for determinism: map iteration above is unordered.
	sort.Slice(out, func(i, j int) bool { return out[i].ErrType < out[j].ErrType })
	return out, nil
}

// stuckWords returns the instruction words that force the source-level
// condition always true and always false, respectively.
func stuckWords(ck cc.CheckInfo, origBc vm.Inst) (alwaysTrue, alwaysFalse uint32) {
	branchWord := func() uint32 {
		off := int64(ck.TakenAddr) - int64(ck.BcAddr)
		return vm.Encode(vm.Inst{Op: vm.OpB, Off26: int32(off)})
	}
	nopWord := vm.Encode(vm.Inst{Op: vm.OpNop})
	if ck.Negated {
		// The bc branches when the condition is FALSE: stuck-true removes
		// the branch, stuck-false forces it.
		return nopWord, branchWord()
	}
	// The bc branches when the condition is TRUE.
	return branchWord(), nopWord
}
