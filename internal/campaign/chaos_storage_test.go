package campaign

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/golden"
	"repro/internal/journal"
	"repro/internal/telemetry"
)

// The storage-chaos tests drive campaigns through the chaos package's
// disk, checkpoint-poison and pipe planes and hold them to the tentpole
// contract: injected storage failure may cost time (degraded journals,
// re-executed prefixes, restarted workers) but never changes a single
// aggregate, and a journal that survives to completion is byte-identical
// to a clean run's.

// storageBase mirrors the resume tests' scaled-down campaign; it lives
// here too because those helpers sit in the external test package.
func storageBase() Config {
	return Config{
		Programs:      []string{"JB.team11"},
		CasesPerFault: 4,
		Seed:          11,
	}
}

func storageChaosCleanup(t *testing.T) {
	t.Helper()
	golden.Shared.Purge()
	t.Cleanup(func() {
		golden.Shared.SetPoison(nil)
		golden.Shared.Purge()
	})
}

// TestStorageChaosPoisonedCheckpoints: with every golden checkpoint built
// poisoned, fast-forward is never trusted — each affected unit falls back
// to straight execution and the campaign result is bit-identical.
func TestStorageChaosPoisonedCheckpoints(t *testing.T) {
	storageChaosCleanup(t)
	ref, err := Run(isolationConfig())
	if err != nil {
		t.Fatal(err)
	}
	golden.Shared.Purge() // the chaos run must build (and poison) its own

	reg := telemetry.NewRegistry()
	cfg := isolationConfig()
	cfg.StorageChaos = chaos.New(chaos.Config{Seed: 5, DiskPoison: 1.0}, chaos.NewMetrics(reg))
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exec.Degraded == 0 {
		t.Fatal("universally poisoned checkpoints degraded nothing; the poison hook is not armed")
	}
	if !sameEntries(res, ref) {
		t.Error("poisoned checkpoints changed the campaign outcome")
	}
	if got := reg.Counters()["chaos_disk_checkpoints_poisoned_total"]; got == 0 {
		t.Error("chaos_disk_checkpoints_poisoned_total not incremented")
	}

	// The poison hook must not leak into the next campaign: a clean run
	// over the same shared store sees no degradation.
	golden.Shared.Purge()
	clean, err := Run(isolationConfig())
	if err != nil {
		t.Fatal(err)
	}
	if clean.Exec.Degraded != 0 {
		t.Fatalf("clean run after a poison campaign degraded %d units; the hook leaked", clean.Exec.Degraded)
	}
}

// TestStorageChaosPipeFaults: proc-isolation pipes under corruption,
// truncation and resets. Poisoned frames must sever the worker (CRC
// rejection or worker death), the supervisor must restart and redeliver,
// and the aggregates must come out bit-identical with nothing quarantined.
func TestStorageChaosPipeFaults(t *testing.T) {
	ref, err := Run(isolationConfig())
	if err != nil {
		t.Fatal(err)
	}
	tel := &telemetry.Telemetry{Reg: telemetry.NewRegistry()}
	inj := chaos.New(chaos.Config{
		Seed:         21,
		PipeCorrupt:  0.15,
		PipeTruncate: 0.01,
		PipeReset:    0.01,
	}, chaos.NewMetrics(tel.Reg))
	cfg := procConfig()
	cfg.Telemetry = tel
	cfg.Proc.WrapPipes = inj.WrapPipes
	cfg.Proc.HeartbeatTimeout = 5 * time.Second
	// Chaos at these rates mangles many deliveries; give the supervisor the
	// headroom a chaos run deserves so no unit is quarantined for bad luck.
	cfg.Proc.MaxDeliveries = 10
	cfg.Proc.MaxRestarts = 10000
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("campaign died under pipe chaos: %v", err)
	}
	c := tel.Reg.Counters()
	if c["chaos_corrupted_writes_total"]+c["chaos_truncated_writes_total"]+c["chaos_resets_total"] == 0 {
		t.Fatal("chaos injected nothing; the test proved nothing")
	}
	if res.Exec.HostFaults != 0 {
		t.Errorf("%d units quarantined under pipe chaos; deliveries should have been retried", res.Exec.HostFaults)
	}
	if !sameEntries(res, ref) {
		t.Error("pipe chaos changed the campaign outcome")
	}
	t.Logf("pipe chaos absorbed: corrupted=%d truncated=%d resets=%d frames_rejected=%d restarts=%d redeliveries=%d",
		c["chaos_corrupted_writes_total"], c["chaos_truncated_writes_total"], c["chaos_resets_total"],
		c["worker_frames_rejected_total"], c["worker_restarts_total"], c["worker_redeliveries_total"])
}

// TestStorageChaosJournalFullDisk: a journal on a disk that refuses every
// write (ENOSPC from the first byte) must cost the campaign nothing but
// the journal itself.
func TestStorageChaosJournalFullDisk(t *testing.T) {
	ref, err := Run(storageBase())
	if err != nil {
		t.Fatal(err)
	}
	inj := chaos.New(chaos.Config{Seed: 3, DiskENOSPC: 1.0}, nil)
	path := filepath.Join(t.TempDir(), "full-disk.wal")
	j, err := journal.CreateWrapped(path, func(f *os.File) journal.File { return inj.WrapFile(f) })
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	cfg := storageBase()
	cfg.Journal = j
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("campaign died on a full disk: %v", err)
	}
	if !j.Degraded() {
		t.Fatal("journal on a disk-full device is not degraded")
	}
	if j.Len() != ref.Runs {
		t.Errorf("degraded journal tracks %d outcomes in memory, want all %d", j.Len(), ref.Runs)
	}
	if !reflect.DeepEqual(res, ref) {
		t.Errorf("a full disk changed the campaign outcome:\nchaos: %+v\nclean: %+v", res, ref)
	}
}

// TestStorageChaosResumeByteIdenticalJournal is the acceptance property: a
// journaled campaign under disk chaos, killed mid-run and resumed under
// the same chaos, finishes with a Result AND a journal file byte-identical
// to an undisturbed clean run's. Workers=1 keeps the write sequence (and
// so the seeded fault schedule) fully deterministic.
//
// Checkpoint poison is deliberately absent: poisoning flips real outcomes'
// Degraded provenance bit, which the journal truthfully records, so a
// poisoned run's journal must NOT be byte-identical to a clean one —
// that plane is covered by TestStorageChaosPoisonedCheckpoints.
func TestStorageChaosResumeByteIdenticalJournal(t *testing.T) {
	storageChaosCleanup(t)
	diskCfg := chaos.Config{
		Seed:           6,
		DiskENOSPC:     0.05,
		DiskShortWrite: 0.05,
		DiskTornWrite:  0.05,
		DiskSyncFail:   0.02,
	}
	wrap := func(c *chaos.Chaos) journal.Wrap {
		return func(f *os.File) journal.File { return c.WrapFile(f) }
	}

	// Clean reference: journaled, uninterrupted, no chaos.
	refPath := filepath.Join(t.TempDir(), "clean.wal")
	refJ, err := journal.Create(refPath)
	if err != nil {
		t.Fatal(err)
	}
	refCfg := storageBase()
	refCfg.Workers = 1
	refCfg.Journal = refJ
	ref, err := Run(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := refJ.Close(); err != nil {
		t.Fatal(err)
	}
	refBytes, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}

	// Chaos run: same plan, disk faults on the journal, killed after 5
	// units.
	golden.Shared.Purge()
	path := filepath.Join(t.TempDir(), "chaos.wal")
	j, err := journal.CreateWrapped(path, wrap(chaos.New(diskCfg, nil)))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	j.OnAppend = func(done int) {
		if done >= 5 {
			cancel()
		}
	}
	cfg := storageBase()
	cfg.Workers = 1
	cfg.Ctx = ctx
	cfg.Journal = j
	_, err = Run(cfg)
	var ie *InterruptedError
	if !errors.As(err, &ie) {
		j.Close()
		t.Fatalf("want an interrupt partway through, got %v", err)
	}
	if ie.Done >= ie.Total {
		t.Fatalf("interrupt landed after completion (%d/%d)", ie.Done, ie.Total)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume under the same chaos config (a fresh injector, as a fresh
	// process would build) and run to completion.
	j2, err := journal.OpenWrapped(path, wrap(chaos.New(diskCfg, nil)))
	if err != nil {
		t.Fatalf("resuming the chaos journal: %v", err)
	}
	cfg2 := storageBase()
	cfg2.Workers = 1
	cfg2.Journal = j2
	res, err := Run(cfg2)
	if err != nil {
		t.Fatalf("resume under chaos failed: %v", err)
	}
	if j2.Degraded() {
		t.Fatal("journal still degraded after completion-time recovery; pick a chaos seed whose canonicalize succeeds")
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	norm := *res
	norm.Exec.Replayed = 0
	if !reflect.DeepEqual(&norm, ref) {
		t.Errorf("chaos resume changed the campaign outcome:\nchaos: %+v\nclean: %+v", res, ref)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, refBytes) {
		t.Errorf("journal after chaos + kill + resume differs from the clean run's:\ngot  %d bytes\nwant %d bytes", len(got), len(refBytes))
	}
}
