package repro

// The benchmark harness: one benchmark per table and figure of the paper,
// plus the ablations called out in DESIGN.md. Each benchmark runs a scaled
// version of the corresponding experiment per iteration and reports the
// headline quantity of that table/figure as a custom metric, so the shape
// of the paper's results is visible straight from `go test -bench=.`:
//
//	go test -bench=. -benchmem            # scaled-down (default)
//	REPRO_BENCH_SCALE=1.0 go test -bench=BenchmarkFigure7 -timeout 24h
//
// Absolute run counts are scaled by REPRO_BENCH_SCALE (default 0.01 of the
// paper's sizes); the qualitative findings hold at any scale.

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/cc"
	"repro/internal/chaos"
	"repro/internal/fault"
	"repro/internal/injector"
	"repro/internal/journal"
	"repro/internal/locator"
	"repro/internal/metrics"
	"repro/internal/programs"
	"repro/internal/telemetry"
	"repro/internal/vm"
	"repro/internal/worker"
	"repro/internal/workload"
)

// TestMain lets the bench binary serve as its own campaign worker: the
// proc-isolation benchmark re-executes this binary with REPRO_BENCH_WORKER
// set, exactly as swifi re-executes itself with -worker-mode.
func TestMain(m *testing.M) {
	if os.Getenv("REPRO_BENCH_WORKER") == "1" {
		if err := worker.Serve(os.Stdin, os.Stdout, campaign.WorkerFactory); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// benchScale reads the scale factor for benchmark workloads.
func benchScale() float64 {
	if s := os.Getenv("REPRO_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.01
}

// scaledCases converts a paper-sized run count to the bench scale.
func scaledCases(paper int) int {
	n := int(float64(paper) * benchScale())
	if n < 2 {
		n = 2
	}
	return n
}

// campaignCfg builds a §6 campaign configuration for the given programs at
// bench scale.
func campaignCfg(classes []fault.Class, progs ...string) campaign.Config {
	return campaign.Config{
		Programs:      progs,
		Classes:       classes,
		CasesPerFault: scaledCases(campaign.PaperCasesPerFault),
		Seed:          2000,
	}
}

// BenchmarkTable1 regenerates Table 1: the failure symptoms of the real
// software faults under intensive random testing. Reported metric:
// wrong-result percentage of the most failure-prone program.
func BenchmarkTable1(b *testing.B) {
	runs := scaledCases(10000)
	for i := 0; i < b.N; i++ {
		var worst float64
		for _, p := range programs.RealFaultPrograms() {
			cases, err := workload.Generate(p.Kind, runs, 99)
			if err != nil {
				b.Fatal(err)
			}
			c, err := p.CompileFaulty()
			if err != nil {
				b.Fatal(err)
			}
			wrong := 0
			for ci := range cases {
				res, err := campaign.RunClean(c, cases[ci].Input, cases[ci].Golden, vm.DefaultMaxCycles)
				if err != nil {
					b.Fatal(err)
				}
				if res.Mode != campaign.Correct {
					wrong++
				}
			}
			if pct := 100 * float64(wrong) / float64(len(cases)); pct > worst {
				worst = pct
			}
		}
		b.ReportMetric(worst, "worst-%wrong")
	}
}

// BenchmarkTable4 regenerates the Table 4 fault accounting (locations,
// chosen subsets, expanded fault lists) for all eight programs — the plan
// construction only, no injections. Reported metric: total faults planned.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		total := 0
		for _, p := range programs.Table4Programs() {
			c, err := p.Compile()
			if err != nil {
				b.Fatal(err)
			}
			pa, err := locator.PlanAssignment(c, p.Name, campaign.PaperChosenAssign[p.Name], 2000)
			if err != nil {
				b.Fatal(err)
			}
			pc, err := locator.PlanChecking(c, p.Name, campaign.PaperChosenCheck[p.Name], 2000)
			if err != nil {
				b.Fatal(err)
			}
			total += len(pa.Faults) + len(pc.Faults)
		}
		b.ReportMetric(float64(total), "faults")
	}
}

// BenchmarkTable4Parallel executes the Table 4 campaign (both classes, all
// eight programs) at bench scale across worker counts — the wall-clock and
// allocation trajectory of the campaign executor. The straight sub-benchmark
// disables golden-run checkpointing (reboot + full replay per injection,
// the pre-checkpoint executor); the workers=N sub-benchmarks use the
// checkpointed fast path. The campaign Result is bit-identical across all
// sub-benchmarks (the determinism and fast-forward equivalence tests assert
// this), so time/op and allocs/op are the only things that move.
func BenchmarkTable4Parallel(b *testing.B) {
	run := func(b *testing.B, workers int, noFFwd bool) {
		b.ReportAllocs()
		cfg := campaignCfg([]fault.Class{fault.ClassAssignment, fault.ClassChecking},
			"C.team1", "C.team2", "C.team8", "C.team9", "C.team10", "JB.team6", "JB.team11", "SOR")
		cfg.Workers = workers
		cfg.NoFastForward = noFFwd
		for i := 0; i < b.N; i++ {
			res, err := campaign.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Runs), "runs")
		}
	}
	b.Run("straight", func(b *testing.B) { run(b, 1, true) })
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	for _, w := range counts {
		if seen[w] {
			continue
		}
		seen[w] = true
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { run(b, w, false) })
	}
}

// BenchmarkTable4ProcIsolation prices the out-of-process worker sandbox: the
// same Table 4 campaign once with in-process goroutine workers and once with
// supervised worker subprocesses (the bench binary re-executing itself, the
// swifi -isolation=proc path). Both produce bit-identical Results — the
// proc/inproc time-per-op ratio is the IPC + supervision overhead, which the
// DESIGN.md budget caps at 15%.
func BenchmarkTable4ProcIsolation(b *testing.B) {
	run := func(b *testing.B, proc bool) {
		b.ReportAllocs()
		cfg := campaignCfg([]fault.Class{fault.ClassAssignment, fault.ClassChecking},
			"C.team1", "C.team2", "C.team8", "C.team9", "C.team10", "JB.team6", "JB.team11", "SOR")
		cfg.Workers = 4
		if proc {
			cfg.Isolation = campaign.IsolationProc
			cfg.Proc = &campaign.ProcOptions{
				Spawn: func() *exec.Cmd {
					cmd := exec.Command(os.Args[0])
					cmd.Env = append(os.Environ(), "REPRO_BENCH_WORKER=1")
					cmd.Stderr = os.Stderr
					return cmd
				},
				HeartbeatInterval: 100 * time.Millisecond,
			}
		}
		for i := 0; i < b.N; i++ {
			res, err := campaign.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Runs), "runs")
		}
	}
	b.Run("inproc", func(b *testing.B) { run(b, false) })
	b.Run("proc", func(b *testing.B) { run(b, true) })
}

// benchLoopbackAddr reserves a loopback port for a bench coordinator.
func benchLoopbackAddr(b *testing.B) string {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// BenchmarkTable4Fabric runs the Table 4 campaign through the distributed
// fabric with 1, 2 and 4 loopback executors. Every executor is paced to a
// fixed per-unit service time (fabricUnitPace), because all executors here
// share one machine's CPU: unpaced, N loopback executors can never beat one
// on CPU-bound work, which says nothing about the fabric. Pacing models N
// independent hosts of equal capacity, so the measured speedup is exactly
// what the fabric layer contributes — sharding, work stealing and merge
// concurrency — and its shortfall from N is the fabric's scheduling plus
// coordination overhead. scripts/bench.sh derives the scaling-efficiency
// labels in BENCH_<tag>.json from the executors=1/2 ratio.
func BenchmarkTable4Fabric(b *testing.B) {
	const fabricUnitPace = 60 * time.Millisecond
	cfg := campaignCfg([]fault.Class{fault.ClassAssignment, fault.ClassChecking},
		"C.team1", "C.team2", "C.team8", "C.team9", "C.team10", "JB.team6", "JB.team11", "SOR")
	// Warm the process-wide stores (workloads, calibration, goldens) once so
	// no sub-benchmark pays the one-time cost for the others.
	if _, err := campaign.Run(cfg); err != nil {
		b.Fatal(err)
	}
	join := func(ctx context.Context, addr, name string) {
		// The coordinator binds only after planning; retry until it is up.
		for ctx.Err() == nil {
			err := campaign.JoinFabric(ctx, addr, campaign.JoinOptions{
				Name:     name,
				Workers:  1,
				UnitPace: fabricUnitPace,
			})
			if err == nil {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	for _, hosts := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("executors=%d", hosts), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				addr := benchLoopbackAddr(b)
				ctx, cancel := context.WithCancel(context.Background())
				var wg sync.WaitGroup
				for h := 0; h < hosts; h++ {
					wg.Add(1)
					go func(name string) {
						defer wg.Done()
						join(ctx, addr, name)
					}(fmt.Sprintf("bench-exec-%d", h))
				}
				fcfg := cfg
				fcfg.Fabric = &campaign.FabricOptions{
					Listen:            addr,
					MinHosts:          hosts,
					HeartbeatInterval: 100 * time.Millisecond,
					HeartbeatTimeout:  10 * time.Second,
				}
				res, err := campaign.Run(fcfg)
				cancel()
				wg.Wait()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Runs), "runs")
				b.ReportMetric(fabricUnitPace.Seconds()*1e3, "pace-ms/unit")
			}
		})
	}
}

// BenchmarkTable4DiskChaos prices the storage-chaos plane on the journaled
// Table 4 campaign. "off" journals with no chaos anywhere near the write
// path; "overhead" interleaves an off leg and a disabled-injector leg per
// iteration — the injector threaded through the exact seams the CLIs use
// (journal wrap hook, checkpoint poison hook), which must collapse to
// pass-throughs — and reports their paired wall-clock ratio as
// "overhead-ratio", the number DESIGN.md §5j budgets at ≤2%. The pairing
// matters: the two legs are near-identical code, so timing them as
// separate sub-benchmarks measures machine drift, not the plane. "chaos"
// injects disk faults at the smoke-test rates, pricing degradation and
// the completion-time recovery rewrite. Checkpoint poison is deliberately
// absent: poisoned records would linger in the process-wide golden store
// and contaminate every benchmark that runs after this one.
func BenchmarkTable4DiskChaos(b *testing.B) {
	base := campaignCfg([]fault.Class{fault.ClassAssignment, fault.ClassChecking},
		"C.team1", "C.team2", "C.team8", "C.team9", "C.team10", "JB.team6", "JB.team11", "SOR")
	base.Workers = 4
	// Warm the process-wide stores once so no sub-benchmark pays the
	// one-time cost for the others.
	if _, err := campaign.Run(base); err != nil {
		b.Fatal(err)
	}
	once := func(b *testing.B, cfg campaign.Config, inj *chaos.Chaos, path string) time.Duration {
		// The CLI's gate (cliutil.JournalWrap): no disk faults, no wrapper.
		var wrap journal.Wrap
		if cc := inj.Config(); cc.DiskEnabled() {
			wrap = func(f *os.File) journal.File { return inj.WrapFile(f) }
		}
		j, err := journal.CreateWrapped(path, wrap)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Journal = j
		cfg.StorageChaos = inj
		start := time.Now()
		res, err := campaign.Run(cfg)
		elapsed := time.Since(start)
		if err != nil {
			b.Fatal(err)
		}
		j.Close()
		b.ReportMetric(float64(res.Runs), "runs")
		return elapsed
	}
	run := func(b *testing.B, inj *chaos.Chaos) {
		b.ReportAllocs()
		dir := b.TempDir()
		for i := 0; i < b.N; i++ {
			once(b, base, inj, filepath.Join(dir, fmt.Sprintf("bench-%d.wal", i)))
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("overhead", func(b *testing.B) {
		// The disabled-injector delta lives in per-write/per-unit hook
		// checks, which a two-program campaign exercises exactly as the
		// headline legs do — and short legs let many alternating blocks
		// average away this machine's large, non-linear throughput noise.
		// Each block times the legs in mirrored ABBA order and consecutive
		// blocks flip polarity, so no position in the run systematically
		// favors either side.
		small := campaignCfg([]fault.Class{fault.ClassAssignment}, "C.team1", "SOR")
		small.Workers = 4
		if _, err := campaign.Run(small); err != nil { // warm small golden runs
			b.Fatal(err)
		}
		dir := b.TempDir()
		var off, disabled time.Duration
		leg := 0
		offLeg := func() {
			off += once(b, small, nil, filepath.Join(dir, fmt.Sprintf("off-%d.wal", leg)))
			leg++
		}
		disabledLeg := func() {
			disabled += once(b, small, chaos.New(chaos.Config{Seed: 11}, nil),
				filepath.Join(dir, fmt.Sprintf("disabled-%d.wal", leg)))
			leg++
		}
		for i := 0; i < b.N; i++ {
			for blk := 0; blk < 4; blk++ {
				if blk%2 == 0 {
					offLeg()
					disabledLeg()
					disabledLeg()
					offLeg()
				} else {
					disabledLeg()
					offLeg()
					offLeg()
					disabledLeg()
				}
			}
		}
		b.ReportMetric(float64(disabled)/float64(off), "overhead-ratio")
	})
	b.Run("chaos", func(b *testing.B) {
		// The degraded-journal warnings print to stderr mid-iteration and
		// `go test` interleaves them into the benchmark output, tearing the
		// result line away from its numbers; silence them for the artifact.
		null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
		if err != nil {
			b.Fatal(err)
		}
		old := os.Stderr
		os.Stderr = null
		defer func() {
			os.Stderr = old
			null.Close()
		}()
		run(b, chaos.New(chaos.Config{
			Seed:           11,
			DiskENOSPC:     0.01,
			DiskShortWrite: 0.005,
			DiskTornWrite:  0.005,
			DiskSyncFail:   0.01,
		}, nil))
	})
}

// BenchmarkTable4Federation prices the fleet-telemetry federation plane on
// a loopback fabric campaign: the same coordinator+executor run once with
// federation on (the default — the executor pushes snapshot and trace
// frames on every heartbeat and the coordinator republishes them as
// host-labeled series) and once with JoinOptions.NoFederation. Both legs
// produce bit-identical campaign Results (the federation plane never
// touches the verdict path), so the paired wall-clock ratio is the whole
// cost of the plane — frame encode, CRC, loopback write, coordinator
// ingest. Legs are timed in mirrored ABBA blocks with alternating polarity,
// exactly as BenchmarkTable4DiskChaos does, because the two legs are
// near-identical code and separate sub-benchmarks would measure machine
// drift instead. scripts/bench.sh turns the reported overhead-ratio into
// the federation_disabled_overhead label in BENCH_<tag>.json; DESIGN.md
// §5k budgets it at ≤2%. The 20ms heartbeat with a matching
// FederationInterval is deliberately aggressive — ~50x the default 1s push
// cadence — so the measured ratio is an upper bound.
func BenchmarkTable4Federation(b *testing.B) {
	cfg := campaignCfg([]fault.Class{fault.ClassAssignment}, "C.team1", "SOR")
	// Warm the process-wide stores once so neither leg pays one-time costs.
	if _, err := campaign.Run(cfg); err != nil {
		b.Fatal(err)
	}
	// The coordinator announces executor attach on stderr every leg, and
	// `go test` interleaves stderr into the benchmark output, tearing the
	// result line away from its numbers (the Table4DiskChaos/chaos problem);
	// silence it for the artifact.
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		b.Fatal(err)
	}
	old := os.Stderr
	os.Stderr = null
	defer func() {
		os.Stderr = old
		null.Close()
	}()
	once := func(b *testing.B, noFed bool) time.Duration {
		addr := benchLoopbackAddr(b)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The coordinator binds only after planning; retry until it is up.
			for ctx.Err() == nil {
				err := campaign.JoinFabric(ctx, addr, campaign.JoinOptions{
					Name:               "bench-fed",
					Workers:            1,
					NoFederation:       noFed,
					FederationInterval: 20 * time.Millisecond,
				})
				if err == nil {
					return
				}
				time.Sleep(10 * time.Millisecond)
			}
		}()
		fcfg := cfg
		fcfg.Fabric = &campaign.FabricOptions{
			Listen:            addr,
			MinHosts:          1,
			HeartbeatInterval: 20 * time.Millisecond,
			HeartbeatTimeout:  10 * time.Second,
		}
		start := time.Now()
		res, err := campaign.Run(fcfg)
		elapsed := time.Since(start)
		cancel()
		wg.Wait()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Runs), "runs")
		return elapsed
	}
	b.ReportAllocs()
	var on, off time.Duration
	for i := 0; i < b.N; i++ {
		for blk := 0; blk < 4; blk++ {
			if blk%2 == 0 {
				on += once(b, false)
				off += once(b, true)
				off += once(b, true)
				on += once(b, false)
			} else {
				off += once(b, true)
				on += once(b, false)
				on += once(b, false)
				off += once(b, true)
			}
		}
	}
	b.ReportMetric(float64(on)/float64(off), "overhead-ratio")
}

// BenchmarkTable4Telemetry prices the observability layer on the Table 4
// campaign (both classes, all eight programs, 4 workers): telemetry off
// (the nil fast path every plane short-circuits on), the metric registry
// plus a non-TTY progress surface (the swifi default on a terminal), and
// additionally the full trace firehose into a discarded JSONL sink. The
// Result is bit-identical across all three (asserted by the property tests
// in internal/campaign); the DESIGN.md budget caps metrics+progress at 2%
// over off.
func BenchmarkTable4Telemetry(b *testing.B) {
	run := func(b *testing.B, tel func() *telemetry.Telemetry) {
		b.ReportAllocs()
		cfg := campaignCfg([]fault.Class{fault.ClassAssignment, fault.ClassChecking},
			"C.team1", "C.team2", "C.team8", "C.team9", "C.team10", "JB.team6", "JB.team11", "SOR")
		cfg.Workers = 4
		for i := 0; i < b.N; i++ {
			cfg.Telemetry = tel()
			res, err := campaign.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Runs), "runs")
		}
	}
	b.Run("off", func(b *testing.B) {
		run(b, func() *telemetry.Telemetry { return nil })
	})
	b.Run("metrics+progress", func(b *testing.B) {
		run(b, func() *telemetry.Telemetry {
			return &telemetry.Telemetry{
				Reg:      telemetry.NewRegistry(),
				Progress: telemetry.NewProgress(io.Discard, false, 0),
			}
		})
	})
	b.Run("metrics+progress+trace", func(b *testing.B) {
		run(b, func() *telemetry.Telemetry {
			tr := telemetry.NewTracer(telemetry.DefaultTraceCap)
			tr.SinkJSONL(io.Discard)
			return &telemetry.Telemetry{
				Reg:      telemetry.NewRegistry(),
				Trace:    tr,
				Progress: telemetry.NewProgress(io.Discard, false, 0),
			}
		})
	})
}

// benchCampaign runs a one-class campaign and reports the share of correct
// runs — the paper's "dormant faults" fraction.
func benchCampaign(b *testing.B, class fault.Class, progs ...string) {
	b.Helper()
	cfg := campaignCfg([]fault.Class{class}, progs...)
	for i := 0; i < b.N; i++ {
		res, err := campaign.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		d := res.Total(class)
		b.ReportMetric(d.Pct(campaign.Correct), "%correct")
		b.ReportMetric(float64(res.Runs), "runs")
	}
}

// BenchmarkFigure7 regenerates the assignment-fault campaign behind
// Figure 7 (failure modes per program) on the Camelot programs plus the
// JamesB pair.
func BenchmarkFigure7(b *testing.B) {
	benchCampaign(b, fault.ClassAssignment,
		"C.team1", "C.team2", "C.team8", "C.team9", "C.team10", "JB.team6", "JB.team11", "SOR")
}

// BenchmarkFigure8 regenerates the checking-fault campaign behind Figure 8.
func BenchmarkFigure8(b *testing.B) {
	benchCampaign(b, fault.ClassChecking,
		"C.team1", "C.team2", "C.team8", "C.team9", "C.team10", "JB.team6", "JB.team11", "SOR")
}

// BenchmarkFigure9 regenerates the per-error-type assignment breakdown of
// Figure 9 on the JamesB programs (the full-suite numbers come from the
// Figure 7 campaign; the shape is the same).
func BenchmarkFigure9(b *testing.B) {
	benchCampaign(b, fault.ClassAssignment, "JB.team6", "JB.team11")
}

// BenchmarkFigure10 regenerates the per-error-type checking breakdown of
// Figure 10 on the JamesB programs.
func BenchmarkFigure10(b *testing.B) {
	benchCampaign(b, fault.ClassChecking, "JB.team6", "JB.team11")
}

// BenchmarkFigure2 regenerates the empirical fault-exposure chain (p1 ·
// p2·p3) of Figure 2. Reported metric: p1, the activation probability.
func BenchmarkFigure2(b *testing.B) {
	cfg := campaignCfg(nil, "JB.team11")
	for i := 0; i < b.N; i++ {
		res, err := campaign.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		d := res.Total(fault.ClassAssignment)
		if d.Runs > 0 {
			b.ReportMetric(float64(d.Activated)/float64(d.Runs), "p1")
		}
	}
}

// BenchmarkSection5 regenerates the §5 analysis: build the emulation of
// every real fault and verify behavioural equivalence for the emulable
// ones. Reported metric: equivalence fraction.
func BenchmarkSection5(b *testing.B) {
	cases := scaledCases(1000)
	for i := 0; i < b.N; i++ {
		equivalent, total := 0, 0
		for _, name := range []string{"C.team1", "C.team4", "JB.team6"} {
			p, _ := programs.ByName(name)
			em, err := campaign.BuildEmulation(p)
			if err != nil {
				b.Fatal(err)
			}
			ws, err := workload.Generate(p.Kind, cases, 99)
			if err != nil {
				b.Fatal(err)
			}
			mode := injector.ModeHardware
			if em.NeedsTraps {
				mode = injector.ModeTrap
			}
			rep, err := campaign.VerifyEmulation(p, em, campaign.StrategyFetchEveryExec, mode, ws)
			if err != nil {
				b.Fatal(err)
			}
			equivalent += rep.Equivalent
			total += rep.Cases
		}
		b.ReportMetric(float64(equivalent)/float64(total), "equivalence")
	}
}

// BenchmarkAblationTriggerMode compares the two trigger mechanisms on the
// same fault set: hardware breakpoint registers versus trap insertion (the
// intrusive alternative §5 discusses). The time difference is the
// mechanism's overhead.
func BenchmarkAblationTriggerMode(b *testing.B) {
	for _, mode := range []injector.Mode{injector.ModeHardware, injector.ModeTrap} {
		b.Run(mode.String(), func(b *testing.B) {
			cfg := campaignCfg([]fault.Class{fault.ClassChecking}, "JB.team11")
			cfg.Mode = mode
			for i := 0; i < b.N; i++ {
				res, err := campaign.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Total(fault.ClassChecking).Pct(campaign.Correct), "%correct")
			}
		})
	}
}

// BenchmarkAblationBreakpointBudget measures the §5 stack-shift fault: the
// hardware budget rejects it (arm failure) while trap mode pays the
// intrusive-trigger cost per run.
func BenchmarkAblationBreakpointBudget(b *testing.B) {
	p, _ := programs.ByName("JB.team6")
	em, err := campaign.BuildEmulation(p)
	if err != nil {
		b.Fatal(err)
	}
	cases, err := workload.Generate(p.Kind, scaledCases(1000), 99)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("hardware-rejects", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := campaign.VerifyEmulation(p, em, campaign.StrategyFetchEveryExec, injector.ModeHardware, cases); err == nil {
				b.Fatal("hardware mode armed a 56-trigger fault")
			}
		}
	})
	b.Run("trap-runs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep, err := campaign.VerifyEmulation(p, em, campaign.StrategyFetchEveryExec, injector.ModeTrap, cases)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(rep.Equivalent)/float64(rep.Cases), "equivalence")
		}
	})
}

// BenchmarkAblationMechanism compares the two corruption mechanisms of
// Figures 3/5 — persistent instruction-memory rewrite versus transient
// fetch-bus corruption — on the same real-fault emulation.
func BenchmarkAblationMechanism(b *testing.B) {
	p, _ := programs.ByName("C.team1")
	em, err := campaign.BuildEmulation(p)
	if err != nil {
		b.Fatal(err)
	}
	cases, err := workload.Generate(p.Kind, scaledCases(300), 99)
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range []campaign.Strategy{campaign.StrategyTextAtStart, campaign.StrategyFetchEveryExec} {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := campaign.VerifyEmulation(p, em, s, injector.ModeHardware, cases)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rep.Equivalent)/float64(rep.Cases), "equivalence")
			}
		})
	}
}

// BenchmarkAblationMetricGuided compares uniform versus complexity-guided
// location selection (§6.1): the reported metric is the share of chosen
// locations landing in the most complex function.
func BenchmarkAblationMetricGuided(b *testing.B) {
	p, _ := programs.ByName("C.team1")
	c, err := p.Compile()
	if err != nil {
		b.Fatal(err)
	}
	rep := metrics.Analyze(p.Name, c.AST)
	funcs := metrics.AssignFuncs(c)
	weights := metrics.LocationWeights(rep, funcs)
	hottest := "main"
	pick := func(guided bool, seed int64) int {
		var idx []int
		if guided {
			idx = metrics.ChooseWeighted(weights, 8, seed)
		} else {
			idx = locator.ChooseLocations(len(funcs), 8, seed)
		}
		n := 0
		for _, i := range idx {
			if funcs[i] == hottest {
				n++
			}
		}
		return n
	}
	for _, guided := range []bool{false, true} {
		name := "uniform"
		if guided {
			name = "guided"
		}
		b.Run(name, func(b *testing.B) {
			hits := 0
			for i := 0; i < b.N; i++ {
				hits += pick(guided, int64(i))
			}
			b.ReportMetric(float64(hits)/float64(b.N*8), "share-in-main")
		})
	}
}

// BenchmarkVMThroughput measures raw simulator speed on a clean Camelot
// run (instructions per second drive every experiment's wall-clock).
func BenchmarkVMThroughput(b *testing.B) {
	p, _ := programs.ByName("C.team1")
	c, err := p.Compile()
	if err != nil {
		b.Fatal(err)
	}
	cases, err := workload.Generate(p.Kind, 1, 7)
	if err != nil {
		b.Fatal(err)
	}
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := campaign.RunClean(c, cases[0].Input, cases[0].Golden, vm.DefaultMaxCycles)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// benchVMThroughput drives the VM directly (Load once, Reset per run) so
// the number measures the execution engine alone, without the campaign
// pooling and classification around RunClean.
func benchVMThroughput(b *testing.B, interpOnly bool) {
	p, _ := programs.ByName("C.team1")
	c, err := p.Compile()
	if err != nil {
		b.Fatal(err)
	}
	cases, err := workload.Generate(p.Kind, 1, 7)
	if err != nil {
		b.Fatal(err)
	}
	m := vm.New(vm.Config{})
	if err := m.Load(c.Prog.Image); err != nil {
		b.Fatal(err)
	}
	m.SetInterpOnly(interpOnly)
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Reset(); err != nil {
			b.Fatal(err)
		}
		m.SetMaxCycles(vm.DefaultMaxCycles)
		m.SetInput(cases[0].Input.Ints)
		m.SetByteInput(cases[0].Input.Bytes)
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
		cycles += m.Cycles()
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkVMThroughputCompiled is the block-compiled engine (the default
// everywhere); BenchmarkVMThroughputInterp is the same run under
// -interp-only. Their ratio is the speed-up of block compilation on
// identical work.
func BenchmarkVMThroughputCompiled(b *testing.B) { benchVMThroughput(b, false) }

func BenchmarkVMThroughputInterp(b *testing.B) { benchVMThroughput(b, true) }

// BenchmarkBlockCompile measures the one-time cost of decoding a program's
// text into basic blocks and superinstructions — the price paid per Load
// (and per full rebuild after a text-modification overflow).
func BenchmarkBlockCompile(b *testing.B) {
	p, _ := programs.ByName("C.team1")
	c, err := p.Compile()
	if err != nil {
		b.Fatal(err)
	}
	m := vm.New(vm.Config{})
	if err := m.Load(c.Prog.Image); err != nil {
		b.Fatal(err)
	}
	words := len(c.Prog.Image.Text)
	var blocks int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer() // Load resets the block cache; only time compilation
		if err := m.Load(c.Prog.Image); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		blocks = m.CompileAllBlocks()
	}
	if blocks == 0 {
		b.Fatal("CompileAllBlocks compiled nothing")
	}
	b.ReportMetric(float64(blocks), "blocks")
	b.ReportMetric(float64(words)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mwords/s")
}

// BenchmarkCompile measures the mini-C compiler on the largest program.
func BenchmarkCompile(b *testing.B) {
	p, _ := programs.ByName("C.team5")
	for i := 0; i < b.N; i++ {
		if _, err := cc.Compile(p.Source); err != nil {
			b.Fatal(err)
		}
	}
}
