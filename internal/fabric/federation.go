package fabric

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Federation is the executor side of fleet telemetry federation (DESIGN.md
// §5k): the sources drained into telemetry and trace frames on the
// heartbeat cadence. Everything here is strictly best-effort — a frame
// that cannot be sent without contending with the verdict path is dropped,
// the buffer drops oldest under overflow, and nothing is retransmitted.
// Nil disables federation entirely.
type Federation struct {
	// Registry is snapshotted (counters and gauges, absolute values) into
	// telemetry frames; the coordinator republishes every series under a
	// host label.
	Registry *telemetry.Registry
	// Trace is the forwarding buffer trace frames drain. Feed it by
	// mirroring a local Tracer into it (Tracer.Mirror(Trace.Add)).
	Trace *telemetry.TraceBuffer

	// Dropped counts pushes skipped because the write path was busy — the
	// backpressure half of the drop contract.
	Dropped *telemetry.Counter
	// Executed counts units this executor finished locally (one per emitted
	// verdict, acked or not) — the series the coordinator's fleet view
	// singles out for per-host throughput. The executor increments it
	// itself, so every batch-runner flavour is covered.
	Executed *telemetry.Counter
}

// NewFederation builds an executor's federation state around its local
// telemetry. A nil registry is replaced with a fresh one, so a federated
// executor always has per-host counters to report even when local
// observability flags are off; tr (which may be nil) is mirrored into the
// forwarding buffer so every locally traced event also reaches the
// coordinator's merged trace.
func NewFederation(reg *telemetry.Registry, tr *telemetry.Tracer) *Federation {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	buf := telemetry.NewTraceBuffer(telemetry.DefaultTraceCap)
	tr.Mirror(buf.Add)
	return &Federation{
		Registry: reg,
		Trace:    buf,
		Dropped:  reg.Counter("fabric_fed_pushes_dropped_total"),
		Executed: reg.Counter(fedExecutedName),
	}
}

// snapshot renders the registry as telemetry-frame entries, sorted by name
// so frames are deterministic for a given counter state.
func (f *Federation) snapshot() []snapEntry {
	if f == nil || f.Registry == nil {
		return nil
	}
	counts := f.Registry.Counters()
	entries := make([]snapEntry, 0, len(counts))
	for name, v := range counts {
		entries = append(entries, snapEntry{Name: name, Value: v})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	return entries
}

// FleetHost is one executor's row in the live fleet view (/fleet).
type FleetHost struct {
	Name     string `json:"name"`
	Workers  int    `json:"workers"`
	Attached bool   `json:"attached"`
	Expired  bool   `json:"expired,omitempty"`
	// Assigned is the number of units the host currently owns; Ranges is
	// their run-length rendering as of the last scheduling change (it is
	// not decremented per verdict — it answers "what was this host given",
	// Assigned answers "how much is left").
	Assigned int    `json:"assigned"`
	Ranges   string `json:"ranges,omitempty"`
	// Merged counts verdicts the coordinator folded in from this host;
	// Executed is the host's own federated counter (may run ahead of
	// Merged by unacked verdicts).
	Merged   int    `json:"merged"`
	Executed uint64 `json:"executed,omitempty"`
	// UnitsPerSec is Merged over the host's attached lifetime.
	UnitsPerSec float64 `json:"units_per_sec"`
	// LastSeenMS is milliseconds since the last frame from this host — the
	// heartbeat lag a fleet operator watches for stragglers.
	LastSeenMS int64 `json:"last_seen_ms"`
	// ClockOffsetUS is the latest heartbeat-sampled offset between this
	// host's clock and the coordinator's (coordinator receipt time minus
	// executor send stamp, so it includes one-way latency).
	ClockOffsetUS int64 `json:"clock_offset_us,omitempty"`
	Reconnects    int   `json:"reconnects,omitempty"`

	joined   time.Time
	lastSeen time.Time
}

// FleetSnapshot is the /fleet JSON document: campaign progress, every host
// the coordinator has ever registered (dead ones included — their history
// is part of the run), and the fabric/chaos counters of the coordinator's
// registry.
type FleetSnapshot struct {
	Total    int               `json:"total"`
	Done     int               `json:"done"`
	Hosts    []FleetHost       `json:"hosts"`
	Counters map[string]uint64 `json:"counters,omitempty"`
}

// FleetTracker is the coordinator's thread-safe live-fleet view: the event
// loop updates it in-line (cheap, mutex-guarded field writes), the debug
// server's /fleet handler and the end-of-run report read it from other
// goroutines.
type FleetTracker struct {
	mu    sync.Mutex
	total int
	done  int
	hosts map[uint64]*FleetHost
	order []uint64 // registration order, for stable rendering
	reg   *telemetry.Registry
}

// NewFleetTracker returns a tracker for a campaign of total units whose
// counter section snapshots reg (nil: no counters in /fleet).
func NewFleetTracker(total int, reg *telemetry.Registry) *FleetTracker {
	return &FleetTracker{total: total, hosts: make(map[uint64]*FleetHost), reg: reg}
}

// host returns the row for token, creating it on first sight.
func (t *FleetTracker) host(token uint64) *FleetHost {
	h, ok := t.hosts[token]
	if !ok {
		h = &FleetHost{joined: time.Now(), lastSeen: time.Now()}
		t.hosts[token] = h
		t.order = append(t.order, token)
	}
	return h
}

// Joined records a (re)registered session. Reattach passes attached=true
// again; the tracker counts it as a reconnect.
func (t *FleetTracker) Joined(token uint64, name string, workers int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	h := t.host(token)
	if h.Name != "" {
		h.Reconnects++
	}
	h.Name, h.Workers, h.Attached, h.Expired = name, workers, true, false
	h.lastSeen = time.Now()
}

// Seen stamps frame receipt from the host (heartbeat lag zeroes).
func (t *FleetTracker) Seen(token uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.host(token).lastSeen = time.Now()
}

// Detached marks the host's connection as lost (session still held).
func (t *FleetTracker) Detached(token uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.host(token).Attached = false
}

// Expired marks the host dead: its session timed out and its units were
// redelivered.
func (t *FleetTracker) Expired(token uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	h := t.host(token)
	h.Attached, h.Expired, h.Assigned, h.Ranges = false, true, 0, ""
}

// Assigned replaces the host's owned-unit view after a scheduling change
// (initial shard, steal, redelivery, re-attach).
func (t *FleetTracker) Assigned(token uint64, units []int) {
	if t == nil {
		return
	}
	ranges := formatRuns(units)
	t.mu.Lock()
	defer t.mu.Unlock()
	h := t.host(token)
	h.Assigned, h.Ranges = len(units), ranges
}

// Merged records one verdict folded in from the host, plus overall
// campaign progress.
func (t *FleetTracker) Merged(token uint64, done int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	h := t.host(token)
	h.Merged++
	if h.Assigned > 0 {
		h.Assigned--
	}
	t.done = done
}

// Progress records campaign progress not attributable to a host (journal
// replays on resume).
func (t *FleetTracker) Progress(done int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.done = done
}

// Sampled records a clock-offset sample and the host's federated executed
// counter from an ingested telemetry frame.
func (t *FleetTracker) Sampled(token uint64, offsetUS int64, executed uint64, ok bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	h := t.host(token)
	h.ClockOffsetUS = offsetUS
	if ok {
		h.Executed = executed
	}
}

// Snapshot renders the tracker for /fleet. The counter section is limited
// to the fabric_ and chaos_ families — the full registry is what /metrics
// is for.
func (t *FleetTracker) Snapshot() FleetSnapshot {
	if t == nil {
		return FleetSnapshot{}
	}
	t.mu.Lock()
	snap := FleetSnapshot{Total: t.total, Done: t.done, Hosts: make([]FleetHost, 0, len(t.order))}
	now := time.Now()
	for _, token := range t.order {
		h := *t.hosts[token]
		h.LastSeenMS = now.Sub(h.lastSeen).Milliseconds()
		if life := now.Sub(h.joined).Seconds(); life > 0 {
			h.UnitsPerSec = float64(h.Merged) / life
		}
		snap.Hosts = append(snap.Hosts, h)
	}
	reg := t.reg
	t.mu.Unlock()
	if reg != nil {
		snap.Counters = make(map[string]uint64)
		for name, v := range reg.Counters() {
			if strings.HasPrefix(name, "fabric_") || strings.HasPrefix(name, "chaos_") {
				snap.Counters[name] = v
			}
		}
	}
	return snap
}

// Source adapts the tracker to the debug server's /fleet hook.
func (t *FleetTracker) Source() func() any {
	return func() any { return t.Snapshot() }
}

// HostStats renders the tracker as the report's hosts section, in
// registration order.
func (t *FleetTracker) HostStats() []telemetry.HostStats {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]telemetry.HostStats, 0, len(t.order))
	for _, token := range t.order {
		h := t.hosts[token]
		out = append(out, telemetry.HostStats{
			Name:          h.Name,
			Workers:       h.Workers,
			Merged:        h.Merged,
			Executed:      h.Executed,
			Reconnects:    h.Reconnects,
			Expired:       h.Expired,
			ClockOffsetUS: h.ClockOffsetUS,
		})
	}
	return out
}

// FleetExecuted sums the federated per-host executed counters — the
// fleet-wide "units executed somewhere" number the coordinator's progress
// line shows alongside its own merged count.
func (t *FleetTracker) FleetExecuted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var n uint64
	for _, h := range t.hosts {
		n += h.Executed
	}
	return n
}

// formatRuns renders a sorted unit set as "0-95,140-160" (single units as
// bare numbers) for the fleet view.
func formatRuns(units []int) string {
	var sb strings.Builder
	for i := 0; i < len(units); {
		j := i + 1
		for j < len(units) && units[j] == units[j-1]+1 {
			j++
		}
		if sb.Len() > 0 {
			sb.WriteByte(',')
		}
		if j-i == 1 {
			fmt.Fprintf(&sb, "%d", units[i])
		} else {
			fmt.Fprintf(&sb, "%d-%d", units[i], units[j-1])
		}
		i = j
	}
	return sb.String()
}

// fedExecutedName is the executor-side counter the fleet view singles out:
// units the executor finished locally, whether or not the verdicts are
// acked yet.
const fedExecutedName = "fabric_units_executed_total"

// validMetricName gates federated series names before they are registered
// locally: a frame from a fingerprint-matched executor is trusted about as
// far as its verdicts are, but a name that would corrupt the Prometheus
// exposition (newlines, unbounded length) is dropped regardless.
func validMetricName(name string) bool {
	if name == "" || len(name) > 256 {
		return false
	}
	return !strings.ContainsAny(name, "\n\r")
}

// ingestSnapshot folds one telemetry frame into the coordinator: every
// series becomes a host-labelled gauge on the coordinator registry (gauges,
// not counters — these are samples of remote cumulative state, and Set is
// idempotent under the at-most-once frame delivery), and the fleet tracker
// gets the clock-offset sample and the host's executed counter.
func (r *coordRun) ingestSnapshot(s *session, sentUS int64, entries []snapEntry) {
	var offsetUS int64
	if sentUS != 0 {
		offsetUS = time.Now().UnixMicro() - sentUS
	}
	if reg := r.opts.Registry; reg != nil {
		label := fmt.Sprintf("host=%q", s.name)
		for _, e := range entries {
			if !validMetricName(e.Name) {
				continue
			}
			reg.Gauge(telemetry.WithLabel(e.Name, label)).Set(int64(e.Value))
		}
	}
	executed, haveExec := uint64(0), false
	for _, e := range entries {
		if e.Name == fedExecutedName {
			executed, haveExec = e.Value, true
			break
		}
	}
	r.opts.Fleet.Sampled(s.token, offsetUS, executed, haveExec)
}

// ingestTrace re-emits one trace frame's events on the coordinator's
// tracer, host-stamped from the session and time-shifted by this frame's
// clock-offset sample, merging every executor's lifecycle stream into the
// coordinator's single -trace JSONL.
func (r *coordRun) ingestTrace(s *session, sentUS int64, evs []telemetry.Event) {
	var offset time.Duration
	if sentUS != 0 {
		offset = time.Since(time.UnixMicro(sentUS))
	}
	for _, e := range evs {
		e.Host = s.name
		if !e.T.IsZero() {
			e.T = e.T.Add(offset)
		}
		r.opts.Tracer.Emit(e)
	}
}

// fleetAssigned refreshes the fleet tracker's owned-range view for s from
// the authoritative owner map. Called on scheduling changes only (shard,
// steal, re-attach, recovery) — they are rare, so the O(units) walk is
// cheap; per-verdict bookkeeping is the tracker's own decrement.
func (r *coordRun) fleetAssigned(s *session) {
	if r.opts.Fleet == nil {
		return
	}
	var units []int
	for u, o := range r.owner {
		if o == s && !r.done[u] {
			units = append(units, u)
		}
	}
	sort.Ints(units)
	r.opts.Fleet.Assigned(s.token, units)
}
