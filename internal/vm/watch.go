package vm

// Watchpoints are the observation side of golden-run checkpointing: the
// golden runner watches every planned trigger address of a campaign plus a
// few fixed cycle marks, and snapshots the machine the moment each one is
// first reached. They are strictly passive — a watch hook that only reads
// the machine leaves the run's outcome untouched — and, unlike the injector
// hooks, they fire before the instruction at the watched address executes
// and before its cycle is counted.

// WatchHook runs when execution first reaches a watched address (cycleMark
// false, pc is the watched address) or when the cycle counter passes a
// watched cycle mark (cycleMark true). The hook must not resume or restart
// the machine; taking a Snapshot is the intended use.
type WatchHook func(m *Machine, pc uint32, cycleMark bool)

// SetWatch installs watchpoints on a loaded machine: the hook fires at every
// execution of each watched text address and once when the cycle counter
// first reaches each mark in atCycles (which must be sorted ascending).
// Watchpoints are cleared by Load, Reset and Restore, like all other hooks.
func (m *Machine) SetWatch(addrs []uint32, atCycles []uint64, h WatchHook) {
	if len(m.watchIdx) != len(m.decoded) {
		m.watchIdx = make([]bool, len(m.decoded))
	} else {
		clear(m.watchIdx)
	}
	for _, a := range addrs {
		if a%WordSize != 0 || a < m.textBase {
			continue
		}
		if idx := (a - m.textBase) / WordSize; idx < uint32(len(m.watchIdx)) {
			m.watchIdx[idx] = true
		}
	}
	m.watchCycles = append(m.watchCycles[:0], atCycles...)
	m.watchCyclePos = 0
	m.watchHook = h
	m.watchAny = h != nil && (len(addrs) > 0 || len(atCycles) > 0)
	m.updateHot()
}

// ClearWatch removes all watchpoints.
func (m *Machine) ClearWatch() { m.clearWatch() }

func (m *Machine) clearWatch() {
	m.watchAny = false
	m.watchHook = nil
	m.watchCycles = m.watchCycles[:0]
	m.watchCyclePos = 0
	if m.watchIdx != nil {
		clear(m.watchIdx)
	}
	m.updateHot()
}

// checkWatch fires due watch hooks at the top of step: cycle marks first,
// then the address watch for the instruction about to execute.
func (m *Machine) checkWatch() {
	for m.watchCyclePos < len(m.watchCycles) && m.cycles >= m.watchCycles[m.watchCyclePos] {
		m.watchCyclePos++
		m.watchHook(m, m.pc, true)
	}
	pc := m.pc
	if pc&(WordSize-1) != 0 {
		return
	}
	if idx := (pc - m.textBase) / WordSize; idx < uint32(len(m.watchIdx)) && m.watchIdx[idx] {
		m.watchHook(m, pc, false)
	}
}
