package vm

import (
	"strings"
	"testing"
)

// buildImage assembles a raw instruction slice into an image at TextBase.
func buildImage(insts []Inst) Image {
	text := make([]uint32, len(insts))
	for i, in := range insts {
		text[i] = Encode(in)
	}
	return Image{Text: text, Entry: TextBase}
}

// run loads and runs the given instructions on a fresh machine.
func run(t *testing.T, insts []Inst) *Machine {
	t.Helper()
	m := New(Config{})
	if err := m.Load(buildImage(insts)); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return m
}

// exitWith returns the instruction pair that exits with the value of r3.
func exitSeq() []Inst {
	return []Inst{
		{Op: OpAddi, RD: RegSys, RA: RegZero, Imm: SysExit},
		{Op: OpSc},
	}
}

func TestRunWithoutLoad(t *testing.T) {
	m := New(Config{})
	if _, err := m.Run(); err == nil {
		t.Fatal("Run on unloaded machine should fail")
	}
}

func TestHaltAndExitStatus(t *testing.T) {
	prog := append([]Inst{{Op: OpAddi, RD: 3, RA: RegZero, Imm: 42}}, exitSeq()...)
	m := run(t, prog)
	if m.State() != StateHalted {
		t.Fatalf("state = %v, want halted", m.State())
	}
	if m.ExitStatus() != 42 {
		t.Errorf("exit status = %d, want 42", m.ExitStatus())
	}
}

func TestR0HardwiredZero(t *testing.T) {
	prog := append([]Inst{
		{Op: OpAddi, RD: 0, RA: RegZero, Imm: 99}, // write to r0 ignored
		{Op: OpAddi, RD: 3, RA: 0, Imm: 7},        // r3 = r0 + 7 = 7
	}, exitSeq()...)
	m := run(t, prog)
	if m.ExitStatus() != 7 {
		t.Errorf("exit status = %d, want 7 (r0 must read as zero)", m.ExitStatus())
	}
}

func TestArithmetic(t *testing.T) {
	tests := []struct {
		name string
		prog []Inst
		want int32
	}{
		{"add", []Inst{
			{Op: OpAddi, RD: 4, RA: RegZero, Imm: 30},
			{Op: OpAddi, RD: 5, RA: RegZero, Imm: 12},
			{Op: OpAdd, RD: 3, RA: 4, RB: 5},
		}, 42},
		{"subf order", []Inst{
			{Op: OpAddi, RD: 4, RA: RegZero, Imm: 10},
			{Op: OpAddi, RD: 5, RA: RegZero, Imm: 3},
			{Op: OpSubf, RD: 3, RA: 5, RB: 4}, // rB - rA = 10-3
		}, 7},
		{"mullw negative", []Inst{
			{Op: OpAddi, RD: 4, RA: RegZero, Imm: -6},
			{Op: OpAddi, RD: 5, RA: RegZero, Imm: 7},
			{Op: OpMullw, RD: 3, RA: 4, RB: 5},
		}, -42},
		{"divw truncates toward zero", []Inst{
			{Op: OpAddi, RD: 4, RA: RegZero, Imm: -7},
			{Op: OpAddi, RD: 5, RA: RegZero, Imm: 2},
			{Op: OpDivw, RD: 3, RA: 4, RB: 5},
		}, -3},
		{"mod sign follows dividend", []Inst{
			{Op: OpAddi, RD: 4, RA: RegZero, Imm: -7},
			{Op: OpAddi, RD: 5, RA: RegZero, Imm: 2},
			{Op: OpMod, RD: 3, RA: 4, RB: 5},
		}, -1},
		{"mulli", []Inst{
			{Op: OpAddi, RD: 4, RA: RegZero, Imm: 6},
			{Op: OpMulli, RD: 3, RA: 4, Imm: -7},
		}, -42},
		{"neg", []Inst{
			{Op: OpAddi, RD: 4, RA: RegZero, Imm: -5},
			{Op: OpNeg, RD: 3, RA: 4},
		}, 5},
		{"logic and shift", []Inst{
			{Op: OpAddi, RD: 4, RA: RegZero, Imm: 0xf0},
			{Op: OpAddi, RD: 5, RA: RegZero, Imm: 0x3c},
			{Op: OpAnd, RD: 6, RA: 4, RB: 5},  // 0x30
			{Op: OpOri, RD: 6, RA: 6, Imm: 1}, // 0x31
			{Op: OpAddi, RD: 7, RA: RegZero, Imm: 2},
			{Op: OpSlw, RD: 3, RA: 6, RB: 7}, // 0xc4
		}, 0xc4},
		{"sraw sign extends", []Inst{
			{Op: OpAddi, RD: 4, RA: RegZero, Imm: -8},
			{Op: OpAddi, RD: 5, RA: RegZero, Imm: 1},
			{Op: OpSraw, RD: 3, RA: 4, RB: 5},
		}, -4},
		{"srw is logical", []Inst{
			{Op: OpAddi, RD: 4, RA: RegZero, Imm: -8}, // 0xfffffff8
			{Op: OpAddi, RD: 5, RA: RegZero, Imm: 28},
			{Op: OpSrw, RD: 3, RA: 4, RB: 5},
		}, 15},
		{"xor xori", []Inst{
			{Op: OpAddi, RD: 4, RA: RegZero, Imm: 0x55},
			{Op: OpXori, RD: 3, RA: 4, Imm: 0xff},
		}, 0xaa},
		{"addis", []Inst{
			{Op: OpAddis, RD: 3, RA: RegZero, Imm: 2},
			{Op: OpOri, RD: 3, RA: 3, Imm: 0x34},
			{Op: OpAddi, RD: 4, RA: RegZero, Imm: 16},
			{Op: OpSrw, RD: 3, RA: 3, RB: 4},
		}, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := run(t, append(tt.prog, exitSeq()...))
			if m.State() != StateHalted {
				t.Fatalf("state %v (exc %v)", m.State(), m.exc)
			}
			if m.ExitStatus() != tt.want {
				t.Errorf("result = %d, want %d", m.ExitStatus(), tt.want)
			}
		})
	}
}

func TestBranchesAndLoops(t *testing.T) {
	// Sum 1..10 with a bc loop: r3=acc, r4=i.
	prog := []Inst{
		{Op: OpAddi, RD: 3, RA: RegZero, Imm: 0},
		{Op: OpAddi, RD: 4, RA: RegZero, Imm: 1},
		// loop:
		{Op: OpAdd, RD: 3, RA: 3, RB: 4},
		{Op: OpAddi, RD: 4, RA: 4, Imm: 1},
		{Op: OpCmpwi, RD: 0, RA: 4, Imm: 10},
		{Op: OpBc, RD: uint8(CondLE), RA: 0, Imm: -12}, // back to loop
	}
	m := run(t, append(prog, exitSeq()...))
	if m.ExitStatus() != 55 {
		t.Errorf("sum = %d, want 55", m.ExitStatus())
	}
}

func TestCallAndReturn(t *testing.T) {
	// main: bl f; exit(r3).  f: r3 = 99; blr.
	prog := []Inst{
		{Op: OpBl, Off26: 16}, // to f at +16 (4 insts ahead)
		{Op: OpAddi, RD: RegSys, RA: RegZero, Imm: SysExit},
		{Op: OpSc},
		{Op: OpNop},
		// f:
		{Op: OpAddi, RD: 3, RA: RegZero, Imm: 99},
		{Op: OpBlr},
	}
	m := run(t, prog)
	if m.ExitStatus() != 99 {
		t.Errorf("exit = %d, want 99", m.ExitStatus())
	}
}

func TestMflrMtlr(t *testing.T) {
	prog := append([]Inst{
		{Op: OpAddi, RD: 9, RA: RegZero, Imm: 0x48},
		{Op: OpMtlr, RD: 9},
		{Op: OpMflr, RD: 3},
	}, exitSeq()...)
	m := run(t, prog)
	if m.ExitStatus() != 0x48 {
		t.Errorf("lr round trip = %#x, want 0x48", m.ExitStatus())
	}
}

func TestMemoryWordAndByte(t *testing.T) {
	// Store 0x11223344 at SP-8, reload word and byte 3.
	prog := append([]Inst{
		{Op: OpAddis, RD: 4, RA: RegZero, Imm: 0x1122},
		{Op: OpOri, RD: 4, RA: 4, Imm: 0x3344},
		{Op: OpStw, RD: 4, RA: RegSP, Imm: -8},
		{Op: OpLwz, RD: 5, RA: RegSP, Imm: -8},
		{Op: OpLbz, RD: 6, RA: RegSP, Imm: -8}, // big-endian: MSB first = 0x11
		{Op: OpSubf, RD: 3, RA: 6, RB: 5},      // r5 - r6
		{Op: OpAddi, RD: 7, RA: RegZero, Imm: 16},
		{Op: OpSrw, RD: 3, RA: 3, RB: 7},
	}, exitSeq()...)
	m := run(t, prog)
	// (0x11223344 - 0x11) >> 16 = 0x1122
	if m.ExitStatus() != 0x1122 {
		t.Errorf("got %#x, want 0x1122", m.ExitStatus())
	}
}

func TestIndexedMemory(t *testing.T) {
	prog := append([]Inst{
		{Op: OpAddi, RD: 4, RA: RegZero, Imm: 123},
		{Op: OpAddi, RD: 5, RA: RegZero, Imm: -16}, // index
		{Op: OpStwx, RD: 4, RA: RegSP, RB: 5},
		{Op: OpLwzx, RD: 3, RA: RegSP, RB: 5},
	}, exitSeq()...)
	m := run(t, prog)
	if m.ExitStatus() != 123 {
		t.Errorf("got %d, want 123", m.ExitStatus())
	}
}

func TestExceptions(t *testing.T) {
	tests := []struct {
		name string
		prog []Inst
		want Exc
	}{
		{"div by zero", []Inst{
			{Op: OpAddi, RD: 4, RA: RegZero, Imm: 1},
			{Op: OpDivw, RD: 3, RA: 4, RB: 0},
		}, ExcDivZero},
		{"mod by zero", []Inst{
			{Op: OpAddi, RD: 4, RA: RegZero, Imm: 1},
			{Op: OpMod, RD: 3, RA: 4, RB: 0},
		}, ExcDivZero},
		{"misaligned load", []Inst{
			{Op: OpLwz, RD: 3, RA: RegSP, Imm: -7},
		}, ExcAlign},
		{"store into text", []Inst{
			{Op: OpAddi, RD: 4, RA: RegZero, Imm: TextBase},
			{Op: OpStw, RD: 4, RA: 4, Imm: 0},
		}, ExcProt},
		{"load below text", []Inst{
			{Op: OpLwz, RD: 3, RA: RegZero, Imm: 16},
		}, ExcProt},
		{"wild store", []Inst{
			{Op: OpAddis, RD: 4, RA: RegZero, Imm: 0x7fff},
			{Op: OpStw, RD: 4, RA: 4, Imm: 0},
		}, ExcProt},
		{"bad syscall", []Inst{
			{Op: OpAddi, RD: RegSys, RA: RegZero, Imm: 999},
			{Op: OpSc},
		}, ExcBadSys},
		{"unhandled trap", []Inst{
			{Op: OpTrap},
		}, ExcTrap},
		{"runs off text end", []Inst{
			{Op: OpNop},
		}, ExcProt},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := run(t, tt.prog)
			if m.State() != StateCrashed {
				t.Fatalf("state = %v, want crashed", m.State())
			}
			if exc, _ := m.Exception(); exc != tt.want {
				t.Errorf("exception = %v, want %v", exc, tt.want)
			}
		})
	}
}

func TestIllegalInstructionCrash(t *testing.T) {
	m := New(Config{})
	img := buildImage(exitSeq())
	img.Text[0] = 0xffffffff // undecodable
	if err := m.Load(img); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.State() != StateCrashed {
		t.Fatalf("state = %v, want crashed", m.State())
	}
	if exc, at := m.Exception(); exc != ExcIllegal || at != TextBase {
		t.Errorf("exception = %v at %#x, want illegal at %#x", exc, at, TextBase)
	}
}

func TestWatchdogHang(t *testing.T) {
	m := New(Config{MaxCycles: 1000})
	// Infinite loop: b .
	img := buildImage([]Inst{{Op: OpB, Off26: 0}})
	if err := m.Load(img); err != nil {
		t.Fatal(err)
	}
	state, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if state != StateHung {
		t.Fatalf("state = %v, want hung", state)
	}
	if m.Cycles() != 1000 {
		t.Errorf("cycles = %d, want 1000", m.Cycles())
	}
}

func TestSyscallIO(t *testing.T) {
	// Read two ints, write their sum, echo one char, exit 0.
	prog := append([]Inst{
		{Op: OpAddi, RD: RegSys, RA: RegZero, Imm: SysReadInt},
		{Op: OpSc},
		{Op: OpOr, RD: 8, RA: 3, RB: 3},
		{Op: OpAddi, RD: RegSys, RA: RegZero, Imm: SysReadInt},
		{Op: OpSc},
		{Op: OpAdd, RD: 3, RA: 8, RB: 3},
		{Op: OpAddi, RD: RegSys, RA: RegZero, Imm: SysWriteInt},
		{Op: OpSc},
		{Op: OpAddi, RD: RegSys, RA: RegZero, Imm: SysReadChar},
		{Op: OpSc},
		{Op: OpAddi, RD: RegSys, RA: RegZero, Imm: SysWriteChar},
		{Op: OpSc},
		{Op: OpAddi, RD: 3, RA: RegZero, Imm: 0},
	}, exitSeq()...)
	m := New(Config{})
	if err := m.Load(buildImage(prog)); err != nil {
		t.Fatal(err)
	}
	m.SetInput([]int32{40, 2})
	m.SetByteInput([]byte{'Z'})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := string(m.Output()); got != "42\nZ" {
		t.Errorf("output = %q, want %q", got, "42\nZ")
	}
}

func TestReadIntEOF(t *testing.T) {
	prog := append([]Inst{
		{Op: OpAddi, RD: RegSys, RA: RegZero, Imm: SysReadInt},
		{Op: OpSc},
		{Op: OpOr, RD: 3, RA: 4, RB: 4}, // exit with EOF flag
	}, exitSeq()...)
	m := New(Config{})
	if err := m.Load(buildImage(prog)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.ExitStatus() != 1 {
		t.Errorf("EOF flag = %d, want 1", m.ExitStatus())
	}
}

func TestReadCharEOF(t *testing.T) {
	prog := append([]Inst{
		{Op: OpAddi, RD: RegSys, RA: RegZero, Imm: SysReadChar},
		{Op: OpSc},
	}, exitSeq()...)
	m := New(Config{})
	if err := m.Load(buildImage(prog)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.ExitStatus() != -1 {
		t.Errorf("EOF char = %d, want -1", m.ExitStatus())
	}
}

func TestBrkAllocates(t *testing.T) {
	// p = brk(64); store 7 at p; load it back.
	prog := append([]Inst{
		{Op: OpAddi, RD: 3, RA: RegZero, Imm: 64},
		{Op: OpAddi, RD: RegSys, RA: RegZero, Imm: SysBrk},
		{Op: OpSc},
		{Op: OpOr, RD: 9, RA: 3, RB: 3},
		{Op: OpAddi, RD: 4, RA: RegZero, Imm: 7},
		{Op: OpStw, RD: 4, RA: 9, Imm: 0},
		{Op: OpLwz, RD: 3, RA: 9, Imm: 0},
	}, exitSeq()...)
	m := run(t, prog)
	if m.State() != StateHalted {
		t.Fatalf("state %v exc %v", m.State(), m.exc)
	}
	if m.ExitStatus() != 7 {
		t.Errorf("heap round trip = %d, want 7", m.ExitStatus())
	}
}

func TestBrkExhaustionCrashes(t *testing.T) {
	prog := append([]Inst{
		{Op: OpAddis, RD: 3, RA: RegZero, Imm: 0x7f0}, // huge request
		{Op: OpAddi, RD: RegSys, RA: RegZero, Imm: SysBrk},
		{Op: OpSc},
	}, exitSeq()...)
	m := run(t, prog)
	if m.State() != StateCrashed {
		t.Fatalf("state = %v, want crashed", m.State())
	}
}

func TestStackOverflow(t *testing.T) {
	// Push SP down in a loop until the guard trips.
	prog := []Inst{
		{Op: OpAddi, RD: RegSP, RA: RegSP, Imm: -32767},
		{Op: OpB, Off26: -4},
	}
	m := run(t, prog)
	if m.State() != StateCrashed {
		t.Fatalf("state = %v, want crashed", m.State())
	}
	if exc, _ := m.Exception(); exc != ExcStackOvf {
		t.Errorf("exception = %v, want stack overflow", exc)
	}
}

func TestIABRTriggersHook(t *testing.T) {
	prog := append([]Inst{
		{Op: OpAddi, RD: 3, RA: RegZero, Imm: 1},
		{Op: OpAddi, RD: 3, RA: 3, Imm: 1},
		{Op: OpAddi, RD: 3, RA: 3, Imm: 1},
	}, exitSeq()...)
	m := New(Config{})
	if err := m.Load(buildImage(prog)); err != nil {
		t.Fatal(err)
	}
	var hits []uint32
	m.SetIABRHook(func(mm *Machine, addr uint32) { hits = append(hits, addr) })
	if err := m.SetIABR(0, TextBase+4); err != nil {
		t.Fatal(err)
	}
	if err := m.SetIABR(1, TextBase+8); err != nil {
		t.Fatal(err)
	}
	if err := m.SetIABR(2, TextBase); err == nil {
		t.Error("SetIABR(2) should fail: only two breakpoint registers")
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 || hits[0] != TextBase+4 || hits[1] != TextBase+8 {
		t.Errorf("IABR hits = %#v", hits)
	}
}

func TestClearIABR(t *testing.T) {
	prog := append([]Inst{{Op: OpAddi, RD: 3, RA: RegZero, Imm: 1}}, exitSeq()...)
	m := New(Config{})
	if err := m.Load(buildImage(prog)); err != nil {
		t.Fatal(err)
	}
	hits := 0
	m.SetIABRHook(func(mm *Machine, addr uint32) { hits++ })
	if err := m.SetIABR(0, TextBase); err != nil {
		t.Fatal(err)
	}
	m.ClearIABR(0)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if hits != 0 {
		t.Errorf("cleared IABR still fired %d times", hits)
	}
}

func TestFetchHookCorruptsTransiently(t *testing.T) {
	// Program computes r3 = 5. The fetch hook rewrites the immediate to 9
	// without touching memory.
	prog := append([]Inst{{Op: OpAddi, RD: 3, RA: RegZero, Imm: 5}}, exitSeq()...)
	m := New(Config{})
	if err := m.Load(buildImage(prog)); err != nil {
		t.Fatal(err)
	}
	m.SetFetchHook(func(addr, word uint32) uint32 {
		if addr == TextBase {
			return Encode(Inst{Op: OpAddi, RD: 3, RA: RegZero, Imm: 9})
		}
		return word
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.ExitStatus() != 9 {
		t.Errorf("exit = %d, want 9 (fetch-bus corruption)", m.ExitStatus())
	}
	// Memory must be unchanged.
	w, err := m.ReadWord(TextBase)
	if err != nil {
		t.Fatal(err)
	}
	if w != Encode(Inst{Op: OpAddi, RD: 3, RA: RegZero, Imm: 5}) {
		t.Error("fetch hook must not modify instruction memory")
	}
}

func TestLoadStoreHooks(t *testing.T) {
	prog := append([]Inst{
		{Op: OpAddi, RD: 4, RA: RegZero, Imm: 10},
		{Op: OpStw, RD: 4, RA: RegSP, Imm: -8},
		{Op: OpLwz, RD: 3, RA: RegSP, Imm: -8},
	}, exitSeq()...)
	m := New(Config{})
	if err := m.Load(buildImage(prog)); err != nil {
		t.Fatal(err)
	}
	m.SetStoreHook(func(addr, v uint32) uint32 { return v + 1 })
	m.SetLoadHook(func(addr, v uint32) uint32 { return v * 2 })
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.ExitStatus() != 22 {
		t.Errorf("exit = %d, want 22 ((10+1)*2)", m.ExitStatus())
	}
}

func TestTrapHookExecutesInjected(t *testing.T) {
	// Original program would compute r3=5; we displace that instruction with
	// a trap and have the handler execute a corrupted version (imm=6).
	orig := Inst{Op: OpAddi, RD: 3, RA: RegZero, Imm: 5}
	prog := append([]Inst{orig}, exitSeq()...)
	m := New(Config{})
	if err := m.Load(buildImage(prog)); err != nil {
		t.Fatal(err)
	}
	m.SetTextWritable(true)
	if err := m.WriteWord(TextBase, Encode(Inst{Op: OpTrap})); err != nil {
		t.Fatal(err)
	}
	m.SetTextWritable(false)
	m.SetTrapHook(func(mm *Machine, addr uint32) error {
		return mm.ExecuteInjected(Encode(Inst{Op: OpAddi, RD: 3, RA: RegZero, Imm: 6}))
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.State() != StateHalted {
		t.Fatalf("state %v", m.State())
	}
	if m.ExitStatus() != 6 {
		t.Errorf("exit = %d, want 6", m.ExitStatus())
	}
}

func TestWriteWordProtection(t *testing.T) {
	m := New(Config{})
	if err := m.Load(buildImage(exitSeq())); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteWord(TextBase, 0); err == nil {
		t.Error("WriteWord into text without SetTextWritable should fail")
	}
	m.SetTextWritable(true)
	if err := m.WriteWord(TextBase, 0); err != nil {
		t.Errorf("WriteWord with textWritable: %v", err)
	}
	if err := m.WriteWord(uint32(len(m.mem)), 0); err == nil {
		t.Error("WriteWord out of range should fail")
	}
	if err := m.WriteWord(TextBase+2, 0); err == nil {
		t.Error("misaligned WriteWord should fail")
	}
}

func TestLoadRejectsHugeImage(t *testing.T) {
	m := New(Config{MemSize: 1 << 16})
	img := Image{Text: make([]uint32, 1<<14), Entry: TextBase}
	if err := m.Load(img); err == nil {
		t.Error("Load of oversized image should fail")
	}
}

func TestReloadResetsState(t *testing.T) {
	prog := append([]Inst{
		{Op: OpAddi, RD: 3, RA: RegZero, Imm: 1},
		{Op: OpAddi, RD: RegSys, RA: RegZero, Imm: SysWriteInt},
		{Op: OpSc},
		{Op: OpAddi, RD: 3, RA: RegZero, Imm: 0},
	}, exitSeq()...)
	m := New(Config{})
	img := buildImage(prog)
	for i := 0; i < 2; i++ {
		if err := m.Load(img); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if got := string(m.Output()); got != "1\n" {
			t.Fatalf("run %d: output %q, want \"1\\n\" (reload must reset output)", i, got)
		}
	}
}

func TestRunTwiceFails(t *testing.T) {
	m := New(Config{})
	if err := m.Load(buildImage(exitSeq())); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "not ready") {
		t.Errorf("second Run should fail with not-ready, got %v", err)
	}
}

func TestMisalignedPC(t *testing.T) {
	m := New(Config{})
	if err := m.Load(buildImage(exitSeq())); err != nil {
		t.Fatal(err)
	}
	m.SetPC(TextBase + 2)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if exc, _ := m.Exception(); exc != ExcAlign {
		t.Errorf("exception = %v, want alignment", exc)
	}
}

func TestBranchOutsideTextCrashes(t *testing.T) {
	m := run(t, []Inst{{Op: OpB, Off26: -2048}})
	if m.State() != StateCrashed {
		t.Fatalf("state = %v, want crashed", m.State())
	}
	if exc, _ := m.Exception(); exc != ExcProt {
		t.Errorf("exception = %v, want protection", exc)
	}
}

func TestTraceRing(t *testing.T) {
	prog := append([]Inst{
		{Op: OpAddi, RD: 3, RA: RegZero, Imm: 1},
		{Op: OpAddi, RD: 3, RA: 3, Imm: 1},
		{Op: OpAddi, RD: 3, RA: 3, Imm: 1},
	}, exitSeq()...)
	m := New(Config{})
	if err := m.Load(buildImage(prog)); err != nil {
		t.Fatal(err)
	}
	m.EnableTrace(3)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	tr := m.Trace()
	if len(tr) != 3 {
		t.Fatalf("trace has %d entries, want 3 (ring capacity)", len(tr))
	}
	// The last entry must be the sc; entries are oldest-first.
	if tr[2].PC != TextBase+4*4 {
		t.Errorf("last traced PC = %#x, want the sc at %#x", tr[2].PC, TextBase+16)
	}
	if tr[0].PC >= tr[1].PC && tr[1].PC >= tr[2].PC {
		t.Errorf("trace not oldest-first: %+v", tr)
	}
	// Disabled tracing returns nothing and costs nothing.
	m2 := New(Config{})
	if err := m2.Load(buildImage(prog)); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	if len(m2.Trace()) != 0 {
		t.Error("trace recorded while disabled")
	}
	m2.EnableTrace(4)
	m2.EnableTrace(0)
	if m2.Trace() != nil {
		t.Error("EnableTrace(0) should disable tracing")
	}
}

func TestTracePartialFill(t *testing.T) {
	m := New(Config{})
	if err := m.Load(buildImage(exitSeq())); err != nil {
		t.Fatal(err)
	}
	m.EnableTrace(64)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	tr := m.Trace()
	if len(tr) != 2 {
		t.Fatalf("trace has %d entries, want 2", len(tr))
	}
	if tr[0].PC != TextBase {
		t.Errorf("first traced PC = %#x", tr[0].PC)
	}
}
