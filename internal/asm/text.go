package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/vm"
)

// Parse assembles textual assembly source into a Builder. The syntax is the
// classic two-column form used in the paper's listings:
//
//	        .text
//	main:   addi r3,r0,1
//	        cmpwi cr0,r3,10
//	        bc lt,cr0,main
//	        bl helper
//	        lwz r4,8(r1)
//	        la r5,buf          ; load data address (expands to addis+ori)
//	        li r6,70000        ; load 32-bit immediate
//	        .data
//	buf:    .space 64
//	tab:    .word 1,2,3
//	msg:    .ascii "hi"
//
// Comments start with ';' or '#'. Labels end with ':'.
func Parse(src string) (*Builder, error) {
	b := NewBuilder()
	inData := false
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly several) at line start.
		for {
			i := strings.Index(line, ":")
			if i < 0 || strings.ContainsAny(line[:i], " \t,(") {
				break
			}
			name := line[:i]
			var err error
			if inData {
				err = b.DataLabel(name)
			} else {
				err = b.Label(name)
			}
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
			}
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		mnem := fields[0]
		rest := strings.TrimSpace(strings.TrimPrefix(line, mnem))
		switch mnem {
		case ".text":
			inData = false
			continue
		case ".data":
			inData = true
			continue
		case ".word":
			for _, tok := range splitOperands(rest) {
				v, err := parseImm(tok)
				if err != nil {
					return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
				}
				b.Word(uint32(v))
			}
			continue
		case ".space":
			v, err := parseImm(rest)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("line %d: bad .space size %q", lineNo+1, rest)
			}
			b.Space(uint32(v))
			continue
		case ".ascii":
			s, err := strconv.Unquote(rest)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad .ascii string: %w", lineNo+1, err)
			}
			b.Bytes([]byte(s))
			continue
		case ".align":
			b.AlignData()
			continue
		}
		if inData {
			return nil, fmt.Errorf("line %d: instruction %q in data segment", lineNo+1, mnem)
		}
		if err := parseInst(b, mnem, rest); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
	}
	return b, nil
}

// AssembleText parses and assembles source with the given entry label.
func AssembleText(src, entry string) (*Program, error) {
	b, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return b.Assemble(entry)
}

func splitOperands(s string) []string {
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	if len(parts) == 1 && parts[0] == "" {
		return nil
	}
	return parts
}

func parseImm(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return v, nil
}

func parseReg(s string) (uint8, error) {
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 31 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func parseCRF(s string) (uint8, error) {
	if !strings.HasPrefix(s, "cr") {
		return 0, fmt.Errorf("bad condition field %q", s)
	}
	n, err := strconv.Atoi(s[2:])
	if err != nil || n < 0 || n > 7 {
		return 0, fmt.Errorf("bad condition field %q", s)
	}
	return uint8(n), nil
}

var mnemonicOps = map[string]vm.Opcode{
	"addi": vm.OpAddi, "addis": vm.OpAddis, "mulli": vm.OpMulli,
	"andi": vm.OpAndi, "ori": vm.OpOri, "xori": vm.OpXori,
	"lwz": vm.OpLwz, "stw": vm.OpStw, "lbz": vm.OpLbz, "stb": vm.OpStb,
	"cmpwi": vm.OpCmpwi,
	"add":   vm.OpAdd, "subf": vm.OpSubf, "mullw": vm.OpMullw,
	"divw": vm.OpDivw, "mod": vm.OpMod,
	"and": vm.OpAnd, "or": vm.OpOr, "xor": vm.OpXor,
	"slw": vm.OpSlw, "srw": vm.OpSrw, "sraw": vm.OpSraw,
	"neg": vm.OpNeg, "cmpw": vm.OpCmpw,
	"lwzx": vm.OpLwzx, "stwx": vm.OpStwx, "lbzx": vm.OpLbzx, "stbx": vm.OpStbx,
	"b": vm.OpB, "bl": vm.OpBl, "bc": vm.OpBc,
	"blr": vm.OpBlr, "mflr": vm.OpMflr, "mtlr": vm.OpMtlr,
	"sc": vm.OpSc, "trap": vm.OpTrap, "nop": vm.OpNop,
}

var condByName = map[string]vm.Cond{
	"lt": vm.CondLT, "le": vm.CondLE, "eq": vm.CondEQ,
	"ge": vm.CondGE, "gt": vm.CondGT, "ne": vm.CondNE,
}

// parseInst assembles one instruction line onto the builder.
func parseInst(b *Builder, mnem, rest string) error {
	ops := splitOperands(rest)
	// Pseudo-instructions first.
	switch mnem {
	case "li": // li rD,imm32
		if len(ops) != 2 {
			return fmt.Errorf("li needs 2 operands")
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		v, err := parseImm(ops[1])
		if err != nil {
			return err
		}
		b.EmitLoadImm32(rd, int32(v))
		return nil
	case "la": // la rD,datasym
		if len(ops) != 2 {
			return fmt.Errorf("la needs 2 operands")
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		b.EmitLoadAddr(rd, ops[1])
		return nil
	case "mr": // mr rD,rA  ->  or rD,rA,rA
		if len(ops) != 2 {
			return fmt.Errorf("mr needs 2 operands")
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		ra, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		b.Emit(vm.Inst{Op: vm.OpOr, RD: rd, RA: ra, RB: ra})
		return nil
	}

	op, ok := mnemonicOps[mnem]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnem)
	}
	in := vm.Inst{Op: op}
	switch op {
	case vm.OpLwz, vm.OpStw, vm.OpLbz, vm.OpStb:
		// rD, d(rA)
		if len(ops) != 2 {
			return fmt.Errorf("%s needs 2 operands", mnem)
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		open := strings.Index(ops[1], "(")
		closeP := strings.Index(ops[1], ")")
		if open < 0 || closeP < open {
			return fmt.Errorf("bad memory operand %q", ops[1])
		}
		d, err := parseImm(ops[1][:open])
		if err != nil {
			return err
		}
		ra, err := parseReg(ops[1][open+1 : closeP])
		if err != nil {
			return err
		}
		in.RD, in.RA, in.Imm = rd, ra, int32(d)
	case vm.OpAddi, vm.OpAddis, vm.OpMulli, vm.OpAndi, vm.OpOri, vm.OpXori:
		if len(ops) != 3 {
			return fmt.Errorf("%s needs 3 operands", mnem)
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		ra, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		v, err := parseImm(ops[2])
		if err != nil {
			return err
		}
		in.RD, in.RA, in.Imm = rd, ra, int32(v)
	case vm.OpCmpwi:
		if len(ops) != 3 {
			return fmt.Errorf("cmpwi needs 3 operands")
		}
		crf, err := parseCRF(ops[0])
		if err != nil {
			return err
		}
		ra, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		v, err := parseImm(ops[2])
		if err != nil {
			return err
		}
		in.RD, in.RA, in.Imm = crf<<2, ra, int32(v)
	case vm.OpCmpw:
		if len(ops) != 3 {
			return fmt.Errorf("cmpw needs 3 operands")
		}
		crf, err := parseCRF(ops[0])
		if err != nil {
			return err
		}
		ra, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		rb, err := parseReg(ops[2])
		if err != nil {
			return err
		}
		in.RD, in.RA, in.RB = crf<<2, ra, rb
	case vm.OpAdd, vm.OpSubf, vm.OpMullw, vm.OpDivw, vm.OpMod,
		vm.OpAnd, vm.OpOr, vm.OpXor, vm.OpSlw, vm.OpSrw, vm.OpSraw,
		vm.OpLwzx, vm.OpStwx, vm.OpLbzx, vm.OpStbx:
		if len(ops) != 3 {
			return fmt.Errorf("%s needs 3 operands", mnem)
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		ra, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		rb, err := parseReg(ops[2])
		if err != nil {
			return err
		}
		in.RD, in.RA, in.RB = rd, ra, rb
	case vm.OpNeg:
		if len(ops) != 2 {
			return fmt.Errorf("neg needs 2 operands")
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		ra, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		in.RD, in.RA = rd, ra
	case vm.OpB, vm.OpBl:
		if len(ops) != 1 {
			return fmt.Errorf("%s needs 1 operand", mnem)
		}
		b.EmitBranch(in, ops[0])
		return nil
	case vm.OpBc:
		if len(ops) != 3 {
			return fmt.Errorf("bc needs 3 operands (cond,crf,label)")
		}
		cond, ok := condByName[ops[0]]
		if !ok {
			return fmt.Errorf("bad branch condition %q", ops[0])
		}
		crf, err := parseCRF(ops[1])
		if err != nil {
			return err
		}
		in.RD, in.RA = uint8(cond), crf
		b.EmitBranch(in, ops[2])
		return nil
	case vm.OpMflr, vm.OpMtlr:
		if len(ops) != 1 {
			return fmt.Errorf("%s needs 1 operand", mnem)
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		in.RD = rd
	case vm.OpBlr, vm.OpSc, vm.OpTrap, vm.OpNop:
		if len(ops) != 0 {
			return fmt.Errorf("%s takes no operands", mnem)
		}
	}
	b.Emit(in)
	return nil
}
