package parallel_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/parallel"
)

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		n := 1000
		hits := make([]atomic.Int32, n)
		err := parallel.ForEach(workers, n, func(worker, i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, got)
			}
		}
	}
}

func TestForEachWorkerIDsAreStable(t *testing.T) {
	const workers = 4
	var used [workers]atomic.Int32
	err := parallel.ForEach(workers, 200, func(worker, i int) error {
		if worker < 0 || worker >= workers {
			return fmt.Errorf("worker id %d out of range", worker)
		}
		used[worker].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := int32(0)
	for w := range used {
		total += used[w].Load()
	}
	if total != 200 {
		t.Fatalf("executed %d of 200 indices", total)
	}
}

func TestForEachSerialOrder(t *testing.T) {
	var order []int
	err := parallel.ForEach(1, 10, func(worker, i int) error {
		if worker != 0 {
			t.Fatalf("serial path used worker %d", worker)
		}
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if i != v {
			t.Fatalf("serial path ran out of order: %v", order)
		}
	}
}

func TestForEachReturnsLowestFailedIndex(t *testing.T) {
	boom := errors.New("boom")
	err := parallel.ForEach(8, 100, func(worker, i int) error {
		if i == 7 || i == 93 {
			return fmt.Errorf("index %d: %w", i, boom)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error lost its cause: %v", err)
	}
	// Index 7 always fails before the pool drains, so with both indices
	// failing the reported error must be the lower one.
	if got := err.Error(); got != "index 7: boom" {
		t.Fatalf("got error %q, want the lowest failed index", got)
	}
}

func TestForEachStopsHandingOutWorkAfterFailure(t *testing.T) {
	var ran atomic.Int32
	err := parallel.ForEach(2, 10_000, func(worker, i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("early failure")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if got := ran.Load(); got == 10_000 {
		t.Fatal("pool drained the whole index space after a failure")
	}
}

func TestMapKeepsIndexOrder(t *testing.T) {
	got, err := parallel.Map(8, 500, func(worker, i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("index %d holds %d", i, v)
		}
	}
}

// TestForEachRecoversPanics is the per-unit isolation gate: a panicking fn
// must surface as a *PanicError — value, index and stack attached — on the
// serial path and on a real fan-out alike, never as a process crash or a
// deadlocked join.
func TestForEachRecoversPanics(t *testing.T) {
	for _, workers := range []int{1, 8} {
		err := parallel.ForEach(workers, 50, func(worker, i int) error {
			if i == 3 {
				panic(fmt.Sprintf("host bug at %d", i))
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: panic was swallowed", workers)
		}
		var pe *parallel.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: got %T (%v), want *PanicError", workers, err, err)
		}
		if pe.Index != 3 || pe.Value != "host bug at 3" {
			t.Fatalf("workers=%d: wrong panic payload: %+v", workers, pe)
		}
		if !strings.Contains(string(pe.Stack), "goroutine") {
			t.Fatalf("workers=%d: stack not captured", workers)
		}
	}
}

// TestForEachPanicBeatsLaterErrors checks that a recovered panic competes
// in the lowest-failed-index rule like any other unit error.
func TestForEachPanicBeatsLaterErrors(t *testing.T) {
	err := parallel.ForEach(1, 10, func(worker, i int) error {
		switch i {
		case 2:
			panic("early panic")
		case 5:
			return errors.New("late error")
		}
		return nil
	})
	var pe *parallel.PanicError
	if !errors.As(err, &pe) || pe.Index != 2 {
		t.Fatalf("got %v, want the panic from index 2", err)
	}
}

// TestForEachCtxDrainsOnCancel verifies the graceful-shutdown contract:
// cancellation stops the hand-out of new indices, claimed indices complete,
// and the join reports ctx.Err().
func TestForEachCtxDrainsOnCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var started, finished atomic.Int32
		err := parallel.ForEachCtx(ctx, workers, 10_000, func(worker, i int) error {
			started.Add(1)
			if started.Load() == 5 {
				cancel()
			}
			finished.Add(1)
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		if s, f := started.Load(), finished.Load(); s != f {
			t.Fatalf("workers=%d: %d units started but only %d drained", workers, s, f)
		}
		if started.Load() == 10_000 {
			t.Fatalf("workers=%d: cancellation did not stop the hand-out", workers)
		}
	}
}

// TestForEachCtxErrorWinsOverCancel: a unit failure reported before (or
// alongside) cancellation takes precedence, keeping error text stable.
func TestForEachCtxErrorWinsOverCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	boom := errors.New("boom")
	err := parallel.ForEachCtx(ctx, 4, 1000, func(worker, i int) error {
		if i == 0 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the unit error", err)
	}
}

func TestMapCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := parallel.MapCtx(ctx, 4, 100, func(worker, i int) (int, error) { return i, nil })
	if out != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("got (%v, %v), want (nil, context.Canceled)", out, err)
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	if err := parallel.ForEach(0, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := parallel.ForEach(-3, -1, nil); err != nil {
		t.Fatal(err)
	}
	if n := parallel.DefaultWorkers(0); n < 1 {
		t.Fatalf("DefaultWorkers(0) = %d", n)
	}
	if n := parallel.DefaultWorkers(5); n != 5 {
		t.Fatalf("DefaultWorkers(5) = %d", n)
	}
}
