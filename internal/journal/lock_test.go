package journal

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestJournalLockExcludesSecondOpener: while one campaign holds a journal,
// any second opener — resume or fresh create — must fail fast with a
// readable error instead of interleaving appends into the same file.
func TestJournalLockExcludesSecondOpener(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Bind(0xfeed); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(0, Outcome{Mode: 1}); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(path); err == nil {
		t.Fatal("second Open succeeded while the journal is held")
	} else if !strings.Contains(err.Error(), "locked") {
		t.Fatalf("second Open error %q does not mention the lock", err)
	}
	if _, err := Create(path); err == nil {
		t.Fatal("second Create succeeded while the journal is held")
	}

	// A lost Create race must not have truncated the holder's records.
	if err := j.Append(1, Outcome{Mode: 2}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// The lock dies with the holder: reopening after Close succeeds and
	// replays both records.
	j2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	defer j2.Close()
	if j2.Len() != 2 {
		t.Fatalf("reopened journal holds %d records, want 2", j2.Len())
	}
}
