// Package programs contains the target-program suite of the reproduction:
// several independently-designed implementations of the Camelot and JamesB
// contest problems plus the SOR solver, written in the mini-C dialect of
// internal/cc, together with Go reference oracles for their specifications
// and the registry of real software faults seeded in them.
//
// The suite mirrors the properties the paper's §4.2/§6.2 program set was
// chosen for: a formal, correct specification; several implementations of
// the same spec differing in algorithm, recursion, data structures and code
// size; and known real faults characterised by their corrective source
// diff, each classified with ODC.
package programs

import (
	"fmt"
	"strconv"
)

// Input is one program input: the integer stream consumed by read_int and
// the byte stream consumed by read_char.
type Input struct {
	Ints  []int32
	Bytes []byte
}

// --- Camelot specification -------------------------------------------------
//
// An 8x8 chessboard holds one king and n knights (0 <= n <= 63). All pieces
// must gather on a single square. Knights move as chess knights; the king
// moves one step in any of the 8 directions. A knight may pick up the king
// by moving onto the king's current square (or starting there); from then on
// they move together as one knight. The cost is the total number of moves.
// Input: n, kingX, kingY, then n knight coordinate pairs (all 0..7).
// Output: the minimum total number of moves, as one integer line.

// chebyshev is the king's walking distance.
func chebyshev(x1, y1, x2, y2 int32) int32 {
	dx := x1 - x2
	if dx < 0 {
		dx = -dx
	}
	dy := y1 - y2
	if dy < 0 {
		dy = -dy
	}
	if dx > dy {
		return dx
	}
	return dy
}

// knightMoves are the eight knight displacement vectors.
var knightMoves = [8][2]int32{
	{1, 2}, {2, 1}, {2, -1}, {1, -2},
	{-1, -2}, {-2, -1}, {-2, 1}, {-1, 2},
}

// knightDistances returns the all-pairs knight-move distances on the 8x8
// board, indexed by square = x*8+y.
func knightDistances() [64][64]int32 {
	var kd [64][64]int32
	for src := int32(0); src < 64; src++ {
		var dist [64]int32
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue := []int32{src}
		for len(queue) > 0 {
			s := queue[0]
			queue = queue[1:]
			x, y := s/8, s%8
			for _, mv := range knightMoves {
				nx, ny := x+mv[0], y+mv[1]
				if nx < 0 || nx > 7 || ny < 0 || ny > 7 {
					continue
				}
				ns := nx*8 + ny
				if dist[ns] == -1 {
					dist[ns] = dist[s] + 1
					queue = append(queue, ns)
				}
			}
		}
		kd[src] = dist
	}
	return kd
}

var kdTable = knightDistances()

// CamelotSolve is the reference oracle for the Camelot specification. It
// returns the program's expected output for the given input stream.
func CamelotSolve(in Input) (string, error) {
	ints := in.Ints
	if len(ints) < 3 {
		return "", fmt.Errorf("camelot: input needs at least 3 ints, got %d", len(ints))
	}
	n := ints[0]
	if n < 0 || n > 63 {
		return "", fmt.Errorf("camelot: bad knight count %d", n)
	}
	if len(ints) < int(3+2*n) {
		return "", fmt.Errorf("camelot: input needs %d ints, got %d", 3+2*n, len(ints))
	}
	kx, ky := ints[1], ints[2]
	knights := make([]int32, n)
	for i := int32(0); i < n; i++ {
		x, y := ints[3+2*i], ints[4+2*i]
		if x < 0 || x > 7 || y < 0 || y > 7 {
			return "", fmt.Errorf("camelot: knight %d off board (%d,%d)", i, x, y)
		}
		knights[i] = x*8 + y
	}

	const inf = int32(1 << 29)
	best := inf
	for g := int32(0); g < 64; g++ {
		gx, gy := g/8, g%8
		kingWalk := chebyshev(kx, ky, gx, gy)
		sumK := int32(0)
		for _, kn := range knights {
			sumK += kdTable[kn][g]
		}
		if total := sumK + kingWalk; total < best {
			best = total
		}
		// One knight detours through pickup square p to carry the king.
		for _, kn := range knights {
			for p := int32(0); p < 64; p++ {
				px, py := p/8, p%8
				t := sumK - kdTable[kn][g] + kdTable[kn][p] + chebyshev(kx, ky, px, py) + kdTable[p][g]
				if t < best {
					best = t
				}
			}
		}
	}
	return strconv.Itoa(int(best)) + "\n", nil
}

// --- JamesB specification ---------------------------------------------------
//
// Strings are codified under a seed: letters rotate within their case by
// (seed + 7*i) mod 26 at position i (0-based, mathematically non-negative
// modulus); other characters pass through. Input: the seed and the string
// length as integers, then the string bytes on the character stream.
// Output: the codified string followed by a newline.

// JamesBSolve is the reference oracle for the JamesB specification.
func JamesBSolve(in Input) (string, error) {
	if len(in.Ints) < 2 {
		return "", fmt.Errorf("jamesb: input needs 2 ints, got %d", len(in.Ints))
	}
	seed := in.Ints[0]
	length := in.Ints[1]
	if length < 0 || int(length) > len(in.Bytes) {
		return "", fmt.Errorf("jamesb: bad length %d for %d bytes", length, len(in.Bytes))
	}
	out := make([]byte, 0, length+1)
	for i := int32(0); i < length; i++ {
		c := in.Bytes[i]
		shift := (seed + 7*i) % 26
		if shift < 0 {
			shift += 26
		}
		switch {
		case c >= 'a' && c <= 'z':
			c = byte('a' + (int32(c-'a')+shift)%26)
		case c >= 'A' && c <= 'Z':
			c = byte('A' + (int32(c-'A')+shift)%26)
		}
		out = append(out, c)
	}
	out = append(out, '\n')
	return string(out), nil
}

// --- SOR specification --------------------------------------------------------
//
// Red-black successive over-relaxation for the Laplace equation on an 18x18
// grid (16x16 interior) in fixed-point arithmetic (values scaled by 16).
// The four borders are held at the given boundary values (0..1000, scaled
// internally); the interior starts at zero. Each iteration performs one red
// and one black Gauss-Seidel sweep with omega = 1.5 applied as
// new = old + 3*(avg4 - old)/2 in integer arithmetic, then records the
// residual (sum of |avg4 - cell| over the interior). After the given
// number of iterations the program prints, one integer per line: the
// interior row-major (256 lines), the per-iteration residual history, the
// interior minimum, maximum and integer mean, a checksum
// (acc = (acc*31 + cell) mod 1000003 over the interior), and the final
// residual.
//
// The paper ran SOR as a parallel program on four CPUs; the red-black
// ordering is what made it parallelisable, and this reproduction keeps the
// red-black sweeps (hence the identical data-access pattern) in a single
// thread of execution, split across two half-grid worker bands. See
// DESIGN.md for the substitution rationale.

// SOR grid geometry and scaling.
const (
	SORSize  = 18 // including boundary
	SORScale = 16
)

// SORSolve is the reference oracle for the SOR specification.
func SORSolve(in Input) (string, error) {
	if len(in.Ints) < 5 {
		return "", fmt.Errorf("sor: input needs 5 ints, got %d", len(in.Ints))
	}
	iters := in.Ints[0]
	top, bottom, left, right := in.Ints[1], in.Ints[2], in.Ints[3], in.Ints[4]
	if iters < 0 || iters > 64 {
		return "", fmt.Errorf("sor: bad iteration count %d", iters)
	}
	var g [SORSize][SORSize]int32
	for j := 0; j < SORSize; j++ {
		g[0][j] = top * SORScale
		g[SORSize-1][j] = bottom * SORScale
	}
	for i := 0; i < SORSize; i++ {
		g[i][0] = left * SORScale
		g[i][SORSize-1] = right * SORScale
	}
	avg4 := func(i, j int32) int32 {
		return (g[i-1][j] + g[i+1][j] + g[i][j-1] + g[i][j+1]) / 4
	}
	sweep := func(parity int32) {
		for i := int32(1); i < SORSize-1; i++ {
			for j := int32(1); j < SORSize-1; j++ {
				if (i+j)%2 != parity {
					continue
				}
				avg := avg4(i, j)
				g[i][j] = g[i][j] + 3*(avg-g[i][j])/2
			}
		}
	}
	residual := func() int32 {
		var sum int32
		for i := int32(1); i < SORSize-1; i++ {
			for j := int32(1); j < SORSize-1; j++ {
				d := avg4(i, j) - g[i][j]
				if d < 0 {
					d = -d
				}
				sum += d
			}
		}
		return sum
	}
	history := make([]int32, 0, iters)
	for it := int32(0); it < iters; it++ {
		sweep(0)
		sweep(1)
		history = append(history, residual())
	}

	var out []byte
	emit := func(v int32) {
		out = strconv.AppendInt(out, int64(v), 10)
		out = append(out, '\n')
	}
	min, max := g[1][1], g[1][1]
	var sum, checksum int32
	for i := 1; i < SORSize-1; i++ {
		for j := 1; j < SORSize-1; j++ {
			v := g[i][j]
			emit(v)
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
			sum += v
			checksum = (checksum*31 + v) % 1000003
		}
	}
	for _, r := range history {
		emit(r)
	}
	emit(min)
	emit(max)
	emit(sum / 256)
	emit(checksum)
	emit(residual())
	return string(out), nil
}
