package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/telemetry"
)

// TelemetryFlags holds the observability flags shared by the three CLIs:
// the JSONL trace sink, the end-of-run JSON report, the debug HTTP server,
// and the live progress line. The zero value (no flag given, non-TTY
// stderr) disables every plane, which keeps the telemetry-off hot path a
// single nil check.
type TelemetryFlags struct {
	TracePath  string // -trace: stream events as JSON lines to this file
	ReportPath string // -report: write the end-of-run JSON report here
	DebugAddr  string // -debug-addr: serve /metrics, expvar and pprof
	Progress   string // -progress: auto (TTY only), on, off
}

// AddTelemetryFlags registers the shared observability flags on fs and
// returns the struct they parse into.
func AddTelemetryFlags(fs *flag.FlagSet) *TelemetryFlags {
	tf := &TelemetryFlags{}
	fs.StringVar(&tf.TracePath, "trace", "", "stream structured telemetry events to this file as JSON lines")
	fs.StringVar(&tf.ReportPath, "report", "", "write a machine-readable end-of-run JSON report to this file")
	fs.StringVar(&tf.DebugAddr, "debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this host:port (use :0 for an ephemeral port)")
	fs.StringVar(&tf.Progress, "progress", "auto", "live progress line on stderr: auto (TTY only), on or off")
	return tf
}

// ValidateFabricTelemetry rejects observability flags that silently do
// nothing on a fabric executor. An executor merges no verdicts, so -report
// would write an empty shell, and it has no campaign totals for -progress
// to draw — both are almost certainly a flag set meant for the coordinator.
// -debug-addr and -trace stay allowed: an executor serves its own local
// pprof/metrics and can stream its own lifecycle events, independent of
// what federation pushes to the coordinator.
func ValidateFabricTelemetry(fab *FabricFlags, tf *TelemetryFlags) error {
	if fab == nil || tf == nil || fab.Join == "" {
		return nil
	}
	if tf.ReportPath != "" {
		return fmt.Errorf("-report is a coordinator flag: an executor merges no verdicts, so its report would be empty (pass it to the -fabric-listen process)")
	}
	if tf.Progress == "on" {
		return fmt.Errorf("-progress on is a coordinator flag: an executor has no campaign totals to draw (watch the coordinator's progress line or /fleet endpoint instead)")
	}
	return nil
}

// Setup builds the telemetry handle the flags ask for and returns it with a
// cleanup function (always non-nil) that flushes the trace sink and shuts
// the debug server down. When no plane is enabled — no flag given and
// stderr is not a terminal — the handle is nil and everything downstream
// short-circuits on that.
func (tf *TelemetryFlags) Setup(tool string) (*telemetry.Telemetry, func(), error) {
	progressOn := false
	switch tf.Progress {
	case "auto":
		progressOn = telemetry.IsTTY(os.Stderr)
	case "on":
		progressOn = true
	case "off":
	default:
		return nil, nil, fmt.Errorf("-progress must be auto, on or off, got %q", tf.Progress)
	}
	if tf.TracePath == "" && tf.ReportPath == "" && tf.DebugAddr == "" && !progressOn {
		return nil, func() {}, nil
	}

	tel := &telemetry.Telemetry{Reg: telemetry.NewRegistry()}
	var cleanups []func()
	cleanup := func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}
	if tf.TracePath != "" {
		f, err := os.Create(tf.TracePath)
		if err != nil {
			return nil, nil, err
		}
		tr := telemetry.NewTracer(telemetry.DefaultTraceCap)
		tr.SinkJSONL(f)
		tel.Trace = tr
		cleanups = append(cleanups, func() {
			if err := tr.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "%s: trace sink: %v\n", tool, err)
			}
		})
	}
	if progressOn {
		tel.Progress = telemetry.NewProgress(os.Stderr, telemetry.IsTTY(os.Stderr), 0)
		cleanups = append(cleanups, tel.Progress.Stop)
	}
	if tf.DebugAddr != "" {
		srv, err := telemetry.StartDebugServer(tf.DebugAddr, tel.Reg)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		fmt.Fprintf(os.Stderr, "%s: debug server listening on http://%s/ (metrics, expvar, pprof)\n", tool, srv.Addr)
		cleanups = append(cleanups, func() {
			if err := srv.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "%s: debug server: %v\n", tool, err)
			}
		})
	}
	return tel, cleanup, nil
}

// WriteReport finalises r — telemetry snapshot, elapsed time — and writes it
// to the -report path. A no-op when -report was not given.
func (tf *TelemetryFlags) WriteReport(r *telemetry.Report, tel *telemetry.Telemetry) error {
	if tf.ReportPath == "" || r == nil {
		return nil
	}
	r.FillTelemetry(tel)
	r.ElapsedMS = time.Since(r.StartedAt).Milliseconds()
	return r.WriteFile(tf.ReportPath)
}

// PrintVersion prints the -version line: tool name, module version, VCS
// revision and toolchain, as stamped into the binary by the Go linker.
func PrintVersion(tool string) {
	fmt.Printf("%s %s\n", tool, telemetry.BinaryVersion())
}

// StartProfiles arms the -cpuprofile/-memprofile outputs and returns the
// function that finalises them (always non-nil). The heap profile is
// written at stop time, after a GC, so it reflects live retention (e.g. the
// golden store's checkpoint chains) rather than transient allocation.
func StartProfiles(tool, cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
			}
		}
	}, nil
}
