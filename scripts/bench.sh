#!/bin/sh
# bench.sh — run the performance benchmarks and emit a machine-readable
# BENCH_<tag>.json artifact (ns/op, B/op, allocs/op and the custom metrics
# the benchmarks report, e.g. the campaign's "runs" and the VM's Minstr/s).
#
# Usage:
#   scripts/bench.sh [tag] [bench-regex]
#
#   tag          suffix of the artifact: BENCH_<tag>.json (default: local)
#   bench-regex  benchmarks to run (default: the campaign A/B pair, the VM
#                throughput benchmarks — block-compiled vs interpreter —
#                and the block-compile cost benchmark)
#
# EXTRA_LABELS may hold additional "-label k=v" pairs to embed in the
# artifact, e.g. baseline numbers measured on a pre-change checkout:
#   EXTRA_LABELS="-label baseline_campaign_s=48.3" scripts/bench.sh pr2
#
# The fabric scaling run (PR 7) is invoked as:
#   scripts/bench.sh pr7 'Table4Fabric'
# When the output holds Table4Fabric/executors=N results, the artifact gains
# derived labels: fabric_speedup_2x (1-executor ns/op over 2-executor) and
# fabric_efficiency_2x (that speedup per executor). Executors are paced to a
# fixed per-unit service rate (see BenchmarkTable4Fabric), so the numbers
# measure the fabric's scheduling and merge, not this machine's core count.
#
# The storage-chaos run (PR 9) is invoked as:
#   BENCHTIME=3x scripts/bench.sh pr9 'Table4DiskChaos'
# When the output holds the Table4DiskChaos/overhead result, the artifact
# gains disk_chaos_disabled_overhead: the paired per-iteration wall-clock
# ratio of a disabled-injector journaled campaign over a no-chaos one
# (many short legs timed in alternating ABBA blocks inside the benchmark,
# so machine drift cancels). DESIGN.md
# §5j budgets it at ≤1.02 — a wired-but-idle chaos plane must cost nothing
# measurable.
#
# The federation run (PR 10) is invoked as:
#   BENCHTIME=3x scripts/bench.sh pr10 'Table4Federation'
# When the output holds the Table4Federation result, the artifact gains
# federation_disabled_overhead: the paired wall-clock ratio of a
# federation-on fabric campaign over a NoFederation one (ABBA-paired legs
# inside the benchmark, 20ms heartbeat + push interval so the push path
# fires ~50x the default 1s cadence). DESIGN.md §5k budgets it at ≤1.02.
#
# The campaign pair runs the Table 4 benchmark twice in one binary:
# "straight" replays every injection in full (the pre-checkpoint executor)
# and "workers=1" goes through golden-run checkpointing; the ratio of their
# ns/op is the fast-forward speed-up on identical work. benchtime=1x keeps
# the run at one iteration per sub-benchmark — the campaign is deterministic,
# so more iterations only add time. For A/B comparisons measuring small
# deltas (e.g. the telemetry overhead pair) set BENCHTIME=5x: the first
# iteration builds the shared golden-run store, so single-iteration numbers
# mix warmup into whichever sub-benchmark runs first.
set -eu

cd "$(dirname "$0")/.."

TAG="${1:-local}"
BENCH="${2:-Table4Parallel/(straight|workers=1\$)|VMThroughput|BlockCompile}"
OUT="BENCH_${TAG}.json"

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run=NONE -bench "$BENCH" -benchtime="${BENCHTIME:-1x}" -timeout 60m . |
	tee /dev/stderr >"$RAW"

# Derive fabric scaling labels when the fabric benchmark ran ($3 is ns/op).
SCALING="$(awk '
	$1 ~ /^BenchmarkTable4Fabric\/executors=1(-[0-9]+)?$/ { one = $3 }
	$1 ~ /^BenchmarkTable4Fabric\/executors=2(-[0-9]+)?$/ { two = $3 }
	END {
		if (one > 0 && two > 0)
			printf "-label fabric_speedup_2x=%.2f -label fabric_efficiency_2x=%.2f",
				one / two, one / two / 2
	}
' "$RAW")"

# Derive the disabled-chaos overhead when the disk-chaos benchmark ran.
CHAOSOVER="$(awk '
	$1 ~ /^BenchmarkTable4DiskChaos\/overhead(-[0-9]+)?$/ {
		for (i = 2; i <= NF; i++)
			if ($i == "overhead-ratio") v = $(i - 1)
	}
	END {
		if (v > 0)
			printf "-label disk_chaos_disabled_overhead=%.4f", v
	}
' "$RAW")"

# Derive the federation overhead when the federation benchmark ran.
FEDOVER="$(awk '
	$1 ~ /^BenchmarkTable4Federation(-[0-9]+)?$/ {
		for (i = 2; i <= NF; i++)
			if ($i == "overhead-ratio") v = $(i - 1)
	}
	END {
		if (v > 0)
			printf "-label federation_disabled_overhead=%.4f", v
	}
' "$RAW")"

go run ./tools/benchjson \
	-label "tag=$TAG" \
	-label "commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
	${SCALING:-} \
	${CHAOSOVER:-} \
	${FEDOVER:-} \
	${EXTRA_LABELS:-} \
	<"$RAW" >"$OUT"

echo "wrote $OUT" >&2
