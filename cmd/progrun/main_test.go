package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/telemetry"
)

func TestRunListPrograms(t *testing.T) {
	if err := run([]string{"-programs"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCamelot(t *testing.T) {
	if err := run([]string{"C.team1", "1", "0", "0", "7", "7"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFaultyAndTrace(t *testing.T) {
	if err := run([]string{"-faulty", "-itrace", "4", "JB.team7", "5", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDisasm(t *testing.T) {
	if err := run([]string{"-disasm", "JB.team11"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunVersion(t *testing.T) {
	if err := run([]string{"-version"}); err != nil {
		t.Fatal(err)
	}
}

// TestSelftestReport: a selftest run writes a report whose tallies match the
// run count, and the JSONL trace holds one verdict event per case.
func TestSelftestReport(t *testing.T) {
	dir := t.TempDir()
	repPath := filepath.Join(dir, "report.json")
	trPath := filepath.Join(dir, "trace.jsonl")
	if err := run([]string{"-selftest", "5", "-report", repPath, "-trace", trPath, "C.team1"}); err != nil {
		t.Fatal(err)
	}
	rep, err := telemetry.ReadReport(repPath)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tool != "progrun" || rep.Units.Total != 5 || rep.Tallies["correct"] != 5 {
		t.Errorf("report = tool %q units %+v tallies %+v", rep.Tool, rep.Units, rep.Tallies)
	}
	if rep.Counters["selftest_runs_total"] != 5 {
		t.Errorf("selftest_runs_total = %d, want 5", rep.Counters["selftest_runs_total"])
	}
	f, err := os.Open(trPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := telemetry.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	verdicts := 0
	for _, e := range events {
		if e.Kind == telemetry.KindVerdict {
			verdicts++
		}
	}
	if verdicts != 5 {
		t.Errorf("trace has %d verdict events, want 5", verdicts)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("no program accepted")
	}
	if err := run([]string{"nope"}); err == nil {
		t.Error("unknown program accepted")
	}
	if err := run([]string{"C.team1", "abc"}); err == nil {
		t.Error("bad integer accepted")
	}
	if err := run([]string{"-faulty", "SOR"}); err == nil {
		t.Error("faulty SOR accepted (has no fault)")
	}
}
