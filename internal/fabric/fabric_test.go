package fabric

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/telemetry"
	"repro/internal/worker"
)

// The loopback tests drive a real coordinator and real executors over
// 127.0.0.1 TCP, with a deterministic fake plan: every unit's verdict is a
// pure function of its index, which is exactly the contract the fabric
// leans on (duplicate execution is harmless, any executor produces the
// same bytes).

func testSpec() worker.Spec {
	payload := []byte(`{"plan":"fake"}`)
	return worker.Spec{
		Kind:        "fabrictest/v1",
		Fingerprint: worker.PayloadFingerprint("fabrictest/v1", payload),
		Payload:     payload,
	}
}

func testOutcome(unit int) (journal.Outcome, []byte) {
	return journal.Outcome{Mode: uint8(unit%4 + 1), Activated: unit%2 == 0},
		[]byte(fmt.Sprintf("unit-%d", unit))
}

type fakeRunner struct {
	units int
	delay time.Duration
}

func (r *fakeRunner) Units() int { return r.units }

func (r *fakeRunner) Run(unit int) (journal.Outcome, []byte, error) {
	if r.delay > 0 {
		time.Sleep(r.delay)
	}
	o, p := testOutcome(unit)
	return o, p, nil
}

func fakeFactory(units int, delay time.Duration) worker.Factory {
	return func(spec worker.Spec) (worker.Runner, error) {
		return &fakeRunner{units: units, delay: delay}, nil
	}
}

func testCoordinator(t *testing.T, units, minHosts int, m *Metrics) *Coordinator {
	t.Helper()
	coord, err := NewCoordinator(CoordinatorOptions{
		Addr:              "127.0.0.1:0",
		MinHosts:          minHosts,
		Spec:              testSpec(),
		Units:             units,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
		// Tests sever connections on purpose; expire the session quickly so
		// redelivery expectations hold without multi-second waits.
		SessionTimeout: 150 * time.Millisecond,
		Quarantine:     journal.Outcome{Mode: 9},
		Metrics:        m,
		Log:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return coord
}

func seqIndices(n int) []int {
	indices := make([]int, n)
	for i := range indices {
		indices[i] = i
	}
	return indices
}

// collectRun drives coord.Run over all units and asserts exactly-once
// delivery.
func collectRun(t *testing.T, coord *Coordinator, units int, onDelivered func(count int)) []worker.Result {
	t.Helper()
	results := make([]worker.Result, units)
	seen := make([]bool, units)
	count := 0
	err := coord.Run(context.Background(), seqIndices(units), func(r worker.Result) error {
		if r.Index < 0 || r.Index >= units {
			t.Errorf("result index %d out of range", r.Index)
			return nil
		}
		if seen[r.Index] {
			t.Errorf("unit %d delivered twice", r.Index)
		}
		seen[r.Index] = true
		results[r.Index] = r
		count++
		if onDelivered != nil {
			onDelivered(count)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("coordinator run: %v", err)
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("unit %d never delivered", i)
		}
	}
	return results
}

func checkResults(t *testing.T, results []worker.Result) {
	t.Helper()
	for i, r := range results {
		o, p := testOutcome(i)
		if r.Quarantined || r.Outcome != o || string(r.Payload) != string(p) {
			t.Fatalf("unit %d: got %+v, want outcome %+v payload %q", i, r, o, p)
		}
	}
}

// TestFabricLoopback runs the same fake campaign over 1 and 3 loopback
// executors: every fleet size must deliver the identical result set.
func TestFabricLoopback(t *testing.T) {
	const units = 60
	run := func(hosts int) []worker.Result {
		coord := testCoordinator(t, units, hosts, nil)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		joinErr := make(chan error, hosts)
		for i := 0; i < hosts; i++ {
			name := fmt.Sprintf("exec-%d", i)
			go func() {
				joinErr <- Join(ctx, coord.Addr().String(), ExecutorOptions{
					Name:    name,
					Workers: 2,
					Batch:   InProcBatch(fakeFactory(units, 0), 2),
				})
			}()
		}
		results := collectRun(t, coord, units, nil)
		for i := 0; i < hosts; i++ {
			if err := <-joinErr; err != nil {
				t.Fatalf("executor join: %v", err)
			}
		}
		return results
	}
	single := run(1)
	checkResults(t, single)
	fleet := run(3)
	if !reflect.DeepEqual(single, fleet) {
		t.Fatal("3-executor results differ from single-executor results")
	}
}

// blockedRunner never finishes a unit until released — the stand-in for a
// wedged host.
type blockedRunner struct {
	units   int
	release chan struct{}
}

func (r *blockedRunner) Units() int { return r.units }

func (r *blockedRunner) Run(unit int) (journal.Outcome, []byte, error) {
	<-r.release
	o, p := testOutcome(unit)
	return o, p, nil
}

// TestFabricHostLossAndSteal wedges one of two executors. The healthy host
// steals the wedged host's range down to its last unit; killing the wedged
// host then redelivers that unit, and the campaign completes with every
// verdict delivered exactly once.
func TestFabricHostLossAndSteal(t *testing.T) {
	const units = 40
	reg := telemetry.NewRegistry()
	m := &Metrics{
		Hosts:       reg.Gauge("hosts"),
		Assigned:    reg.Counter("assigned"),
		Steals:      reg.Counter("steals"),
		Redelivered: reg.Counter("redelivered"),
		HostDeaths:  reg.Counter("deaths"),
		Quarantines: reg.Counter("quarantines"),
	}
	coord := testCoordinator(t, units, 2, m)

	healthyCtx, healthyCancel := context.WithCancel(context.Background())
	defer healthyCancel()
	wedgedCtx, wedgedCancel := context.WithCancel(context.Background())
	defer wedgedCancel()
	release := make(chan struct{})

	joinErr := make(chan error, 2)
	go func() {
		joinErr <- Join(healthyCtx, coord.Addr().String(), ExecutorOptions{
			Name:  "healthy",
			Batch: InProcBatch(fakeFactory(units, 0), 1),
		})
	}()
	go func() {
		joinErr <- Join(wedgedCtx, coord.Addr().String(), ExecutorOptions{
			Name: "wedged",
			Batch: func(spec worker.Spec) (BatchRunner, error) {
				return &inProcBatch{runners: []worker.Runner{&blockedRunner{units: units, release: release}}}, nil
			},
		})
	}()

	// The healthy host drains everything it can reach — its own shard plus
	// steals — until only the wedged host's in-flight unit remains. Killing
	// the wedged host at that point redelivers deterministically.
	killed := false
	results := collectRun(t, coord, units, func(count int) {
		if count == units-1 && !killed {
			killed = true
			wedgedCancel()
		}
	})
	checkResults(t, results)
	// Unblock the wedged runner only after the campaign is over, so its
	// still-running unit cannot race the redelivery.
	close(release)

	for i := 0; i < 2; i++ {
		err := <-joinErr
		if err != nil && err != context.Canceled {
			t.Fatalf("executor join: %v", err)
		}
	}
	if got := reg.Counters(); got["deaths"] != 1 || got["steals"] == 0 || got["redelivered"] == 0 {
		t.Fatalf("metrics: deaths=%d steals=%d redelivered=%d, want 1/>0/>0",
			got["deaths"], got["steals"], got["redelivered"])
	}
	if got := m.Hosts.Value(); got != 0 {
		t.Fatalf("hosts gauge %d after shutdown, want 0", got)
	}
}

// TestFabricRejectsMismatchedExecutor sends in one executor whose rebuilt
// plan disagrees on the unit count. It must be turned away at the
// handshake with a diagnostic — and the campaign must finish undisturbed
// on the good executor.
func TestFabricRejectsMismatchedExecutor(t *testing.T) {
	const units = 20
	coord := testCoordinator(t, units, 1, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	badErr := make(chan error, 1)
	go func() {
		badErr <- Join(ctx, coord.Addr().String(), ExecutorOptions{
			Name:  "bad",
			Batch: InProcBatch(fakeFactory(units+5, 0), 1),
		})
	}()
	goodErr := make(chan error, 1)
	go func() {
		goodErr <- Join(ctx, coord.Addr().String(), ExecutorOptions{
			Name:  "good",
			Batch: InProcBatch(fakeFactory(units, 0), 1),
		})
	}()

	results := collectRun(t, coord, units, nil)
	checkResults(t, results)
	if err := <-goodErr; err != nil {
		t.Fatalf("good executor: %v", err)
	}
	if err := <-badErr; err == nil || !strings.Contains(err.Error(), "units") {
		t.Fatalf("mismatched executor joined without error (err=%v)", err)
	}
}

// TestFabricExecutorErrorAborts: a unit error inside an executor's batch is
// deterministic (the same unit fails on any host), so it aborts the whole
// campaign instead of being retried elsewhere.
func TestFabricExecutorErrorAborts(t *testing.T) {
	const units = 10
	coord := testCoordinator(t, units, 1, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	factory := func(spec worker.Spec) (worker.Runner, error) {
		return &failingRunner{units: units, failAt: 7}, nil
	}
	joinErr := make(chan error, 1)
	go func() {
		joinErr <- Join(ctx, coord.Addr().String(), ExecutorOptions{
			Name:  "failing",
			Batch: InProcBatch(factory, 1),
		})
	}()
	err := coord.Run(context.Background(), seqIndices(units), func(r worker.Result) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("coordinator run: %v, want the executor's unit error", err)
	}
	if err := <-joinErr; err == nil {
		t.Fatal("failing executor exited cleanly")
	}
}

type failingRunner struct {
	units  int
	failAt int
}

func (r *failingRunner) Units() int { return r.units }

func (r *failingRunner) Run(unit int) (journal.Outcome, []byte, error) {
	if unit == r.failAt {
		return journal.Outcome{}, nil, fmt.Errorf("boom: unit %d", unit)
	}
	o, p := testOutcome(unit)
	return o, p, nil
}

// TestFabricLateJoiner starts the campaign with one executor and lets a
// second join mid-run: the latecomer must be folded in by stealing, not
// ignored.
func TestFabricLateJoiner(t *testing.T) {
	const units = 30
	reg := telemetry.NewRegistry()
	m := &Metrics{Steals: reg.Counter("steals")}
	coord := testCoordinator(t, units, 1, m)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	joinErr := make(chan error, 2)
	go func() {
		joinErr <- Join(ctx, coord.Addr().String(), ExecutorOptions{
			Name:  "first",
			Batch: InProcBatch(fakeFactory(units, 5*time.Millisecond), 1),
		})
	}()
	var once sync.Once
	results := collectRun(t, coord, units, func(count int) {
		once.Do(func() {
			go func() {
				joinErr <- Join(ctx, coord.Addr().String(), ExecutorOptions{
					Name:  "late",
					Batch: InProcBatch(fakeFactory(units, 0), 1),
				})
			}()
		})
	})
	checkResults(t, results)
	for i := 0; i < 2; i++ {
		if err := <-joinErr; err != nil {
			t.Fatalf("executor join: %v", err)
		}
	}
	if reg.Counters()["steals"] == 0 {
		t.Fatal("late joiner never stole work")
	}
}
