package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// SideLog is a sidecar write-ahead log for coordination state that must
// survive a crash but must NOT land in the campaign journal itself — the
// journal's bytes are the determinism contract, compared verbatim against a
// single-host run, so assignment ranges, steals and session tokens go in a
// separate file beside it. The fabric coordinator writes one at
// Journal.Path()+".fabric" and deletes it after a campaign completes; its
// presence on -resume is what distinguishes "coordinator crashed
// mid-campaign" from "fresh campaign over an old journal".
//
// Records are variable-length and individually CRC-protected; like the main
// journal, a torn or corrupt tail is truncated on open and replay stops at
// the last good record. Record kinds are opaque to this package — the
// fabric defines them.
//
// Layout (little-endian):
//
//	header   magic "SWFS" | version u16 | reserved u16 | fingerprint u64 | crc32 u32
//	record   kind u8 | len u32 | payload | crc32 u32  (crc over kind|len|payload)
const (
	sideMagic   = "SWFS"
	sideVersion = 1

	// MaxSideRecord bounds one record's payload; anything larger is
	// corruption, not state.
	MaxSideRecord = 1 << 20
)

// SideRecord is one replayed sidecar entry.
type SideRecord struct {
	Kind    uint8
	Payload []byte
}

// SideLog is an open sidecar log. It is not safe for concurrent use; the
// coordinator appends only from its event loop.
//
// Like the journal, the sidecar must never be a liability: its first write
// failure truncates the file back to the last whole record and flips the
// log into degraded mode — that Append returns the error (so the
// coordinator can log that crash recovery is now partial), every later one
// is a silent no-op. Scheduling state is reconstructible by redelivery, so
// losing the tail costs duplicate work after a crash, never correctness.
type SideLog struct {
	f      File
	path   string
	fp     uint64
	bound  bool
	resume bool
	recs   []SideRecord

	size     int64 // offset after the last whole record persisted
	degraded bool
}

// CreateSide opens a fresh sidecar log at path, truncating any existing
// file. Like the journal, the header is deferred to BindSide because the
// plan fingerprint is not known at creation time.
func CreateSide(path string) (*SideLog, error) { return CreateSideWrapped(path, nil) }

// CreateSideWrapped is CreateSide with the journal's File substitution
// hook.
func CreateSideWrapped(path string, wrap Wrap) (*SideLog, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := lockFile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("sidelog %s: %w", path, err)
	}
	if err := f.Truncate(0); err != nil {
		f.Close()
		return nil, fmt.Errorf("sidelog %s: %w", path, err)
	}
	return &SideLog{f: wrapFile(f, wrap), path: path}, nil
}

// OpenSide loads an existing sidecar log for crash recovery, truncating a
// torn or corrupt tail. The loaded records are handed out by Replay after
// Bind verifies the fingerprint.
func OpenSide(path string) (*SideLog, error) { return OpenSideWrapped(path, nil) }

// OpenSideWrapped is OpenSide with the journal's File substitution hook.
func OpenSideWrapped(path string, wrap Wrap) (*SideLog, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := lockFile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("sidelog %s: %w", path, err)
	}
	s := &SideLog{f: wrapFile(f, wrap), path: path, resume: true}
	if err := s.load(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

func (s *SideLog) load() error {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(s.f, hdr[:]); err != nil {
		return fmt.Errorf("sidelog %s: unreadable header: %w", s.path, err)
	}
	if string(hdr[:4]) != sideMagic {
		return fmt.Errorf("sidelog %s: bad magic %q", s.path, hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != sideVersion {
		return fmt.Errorf("sidelog %s: unsupported version %d", s.path, v)
	}
	if crc := crc32.ChecksumIEEE(hdr[:16]); crc != binary.LittleEndian.Uint32(hdr[16:20]) {
		return fmt.Errorf("sidelog %s: header checksum mismatch", s.path)
	}
	s.fp = binary.LittleEndian.Uint64(hdr[8:16])

	good := int64(headerSize)
	var pre [5]byte
	for {
		if _, err := io.ReadFull(s.f, pre[:]); err != nil {
			break // clean EOF or torn prefix — either way the tail ends here
		}
		n := binary.LittleEndian.Uint32(pre[1:5])
		if n > MaxSideRecord {
			break // corrupt length; trust nothing at or past it
		}
		body := make([]byte, int(n)+4)
		if _, err := io.ReadFull(s.f, body); err != nil {
			break // torn payload or checksum
		}
		sum := crc32.NewIEEE()
		sum.Write(pre[:])
		sum.Write(body[:n])
		if sum.Sum32() != binary.LittleEndian.Uint32(body[n:]) {
			break
		}
		s.recs = append(s.recs, SideRecord{Kind: pre[0], Payload: body[:n:n]})
		good += int64(len(pre)) + int64(len(body))
	}
	if err := s.f.Truncate(good); err != nil {
		return fmt.Errorf("sidelog %s: truncating damaged tail: %w", s.path, err)
	}
	if _, err := s.f.Seek(good, io.SeekStart); err != nil {
		return err
	}
	s.size = good
	return nil
}

// Bind fixes the sidecar to a campaign plan fingerprint, exactly as
// Journal.Bind does: fresh logs get their header written, resumed logs are
// verified against it. A sidecar from a different plan means the journal
// beside it is from a different plan too, and resuming would re-assign the
// wrong unit space.
func (s *SideLog) Bind(fingerprint uint64) error {
	if s.bound {
		if s.fp != fingerprint {
			return fmt.Errorf("sidelog %s: already bound to plan %016x, got %016x", s.path, s.fp, fingerprint)
		}
		return nil
	}
	if s.resume {
		if s.fp != fingerprint {
			return fmt.Errorf("sidelog %s: belongs to a different campaign plan (sidelog %016x, current %016x)", s.path, s.fp, fingerprint)
		}
		s.bound = true
		return nil
	}
	var hdr [headerSize]byte
	copy(hdr[:4], sideMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], sideVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], fingerprint)
	binary.LittleEndian.PutUint32(hdr[16:20], crc32.ChecksumIEEE(hdr[:16]))
	s.fp = fingerprint
	s.bound = true
	if _, err := s.f.Write(hdr[:]); err != nil {
		s.degrade()
		return fmt.Errorf("sidelog %s: writing header: %w", s.path, err)
	}
	s.size = headerSize
	return nil
}

// degrade truncates back to the last whole record and disables further
// appends. Best effort, like the journal's: a disk refusing the truncate
// leaves a torn tail for the next OpenSide's CRC scan to cut away.
func (s *SideLog) degrade() {
	if s.degraded {
		return
	}
	s.degraded = true
	if err := s.f.Truncate(s.size); err == nil {
		s.f.Seek(s.size, io.SeekStart)
	}
}

// Degraded reports whether a write failure disabled the sidecar.
func (s *SideLog) Degraded() bool { return s.degraded }

// Append writes one record straight to the file. A crash loses at most the
// record being written; the next OpenSide truncates it away. The first
// write failure degrades the log and is returned; later appends on a
// degraded log are silent no-ops — the coordinator must never wedge on its
// recovery state, only lose some of it.
func (s *SideLog) Append(kind uint8, payload []byte) error {
	if !s.bound {
		return fmt.Errorf("sidelog %s: Append before Bind", s.path)
	}
	if s.degraded {
		return nil
	}
	if len(payload) > MaxSideRecord {
		return fmt.Errorf("sidelog %s: %d-byte record exceeds the %d-byte bound", s.path, len(payload), MaxSideRecord)
	}
	buf := make([]byte, 0, 5+len(payload)+4)
	buf = append(buf, kind)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	if _, err := s.f.Write(buf); err != nil {
		s.degrade()
		return fmt.Errorf("sidelog %s: %w", s.path, err)
	}
	s.size += int64(len(buf))
	return nil
}

// Replay hands every intact record loaded by OpenSide to fn in append
// order, stopping at the first error. A freshly created log replays
// nothing.
func (s *SideLog) Replay(fn func(SideRecord) error) error {
	for _, r := range s.recs {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// Resumed reports whether the log was opened over an existing file.
func (s *SideLog) Resumed() bool { return s.resume }

// Path returns the sidecar's file path.
func (s *SideLog) Path() string { return s.path }

// Sync flushes the log to stable storage. A degraded log has nothing worth
// syncing; a sync failure degrades it.
func (s *SideLog) Sync() error {
	if s.degraded {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		s.degrade()
		return err
	}
	return nil
}

// Close syncs and closes the file. The SideLog must not be used afterwards.
func (s *SideLog) Close() error {
	if s.degraded {
		s.f.Close()
		return nil
	}
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// Remove closes the log and deletes its file — the campaign completed, so
// there is no coordination state left to recover.
func (s *SideLog) Remove() error {
	if err := s.f.Close(); err != nil {
		os.Remove(s.path)
		return err
	}
	return os.Remove(s.path)
}
