package vm

// Execution tracing: an optional ring buffer of the most recent
// instructions, used by the debugging tools to show how a run reached a
// crash site. Tracing is off by default and costs nothing when disabled.

// TraceEntry is one executed (or attempted) instruction.
type TraceEntry struct {
	PC   uint32
	Word uint32
}

// traceRing is a fixed-capacity ring of TraceEntries.
type traceRing struct {
	buf  []TraceEntry
	next int
	full bool
}

func (r *traceRing) add(e TraceEntry) {
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// snapshot returns the entries oldest-first.
func (r *traceRing) snapshot() []TraceEntry {
	if !r.full {
		out := make([]TraceEntry, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]TraceEntry, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// EnableTrace starts recording the last n executed instructions. Passing
// n <= 0 disables tracing.
func (m *Machine) EnableTrace(n int) {
	if n <= 0 {
		m.trace = nil
	} else {
		m.trace = &traceRing{buf: make([]TraceEntry, n)}
	}
	m.updateHot()
}

// Trace returns the recorded instructions, oldest first. It is empty when
// tracing was never enabled.
func (m *Machine) Trace() []TraceEntry {
	if m.trace == nil {
		return nil
	}
	return m.trace.snapshot()
}
