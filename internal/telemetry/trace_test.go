package telemetry

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Kind: KindExecuted, Unit: i})
	}
	if got := tr.Total(); got != 10 {
		t.Fatalf("Total() = %d, want 10", got)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("len(Events()) = %d, want 4", len(evs))
	}
	for i, e := range evs {
		if want := 6 + i; e.Unit != want {
			t.Fatalf("Events()[%d].Unit = %d, want %d (oldest first)", i, e.Unit, want)
		}
		if e.T.IsZero() {
			t.Fatal("Emit must stamp T")
		}
	}
	if got := tr.Summary()[KindExecuted]; got != 10 {
		t.Fatalf("Summary()[executed] = %d, want 10", got)
	}
}

func TestTracerPartialRing(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(Event{Kind: KindPlanned, Unit: 1})
	tr.Emit(Event{Kind: KindVerdict, Unit: 1, Mode: "correct"})
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Kind != KindPlanned || evs[1].Kind != KindVerdict {
		t.Fatalf("Events() = %+v", evs)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Emit(Event{Kind: KindExecuted, Worker: w, Unit: i})
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Total(); got != 800 {
		t.Fatalf("Total() = %d, want 800", got)
	}
}

func TestTraceJSONLRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(2) // smaller than the event count: the sink must still get all
	tr.SinkJSONL(f)
	want := []Event{
		{Kind: KindPlanned, Unit: 0, Program: "JB.team1", Fault: "MIFS", Case: 3},
		{Kind: KindDispatched, Unit: 0, Worker: 2},
		{Kind: KindExecuted, Unit: 0, DurUS: 1234},
		{Kind: KindVerdict, Unit: 0, Mode: "incorrect"},
		{Kind: KindRetry, Unit: 1, Detail: "panic: boom"},
	}
	for _, e := range want {
		tr.Emit(e)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	got, err := ReadJSONL(rf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d events, want %d", len(got), len(want))
	}
	for i := range want {
		g := got[i]
		w := want[i]
		if g.Kind != w.Kind || g.Unit != w.Unit || g.Program != w.Program ||
			g.Fault != w.Fault || g.Case != w.Case || g.Mode != w.Mode ||
			g.Worker != w.Worker || g.DurUS != w.DurUS || g.Detail != w.Detail {
			t.Fatalf("event %d = %+v, want %+v", i, g, w)
		}
		if g.T.IsZero() {
			t.Fatalf("event %d lost its timestamp", i)
		}
	}
}

func TestReadJSONLSkipsBlankLines(t *testing.T) {
	in := bytes.NewBufferString("{\"t\":\"2026-01-01T00:00:00Z\",\"kind\":\"verdict\"}\n\n")
	evs, err := ReadJSONL(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Kind != KindVerdict {
		t.Fatalf("got %+v", evs)
	}
}
