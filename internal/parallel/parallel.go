// Package parallel is the worker-pool substrate of the experiment
// management layer. The paper's campaigns are embarrassingly parallel —
// every injection runs on a freshly rebooted machine with a deterministic
// seed, so runs share no state — and this package supplies the one
// scheduling primitive the executors need: fan an index space out over a
// fixed set of workers and join with a deterministic error.
//
// Determinism contract: ForEach itself imposes no ordering on side
// effects, so callers write results into per-index slots and aggregate
// serially after the join. On failure the error reported is the one from
// the lowest index that failed among the indices actually executed, which
// makes the error stable across schedules whenever the first failing index
// is reached on every schedule (campaign executors fail fast and treat any
// error as fatal, so the distinction only matters for error text).
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers resolves a worker-count knob: values above zero are taken
// as-is, anything else selects runtime.GOMAXPROCS(0).
func DefaultWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach executes fn(worker, i) for every i in [0, n) across the given
// number of workers (normalised through DefaultWorkers). The worker
// argument is a stable identifier in [0, workers) so callers can keep
// per-worker state — machine pools — without locking. With one worker
// every call runs on the caller's goroutine in index order: the legacy
// serial path, bit-identical to a plain loop.
//
// The first error stops the distribution of new indices; indices already
// claimed still complete. ForEach returns the error of the lowest failed
// index.
func ForEach(workers, n int, fn func(worker, i int) error) error {
	workers = DefaultWorkers(workers)
	if n <= 0 {
		return nil
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}

	var (
		next   atomic.Int64 // next index to hand out
		failed atomic.Bool  // stops the hand-out once any index errors
		wg     sync.WaitGroup

		mu      sync.Mutex
		errIdx  int
		bestErr error
	)
	record := func(i int, err error) {
		failed.Store(true)
		mu.Lock()
		if bestErr == nil || i < errIdx {
			errIdx, bestErr = i, err
		}
		mu.Unlock()
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(worker, i); err != nil {
					record(i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return bestErr
}

// Map runs fn over [0, n) with ForEach and collects the results in index
// order, so the output is independent of the schedule.
func Map[T any](workers, n int, fn func(worker, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(workers, n, func(worker, i int) error {
		v, err := fn(worker, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
