#!/usr/bin/env bash
# Chaos smoke: the DESIGN.md §5i–5j contract end to end through the real
# binary, TCP, fault injection and the signal path — all three chaos
# planes combined. A journaled fig7 campaign is sharded over two
# executors with every fabric link running under the deterministic chaos
# proxy; the coordinator's journal disk injects ENOSPC/short/torn writes
# (the journal degrades to in-memory mode mid-campaign); one executor
# runs proc-isolation workers over corrupted pipes; and the coordinator
# is SIGKILLed mid-campaign — no goodbye, no journal close, no sidecar
# cleanup — and restarted with -resume. The merged output AND the
# canonical journal bytes must be identical to a clean single-host run,
# and the scheduling sidecar must be gone once the campaign completes.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/swifi" ./cmd/swifi
cd "$workdir"

# Single-host golden: output and canonical journal bytes.
./swifi -scale 0.05 -seed 7 -journal golden.wal fig7 > fig7_golden.txt

# Coordinator leg 1: network chaos on every link plus disk chaos on the
# journal's own file handle. The chaos seed is pinned: the fault schedule
# is a pure function of (seed, file ordinal, write index), and seed 53
# lets the journal header persist (a resumable file), degrades the
# journal within the first few merged verdicts, and leaves the fabric
# sidecar (file ordinal 1) clean until well past the kill — so crash
# recovery below is exercised from an intact session table.
CHAOS='seed=53,corrupt=0.01,drop=0.01,truncate=0.005,reset=0.005'
DISK='disk.enospc=0.08,disk.short-write=0.04,disk.torn-write=0.04'
# Leg 2 resumes after the disk pressure has "lifted": network chaos only,
# so completion-time recovery (journal.Canonicalize) runs on a healthy
# disk and must reproduce the clean run's bytes exactly.
CHAOS2='seed=7,corrupt=0.01,drop=0.01,truncate=0.005,reset=0.005'
FLAGS='-scale 0.05 -seed 7 -heartbeat-interval 100ms -heartbeat-timeout 2s'

# Coordinator 1: chaos on every accepted link, scheduling state journaled
# through the sidecar next to chaos.wal. The session timeout only has to
# cover redial-and-reattach (seconds — its clock restarts when a resumed
# coordinator recovers the session table), and it bounds how long the
# campaign stalls when an executor is truly killed below.
# shellcheck disable=SC2086
./swifi $FLAGS -journal chaos.wal \
  -fabric-listen 127.0.0.1:9372 -fabric-hosts 2 \
  -fabric-session-timeout 15s -chaos "$CHAOS,$DISK" \
  fig7 > fig7_chaos.txt 2> coord1.log &
COORD=$!

# Two executors with their own chaos streams. The dial timeout covers the
# coordinator's planning phase; the reconnect window covers its death and
# restart.
./swifi -fabric-join 127.0.0.1:9372 -workers 2 \
  -fabric-dial-timeout 60s -fabric-reconnect-window 120s \
  -chaos 'seed=8,corrupt=0.01,drop=0.01' 2> exec1.log &
EXEC1=$!
# Executor 2 (the survivor) additionally runs its units in supervised
# worker subprocesses with pipe chaos: corrupted frames are rejected by
# the CRC framing, the supervisor restarts the worker and redelivers.
# Delivery/restart headroom keeps bad luck from quarantining a unit —
# chaos must cost time, never verdicts. The pipe rates are an order of
# magnitude below the single-host disk smoke's: every CRC sever here
# costs a worker respawn AND rides on fabric link chaos, so ~10 expected
# severs over the campaign's ~6.5k frames proves the restart/redeliver
# path without grinding the pool into respawn churn (the asserted
# 'redelivered' line below fails the drill if chaos never bites).
./swifi -fabric-join 127.0.0.1:9372 -workers 2 \
  -fabric-dial-timeout 60s -fabric-reconnect-window 120s \
  -isolation proc -proc-max-deliveries 10 -proc-max-restarts 10000 \
  -chaos 'seed=9,corrupt=0.01,drop=0.01,pipe.corrupt=0.001,pipe.truncate=0.0005' 2> exec2.log &
EXEC2=$!

# Wait for the disk chaos to bite the journal (seed 53 faults the fifth
# journal write — within the first few merged verdicts), then SIGKILL
# the coordinator while it is running degraded — the crash the recovery
# path exists for. Polling for the degrade line rather than sleeping a
# fixed interval keeps the kill behind the fault on any machine speed.
for _ in $(seq 1 480); do
  grep -q 'continuing without the journal' coord1.log 2>/dev/null && break
  kill -0 "$COORD" 2>/dev/null || break
  sleep 0.5
done
if ! grep -q 'continuing without the journal' coord1.log; then
  echo "disk chaos never bit the coordinator journal" >&2
  exit 1
fi
kill -9 "$COORD" 2>/dev/null || echo "coordinator already done; restart degenerates to a journal replay"
wait "$COORD" || true

# Restart: -resume replays finished units from the journal, the sidecar
# rebuilds the session table and outstanding ranges, and the executors
# re-attach with their session tokens mid-flight. The report carries the
# injected-fault counts, and -debug-addr exposes the federated fleet view
# scraped below while the campaign is still running.
# shellcheck disable=SC2086
./swifi $FLAGS -journal chaos.wal -resume \
  -fabric-listen 127.0.0.1:9372 -fabric-hosts 1 \
  -fabric-session-timeout 15s -chaos "$CHAOS2" \
  -report report.json -debug-addr 127.0.0.1:9373 \
  fig7 > fig7_chaos.txt 2> coord2.log &
COORD2=$!

fetch() {
  curl -sf --max-time 5 "$1" 2>/dev/null || wget -qO- -T 5 "$1" 2>/dev/null
}

# Once the recovered campaign is back underway, SIGKILL an executor too:
# its session expires and its units redeliver to the survivor.
sleep 4
kill -9 "$EXEC1" 2>/dev/null || echo "executor 1 already done; campaign must still finish clean"

# Mid-campaign, the coordinator's debug endpoints must already show the
# federated fleet: host-labeled executor counters on /metrics (pushed over
# the same chaos-ridden links as the verdicts) and the live roster on
# /fleet. Polling covers the push latency (one heartbeat) without racing
# campaign completion — past the first heartbeat the series can only grow.
fleet_seen=
for _ in $(seq 1 240); do
  if fetch http://127.0.0.1:9373/metrics | grep -q 'fabric_units_executed_total{host="'; then
    fleet_seen=1
    break
  fi
  kill -0 "$COORD2" 2>/dev/null || break
  sleep 0.5
done
if [ -z "$fleet_seen" ]; then
  echo "no host-labeled federated series ever appeared on /metrics" >&2
  exit 1
fi
fetch http://127.0.0.1:9373/healthz | grep -q ok || {
  echo "/healthz not ok mid-campaign" >&2
  exit 1
}
# The JSON is indented; assert on host-row fields, not layout.
fetch http://127.0.0.1:9373/fleet > fleet.json
grep -q '"name"' fleet.json && grep -q '"attached"' fleet.json || {
  echo "/fleet returned no live host rows: $(cat fleet.json)" >&2
  exit 1
}

wait "$COORD2"
wait "$EXEC1" || true
# The surviving executor must ride out everything and exit clean.
wait "$EXEC2"

# Bit-identical output and journal; no scheduling state left behind.
diff fig7_golden.txt fig7_chaos.txt
cmp golden.wal chaos.wal
if [ -e chaos.wal.fabric ]; then
  echo "fabric sidecar survived a completed campaign" >&2
  exit 1
fi
# The pipe chaos must have severed at least one proc worker (CRC reject →
# restart → redeliver) and the pool must have absorbed it.
if ! grep -q 'redelivered' exec2.log; then
  echo "pipe chaos never severed a proc worker on executor 2" >&2
  exit 1
fi
# The absorbed abuse must be visible: at least one nonzero chaos_*
# counter in the end-of-run report (a chaos run that injected nothing
# tested nothing).
if ! grep -Eq '"chaos_[a-z_]+": *[1-9]' report.json; then
  echo "no nonzero chaos_* counter in report.json" >&2
  exit 1
fi
echo "chaos smoke passed"
