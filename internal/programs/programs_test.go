package programs_test

import (
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/programs"
	"repro/internal/vm"
	"repro/internal/workload"
)

func TestRegistryShape(t *testing.T) {
	all := programs.All()
	if len(all) != 14 {
		t.Fatalf("suite has %d programs, want 14", len(all))
	}
	if len(programs.Table4Programs()) != 8 {
		t.Error("Table 4 needs 8 programs")
	}
	if len(programs.RealFaultPrograms()) != 7 {
		t.Error("Table 1 needs 7 real-fault programs")
	}
	seen := map[string]bool{}
	for _, p := range all {
		if seen[p.Name] {
			t.Errorf("duplicate program %s", p.Name)
		}
		seen[p.Name] = true
		if p.LineCount() < 30 {
			t.Errorf("%s suspiciously small: %d lines", p.Name, p.LineCount())
		}
	}
	if _, ok := programs.ByName("C.team1"); !ok {
		t.Error("ByName(C.team1) failed")
	}
	if _, ok := programs.ByName("nope"); ok {
		t.Error("ByName(nope) succeeded")
	}
}

func TestAllProgramsCompile(t *testing.T) {
	for _, p := range programs.All() {
		if _, err := p.Compile(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if p.Fault != nil {
			if _, err := p.CompileFaulty(); err != nil {
				t.Errorf("%s faulty: %v", p.Name, err)
			}
		}
	}
}

func TestFaultySourceDiffers(t *testing.T) {
	for _, p := range programs.RealFaultPrograms() {
		src, err := p.FaultySource()
		if err != nil {
			t.Errorf("%s: %v", p.Name, err)
			continue
		}
		if src == p.Source {
			t.Errorf("%s: faulty source identical to corrected source", p.Name)
		}
	}
	sor, _ := programs.ByName("SOR")
	if _, err := sor.FaultySource(); err == nil {
		t.Error("SOR has no real fault; FaultySource should fail")
	}
}

// runCases executes a compiled program over the cases and returns the
// failure-mode counts.
func runCases(t *testing.T, p *programs.Program, faulty bool, cases []workload.Case) map[campaign.FailureMode]int {
	t.Helper()
	compiled, err := p.Compile()
	if faulty {
		compiled, err = p.CompileFaulty()
	}
	if err != nil {
		t.Fatal(err)
	}
	counts := map[campaign.FailureMode]int{}
	for i := range cases {
		res, err := campaign.RunClean(compiled, cases[i].Input, cases[i].Golden, vm.DefaultMaxCycles)
		if err != nil {
			t.Fatalf("%s case %d: %v", p.Name, i, err)
		}
		if res.Mode == campaign.Incorrect && !faulty {
			t.Fatalf("%s (corrected) wrong on case %d:\ninput %v\ngot %q\nwant %q",
				p.Name, i, cases[i].Input.Ints, truncate(res.Output), truncate(cases[i].Golden))
		}
		counts[res.Mode]++
	}
	return counts
}

func truncate(s string) string {
	if len(s) > 200 {
		return s[:200] + "..."
	}
	return s
}

// TestCorrectedProgramsMatchOracle is the suite's ground truth: every
// corrected program must agree with its specification oracle on random
// inputs (the contest "acceptance" property).
func TestCorrectedProgramsMatchOracle(t *testing.T) {
	nCases := 30
	if testing.Short() {
		nCases = 6
	}
	for _, p := range programs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			cases, err := workload.Generate(p.Kind, nCases, 7)
			if err != nil {
				t.Fatal(err)
			}
			counts := runCases(t, p, false, cases)
			if counts[campaign.Correct] != len(cases) {
				t.Errorf("correct runs = %d of %d (%v)", counts[campaign.Correct], len(cases), counts)
			}
		})
	}
}

// TestFaultyProgramsPassContestTestCase mirrors the paper's setup: the
// faulty programs passed the (small) contest test case — the seeded bugs
// are subtle enough to slip through a handful of inputs.
func TestFaultyProgramsPassContestTestCase(t *testing.T) {
	for _, p := range programs.RealFaultPrograms() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			cases, err := workload.ContestCases(p.Kind)
			if err != nil {
				t.Fatal(err)
			}
			counts := runCases(t, p, true, cases)
			if counts[campaign.Correct] != len(cases) {
				t.Errorf("faulty %s failed the contest test case (%v); the fault is not subtle enough",
					p.Name, counts)
			}
		})
	}
}

// TestFaultyProgramsFailIntensiveTest is Table 1's premise: under an
// intensive random test every faulty program eventually produces wrong
// results, and only wrong results (no hangs or crashes were observed for
// the real faults in the paper).
func TestFaultyProgramsFailIntensiveTest(t *testing.T) {
	if testing.Short() {
		t.Skip("intensive test needs many runs")
	}
	// Failure probabilities differ by orders of magnitude (Table 1), so
	// each program gets a case budget sized to its expected rarity.
	budgets := map[string]int{
		"C.team1":  400,
		"C.team2":  60,
		"C.team3":  200,
		"C.team4":  60,
		"C.team5":  200,
		"JB.team6": 4000,
		"JB.team7": 400,
	}
	for _, p := range programs.RealFaultPrograms() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			cases, err := workload.Generate(p.Kind, budgets[p.Name], 99)
			if err != nil {
				t.Fatal(err)
			}
			counts := runCases(t, p, true, cases)
			if counts[campaign.Incorrect] == 0 {
				t.Errorf("faulty %s never failed in %d runs; real fault not exposed", p.Name, len(cases))
			}
			if counts[campaign.Hang] != 0 || counts[campaign.Crash] != 0 {
				t.Errorf("faulty %s hung/crashed (%v); the paper's real faults only produced wrong results", p.Name, counts)
			}
			t.Logf("%s: %.2f%% wrong results (%d/%d)", p.Name,
				100*float64(counts[campaign.Incorrect])/float64(len(cases)),
				counts[campaign.Incorrect], len(cases))
		})
	}
}

func TestOracleInputValidation(t *testing.T) {
	if _, err := programs.CamelotSolve(programs.Input{Ints: []int32{1, 0}}); err == nil {
		t.Error("camelot accepted truncated input")
	}
	if _, err := programs.CamelotSolve(programs.Input{Ints: []int32{99, 0, 0}}); err == nil {
		t.Error("camelot accepted 99 knights")
	}
	if _, err := programs.CamelotSolve(programs.Input{Ints: []int32{1, 0, 0, 9, 9}}); err == nil {
		t.Error("camelot accepted off-board knight")
	}
	if _, err := programs.JamesBSolve(programs.Input{Ints: []int32{1}}); err == nil {
		t.Error("jamesb accepted truncated input")
	}
	if _, err := programs.JamesBSolve(programs.Input{Ints: []int32{1, 10}, Bytes: []byte("ab")}); err == nil {
		t.Error("jamesb accepted length > bytes")
	}
	if _, err := programs.SORSolve(programs.Input{Ints: []int32{1}}); err == nil {
		t.Error("sor accepted truncated input")
	}
	if _, err := programs.SORSolve(programs.Input{Ints: []int32{999, 1, 1, 1, 1}}); err == nil {
		t.Error("sor accepted huge iteration count")
	}
}

func TestCamelotOracleKnownValues(t *testing.T) {
	tests := []struct {
		name string
		ints []int32
		want string
	}{
		{"king alone", []int32{0, 3, 3}, "0\n"},
		{"knight on king square", []int32{1, 2, 2, 2, 2}, "0\n"},
		{"knight one move away, gather there", []int32{1, 1, 2, 3, 3}, "1\n"},
		{"king adjacent, no knight", []int32{0, 0, 0}, "0\n"},
	}
	for _, tt := range tests {
		got, err := programs.CamelotSolve(programs.Input{Ints: tt.ints})
		if err != nil {
			t.Fatalf("%s: %v", tt.name, err)
		}
		if got != tt.want {
			t.Errorf("%s: got %q, want %q", tt.name, got, tt.want)
		}
	}
}

func TestJamesBOracleKnownValues(t *testing.T) {
	// seed 0: shift at position i is (7i) mod 26.
	got, err := programs.JamesBSolve(programs.Input{Ints: []int32{0, 3}, Bytes: []byte("abz")})
	if err != nil {
		t.Fatal(err)
	}
	// a+0=a, b+7=i, z+14=n
	if got != "ain\n" {
		t.Errorf("got %q, want \"ain\\n\"", got)
	}
	// Negative seed: -1 -> shift (26-1)=25 at i=0.
	got, err = programs.JamesBSolve(programs.Input{Ints: []int32{-1, 2}, Bytes: []byte("aA")})
	if err != nil {
		t.Fatal(err)
	}
	// a+25=z, A+(25+7)%26=A+6=G
	if got != "zG\n" {
		t.Errorf("got %q, want \"zG\\n\"", got)
	}
	// Non-letters pass through.
	got, err = programs.JamesBSolve(programs.Input{Ints: []int32{5, 4}, Bytes: []byte("a.1!")})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(got, "f.1!") {
		t.Errorf("got %q, want prefix \"f.1!\"", got)
	}
}

func TestSOROracleProperties(t *testing.T) {
	// Zero boundary, any iterations: interior stays zero, residual zero.
	out, err := programs.SORSolve(programs.Input{Ints: []int32{5, 0, 0, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if line != "0" {
			t.Fatalf("zero boundary produced %q", line)
		}
	}
	// Uniform boundary v: the interior converges toward v*16; after some
	// iterations every interior value is within [0, v*16].
	out, err = programs.SORSolve(programs.Input{Ints: []int32{12, 100, 100, 100, 100}})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// 256 interior + 12 residual history + min, max, avg, checksum, residual.
	if len(lines) != 273 {
		t.Fatalf("got %d output lines, want 273", len(lines))
	}
}
