package cc

import "fmt"

// Builtin function signatures. Builtins compile to system calls or inline
// sequences rather than bl to user code.
type builtinSig struct {
	params []*Type
	ret    *Type
}

var builtins = map[string]builtinSig{
	"read_int":   {nil, IntType},
	"read_char":  {nil, IntType},
	"print_int":  {[]*Type{IntType}, VoidType},
	"print_char": {[]*Type{IntType}, VoidType},
	"malloc":     {[]*Type{IntType}, &Type{Kind: TypePointer, Elem: CharType}},
	"free":       {[]*Type{{Kind: TypePointer, Elem: CharType}}, VoidType},
	"exit":       {[]*Type{IntType}, VoidType},
}

// maxParams is the number of register-passed parameters (r3..r10).
const maxParams = 8

// scope is one lexical scope of variable declarations.
type scope struct {
	vars   map[string]*VarDecl
	parent *scope
}

func (s *scope) lookup(name string) *VarDecl {
	for sc := s; sc != nil; sc = sc.parent {
		if d, ok := sc.vars[name]; ok {
			return d
		}
	}
	return nil
}

// checker performs name resolution and type checking.
type checker struct {
	file    *File
	funcs   map[string]*FuncDecl
	globals *scope
	cur     *FuncDecl
	scope   *scope
	loop    int // loop nesting depth
}

// Check resolves names and types across the file. On success every
// expression node carries its type and every identifier its declaration.
func Check(f *File) error {
	c := &checker{
		file:    f,
		funcs:   make(map[string]*FuncDecl, len(f.Funcs)),
		globals: &scope{vars: make(map[string]*VarDecl)},
	}
	for _, g := range f.Globals {
		if _, dup := c.globals.vars[g.Name]; dup {
			return errf(g.Line, 1, "duplicate global %s", g.Name)
		}
		g.IsGlobal = true
		if g.Init != nil {
			if _, ok := g.Init.(*IntLit); !ok {
				return errf(g.Line, 1, "global initialiser for %s must be a constant", g.Name)
			}
		}
		c.globals.vars[g.Name] = g
	}
	for _, fn := range f.Funcs {
		if _, dup := c.funcs[fn.Name]; dup {
			return errf(fn.Line, 1, "duplicate function %s", fn.Name)
		}
		if _, isB := builtins[fn.Name]; isB {
			return errf(fn.Line, 1, "function %s shadows a builtin", fn.Name)
		}
		if len(fn.Params) > maxParams {
			return errf(fn.Line, 1, "function %s has more than %d parameters", fn.Name, maxParams)
		}
		if _, clash := c.globals.vars[fn.Name]; clash {
			return errf(fn.Line, 1, "function %s collides with a global variable", fn.Name)
		}
		c.funcs[fn.Name] = fn
	}
	main, ok := c.funcs["main"]
	if !ok {
		return fmt.Errorf("no main function")
	}
	if main.Ret.Kind != TypeInt && main.Ret.Kind != TypeVoid {
		return errf(main.Line, 1, "main must return int or void")
	}
	for _, fn := range f.Funcs {
		if err := c.checkFunc(fn); err != nil {
			return err
		}
	}
	return nil
}

// FuncLocals returns all local declarations (including parameters) of fn in
// declaration order. It is valid after Check.
func FuncLocals(fn *FuncDecl) []*VarDecl {
	var out []*VarDecl
	out = append(out, fn.Params...)
	collectLocals(fn.Body, &out)
	return out
}

func collectLocals(s Stmt, out *[]*VarDecl) {
	switch st := s.(type) {
	case *Block:
		for _, sub := range st.Stmts {
			collectLocals(sub, out)
		}
	case *If:
		collectLocals(st.Then, out)
		if st.Else != nil {
			collectLocals(st.Else, out)
		}
	case *While:
		collectLocals(st.Body, out)
	case *For:
		if st.Init != nil {
			collectLocals(st.Init, out)
		}
		collectLocals(st.Body, out)
	case *DeclStmt:
		*out = append(*out, st.Decl)
	}
}

func (c *checker) checkFunc(fn *FuncDecl) error {
	c.cur = fn
	c.scope = &scope{vars: make(map[string]*VarDecl), parent: c.globals}
	c.loop = 0
	for _, p := range fn.Params {
		if _, dup := c.scope.vars[p.Name]; dup {
			return errf(p.Line, 1, "duplicate parameter %s", p.Name)
		}
		if !p.Type.IsScalar() {
			return errf(p.Line, 1, "parameter %s must be scalar (arrays decay to pointers)", p.Name)
		}
		c.scope.vars[p.Name] = p
	}
	return c.checkBlock(fn.Body)
}

func (c *checker) checkBlock(b *Block) error {
	if !b.NoScope {
		c.scope = &scope{vars: make(map[string]*VarDecl), parent: c.scope}
		defer func() { c.scope = c.scope.parent }()
	}
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch st := s.(type) {
	case *Block:
		return c.checkBlock(st)
	case *DeclStmt:
		d := st.Decl
		if _, dup := c.scope.vars[d.Name]; dup {
			return errf(d.Line, 1, "duplicate variable %s", d.Name)
		}
		if d.Init != nil {
			t, err := c.checkExpr(d.Init)
			if err != nil {
				return err
			}
			if !assignable(d.Type, t) {
				return errf(d.Line, 1, "cannot initialise %s (%s) with %s", d.Name, d.Type, t)
			}
		}
		c.scope.vars[d.Name] = d
		return nil
	case *If:
		if _, err := c.checkExpr(st.Cond); err != nil {
			return err
		}
		if err := c.checkStmt(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkStmt(st.Else)
		}
		return nil
	case *While:
		if _, err := c.checkExpr(st.Cond); err != nil {
			return err
		}
		c.loop++
		defer func() { c.loop-- }()
		return c.checkStmt(st.Body)
	case *For:
		// The for header introduces a scope for declarations in init.
		c.scope = &scope{vars: make(map[string]*VarDecl), parent: c.scope}
		defer func() { c.scope = c.scope.parent }()
		if st.Init != nil {
			if err := c.checkStmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if _, err := c.checkExpr(st.Cond); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if err := c.checkStmt(st.Post); err != nil {
				return err
			}
		}
		c.loop++
		defer func() { c.loop-- }()
		return c.checkStmt(st.Body)
	case *Return:
		if st.E == nil {
			if c.cur.Ret.Kind != TypeVoid {
				return errf(st.Line, 1, "missing return value in %s", c.cur.Name)
			}
			return nil
		}
		if c.cur.Ret.Kind == TypeVoid {
			return errf(st.Line, 1, "void function %s returns a value", c.cur.Name)
		}
		t, err := c.checkExpr(st.E)
		if err != nil {
			return err
		}
		if !assignable(c.cur.Ret, t) {
			return errf(st.Line, 1, "cannot return %s from %s (%s)", t, c.cur.Name, c.cur.Ret)
		}
		return nil
	case *Break:
		if c.loop == 0 {
			return errf(st.Line, 1, "break outside loop")
		}
		return nil
	case *Continue:
		if c.loop == 0 {
			return errf(st.Line, 1, "continue outside loop")
		}
		return nil
	case *ExprStmt:
		_, err := c.checkExpr(st.E)
		return err
	}
	return fmt.Errorf("unknown statement %T", s)
}

// assignable reports whether a value of type src can be stored in dst.
// Arrays decay to pointers in value contexts (argument passing, returns).
func assignable(dst, src *Type) bool {
	if dst == nil || src == nil {
		return false
	}
	src = decay(src)
	if dst.IsScalar() && src.IsScalar() {
		// Ints, chars and pointers interconvert freely, as in pre-ANSI C;
		// the contest programs of the paper's era rely on this looseness.
		return true
	}
	return false
}

// decay converts array types to pointers to their element type.
func decay(t *Type) *Type {
	if t != nil && t.Kind == TypeArray {
		return &Type{Kind: TypePointer, Elem: t.Elem}
	}
	return t
}

func (c *checker) checkExpr(e Expr) (*Type, error) {
	switch ex := e.(type) {
	case *IntLit:
		ex.Typ = IntType
		return IntType, nil
	case *StrLit:
		ex.Typ = &Type{Kind: TypePointer, Elem: CharType}
		return ex.Typ, nil
	case *Ident:
		d := c.scope.lookup(ex.Name)
		if d == nil {
			d = c.globals.lookup(ex.Name)
		}
		if d == nil {
			line, col := ex.Pos()
			return nil, errf(line, col, "undefined variable %s", ex.Name)
		}
		ex.Decl = d
		ex.Typ = decay(d.Type)
		return ex.Typ, nil
	case *Unary:
		return c.checkUnary(ex)
	case *Binary:
		return c.checkBinary(ex)
	case *Assign:
		return c.checkAssign(ex)
	case *CondExpr:
		if _, err := c.checkExpr(ex.C); err != nil {
			return nil, err
		}
		t1, err := c.checkExpr(ex.T)
		if err != nil {
			return nil, err
		}
		t2, err := c.checkExpr(ex.F)
		if err != nil {
			return nil, err
		}
		if !t1.IsScalar() || !t2.IsScalar() {
			line, col := ex.Pos()
			return nil, errf(line, col, "ternary arms must be scalar")
		}
		ex.Typ = t1
		_ = t2
		return t1, nil
	case *Call:
		return c.checkCall(ex)
	case *Index:
		xt, err := c.checkExpr(ex.X)
		if err != nil {
			return nil, err
		}
		// ex.X may have array type before decay when it is a nested Index
		// into a multi-dimensional array; checkExpr on Index returns the
		// element type undecayed so this works uniformly.
		base := xt
		if base.Kind != TypePointer && base.Kind != TypeArray {
			line, col := ex.Pos()
			return nil, errf(line, col, "cannot index %s", base)
		}
		it, err := c.checkExpr(ex.Idx)
		if err != nil {
			return nil, err
		}
		if !it.IsScalar() {
			line, col := ex.Idx.Pos()
			return nil, errf(line, col, "array index must be scalar")
		}
		ex.Typ = base.Elem
		return ex.Typ, nil
	}
	return nil, fmt.Errorf("unknown expression %T", e)
}

func (c *checker) checkUnary(ex *Unary) (*Type, error) {
	line, col := ex.Pos()
	xt, err := c.checkExpr(ex.X)
	if err != nil {
		return nil, err
	}
	switch ex.Op {
	case "-", "!":
		if !xt.IsScalar() {
			return nil, errf(line, col, "operand of %s must be scalar", ex.Op)
		}
		ex.Typ = IntType
	case "*":
		if xt.Kind != TypePointer {
			return nil, errf(line, col, "cannot dereference %s", xt)
		}
		ex.Typ = xt.Elem
	case "&":
		if !isLValue(ex.X) {
			return nil, errf(line, col, "cannot take address of this expression")
		}
		ex.Typ = &Type{Kind: TypePointer, Elem: xt}
	default:
		return nil, errf(line, col, "unknown unary operator %s", ex.Op)
	}
	return ex.Typ, nil
}

func (c *checker) checkBinary(ex *Binary) (*Type, error) {
	line, col := ex.Pos()
	xt, err := c.checkExpr(ex.X)
	if err != nil {
		return nil, err
	}
	yt, err := c.checkExpr(ex.Y)
	if err != nil {
		return nil, err
	}
	if !xt.IsScalar() || !yt.IsScalar() {
		return nil, errf(line, col, "operands of %s must be scalar (got %s, %s)", ex.Op, xt, yt)
	}
	switch ex.Op {
	case "+", "-":
		// Pointer arithmetic: ptr ± int scales by element size (codegen).
		if xt.Kind == TypePointer {
			ex.Typ = xt
			return xt, nil
		}
		if yt.Kind == TypePointer && ex.Op == "+" {
			ex.Typ = yt
			return yt, nil
		}
		ex.Typ = IntType
	case "*", "/", "%":
		ex.Typ = IntType
	case "==", "!=", "<", "<=", ">", ">=", "&&", "||":
		ex.Typ = IntType
	default:
		return nil, errf(line, col, "unknown binary operator %s", ex.Op)
	}
	return ex.Typ, nil
}

func (c *checker) checkAssign(ex *Assign) (*Type, error) {
	line, col := ex.Pos()
	if !isLValue(ex.LHS) {
		return nil, errf(line, col, "left side of assignment is not assignable")
	}
	lt, err := c.checkExpr(ex.LHS)
	if err != nil {
		return nil, err
	}
	rt, err := c.checkExpr(ex.RHS)
	if err != nil {
		return nil, err
	}
	if !assignable(lt, rt) {
		return nil, errf(line, col, "cannot assign %s to %s", rt, lt)
	}
	ex.Typ = lt
	return lt, nil
}

func (c *checker) checkCall(ex *Call) (*Type, error) {
	line, col := ex.Pos()
	if sig, ok := builtins[ex.Name]; ok {
		if len(ex.Args) != len(sig.params) {
			return nil, errf(line, col, "builtin %s takes %d arguments, got %d", ex.Name, len(sig.params), len(ex.Args))
		}
		for _, a := range ex.Args {
			at, err := c.checkExpr(a)
			if err != nil {
				return nil, err
			}
			if !at.IsScalar() {
				return nil, errf(line, col, "argument to %s must be scalar", ex.Name)
			}
		}
		ex.Typ = sig.ret
		return sig.ret, nil
	}
	fn, ok := c.funcs[ex.Name]
	if !ok {
		return nil, errf(line, col, "undefined function %s", ex.Name)
	}
	if len(ex.Args) != len(fn.Params) {
		return nil, errf(line, col, "%s takes %d arguments, got %d", ex.Name, len(fn.Params), len(ex.Args))
	}
	for i, a := range ex.Args {
		at, err := c.checkExpr(a)
		if err != nil {
			return nil, err
		}
		if !assignable(fn.Params[i].Type, at) {
			return nil, errf(line, col, "argument %d of %s: cannot pass %s as %s", i+1, ex.Name, at, fn.Params[i].Type)
		}
	}
	ex.Fn = fn
	ex.Typ = fn.Ret
	return fn.Ret, nil
}

// isLValue reports whether e designates a storage location.
func isLValue(e Expr) bool {
	switch ex := e.(type) {
	case *Ident:
		return true
	case *Index:
		return true
	case *Unary:
		return ex.Op == "*"
	}
	return false
}
