package campaign_test

import (
	"reflect"
	"testing"

	"repro/internal/campaign"
	"repro/internal/fault"
	"repro/internal/injector"
	"repro/internal/programs"
	"repro/internal/workload"
)

// TestCampaignParallelDeterminism is the §6 determinism gate: a scaled-down
// class campaign must produce a deep-equal Result — Entries, Plans and
// Runs — whether it executes serially or fanned out over eight workers.
// All randomness lives in planning, which is serial and seeded; execution
// only fills per-unit result slots, so the schedule cannot leak into the
// Result.
func TestCampaignParallelDeterminism(t *testing.T) {
	// The JamesB pair keeps the test fast (the guarantee is structural,
	// not per-program: execution order cannot reach the Result for any
	// target). Both fault classes and all Table 3 error types are in play.
	base := campaign.Config{
		Programs:      []string{"JB.team11", "JB.team6"},
		CasesPerFault: 20,
		Seed:          2000,
	}

	serial := base
	serial.Workers = 1
	a, err := campaign.Run(serial)
	if err != nil {
		t.Fatal(err)
	}

	fanned := base
	fanned.Workers = 8
	b, err := campaign.Run(fanned)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(a.Entries, b.Entries) {
		t.Errorf("Entries differ between 1 and 8 workers:\nserial:   %+v\nparallel: %+v", a.Entries, b.Entries)
	}
	if !reflect.DeepEqual(a.Plans, b.Plans) {
		t.Errorf("Plans differ between 1 and 8 workers:\nserial:   %+v\nparallel: %+v", a.Plans, b.Plans)
	}
	if a.Runs != b.Runs {
		t.Errorf("Runs differ: serial %d, parallel %d", a.Runs, b.Runs)
	}
	if a.Runs == 0 {
		t.Fatal("campaign executed zero runs; the determinism check is vacuous")
	}
}

// TestVerifyEmulationParallelDeterminism is the §5 determinism gate: the
// equivalence verification of a real-fault emulation must count the same
// Equivalent/FaultShown totals for any worker count.
func TestVerifyEmulationParallelDeterminism(t *testing.T) {
	p, ok := programs.ByName("C.team1")
	if !ok {
		t.Fatal("C.team1 missing from the suite")
	}
	em, err := campaign.BuildEmulation(p)
	if err != nil {
		t.Fatal(err)
	}
	cases, err := workload.Generate(p.Kind, 30, 99)
	if err != nil {
		t.Fatal(err)
	}
	a, err := campaign.VerifyEmulationWorkers(p, em, campaign.StrategyFetchEveryExec, injector.ModeHardware, cases, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := campaign.VerifyEmulationWorkers(p, em, campaign.StrategyFetchEveryExec, injector.ModeHardware, cases, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("equivalence reports differ:\nserial:   %+v\nparallel: %+v", a, b)
	}
}

// TestTriggerStudyParallelDeterminism covers the third executor client: the
// per-policy failure-mode distributions must be schedule-independent.
func TestTriggerStudyParallelDeterminism(t *testing.T) {
	a, err := campaign.RunTriggerStudyWorkers("JB.team11", 3, 8, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := campaign.RunTriggerStudyWorkers("JB.team11", 3, 8, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("trigger study differs:\nserial:   %+v\nparallel: %+v", a, b)
	}
}

// TestRunCleanBatchMatchesRunClean pins the pooled batch path to the
// one-machine-per-run reference path, including over a faulty binary where
// outputs deviate.
func TestRunCleanBatchMatchesRunClean(t *testing.T) {
	p, ok := programs.ByName("C.team2")
	if !ok {
		t.Fatal("C.team2 missing from the suite")
	}
	c, err := p.CompileFaulty()
	if err != nil {
		t.Fatal(err)
	}
	cases, err := workload.Generate(p.Kind, 25, 3)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := campaign.RunCleanBatch(c, cases, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(cases) {
		t.Fatalf("batch returned %d results for %d cases", len(batch), len(cases))
	}
	for i := range cases {
		ref, err := campaign.RunClean(c, cases[i].Input, cases[i].Golden, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, batch[i]) {
			t.Errorf("case %d: batch %+v != reference %+v", i, batch[i], ref)
		}
	}
}

// TestCalibrateCyclesCached proves repeated campaigns do not recalibrate:
// the same (program, case set) returns the identical budgets slice.
func TestCalibrateCyclesCached(t *testing.T) {
	p, ok := programs.ByName("JB.team11")
	if !ok {
		t.Fatal("JB.team11 missing from the suite")
	}
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cases, err := workload.Cached(p.Kind, 6, 12345)
	if err != nil {
		t.Fatal(err)
	}
	a, err := campaign.CalibrateCyclesWorkers(c, cases, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := campaign.CalibrateCyclesWorkers(c, cases, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(cases) {
		t.Fatalf("got %d budgets for %d cases", len(a), len(cases))
	}
	if &a[0] != &b[0] {
		t.Error("second calibration did not hit the cache")
	}

	// A different case set must not alias the cached budgets.
	other, err := workload.Cached(p.Kind, 6, 54321)
	if err != nil {
		t.Fatal(err)
	}
	d, err := campaign.CalibrateCyclesWorkers(c, other, 1)
	if err != nil {
		t.Fatal(err)
	}
	if &d[0] == &a[0] {
		t.Error("distinct case sets share cached budgets")
	}
}

// TestCampaignWithFaultClassesParallel smoke-tests the executor across the
// hardware class and trap mode, the two paths with extra machine-state
// mutation (text rewrites), under a parallel schedule.
func TestCampaignWithFaultClassesParallel(t *testing.T) {
	res, err := campaign.Run(campaign.Config{
		Programs:      []string{"JB.team11"},
		Classes:       []fault.Class{fault.ClassAssignment, fault.ClassHardware},
		CasesPerFault: 4,
		Seed:          7,
		Mode:          injector.ModeTrap,
		Workers:       8,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := campaign.Run(campaign.Config{
		Programs:      []string{"JB.team11"},
		Classes:       []fault.Class{fault.ClassAssignment, fault.ClassHardware},
		CasesPerFault: 4,
		Seed:          7,
		Mode:          injector.ModeTrap,
		Workers:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, ref) {
		t.Errorf("trap-mode campaign differs between schedules:\nparallel: %+v\nserial:   %+v", res, ref)
	}
}
