// Command benchjson converts `go test -bench` output into machine-readable
// JSON. It reads benchmark text on stdin and writes a JSON document on
// stdout; scripts/bench.sh uses it to produce the BENCH_*.json artifacts
// committed alongside performance work.
//
// Usage:
//
//	go test -run=NONE -bench . ./... | go run ./tools/benchjson [-label k=v ...]
//
// Each benchmark line contributes one entry keyed by benchmark name with
// iterations, ns/op and every reported unit (B/op, allocs/op, custom
// b.ReportMetric units). -label attaches free-form metadata (host, commit)
// to the document.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is one parsed benchmark result.
type Entry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the emitted document.
type Doc struct {
	Labels  map[string]string `json:"labels,omitempty"`
	Env     map[string]string `json:"env,omitempty"`
	Results []Entry           `json:"results"`
}

type labelFlags map[string]string

func (l labelFlags) String() string { return "" }
func (l labelFlags) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("label %q is not key=value", s)
	}
	l[k] = v
	return nil
}

func main() {
	labels := labelFlags{}
	flag.Var(labels, "label", "attach key=value metadata (repeatable)")
	flag.Parse()

	doc := Doc{Labels: labels, Env: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			doc.Env[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "Benchmark"):
			if e, ok := parseLine(line); ok {
				doc.Results = append(doc.Results, e)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one "BenchmarkName  N  V unit  V unit ..." line. Fields
// come in (value, unit) pairs after the name and iteration count.
func parseLine(line string) (Entry, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Entry{}, false
	}
	// The name column may carry a -cpu suffix like BenchmarkX-8; keep it.
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Entry{}, false
		}
		if f[i+1] == "ns/op" {
			e.NsPerOp = v
		} else {
			e.Metrics[f[i+1]] = v
		}
	}
	return e, true
}
