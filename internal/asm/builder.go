// Package asm provides the assembly layer between the mini-C compiler and
// the virtual machine: a symbolic program builder with label resolution, a
// two-pass textual assembler, and a disassembler that renders the listings
// shown in the paper's Figures 3–6.
package asm

import (
	"fmt"
	"sort"

	"repro/internal/vm"
)

// item is one pending instruction, possibly carrying an unresolved label or
// data-symbol fixup.
type item struct {
	inst    vm.Inst
	target  string // non-empty for label-relative branches
	dataSym string // non-empty for data-address fixups
	hi      bool   // fixup applies the high half of the address
}

// Symbol is one entry of the symbol table the loader exposes; the paper's
// manual fault definition relies on exactly this information ("the loader
// provides this information").
type Symbol struct {
	Name string
	Addr uint32
	Kind SymKind
}

// SymKind distinguishes code labels from data objects.
type SymKind int

// Symbol kinds.
const (
	SymText SymKind = iota + 1
	SymData
)

// Builder accumulates instructions and data, then assembles them into a
// loadable image plus symbol table.
type Builder struct {
	items     []item
	textSyms  map[string]int // label -> instruction index
	textOrder []string
	data      []byte
	dataSyms  map[string]uint32 // name -> offset within data segment
	dataOrder []string
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{
		textSyms: make(map[string]int),
		dataSyms: make(map[string]uint32),
	}
}

// Label defines a code label at the current instruction position.
func (b *Builder) Label(name string) error {
	if _, dup := b.textSyms[name]; dup {
		return fmt.Errorf("asm: duplicate label %q", name)
	}
	b.textSyms[name] = len(b.items)
	b.textOrder = append(b.textOrder, name)
	return nil
}

// MustLabel is Label for programmatically generated, collision-free names.
func (b *Builder) MustLabel(name string) {
	if err := b.Label(name); err != nil {
		panic(err)
	}
}

// Emit appends a fully resolved instruction.
func (b *Builder) Emit(in vm.Inst) {
	b.items = append(b.items, item{inst: in})
}

// EmitBranch appends a branch to a label (OpB, OpBl or OpBc); the offset is
// resolved at assembly time.
func (b *Builder) EmitBranch(in vm.Inst, target string) {
	b.items = append(b.items, item{inst: in, target: target})
}

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.items) }

// EmitLoadAddr emits the two-instruction sequence that materialises the
// absolute address of data symbol name into rd (addis+ori). The address is
// fixed up at assembly time, when the data base is known.
func (b *Builder) EmitLoadAddr(rd uint8, name string) {
	b.items = append(b.items,
		item{inst: vm.Inst{Op: vm.OpAddis, RD: rd, RA: vm.RegZero}, dataSym: name, hi: true},
		item{inst: vm.Inst{Op: vm.OpOri, RD: rd, RA: rd}, dataSym: name},
	)
}

// EmitLoadImm32 emits the shortest sequence that loads the 32-bit constant v
// into rd: a single addi when v fits in a signed 16-bit immediate, otherwise
// addis+ori.
func (b *Builder) EmitLoadImm32(rd uint8, v int32) {
	if v >= -32768 && v <= 32767 {
		b.Emit(vm.Inst{Op: vm.OpAddi, RD: rd, RA: vm.RegZero, Imm: v})
		return
	}
	u := uint32(v)
	lo := u & 0xffff
	hi := u >> 16
	// addis sign-extends its immediate, but the shift and 32-bit wrap-around
	// make (hi<<16)|lo exact for every uint32 value.
	b.Emit(vm.Inst{Op: vm.OpAddis, RD: rd, RA: vm.RegZero, Imm: int32(int16(uint16(hi)))})
	b.Emit(vm.Inst{Op: vm.OpOri, RD: rd, RA: rd, Imm: int32(lo)})
}

// Word appends a 32-bit big-endian word to the data segment and returns its
// offset.
func (b *Builder) Word(v uint32) uint32 {
	off := uint32(len(b.data))
	b.data = append(b.data, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	return off
}

// Space reserves n zero bytes in the data segment and returns the offset.
func (b *Builder) Space(n uint32) uint32 {
	off := uint32(len(b.data))
	b.data = append(b.data, make([]byte, n)...)
	return off
}

// Bytes appends raw bytes to the data segment and returns the offset.
func (b *Builder) Bytes(p []byte) uint32 {
	off := uint32(len(b.data))
	b.data = append(b.data, p...)
	return off
}

// DataLabel names the current end of the data segment.
func (b *Builder) DataLabel(name string) error {
	if _, dup := b.dataSyms[name]; dup {
		return fmt.Errorf("asm: duplicate data symbol %q", name)
	}
	b.dataSyms[name] = uint32(len(b.data))
	b.dataOrder = append(b.dataOrder, name)
	return nil
}

// AlignData pads the data segment to a multiple of vm.WordSize.
func (b *Builder) AlignData() {
	for len(b.data)%vm.WordSize != 0 {
		b.data = append(b.data, 0)
	}
}

// Program is an assembled, loadable program with its symbol table.
type Program struct {
	Image     vm.Image
	Symbols   []Symbol
	symByName map[string]Symbol
}

// Lookup finds a symbol by name.
func (p *Program) Lookup(name string) (Symbol, bool) {
	s, ok := p.symByName[name]
	return s, ok
}

// TextAddr returns the absolute address of instruction index i.
func TextAddr(i int) uint32 { return vm.TextBase + uint32(i)*vm.WordSize }

// ReadTextWord returns the instruction word at an absolute text address.
func (p *Program) ReadTextWord(addr uint32) (uint32, error) {
	if addr < vm.TextBase || addr%vm.WordSize != 0 {
		return 0, fmt.Errorf("asm: bad text address %#x", addr)
	}
	i := int(addr-vm.TextBase) / vm.WordSize
	if i >= len(p.Image.Text) {
		return 0, fmt.Errorf("asm: text address %#x out of range", addr)
	}
	return p.Image.Text[i], nil
}

// Assemble resolves labels and produces the program. The entry point is the
// label named by entry.
func (b *Builder) Assemble(entry string) (*Program, error) {
	entryIdx, ok := b.textSyms[entry]
	if !ok {
		return nil, fmt.Errorf("asm: entry label %q not defined", entry)
	}
	dataBase := vm.TextBase + uint32(len(b.items))*vm.WordSize

	text := make([]uint32, len(b.items))
	for i, it := range b.items {
		in := it.inst
		if it.dataSym != "" {
			off, ok := b.dataSyms[it.dataSym]
			if !ok {
				return nil, fmt.Errorf("asm: undefined data symbol %q at instruction %d", it.dataSym, i)
			}
			addr := dataBase + off
			if it.hi {
				in.Imm = int32(int16(uint16(addr >> 16)))
			} else {
				in.Imm = int32(addr & 0xffff)
			}
		}
		if it.target != "" {
			ti, ok := b.textSyms[it.target]
			if !ok {
				return nil, fmt.Errorf("asm: undefined label %q at instruction %d", it.target, i)
			}
			off := int32(ti-i) * vm.WordSize
			switch in.Op {
			case vm.OpB, vm.OpBl:
				in.Off26 = off
			case vm.OpBc:
				if off > 32767 || off < -32768 {
					return nil, fmt.Errorf("asm: conditional branch to %q out of 16-bit range (%d)", it.target, off)
				}
				in.Imm = off
			default:
				return nil, fmt.Errorf("asm: instruction %s cannot take a label target", in.Op)
			}
		}
		text[i] = vm.Encode(in)
	}

	syms := make([]Symbol, 0, len(b.textSyms)+len(b.dataSyms))
	byName := make(map[string]Symbol, cap(syms))
	for _, name := range b.textOrder {
		s := Symbol{Name: name, Addr: TextAddr(b.textSyms[name]), Kind: SymText}
		syms = append(syms, s)
		byName[name] = s
	}
	for _, name := range b.dataOrder {
		s := Symbol{Name: name, Addr: dataBase + b.dataSyms[name], Kind: SymData}
		syms = append(syms, s)
		byName[name] = s
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i].Addr < syms[j].Addr })

	return &Program{
		Image: vm.Image{
			Text:  text,
			Data:  append([]byte(nil), b.data...),
			Entry: TextAddr(entryIdx),
		},
		Symbols:   syms,
		symByName: byName,
	}, nil
}

// DataBaseOf returns the absolute base address the data segment will have
// once the current text is assembled. Useful for compilers that must emit
// absolute data addresses before assembly. It must be called after all
// instructions have been emitted.
func (b *Builder) DataBaseOf() uint32 {
	return vm.TextBase + uint32(len(b.items))*vm.WordSize
}
