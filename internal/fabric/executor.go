package fabric

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/journal"
	"repro/internal/worker"
)

// BatchRunner executes assigned units on the local stack. One BatchRunner
// serves the whole executor session; RunBatch is called once per drained
// queue, never concurrently with itself.
type BatchRunner interface {
	// Units returns the total unit count of the rebuilt plan, echoed to
	// the coordinator in the ready frame.
	Units() int
	// RunBatch executes the given sorted units. skip is consulted as each
	// unit is about to start: it reports units revoked (stolen) since the
	// batch was cut, which the runner should not spend time on — skipping
	// is an optimisation, not a correctness requirement, because duplicate
	// verdicts are dropped at the merge. emit ships one verdict; it is
	// safe to call from concurrent workers. A returned error is fatal to
	// the executor session.
	RunBatch(ctx context.Context, units []int, skip func(int) bool, emit func(unit int, o journal.Outcome, payload []byte) error) error
}

// BatchFactory builds the session's BatchRunner from the spec in the
// coordinator's hello frame — the executor-side analogue of worker.Factory.
// It runs before the ready frame, so it is where the executor re-plans and
// where a fingerprint mismatch should surface as an error.
type BatchFactory func(spec worker.Spec) (BatchRunner, error)

// ExecutorOptions configures one Join session.
type ExecutorOptions struct {
	// Name identifies this host in coordinator logs, traces and per-host
	// metrics (default: os.Hostname, falling back to the local address).
	Name string
	// Workers is the parallelism advertised to the coordinator; the
	// initial shard is weighted by it (default 1).
	Workers int
	// Batch builds the local execution stack from the campaign spec.
	Batch BatchFactory
	// DialTimeout bounds how long Join keeps trying to connect (default
	// 10s). The coordinator binds its port only after planning the
	// campaign, so refused connections are retried until the window
	// closes — an executor may be started before its coordinator.
	DialTimeout time.Duration
	// Log, when non-nil, receives one line per session event.
	Log func(format string, args ...any)
}

func (o *ExecutorOptions) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

// Join connects to a coordinator, rebuilds the plan from the hello spec,
// and executes assigned unit ranges until the coordinator sends shutdown
// (clean end: returns nil), the context is cancelled, or the connection or
// the batch runner fails.
func Join(ctx context.Context, addr string, opts ExecutorOptions) error {
	if opts.Batch == nil {
		return errors.New("fabric: ExecutorOptions.Batch is required")
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.Name == "" {
		if hn, err := os.Hostname(); err == nil {
			opts.Name = hn
		}
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 10 * time.Second
	}
	opts.logf("fabric: joining coordinator at %s", addr)
	var conn net.Conn
	dialUntil := time.Now().Add(opts.DialTimeout)
	for attempt := 0; ; attempt++ {
		var err error
		conn, err = net.DialTimeout("tcp", addr, opts.DialTimeout)
		if err == nil {
			break
		}
		if time.Now().After(dialUntil) {
			return fmt.Errorf("fabric: %w", err)
		}
		if attempt == 0 {
			opts.logf("fabric: coordinator not up yet (%v); retrying for %v", err, opts.DialTimeout)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(200 * time.Millisecond):
		}
	}
	defer conn.Close()
	if opts.Name == "" {
		opts.Name = conn.LocalAddr().String()
	}

	// Cancellation severs the connection, which unblocks every read and
	// write immediately.
	x := &executor{conn: conn, opts: &opts, revoked: make(map[int]bool), wake: make(chan struct{}, 1)}
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	err := x.session(ctx)
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}

// executor is one Join session.
type executor struct {
	conn net.Conn
	opts *ExecutorOptions

	wmu sync.Mutex // serialises frame writes (verdicts vs heartbeats)

	qmu      sync.Mutex
	queue    []int        // assigned, not yet handed to RunBatch; sorted
	revoked  map[int]bool // stolen; skip if not yet started
	wake     chan struct{}
	shutdown bool

	hb hello // negotiated timings
}

func (x *executor) send(typ uint8, payload []byte) error {
	x.wmu.Lock()
	defer x.wmu.Unlock()
	_ = x.conn.SetWriteDeadline(time.Now().Add(x.hb.HeartbeatTimeout))
	return worker.WriteFrame(x.conn, typ, payload)
}

func (x *executor) session(ctx context.Context) error {
	// Handshake: hello in, re-plan, ready out. The hello read gets a
	// generous fixed deadline because the negotiated timeout is inside it.
	_ = x.conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	typ, payload, err := worker.ReadFrame(x.conn)
	if err != nil {
		return fmt.Errorf("fabric: reading hello: %w", err)
	}
	if typ == msgError {
		return fmt.Errorf("fabric: coordinator: %s", payload)
	}
	if typ != msgHello {
		return fmt.Errorf("fabric: expected hello, got frame type %d", typ)
	}
	h, err := decodeHello(payload)
	if err != nil {
		return err
	}
	if h.Version != ProtocolVersion {
		return fmt.Errorf("fabric: coordinator speaks protocol version %d, executor speaks %d", h.Version, ProtocolVersion)
	}
	if h.HeartbeatInterval <= 0 {
		h.HeartbeatInterval = 500 * time.Millisecond
	}
	if h.HeartbeatTimeout <= 0 {
		h.HeartbeatTimeout = 10 * time.Second
	}
	x.hb = h

	// Heartbeats start before the (possibly slow) re-plan so the
	// coordinator's handshake deadline does not fire while we build.
	hbCtx, hbCancel := context.WithCancel(ctx)
	defer hbCancel()
	go func() {
		t := time.NewTicker(h.HeartbeatInterval)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				if x.send(msgHeartbeat, nil) != nil {
					return // reader sees the dead conn too
				}
			}
		}
	}()

	runner, err := x.opts.Batch(h.Spec)
	if err != nil {
		_ = x.send(msgError, []byte(err.Error()))
		return fmt.Errorf("fabric: building batch runner: %w", err)
	}
	units := runner.Units()
	if err := x.send(msgReady, encodeReady(ready{
		Version:     ProtocolVersion,
		Fingerprint: h.Spec.Fingerprint,
		Units:       uint32(units),
		Workers:     uint32(x.opts.Workers),
		Name:        x.opts.Name,
	})); err != nil {
		return fmt.Errorf("fabric: sending ready: %w", err)
	}
	x.opts.logf("fabric: ready as %q: %d-unit plan, %d workers", x.opts.Name, units, x.opts.Workers)

	// The batch loop runs concurrently with the read loop: assigns and
	// revokes keep landing while a batch executes.
	runCtx, runCancel := context.WithCancel(ctx)
	defer runCancel()
	runErr := make(chan error, 1)
	go func() { runErr <- x.batchLoop(runCtx, runner) }()

	readErr := x.readLoop(units)

	x.qmu.Lock()
	done := x.shutdown
	x.qmu.Unlock()
	if done {
		// Clean shutdown: let the in-flight batch finish nothing more —
		// the coordinator has every verdict it needs. A real batch error
		// still surfaces (the shutdown may be the coordinator reacting to
		// this executor's own error frame).
		runCancel()
		if err := <-runErr; err != nil && !errors.Is(err, context.Canceled) {
			return err
		}
		x.opts.logf("fabric: campaign complete; coordinator released this executor")
		return nil
	}
	// Connection failed. A batch-runner error is the root cause when there
	// is one (its msgError write is usually what the reader saw die).
	runCancel()
	if err := <-runErr; err != nil && !errors.Is(err, context.Canceled) {
		return err
	}
	return readErr
}

// readLoop drains coordinator frames until shutdown or a dead connection.
func (x *executor) readLoop(maxUnits int) error {
	for {
		_ = x.conn.SetReadDeadline(time.Now().Add(x.hb.HeartbeatTimeout))
		typ, payload, err := worker.ReadFrame(x.conn)
		if err != nil {
			if err == io.EOF {
				return fmt.Errorf("fabric: coordinator closed the connection")
			}
			return fmt.Errorf("fabric: reading from coordinator: %w", err)
		}
		switch typ {
		case msgHeartbeat:
		case msgAssign:
			units, err := decodeRuns(payload, maxUnits)
			if err != nil {
				return err
			}
			x.qmu.Lock()
			for _, u := range units {
				delete(x.revoked, u) // re-assignment supersedes an old steal
			}
			x.queue = append(x.queue, units...)
			sort.Ints(x.queue)
			x.qmu.Unlock()
			select {
			case x.wake <- struct{}{}:
			default:
			}
			x.opts.logf("fabric: assigned %d units", len(units))
		case msgRevoke:
			units, err := decodeRuns(payload, maxUnits)
			if err != nil {
				return err
			}
			x.qmu.Lock()
			gone := make(map[int]bool, len(units))
			for _, u := range units {
				gone[u] = true
				x.revoked[u] = true
			}
			kept := x.queue[:0]
			for _, u := range x.queue {
				if !gone[u] {
					kept = append(kept, u)
				}
			}
			x.queue = kept
			x.qmu.Unlock()
			x.opts.logf("fabric: %d units revoked (stolen by another host)", len(units))
		case msgShutdown:
			x.qmu.Lock()
			x.shutdown = true
			x.qmu.Unlock()
			return nil
		case msgError:
			return fmt.Errorf("fabric: coordinator aborted: %s", payload)
		default:
			return fmt.Errorf("fabric: unexpected frame type %d from coordinator", typ)
		}
	}
}

// batchLoop hands the queue to the BatchRunner whenever it is non-empty.
// The whole queue is cut as one batch; units assigned mid-batch wait for
// the next cut, and units stolen mid-batch are dropped by the skip check.
func (x *executor) batchLoop(ctx context.Context, runner BatchRunner) error {
	skip := func(u int) bool {
		x.qmu.Lock()
		defer x.qmu.Unlock()
		return x.revoked[u]
	}
	emit := func(unit int, o journal.Outcome, payload []byte) error {
		err := x.send(msgVerdict, encodeVerdict(verdict{Unit: uint32(unit), Outcome: o, Payload: payload}))
		if err != nil {
			x.qmu.Lock()
			released := x.shutdown
			x.qmu.Unlock()
			if released {
				// The campaign completed while this (stale, already
				// duplicated) unit was in flight; the verdict is not needed.
				return nil
			}
		}
		return err
	}
	for {
		x.qmu.Lock()
		batch := x.queue
		x.queue = nil
		x.qmu.Unlock()
		if len(batch) == 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-x.wake:
			}
			continue
		}
		if err := runner.RunBatch(ctx, batch, skip, emit); err != nil {
			if ctx.Err() == nil {
				_ = x.send(msgError, []byte(err.Error()))
			}
			return err
		}
	}
}

// InProcBatch adapts a worker.Factory into a BatchRunner that executes
// units on a pool of goroutines, one runner instance per goroutine — the
// executor-side analogue of the in-process campaign pool, reused by the
// simple fan-out specs (faultgen plans, progrun selftests).
func InProcBatch(factory worker.Factory, workers int) BatchFactory {
	return func(spec worker.Spec) (BatchRunner, error) {
		if workers < 1 {
			workers = 1
		}
		runners := make([]worker.Runner, workers)
		for i := range runners {
			r, err := factory(spec)
			if err != nil {
				return nil, err
			}
			runners[i] = r
		}
		return &inProcBatch{runners: runners}, nil
	}
}

type inProcBatch struct {
	runners []worker.Runner
}

func (b *inProcBatch) Units() int { return b.runners[0].Units() }

func (b *inProcBatch) RunBatch(ctx context.Context, units []int, skip func(int) bool, emit func(int, journal.Outcome, []byte) error) error {
	var next int
	var mu sync.Mutex
	take := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= len(units) {
			return 0, false
		}
		u := units[next]
		next++
		return u, true
	}
	errc := make(chan error, len(b.runners))
	for _, r := range b.runners {
		go func(r worker.Runner) {
			for {
				if ctx.Err() != nil {
					errc <- ctx.Err()
					return
				}
				u, ok := take()
				if !ok {
					errc <- nil
					return
				}
				if skip != nil && skip(u) {
					continue
				}
				o, payload, err := r.Run(u)
				if err != nil {
					errc <- fmt.Errorf("unit %d: %w", u, err)
					return
				}
				if err := emit(u, o, payload); err != nil {
					errc <- err
					return
				}
			}
		}(r)
	}
	var first error
	for range b.runners {
		if err := <-errc; err != nil && first == nil {
			first = err
		}
	}
	return first
}
