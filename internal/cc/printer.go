package cc

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders a checked or unchecked AST back to mini-C source. The
// output re-parses to an equivalent AST (idempotent after one round trip),
// which the tooling uses to display mutants and normalised program
// listings.
func Print(f *File) string {
	var p printer
	for _, g := range f.Globals {
		p.varDecl(g)
		p.buf.WriteString(";\n")
	}
	if len(f.Globals) > 0 {
		p.buf.WriteByte('\n')
	}
	for i, fn := range f.Funcs {
		if i > 0 {
			p.buf.WriteByte('\n')
		}
		p.funcDecl(fn)
	}
	return p.buf.String()
}

type printer struct {
	buf    strings.Builder
	indent int
}

func (p *printer) line(s string) {
	for i := 0; i < p.indent; i++ {
		p.buf.WriteString("    ")
	}
	p.buf.WriteString(s)
	p.buf.WriteByte('\n')
}

// typePrefix renders the base-type-plus-stars part of a declaration.
func typePrefix(t *Type) (base string, stars int, dims []int32) {
	for t.Kind == TypeArray {
		dims = append(dims, t.Len)
		t = t.Elem
	}
	for t.Kind == TypePointer {
		stars++
		t = t.Elem
	}
	switch t.Kind {
	case TypeInt:
		base = "int"
	case TypeChar:
		base = "char"
	case TypeVoid:
		base = "void"
	default:
		base = "int"
	}
	return base, stars, dims
}

func declString(name string, t *Type) string {
	base, stars, dims := typePrefix(t)
	var sb strings.Builder
	sb.WriteString(base)
	sb.WriteByte(' ')
	sb.WriteString(strings.Repeat("*", stars))
	sb.WriteString(name)
	for _, d := range dims {
		fmt.Fprintf(&sb, "[%d]", d)
	}
	return sb.String()
}

func (p *printer) varDecl(d *VarDecl) {
	for i := 0; i < p.indent; i++ {
		p.buf.WriteString("    ")
	}
	p.buf.WriteString(declString(d.Name, d.Type))
	if d.Init != nil {
		p.buf.WriteString(" = ")
		p.buf.WriteString(exprString(d.Init))
	}
}

func (p *printer) funcDecl(fn *FuncDecl) {
	var params []string
	for _, pr := range fn.Params {
		params = append(params, declString(pr.Name, pr.Type))
	}
	if len(params) == 0 {
		params = []string{"void"}
	}
	base, stars, _ := typePrefix(fn.Ret)
	p.line(fmt.Sprintf("%s %s%s(%s) {", base, strings.Repeat("*", stars), fn.Name, strings.Join(params, ", ")))
	p.indent++
	for _, s := range fn.Body.Stmts {
		p.stmt(s)
	}
	p.indent--
	p.line("}")
}

func (p *printer) stmt(s Stmt) {
	switch st := s.(type) {
	case *Block:
		if st.NoScope {
			for _, sub := range st.Stmts {
				p.stmt(sub)
			}
			return
		}
		p.line("{")
		p.indent++
		for _, sub := range st.Stmts {
			p.stmt(sub)
		}
		p.indent--
		p.line("}")
	case *DeclStmt:
		p.varDecl(st.Decl)
		p.buf.WriteString(";\n")
	case *ExprStmt:
		p.line(exprString(st.E) + ";")
	case *If:
		p.line("if (" + exprString(st.Cond) + ") {")
		p.indent++
		p.stmtBody(st.Then)
		p.indent--
		if st.Else != nil {
			p.line("} else {")
			p.indent++
			p.stmtBody(st.Else)
			p.indent--
		}
		p.line("}")
	case *While:
		p.line("while (" + exprString(st.Cond) + ") {")
		p.indent++
		p.stmtBody(st.Body)
		p.indent--
		p.line("}")
	case *For:
		init, post := "", ""
		if st.Init != nil {
			init = simpleStmtString(st.Init)
		}
		cond := ""
		if st.Cond != nil {
			cond = " " + exprString(st.Cond)
		}
		if st.Post != nil {
			post = " " + simpleStmtString(st.Post)
		}
		p.line(fmt.Sprintf("for (%s;%s;%s) {", init, cond, post))
		p.indent++
		p.stmtBody(st.Body)
		p.indent--
		p.line("}")
	case *Return:
		if st.E == nil {
			p.line("return;")
		} else {
			p.line("return " + exprString(st.E) + ";")
		}
	case *Break:
		p.line("break;")
	case *Continue:
		p.line("continue;")
	}
}

// stmtBody prints a statement that syntactically serves as a brace-wrapped
// body: blocks are flattened into the surrounding braces.
func (p *printer) stmtBody(s Stmt) {
	if b, ok := s.(*Block); ok && !b.NoScope {
		for _, sub := range b.Stmts {
			p.stmt(sub)
		}
		return
	}
	p.stmt(s)
}

func simpleStmtString(s Stmt) string {
	if es, ok := s.(*ExprStmt); ok {
		return exprString(es.E)
	}
	return ""
}

// exprString renders an expression with explicit parentheses around every
// binary operation, so precedence never needs reconstructing.
func exprString(e Expr) string {
	switch ex := e.(type) {
	case *IntLit:
		return strconv.FormatInt(int64(ex.Val), 10)
	case *StrLit:
		return strconv.Quote(ex.Val)
	case *Ident:
		return ex.Name
	case *Unary:
		return ex.Op + "(" + exprString(ex.X) + ")"
	case *Binary:
		return "(" + exprString(ex.X) + " " + ex.Op + " " + exprString(ex.Y) + ")"
	case *Assign:
		return exprString(ex.LHS) + " = " + exprString(ex.RHS)
	case *CondExpr:
		return "(" + exprString(ex.C) + " ? " + exprString(ex.T) + " : " + exprString(ex.F) + ")"
	case *Call:
		var args []string
		for _, a := range ex.Args {
			args = append(args, exprString(a))
		}
		return ex.Name + "(" + strings.Join(args, ", ") + ")"
	case *Index:
		return exprString(ex.X) + "[" + exprString(ex.Idx) + "]"
	}
	return "?"
}
