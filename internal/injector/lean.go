package injector

import (
	"repro/internal/fault"
	"repro/internal/vm"
)

// Lean arming is the campaign executor's fast path. The generic Arm builds
// map-backed dispatch tables and, for instruction-bus corruptions, installs
// a fetch hook the machine consults on every cycle; for the §6 fault shapes
// — a single-location corruption triggered on every execution — that
// per-cycle overhead dominates the run. ArmLean recognises those shapes and
// arms them with zero or near-zero steady-state cost:
//
//   - Every-execution fetch corruptions are planted directly into the
//     decoded-instruction cache (vm.PlantDecoded): the corrupted word
//     executes at the address at full speed, memory stays pristine, and an
//     undecodable word raises ExcIllegal at the address, exactly like the
//     fetch-hook path. Planting also invalidates any compiled blocks
//     covering the address, so the block engine re-compiles through the
//     corruption instead of executing a stale trace (and, unlike a fetch
//     hook, a plant leaves the block engine enabled — the injected suffix
//     keeps running at full speed).
//   - A single store-data or load-address corruption installs a closure
//     comparing the PC against one address, with no map lookups and no
//     execution counters (Skip=0, Once=false makes shouldApply identically
//     true).
//
// The cost of the shortcut is the activation count: a planted corruption is
// never intercepted, so nobody counts how often it applied. The executor
// only ever uses the count as "applied at least once", and over the golden
// record that boolean is already known before the run (the injected run's
// prefix is fault-free, so the trigger address is reached if and only if the
// golden run reached it). ArmLean is therefore only correct to use when the
// caller derives activation from a golden record; RunWithFault and the §5
// experiments, which report exact counts, must keep using Arm.

// ArmLean arms f on m with the campaign-specialised fast paths when the
// fault shape allows it, reporting whether it did. When it returns false the
// machine is untouched and the caller must fall back to Arm. Faults needing
// more breakpoint registers than the hardware has are also left to Arm, so
// the error behaviour of the two paths is identical.
func ArmLean(m *vm.Machine, mode Mode, f *fault.Fault) (bool, error) {
	if mode != ModeHardware || f.Trigger.Kind != fault.TriggerOnLocation ||
		f.Trigger.Skip != 0 || f.Trigger.Once {
		return false, nil
	}
	if err := f.Validate(); err != nil {
		return false, err
	}

	allFetch := true
	for _, c := range f.Corruptions {
		if c.Kind != fault.CorruptFetch {
			allFetch = false
			break
		}
	}
	single := len(f.Corruptions) == 1

	addrs := f.TriggerAddrs()
	if len(addrs) > vm.NumIABR {
		return false, nil // let Arm raise ErrOutOfBreakpoints
	}

	switch {
	case allFetch:
		// Same last-write-wins aggregation per address as Arm's fetchRepl.
		repl := make(map[uint32]uint32, len(f.Corruptions))
		base, end := m.TextRange()
		for _, c := range f.Corruptions {
			if c.Addr%vm.WordSize != 0 || c.Addr < base || c.Addr >= end {
				// Outside text the fetch hook could never fire anyway; fall
				// back before touching the machine.
				return false, nil
			}
			repl[c.Addr] = c.NewWord
		}
		for a, w := range repl {
			if err := m.PlantDecoded(a, w); err != nil {
				return false, err
			}
		}
	case single && f.Corruptions[0].Kind == fault.CorruptStoreData:
		c := f.Corruptions[0]
		a, op, operand := c.Addr, c.Op, c.Operand
		m.SetStoreHook(func(_, value uint32) uint32 {
			if m.PC() != a {
				return value
			}
			return op.Apply(value, operand)
		})
	case single && f.Corruptions[0].Kind == fault.CorruptLoadAddr:
		c := f.Corruptions[0]
		a, off := c.Addr, c.Offset
		m.SetLoadHook(func(addr, value uint32) uint32 {
			if m.PC() != a {
				return value
			}
			shifted := addr + uint32(off)
			size := off
			if size < 0 {
				size = -size
			}
			buf, err := m.ReadMem(shifted, int(size))
			if err != nil {
				// Same as Session.onLoad: a shifted access leaving mapped
				// memory is a machine check on real hardware.
				m.InjectException(vm.ExcProt)
				return value
			}
			var v uint32
			for _, b := range buf {
				v = v<<8 | uint32(b)
			}
			return v
		})
	default:
		return false, nil
	}

	// Arm consumes the breakpoint registers for every hardware-mode fault;
	// keep that visible state identical.
	for i, a := range addrs {
		if err := m.SetIABR(i, a); err != nil {
			return false, err
		}
	}
	return true, nil
}
