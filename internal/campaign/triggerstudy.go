package campaign

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/injector"
	"repro/internal/locator"
	"repro/internal/programs"
	"repro/internal/workload"
)

// This file implements the study the paper's conclusion calls for:
// "a promising approach seems to be devising ways to perform an independent
// evaluation of the accuracy of the fault types and the fault triggers."
// It holds the fault types (What/Where) fixed and varies only the trigger's
// When parameter, so differences in failure modes are attributable to the
// trigger alone.

// TriggerPolicy is one When setting.
type TriggerPolicy struct {
	Name string
	Once bool
	Skip int
}

// DefaultTriggerPolicies returns the three policies compared by the study:
// the §6 always-on trigger, a first-execution-only trigger, and a
// late-activation trigger that lets the program run warm before the error
// appears (closer to a latent software fault exposed by a rare state).
func DefaultTriggerPolicies() []TriggerPolicy {
	return []TriggerPolicy{
		{Name: "every execution (paper §6)", Once: false, Skip: 0},
		{Name: "first execution only", Once: true, Skip: 0},
		{Name: "single late activation (skip 24)", Once: true, Skip: 24},
	}
}

// TriggerStudyResult aggregates failure modes per policy.
type TriggerStudyResult struct {
	Program  string
	Policies []TriggerPolicy
	Dists    []Dist // parallel to Policies
	Faults   int
	Cases    int
}

// RunTriggerStudy injects the same fault set (assignment plus checking,
// nLocs locations each) under every policy and collects the failure-mode
// distributions.
func RunTriggerStudy(programName string, nLocs, nCases int, seed int64) (*TriggerStudyResult, error) {
	p, ok := programs.ByName(programName)
	if !ok {
		return nil, fmt.Errorf("campaign: unknown program %q", programName)
	}
	c, err := p.Compile()
	if err != nil {
		return nil, err
	}
	cases, err := workload.Generate(p.Kind, nCases, seed)
	if err != nil {
		return nil, err
	}
	budgets, err := CalibrateCycles(c, cases)
	if err != nil {
		return nil, err
	}
	pa, err := locator.PlanAssignment(c, programName, nLocs, seed)
	if err != nil {
		return nil, err
	}
	pc, err := locator.PlanChecking(c, programName, nLocs, seed)
	if err != nil {
		return nil, err
	}
	faults := append(append([]fault.Fault(nil), pa.Faults...), pc.Faults...)

	res := &TriggerStudyResult{
		Program:  programName,
		Policies: DefaultTriggerPolicies(),
		Faults:   len(faults),
		Cases:    len(cases),
	}
	for _, pol := range res.Policies {
		d := Dist{Counts: make(map[FailureMode]int)}
		for fi := range faults {
			f := faults[fi] // copy: each policy gets its own trigger
			f.Trigger.Once = pol.Once
			f.Trigger.Skip = pol.Skip
			for ci := range cases {
				r, err := RunWithFault(c, cases[ci].Input, cases[ci].Golden, &f, injector.ModeHardware, budgets[ci])
				if err != nil {
					return nil, fmt.Errorf("campaign: trigger study %s/%s: %w", pol.Name, f.ID, err)
				}
				d.Runs++
				d.Counts[r.Mode]++
				if r.Activations > 0 {
					d.Activated++
				}
			}
		}
		res.Dists = append(res.Dists, d)
	}
	return res, nil
}
