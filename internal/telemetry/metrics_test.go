package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total")
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.AddShard(w, 1)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("Value() = %d, want %d", got, workers*per)
	}
	if c.Name() != "test_total" {
		t.Fatalf("Name() = %q", c.Name())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_us", DefaultLatencyBuckets)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(uint64(i % 100))
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("Count() = %d, want %d", got, workers*per)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram("h", []uint64{10, 100})
	h.Observe(5)   // <= 10
	h.Observe(10)  // <= 10 (boundary is inclusive)
	h.Observe(50)  // <= 100
	h.Observe(999) // overflow
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("Count = %d, want 4", s.Count)
	}
	if s.Sum != 5+10+50+999 {
		t.Fatalf("Sum = %d", s.Sum)
	}
	want := []BucketCount{{Le: 10, N: 2}, {Le: 100, N: 1}, {Inf: true, N: 1}}
	if len(s.Buckets) != len(want) {
		t.Fatalf("Buckets = %+v, want %+v", s.Buckets, want)
	}
	for i, b := range want {
		if s.Buckets[i] != b {
			t.Fatalf("bucket %d = %+v, want %+v", i, s.Buckets[i], b)
		}
	}
}

func TestRegistryIdempotent(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("a") != reg.Counter("a") {
		t.Fatal("Counter not idempotent")
	}
	if reg.Gauge("b") != reg.Gauge("b") {
		t.Fatal("Gauge not idempotent")
	}
	if reg.Histogram("c", DefaultLatencyBuckets) != reg.Histogram("c", nil) {
		t.Fatal("Histogram not idempotent")
	}
}

func TestRegistryConcurrentRegistration(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				reg.Counter("shared_total").Inc()
				reg.Gauge("g").Add(1)
				reg.Histogram("h_us", DefaultLatencyBuckets).Observe(uint64(i))
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("shared_total").Value(); got != 800 {
		t.Fatalf("shared_total = %d, want 800", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`verdicts_total{mode="correct"}`).Add(3)
	reg.Counter(`verdicts_total{mode="crash"}`).Add(1)
	reg.Gauge("units_total").Set(42)
	h := reg.Histogram("lat_us", []uint64{10, 100})
	h.Observe(5)
	h.Observe(200)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE verdicts_total counter",
		`verdicts_total{mode="correct"} 3`,
		`verdicts_total{mode="crash"} 1`,
		"# TYPE units_total gauge",
		"units_total 42",
		"# TYPE lat_us histogram",
		`lat_us_bucket{le="10"} 1`,
		`lat_us_bucket{le="100"} 1`,
		`lat_us_bucket{le="+Inf"} 2`,
		"lat_us_sum 205",
		"lat_us_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// # TYPE for the labelled counter family must appear exactly once.
	if n := strings.Count(out, "# TYPE verdicts_total counter"); n != 1 {
		t.Fatalf("TYPE line emitted %d times", n)
	}
}

func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	g := reg.Gauge("x")
	h := reg.Histogram("x", nil)
	c.Inc()
	c.Add(5)
	c.AddShard(3, 5)
	g.Set(7)
	g.Add(1)
	h.Observe(9)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if err := reg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if reg.Counters() != nil || reg.Histograms() != nil {
		t.Fatal("nil registry snapshots must be nil")
	}

	var tel *Telemetry
	if tel.Registry() != nil || tel.Tracer() != nil || tel.ProgressSurface() != nil {
		t.Fatal("nil Telemetry accessors must return nil")
	}

	var tr *Tracer
	tr.Emit(Event{Kind: "x"})
	if tr.Total() != 0 || tr.Events() != nil || tr.Summary() != nil {
		t.Fatal("nil tracer must be inert")
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var p *Progress
	p.Start(func() ProgressSnap { return ProgressSnap{} })
	p.Stop()
}

func TestWithLabel(t *testing.T) {
	if got := withLabel("foo", `le="5"`); got != `foo{le="5"}` {
		t.Fatalf("got %q", got)
	}
	if got := withLabel(`foo{a="b"}`, `le="5"`); got != `foo{a="b",le="5"}` {
		t.Fatalf("got %q", got)
	}
	if got := baseName(`foo{a="b"}`); got != "foo" {
		t.Fatalf("got %q", got)
	}
}
