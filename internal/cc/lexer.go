package cc

import "strconv"

// lexer turns source text into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peekByte2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isLetter(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }

// skipSpace consumes whitespace and // and /* */ comments.
func (l *lexer) skipSpace() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peekByte2() == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekByte2() == '*':
			startLine, startCol := l.line, l.col
			l.advance()
			l.advance()
			for {
				if l.pos >= len(l.src) {
					return errf(startLine, startCol, "unterminated block comment")
				}
				if l.peekByte() == '*' && l.peekByte2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpace(); err != nil {
		return token{}, err
	}
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	c := l.advance()
	mk := func(k tokKind) (token, error) {
		return token{kind: k, line: line, col: col}, nil
	}
	switch {
	case isDigit(c):
		start := l.pos - 1
		for l.pos < len(l.src) && (isDigit(l.peekByte()) || isLetter(l.peekByte())) {
			l.advance()
		}
		text := l.src[start:l.pos]
		v, err := strconv.ParseInt(text, 0, 64)
		if err != nil || v > 1<<31-1 {
			return token{}, errf(line, col, "bad number %q", text)
		}
		return token{kind: tokNumber, text: text, val: int32(v), line: line, col: col}, nil
	case isLetter(c):
		start := l.pos - 1
		for l.pos < len(l.src) && (isLetter(l.peekByte()) || isDigit(l.peekByte())) {
			l.advance()
		}
		text := l.src[start:l.pos]
		if k, ok := keywords[text]; ok {
			return token{kind: k, text: text, line: line, col: col}, nil
		}
		return token{kind: tokIdent, text: text, line: line, col: col}, nil
	}
	switch c {
	case '(':
		return mk(tokLParen)
	case ')':
		return mk(tokRParen)
	case '{':
		return mk(tokLBrace)
	case '}':
		return mk(tokRBrace)
	case '[':
		return mk(tokLBracket)
	case ']':
		return mk(tokRBracket)
	case ';':
		return mk(tokSemi)
	case ',':
		return mk(tokComma)
	case '?':
		return mk(tokQuestion)
	case ':':
		return mk(tokColon)
	case '+':
		if l.peekByte() == '+' {
			l.advance()
			return mk(tokPlusPlus)
		}
		if l.peekByte() == '=' {
			l.advance()
			return mk(tokPlusEq)
		}
		return mk(tokPlus)
	case '-':
		if l.peekByte() == '-' {
			l.advance()
			return mk(tokMinusMinus)
		}
		if l.peekByte() == '=' {
			l.advance()
			return mk(tokMinusEq)
		}
		return mk(tokMinus)
	case '*':
		return mk(tokStar)
	case '/':
		return mk(tokSlash)
	case '%':
		return mk(tokPercent)
	case '!':
		if l.peekByte() == '=' {
			l.advance()
			return mk(tokNe)
		}
		return mk(tokNot)
	case '=':
		if l.peekByte() == '=' {
			l.advance()
			return mk(tokEq)
		}
		return mk(tokAssign)
	case '<':
		if l.peekByte() == '=' {
			l.advance()
			return mk(tokLe)
		}
		return mk(tokLt)
	case '>':
		if l.peekByte() == '=' {
			l.advance()
			return mk(tokGe)
		}
		return mk(tokGt)
	case '&':
		if l.peekByte() == '&' {
			l.advance()
			return mk(tokAndAnd)
		}
		return mk(tokAmp)
	case '|':
		if l.peekByte() == '|' {
			l.advance()
			return mk(tokOrOr)
		}
		return token{}, errf(line, col, "bitwise '|' is not supported")
	case '\'':
		v, err := l.charBody(line, col)
		if err != nil {
			return token{}, err
		}
		if l.pos >= len(l.src) || l.advance() != '\'' {
			return token{}, errf(line, col, "unterminated character literal")
		}
		return token{kind: tokChar, val: v, line: line, col: col}, nil
	case '"':
		var out []byte
		for {
			if l.pos >= len(l.src) {
				return token{}, errf(line, col, "unterminated string literal")
			}
			if l.peekByte() == '"' {
				l.advance()
				break
			}
			v, err := l.charBody(line, col)
			if err != nil {
				return token{}, err
			}
			out = append(out, byte(v))
		}
		return token{kind: tokString, str: string(out), line: line, col: col}, nil
	}
	return token{}, errf(line, col, "unexpected character %q", string(c))
}

// charBody decodes one (possibly escaped) character.
func (l *lexer) charBody(line, col int) (int32, error) {
	if l.pos >= len(l.src) {
		return 0, errf(line, col, "unterminated literal")
	}
	c := l.advance()
	if c != '\\' {
		return int32(c), nil
	}
	if l.pos >= len(l.src) {
		return 0, errf(line, col, "unterminated escape")
	}
	e := l.advance()
	switch e {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case '"':
		return '"', nil
	}
	return 0, errf(line, col, "unknown escape \\%c", e)
}

// lexAll tokenises the entire source.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
