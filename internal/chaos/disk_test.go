package chaos

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// scratchFile returns a real file in the test's temp dir. The disk wrapper
// is tested against *os.File, not a mock, because the contract under test
// is "a prefix persists" — which only a real positional write can prove.
func scratchFile(t *testing.T) *os.File {
	t.Helper()
	f, err := os.Create(filepath.Join(t.TempDir(), "scratch"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func diskBytes(t *testing.T, f *os.File) []byte {
	t.Helper()
	b, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestWrapFilePassThroughWhenDisabled: with no disk faults configured (or a
// nil Chaos) WrapFile must return the handle itself — clean runs pay no
// interposition at all, not even a cheap one.
func TestWrapFilePassThroughWhenDisabled(t *testing.T) {
	f := scratchFile(t)
	c := New(Config{Seed: 1, Corrupt: 0.5, PipeCorrupt: 0.5, DiskPoison: 0.5}, nil)
	if got := c.WrapFile(f); got != File(f) {
		t.Fatal("WrapFile interposed with no disk faults configured")
	}
	var nilC *Chaos
	if got := nilC.WrapFile(f); got != File(f) {
		t.Fatal("nil Chaos did not pass the file through")
	}
}

// TestDiskENOSPC: a disk-full write persists nothing, reports zero bytes,
// and is not sticky — the handle itself stays usable for the journal's
// degraded-mode bookkeeping (truncate to the last whole record).
func TestDiskENOSPC(t *testing.T) {
	f := scratchFile(t)
	reg := telemetry.NewRegistry()
	c := New(Config{Seed: 3, DiskENOSPC: 1.0}, NewMetrics(reg))
	w := c.WrapFile(f)
	n, err := w.Write([]byte("doomed record"))
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("ENOSPC write returned %v, want an injected disk-full error", err)
	}
	if n != 0 {
		t.Fatalf("ENOSPC write reported %d bytes", n)
	}
	if b := diskBytes(t, f); len(b) != 0 {
		t.Fatalf("ENOSPC write persisted %d bytes", len(b))
	}
	if w.Truncate(0) != nil {
		t.Fatal("Truncate failed on a handle that only saw injected ENOSPC")
	}
	if got := reg.Counters()["chaos_disk_enospc_total"]; got != 1 {
		t.Fatalf("chaos_disk_enospc_total = %d, want 1", got)
	}
}

// TestDiskShortWrite: a short write persists a strict prefix and says so in
// the error — the honest-failure twin of the torn write.
func TestDiskShortWrite(t *testing.T) {
	f := scratchFile(t)
	reg := telemetry.NewRegistry()
	c := New(Config{Seed: 5, DiskShortWrite: 1.0}, NewMetrics(reg))
	w := c.WrapFile(f)
	msg := []byte("0123456789abcdef")
	n, err := w.Write(msg)
	if err == nil || !strings.Contains(err.Error(), "short write") {
		t.Fatalf("short write returned %v, want an injected short-write error", err)
	}
	if n >= len(msg) {
		t.Fatalf("short write reported %d of %d bytes", n, len(msg))
	}
	if b := diskBytes(t, f); !bytes.Equal(b, msg[:n]) {
		t.Fatalf("disk holds %q, want the reported prefix %q", b, msg[:n])
	}
	if got := reg.Counters()["chaos_disk_short_writes_total"]; got != 1 {
		t.Fatalf("chaos_disk_short_writes_total = %d, want 1", got)
	}
}

// TestDiskTornWrite: the lying disk. The call reports full success but only
// a prefix reaches the platter — the case per-record CRCs exist for.
func TestDiskTornWrite(t *testing.T) {
	f := scratchFile(t)
	reg := telemetry.NewRegistry()
	c := New(Config{Seed: 7, DiskTornWrite: 1.0}, NewMetrics(reg))
	w := c.WrapFile(f)
	msg := []byte("fsynced and certified, surely")
	n, err := w.Write(msg)
	if err != nil || n != len(msg) {
		t.Fatalf("torn write returned (%d, %v), want full success (%d, nil)", n, err, len(msg))
	}
	b := diskBytes(t, f)
	if len(b) >= len(msg) {
		t.Fatalf("torn write persisted all %d bytes; nothing was torn", len(b))
	}
	if !bytes.Equal(b, msg[:len(b)]) {
		t.Fatalf("disk holds %q, not a prefix of %q", b, msg)
	}
	if got := reg.Counters()["chaos_disk_torn_writes_total"]; got != 1 {
		t.Fatalf("chaos_disk_torn_writes_total = %d, want 1", got)
	}
}

// TestDiskWriteAtFaults: the positional write path shares the fault
// machinery with the sequential one — a torn WriteAt leaves a prefix at the
// given offset, not at the file cursor.
func TestDiskWriteAtFaults(t *testing.T) {
	f := scratchFile(t)
	if _, err := f.Write(make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	c := New(Config{Seed: 9, DiskTornWrite: 1.0}, nil)
	w := c.WrapFile(f)
	msg := []byte("HEADERHEADER")
	if n, err := w.WriteAt(msg, 4); err != nil || n != len(msg) {
		t.Fatalf("torn WriteAt returned (%d, %v), want reported success", n, err)
	}
	b := diskBytes(t, f)
	if len(b) != 32 {
		t.Fatalf("WriteAt changed the file size to %d", len(b))
	}
	written := 0
	for written < len(msg) && b[4+written] == msg[written] {
		written++
	}
	if written == len(msg) {
		t.Fatal("torn WriteAt persisted the whole payload")
	}
	for _, rest := range b[4+written : 4+len(msg)] {
		if rest != 0 {
			t.Fatal("torn WriteAt persisted bytes past the torn prefix")
		}
	}
}

// TestDiskReadCorruption: read-back corruption flips one bit in the
// returned buffer while the bytes on disk stay intact — a flaky controller,
// not silent media decay.
func TestDiskReadCorruption(t *testing.T) {
	f := scratchFile(t)
	msg := bytes.Repeat([]byte{0x55}, 64)
	if _, err := f.Write(msg); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	c := New(Config{Seed: 11, DiskReadCorrupt: 1.0}, NewMetrics(reg))
	w := c.WrapFile(f)
	got := make([]byte, 64)
	if _, err := io.ReadFull(w, got); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		if got[i] != msg[i] {
			diff++
			if x := got[i] ^ msg[i]; x&(x-1) != 0 {
				t.Fatalf("byte %d differs by more than one bit: %02x vs %02x", i, got[i], msg[i])
			}
		}
	}
	if diff == 0 {
		t.Fatal("read at probability 1.0 corrupted nothing")
	}
	if b := diskBytes(t, f); !bytes.Equal(b, msg) {
		t.Fatal("read-back corruption altered the bytes on disk")
	}
	if got := reg.Counters()["chaos_disk_read_corruptions_total"]; got == 0 {
		t.Fatal("chaos_disk_read_corruptions_total not incremented")
	}
}

// TestDiskSyncFailAndDelay: Sync pays the configured stall and then fails,
// while leaving the already-written data in place — fsync's ambiguity.
func TestDiskSyncFailAndDelay(t *testing.T) {
	f := scratchFile(t)
	reg := telemetry.NewRegistry()
	c := New(Config{Seed: 13, DiskSyncFail: 1.0, DiskSyncDelay: 30 * time.Millisecond}, NewMetrics(reg))
	w := c.WrapFile(f)
	if _, err := w.Write([]byte("durable?")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := w.Sync()
	if err == nil || !strings.Contains(err.Error(), "sync failure") {
		t.Fatalf("Sync returned %v, want an injected sync failure", err)
	}
	if took := time.Since(start); took < 20*time.Millisecond {
		t.Fatalf("Sync returned after %v, want the 30ms contended-disk stall", took)
	}
	if b := diskBytes(t, f); !bytes.Equal(b, []byte("durable?")) {
		t.Fatal("failed Sync lost the written data")
	}
	if got := reg.Counters()["chaos_disk_sync_failures_total"]; got != 1 {
		t.Fatalf("chaos_disk_sync_failures_total = %d, want 1", got)
	}
}

// TestDiskFaultsDeterministic: the whole point of the seeded streams — two
// wrappers with the same seed replay the same faults at the same offsets,
// and file ordinals keep handles distinct within one Chaos.
func TestDiskFaultsDeterministic(t *testing.T) {
	run := func(c *Chaos) (disk []byte, errs []string) {
		f := scratchFile(t)
		w := c.WrapFile(f)
		for i := 0; i < 32; i++ {
			_, err := w.Write(bytes.Repeat([]byte{byte(i)}, 24))
			if err != nil {
				errs = append(errs, err.Error())
			} else {
				errs = append(errs, "")
			}
		}
		return diskBytes(t, f), errs
	}
	cfg := Config{Seed: 99, DiskENOSPC: 0.2, DiskShortWrite: 0.2, DiskTornWrite: 0.2}
	a := New(cfg, nil)
	disk1, errs1 := run(a)
	disk2, errs2 := run(a)
	if bytes.Equal(disk1, disk2) {
		t.Fatal("two handles from one Chaos share one fault schedule")
	}
	b := New(cfg, nil)
	disk3, errs3 := run(b)
	if !bytes.Equal(disk1, disk3) {
		t.Fatal("fresh Chaos with the same seed did not replay handle 0's disk bytes")
	}
	for i := range errs1 {
		if errs1[i] != errs3[i] {
			t.Fatalf("write %d: error %q on first run, %q on replay", i, errs1[i], errs3[i])
		}
	}
	_ = errs2
}

// TestWrapPipesPassThroughWhenDisabled mirrors the file case for the pipe
// plane.
func TestWrapPipesPassThroughWhenDisabled(t *testing.T) {
	pr, pw := io.Pipe()
	c := New(Config{Seed: 1, DiskENOSPC: 0.5, Corrupt: 0.5}, nil)
	w, r := c.WrapPipes(pw, pr)
	if w != io.WriteCloser(pw) || r != io.Reader(pr) {
		t.Fatal("WrapPipes interposed with no pipe faults configured")
	}
}

// TestPipeReset: the supervisor's write fails without delivering anything
// and the worker sees EOF — exactly what a SIGKILLed peer looks like.
func TestPipeReset(t *testing.T) {
	pr, pw := io.Pipe()
	c := New(Config{Seed: 17, PipeReset: 1.0}, nil)
	w, _ := c.WrapPipes(pw, io.MultiReader())
	got := make(chan []byte, 1)
	go func() {
		b, _ := io.ReadAll(pr)
		got <- b
	}()
	n, err := w.Write([]byte("exec unit 4"))
	if err == nil || n != 0 {
		t.Fatalf("reset write returned (%d, %v), want (0, injected reset)", n, err)
	}
	if b := <-got; len(b) != 0 {
		t.Fatalf("worker received %d bytes through a reset pipe", len(b))
	}
	if _, err := w.Write([]byte("after death")); err == nil {
		t.Fatal("write on a severed pipe succeeded")
	}
}

// TestPipeTruncate: half the frame reaches the worker, then the pipe dies —
// the torn-frame case the CRC reader rejects before decoding.
func TestPipeTruncate(t *testing.T) {
	pr, pw := io.Pipe()
	c := New(Config{Seed: 19, PipeTruncate: 1.0}, nil)
	w, _ := c.WrapPipes(pw, io.MultiReader())
	msg := []byte("0123456789abcdef")
	got := make(chan []byte, 1)
	go func() {
		b, _ := io.ReadAll(pr)
		got <- b
	}()
	n, err := w.Write(msg)
	if err == nil {
		t.Fatal("truncated pipe write succeeded")
	}
	if n != len(msg)/2 {
		t.Fatalf("truncated write reported %d bytes, want %d", n, len(msg)/2)
	}
	if b := <-got; !bytes.Equal(b, msg[:len(msg)/2]) {
		t.Fatalf("worker received %q, want the torn prefix %q", b, msg[:len(msg)/2])
	}
}

// TestPipeCorruptBothDirections: with corruption at probability 1 every
// frame is mangled by exactly one flipped bit, in each direction, and the
// counter accounts for both.
func TestPipeCorruptBothDirections(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := New(Config{Seed: 23, PipeCorrupt: 1.0}, NewMetrics(reg))

	// Supervisor → worker: the wrapped writer mangles what it sends.
	downR, downW := io.Pipe()
	// Worker → supervisor: the wrapped reader mangles what it receives.
	upR, upW := io.Pipe()
	w, r := c.WrapPipes(downW, upR)

	msg := bytes.Repeat([]byte{0xA5}, 48)
	go w.Write(msg)
	down := make([]byte, len(msg))
	if _, err := io.ReadFull(downR, down); err != nil {
		t.Fatal(err)
	}
	assertOneBitFlip(t, "downstream", down, msg)

	go upW.Write(msg)
	up := make([]byte, len(msg))
	if _, err := io.ReadFull(r, up); err != nil {
		t.Fatal(err)
	}
	assertOneBitFlip(t, "upstream", up, msg)

	if got := reg.Counters()["chaos_corrupted_writes_total"]; got < 2 {
		t.Fatalf("chaos_corrupted_writes_total = %d, want both directions counted", got)
	}
}

func assertOneBitFlip(t *testing.T, dir string, got, want []byte) {
	t.Helper()
	diff := 0
	for i := range got {
		if got[i] != want[i] {
			diff++
			if x := got[i] ^ want[i]; x&(x-1) != 0 {
				t.Fatalf("%s byte %d differs by more than one bit", dir, i)
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%s: %d bytes corrupted, want exactly 1", dir, diff)
	}
}

// TestPoisonCheckpoint: the poison stream is deterministic, independent of
// the other planes' wrap ordinals, off by default, and counted when it
// fires.
func TestPoisonCheckpoint(t *testing.T) {
	draws := func(c *Chaos, n int) []bool {
		out := make([]bool, n)
		for i := range out {
			out[i] = c.PoisonCheckpoint()
		}
		return out
	}
	reg := telemetry.NewRegistry()
	cfg := Config{Seed: 31, DiskPoison: 0.5}
	a := draws(New(cfg, NewMetrics(reg)), 64)
	b := draws(New(cfg, nil), 64)
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: poison schedule not deterministic", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == 64 {
		t.Fatalf("%d/64 checkpoints poisoned at p=0.5; the stream is degenerate", hits)
	}
	if got := reg.Counters()["chaos_disk_checkpoints_poisoned_total"]; got != uint64(hits) {
		t.Fatalf("chaos_disk_checkpoints_poisoned_total = %d, want %d", got, hits)
	}

	// Wrapping files first must not shift the poison schedule: the poison
	// stream is its own, not a tap on the handle streams.
	shifted := New(cfg, nil)
	shifted.WrapFile(scratchFile(t))
	if got := draws(shifted, 64); !boolsEqual(got, a) {
		t.Fatal("wrapping a file perturbed the poison schedule")
	}

	var nilC *Chaos
	if nilC.PoisonCheckpoint() {
		t.Fatal("nil Chaos poisoned a checkpoint")
	}
	if New(Config{Seed: 31}, nil).PoisonCheckpoint() {
		t.Fatal("poison fired with DiskPoison unset")
	}
}

func boolsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
