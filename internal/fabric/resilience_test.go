package fabric

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/journal"
	"repro/internal/telemetry"
	"repro/internal/worker"
)

// relay is a severable TCP proxy between executors and the coordinator: it
// can cut every live link (simulating a partition or an RST storm) and
// retarget to a different backend (simulating a coordinator restart on the
// same advertised address).
type relay struct {
	ln net.Listener

	mu     sync.Mutex
	target string
	conns  map[net.Conn]bool
}

func newRelay(t *testing.T, target string) *relay {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r := &relay{ln: ln, target: target, conns: make(map[net.Conn]bool)}
	t.Cleanup(func() { ln.Close(); r.sever() })
	go r.accept()
	return r
}

func (r *relay) addr() string { return r.ln.Addr().String() }

func (r *relay) setTarget(target string) {
	r.mu.Lock()
	r.target = target
	r.mu.Unlock()
}

// sever cuts every live link; new dials still go through.
func (r *relay) sever() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for c := range r.conns {
		c.Close()
	}
	r.conns = make(map[net.Conn]bool)
}

func (r *relay) accept() {
	for {
		client, err := r.ln.Accept()
		if err != nil {
			return
		}
		r.mu.Lock()
		target := r.target
		r.mu.Unlock()
		backend, err := net.Dial("tcp", target)
		if err != nil {
			client.Close()
			continue
		}
		r.mu.Lock()
		r.conns[client] = true
		r.conns[backend] = true
		r.mu.Unlock()
		pipe := func(dst, src net.Conn) {
			buf := make([]byte, 32*1024)
			for {
				n, err := src.Read(buf)
				if n > 0 {
					if _, werr := dst.Write(buf[:n]); werr != nil {
						break
					}
				}
				if err != nil {
					break
				}
			}
			dst.Close()
			src.Close()
		}
		go pipe(backend, client)
		go pipe(client, backend)
	}
}

// TestFabricReconnectResume severs the executor's connection twice
// mid-campaign. The session must survive both cuts — the executor
// re-attaches, retransmits unacked verdicts, and the campaign completes with
// exactly-once delivery, zero host deaths and zero redeliveries.
func TestFabricReconnectResume(t *testing.T) {
	const units = 60
	reg := telemetry.NewRegistry()
	m := &Metrics{
		Resumed:     reg.Counter("resumed"),
		HostDeaths:  reg.Counter("deaths"),
		Redelivered: reg.Counter("redelivered"),
	}
	coord, err := NewCoordinator(CoordinatorOptions{
		Addr:              "127.0.0.1:0",
		MinHosts:          1,
		Spec:              testSpec(),
		Units:             units,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
		SessionTimeout:    10 * time.Second, // a cut must never expire the session
		Quarantine:        journal.Outcome{Mode: 9},
		Metrics:           m,
		Log:               t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	rl := newRelay(t, coord.Addr().String())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	xm := &ExecutorMetrics{Reconnects: reg.Counter("reconnects"), Resumes: reg.Counter("resumes")}
	joinErr := make(chan error, 1)
	go func() {
		joinErr <- Join(ctx, rl.addr(), ExecutorOptions{
			Name:            "flaky",
			Batch:           InProcBatch(fakeFactory(units, 2*time.Millisecond), 1),
			ReconnectWindow: 15 * time.Second,
			Metrics:         xm,
		})
	}()

	cuts := 0
	results := collectRun(t, coord, units, func(count int) {
		if (count == units/4 || count == units/2) && cuts < 2 {
			cuts++
			rl.sever()
		}
	})
	checkResults(t, results)
	if err := <-joinErr; err != nil {
		t.Fatalf("executor join: %v", err)
	}
	got := reg.Counters()
	if got["resumed"] < 2 || got["resumes"] < 2 || got["reconnects"] < 2 {
		t.Fatalf("resumed=%d resumes=%d reconnects=%d after 2 cuts, want >=2 each",
			got["resumed"], got["resumes"], got["reconnects"])
	}
	if got["deaths"] != 0 || got["redelivered"] != 0 {
		t.Fatalf("deaths=%d redelivered=%d, want 0/0 (the session never expired)",
			got["deaths"], got["redelivered"])
	}
}

// TestFabricCoordinatorRestartRecovery kills the coordinator mid-campaign
// (no shutdown frames — links are severed first, like a SIGKILL behind a
// partition) and restarts it with -resume semantics: the journal replays
// finished units, the sidecar replays the session table, the executor
// re-attaches to its recovered session, and the merged journal is
// byte-identical to a clean single-pass run.
func TestFabricCoordinatorRestartRecovery(t *testing.T) {
	const units = 80
	const fp = uint64(0xc0ffee)
	dir := t.TempDir()
	jpath := filepath.Join(dir, "campaign.journal")

	// Golden: the same outcomes written cleanly in order.
	golden := filepath.Join(dir, "golden.journal")
	gj, err := journal.Create(golden)
	if err != nil {
		t.Fatal(err)
	}
	if err := gj.Bind(fp); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < units; u++ {
		o, _ := testOutcome(u)
		if err := gj.Append(u, o); err != nil {
			t.Fatal(err)
		}
	}
	if err := gj.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	if err := gj.Close(); err != nil {
		t.Fatal(err)
	}

	j, err := journal.Create(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Bind(fp); err != nil {
		t.Fatal(err)
	}
	side, err := journal.CreateSide(jpath + ".fabric")
	if err != nil {
		t.Fatal(err)
	}
	if err := side.Bind(fp); err != nil {
		t.Fatal(err)
	}

	newCoord := func(side *journal.SideLog, m *Metrics) *Coordinator {
		t.Helper()
		coord, err := NewCoordinator(CoordinatorOptions{
			Addr:              "127.0.0.1:0",
			MinHosts:          1,
			Spec:              testSpec(),
			Units:             units,
			HeartbeatInterval: 20 * time.Millisecond,
			HeartbeatTimeout:  2 * time.Second,
			SessionTimeout:    10 * time.Second,
			Quarantine:        journal.Outcome{Mode: 9},
			Side:              side,
			Metrics:           m,
			Log:               t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		return coord
	}

	coord1 := newCoord(side, nil)
	rl := newRelay(t, coord1.Addr().String())

	// Delivery accounting spans both coordinator incarnations: every unit
	// exactly once, total.
	var mu sync.Mutex
	seen := make(map[int]int)

	execCtx, execCancel := context.WithCancel(context.Background())
	defer execCancel()
	joinErr := make(chan error, 1)
	go func() {
		joinErr <- Join(execCtx, rl.addr(), ExecutorOptions{
			Name:            "survivor",
			Batch:           InProcBatch(fakeFactory(units, 3*time.Millisecond), 1),
			ReconnectWindow: 20 * time.Second,
		})
	}()

	// Phase 1: run until a third of the campaign is journaled, then crash.
	run1Ctx, run1Cancel := context.WithCancel(context.Background())
	crashed := make(chan struct{})
	err = coord1.Run(run1Ctx, seqIndices(units), func(r worker.Result) error {
		mu.Lock()
		seen[r.Index]++
		n := len(seen)
		mu.Unlock()
		if err := j.Append(r.Index, r.Outcome); err != nil {
			return err
		}
		if n == units/3 {
			// Sever every link first so the dying coordinator cannot wave
			// goodbye — the executor must experience a silent loss.
			rl.sever()
			run1Cancel()
			close(crashed)
		}
		return nil
	})
	if err != context.Canceled {
		t.Fatalf("phase-1 run: %v, want context.Canceled", err)
	}
	<-crashed
	run1Cancel()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := side.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: restart. Reopen journal and sidecar exactly as the CLI's
	// -resume path does, rebuild the remaining index set, retarget the
	// "advertised address" at the new coordinator.
	j2, err := journal.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Bind(fp); err != nil {
		t.Fatal(err)
	}
	if !j2.Resumed() {
		t.Fatal("journal did not resume")
	}
	side2, err := journal.OpenSide(jpath + ".fabric")
	if err != nil {
		t.Fatal(err)
	}
	if err := side2.Bind(fp); err != nil {
		t.Fatal(err)
	}
	if !side2.Resumed() {
		t.Fatal("sidecar did not resume")
	}
	var remaining []int
	for u := 0; u < units; u++ {
		if _, ok := j2.Done(u); !ok {
			remaining = append(remaining, u)
		}
	}
	if len(remaining) == 0 || len(remaining) == units {
		t.Fatalf("phase-1 crash left %d/%d units remaining; the test needs a partial journal", len(remaining), units)
	}

	reg := telemetry.NewRegistry()
	m := &Metrics{Resumed: reg.Counter("resumed"), HostDeaths: reg.Counter("deaths")}
	coord2 := newCoord(side2, m)
	rl.setTarget(coord2.Addr().String())

	err = coord2.Run(context.Background(), remaining, func(r worker.Result) error {
		mu.Lock()
		seen[r.Index]++
		mu.Unlock()
		return j2.Append(r.Index, r.Outcome)
	})
	if err != nil {
		t.Fatalf("phase-2 run: %v", err)
	}
	if err := <-joinErr; err != nil {
		t.Fatalf("executor join: %v", err)
	}
	if err := j2.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := side2.Remove(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	for u := 0; u < units; u++ {
		if seen[u] != 1 {
			t.Fatalf("unit %d delivered %d times across the restart, want exactly once", u, seen[u])
		}
	}
	if reg.Counters()["resumed"] < 1 {
		t.Fatal("the executor never re-attached to its recovered session")
	}
	if reg.Counters()["deaths"] != 0 {
		t.Fatalf("deaths=%d, want 0 (the session survived the restart)", reg.Counters()["deaths"])
	}

	gotBytes, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Fatalf("journal after crash recovery differs from clean run (%d vs %d bytes)", len(gotBytes), len(wantBytes))
	}
	if _, err := os.Stat(jpath + ".fabric"); !os.IsNotExist(err) {
		t.Fatalf("sidecar not removed after success (err=%v)", err)
	}
}

// TestFabricUnderChaos runs a 3-executor campaign with every connection —
// both coordinator-side and executor-side — wrapped in the chaos layer:
// corruption, drops, truncations and resets, continuously. The per-frame
// CRC severs poisoned connections, sessions resume, and the campaign must
// still deliver every verdict exactly once with the clean results.
func TestFabricUnderChaos(t *testing.T) {
	const units = 50
	cfg := chaos.Config{
		Seed:     7,
		Corrupt:  0.02,
		Drop:     0.01,
		Truncate: 0.005,
		Reset:    0.005,
	}
	reg := telemetry.NewRegistry()
	cm := chaos.NewMetrics(reg)
	coordChaos := chaos.New(cfg, cm)
	execChaos := chaos.New(chaos.Config{
		Seed:    8,
		Corrupt: 0.02,
		Drop:    0.01,
		Reset:   0.005,
	}, cm)

	m := &Metrics{
		Resumed:   reg.Counter("resumed"),
		BadFrames: reg.Counter("bad_frames"),
	}
	coord, err := NewCoordinator(CoordinatorOptions{
		Addr:              "127.0.0.1:0",
		MinHosts:          3,
		Spec:              testSpec(),
		Units:             units,
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  1 * time.Second,
		SessionTimeout:    20 * time.Second,
		Quarantine:        journal.Outcome{Mode: 9},
		WrapConn:          coordChaos.Wrap,
		Metrics:           m,
		Log:               t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	joinErr := make(chan error, 3)
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("chaotic-%d", i)
		go func() {
			joinErr <- Join(ctx, coord.Addr().String(), ExecutorOptions{
				Name:            name,
				Workers:         2,
				Batch:           InProcBatch(fakeFactory(units, time.Millisecond), 2),
				ReconnectWindow: 5 * time.Second,
				WrapConn:        execChaos.Wrap,
			})
		}()
	}
	results := collectRun(t, coord, units, nil)
	checkResults(t, results)
	for i := 0; i < 3; i++ {
		if err := <-joinErr; err != nil {
			t.Fatalf("executor join: %v", err)
		}
	}
	t.Logf("chaos campaign absorbed: %v; resumed=%d bad_frames=%d",
		reg.Counters(), reg.Counters()["resumed"], reg.Counters()["bad_frames"])
}
