package parallel_test

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/parallel"
)

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		n := 1000
		hits := make([]atomic.Int32, n)
		err := parallel.ForEach(workers, n, func(worker, i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, got)
			}
		}
	}
}

func TestForEachWorkerIDsAreStable(t *testing.T) {
	const workers = 4
	var used [workers]atomic.Int32
	err := parallel.ForEach(workers, 200, func(worker, i int) error {
		if worker < 0 || worker >= workers {
			return fmt.Errorf("worker id %d out of range", worker)
		}
		used[worker].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := int32(0)
	for w := range used {
		total += used[w].Load()
	}
	if total != 200 {
		t.Fatalf("executed %d of 200 indices", total)
	}
}

func TestForEachSerialOrder(t *testing.T) {
	var order []int
	err := parallel.ForEach(1, 10, func(worker, i int) error {
		if worker != 0 {
			t.Fatalf("serial path used worker %d", worker)
		}
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if i != v {
			t.Fatalf("serial path ran out of order: %v", order)
		}
	}
}

func TestForEachReturnsLowestFailedIndex(t *testing.T) {
	boom := errors.New("boom")
	err := parallel.ForEach(8, 100, func(worker, i int) error {
		if i == 7 || i == 93 {
			return fmt.Errorf("index %d: %w", i, boom)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error lost its cause: %v", err)
	}
	// Index 7 always fails before the pool drains, so with both indices
	// failing the reported error must be the lower one.
	if got := err.Error(); got != "index 7: boom" {
		t.Fatalf("got error %q, want the lowest failed index", got)
	}
}

func TestForEachStopsHandingOutWorkAfterFailure(t *testing.T) {
	var ran atomic.Int32
	err := parallel.ForEach(2, 10_000, func(worker, i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("early failure")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if got := ran.Load(); got == 10_000 {
		t.Fatal("pool drained the whole index space after a failure")
	}
}

func TestMapKeepsIndexOrder(t *testing.T) {
	got, err := parallel.Map(8, 500, func(worker, i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("index %d holds %d", i, v)
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	if err := parallel.ForEach(0, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := parallel.ForEach(-3, -1, nil); err != nil {
		t.Fatal(err)
	}
	if n := parallel.DefaultWorkers(0); n < 1 {
		t.Fatalf("DefaultWorkers(0) = %d", n)
	}
	if n := parallel.DefaultWorkers(5); n != 5 {
		t.Fatalf("DefaultWorkers(5) = %d", n)
	}
}
