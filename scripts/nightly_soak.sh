#!/usr/bin/env bash
# Nightly long-haul jobs — everything too slow for the tier-1 suite.
#
#   1. The partition-heal soak: fabric campaigns run back to back while
#      every link keeps falling into multi-second asymmetric partitions
#      that heal mid-campaign (internal/fabric/soak_test.go, gated behind
#      SWIFI_SOAK=1). SWIFI_SOAK_FOR overrides the 2-minute default.
#   2. The journal fuzzers: arbitrary bytes against the journal and
#      sidecar loaders, seeded from real journal files. SWIFI_FUZZ_FOR
#      overrides the per-target budget.
#   3. The storage smoke: ENOSPC + SIGKILL + resume + pipe chaos through
#      the real binary (scripts/disk_chaos_smoke.sh).
#
# Wire this into the nightly CI job; a clean exit means every drill passed.
set -euo pipefail
cd "$(dirname "$0")/.."

SWIFI_SOAK=1 SWIFI_SOAK_FOR="${SWIFI_SOAK_FOR:-2m}" \
  go test ./internal/fabric/ -run 'TestFabricPartitionHealSoak' -v -timeout 30m

go test ./internal/journal/ -run=NONE -fuzz 'FuzzJournalOpen' \
  -fuzztime "${SWIFI_FUZZ_FOR:-60s}" -timeout 30m
go test ./internal/journal/ -run=NONE -fuzz 'FuzzSideLogOpen' \
  -fuzztime "${SWIFI_FUZZ_FOR:-60s}" -timeout 30m

scripts/disk_chaos_smoke.sh

echo "nightly soak passed"
