package programs

// The Camelot implementations. Each variant is an independent design for
// the same specification (see oracle.go), mirroring the paper's use of
// several contest submissions: team1 and team10 are recursive, team2 and
// team8 are iterative with different algorithms, team9 leans on dynamic
// (heap-allocated, pointer-linked) structures. Teams 1..5 carry the real
// faults analysed in §5; the corrected and faulty sources differ exactly by
// the corrective diff recorded in their registry entries.

// camelotTeam1 uses recursive depth-first relaxation for knight distances.
// Real fault (checking, paper Figure 5 analogue): the depth bound uses
// "nd >= 6" instead of "nd > 6", so squares at knight distance 6 are never
// reached and get the unreachable marker; the program fails only when a
// 6-move pair matters, which is rare.
const camelotTeam1Correct = `
/* C.team1 - Camelot solver: recursive depth-first relaxation. */
int mdx[8];
int mdy[8];
int best[64];
int kd[64][64];
int kn[64];
int kw[64];

void init_moves() {
    mdx[0] = 1;  mdy[0] = 2;
    mdx[1] = 2;  mdy[1] = 1;
    mdx[2] = 2;  mdy[2] = -1;
    mdx[3] = 1;  mdy[3] = -2;
    mdx[4] = -1; mdy[4] = -2;
    mdx[5] = -2; mdy[5] = -1;
    mdx[6] = -2; mdy[6] = 1;
    mdx[7] = -1; mdy[7] = 2;
}

void explore(int x, int y, int d) {
    int k; int nx; int ny; int nd;
    best[x * 8 + y] = d;
    nd = d + 1;
    if (nd > 6) {
        return;
    }
    for (k = 0; k < 8; k++) {
        nx = x + mdx[k];
        ny = y + mdy[k];
        if (nx >= 0 && nx <= 7 && ny >= 0 && ny <= 7) {
            if (best[nx * 8 + ny] == -1 || nd < best[nx * 8 + ny]) {
                explore(nx, ny, nd);
            }
        }
    }
}

void all_distances() {
    int s; int t;
    for (s = 0; s < 64; s++) {
        for (t = 0; t < 64; t++) {
            best[t] = -1;
        }
        explore(s / 8, s % 8, 0);
        for (t = 0; t < 64; t++) {
            if (best[t] == -1) {
                kd[s][t] = 99;
            } else {
                kd[s][t] = best[t];
            }
        }
    }
}

int walk(int x1, int y1, int x2, int y2) {
    int dx; int dy;
    dx = x1 - x2;
    if (dx < 0) dx = -dx;
    dy = y1 - y2;
    if (dy < 0) dy = -dy;
    if (dx > dy) {
        return dx;
    }
    return dy;
}

int main() {
    int n; int kx; int ky; int i; int g; int p;
    int sumk; int t; int ans; int ki; int base;
    n = read_int();
    kx = read_int();
    ky = read_int();
    for (i = 0; i < n; i++) {
        int x; int y;
        x = read_int();
        y = read_int();
        kn[i] = x * 8 + y;
    }
    init_moves();
    all_distances();
    for (p = 0; p < 64; p++) {
        kw[p] = walk(kx, ky, p / 8, p % 8);
    }
    ans = 999999;
    for (g = 0; g < 64; g++) {
        sumk = 0;
        for (i = 0; i < n; i++) {
            sumk = sumk + kd[kn[i]][g];
        }
        if (sumk + kw[g] < ans) {
            ans = sumk + kw[g];
        }
        for (i = 0; i < n; i++) {
            ki = kn[i];
            base = sumk - kd[ki][g];
            for (p = 0; p < 64; p++) {
                t = base + kd[ki][p] + kw[p] + kd[p][g];
                if (t < ans) {
                    ans = t;
                }
            }
        }
    }
    print_int(ans);
    return 0;
}
`

// camelotTeam2 computes knight distances with an iterative array-based
// breadth-first search. Real fault (algorithm): the faulty version never
// implemented the pickup search — the king always walks — so it fails
// whenever carrying the king is strictly cheaper. Correcting it requires
// implementing the missing carrier/pickup algorithm, the paper's class C.
const camelotTeam2Correct = `
/* C.team2 - Camelot solver: iterative breadth-first search. */
int mdx[8];
int mdy[8];
int kd[64][64];
int qs[64];
int kn[64];
int kw[64];

void init_moves() {
    mdx[0] = 1;  mdy[0] = 2;
    mdx[1] = 2;  mdy[1] = 1;
    mdx[2] = 2;  mdy[2] = -1;
    mdx[3] = 1;  mdy[3] = -2;
    mdx[4] = -1; mdy[4] = -2;
    mdx[5] = -2; mdy[5] = -1;
    mdx[6] = -2; mdy[6] = 1;
    mdx[7] = -1; mdy[7] = 2;
}

void bfs(int src) {
    int head; int tail; int s; int k; int nx; int ny; int t;
    for (t = 0; t < 64; t++) {
        kd[src][t] = -1;
    }
    kd[src][src] = 0;
    qs[0] = src;
    head = 0;
    tail = 1;
    while (head < tail) {
        s = qs[head];
        head = head + 1;
        for (k = 0; k < 8; k++) {
            nx = s / 8 + mdx[k];
            ny = s % 8 + mdy[k];
            if (nx >= 0 && nx <= 7 && ny >= 0 && ny <= 7) {
                if (kd[src][nx * 8 + ny] == -1) {
                    kd[src][nx * 8 + ny] = kd[src][s] + 1;
                    qs[tail] = nx * 8 + ny;
                    tail = tail + 1;
                }
            }
        }
    }
}

int walk(int x1, int y1, int x2, int y2) {
    int dx; int dy;
    dx = x1 - x2;
    if (dx < 0) dx = -dx;
    dy = y1 - y2;
    if (dy < 0) dy = -dy;
    if (dx > dy) {
        return dx;
    }
    return dy;
}

int main() {
    int n; int kx; int ky; int i; int g; int p;
    int sumk; int t; int ans; int ki; int base;
    n = read_int();
    kx = read_int();
    ky = read_int();
    for (i = 0; i < n; i++) {
        int x; int y;
        x = read_int();
        y = read_int();
        kn[i] = x * 8 + y;
    }
    init_moves();
    for (g = 0; g < 64; g++) {
        bfs(g);
    }
    for (p = 0; p < 64; p++) {
        kw[p] = walk(kx, ky, p / 8, p % 8);
    }
    ans = 999999;
    for (g = 0; g < 64; g++) {
        sumk = 0;
        for (i = 0; i < n; i++) {
            sumk = sumk + kd[kn[i]][g];
        }
        t = sumk + kw[g];
        if (t < ans) {
            ans = t;
        }
        for (i = 0; i < n; i++) {
            ki = kn[i];
            base = sumk - kd[ki][g];
            for (p = 0; p < 64; p++) {
                t = base + kd[ki][p] + kw[p] + kd[p][g];
                if (t < ans) {
                    ans = t;
                }
            }
        }
    }
    print_int(ans);
    return 0;
}
`

// camelotTeam2Faulty is team2 as submitted: the knight can only pick the
// king up on the king's own square; the general meeting-point search was
// never implemented.
const camelotTeam2Faulty = `
/* C.team2 - Camelot solver: iterative breadth-first search. */
int mdx[8];
int mdy[8];
int kd[64][64];
int qs[64];
int kn[64];
int kw[64];

void init_moves() {
    mdx[0] = 1;  mdy[0] = 2;
    mdx[1] = 2;  mdy[1] = 1;
    mdx[2] = 2;  mdy[2] = -1;
    mdx[3] = 1;  mdy[3] = -2;
    mdx[4] = -1; mdy[4] = -2;
    mdx[5] = -2; mdy[5] = -1;
    mdx[6] = -2; mdy[6] = 1;
    mdx[7] = -1; mdy[7] = 2;
}

void bfs(int src) {
    int head; int tail; int s; int k; int nx; int ny; int t;
    for (t = 0; t < 64; t++) {
        kd[src][t] = -1;
    }
    kd[src][src] = 0;
    qs[0] = src;
    head = 0;
    tail = 1;
    while (head < tail) {
        s = qs[head];
        head = head + 1;
        for (k = 0; k < 8; k++) {
            nx = s / 8 + mdx[k];
            ny = s % 8 + mdy[k];
            if (nx >= 0 && nx <= 7 && ny >= 0 && ny <= 7) {
                if (kd[src][nx * 8 + ny] == -1) {
                    kd[src][nx * 8 + ny] = kd[src][s] + 1;
                    qs[tail] = nx * 8 + ny;
                    tail = tail + 1;
                }
            }
        }
    }
}

int walk(int x1, int y1, int x2, int y2) {
    int dx; int dy;
    dx = x1 - x2;
    if (dx < 0) dx = -dx;
    dy = y1 - y2;
    if (dy < 0) dy = -dy;
    if (dx > dy) {
        return dx;
    }
    return dy;
}

int main() {
    int n; int kx; int ky; int i; int g; int p;
    int sumk; int t; int ans; int ki; int ks;
    n = read_int();
    kx = read_int();
    ky = read_int();
    for (i = 0; i < n; i++) {
        int x; int y;
        x = read_int();
        y = read_int();
        kn[i] = x * 8 + y;
    }
    init_moves();
    for (g = 0; g < 64; g++) {
        bfs(g);
    }
    for (p = 0; p < 64; p++) {
        kw[p] = walk(kx, ky, p / 8, p % 8);
    }
    ks = kx * 8 + ky;
    ans = 999999;
    for (g = 0; g < 64; g++) {
        sumk = 0;
        for (i = 0; i < n; i++) {
            sumk = sumk + kd[kn[i]][g];
        }
        t = sumk + kw[g];
        if (t < ans) {
            ans = t;
        }
        for (i = 0; i < n; i++) {
            ki = kn[i];
            t = sumk - kd[ki][g] + kd[ki][ks] + kd[ks][g];
            if (t < ans) {
                ans = t;
            }
        }
    }
    print_int(ans);
    return 0;
}
`

// camelotTeam3 tries to be clever: for each knight it precomputes the best
// meeting square with the king independently of the gather square, then
// reuses that meeting square everywhere. Real fault (algorithm): the greedy
// decomposition is usually optimal but fails when the jointly-optimal
// meeting square depends on the gather square; fixing it requires
// re-implementing the joint search (the corrected version below).
const camelotTeam3Correct = `
/* C.team3 - Camelot solver: BFS distances, joint pickup search. */
int mdx[8];
int mdy[8];
int kd[64][64];
int qs[64];
int kn[64];
int kw[64];
int meet_cost[64];
int meet_sq[64];

void init_moves() {
    mdx[0] = 1;  mdy[0] = 2;
    mdx[1] = 2;  mdy[1] = 1;
    mdx[2] = 2;  mdy[2] = -1;
    mdx[3] = 1;  mdy[3] = -2;
    mdx[4] = -1; mdy[4] = -2;
    mdx[5] = -2; mdy[5] = -1;
    mdx[6] = -2; mdy[6] = 1;
    mdx[7] = -1; mdy[7] = 2;
}

void bfs(int src) {
    int head; int tail; int s; int k; int nx; int ny; int t;
    for (t = 0; t < 64; t++) {
        kd[src][t] = -1;
    }
    kd[src][src] = 0;
    qs[0] = src;
    head = 0;
    tail = 1;
    while (head < tail) {
        s = qs[head];
        head = head + 1;
        for (k = 0; k < 8; k++) {
            nx = s / 8 + mdx[k];
            ny = s % 8 + mdy[k];
            if (nx >= 0 && nx <= 7 && ny >= 0 && ny <= 7) {
                if (kd[src][nx * 8 + ny] == -1) {
                    kd[src][nx * 8 + ny] = kd[src][s] + 1;
                    qs[tail] = nx * 8 + ny;
                    tail = tail + 1;
                }
            }
        }
    }
}

int walk(int x1, int y1, int x2, int y2) {
    int dx; int dy;
    dx = x1 - x2;
    if (dx < 0) dx = -dx;
    dy = y1 - y2;
    if (dy < 0) dy = -dy;
    if (dx > dy) {
        return dx;
    }
    return dy;
}

int main() {
    int n; int kx; int ky; int i; int g; int p;
    int sumk; int t; int ans; int ki; int base;
    n = read_int();
    kx = read_int();
    ky = read_int();
    for (i = 0; i < n; i++) {
        int x; int y;
        x = read_int();
        y = read_int();
        kn[i] = x * 8 + y;
    }
    init_moves();
    for (g = 0; g < 64; g++) {
        bfs(g);
    }
    for (p = 0; p < 64; p++) {
        kw[p] = walk(kx, ky, p / 8, p % 8);
    }
    ans = 999999;
    for (g = 0; g < 64; g++) {
        sumk = 0;
        for (i = 0; i < n; i++) {
            sumk = sumk + kd[kn[i]][g];
        }
        t = sumk + kw[g];
        if (t < ans) {
            ans = t;
        }
        for (i = 0; i < n; i++) {
            ki = kn[i];
            base = sumk - kd[ki][g];
            for (p = 0; p < 64; p++) {
                t = base + kd[ki][p] + kw[p] + kd[p][g];
                if (t < ans) {
                    ans = t;
                }
            }
        }
    }
    print_int(ans);
    return 0;
}
`

// camelotTeam3Faulty is team3 as submitted: the greedy per-knight meeting
// square.
const camelotTeam3Faulty = `
/* C.team3 - Camelot solver: BFS distances, greedy pickup search. */
int mdx[8];
int mdy[8];
int kd[64][64];
int qs[64];
int kn[64];
int kw[64];
int meet_cost[64];
int meet_sq[64];

void init_moves() {
    mdx[0] = 1;  mdy[0] = 2;
    mdx[1] = 2;  mdy[1] = 1;
    mdx[2] = 2;  mdy[2] = -1;
    mdx[3] = 1;  mdy[3] = -2;
    mdx[4] = -1; mdy[4] = -2;
    mdx[5] = -2; mdy[5] = -1;
    mdx[6] = -2; mdy[6] = 1;
    mdx[7] = -1; mdy[7] = 2;
}

void bfs(int src) {
    int head; int tail; int s; int k; int nx; int ny; int t;
    for (t = 0; t < 64; t++) {
        kd[src][t] = -1;
    }
    kd[src][src] = 0;
    qs[0] = src;
    head = 0;
    tail = 1;
    while (head < tail) {
        s = qs[head];
        head = head + 1;
        for (k = 0; k < 8; k++) {
            nx = s / 8 + mdx[k];
            ny = s % 8 + mdy[k];
            if (nx >= 0 && nx <= 7 && ny >= 0 && ny <= 7) {
                if (kd[src][nx * 8 + ny] == -1) {
                    kd[src][nx * 8 + ny] = kd[src][s] + 1;
                    qs[tail] = nx * 8 + ny;
                    tail = tail + 1;
                }
            }
        }
    }
}

int walk(int x1, int y1, int x2, int y2) {
    int dx; int dy;
    dx = x1 - x2;
    if (dx < 0) dx = -dx;
    dy = y1 - y2;
    if (dy < 0) dy = -dy;
    if (dx > dy) {
        return dx;
    }
    return dy;
}

int main() {
    int n; int kx; int ky; int i; int g; int p;
    int sumk; int t; int ans; int c;
    n = read_int();
    kx = read_int();
    ky = read_int();
    for (i = 0; i < n; i++) {
        int x; int y;
        x = read_int();
        y = read_int();
        kn[i] = x * 8 + y;
    }
    init_moves();
    for (g = 0; g < 64; g++) {
        bfs(g);
    }
    for (p = 0; p < 64; p++) {
        kw[p] = walk(kx, ky, p / 8, p % 8);
    }
    for (i = 0; i < n; i++) {
        meet_cost[i] = 999999;
        for (p = 0; p < 64; p++) {
            c = kd[kn[i]][p] + kw[p];
            if (c < meet_cost[i]) {
                meet_cost[i] = c;
                meet_sq[i] = p;
            }
        }
    }
    ans = 999999;
    for (g = 0; g < 64; g++) {
        sumk = 0;
        for (i = 0; i < n; i++) {
            sumk = sumk + kd[kn[i]][g];
        }
        t = sumk + kw[g];
        if (t < ans) {
            ans = t;
        }
        for (i = 0; i < n; i++) {
            t = sumk - kd[kn[i]][g] + meet_cost[i] + kd[meet_sq[i]][g];
            if (t < ans) {
                ans = t;
            }
        }
    }
    print_int(ans);
    return 0;
}
`

// camelotTeam4 shares team2's BFS shape but keeps a global seen[] array
// reset in a for-loop between searches. Real fault (assignment, paper
// Figure 3 analogue): the reset loop starts at 1 instead of 0, so square 0
// keeps a stale mark after the first search that visits it and later
// searches treat corner a1 as already seen.
const camelotTeam4Correct = `
/* C.team4 - Camelot solver: BFS with an explicit seen[] array. */
int mdx[8];
int mdy[8];
int kd[64][64];
int qs[64];
int kn[64];
int kw[64];
int seen[64];

void init_moves() {
    mdx[0] = 1;  mdy[0] = 2;
    mdx[1] = 2;  mdy[1] = 1;
    mdx[2] = 2;  mdy[2] = -1;
    mdx[3] = 1;  mdy[3] = -2;
    mdx[4] = -1; mdy[4] = -2;
    mdx[5] = -2; mdy[5] = -1;
    mdx[6] = -2; mdy[6] = 1;
    mdx[7] = -1; mdy[7] = 2;
}

void bfs(int src) {
    int head; int tail; int s; int k; int nx; int ny; int t;
    for (t = 0; t < 64; t++) {
        seen[t] = 0;
    }
    for (t = 0; t < 64; t++) {
        kd[src][t] = 99;
    }
    kd[src][src] = 0;
    seen[src] = 1;
    qs[0] = src;
    head = 0;
    tail = 1;
    while (head < tail) {
        s = qs[head];
        head = head + 1;
        for (k = 0; k < 8; k++) {
            nx = s / 8 + mdx[k];
            ny = s % 8 + mdy[k];
            if (nx >= 0 && nx <= 7 && ny >= 0 && ny <= 7) {
                if (seen[nx * 8 + ny] == 0) {
                    seen[nx * 8 + ny] = 1;
                    kd[src][nx * 8 + ny] = kd[src][s] + 1;
                    qs[tail] = nx * 8 + ny;
                    tail = tail + 1;
                }
            }
        }
    }
}

int walk(int x1, int y1, int x2, int y2) {
    int dx; int dy;
    dx = x1 - x2;
    if (dx < 0) dx = -dx;
    dy = y1 - y2;
    if (dy < 0) dy = -dy;
    if (dx > dy) {
        return dx;
    }
    return dy;
}

int main() {
    int n; int kx; int ky; int i; int g; int p;
    int sumk; int t; int ans; int ki; int base;
    n = read_int();
    kx = read_int();
    ky = read_int();
    for (i = 0; i < n; i++) {
        int x; int y;
        x = read_int();
        y = read_int();
        kn[i] = x * 8 + y;
    }
    init_moves();
    for (g = 0; g < 64; g++) {
        bfs(g);
    }
    for (p = 0; p < 64; p++) {
        kw[p] = walk(kx, ky, p / 8, p % 8);
    }
    ans = 999999;
    for (g = 0; g < 64; g++) {
        sumk = 0;
        for (i = 0; i < n; i++) {
            sumk = sumk + kd[kn[i]][g];
        }
        t = sumk + kw[g];
        if (t < ans) {
            ans = t;
        }
        for (i = 0; i < n; i++) {
            ki = kn[i];
            base = sumk - kd[ki][g];
            for (p = 0; p < 64; p++) {
                t = base + kd[ki][p] + kw[p] + kd[p][g];
                if (t < ans) {
                    ans = t;
                }
            }
        }
    }
    print_int(ans);
    return 0;
}
`

// camelotTeam5 is a straightforward full search whose king-distance routine
// is wrong. Real fault (algorithm, paper Figure 6 analogue): walk() returns
// the SUM of the coordinate distances instead of their maximum — Manhattan
// instead of Chebyshev — overestimating diagonal king walks. The corrected
// version needs the max computation reimplemented, which changes the
// generated code shape substantially (the paper's point about algorithm
// faults).
const camelotTeam5Correct = `
/* C.team5 - Camelot solver: plain full search, separate distance helpers. */
int mdx[8];
int mdy[8];
int kd[64][64];
int qs[64];
int kn[64];
int kw[64];
int kp[64];

void init_moves() {
    mdx[0] = 1;  mdy[0] = 2;
    mdx[1] = 2;  mdy[1] = 1;
    mdx[2] = 2;  mdy[2] = -1;
    mdx[3] = 1;  mdy[3] = -2;
    mdx[4] = -1; mdy[4] = -2;
    mdx[5] = -2; mdy[5] = -1;
    mdx[6] = -2; mdy[6] = 1;
    mdx[7] = -1; mdy[7] = 2;
}

void bfs(int src) {
    int head; int tail; int s; int k; int nx; int ny; int t;
    for (t = 0; t < 64; t++) {
        kd[src][t] = -1;
    }
    kd[src][src] = 0;
    qs[0] = src;
    head = 0;
    tail = 1;
    while (head < tail) {
        s = qs[head];
        head = head + 1;
        for (k = 0; k < 8; k++) {
            nx = s / 8 + mdx[k];
            ny = s % 8 + mdy[k];
            if (nx >= 0 && nx <= 7 && ny >= 0 && ny <= 7) {
                if (kd[src][nx * 8 + ny] == -1) {
                    kd[src][nx * 8 + ny] = kd[src][s] + 1;
                    qs[tail] = nx * 8 + ny;
                    tail = tail + 1;
                }
            }
        }
    }
}

int walk(int x1, int y1, int x2, int y2) {
    int dx; int dy;
    dx = x1 - x2;
    if (dx < 0) dx = -dx;
    dy = y1 - y2;
    if (dy < 0) dy = -dy;
    if (dx > dy) {
        return dx;
    }
    return dy;
}

int dist(int x1, int y1, int x2, int y2) {
    int dx; int dy; int ax; int ay;
    dx = x1 - x2;
    dy = y1 - y2;
    ax = (dx > 0) ? dx : -dx;
    ay = (dy > 0) ? dy : -dy;
    return (ax > ay) ? ax : ay;
}

int main() {
    int n; int kx; int ky; int i; int g; int p;
    int sumk; int t; int ans; int ki; int base;
    n = read_int();
    kx = read_int();
    ky = read_int();
    for (i = 0; i < n; i++) {
        int x; int y;
        x = read_int();
        y = read_int();
        kn[i] = x * 8 + y;
    }
    init_moves();
    for (g = 0; g < 64; g++) {
        bfs(g);
    }
    for (p = 0; p < 64; p++) {
        kw[p] = walk(kx, ky, p / 8, p % 8);
        kp[p] = dist(kx, ky, p / 8, p % 8);
    }
    ans = 999999;
    if (n == 1) {
        /* Dedicated single-knight path: knight straight to the gather
           square with the king walking (dist), or one pickup detour. */
        ki = kn[0];
        for (g = 0; g < 64; g++) {
            t = kd[ki][g] + kp[g];
            if (t < ans) {
                ans = t;
            }
            for (p = 0; p < 64; p++) {
                t = kd[ki][p] + kw[p] + kd[p][g];
                if (t < ans) {
                    ans = t;
                }
            }
        }
        print_int(ans);
        return 0;
    }
    for (g = 0; g < 64; g++) {
        sumk = 0;
        for (i = 0; i < n; i++) {
            sumk = sumk + kd[kn[i]][g];
        }
        t = sumk + kw[g];
        if (t < ans) {
            ans = t;
        }
        for (i = 0; i < n; i++) {
            ki = kn[i];
            base = sumk - kd[ki][g];
            for (p = 0; p < 64; p++) {
                t = base + kd[ki][p] + kw[p] + kd[p][g];
                if (t < ans) {
                    ans = t;
                }
            }
        }
    }
    print_int(ans);
    return 0;
}
`

// camelotTeam8 computes knight distances by repeated relaxation over the
// whole board (Bellman-Ford style) instead of BFS — the other iterative
// algorithm of the suite. No real fault.
const camelotTeam8 = `
/* C.team8 - Camelot solver: relaxation sweeps for distances. */
int mdx[8];
int mdy[8];
int kd[64][64];
int kn[64];
int kw[64];

void init_moves() {
    mdx[0] = 1;  mdy[0] = 2;
    mdx[1] = 2;  mdy[1] = 1;
    mdx[2] = 2;  mdy[2] = -1;
    mdx[3] = 1;  mdy[3] = -2;
    mdx[4] = -1; mdy[4] = -2;
    mdx[5] = -2; mdy[5] = -1;
    mdx[6] = -2; mdy[6] = 1;
    mdx[7] = -1; mdy[7] = 2;
}

void relax(int src) {
    int t; int k; int nx; int ny; int nd; int changed;
    for (t = 0; t < 64; t++) {
        kd[src][t] = 99;
    }
    kd[src][src] = 0;
    changed = 1;
    while (changed) {
        changed = 0;
        for (t = 0; t < 64; t++) {
            if (kd[src][t] < 99) {
                nd = kd[src][t] + 1;
                for (k = 0; k < 8; k++) {
                    nx = t / 8 + mdx[k];
                    ny = t % 8 + mdy[k];
                    if (nx >= 0 && nx <= 7 && ny >= 0 && ny <= 7) {
                        if (nd < kd[src][nx * 8 + ny]) {
                            kd[src][nx * 8 + ny] = nd;
                            changed = 1;
                        }
                    }
                }
            }
        }
    }
}

int walk(int x1, int y1, int x2, int y2) {
    int dx; int dy;
    dx = x1 - x2;
    if (dx < 0) dx = -dx;
    dy = y1 - y2;
    if (dy < 0) dy = -dy;
    if (dx > dy) {
        return dx;
    }
    return dy;
}

int main() {
    int n; int kx; int ky; int i; int g; int p;
    int sumk; int t; int ans; int ki; int base;
    n = read_int();
    kx = read_int();
    ky = read_int();
    for (i = 0; i < n; i++) {
        int x; int y;
        x = read_int();
        y = read_int();
        kn[i] = x * 8 + y;
    }
    init_moves();
    for (g = 0; g < 64; g++) {
        relax(g);
    }
    for (p = 0; p < 64; p++) {
        kw[p] = walk(kx, ky, p / 8, p % 8);
    }
    ans = 999999;
    for (g = 0; g < 64; g++) {
        sumk = 0;
        for (i = 0; i < n; i++) {
            sumk = sumk + kd[kn[i]][g];
        }
        t = sumk + kw[g];
        if (t < ans) {
            ans = t;
        }
        for (i = 0; i < n; i++) {
            ki = kn[i];
            base = sumk - kd[ki][g];
            for (p = 0; p < 64; p++) {
                t = base + kd[ki][p] + kw[p] + kd[p][g];
                if (t < ans) {
                    ans = t;
                }
            }
        }
    }
    print_int(ans);
    return 0;
}
`

// camelotTeam9 keeps everything in heap-allocated structures: the distance
// table lives behind a malloc'd pointer and the BFS queue is a linked list
// of malloc'd two-word cells (value, next). The paper singles this program
// out for its crash-heavy behaviour under injection — corrupted pointers
// dereference wild addresses. No real fault.
const camelotTeam9 = `
/* C.team9 - Camelot solver: dynamic structures everywhere. */
int mdx[8];
int mdy[8];
int *kdp;
int kn[64];
int kw[64];

void init_moves() {
    mdx[0] = 1;  mdy[0] = 2;
    mdx[1] = 2;  mdy[1] = 1;
    mdx[2] = 2;  mdy[2] = -1;
    mdx[3] = 1;  mdy[3] = -2;
    mdx[4] = -1; mdy[4] = -2;
    mdx[5] = -2; mdy[5] = -1;
    mdx[6] = -2; mdy[6] = 1;
    mdx[7] = -1; mdy[7] = 2;
}

int *new_cell(int value, int *next) {
    int *cell;
    cell = malloc(8);
    cell[0] = value;
    cell[1] = next;
    return cell;
}

void bfs(int src) {
    int *head; int *tailc; int *cell;
    int s; int k; int nx; int ny; int t;
    for (t = 0; t < 64; t++) {
        kdp[src * 64 + t] = -1;
    }
    kdp[src * 64 + src] = 0;
    head = new_cell(src, 0);
    tailc = head;
    while (head != 0) {
        s = head[0];
        for (k = 0; k < 8; k++) {
            nx = s / 8 + mdx[k];
            ny = s % 8 + mdy[k];
            if (nx >= 0 && nx <= 7 && ny >= 0 && ny <= 7) {
                if (kdp[src * 64 + nx * 8 + ny] == -1) {
                    kdp[src * 64 + nx * 8 + ny] = kdp[src * 64 + s] + 1;
                    cell = new_cell(nx * 8 + ny, 0);
                    tailc[1] = cell;
                    tailc = cell;
                }
            }
        }
        cell = head;
        head = head[1];
        free(cell);
    }
}

int walk(int x1, int y1, int x2, int y2) {
    int dx; int dy;
    dx = x1 - x2;
    if (dx < 0) dx = -dx;
    dy = y1 - y2;
    if (dy < 0) dy = -dy;
    if (dx > dy) {
        return dx;
    }
    return dy;
}

int main() {
    int n; int kx; int ky; int i; int g; int p;
    int sumk; int t; int ans; int ki; int base;
    kdp = malloc(16384);
    n = read_int();
    kx = read_int();
    ky = read_int();
    for (i = 0; i < n; i++) {
        int x; int y;
        x = read_int();
        y = read_int();
        kn[i] = x * 8 + y;
    }
    init_moves();
    for (g = 0; g < 64; g++) {
        bfs(g);
    }
    for (p = 0; p < 64; p++) {
        kw[p] = walk(kx, ky, p / 8, p % 8);
    }
    ans = 999999;
    for (g = 0; g < 64; g++) {
        sumk = 0;
        for (i = 0; i < n; i++) {
            sumk = sumk + kdp[kn[i] * 64 + g];
        }
        t = sumk + kw[g];
        if (t < ans) {
            ans = t;
        }
        for (i = 0; i < n; i++) {
            ki = kn[i];
            base = sumk - kdp[ki * 64 + g];
            for (p = 0; p < 64; p++) {
                t = base + kdp[ki * 64 + p] + kw[p] + kdp[p * 64 + g];
                if (t < ans) {
                    ans = t;
                }
            }
        }
    }
    print_int(ans);
    return 0;
}
`

// camelotTeam10 is the second recursive design: recursive distance
// relaxation like team1 (with a different pruning shape) plus a recursive
// descent over gather squares instead of a loop. No real fault.
const camelotTeam10 = `
/* C.team10 - Camelot solver: recursion for distances and for the search. */
int mdx[8];
int mdy[8];
int best[64];
int kd[64][64];
int kn[64];
int kw[64];
int nn;
int kgx;
int kgy;

void init_moves() {
    mdx[0] = 1;  mdy[0] = 2;
    mdx[1] = 2;  mdy[1] = 1;
    mdx[2] = 2;  mdy[2] = -1;
    mdx[3] = 1;  mdy[3] = -2;
    mdx[4] = -1; mdy[4] = -2;
    mdx[5] = -2; mdy[5] = -1;
    mdx[6] = -2; mdy[6] = 1;
    mdx[7] = -1; mdy[7] = 2;
}

void spread(int s, int d) {
    int k; int nx; int ny; int ns;
    if (d >= 7) {
        return;
    }
    for (k = 0; k < 8; k++) {
        nx = s / 8 + mdx[k];
        ny = s % 8 + mdy[k];
        if (nx >= 0 && nx <= 7 && ny >= 0 && ny <= 7) {
            ns = nx * 8 + ny;
            if (best[ns] == -1 || d + 1 < best[ns]) {
                best[ns] = d + 1;
                spread(ns, d + 1);
            }
        }
    }
}

void all_distances() {
    int s; int t;
    for (s = 0; s < 64; s++) {
        for (t = 0; t < 64; t++) {
            best[t] = -1;
        }
        best[s] = 0;
        spread(s, 0);
        for (t = 0; t < 64; t++) {
            kd[s][t] = best[t];
        }
    }
}

int walk(int x1, int y1, int x2, int y2) {
    int dx; int dy;
    dx = x1 - x2;
    if (dx < 0) dx = -dx;
    dy = y1 - y2;
    if (dy < 0) dy = -dy;
    if (dx > dy) {
        return dx;
    }
    return dy;
}

int cost_at(int g) {
    int i; int p; int sumk; int t; int local; int ki; int base;
    sumk = 0;
    for (i = 0; i < nn; i++) {
        sumk = sumk + kd[kn[i]][g];
    }
    local = sumk + kw[g];
    for (i = 0; i < nn; i++) {
        ki = kn[i];
        base = sumk - kd[ki][g];
        for (p = 0; p < 64; p++) {
            t = base + kd[ki][p] + kw[p] + kd[p][g];
            if (t < local) {
                local = t;
            }
        }
    }
    return local;
}

int search(int g) {
    int here; int rest;
    if (g == 64) {
        return 999999;
    }
    here = cost_at(g);
    rest = search(g + 1);
    if (here < rest) {
        return here;
    }
    return rest;
}

int main() {
    int i;
    nn = read_int();
    kgx = read_int();
    kgy = read_int();
    for (i = 0; i < nn; i++) {
        int x; int y;
        x = read_int();
        y = read_int();
        kn[i] = x * 8 + y;
    }
    init_moves();
    all_distances();
    for (i = 0; i < 64; i++) {
        kw[i] = walk(kgx, kgy, i / 8, i % 8);
    }
    print_int(search(0));
    return 0;
}
`

// camelotTeam6 replaces the ring-buffer queue with explicit frontier
// arrays: the current wave and the next wave. A structurally different
// iterative BFS, enlarging the §5 pool of correct submissions. No real
// fault.
const camelotTeam6 = `
/* C.team6 - Camelot solver: frontier-wave breadth-first search. */
int mdx[8];
int mdy[8];
int kd[64][64];
int kn[64];
int kw[64];
int wave[64];
int nextwave[64];

void init_moves() {
    mdx[0] = 1;  mdy[0] = 2;
    mdx[1] = 2;  mdy[1] = 1;
    mdx[2] = 2;  mdy[2] = -1;
    mdx[3] = 1;  mdy[3] = -2;
    mdx[4] = -1; mdy[4] = -2;
    mdx[5] = -2; mdy[5] = -1;
    mdx[6] = -2; mdy[6] = 1;
    mdx[7] = -1; mdy[7] = 2;
}

void bfs(int src) {
    int nwave; int nnext; int d; int w; int k;
    int s; int nx; int ny; int ns; int t;
    for (t = 0; t < 64; t++) {
        kd[src][t] = -1;
    }
    kd[src][src] = 0;
    wave[0] = src;
    nwave = 1;
    d = 0;
    while (nwave > 0) {
        nnext = 0;
        for (w = 0; w < nwave; w++) {
            s = wave[w];
            for (k = 0; k < 8; k++) {
                nx = s / 8 + mdx[k];
                ny = s % 8 + mdy[k];
                if (nx >= 0 && nx <= 7 && ny >= 0 && ny <= 7) {
                    ns = nx * 8 + ny;
                    if (kd[src][ns] == -1) {
                        kd[src][ns] = d + 1;
                        nextwave[nnext] = ns;
                        nnext = nnext + 1;
                    }
                }
            }
        }
        for (w = 0; w < nnext; w++) {
            wave[w] = nextwave[w];
        }
        nwave = nnext;
        d = d + 1;
    }
}

int walk(int x1, int y1, int x2, int y2) {
    int dx; int dy;
    dx = x1 - x2;
    if (dx < 0) dx = -dx;
    dy = y1 - y2;
    if (dy < 0) dy = -dy;
    if (dx > dy) {
        return dx;
    }
    return dy;
}

int main() {
    int n; int kx; int ky; int i; int g; int p;
    int sumk; int t; int ans; int ki; int base;
    n = read_int();
    kx = read_int();
    ky = read_int();
    for (i = 0; i < n; i++) {
        int x; int y;
        x = read_int();
        y = read_int();
        kn[i] = x * 8 + y;
    }
    init_moves();
    for (g = 0; g < 64; g++) {
        bfs(g);
    }
    for (p = 0; p < 64; p++) {
        kw[p] = walk(kx, ky, p / 8, p % 8);
    }
    ans = 999999;
    for (g = 0; g < 64; g++) {
        sumk = 0;
        for (i = 0; i < n; i++) {
            sumk = sumk + kd[kn[i]][g];
        }
        t = sumk + kw[g];
        if (t < ans) {
            ans = t;
        }
        for (i = 0; i < n; i++) {
            ki = kn[i];
            base = sumk - kd[ki][g];
            for (p = 0; p < 64; p++) {
                t = base + kd[ki][p] + kw[p] + kd[p][g];
                if (t < ans) {
                    ans = t;
                }
            }
        }
    }
    print_int(ans);
    return 0;
}
`

// camelotTeam7 computes distance rows lazily: a row of the distance table
// is only filled the first time it is needed, tracked by a ready[] flag
// array — a call-driven structure unlike the precompute-everything
// variants. No real fault.
const camelotTeam7 = `
/* C.team7 - Camelot solver: lazily memoised distance rows. */
int mdx[8];
int mdy[8];
int kd[64][64];
int ready[64];
int qs[64];
int kn[64];
int kw[64];

void init_moves() {
    mdx[0] = 1;  mdy[0] = 2;
    mdx[1] = 2;  mdy[1] = 1;
    mdx[2] = 2;  mdy[2] = -1;
    mdx[3] = 1;  mdy[3] = -2;
    mdx[4] = -1; mdy[4] = -2;
    mdx[5] = -2; mdy[5] = -1;
    mdx[6] = -2; mdy[6] = 1;
    mdx[7] = -1; mdy[7] = 2;
}

void fill_row(int src) {
    int head; int tail; int s; int k; int nx; int ny; int t;
    for (t = 0; t < 64; t++) {
        kd[src][t] = -1;
    }
    kd[src][src] = 0;
    qs[0] = src;
    head = 0;
    tail = 1;
    while (head < tail) {
        s = qs[head];
        head = head + 1;
        for (k = 0; k < 8; k++) {
            nx = s / 8 + mdx[k];
            ny = s % 8 + mdy[k];
            if (nx >= 0 && nx <= 7 && ny >= 0 && ny <= 7) {
                if (kd[src][nx * 8 + ny] == -1) {
                    kd[src][nx * 8 + ny] = kd[src][s] + 1;
                    qs[tail] = nx * 8 + ny;
                    tail = tail + 1;
                }
            }
        }
    }
    ready[src] = 1;
}

int dist(int from, int to) {
    if (ready[from] == 0) {
        fill_row(from);
    }
    return kd[from][to];
}

int walk(int x1, int y1, int x2, int y2) {
    int dx; int dy;
    dx = x1 - x2;
    if (dx < 0) dx = -dx;
    dy = y1 - y2;
    if (dy < 0) dy = -dy;
    if (dx > dy) {
        return dx;
    }
    return dy;
}

int main() {
    int n; int kx; int ky; int i; int g; int p;
    int sumk; int t; int ans; int ki; int base;
    n = read_int();
    kx = read_int();
    ky = read_int();
    for (i = 0; i < n; i++) {
        int x; int y;
        x = read_int();
        y = read_int();
        kn[i] = x * 8 + y;
    }
    init_moves();
    for (p = 0; p < 64; p++) {
        kw[p] = walk(kx, ky, p / 8, p % 8);
    }
    ans = 999999;
    for (g = 0; g < 64; g++) {
        sumk = 0;
        for (i = 0; i < n; i++) {
            sumk = sumk + dist(kn[i], g);
        }
        t = sumk + kw[g];
        if (t < ans) {
            ans = t;
        }
        for (i = 0; i < n; i++) {
            ki = kn[i];
            base = sumk - dist(ki, g);
            for (p = 0; p < 64; p++) {
                t = base + dist(ki, p) + kw[p] + dist(p, g);
                if (t < ans) {
                    ans = t;
                }
            }
        }
    }
    print_int(ans);
    return 0;
}
`
