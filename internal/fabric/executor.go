package fabric

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/journal"
	"repro/internal/telemetry"
	"repro/internal/worker"
)

// BatchRunner executes assigned units on the local stack. One BatchRunner
// serves the whole executor session; RunBatch is called once per drained
// queue, never concurrently with itself.
type BatchRunner interface {
	// Units returns the total unit count of the rebuilt plan, echoed to
	// the coordinator in the ready frame.
	Units() int
	// RunBatch executes the given sorted units. skip is consulted as each
	// unit is about to start: it reports units revoked (stolen) since the
	// batch was cut, which the runner should not spend time on — skipping
	// is an optimisation, not a correctness requirement, because duplicate
	// verdicts are dropped at the merge. emit ships one verdict; it is
	// safe to call from concurrent workers and never fails on a connection
	// loss (the verdict is buffered and retransmitted after reconnecting).
	// A returned error is fatal to the executor session.
	RunBatch(ctx context.Context, units []int, skip func(int) bool, emit func(unit int, o journal.Outcome, payload []byte) error) error
}

// BatchFactory builds the session's BatchRunner from the spec in the
// coordinator's hello frame — the executor-side analogue of worker.Factory.
// It runs before the ready frame, so it is where the executor re-plans and
// where a fingerprint mismatch should surface as an error.
type BatchFactory func(spec worker.Spec) (BatchRunner, error)

// ExecutorMetrics observes the executor's resilience path. All fields are
// optional.
type ExecutorMetrics struct {
	// Reconnects counts successful redials after a lost connection.
	Reconnects *telemetry.Counter
	// Resumes counts welcomes that re-attached to a surviving session.
	Resumes *telemetry.Counter
}

// ExecutorOptions configures one Join session.
type ExecutorOptions struct {
	// Name identifies this host in coordinator logs, traces and per-host
	// metrics (default: os.Hostname, falling back to the local address).
	Name string
	// Workers is the parallelism advertised to the coordinator; the
	// initial shard is weighted by it (default 1).
	Workers int
	// Batch builds the local execution stack from the campaign spec.
	Batch BatchFactory
	// DialTimeout caps the total time Join spends establishing the first
	// connection, retries included (default 10s). The coordinator binds
	// its port only after planning the campaign, so refused connections
	// are retried — with backoff, honoring context cancellation — until
	// the window closes.
	DialTimeout time.Duration
	// ReconnectWindow caps the total time a lost connection may spend
	// re-establishing before the session is abandoned (default 60s).
	// Execution continues through the outage; only the wire goes quiet.
	ReconnectWindow time.Duration
	// WrapConn, when non-nil, wraps every dialed connection — the hook
	// the chaos proxy plugs into.
	WrapConn func(net.Conn) net.Conn
	// Metrics observes reconnects and session resumes; passive.
	Metrics *ExecutorMetrics
	// Federation, when non-nil, enables the telemetry federation plane:
	// registry snapshots and drained trace events are pushed to the
	// coordinator on the heartbeat tick, strictly best-effort (dropped
	// under backpressure, never blocking the verdict path, never
	// retransmitted). Results are bit-identical with or without it.
	Federation *Federation
	// FederationInterval floors the time between periodic federation
	// pushes (default 1s). Pushes piggyback on heartbeat ticks but must
	// not amplify the wire's write rate: under chaos every write is a
	// sever lottery, and a per-tick push at an aggressive heartbeat can
	// turn a survivable link into a reconnect storm. Counters are
	// cumulative, so a slower cadence costs staleness only; the final
	// flush on shutdown ignores the floor.
	FederationInterval time.Duration
	// Log, when non-nil, receives one line per session event.
	Log func(format string, args ...any)
}

func (o *ExecutorOptions) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

// fatalError marks errors that must not trigger a reconnect: the
// coordinator rejected or aborted this executor, or the local batch stack
// failed. Redialing could only repeat the failure.
type fatalError struct{ error }

func (e fatalError) Unwrap() error { return e.error }

// Join connects to a coordinator, rebuilds the plan from the hello spec,
// and executes assigned unit ranges until the coordinator sends shutdown
// (clean end: returns nil), the context is cancelled, or the session fails
// fatally. A lost connection is not fatal: execution continues, verdicts
// are buffered, and the executor redials with backoff — re-attaching to its
// session, retransmitting unacknowledged verdicts — for up to
// ReconnectWindow before giving up.
func Join(ctx context.Context, addr string, opts ExecutorOptions) error {
	if opts.Batch == nil {
		return errors.New("fabric: ExecutorOptions.Batch is required")
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.Name == "" {
		if hn, err := os.Hostname(); err == nil {
			opts.Name = hn
		}
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 10 * time.Second
	}
	if opts.ReconnectWindow <= 0 {
		opts.ReconnectWindow = 60 * time.Second
	}
	x := &executor{
		addr:    addr,
		opts:    &opts,
		revoked: make(map[int]bool),
		wake:    make(chan struct{}, 1),
		runErr:  make(chan error, 1),
	}
	opts.logf("fabric: joining coordinator at %s", addr)
	conn, err := x.dialRetry(ctx, opts.DialTimeout)
	if err != nil {
		return err
	}
	if opts.Name == "" {
		opts.Name = conn.LocalAddr().String()
	}

	// Cancellation severs the current connection, which unblocks every
	// read and write immediately; the dial loops check ctx themselves.
	stop := context.AfterFunc(ctx, x.sever)
	defer stop()

	runCtx, runCancel := context.WithCancel(ctx)
	defer runCancel()

	finish := func(sessErr error) error {
		runCancel()
		if x.batchStarted {
			if err := <-x.runErr; err != nil && !errors.Is(err, context.Canceled) {
				return err
			}
		}
		return sessErr
	}

	for {
		err := x.session(runCtx, conn)
		if ctx.Err() != nil {
			return finish(ctx.Err())
		}
		x.qmu.Lock()
		released := x.shutdown
		x.qmu.Unlock()
		if released {
			// Clean shutdown: the coordinator has every verdict it needs;
			// buffered retransmits are moot. A real batch error still
			// surfaces (the shutdown may be the coordinator reacting to
			// this executor's own error frame).
			if err := finish(nil); err != nil {
				return err
			}
			x.opts.logf("fabric: campaign complete; coordinator released this executor")
			return nil
		}
		if berr := x.batchError(); berr != nil {
			return finish(berr)
		}
		var fe fatalError
		if errors.As(err, &fe) {
			return finish(err)
		}
		// Connection lost. Execution keeps running; redial and re-attach.
		x.opts.logf("fabric: connection lost (%v); redialing for up to %v", err, x.opts.ReconnectWindow)
		conn2, rerr := x.dialRetry(ctx, x.opts.ReconnectWindow)
		if rerr != nil {
			if ctx.Err() != nil {
				return finish(ctx.Err())
			}
			// The coordinator stayed unreachable for the whole window. If
			// this executor holds no work — empty queue, no batch running —
			// the likeliest story is a campaign that ended while the wire
			// was too mangled to deliver the shutdown frame. Exit cleanly:
			// there is nothing left this host could contribute, and any
			// verdicts still unacked are surplus a restarted coordinator
			// re-derives by redelivery (duplicates are merged away).
			x.qmu.Lock()
			idle := len(x.queue) == 0 && !x.batchActive
			x.qmu.Unlock()
			if idle {
				x.smu.Lock()
				surplus := len(x.unacked)
				x.smu.Unlock()
				if surplus > 0 {
					x.opts.logf("fabric: abandoning %d unacknowledged verdict(s); a resumed campaign re-runs those units", surplus)
				}
				x.opts.logf("fabric: coordinator gone and no work left (%v); treating the campaign as ended", rerr)
				if err := finish(nil); err != nil {
					return err
				}
				return nil
			}
			return finish(fmt.Errorf("fabric: connection lost (%v); %w", err, rerr))
		}
		if m := x.opts.Metrics; m != nil && m.Reconnects != nil {
			m.Reconnects.Inc()
		}
		conn = conn2
	}
}

// executor is one Join call's state, spanning every reconnected session.
type executor struct {
	addr string
	opts *ExecutorOptions

	wmu sync.Mutex // serialises frame writes (verdicts vs heartbeats)

	smu       sync.Mutex // session identity and the retransmit buffer
	conn      net.Conn   // current connection; nil during an outage
	token     uint64     // session token from the last welcome (0 = none yet)
	seq       uint32     // last verdict sequence stamped
	unacked   []verdict  // sent or pending verdicts not yet acknowledged
	ackedSeq  uint32     // coordinator's cumulative ack watermark
	lastAckAt time.Time  // last watermark advance (stall detection)

	qmu         sync.Mutex
	queue       []int        // assigned, not yet handed to RunBatch; sorted
	revoked     map[int]bool // stolen; skip if not yet started
	wake        chan struct{}
	shutdown    bool
	batchActive bool // a batch is inside RunBatch right now

	bmu      sync.Mutex
	batchErr error

	runner       BatchRunner
	units        int
	fp           uint64 // the first hello's plan fingerprint
	batchStarted bool
	runErr       chan error

	hb hello // negotiated timings

	lastFedPush time.Time // heartbeat-goroutine only; floors the push cadence
}

// sever closes the current connection (context cancellation path).
func (x *executor) sever() {
	x.smu.Lock()
	defer x.smu.Unlock()
	if x.conn != nil {
		x.conn.Close()
	}
}

// dialRetry establishes one TCP connection within the given window,
// retrying with jittered exponential backoff. Context cancellation aborts
// both the in-flight dial and the backoff sleeps; the window caps the total
// wait, not each attempt.
func (x *executor) dialRetry(ctx context.Context, window time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(window)
	backoff := 100 * time.Millisecond
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, fmt.Errorf("fabric: no connection to %s within %v: %w", x.addr, window, lastErr)
		}
		attemptTimeout := remaining
		if attemptTimeout > 5*time.Second {
			attemptTimeout = 5 * time.Second
		}
		d := net.Dialer{Timeout: attemptTimeout}
		conn, err := d.DialContext(ctx, "tcp", x.addr)
		if err == nil {
			if x.opts.WrapConn != nil {
				conn = x.opts.WrapConn(conn)
			}
			return conn, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		lastErr = err
		if attempt == 0 {
			x.opts.logf("fabric: coordinator unreachable (%v); retrying for up to %v", err, window)
		}
		sleep := backoff + time.Duration(rand.Int63n(int64(backoff)))
		if sleep > remaining {
			sleep = remaining
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(sleep):
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
}

// write sends one CRC frame under a write deadline.
func (x *executor) write(conn net.Conn, typ uint8, payload []byte) error {
	x.wmu.Lock()
	defer x.wmu.Unlock()
	timeout := x.hb.HeartbeatTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	_ = conn.SetWriteDeadline(time.Now().Add(timeout))
	return worker.WriteFrameCRC(conn, typ, payload)
}

func (x *executor) setBatchError(err error) {
	x.bmu.Lock()
	x.batchErr = err
	x.bmu.Unlock()
}

func (x *executor) batchError() error {
	x.bmu.Lock()
	defer x.bmu.Unlock()
	return x.batchErr
}

// session drives one connection from handshake to loss or shutdown.
func (x *executor) session(ctx context.Context, conn net.Conn) error {
	defer func() {
		x.smu.Lock()
		if x.conn == conn {
			x.conn = nil
		}
		x.smu.Unlock()
		conn.Close()
	}()

	// Handshake: hello in, re-plan (first session only), ready out. The
	// hello read gets a generous fixed deadline because the negotiated
	// timeout is inside it.
	_ = conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	typ, payload, err := worker.ReadFrameCRC(conn)
	if err != nil {
		return fmt.Errorf("fabric: reading hello: %w", err)
	}
	if typ == msgError {
		return fatalError{fmt.Errorf("fabric: coordinator: %s", payload)}
	}
	if typ != msgHello {
		return fmt.Errorf("fabric: expected hello, got frame type %d", typ)
	}
	h, err := decodeHello(payload)
	if err != nil {
		return err
	}
	if h.Version != ProtocolVersion {
		return fatalError{fmt.Errorf("fabric: coordinator speaks protocol version %d, executor speaks %d", h.Version, ProtocolVersion)}
	}
	if h.HeartbeatInterval <= 0 {
		h.HeartbeatInterval = 500 * time.Millisecond
	}
	if h.HeartbeatTimeout <= 0 {
		h.HeartbeatTimeout = 10 * time.Second
	}
	// The negotiated timings are stored once: after the first session the
	// batch loop's emit path reads x.hb concurrently, and a coordinator
	// restart does not renegotiate.
	if x.runner == nil {
		x.hb = h
	}

	// Heartbeats start before the (possibly slow) re-plan so the
	// coordinator's handshake deadline does not fire while we build.
	hbCtx, hbCancel := context.WithCancel(ctx)
	defer hbCancel()
	go func() {
		t := time.NewTicker(h.HeartbeatInterval)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				if x.write(conn, msgHeartbeat, nil) != nil {
					return // reader sees the dead conn too
				}
				x.maybeRetransmit(conn)
				x.pushTelemetry(conn, false)
			}
		}
	}()

	if x.runner == nil {
		runner, err := x.opts.Batch(h.Spec)
		if err != nil {
			_ = x.write(conn, msgError, []byte(err.Error()))
			return fatalError{fmt.Errorf("fabric: building batch runner: %w", err)}
		}
		x.runner = runner
		x.units = runner.Units()
		x.fp = h.Spec.Fingerprint
	} else if h.Spec.Fingerprint != x.fp {
		return fatalError{fmt.Errorf("fabric: coordinator now plans fingerprint %016x, this session was built for %016x", h.Spec.Fingerprint, x.fp)}
	}

	x.smu.Lock()
	token := x.token
	x.smu.Unlock()
	if err := x.write(conn, msgReady, encodeReady(ready{
		Version:     ProtocolVersion,
		Fingerprint: x.fp,
		Units:       uint32(x.units),
		Workers:     uint32(x.opts.Workers),
		Token:       token,
		Name:        x.opts.Name,
	})); err != nil {
		return fmt.Errorf("fabric: sending ready: %w", err)
	}

	if err := x.awaitWelcome(conn); err != nil {
		return err
	}

	// The batch loop runs concurrently with the read loop — and across
	// reconnects: assigns and revokes keep landing while a batch executes,
	// and a batch keeps executing while the wire is down.
	if !x.batchStarted {
		x.batchStarted = true
		x.opts.logf("fabric: ready as %q: %d-unit plan, %d workers", x.opts.Name, x.units, x.opts.Workers)
		go func() { x.runErr <- x.batchLoop(ctx, x.runner) }()
	}

	return x.readLoop(conn)
}

// awaitWelcome reads the coordinator's welcome and installs the session:
// on a resume, the retransmit buffer is pruned to the coordinator's ack
// watermark and the remainder is flushed; on a fresh session (first join,
// or the old session expired), buffered verdicts are re-stamped under the
// new session and flushed, and the stale queue is discarded — the
// coordinator re-assigns from scratch. The session lock is held across the
// flush so a concurrent emit cannot interleave a new verdict ahead of a
// retransmit (sequence numbers must reach the coordinator in order).
func (x *executor) awaitWelcome(conn net.Conn) error {
	for {
		_ = conn.SetReadDeadline(time.Now().Add(x.hb.HeartbeatTimeout))
		typ, payload, err := worker.ReadFrameCRC(conn)
		if err != nil {
			return fmt.Errorf("fabric: reading welcome: %w", err)
		}
		switch typ {
		case msgHeartbeat:
			continue
		case msgError:
			return fatalError{fmt.Errorf("fabric: coordinator: %s", payload)}
		case msgShutdown:
			// Reconnected into the campaign's goodbye phase: the work is
			// done. Closing the connection (session teardown) is the
			// receipt the coordinator waits for.
			x.qmu.Lock()
			x.shutdown = true
			x.qmu.Unlock()
			return errors.New("fabric: released during handshake")
		case msgWelcome:
			w, err := decodeWelcome(payload)
			if err != nil {
				return err
			}
			x.smu.Lock()
			defer x.smu.Unlock()
			if w.Resumed {
				kept := x.unacked[:0]
				for _, v := range x.unacked {
					if v.Seq > w.Acked {
						kept = append(kept, v)
					}
				}
				// Re-stamp the survivors consecutively above the
				// coordinator's watermark. Against a coordinator that acked
				// this session before, this is the identity (cumulative acks
				// leave the buffer contiguous at acked+1..seq) — but a
				// coordinator recovered from the sidecar starts the session
				// at watermark 0 while this buffer's prefix was acked by its
				// predecessor, and without renumbering the gap below the
				// buffer's first seq would pin the new watermark at 0
				// forever: nothing prunes, every stall re-sends everything.
				for i := range kept {
					kept[i].Seq = w.Acked + uint32(i+1)
				}
				x.unacked = kept
				x.seq = w.Acked + uint32(len(kept))
				if m := x.opts.Metrics; m != nil && m.Resumes != nil {
					m.Resumes.Inc()
				}
				x.opts.logf("fabric: session %d resumed; retransmitting %d unacknowledged verdict(s)", w.Token, len(x.unacked))
			} else {
				// Fresh session: the old assignments are void (the
				// coordinator redelivered or never knew them), but buffered
				// verdicts are still good — verdicts are deterministic, and
				// retransmitting saves re-execution elsewhere.
				for i := range x.unacked {
					x.unacked[i].Seq = uint32(i + 1)
				}
				x.seq = uint32(len(x.unacked))
				x.qmu.Lock()
				x.queue = nil
				x.revoked = make(map[int]bool)
				x.qmu.Unlock()
				if x.token != 0 {
					x.opts.logf("fabric: session %d expired on the coordinator; starting session %d with %d buffered verdict(s)",
						x.token, w.Token, len(x.unacked))
				}
			}
			x.token = w.Token
			x.ackedSeq = w.Acked
			x.lastAckAt = time.Now()
			for _, v := range x.unacked {
				if err := x.write(conn, msgVerdict, encodeVerdict(v)); err != nil {
					return fmt.Errorf("fabric: retransmitting verdicts: %w", err)
				}
			}
			x.conn = conn
			return nil
		default:
			return fmt.Errorf("fabric: expected welcome, got frame type %d", typ)
		}
	}
}

// readLoop drains coordinator frames until shutdown or a dead connection.
func (x *executor) readLoop(conn net.Conn) error {
	for {
		_ = conn.SetReadDeadline(time.Now().Add(x.hb.HeartbeatTimeout))
		typ, payload, err := worker.ReadFrameCRC(conn)
		if err != nil {
			if err == io.EOF {
				return fmt.Errorf("fabric: coordinator closed the connection")
			}
			return fmt.Errorf("fabric: reading from coordinator: %w", err)
		}
		switch typ {
		case msgHeartbeat:
		case msgAck:
			seq, err := decodeAck(payload)
			if err != nil {
				return err
			}
			x.smu.Lock()
			if seq > x.ackedSeq {
				x.ackedSeq = seq
				x.lastAckAt = time.Now()
			}
			kept := x.unacked[:0]
			for _, v := range x.unacked {
				if v.Seq > seq {
					kept = append(kept, v)
				}
			}
			x.unacked = kept
			x.smu.Unlock()
		case msgAssign:
			units, err := decodeRuns(payload, x.units)
			if err != nil {
				return err
			}
			// Units this host already executed sit in the retransmit buffer
			// awaiting an ack; a re-assignment of those (a stall nudge, or a
			// recovered coordinator re-sending outstanding ranges) must not
			// re-execute them — the buffered verdict is already the answer
			// and the retransmit path delivers it. Without this filter every
			// nudge during a long outage re-runs the whole assignment and
			// the buffer grows without bound.
			x.smu.Lock()
			emitted := make(map[int]bool, len(x.unacked))
			for _, v := range x.unacked {
				emitted[int(v.Unit)] = true
			}
			x.smu.Unlock()
			fresh := units[:0]
			for _, u := range units {
				if !emitted[u] {
					fresh = append(fresh, u)
				}
			}
			units = fresh
			x.qmu.Lock()
			for _, u := range units {
				delete(x.revoked, u) // re-assignment supersedes an old steal
			}
			x.queue = append(x.queue, units...)
			sort.Ints(x.queue)
			// A re-attach re-sends outstanding ranges; deduplicate so a
			// unit is not queued (and executed) twice by this host.
			dedup := x.queue[:0]
			for i, u := range x.queue {
				if i == 0 || u != x.queue[i-1] {
					dedup = append(dedup, u)
				}
			}
			x.queue = dedup
			x.qmu.Unlock()
			select {
			case x.wake <- struct{}{}:
			default:
			}
			x.opts.logf("fabric: assigned %d units", len(units))
		case msgRevoke:
			units, err := decodeRuns(payload, x.units)
			if err != nil {
				return err
			}
			x.qmu.Lock()
			gone := make(map[int]bool, len(units))
			for _, u := range units {
				gone[u] = true
				x.revoked[u] = true
			}
			kept := x.queue[:0]
			for _, u := range x.queue {
				if !gone[u] {
					kept = append(kept, u)
				}
			}
			x.queue = kept
			x.qmu.Unlock()
			x.opts.logf("fabric: %d units revoked (stolen by another host)", len(units))
		case msgShutdown:
			x.qmu.Lock()
			x.shutdown = true
			x.qmu.Unlock()
			// Final federation flush: the coordinator lingers after the
			// goodbye precisely so these late frames are ingested, and a
			// campaign shorter than one heartbeat interval still reports.
			x.pushTelemetry(conn, true)
			return nil
		case msgError:
			return fatalError{fmt.Errorf("fabric: coordinator aborted: %s", payload)}
		default:
			return fmt.Errorf("fabric: unexpected frame type %d from coordinator", typ)
		}
	}
}

// emit stamps one verdict with the next sequence number, buffers it for
// retransmission, and sends it if the wire is up. A connection failure is
// not an error: the verdict stays buffered, the dead connection is severed
// so the read loop notices, and the reconnect path retransmits.
func (x *executor) emit(unit int, o journal.Outcome, payload []byte) error {
	if fed := x.opts.Federation; fed != nil {
		fed.Executed.Inc()
	}
	x.smu.Lock()
	defer x.smu.Unlock()
	x.seq++
	v := verdict{Seq: x.seq, Unit: uint32(unit), Outcome: o, Payload: payload}
	x.unacked = append(x.unacked, v)
	if x.conn != nil {
		if err := x.write(x.conn, msgVerdict, encodeVerdict(v)); err != nil {
			x.opts.logf("fabric: verdict for unit %d buffered (%v); will retransmit after reconnecting", unit, err)
			x.conn.Close()
			x.conn = nil
		}
	}
	return nil
}

// maybeRetransmit re-sends the whole unacked buffer when the coordinator's
// cumulative ack watermark has not advanced for half a heartbeat timeout
// while verdicts are outstanding. On a clean link acks advance with every
// verdict and this never fires; a chaos-dropped verdict write (the stream
// stays healthy, the frame simply never existed) leaves a gap at the
// watermark that only a retransmit can fill. Re-sent verdicts the
// coordinator did process are re-acked and pruned.
func (x *executor) maybeRetransmit(conn net.Conn) {
	x.smu.Lock()
	defer x.smu.Unlock()
	if x.conn != conn || len(x.unacked) == 0 {
		return
	}
	stall := x.hb.HeartbeatTimeout / 2
	if stall <= 0 {
		stall = 5 * time.Second
	}
	if time.Since(x.lastAckAt) < stall {
		return
	}
	x.lastAckAt = time.Now()
	x.opts.logf("fabric: no ack progress for %v; retransmitting %d verdict(s)", stall, len(x.unacked))
	for _, v := range x.unacked {
		if err := x.write(conn, msgVerdict, encodeVerdict(v)); err != nil {
			x.conn.Close()
			x.conn = nil
			return
		}
	}
}

// pushTelemetry ships one federation push — a registry snapshot frame plus
// whatever the trace buffer holds — strictly best-effort. Periodic pushes
// (final=false) only try-lock the write mutex: if the verdict path holds the
// wire the push is dropped and counted, never queued, so federation can't
// add latency to a verdict — and they are floored to FederationInterval so
// an aggressive heartbeat never multiplies the wire's write rate (under
// chaos, every extra write is another chance to sever the link). The final
// push (on shutdown receipt) takes the lock for real and skips the floor so
// short campaigns that finish before the first tick still report. Pushes
// before the welcome completes are skipped — the coordinator's handshake
// would reject the frames.
func (x *executor) pushTelemetry(conn net.Conn, final bool) {
	fed := x.opts.Federation
	if fed == nil {
		return
	}
	if !final {
		interval := x.opts.FederationInterval
		if interval <= 0 {
			interval = time.Second
		}
		if time.Since(x.lastFedPush) < interval {
			return
		}
		x.lastFedPush = time.Now()
	}
	x.smu.Lock()
	live := x.conn == conn
	x.smu.Unlock()
	if !live {
		return
	}
	if final {
		x.wmu.Lock()
	} else if !x.wmu.TryLock() {
		fed.Dropped.Inc()
		return
	}
	defer x.wmu.Unlock()
	timeout := x.hb.HeartbeatTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	_ = conn.SetWriteDeadline(time.Now().Add(timeout))
	if entries := fed.snapshot(); len(entries) > 0 {
		if worker.WriteFrameCRC(conn, msgTelemetry, encodeSnapshot(time.Now().UnixMicro(), entries)) != nil {
			return // dead wire; counters are cumulative, the next push heals
		}
	}
	for {
		evs := fed.Trace.Drain(maxTraceEvents)
		if len(evs) == 0 {
			return
		}
		if worker.WriteFrameCRC(conn, msgTrace, encodeTraceEvents(time.Now().UnixMicro(), evs)) != nil {
			return // drained events are lost — the documented drop contract
		}
	}
}

// batchLoop hands the queue to the BatchRunner whenever it is non-empty.
// The whole queue is cut as one batch; units assigned mid-batch wait for
// the next cut, and units stolen mid-batch are dropped by the skip check.
func (x *executor) batchLoop(ctx context.Context, runner BatchRunner) error {
	skip := func(u int) bool {
		x.qmu.Lock()
		defer x.qmu.Unlock()
		return x.revoked[u]
	}
	for {
		x.qmu.Lock()
		batch := x.queue
		x.queue = nil
		x.batchActive = len(batch) > 0
		x.qmu.Unlock()
		if len(batch) == 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-x.wake:
			}
			continue
		}
		err := runner.RunBatch(ctx, batch, skip, x.emit)
		x.qmu.Lock()
		x.batchActive = false
		x.qmu.Unlock()
		if err != nil {
			if ctx.Err() == nil {
				x.setBatchError(err)
				x.smu.Lock()
				conn := x.conn
				x.smu.Unlock()
				if conn != nil {
					_ = x.write(conn, msgError, []byte(err.Error()))
				}
			}
			return err
		}
	}
}

// InProcBatch adapts a worker.Factory into a BatchRunner that executes
// units on a pool of goroutines, one runner instance per goroutine — the
// executor-side analogue of the in-process campaign pool, reused by the
// simple fan-out specs (faultgen plans, progrun selftests).
func InProcBatch(factory worker.Factory, workers int) BatchFactory {
	return func(spec worker.Spec) (BatchRunner, error) {
		if workers < 1 {
			workers = 1
		}
		runners := make([]worker.Runner, workers)
		for i := range runners {
			r, err := factory(spec)
			if err != nil {
				return nil, err
			}
			runners[i] = r
		}
		return &inProcBatch{runners: runners}, nil
	}
}

type inProcBatch struct {
	runners []worker.Runner
}

func (b *inProcBatch) Units() int { return b.runners[0].Units() }

func (b *inProcBatch) RunBatch(ctx context.Context, units []int, skip func(int) bool, emit func(int, journal.Outcome, []byte) error) error {
	var next int
	var mu sync.Mutex
	take := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= len(units) {
			return 0, false
		}
		u := units[next]
		next++
		return u, true
	}
	errc := make(chan error, len(b.runners))
	for _, r := range b.runners {
		go func(r worker.Runner) {
			for {
				if ctx.Err() != nil {
					errc <- ctx.Err()
					return
				}
				u, ok := take()
				if !ok {
					errc <- nil
					return
				}
				if skip != nil && skip(u) {
					continue
				}
				o, payload, err := r.Run(u)
				if err != nil {
					errc <- fmt.Errorf("unit %d: %w", u, err)
					return
				}
				if err := emit(u, o, payload); err != nil {
					errc <- err
					return
				}
			}
		}(r)
	}
	var first error
	for range b.runners {
		if err := <-errc; err != nil && first == nil {
			first = err
		}
	}
	return first
}
