package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"
)

// Tally is a name → count map, e.g. failure-mode tallies ("correct" → 812).
type Tally map[string]int

// Add merges other into t.
func (t Tally) Add(other Tally) {
	for k, n := range other {
		t[k] += n
	}
}

// Version identifies the binary that produced a report or journal: the main
// module version plus the VCS state baked in by the Go toolchain.
type Version struct {
	Module   string `json:"module,omitempty"`   // main module version ("(devel)" for local builds)
	Revision string `json:"revision,omitempty"` // VCS commit hash
	Time     string `json:"time,omitempty"`     // VCS commit time
	Modified bool   `json:"modified,omitempty"` // tree was dirty at build time
	Go       string `json:"go"`                 // toolchain version
}

// BinaryVersion reads the running binary's build info. It never fails; a
// binary built without VCS stamping just has empty revision fields.
func BinaryVersion() Version {
	v := Version{Go: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return v
	}
	v.Module = bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			v.Revision = s.Value
		case "vcs.time":
			v.Time = s.Value
		case "vcs.modified":
			v.Modified = s.Value == "true"
		}
	}
	return v
}

// String renders the version the way the CLIs' -version flag prints it.
func (v Version) String() string {
	var sb strings.Builder
	mod := v.Module
	if mod == "" {
		mod = "(unknown)"
	}
	sb.WriteString(mod)
	if v.Revision != "" {
		rev := v.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Fprintf(&sb, " rev %s", rev)
		if v.Modified {
			sb.WriteString(" (modified)")
		}
	}
	fmt.Fprintf(&sb, " %s", v.Go)
	return sb.String()
}

// UnitStats summarises how a campaign's units reached their outcomes —
// including the journaled-resume split the summary surfaces (replayed
// versus freshly executed).
type UnitStats struct {
	Total       int `json:"total"`                 // units with an outcome
	Executed    int `json:"executed"`              // freshly executed this run
	Replayed    int `json:"replayed"`              // taken from the journal
	Quarantined int `json:"quarantined,omitempty"` // host faults among them
}

// HostStats summarises one executor host of a distributed (fabric)
// campaign, as the coordinator saw it. Merged counts verdicts the
// coordinator folded into the result (the authoritative number); Executed
// is the host's own federated counter, which can exceed Merged by verdicts
// that were still unacked when the snapshot was taken.
type HostStats struct {
	Name          string `json:"name"`
	Workers       int    `json:"workers"`
	Merged        int    `json:"merged"`
	Executed      uint64 `json:"executed,omitempty"`
	Reconnects    int    `json:"reconnects,omitempty"`
	Expired       bool   `json:"expired,omitempty"`
	ClockOffsetUS int64  `json:"clock_offset_us,omitempty"`
}

// Report is the machine-readable end-of-run artifact behind -report <file>:
// what ran, which binary ran it, the failure-mode tallies of the paper's
// figures, the resilience counters, the latency histograms, a trace
// summary, and (for fabric runs) the per-host fleet breakdown. It is
// deliberately free of this repository's internal types so external
// tooling can consume it with nothing but a JSON parser.
type Report struct {
	Tool        string                      `json:"tool"`
	Version     Version                     `json:"version"`
	StartedAt   time.Time                   `json:"started_at"`
	ElapsedMS   int64                       `json:"elapsed_ms"`
	Params      map[string]string           `json:"params,omitempty"`
	Units       UnitStats                   `json:"units"`
	Tallies     Tally                       `json:"tallies,omitempty"`
	Groups      map[string]map[string]Tally `json:"groups,omitempty"`
	Resilience  map[string]int              `json:"resilience,omitempty"`
	Counters    map[string]uint64           `json:"counters,omitempty"`
	Histograms  []HistogramSnapshot         `json:"histograms,omitempty"`
	Trace       map[string]int              `json:"trace,omitempty"`
	Hosts       []HostStats                 `json:"hosts,omitempty"`
	Interrupted bool                        `json:"interrupted,omitempty"`
}

// NewReport starts a report for the named tool, stamped with the binary's
// version and the current time.
func NewReport(tool string) *Report {
	return &Report{
		Tool:      tool,
		Version:   BinaryVersion(),
		StartedAt: time.Now().UTC(),
		Params:    make(map[string]string),
		Tallies:   make(Tally),
	}
}

// Group returns (creating on demand) the named tally group, e.g.
// "assignment/program" for the Figure 7 breakdown.
func (r *Report) Group(name string) map[string]Tally {
	if r.Groups == nil {
		r.Groups = make(map[string]map[string]Tally)
	}
	g, ok := r.Groups[name]
	if !ok {
		g = make(map[string]Tally)
		r.Groups[name] = g
	}
	return g
}

// FillTelemetry copies the registry's counters and histograms and the
// tracer's summary into the report. Safe on a nil Telemetry (no-op).
func (r *Report) FillTelemetry(t *Telemetry) {
	if t == nil {
		return
	}
	if reg := t.Registry(); reg != nil {
		r.Counters = reg.Counters()
		r.Histograms = reg.Histograms()
	}
	if tr := t.Tracer(); tr != nil {
		r.Trace = tr.Summary()
	}
}

// Write writes the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path (atomically via rename, so a scraper
// watching the path never reads a torn file).
func (r *Report) WriteFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := r.Write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// ReadReport loads a report file — the inverse of WriteFile, for tooling and
// tests.
func ReadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("report %s: %w", path, err)
	}
	return &r, nil
}

// FormatTally renders a tally in a fixed, readable order: the paper's four
// failure modes first (always shown, zeros included, so lines are
// comparable across runs), then any extra keys (e.g. hostfault) sorted,
// shown only when non-zero.
func FormatTally(t Tally) string {
	base := []string{"correct", "incorrect", "hang", "crash"}
	var parts []string
	for _, k := range base {
		parts = append(parts, fmt.Sprintf("%s %d", k, t[k]))
	}
	var extra []string
	for k, n := range t {
		if n == 0 {
			continue
		}
		isBase := false
		for _, b := range base {
			if k == b {
				isBase = true
				break
			}
		}
		if !isBase {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	for _, k := range extra {
		parts = append(parts, fmt.Sprintf("%s %d", k, t[k]))
	}
	return strings.Join(parts, ", ")
}
