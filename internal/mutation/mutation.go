// Package mutation generates source-level mutants of target programs — the
// classic mutation-testing technique the paper discusses as related work
// (§2, refs [18] Mothra and [19] Daran & Thévenod-Fosse).
//
// Its purpose in this reproduction is to close the loop on the paper's
// central abstraction gap (their Figure 1): a Table 3 error type can be
// realised *either* as a source-code change (a mutant, compiled with the
// bug in it) *or* as a machine-level injection into the correct binary. If
// the injector emulates software faults accurately, the two must behave
// identically on every input. The Study functions run exactly that
// comparison.
package mutation

import (
	"fmt"
	"strings"

	"repro/internal/cc"
	"repro/internal/fault"
)

// Mutant is one source-level mutation of a program.
type Mutant struct {
	ErrType fault.ErrType
	Line    int
	Col     int
	// From and To describe the textual change.
	From, To string
	Source   string // the mutated translation unit
}

// replaceAt replaces the first occurrence of from at exactly (line, col) —
// both 1-based — returning an error if the text there does not match.
func replaceAt(src string, line, col int, from, to string) (string, error) {
	lines := strings.Split(src, "\n")
	if line < 1 || line > len(lines) {
		return "", fmt.Errorf("mutation: line %d out of range", line)
	}
	l := lines[line-1]
	if col < 1 || col-1+len(from) > len(l) {
		return "", fmt.Errorf("mutation: column %d out of range on line %d", col, line)
	}
	if l[col-1:col-1+len(from)] != from {
		return "", fmt.Errorf("mutation: expected %q at %d:%d, found %q", from, line, col, l[col-1:])
	}
	lines[line-1] = l[:col-1] + to + l[col-1+len(from):]
	return strings.Join(lines, "\n"), nil
}

// OperatorMutants builds the source mutants for one checking location: the
// operator swaps of Table 3 applied directly in the source text. The
// compiler records the operator token's exact position in CheckInfo, so the
// rewrite is precise.
func OperatorMutants(src string, ck cc.CheckInfo) ([]Mutant, error) {
	muts := fault.OperatorMutations(ck.Op)
	if len(muts) == 0 {
		return nil, nil
	}
	var out []Mutant
	for et, to := range muts {
		mutated, err := replaceAt(src, ck.Line, ck.Col, ck.Op, to)
		if err != nil {
			return nil, fmt.Errorf("mutation: %s at %d:%d: %w", et, ck.Line, ck.Col, err)
		}
		out = append(out, Mutant{
			ErrType: et, Line: ck.Line, Col: ck.Col,
			From: ck.Op, To: to, Source: mutated,
		})
	}
	// Deterministic order for reproducible studies.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j].ErrType < out[i].ErrType {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out, nil
}

// Compile compiles a mutant.
func (m *Mutant) Compile() (*cc.Compiled, error) {
	c, err := cc.Compile(m.Source)
	if err != nil {
		return nil, fmt.Errorf("mutation: mutant %s at %d:%d does not compile: %w", m.ErrType, m.Line, m.Col, err)
	}
	return c, nil
}
