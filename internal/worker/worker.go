package worker

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/journal"
)

// Runner executes units inside a worker process. Units() must equal the
// supervisor's count (it is cross-checked in the handshake); Run returns the
// unit's outcome in journal wire form plus an optional kind-specific payload
// carried back verbatim in the verdict.
type Runner interface {
	Units() int
	Run(unit int) (journal.Outcome, []byte, error)
}

// Factory builds a Runner from the spec received in the hello frame. The
// factory must derive the exact unit numbering the supervisor planned and
// return a Runner whose fingerprint check has already been performed (a
// mismatch should be an error here, not a wrong answer later).
type Factory func(spec Spec) (Runner, error)

// Serve runs the worker side of the protocol until shutdown, EOF, or a
// fatal error. It is the entire main loop of a `-worker-mode` process: read
// the hello, build the Runner, answer exec requests one at a time, and
// heartbeat continuously so the supervisor can tell "busy on a long unit"
// from "wedged".
//
// The returned error is for the worker process's own exit status; anything
// the supervisor needs to know has already been sent as an error frame
// (best effort — if the pipe itself is broken the supervisor sees the death
// instead, which it handles the same way).
func Serve(r io.Reader, w io.Writer, f Factory) error {
	br := bufio.NewReader(r)
	ws := &syncWriter{w: w}

	typ, payload, err := ReadFrameCRC(br)
	if err != nil {
		return fmt.Errorf("worker: reading hello: %w", err)
	}
	if typ != msgHello {
		return fatal(ws, fmt.Errorf("worker: expected hello, got frame type %d", typ))
	}
	h, err := decodeHello(payload)
	if err != nil {
		return fatal(ws, err)
	}
	if h.Version != ProtocolVersion {
		return fatal(ws, fmt.Errorf("worker: protocol version %d, this build speaks %d", h.Version, ProtocolVersion))
	}

	// Heartbeats start before the Runner is built: spec planning can be the
	// slowest part of worker startup, and a silent worker is a dead worker
	// as far as the supervisor is concerned.
	if h.HeartbeatInterval > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			t := time.NewTicker(h.HeartbeatInterval)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					if ws.send(msgHeartbeat, nil) != nil {
						return // broken pipe; the main loop will see it too
					}
				}
			}
		}()
	}

	runner, err := f(h.Spec)
	if err != nil {
		return fatal(ws, fmt.Errorf("worker: building runner for spec kind %q: %w", h.Spec.Kind, err))
	}
	if err := ws.send(msgReady, encodeReady(ready{
		Version:     ProtocolVersion,
		Fingerprint: h.Spec.Fingerprint,
		Units:       uint32(runner.Units()),
	})); err != nil {
		return err
	}

	for {
		typ, payload, err := ReadFrameCRC(br)
		if err != nil {
			if err == io.EOF {
				return nil // supervisor closed the pipe: clean shutdown
			}
			return fmt.Errorf("worker: reading request: %w", err)
		}
		switch typ {
		case msgShutdown:
			return nil
		case msgExec:
			if len(payload) != 4 {
				return fatal(ws, fmt.Errorf("worker: exec frame is %d bytes, want 4", len(payload)))
			}
			unit := int(uint32(payload[0]) | uint32(payload[1])<<8 | uint32(payload[2])<<16 | uint32(payload[3])<<24)
			if unit >= runner.Units() {
				return fatal(ws, fmt.Errorf("worker: exec unit %d out of range (plan has %d)", unit, runner.Units()))
			}
			o, res, err := runner.Run(unit)
			if err != nil {
				// A unit error is fatal to the whole campaign in-process, so
				// it is fatal here too; the supervisor aborts rather than
				// quarantining it as a host fault.
				return fatal(ws, fmt.Errorf("worker: unit %d: %w", unit, err))
			}
			last := h.MemQuota > 0 && rssBytes() > h.MemQuota
			if err := ws.send(msgVerdict, encodeVerdict(verdict{
				Unit:    uint32(unit),
				Outcome: o,
				Last:    last,
				Payload: res,
			})); err != nil {
				return err
			}
			if last {
				// Self-recycle: the verdict above is safely on the wire, so
				// exiting now loses nothing and returns the bloated address
				// space to the OS. The supervisor respawns without penalty.
				return nil
			}
		default:
			return fatal(ws, fmt.Errorf("worker: unexpected frame type %d", typ))
		}
	}
}

// fatal reports err to the supervisor as an error frame (best effort) and
// returns it for the worker's own exit path.
func fatal(ws *syncWriter, err error) error {
	_ = ws.send(msgError, []byte(err.Error()))
	return err
}

// syncWriter serialises frame writes between the request loop and the
// heartbeat goroutine.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) send(typ uint8, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return WriteFrameCRC(s.w, typ, payload)
}

// rssBytes reports the process's resident set size. On Linux it reads
// /proc/self/statm (the second field, in pages); elsewhere it falls back to
// the Go heap, which undercounts but still catches heap-driven growth.
func rssBytes() uint64 {
	if b, err := os.ReadFile("/proc/self/statm"); err == nil {
		fields := strings.Fields(string(b))
		if len(fields) >= 2 {
			if pages, err := strconv.ParseUint(fields[1], 10, 64); err == nil {
				return pages * uint64(os.Getpagesize())
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse + ms.StackInuse
}
