package asm

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/vm"
)

// runProgram loads and runs an assembled program, failing the test on any
// machine-level error.
func runProgram(t *testing.T, p *Program, input []int32) *vm.Machine {
	t.Helper()
	m := vm.New(vm.Config{})
	if err := m.Load(p.Image); err != nil {
		t.Fatalf("Load: %v", err)
	}
	m.SetInput(input)
	if _, err := m.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return m
}

const sumSource = `
; sum the first n integers read from input
        .text
main:   li r10,2            ; SysReadInt
        sc
        mr r8,r3            ; n
        li r7,0             ; acc
loop:   cmpwi cr0,r8,0
        bc le,cr0,done
        add r7,r7,r8
        addi r8,r8,-1
        b loop
done:   mr r3,r7
        li r10,3            ; SysWriteInt
        sc
        li r3,0
        li r10,1            ; SysExit
        sc
`

func TestAssembleAndRunSum(t *testing.T) {
	p, err := AssembleText(sumSource, "main")
	if err != nil {
		t.Fatal(err)
	}
	m := runProgram(t, p, []int32{10})
	if m.State() != vm.StateHalted {
		t.Fatalf("state = %v", m.State())
	}
	if got := string(m.Output()); got != "55\n" {
		t.Errorf("output = %q, want \"55\\n\"", got)
	}
}

func TestCallAndData(t *testing.T) {
	src := `
        .text
main:   la r9,tab
        lwz r4,0(r9)
        lwz r5,4(r9)
        bl addfn
        li r10,3
        sc
        li r3,0
        li r10,1
        sc
addfn:  add r3,r4,r5
        blr
        .data
tab:    .word 40,2
`
	p, err := AssembleText(src, "main")
	if err != nil {
		t.Fatal(err)
	}
	m := runProgram(t, p, nil)
	if got := string(m.Output()); got != "42\n" {
		t.Errorf("output = %q, want \"42\\n\"", got)
	}
}

func TestRecursiveFactorial(t *testing.T) {
	// fact(n): classic save-LR-on-stack recursion; exercises the full
	// call/stack protocol the compiler will use.
	src := `
        .text
main:   li r10,2
        sc
        bl fact
        li r10,3
        sc
        li r3,0
        li r10,1
        sc
fact:   cmpwi cr0,r3,1
        bc gt,cr0,rec
        li r3,1
        blr
rec:    mflr r9
        addi r1,r1,-8
        stw r9,0(r1)
        stw r3,4(r1)
        addi r3,r3,-1
        bl fact
        lwz r4,4(r1)
        mullw r3,r3,r4
        lwz r9,0(r1)
        addi r1,r1,8
        mtlr r9
        blr
`
	p, err := AssembleText(src, "main")
	if err != nil {
		t.Fatal(err)
	}
	m := runProgram(t, p, []int32{7})
	if got := string(m.Output()); got != "5040\n" {
		t.Errorf("fact(7) output = %q, want \"5040\\n\"", got)
	}
}

func TestByteDataAndAscii(t *testing.T) {
	src := `
        .text
main:   la r9,msg
next:   lbzx r3,r9,r0
        cmpwi cr0,r3,0
        bc eq,cr0,done
        li r10,4
        sc
        addi r9,r9,1
        b next
done:   li r3,0
        li r10,1
        sc
        .data
msg:    .ascii "hi!"
        .word 0
`
	p, err := AssembleText(src, "main")
	if err != nil {
		t.Fatal(err)
	}
	m := runProgram(t, p, nil)
	if got := string(m.Output()); got != "hi!" {
		t.Errorf("output = %q, want \"hi!\"", got)
	}
}

func TestLargeImmediate(t *testing.T) {
	for _, v := range []int32{0, 1, -1, 32767, -32768, 32768, -32769, 70000, -70000, 1 << 30, -(1 << 30), int32(^uint32(0) >> 1)} {
		b := NewBuilder()
		b.MustLabel("main")
		b.EmitLoadImm32(3, v)
		b.Emit(vm.Inst{Op: vm.OpAddi, RD: vm.RegSys, RA: vm.RegZero, Imm: vm.SysExit})
		b.Emit(vm.Inst{Op: vm.OpSc})
		p, err := b.Assemble("main")
		if err != nil {
			t.Fatal(err)
		}
		m := runProgram(t, p, nil)
		if m.ExitStatus() != v {
			t.Errorf("li %d produced %d", v, m.ExitStatus())
		}
	}
}

// TestLoadImm32Property checks EmitLoadImm32 for arbitrary values.
func TestLoadImm32Property(t *testing.T) {
	f := func(v int32) bool {
		b := NewBuilder()
		b.MustLabel("main")
		b.EmitLoadImm32(3, v)
		b.Emit(vm.Inst{Op: vm.OpAddi, RD: vm.RegSys, RA: vm.RegZero, Imm: vm.SysExit})
		b.Emit(vm.Inst{Op: vm.OpSc})
		p, err := b.Assemble("main")
		if err != nil {
			return false
		}
		m := vm.New(vm.Config{})
		if err := m.Load(p.Image); err != nil {
			return false
		}
		if _, err := m.Run(); err != nil {
			return false
		}
		return m.ExitStatus() == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSymbols(t *testing.T) {
	src := `
        .text
main:   nop
f:      blr
        .data
buf:    .space 8
tab:    .word 1
`
	p, err := AssembleText(src, "main")
	if err != nil {
		t.Fatal(err)
	}
	mainSym, ok := p.Lookup("main")
	if !ok || mainSym.Addr != vm.TextBase || mainSym.Kind != SymText {
		t.Errorf("main symbol = %+v, ok=%v", mainSym, ok)
	}
	fSym, ok := p.Lookup("f")
	if !ok || fSym.Addr != vm.TextBase+4 {
		t.Errorf("f symbol = %+v", fSym)
	}
	buf, ok := p.Lookup("buf")
	if !ok || buf.Kind != SymData {
		t.Errorf("buf symbol = %+v", buf)
	}
	tab, ok := p.Lookup("tab")
	if !ok || tab.Addr != buf.Addr+8 {
		t.Errorf("tab at %#x, want buf+8=%#x", tab.Addr, buf.Addr+8)
	}
	if _, ok := p.Lookup("nope"); ok {
		t.Error("Lookup of undefined symbol succeeded")
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"unknown mnemonic", "main: frobnicate r1,r2"},
		{"bad register", "main: addi rx,r0,1"},
		{"register out of range", "main: addi r32,r0,1"},
		{"bad immediate", "main: addi r3,r0,zzz"},
		{"bad memory operand", "main: lwz r3,8[r1]"},
		{"bad condition", "main: cmpwi cr0,r3,0\n bc zz,cr0,main"},
		{"bad crf", "main: cmpwi cr9,r3,0"},
		{"duplicate label", "main: nop\nmain: nop"},
		{"instruction in data", ".data\nx: addi r3,r0,1"},
		{"operand count", "main: add r3,r4"},
		{"bad ascii", `.data` + "\n" + `s: .ascii "unterminated`},
		{"blr with operand", "main: blr r3"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(tt.src); err == nil {
				t.Errorf("Parse succeeded, want error")
			}
		})
	}
}

func TestAssembleErrors(t *testing.T) {
	t.Run("missing entry", func(t *testing.T) {
		b := NewBuilder()
		if _, err := b.Assemble("main"); err == nil {
			t.Error("want error for missing entry")
		}
	})
	t.Run("undefined branch target", func(t *testing.T) {
		b := NewBuilder()
		b.MustLabel("main")
		b.EmitBranch(vm.Inst{Op: vm.OpB}, "nowhere")
		if _, err := b.Assemble("main"); err == nil {
			t.Error("want error for undefined label")
		}
	})
	t.Run("undefined data symbol", func(t *testing.T) {
		b := NewBuilder()
		b.MustLabel("main")
		b.EmitLoadAddr(3, "nodata")
		if _, err := b.Assemble("main"); err == nil {
			t.Error("want error for undefined data symbol")
		}
	})
	t.Run("bc out of range", func(t *testing.T) {
		b := NewBuilder()
		b.MustLabel("main")
		b.EmitBranch(vm.Inst{Op: vm.OpBc, RD: uint8(vm.CondEQ)}, "far")
		for i := 0; i < 10000; i++ {
			b.Emit(vm.Inst{Op: vm.OpNop})
		}
		b.MustLabel("far")
		if _, err := b.Assemble("main"); err == nil {
			t.Error("want error for bc out of 16-bit range")
		}
	})
	t.Run("non-branch with target", func(t *testing.T) {
		b := NewBuilder()
		b.MustLabel("main")
		b.EmitBranch(vm.Inst{Op: vm.OpAddi, RD: 3}, "main")
		if _, err := b.Assemble("main"); err == nil {
			t.Error("want error for label on non-branch")
		}
	})
}

func TestDisassemble(t *testing.T) {
	src := `
        .text
main:   addi r3,r0,1
        cmpwi cr0,r3,10
        bc lt,cr0,main
        bl f
        sc
f:      blr
`
	p, err := AssembleText(src, "main")
	if err != nil {
		t.Fatal(err)
	}
	dis := Disassemble(p)
	for _, want := range []string{"main:", "f:", "addi r3,r0,1", "cmpwi cr0,r3,10", "bc lt,cr0,main", "bl f", "blr"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestDisassembleIllegalWord(t *testing.T) {
	p := &Program{Image: vm.Image{Text: []uint32{0xffffffff}, Entry: vm.TextBase}}
	dis := Disassemble(p)
	if !strings.Contains(dis, ".illegal") {
		t.Errorf("disassembly of illegal word: %q", dis)
	}
}

func TestDataAlignment(t *testing.T) {
	b := NewBuilder()
	b.MustLabel("main")
	b.Emit(vm.Inst{Op: vm.OpNop})
	b.Bytes([]byte{1, 2, 3})
	b.AlignData()
	if err := b.DataLabel("w"); err != nil {
		t.Fatal(err)
	}
	b.Word(9)
	p, err := b.Assemble("main")
	if err != nil {
		t.Fatal(err)
	}
	w, _ := p.Lookup("w")
	if w.Addr%vm.WordSize != 0 {
		t.Errorf("aligned data symbol at %#x not word-aligned", w.Addr)
	}
}

func TestMultipleLabelsSameLine(t *testing.T) {
	src := "a: b: nop"
	p, err := AssembleText(src, "a")
	if err != nil {
		t.Fatal(err)
	}
	bSym, ok := p.Lookup("b")
	if !ok || bSym.Addr != vm.TextBase {
		t.Errorf("b symbol = %+v, ok=%v", bSym, ok)
	}
}

// TestDisassembleParseRoundTrip: disassembling an assembled program and
// feeding the mnemonic column back through the instruction printer must be
// stable — every decoded instruction re-encodes to the identical word.
func TestEncodeStability(t *testing.T) {
	p, err := AssembleText(sumSource, "main")
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range p.Image.Text {
		in, err := vm.Decode(w)
		if err != nil {
			t.Fatalf("word %d (%#08x): %v", i, w, err)
		}
		if vm.Encode(in) != w {
			t.Errorf("word %d: %#08x re-encodes to %#08x (%s)", i, w, vm.Encode(in), in)
		}
	}
}

// TestParseFormatRoundTrip feeds each instruction's printed form back into
// the parser and checks the encodings match — the assembler and the
// disassembler agree on the syntax.
func TestParseFormatRoundTrip(t *testing.T) {
	src := `
main:   addi r3,r0,1
        addis r4,r0,-2
        mulli r5,r3,100
        andi r6,r5,255
        ori r6,r6,4096
        xori r7,r6,65535
        lwz r8,8(r1)
        stw r8,-4(r30)
        lbz r9,0(r8)
        stb r9,1(r8)
        cmpwi cr3,r9,-1
        add r10,r9,r8
        subf r11,r10,r9
        mullw r12,r11,r10
        divw r13,r12,r3
        mod r14,r13,r3
        and r15,r14,r13
        or r16,r15,r14
        xor r17,r16,r15
        slw r18,r17,r3
        srw r19,r18,r3
        sraw r20,r19,r3
        neg r21,r20
        cmpw cr7,r21,r20
        lwzx r22,r1,r3
        stwx r22,r1,r3
        lbzx r23,r1,r3
        stbx r23,r1,r3
        mflr r24
        mtlr r24
        blr
        sc
        trap
        nop
`
	p, err := AssembleText(src, "main")
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range p.Image.Text {
		in, err := vm.Decode(w)
		if err != nil {
			t.Fatalf("word %d: %v", i, err)
		}
		// Re-parse the printed instruction in isolation.
		b := NewBuilder()
		b.MustLabel("x")
		if err := parseInst(b, firstWord(in.String()), restOf(in.String())); err != nil {
			t.Fatalf("word %d (%q): %v", i, in.String(), err)
		}
		q, err := b.Assemble("x")
		if err != nil {
			t.Fatal(err)
		}
		if len(q.Image.Text) != 1 || q.Image.Text[0] != w {
			t.Errorf("word %d: %q parsed to %#08x, want %#08x", i, in.String(), q.Image.Text[0], w)
		}
	}
}

func firstWord(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' {
			return s[:i]
		}
	}
	return s
}

func restOf(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' {
			return s[i+1:]
		}
	}
	return ""
}
