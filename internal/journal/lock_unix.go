//go:build unix

package journal

import (
	"errors"
	"os"
	"syscall"
)

// lockFile takes a non-blocking exclusive flock on the journal file. The
// lock belongs to the open file description, so it is released when the
// Journal closes the file (or the process dies — SIGKILL included, which is
// exactly when the next opener must still be able to resume). A held lock
// turns into a fast, readable refusal instead of two campaigns silently
// interleaving records.
func lockFile(f *os.File) error {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if errors.Is(err, syscall.EWOULDBLOCK) {
		return errors.New("locked by another running campaign; journals are single-writer — wait for it to finish or use a different -journal file")
	}
	return err
}
