package locator

import (
	"fmt"

	"repro/internal/cc"
	"repro/internal/fault"
	"repro/internal/vm"
)

// StackShiftFault builds the Figure 4 emulation: given the corrected and
// faulty compilations of a program whose real fault changes the stack
// layout of one function (the paper's char[80] vs char[81] declarations),
// it computes the displacement map between the two frames and produces a
// fault that rewrites, on the instruction-fetch bus, every SP-relative
// instruction of that function whose displacement moved.
//
// The resulting fault usually needs far more trigger addresses than the
// processor has breakpoint registers, which is exactly the §5 finding: such
// faults are "emulable with new tool support" (trap-mode triggers), not
// with plain hardware breakpoints.
func StackShiftFault(correct, faulty *cc.Compiled, fnName string) (*fault.Fault, error) {
	fc := correct.Debug.FuncByName(fnName)
	ff := faulty.Debug.FuncByName(fnName)
	if fc == nil || ff == nil {
		return nil, fmt.Errorf("locator: function %q missing from debug info", fnName)
	}
	if len(fc.Locals) != len(ff.Locals) {
		return nil, fmt.Errorf("locator: %s has %d locals in the corrected build but %d in the faulty one",
			fnName, len(fc.Locals), len(ff.Locals))
	}

	// Displacement map: corrected offset -> faulty offset, for every local
	// that moved, plus the frame-size-dependent displacements (LR slot and
	// the prologue/epilogue SP adjustments).
	shift := make(map[int32]int32)
	for i, lc := range fc.Locals {
		lf := ff.Locals[i]
		if lc.Name != lf.Name {
			return nil, fmt.Errorf("locator: %s local %d is %q in the corrected build but %q in the faulty one",
				fnName, i, lc.Name, lf.Name)
		}
		if lc.Offset != lf.Offset {
			shift[lc.Offset] = lf.Offset
		}
	}
	if fc.FrameSize != ff.FrameSize {
		shift[fc.FrameSize-4] = ff.FrameSize - 4 // saved-LR slot
		shift[-fc.FrameSize] = -ff.FrameSize     // prologue addi r1,r1,-frame
		shift[fc.FrameSize] = ff.FrameSize       // epilogue addi r1,r1,+frame
	}
	if len(shift) == 0 {
		return nil, fmt.Errorf("locator: %s has identical layouts; nothing to shift", fnName)
	}

	f := &fault.Fault{
		ID:      fmt.Sprintf("stack-shift/%s", fnName),
		Class:   fault.ClassAssignment,
		ErrType: "stack shift",
		Trigger: fault.Trigger{Kind: fault.TriggerOnLocation},
		Where:   fault.Location{Func: fnName, Detail: "stack layout"},
	}
	for addr := fc.Entry; addr < fc.End; addr += vm.WordSize {
		w, err := correct.Prog.ReadTextWord(addr)
		if err != nil {
			return nil, err
		}
		in, err := vm.Decode(w)
		if err != nil {
			continue // data or already-corrupt words are not SP references
		}
		if !spRelative(in) {
			continue
		}
		newOff, moved := shift[in.Imm]
		if !moved {
			continue
		}
		mut := in
		mut.Imm = newOff
		f.Corruptions = append(f.Corruptions, fault.Corruption{
			Kind:    fault.CorruptFetch,
			Addr:    addr,
			NewWord: vm.Encode(mut),
		})
	}
	if len(f.Corruptions) == 0 {
		return nil, fmt.Errorf("locator: no SP-relative references to shift in %s", fnName)
	}
	return f, nil
}

// spRelative reports whether the instruction addresses the stack through a
// displacement that a frame-layout change would move.
func spRelative(in vm.Inst) bool {
	switch in.Op {
	case vm.OpLwz, vm.OpStw, vm.OpLbz, vm.OpStb:
		return in.RA == vm.RegSP
	case vm.OpAddi:
		// addi rD, r1, off materialises the address of a stack object,
		// including the prologue/epilogue SP adjustments (rD == r1).
		return in.RA == vm.RegSP
	}
	return false
}
