package cc_test

import (
	"strings"
	"testing"

	"repro/internal/cc"
)

// Edge cases in code generation: spill paths, condition shapes, decay
// rules and the compiler's own limits.

func TestTernaryAsCondition(t *testing.T) {
	src := `
int main() {
    int a = 1; int b = 0; int c = 5;
    if (a ? b : c) print_int(1); else print_int(2);
    if (b ? a : c) print_int(3); else print_int(4);
    return 0;
}`
	mustOutput(t, src, nil, "2\n3\n")
}

func TestNotOverCompound(t *testing.T) {
	src := `
int main() {
    int a = 3; int b = 7;
    if (!(a < b && b < 10)) print_int(1); else print_int(2);
    if (!(a > b) || b == 0) print_int(3); else print_int(4);
    while (!(a >= b)) a++;
    print_int(a);
    return 0;
}`
	mustOutput(t, src, nil, "2\n3\n7\n")
}

func TestCallInDeepExpression(t *testing.T) {
	// The call sits deep in an expression: all live scratch registers must
	// be spilled around it and restored.
	src := `
int f(int x) { return x * 2; }
int main() {
    int r = 1 + 2 * (3 + f(4 + 5 * f(1)));
    print_int(r);
    return 0;
}`
	// f(1)=2, 4+10=14, f(14)=28, 3+28=31, 2*31=62, +1=63.
	mustOutput(t, src, nil, "63\n")
}

func TestRowDecayToPointerArgument(t *testing.T) {
	src := `
int rowsum(int *row, int n) {
    int i; int s = 0;
    for (i = 0; i < n; i++) s += row[i];
    return s;
}
int m[3][4];
int main() {
    int i; int j;
    for (i = 0; i < 3; i++)
        for (j = 0; j < 4; j++)
            m[i][j] = i * 4 + j;
    print_int(rowsum(m[1], 4));
    print_int(rowsum(m[2], 4));
    return 0;
}`
	// Row 1: 4+5+6+7 = 22; row 2: 8+9+10+11 = 38.
	mustOutput(t, src, nil, "22\n38\n")
}

func TestBreakInNestedLoops(t *testing.T) {
	src := `
int main() {
    int i; int j; int n = 0;
    for (i = 0; i < 5; i++) {
        j = 0;
        while (1) {
            j++;
            if (j > i) break;
            n += 1;
        }
        if (i == 3) break;
        n += 100;
    }
    print_int(n);
    print_int(i);
    return 0;
}`
	// i=0: inner adds 0, +100 -> 100; i=1: +1, +100 -> 201; i=2: +2, +100
	// -> 303; i=3: +3, outer break -> 306. i stays 3.
	mustOutput(t, src, nil, "306\n3\n")
}

func TestPointerComparisons(t *testing.T) {
	src := `
int a[4];
int main() {
    int *p = a;
    int *q = a + 2;
    if (p < q) print_int(1);
    if (q - 0 == p + 2 - 0) print_int(2);
    if (p != q) print_int(3);
    p = p + 2;
    if (p == q) print_int(4);
    return 0;
}`
	mustOutput(t, src, nil, "1\n2\n3\n4\n")
}

func TestRecursionWithTernary(t *testing.T) {
	src := `
int gcd(int a, int b) {
    return (b == 0) ? a : gcd(b, a % b);
}
int main() {
    print_int(gcd(1071, 462));
    print_int(gcd(17, 5));
    return 0;
}`
	mustOutput(t, src, nil, "21\n1\n")
}

func TestCharGlobalArrays(t *testing.T) {
	src := `
char buf[8];
int main() {
    int i;
    for (i = 0; i < 7; i++) buf[i] = 'A' + i;
    buf[7] = 0;
    for (i = 0; buf[i] != 0; i++) print_char(buf[i]);
    print_char(10);
    print_int(buf[2]);
    return 0;
}`
	mustOutput(t, src, nil, "ABCDEFG\n67\n")
}

func TestByteTruncationOnCharArrayStore(t *testing.T) {
	src := `
char b[4];
int main() {
    b[0] = 321;  /* 321 & 0xff = 65 */
    print_int(b[0]);
    return 0;
}`
	mustOutput(t, src, nil, "65\n")
}

func TestExpressionTooComplex(t *testing.T) {
	// Depth grows rightward: a right-leaning chain of binary operators
	// needs one scratch register per level and must exhaust the bank.
	expr := "1"
	for i := 0; i < 20; i++ {
		expr = "1 + (" + expr + ")"
	}
	_, err := cc.Compile("int main() { return " + expr + "; }")
	if err == nil {
		t.Fatal("deeply nested expression compiled; expected scratch exhaustion")
	}
	if !strings.Contains(err.Error(), "too complex") {
		t.Errorf("error %q does not mention complexity", err)
	}
}

func TestWhileConditionWithSideEffect(t *testing.T) {
	src := `
int n = 0;
int tick() { n = n + 1; return n; }
int main() {
    while (tick() < 5) {}
    print_int(n);
    return 0;
}`
	mustOutput(t, src, nil, "5\n")
}

func TestModNegativeOperandsMatchC(t *testing.T) {
	src := `
int main() {
    print_int(-7 % 3);
    print_int(7 % -3);
    print_int(-7 % -3);
    return 0;
}`
	mustOutput(t, src, nil, "-1\n1\n-1\n")
}

func TestShortCircuitSkipsCrash(t *testing.T) {
	// The right operand would divide by zero; short-circuit must skip it.
	src := `
int main() {
    int z = 0;
    if (z != 0 && 10 / z > 1) print_int(1); else print_int(2);
    if (z == 0 || 10 / z > 1) print_int(3); else print_int(4);
    return 0;
}`
	mustOutput(t, src, nil, "2\n3\n")
}

func TestEightLevelCalls(t *testing.T) {
	src := `
int f1(int x) { return x + 1; }
int f2(int x) { return f1(x) + 1; }
int f3(int x) { return f2(x) + 1; }
int f4(int x) { return f3(x) + 1; }
int f5(int x) { return f4(x) + 1; }
int f6(int x) { return f5(x) + 1; }
int f7(int x) { return f6(x) + 1; }
int f8(int x) { return f7(x) + 1; }
int main() {
    print_int(f8(0));
    return 0;
}`
	mustOutput(t, src, nil, "8\n")
}
