package asm

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/vm"
)

// Disassemble renders the text segment of a program as an address-annotated
// listing, resolving branch targets to symbol names where possible. This is
// the format used by the §5 case studies (paper Figures 3–6) to show the
// machine code corresponding to a source-level fault.
func Disassemble(p *Program) string {
	labelAt := make(map[uint32][]string)
	for _, s := range p.Symbols {
		if s.Kind == SymText {
			labelAt[s.Addr] = append(labelAt[s.Addr], s.Name)
		}
	}
	var sb strings.Builder
	for i, w := range p.Image.Text {
		addr := TextAddr(i)
		for _, l := range labelAt[addr] {
			fmt.Fprintf(&sb, "%s:\n", l)
		}
		sb.WriteString(FormatWord(p, addr, w))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// FormatWord renders a single instruction word at addr, annotating branch
// targets with the nearest symbol.
func FormatWord(p *Program, addr, w uint32) string {
	in, err := vm.Decode(w)
	if err != nil {
		return fmt.Sprintf("  %06x:  %08x  .illegal", addr, w)
	}
	text := in.String()
	switch in.Op {
	case vm.OpB, vm.OpBl:
		text = fmt.Sprintf("%s %s", in.Op, symFor(p, addr+uint32(in.Off26)))
	case vm.OpBc:
		text = fmt.Sprintf("bc %s,cr%d,%s", vm.Cond(in.RD), in.RA, symFor(p, addr+uint32(in.Imm)))
	}
	return fmt.Sprintf("  %06x:  %08x  %s", addr, w, text)
}

// symFor names an address as "symbol" or "symbol+off" or a raw hex address.
func symFor(p *Program, addr uint32) string {
	if p == nil || len(p.Symbols) == 0 {
		return fmt.Sprintf("%#x", addr)
	}
	// Symbols are sorted by address; find the last one at or below addr.
	i := sort.Search(len(p.Symbols), func(i int) bool { return p.Symbols[i].Addr > addr })
	if i == 0 {
		return fmt.Sprintf("%#x", addr)
	}
	s := p.Symbols[i-1]
	if s.Addr == addr {
		return s.Name
	}
	return fmt.Sprintf("%s+%#x", s.Name, addr-s.Addr)
}
