// Command swifi regenerates the paper's tables and figures.
//
// Usage:
//
//	swifi [-scale 0.1] [-seed 2000] [-mode hw|trap] [-workers N] <experiment>...
//	swifi -list
//	swifi verify <program>
//
// Experiments are named after the paper: table1..table4, fig2, fig7..fig10,
// summary5, fielddist, metrics, or "all". -scale 1.0 reproduces the paper's
// full run counts (108,600 injections for the §6 campaign).
//
// Campaigns are crash-safe when journaled: run with -journal run.wal, kill
// the process at any point (the first SIGINT drains in-flight injections and
// flushes the journal; a second kills immediately), then rerun with
// -journal run.wal -resume — finished injections replay from the journal and
// the final output is byte-identical to an uninterrupted run, under any
// -workers count.
//
// With -isolation=proc the campaign's injections run in supervised worker
// subprocesses (swifi re-executes itself with -worker-mode): a hard host
// failure — OOM-kill, wedge, crash — costs one worker and at most one
// in-flight injection instead of the campaign. Results are bit-identical to
// -isolation=inproc; if the host cannot keep workers alive, the campaign
// degrades back to in-process execution on its own.
//
// Campaigns scale past one host with the fabric: a coordinator started with
// -fabric-listen :9370 plans the campaign and shards it over executors
// started with -fabric-join host:9370 (executors take no experiment
// arguments — the campaign spec crosses the wire), work-stealing from
// stragglers and redelivering a lost host's units. The merged output — and
// the journal, when -journal is given — is byte-identical to a single-host
// run. -heartbeat-interval and -heartbeat-timeout tune liveness for both
// worker subprocesses and fabric links.
//
// Campaigns are observable without changing their results: -progress draws
// a live tally line on stderr (on by default on a terminal), -trace
// streams structured per-injection events as JSON lines, -debug-addr
// serves Prometheus-style /metrics plus expvar and pprof over HTTP, and
// -report writes a machine-readable end-of-run JSON summary.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/injector"
	"repro/internal/journal"
	"repro/internal/telemetry"
	"repro/internal/worker"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "swifi:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("swifi", flag.ContinueOnError)
	scale := fs.Float64("scale", 0.1, "fraction of the paper's run counts (1.0 = full scale)")
	seed := fs.Int64("seed", 2000, "random seed for location choice and input generation")
	mode := fs.String("mode", "hw", "injector trigger mode: hw (breakpoint registers) or trap")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "parallel campaign workers (1 = serial; results are identical for any count)")
	list := fs.Bool("list", false, "list experiment identifiers and exit")
	verifyCases := fs.Int("verify-cases", 50, "input count for 'verify <program>'")
	noFFwd := fs.Bool("no-ffwd", false, "disable golden-run checkpointing (full replay per injection)")
	interpOnly := fs.Bool("interp-only", false, "disable the block-compiled VM engine (per-instruction interpreter; results are identical)")
	journalPath := fs.String("journal", "", "journal the §6 campaign to this file (crash-safe; see -resume)")
	resume := fs.Bool("resume", false, "resume the campaign from an existing -journal file")
	unitTimeout := fs.Duration("unit-timeout", 0, "host wall-clock deadline per injection (0 = off); exceeding units are quarantined")
	isolation := fs.String("isolation", "inproc", "campaign unit execution: inproc (goroutines) or proc (supervised worker subprocesses)")
	procMaxDeliveries := fs.Int("proc-max-deliveries", 0, "with -isolation=proc: workers a unit may take down before quarantine (0 = default 2; chaos drills want headroom)")
	procMaxRestarts := fs.Int("proc-max-restarts", 0, "with -isolation=proc: pool-wide worker restart budget before degrading to in-process (0 = default 2×workers)")
	workerMode := fs.Bool("worker-mode", false, "internal: serve campaign units over stdin/stdout (spawned by -isolation=proc)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	version := fs.Bool("version", false, "print the binary version and exit")
	tf := cliutil.AddTelemetryFlags(fs)
	hb := cliutil.AddHeartbeatFlags(fs)
	fab := cliutil.AddFabricFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workerMode {
		return worker.Serve(os.Stdin, os.Stdout, campaign.WorkerFactory)
	}
	if *version {
		cliutil.PrintVersion("swifi")
		return nil
	}
	procIsolation, err := cliutil.ParseIsolation(*isolation)
	if err != nil {
		return err
	}
	if err := cliutil.ValidateWorkers(*workers); err != nil {
		return err
	}
	if err := cliutil.ValidateUnitTimeout(fs, "unit-timeout", *unitTimeout); err != nil {
		return err
	}
	if err := cliutil.ValidateResume(*resume, *journalPath); err != nil {
		return err
	}
	if err := hb.Validate(); err != nil {
		return err
	}
	if err := fab.Validate(); err != nil {
		return err
	}
	if err := cliutil.ValidateFabricTelemetry(fab, tf); err != nil {
		return err
	}
	stopProf, err := cliutil.StartProfiles("swifi", *cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProf()
	if *list {
		fmt.Println(strings.Join(core.ExperimentIDs(), "\n"))
		return nil
	}
	tel, telCleanup, err := tf.Setup("swifi")
	if err != nil {
		return err
	}
	defer telCleanup()
	rest := fs.Args()
	if len(rest) == 0 && fab.Join == "" {
		return fmt.Errorf("no experiment given; try -list, 'all', or 'verify <program>'")
	}

	// First SIGINT/SIGTERM cancels the context: campaigns stop handing out
	// units, drain in-flight ones, flush the journal and print partial
	// tallies. A second signal restores default handling, so it kills the
	// process the ordinary way.
	ctx, stopSignals := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stopSignals()
	go func() {
		<-ctx.Done()
		stopSignals()
	}()

	chaosCfg, err := fab.ChaosConfig()
	if err != nil {
		return err
	}
	// The storage/IPC half of -chaos: one process-wide injector shared by
	// the journal and sidecar handles, the golden checkpoint poisoner and
	// the proc-isolation pipes, so every plane draws from the same seed.
	// nil unless the spec carries disk.*, pipe.* or poison keys.
	storageChaos, err := fab.StorageChaos(tel.Registry())
	if err != nil {
		return err
	}

	if fab.Join != "" {
		// Executor mode: everything about the campaign — programs, scale,
		// seed, mode — comes from the coordinator's spec; only local
		// execution knobs apply here.
		jo := campaign.JoinOptions{
			Workers:         *workers,
			DialTimeout:     fab.DialTimeout,
			ReconnectWindow: fab.ReconnectWindow,
			Chaos:           chaosCfg,
			Registry:        tel.Registry(),
			Tracer:          tel.Tracer(),
			Log: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "swifi: "+format+"\n", args...)
			},
		}
		if procIsolation {
			jo.Isolation = campaign.IsolationProc
			jo.Proc = &campaign.ProcOptions{
				HeartbeatInterval: hb.Interval,
				HeartbeatTimeout:  hb.Timeout,
				MaxDeliveries:     *procMaxDeliveries,
				MaxRestarts:       *procMaxRestarts,
			}
		}
		return campaign.JoinFabric(ctx, fab.Join, jo)
	}

	e := core.New(*scale)
	e.Seed = *seed
	e.Workers = *workers
	e.NoFastForward = *noFFwd
	e.InterpOnly = *interpOnly
	e.Ctx = ctx
	e.UnitTimeout = *unitTimeout
	e.Telemetry = tel
	e.StorageChaos = storageChaos
	if procIsolation {
		e.Isolation = campaign.IsolationProc
		e.Proc = &campaign.ProcOptions{
			HeartbeatInterval: hb.Interval,
			HeartbeatTimeout:  hb.Timeout,
			MaxDeliveries:     *procMaxDeliveries,
			MaxRestarts:       *procMaxRestarts,
			WrapPipes:         cliutil.PipeWrap(storageChaos),
		}
	}
	if fab.Listen != "" {
		e.Fabric = &campaign.FabricOptions{
			Listen:            fab.Listen,
			MinHosts:          fab.Hosts,
			HeartbeatInterval: hb.Interval,
			HeartbeatTimeout:  hb.Timeout,
			SessionTimeout:    fab.SessionTimeout,
			Chaos:             chaosCfg,
		}
	}
	switch *mode {
	case "hw":
		e.Mode = injector.ModeHardware
	case "trap":
		e.Mode = injector.ModeTrap
	default:
		return fmt.Errorf("unknown mode %q (hw or trap)", *mode)
	}

	if *journalPath != "" {
		var j *journal.Journal
		var err error
		// Under disk chaos the journal's own file handle is wrapped: the
		// WAL must survive the disk faults it exists to absorb (ENOSPC and
		// friends degrade it to in-memory mode; the campaign continues).
		wrap := cliutil.JournalWrap(storageChaos)
		if *resume {
			j, err = journal.OpenWrapped(*journalPath, wrap)
		} else {
			j, err = journal.CreateWrapped(*journalPath, wrap)
		}
		if err != nil {
			return err
		}
		defer j.Close()
		if *resume && j.Len() > 0 {
			fmt.Fprintf(os.Stderr, "swifi: journal %s holds %d finished injections; replaying them\n",
				*journalPath, j.Len())
		}
		e.Journal = j
	}

	rep := telemetry.NewReport("swifi")
	rep.Params["scale"] = strconv.FormatFloat(*scale, 'g', -1, 64)
	rep.Params["seed"] = strconv.FormatInt(*seed, 10)
	rep.Params["mode"] = *mode
	rep.Params["workers"] = strconv.Itoa(*workers)
	rep.Params["isolation"] = *isolation
	rep.Params["args"] = strings.Join(rest, " ")

	if rest[0] == "verify" {
		if len(rest) != 2 {
			return fmt.Errorf("usage: swifi verify <program>")
		}
		out, err := e.VerifyRealFault(rest[1], *verifyCases)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return tf.WriteReport(rep, tel)
	}

	ids := rest
	if len(ids) == 1 && ids[0] == "all" {
		ids = core.ExperimentIDs()
	}
	for _, id := range ids {
		start := time.Now()
		out, err := e.Experiment(id)
		if err != nil {
			var ie *campaign.InterruptedError
			if errors.As(err, &ie) {
				reportInterrupt(ie, *journalPath)
				rep.Interrupted = true
				campaign.FillReport(rep, ie.Partial)
				if werr := tf.WriteReport(rep, tel); werr != nil {
					fmt.Fprintln(os.Stderr, "swifi: report:", werr)
				}
				return err
			}
			return err
		}
		fmt.Println(out)
		fmt.Fprintf(os.Stderr, "[%s took %s]\n", id, time.Since(start).Round(time.Millisecond))
	}
	if res := e.CachedCampaignResult(); res != nil {
		campaign.FillReport(rep, res)
		if res.Exec.Replayed > 0 {
			fmt.Fprintf(os.Stderr, "swifi: resume: %d injections replayed from the journal, %d executed this run\n",
				res.Exec.Replayed, res.Runs-res.Exec.Replayed)
		}
	}
	if s := e.ResilienceSummary(); s != "" {
		fmt.Fprintln(os.Stderr, "swifi:", s)
	}
	return tf.WriteReport(rep, tel)
}

// reportInterrupt prints the partial per-mode tallies of an interrupted
// campaign and, when a journal was in use, how to resume it.
func reportInterrupt(ie *campaign.InterruptedError, journalPath string) {
	fmt.Fprintf(os.Stderr, "swifi: interrupted: %d of %d injections finished\n", ie.Done, ie.Total)
	if ie.Partial != nil && ie.Done > 0 {
		counts := make(map[campaign.FailureMode]int)
		for i := range ie.Partial.Entries {
			for m, n := range ie.Partial.Entries[i].Counts {
				counts[m] += n
			}
		}
		fmt.Fprintf(os.Stderr, "swifi: partial tallies: %s\n", telemetry.FormatTally(campaign.ModeTally(counts)))
	}
	if journalPath != "" {
		fmt.Fprintf(os.Stderr, "swifi: finished injections are journaled; resume with: swifi -journal %s -resume ...\n", journalPath)
	} else {
		fmt.Fprintln(os.Stderr, "swifi: no -journal was given, so this progress is lost; journal the next run to make it resumable")
	}
}
