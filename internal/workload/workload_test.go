package workload_test

import (
	"testing"

	"repro/internal/programs"
	"repro/internal/workload"
)

func TestGenerateDeterministic(t *testing.T) {
	for _, kind := range []programs.Kind{programs.KindCamelot, programs.KindJamesB, programs.KindSOR} {
		a, err := workload.Generate(kind, 20, 7)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		b, err := workload.Generate(kind, 20, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != 20 {
			t.Fatalf("%v: got %d cases", kind, len(a))
		}
		for i := range a {
			if a[i].Golden != b[i].Golden {
				t.Fatalf("%v case %d differs between identical seeds", kind, i)
			}
			if len(a[i].Golden) == 0 {
				t.Errorf("%v case %d has empty golden output", kind, i)
			}
		}
		c, err := workload.Generate(kind, 20, 8)
		if err != nil {
			t.Fatal(err)
		}
		same := true
		for i := range a {
			if a[i].Golden != c[i].Golden {
				same = false
			}
		}
		if same {
			t.Errorf("%v: different seeds produced identical cases", kind)
		}
	}
}

func TestGenerateUnknownKind(t *testing.T) {
	if _, err := workload.Generate(programs.Kind(99), 1, 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestCamelotInputsWellFormed(t *testing.T) {
	cases, err := workload.Generate(programs.KindCamelot, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	sawZero, sawMax := false, false
	for _, c := range cases {
		ints := c.Input.Ints
		n := ints[0]
		if n < 0 || n > 8 {
			t.Fatalf("knight count %d out of range", n)
		}
		if n == 0 {
			sawZero = true
		}
		if n == 8 {
			sawMax = true
		}
		if len(ints) != int(3+2*n) {
			t.Fatalf("input length %d for n=%d", len(ints), n)
		}
		for _, v := range ints[1:] {
			if v < 0 || v > 7 {
				t.Fatalf("coordinate %d off board", v)
			}
		}
	}
	if !sawZero || !sawMax {
		t.Errorf("knight counts not spread (zero=%v max=%v)", sawZero, sawMax)
	}
}

func TestJamesBInputDistribution(t *testing.T) {
	cases, err := workload.Generate(programs.KindJamesB, 5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	neg, max80 := 0, 0
	for _, c := range cases {
		seed, length := c.Input.Ints[0], c.Input.Ints[1]
		if int(length) != len(c.Input.Bytes) {
			t.Fatalf("length %d but %d bytes", length, len(c.Input.Bytes))
		}
		if length < 1 || length > 80 {
			t.Fatalf("length %d out of range", length)
		}
		if seed < 0 {
			neg++
		}
		if length == 80 {
			max80++
		}
		for _, b := range c.Input.Bytes {
			if b == 0 || b < 32 || b > 126 {
				t.Fatalf("non-printable byte %d in input", b)
			}
		}
	}
	// The distribution is tuned for the Table 1 rarities: ~2% negative
	// seeds, ~1% maximum-length strings.
	if neg < 50 || neg > 200 {
		t.Errorf("negative seeds = %d of 5000, want ~100", neg)
	}
	if max80 < 10 || max80 > 120 {
		t.Errorf("length-80 strings = %d of 5000, want ~50", max80)
	}
}

func TestSORInputsWellFormed(t *testing.T) {
	cases, err := workload.Generate(programs.KindSOR, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		ints := c.Input.Ints
		if len(ints) != 5 {
			t.Fatalf("sor input has %d ints", len(ints))
		}
		if ints[0] < 4 || ints[0] > 12 {
			t.Fatalf("iterations %d out of range", ints[0])
		}
		for _, b := range ints[1:] {
			if b < 0 || b > 1000 {
				t.Fatalf("boundary %d out of range", b)
			}
		}
	}
}

func TestContestCases(t *testing.T) {
	for _, kind := range []programs.Kind{programs.KindCamelot, programs.KindJamesB, programs.KindSOR} {
		cases, err := workload.ContestCases(kind)
		if err != nil {
			t.Fatal(err)
		}
		if len(cases) != workload.ContestCaseCount {
			t.Errorf("%v: %d contest cases, want %d", kind, len(cases), workload.ContestCaseCount)
		}
	}
}
