package programs

// sorSource is the red-black successive over-relaxation solver, the suite's
// "real life program": the largest target, dominated by dense array
// indexing in nested loops — the structure behind the paper's observation
// that SOR is particularly crash-prone under checking faults (corrupted
// index comparisons walk off the grid).
//
// The paper ran SOR on four CPUs under Parix; the red-black ordering is
// what made it parallelisable. This version keeps that decomposition
// visible: each sweep is split across two half-grid "workers"
// (sweep_rows), preserving the parallel version's data-access pattern in a
// single thread of execution (see DESIGN.md).
// No real fault.
const sorSource = `
/* SOR - red-black successive over-relaxation for the Laplace equation.    */
/* Fixed point: values are scaled by 16. Grid is 18x18 with a fixed        */
/* boundary; the 16x16 interior relaxes with omega = 3/2. After iterating, */
/* the program reports the interior, the residual history, grid            */
/* statistics, a checksum and the final residual.                          */

int grid[18][18];
int history[64];

void clear_interior() {
    int i; int j;
    for (i = 1; i < 17; i++) {
        for (j = 1; j < 17; j++) {
            grid[i][j] = 0;
        }
    }
}

void set_boundary(int top, int bottom, int left, int right) {
    int i; int j;
    for (j = 0; j < 18; j++) {
        grid[0][j] = top * 16;
        grid[17][j] = bottom * 16;
    }
    for (i = 0; i < 18; i++) {
        grid[i][0] = left * 16;
        grid[i][17] = right * 16;
    }
}

int average(int i, int j) {
    return (grid[i - 1][j] + grid[i + 1][j] + grid[i][j - 1] + grid[i][j + 1]) / 4;
}

/* sweep_rows relaxes the cells of one colour inside a band of rows; the   */
/* parallel version of this program gave each worker CPU such a band.      */
void sweep_rows(int parity, int row0, int row1) {
    int i; int j; int avg;
    for (i = row0; i < row1; i++) {
        for (j = 1; j < 17; j++) {
            if ((i + j) % 2 == parity) {
                avg = average(i, j);
                grid[i][j] = grid[i][j] + 3 * (avg - grid[i][j]) / 2;
            }
        }
    }
}

void sweep(int parity) {
    sweep_rows(parity, 1, 9);
    sweep_rows(parity, 9, 17);
}

int residual() {
    int i; int j; int d; int sum;
    sum = 0;
    for (i = 1; i < 17; i++) {
        for (j = 1; j < 17; j++) {
            d = average(i, j) - grid[i][j];
            if (d < 0) {
                d = -d;
            }
            sum = sum + d;
        }
    }
    return sum;
}

void iterate(int rounds) {
    int r;
    for (r = 0; r < rounds; r++) {
        sweep(0);
        sweep(1);
        history[r] = residual();
    }
}

int grid_min() {
    int i; int j; int m;
    m = grid[1][1];
    for (i = 1; i < 17; i++) {
        for (j = 1; j < 17; j++) {
            if (grid[i][j] < m) {
                m = grid[i][j];
            }
        }
    }
    return m;
}

int grid_max() {
    int i; int j; int m;
    m = grid[1][1];
    for (i = 1; i < 17; i++) {
        for (j = 1; j < 17; j++) {
            if (grid[i][j] > m) {
                m = grid[i][j];
            }
        }
    }
    return m;
}

int grid_avg() {
    int i; int j; int sum;
    sum = 0;
    for (i = 1; i < 17; i++) {
        for (j = 1; j < 17; j++) {
            sum = sum + grid[i][j];
        }
    }
    return sum / 256;
}

int checksum() {
    int i; int j; int acc;
    acc = 0;
    for (i = 1; i < 17; i++) {
        for (j = 1; j < 17; j++) {
            acc = (acc * 31 + grid[i][j]) % 1000003;
        }
    }
    return acc;
}

void print_interior() {
    int i; int j;
    for (i = 1; i < 17; i++) {
        for (j = 1; j < 17; j++) {
            print_int(grid[i][j]);
        }
    }
}

void print_history(int rounds) {
    int r;
    for (r = 0; r < rounds; r++) {
        print_int(history[r]);
    }
}

int main() {
    int rounds; int top; int bottom; int left; int right;
    rounds = read_int();
    top = read_int();
    bottom = read_int();
    left = read_int();
    right = read_int();
    clear_interior();
    set_boundary(top, bottom, left, right);
    iterate(rounds);
    print_interior();
    print_history(rounds);
    print_int(grid_min());
    print_int(grid_max());
    print_int(grid_avg());
    print_int(checksum());
    print_int(residual());
    return 0;
}
`
