package campaign

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/journal"
)

// freeLoopbackAddr reserves a loopback port for the coordinator. The
// bind-close-rebind window is racy in principle, but the port is only
// handed to this test's own coordinator immediately after.
func freeLoopbackAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// joinUntilDone keeps an executor joined at addr until the campaign
// completes, retrying while the coordinator has not bound yet (the
// coordinator only starts listening after planning).
func joinUntilDone(ctx context.Context, t *testing.T, addr string, opts JoinOptions) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		err := JoinFabric(ctx, addr, opts)
		if err == nil || ctx.Err() != nil {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("executor %s never completed: %v", opts.Name, err)
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func fabricConfig(addr string, hosts int) Config {
	cfg := isolationConfig()
	cfg.Fabric = &FabricOptions{
		Listen:            addr,
		MinHosts:          hosts,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
	}
	return cfg
}

// TestFabricMatchesInProc is the distributed tentpole's core contract: a
// campaign sharded over two loopback executors must reproduce the
// in-process campaign bit for bit — same entries, same counts, same
// ExecStats.
func TestFabricMatchesInProc(t *testing.T) {
	ref, err := Run(isolationConfig())
	if err != nil {
		t.Fatal(err)
	}
	addr := freeLoopbackAddr(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for _, name := range []string{"exec-a", "exec-b"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			joinUntilDone(ctx, t, addr, JoinOptions{Name: name, Workers: 2})
		}(name)
	}
	res, err := Run(fabricConfig(addr, 2))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	wg.Wait()
	if !sameEntries(res, ref) {
		t.Error("the fabric changed the campaign outcome")
	}
	if res.Exec != ref.Exec {
		t.Errorf("fabric ExecStats %+v, in-process %+v", res.Exec, ref.Exec)
	}
}

// TestFabricJournalMatchesSerial: the canonicalized journal of a two-host
// fabric campaign must be byte-identical to the journal a serial (one
// worker, in-process) run writes naturally in unit order — the merge's
// determinism pinned at the file level.
func TestFabricJournalMatchesSerial(t *testing.T) {
	serialPath := filepath.Join(t.TempDir(), "serial.wal")
	js, err := journal.Create(serialPath)
	if err != nil {
		t.Fatal(err)
	}
	serial := isolationConfig()
	serial.Workers = 1
	serial.Journal = js
	if _, err := Run(serial); err != nil {
		t.Fatal(err)
	}
	if err := js.Close(); err != nil {
		t.Fatal(err)
	}

	fabricPath := filepath.Join(t.TempDir(), "fabric.wal")
	jf, err := journal.Create(fabricPath)
	if err != nil {
		t.Fatal(err)
	}
	addr := freeLoopbackAddr(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for _, name := range []string{"exec-a", "exec-b"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			joinUntilDone(ctx, t, addr, JoinOptions{Name: name, Workers: 2})
		}(name)
	}
	cfg := fabricConfig(addr, 2)
	cfg.Journal = jf
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	cancel()
	wg.Wait()
	if err := jf.Close(); err != nil {
		t.Fatal(err)
	}

	want, err := os.ReadFile(serialPath)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(fabricPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 || len(got) == 0 {
		t.Fatal("a journal is empty; the comparison proves nothing")
	}
	if string(got) != string(want) {
		t.Fatalf("fabric journal (%d bytes) differs from the serial journal (%d bytes)", len(got), len(want))
	}
}

// TestFabricResumesJournal: a fabric campaign over a partially filled
// journal replays the journaled units and only shards the remainder,
// landing on the same Result.
func TestFabricResumesJournal(t *testing.T) {
	ref, err := Run(isolationConfig())
	if err != nil {
		t.Fatal(err)
	}

	// First pass: interrupt a serial journaled run after 2 units.
	path := filepath.Join(t.TempDir(), "resume.wal")
	j, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	j.OnAppend = func(done int) {
		if done >= 2 {
			cancel1()
		}
	}
	first := isolationConfig()
	first.Workers = 1
	first.Ctx = ctx1
	first.Journal = j
	if _, err := Run(first); err == nil {
		cancel1()
		t.Fatal("interrupted run finished cleanly; the resume would be vacuous")
	}
	cancel1()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Second pass: resume the journal under the fabric.
	j2, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	addr := freeLoopbackAddr(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		joinUntilDone(ctx, t, addr, JoinOptions{Name: "exec-a", Workers: 2})
	}()
	cfg := fabricConfig(addr, 1)
	cfg.Journal = j2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	wg.Wait()
	if res.Exec.Replayed < 2 {
		t.Errorf("replayed %d units, want at least the 2 journaled before the interrupt", res.Exec.Replayed)
	}
	if !sameEntries(res, ref) {
		t.Error("resuming a journal under the fabric changed the campaign outcome")
	}
}
