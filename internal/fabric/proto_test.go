package fabric

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/telemetry"
	"repro/internal/worker"
)

func TestHelloRoundTrip(t *testing.T) {
	in := hello{
		Version:           ProtocolVersion,
		HeartbeatInterval: 250 * time.Millisecond,
		HeartbeatTimeout:  5 * time.Second,
		Spec: worker.Spec{
			Kind:        "campaign/v1",
			Fingerprint: 0xdeadbeefcafef00d,
			Payload:     []byte(`{"seed":42}`),
		},
	}
	out, err := decodeHello(encodeHello(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Version != in.Version || out.HeartbeatInterval != in.HeartbeatInterval ||
		out.HeartbeatTimeout != in.HeartbeatTimeout || out.Spec.Kind != in.Spec.Kind ||
		out.Spec.Fingerprint != in.Spec.Fingerprint || !bytes.Equal(out.Spec.Payload, in.Spec.Payload) {
		t.Fatalf("round trip mismatch: %+v != %+v", out, in)
	}
}

func TestHelloTruncated(t *testing.T) {
	full := encodeHello(hello{Version: 1, Spec: worker.Spec{Kind: "k", Payload: []byte("pp")}})
	for cut := 0; cut < len(full); cut++ {
		if _, err := decodeHello(full[:cut]); err == nil {
			t.Fatalf("decodeHello accepted a %d-byte prefix of a %d-byte frame", cut, len(full))
		}
	}
}

func TestReadyRoundTrip(t *testing.T) {
	in := ready{Version: ProtocolVersion, Fingerprint: 0x0123456789abcdef, Units: 991, Workers: 8, Token: 0xfeedface, Name: "host-b"}
	out, err := decodeReady(encodeReady(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip mismatch: %+v != %+v", out, in)
	}
	if _, err := decodeReady(encodeReady(in)[:19]); err == nil {
		t.Fatal("decodeReady accepted a short frame")
	}
}

func TestWelcomeRoundTrip(t *testing.T) {
	for _, in := range []welcome{
		{Token: 1},
		{Token: 0xdead0001, Resumed: true, Acked: 977},
	} {
		out, err := decodeWelcome(encodeWelcome(in))
		if err != nil {
			t.Fatal(err)
		}
		if out != in {
			t.Fatalf("round trip mismatch: %+v != %+v", out, in)
		}
	}
	if _, err := decodeWelcome(encodeWelcome(welcome{Token: 9})[:12]); err == nil {
		t.Fatal("decodeWelcome accepted a short frame")
	}
}

func TestAckRoundTrip(t *testing.T) {
	for _, in := range []uint32{0, 1, 1 << 30} {
		out, err := decodeAck(encodeAck(in))
		if err != nil {
			t.Fatal(err)
		}
		if out != in {
			t.Fatalf("round trip mismatch: %d != %d", out, in)
		}
	}
	if _, err := decodeAck([]byte{1, 2, 3}); err == nil {
		t.Fatal("decodeAck accepted a short frame")
	}
}

func TestVerdictRoundTrip(t *testing.T) {
	cases := []verdict{
		{Unit: 0, Outcome: journal.Outcome{Mode: 1}},
		{Seq: 41, Unit: 7, Outcome: journal.Outcome{Mode: 5, Activated: true, Retried: true}},
		{Seq: 1 << 20, Unit: 123456, Outcome: journal.Outcome{Mode: 3, Degraded: true}, Payload: []byte("case output")},
	}
	for _, in := range cases {
		out, err := decodeVerdict(encodeVerdict(in))
		if err != nil {
			t.Fatal(err)
		}
		if out.Seq != in.Seq || out.Unit != in.Unit || out.Outcome != in.Outcome || !bytes.Equal(out.Payload, in.Payload) {
			t.Fatalf("round trip mismatch: %+v != %+v", out, in)
		}
	}
	if _, err := decodeVerdict(encodeVerdict(cases[2])[:12]); err == nil {
		t.Fatal("decodeVerdict accepted a truncated payload")
	}
}

func TestRunsRoundTrip(t *testing.T) {
	cases := [][]int{
		nil,
		{0},
		{0, 1, 2, 3},
		{5, 6, 7, 100, 101, 9000},
		{2, 4, 6, 8},
	}
	for _, in := range cases {
		out, err := decodeRuns(encodeRuns(in), 10000)
		if err != nil {
			t.Fatalf("units %v: %v", in, err)
		}
		if len(in) == 0 {
			if len(out) != 0 {
				t.Fatalf("empty set decoded to %v", out)
			}
			continue
		}
		if !reflect.DeepEqual(out, in) {
			t.Fatalf("round trip mismatch: %v != %v", out, in)
		}
	}
}

func TestRunsExpansionBound(t *testing.T) {
	// One run of 1000 units must not decode under a 10-unit plan.
	b := encodeRuns(seqUnits(0, 1000))
	if _, err := decodeRuns(b, 10); err == nil {
		t.Fatal("decodeRuns expanded past maxUnits")
	}
}

func seqUnits(start, n int) []int {
	units := make([]int, n)
	for i := range units {
		units[i] = start + i
	}
	return units
}

// FuzzDecoders feeds arbitrary payloads to every fabric frame decoder.
// None may panic, and an accepted run-set must never expand past the
// maxUnits bound no matter what the frame claims.
func FuzzDecoders(f *testing.F) {
	f.Add(encodeHello(hello{Version: 1, Spec: worker.Spec{Kind: "k", Payload: []byte("p")}}))
	f.Add(encodeReady(ready{Version: 2, Token: 7, Name: "n"}))
	f.Add(encodeVerdict(verdict{Seq: 5, Unit: 3, Payload: []byte("out")}))
	f.Add(encodeWelcome(welcome{Token: 12, Resumed: true, Acked: 44}))
	f.Add(encodeAck(99))
	f.Add(encodeSideSession(3, 2, "host"))
	f.Add(encodeSideUnits(3, []int{0, 1, 2, 9, 10}))
	f.Add(encodeRuns([]int{0, 1, 2, 9, 10}))
	f.Add(encodeSnapshot(1722000000000000, []snapEntry{
		{Name: "fabric_units_executed_total", Value: 31},
		{Name: "chaos_conn_drops_total", Value: 2},
	}))
	f.Add(encodeTraceEvents(1722000000000000, []telemetry.Event{
		{T: time.UnixMicro(1722000000000001), Kind: "executed", Unit: 5, Case: 2, Worker: 1, DurUS: 99, Program: "tritype", Fault: "MFC-1", Mode: "crash"},
	}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		decodeHello(data)
		decodeReady(data)
		decodeVerdict(data)
		decodeWelcome(data)
		decodeAck(data)
		decodeSideSession(data)
		decodeSideExpire(data)
		const maxSideUnits = 128
		if _, units, err := decodeSideUnits(data, maxSideUnits); err == nil && len(units) > maxSideUnits {
			t.Fatalf("decodeSideUnits returned %d units past the %d bound", len(units), maxSideUnits)
		}
		const maxUnits = 128
		if units, err := decodeRuns(data, maxUnits); err == nil && len(units) > maxUnits {
			t.Fatalf("decodeRuns returned %d units past the %d bound", len(units), maxUnits)
		}
		const maxFed = 16
		if _, entries, err := decodeSnapshot(data, maxFed); err == nil && len(entries) > maxFed {
			t.Fatalf("decodeSnapshot returned %d entries past the %d bound", len(entries), maxFed)
		}
		if _, evs, err := decodeTraceEvents(data, maxFed); err == nil && len(evs) > maxFed {
			t.Fatalf("decodeTraceEvents returned %d events past the %d bound", len(evs), maxFed)
		}
	})
}
