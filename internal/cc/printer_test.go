package cc_test

import (
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/programs"
	"repro/internal/vm"
)

// runSource compiles and runs source with the given inputs, returning the
// output. Fails the test on compile errors or abnormal termination.
func runSource(t *testing.T, src string, ints []int32, bytes []byte) string {
	t.Helper()
	c, err := cc.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	m := vm.New(vm.Config{})
	if err := m.Load(c.Prog.Image); err != nil {
		t.Fatal(err)
	}
	m.SetInput(ints)
	m.SetByteInput(bytes)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.State() != vm.StateHalted {
		t.Fatalf("state %v\n%s", m.State(), src)
	}
	return string(m.Output())
}

// TestPrintRoundTripIdempotent: print(parse(print(parse(src)))) equals
// print(parse(src)) — one round trip normalises, further trips are stable.
func TestPrintRoundTripIdempotent(t *testing.T) {
	for _, p := range programs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			ast1, err := cc.Parse(p.Source)
			if err != nil {
				t.Fatal(err)
			}
			printed1 := cc.Print(ast1)
			ast2, err := cc.Parse(printed1)
			if err != nil {
				t.Fatalf("printed source does not re-parse: %v\n%s", err, printed1)
			}
			printed2 := cc.Print(ast2)
			if printed1 != printed2 {
				t.Errorf("printing is not idempotent for %s", p.Name)
			}
		})
	}
}

// TestPrintedSourceBehaviourEquivalent: the printed form of every suite
// program compiles and produces the same output as the original on real
// inputs.
func TestPrintedSourceBehaviourEquivalent(t *testing.T) {
	inputs := map[programs.Kind]struct {
		ints  []int32
		bytes []byte
	}{
		programs.KindCamelot: {ints: []int32{3, 4, 4, 0, 0, 7, 7, 3, 5}},
		programs.KindJamesB:  {ints: []int32{123, 11}, bytes: []byte("Hello There")},
		programs.KindSOR:     {ints: []int32{5, 100, 0, 250, 990}},
	}
	for _, p := range programs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			in := inputs[p.Kind]
			ast, err := cc.Parse(p.Source)
			if err != nil {
				t.Fatal(err)
			}
			printed := cc.Print(ast)
			want := runSource(t, p.Source, in.ints, in.bytes)
			got := runSource(t, printed, in.ints, in.bytes)
			if got != want {
				t.Errorf("printed %s behaves differently:\n got %q\nwant %q", p.Name, got, want)
			}
		})
	}
}

func TestPrintShapes(t *testing.T) {
	src := `
int g = 5;
char buf[10];
int *p;
int m[2][3];
int f(int a, char *s) {
    int i;
    for (i = 0; i < a; i++) {
        if (s[i] == 0) break; else continue;
    }
    while (a > 0) a--;
    return a ? -a : g;
}
void main() {
    print_int(f(3, "hi"));
    return;
}`
	ast, err := cc.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := cc.Print(ast)
	for _, want := range []string{
		"int g = 5;", "char buf[10];", "int *p;", "int m[2][3];",
		"int f(int a, char *s) {", "void main(void) {",
		"break;", "continue;", "while (", "for (", "return (",
		`f(3, "hi")`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printed source missing %q:\n%s", want, out)
		}
	}
}
