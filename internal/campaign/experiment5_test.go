package campaign_test

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/injector"
	"repro/internal/odc"
	"repro/internal/programs"
	"repro/internal/workload"
)

// mkCase builds a workload case from a raw input via the program's oracle.
func mkCase(t *testing.T, kind programs.Kind, ints []int32, bytes []byte) workload.Case {
	t.Helper()
	in := programs.Input{Ints: ints, Bytes: bytes}
	golden, err := kind.Oracle()(in)
	if err != nil {
		t.Fatal(err)
	}
	return workload.Case{Input: in, Golden: golden}
}

// exposingCases returns, per program, a case set that includes inputs known
// to expose the real fault (found by intensive search) plus the contest
// cases (where the fault stays dormant).
func exposingCases(t *testing.T, p *programs.Program) []workload.Case {
	t.Helper()
	contest, err := workload.ContestCases(p.Kind)
	if err != nil {
		t.Fatal(err)
	}
	switch p.Name {
	case "C.team1":
		return append(contest,
			mkCase(t, p.Kind, []int32{8, 0, 2, 2, 6, 0, 5, 6, 6, 2, 1, 3, 4, 4, 7, 6, 0, 5, 0}, nil),
			mkCase(t, p.Kind, []int32{8, 0, 6, 5, 2, 4, 0, 6, 3, 2, 7, 4, 7, 3, 3, 4, 5, 4, 2}, nil),
		)
	case "C.team4":
		return append(contest,
			mkCase(t, p.Kind, []int32{5, 7, 2, 2, 6, 3, 5, 0, 1, 0, 6, 1, 2}, nil),
			mkCase(t, p.Kind, []int32{4, 7, 6, 7, 1, 5, 2, 1, 2, 1, 0}, nil),
		)
	case "JB.team6":
		return append(contest,
			mkCase(t, p.Kind, []int32{-272473, 80}, []byte("Iq9pvnnTxknpxzh-ncesHD3pCbQruW.e-hrjfmcyh .fx-zGsqqW.-QaPY7XU y2ldCajXmDorlc5bfd")),
			mkCase(t, p.Kind, []int32{-677774, 80}, []byte("bhn6CGKqa!aiZ!eKaIRNjpYaa-u-t!zkvs6Mzewpnlrbw1b.tcqkTalf7gzyXRqrXscldsxqbhfa4wYe")),
		)
	}
	t.Fatalf("no exposing cases recorded for %s", p.Name)
	return nil
}

func mustProgram(t *testing.T, name string) *programs.Program {
	t.Helper()
	p, ok := programs.ByName(name)
	if !ok {
		t.Fatalf("program %s missing", name)
	}
	return p
}

func TestBuildEmulationVerdicts(t *testing.T) {
	tests := []struct {
		program    string
		odcType    odc.DefectType
		verdict    odc.EmulationVerdict
		hasFault   bool
		needsTraps bool
	}{
		{"C.team1", odc.Checking, odc.Emulable, true, false},
		{"C.team4", odc.Assignment, odc.Emulable, true, false},
		{"JB.team6", odc.Assignment, odc.EmulableWithSupport, true, true},
		{"C.team2", odc.Algorithm, odc.NotEmulable, false, false},
		{"C.team3", odc.Algorithm, odc.NotEmulable, false, false},
		{"C.team5", odc.Algorithm, odc.NotEmulable, false, false},
		{"JB.team7", odc.Algorithm, odc.NotEmulable, false, false},
	}
	for _, tt := range tests {
		t.Run(tt.program, func(t *testing.T) {
			em, err := campaign.BuildEmulation(mustProgram(t, tt.program))
			if err != nil {
				t.Fatal(err)
			}
			if em.ODCType != tt.odcType {
				t.Errorf("ODC type = %v, want %v", em.ODCType, tt.odcType)
			}
			if em.Verdict != tt.verdict {
				t.Errorf("verdict = %v, want %v", em.Verdict, tt.verdict)
			}
			if (em.Fault != nil) != tt.hasFault {
				t.Errorf("fault present = %v, want %v", em.Fault != nil, tt.hasFault)
			}
			if em.NeedsTraps != tt.needsTraps {
				t.Errorf("needsTraps = %v, want %v (triggers %d)", em.NeedsTraps, tt.needsTraps, em.Triggers)
			}
			if em.Evidence == "" {
				t.Error("no evidence recorded")
			}
		})
	}
}

// TestEmulationEquivalence is the heart of §5: for the emulable faults, the
// corrected binary plus the injected fault must behave exactly like the
// faulty binary — including on the inputs where the bug bites.
func TestEmulationEquivalence(t *testing.T) {
	for _, name := range []string{"C.team1", "C.team4"} {
		p := mustProgram(t, name)
		em, err := campaign.BuildEmulation(p)
		if err != nil {
			t.Fatal(err)
		}
		cases := exposingCases(t, p)
		for _, s := range []campaign.Strategy{campaign.StrategyTextAtStart, campaign.StrategyFetchEveryExec} {
			t.Run(name+"/"+s.String(), func(t *testing.T) {
				rep, err := campaign.VerifyEmulation(p, em, s, injector.ModeHardware, cases)
				if err != nil {
					t.Fatal(err)
				}
				if rep.Equivalent != rep.Cases {
					t.Errorf("equivalent on %d of %d runs", rep.Equivalent, rep.Cases)
				}
				if rep.FaultShown == 0 {
					t.Error("no case exposed the fault; equivalence is vacuous")
				}
			})
		}
	}
}

// TestStackShiftEmulation reproduces the Figure 4 finding: the JB.team6
// stack-shift fault exceeds the two hardware breakpoint registers (point B
// of §5) but is fully emulable with trap-instruction triggers.
func TestStackShiftEmulation(t *testing.T) {
	p := mustProgram(t, "JB.team6")
	em, err := campaign.BuildEmulation(p)
	if err != nil {
		t.Fatal(err)
	}
	if em.Triggers <= 2 {
		t.Fatalf("stack shift needs %d triggers; expected more than the 2 IABRs", em.Triggers)
	}
	cases := exposingCases(t, p)

	// Hardware mode must refuse to arm it.
	_, err = campaign.VerifyEmulation(p, em, campaign.StrategyFetchEveryExec, injector.ModeHardware, cases)
	if !errors.Is(err, injector.ErrOutOfBreakpoints) {
		t.Fatalf("hardware mode: got %v, want ErrOutOfBreakpoints", err)
	}

	// Trap mode reproduces the faulty behaviour exactly, including the
	// rare 80-character negative-seed failures.
	rep, err := campaign.VerifyEmulation(p, em, campaign.StrategyFetchEveryExec, injector.ModeTrap, cases)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Equivalent != rep.Cases {
		t.Errorf("equivalent on %d of %d runs", rep.Equivalent, rep.Cases)
	}
	if rep.FaultShown < 2 {
		t.Errorf("fault shown on %d cases, want the 2 crafted ones", rep.FaultShown)
	}
}

func TestAlgorithmFaultsNotEmulable(t *testing.T) {
	for _, name := range []string{"C.team2", "C.team3", "C.team5", "JB.team7"} {
		p := mustProgram(t, name)
		em, err := campaign.BuildEmulation(p)
		if err != nil {
			t.Fatal(err)
		}
		if em.Fault != nil {
			t.Errorf("%s: algorithm fault unexpectedly produced an emulation", name)
		}
		if !strings.Contains(em.Evidence, "instructions") {
			t.Errorf("%s: evidence %q does not describe the code-shape change", name, em.Evidence)
		}
		contest, err := workload.ContestCases(p.Kind)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := campaign.VerifyEmulation(p, em, campaign.StrategyFetchEveryExec, injector.ModeHardware, contest); err == nil {
			t.Errorf("%s: VerifyEmulation accepted a nil fault", name)
		}
	}
}

func TestSection5Summary(t *testing.T) {
	sum, err := campaign.BuildSection5Summary()
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Emulations) != 7 {
		t.Fatalf("summary covers %d faults, want 7", len(sum.Emulations))
	}
	if math.Abs(sum.NotEmulablePct-44.0) > 1.0 {
		t.Errorf("not-emulable share %.2f%%, want ≈44%%", sum.NotEmulablePct)
	}
	var total float64
	for _, share := range sum.ShareByVerdict {
		total += share
	}
	if total < 90 || total > 100 {
		t.Errorf("verdict shares sum to %.2f", total)
	}
	counts := map[odc.EmulationVerdict]int{}
	for _, em := range sum.Emulations {
		counts[em.Verdict]++
	}
	if counts[odc.Emulable] != 2 || counts[odc.EmulableWithSupport] != 1 || counts[odc.NotEmulable] != 4 {
		t.Errorf("verdict counts = %v, want A=2 B=1 C=4", counts)
	}
}
