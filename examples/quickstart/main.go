// Quickstart: compile a small program with the mini-C toolchain, enumerate
// its fault locations, inject one checking fault Xception-style, and watch
// the failure mode change.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/cc"
	"repro/internal/fault"
	"repro/internal/injector"
	"repro/internal/locator"
	"repro/internal/vm"
)

const src = `
int main() {
    int i;
    int sum = 0;
    for (i = 0; i < 10; i++) {
        sum = sum + i;
    }
    print_int(sum);
    return 0;
}`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Compile: the source-level program becomes machine code plus the
	// debug information that locates assignment and checking statements.
	c, err := cc.Compile(src)
	if err != nil {
		return err
	}
	fmt.Printf("compiled: %d instructions, %d assignment locations, %d checking locations\n",
		len(c.Prog.Image.Text), len(c.Debug.Assigns), len(c.Debug.Checks))

	// 2. Clean run.
	out, state, err := execute(c, nil)
	if err != nil {
		return err
	}
	fmt.Printf("clean run:    state=%v output=%q\n", state, out)

	// 3. Pick the loop condition (i < 10) and mutate "<" into "<=" — the
	// Table 3 checking error type "< <=" — injected as a fetch-bus
	// corruption of the conditional branch, triggered at its own address.
	var mutation *fault.Fault
	for _, ck := range c.Debug.Checks {
		if ck.Op != "<" {
			continue
		}
		faults, err := locator.CheckingFaults(c, ck)
		if err != nil {
			return err
		}
		for i := range faults {
			if faults[i].ErrType == fault.ErrLtLe {
				mutation = &faults[i]
			}
		}
	}
	if mutation == nil {
		return fmt.Errorf("no < check found")
	}
	fmt.Printf("injecting:    %s at %#x (%s)\n",
		mutation.ErrType, mutation.Corruptions[0].Addr, mutation.Corruptions[0].Kind)

	out, state, err = execute(c, mutation)
	if err != nil {
		return err
	}
	fmt.Printf("injected run: state=%v output=%q  (one extra iteration: 45 -> 55)\n", state, out)
	return nil
}

// execute runs the compiled program on a fresh machine, optionally with a
// fault armed through the injector.
func execute(c *cc.Compiled, f *fault.Fault) (string, vm.State, error) {
	m := vm.New(vm.Config{})
	if err := m.Load(c.Prog.Image); err != nil {
		return "", 0, err
	}
	if f != nil {
		if _, err := injector.Arm(m, injector.ModeHardware, f); err != nil {
			return "", 0, err
		}
	}
	state, err := m.Run()
	if err != nil {
		return "", 0, err
	}
	return string(m.Output()), state, nil
}
