// Command faultgen enumerates fault locations and generates fault lists —
// the front end of Table 4. For a given program it prints the possible
// assignment and checking locations found in the compiler's debug
// information, or expands a chosen subset into the full fault list.
//
// Usage:
//
//	faultgen <program>...               # location summary (Table 4 inputs)
//	faultgen -class check -n 5 <program>  # expanded fault list
//	faultgen -metrics <program>           # complexity-guided location weights
//	faultgen -workers 8 all               # whole suite, planned in parallel
//
// "all" expands to every program of the suite. With more than one program
// the compilations and plans fan out over -workers; output order always
// follows the argument order.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/cliutil"
	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/locator"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/programs"
	"repro/internal/telemetry"
	"repro/internal/worker"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "faultgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("faultgen", flag.ContinueOnError)
	class := fs.String("class", "", "expand faults for one class: assign, check or hardware")
	n := fs.Int("n", 5, "number of locations to choose")
	seed := fs.Int64("seed", 2000, "random seed for location choice")
	withMetrics := fs.Bool("metrics", false, "print complexity-guided location weights (§6.1)")
	asJSON := fs.Bool("json", false, "emit the expanded fault list as JSON")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "parallel planning workers when several programs are given (1 = serial)")
	isolation := fs.String("isolation", "inproc", "planning execution: inproc (goroutines) or proc (supervised worker subprocesses)")
	workerMode := fs.Bool("worker-mode", false, "internal: serve plans over stdin/stdout (spawned by -isolation=proc)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	version := fs.Bool("version", false, "print the binary version and exit")
	tf := cliutil.AddTelemetryFlags(fs)
	hb := cliutil.AddHeartbeatFlags(fs)
	fab := cliutil.AddFabricFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workerMode {
		return worker.Serve(os.Stdin, os.Stdout, planFactory)
	}
	if *version {
		cliutil.PrintVersion("faultgen")
		return nil
	}
	procIsolation, err := cliutil.ParseIsolation(*isolation)
	if err != nil {
		return err
	}
	if err := cliutil.ValidateWorkers(*workers); err != nil {
		return err
	}
	if err := hb.Validate(); err != nil {
		return err
	}
	if err := fab.Validate(); err != nil {
		return err
	}
	if err := cliutil.ValidateFabricTelemetry(fab, tf); err != nil {
		return err
	}
	stopProf, err := cliutil.StartProfiles("faultgen", *cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProf()
	tel, telCleanup, err := tf.Setup("faultgen")
	if err != nil {
		return err
	}
	defer telCleanup()
	rest := fs.Args()
	if fab.Join != "" {
		// Executor mode: the program list comes from the coordinator's
		// spec, so no arguments are taken here. Federation registers the
		// executor-side instruments (chaos included) on its registry so
		// they surface host-labelled on the coordinator.
		fed := fabric.NewFederation(tel.Registry(), tel.Tracer())
		fedWrap, err := fab.ChaosWrap(fed.Registry)
		if err != nil {
			return err
		}
		ctx, stopSignals := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		defer stopSignals()
		return fabric.Join(ctx, fab.Join, fabric.ExecutorOptions{
			Workers:         *workers,
			Batch:           fabric.InProcBatch(planFactory, *workers),
			DialTimeout:     fab.DialTimeout,
			ReconnectWindow: fab.ReconnectWindow,
			WrapConn:        fedWrap,
			Metrics:         fabric.NewExecutorMetrics(fed.Registry),
			Federation:      fed,
			Log: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "faultgen: "+format+"\n", args...)
			},
		})
	}
	if len(rest) == 0 {
		return fmt.Errorf("usage: faultgen [flags] <program>... (or 'all')")
	}
	if len(rest) == 1 && rest[0] == "all" {
		rest = rest[:0]
		for _, p := range programs.All() {
			rest = append(rest, p.Name)
		}
	}
	// Plans are deterministic per (program, seed), so parallel planning
	// changes nothing but wall-clock; outputs are joined in argument order.
	// SIGINT/SIGTERM drains in-flight plans instead of killing mid-write.
	ctx, stopSignals := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stopSignals()
	var plans *telemetry.Counter
	if reg := tel.Registry(); reg != nil {
		reg.Gauge("faultgen_programs_total").Set(int64(len(rest)))
		plans = reg.Counter("faultgen_plans_total")
	}
	var outs []string
	if fab.Listen != "" {
		outs, err = describeFabric(ctx, planSpec{
			Programs: rest, Class: *class, N: *n, Seed: *seed,
			Metrics: *withMetrics, JSON: *asJSON,
		}, fab, hb, tel, plans)
	} else if procIsolation {
		outs, err = describeProc(ctx, planSpec{
			Programs: rest, Class: *class, N: *n, Seed: *seed,
			Metrics: *withMetrics, JSON: *asJSON,
		}, *workers, hb, fab, tel, plans)
	} else {
		tr := tel.Tracer()
		outs, err = parallel.MapCtx(ctx, *workers, len(rest), func(w, i int) (string, error) {
			tr.Emit(telemetry.Event{Kind: telemetry.KindDispatched, Unit: i, Program: rest[i], Worker: w})
			out, derr := describe(rest[i], *class, *n, *seed, *withMetrics, *asJSON)
			if derr == nil {
				plans.AddShard(w, 1)
				tr.Emit(telemetry.Event{Kind: telemetry.KindExecuted, Unit: i, Program: rest[i], Worker: w})
			}
			return out, derr
		})
	}
	if err != nil {
		return err
	}
	for _, out := range outs {
		fmt.Print(out)
	}
	rep := telemetry.NewReport("faultgen")
	rep.Params["class"] = *class
	rep.Params["n"] = strconv.Itoa(*n)
	rep.Params["seed"] = strconv.FormatInt(*seed, 10)
	rep.Params["programs"] = strings.Join(rest, " ")
	rep.Units.Total = len(rest)
	rep.Units.Executed = len(rest)
	return tf.WriteReport(rep, tel)
}

// specKindPlan is the worker.Spec kind faultgen serves in -worker-mode.
const specKindPlan = "faultgen/v1"

// planSpec is the faultgen worker spec payload: one unit per program, in
// argument order.
type planSpec struct {
	Programs []string `json:"programs"`
	Class    string   `json:"class"`
	N        int      `json:"n"`
	Seed     int64    `json:"seed"`
	Metrics  bool     `json:"metrics"`
	JSON     bool     `json:"json"`
}

// planFactory is the worker-side factory: rebuild the spec, verify the
// fingerprint, serve describe() per program with the rendered text as the
// verdict payload.
func planFactory(spec worker.Spec) (worker.Runner, error) {
	if spec.Kind != specKindPlan {
		return nil, fmt.Errorf("worker spec kind %q, faultgen serves %q", spec.Kind, specKindPlan)
	}
	if fp := worker.PayloadFingerprint(spec.Kind, spec.Payload); fp != spec.Fingerprint {
		return nil, fmt.Errorf("spec fingerprint %016x does not match payload hash %016x", spec.Fingerprint, fp)
	}
	var s planSpec
	if err := json.Unmarshal(spec.Payload, &s); err != nil {
		return nil, err
	}
	return &planRunner{spec: s}, nil
}

type planRunner struct{ spec planSpec }

func (r *planRunner) Units() int { return len(r.spec.Programs) }

func (r *planRunner) Run(unit int) (journal.Outcome, []byte, error) {
	s := &r.spec
	out, err := describe(s.Programs[unit], s.Class, s.N, s.Seed, s.Metrics, s.JSON)
	if err != nil {
		return journal.Outcome{}, nil, err
	}
	return journal.Outcome{Mode: 1}, []byte(out), nil
}

// describeProc fans the programs out over supervised faultgen worker
// subprocesses and returns the rendered outputs in argument order. A
// program whose plan repeatedly crashes its worker is reported as an error,
// not silently dropped.
func describeProc(ctx context.Context, s planSpec, workers int, hb *cliutil.HeartbeatFlags, fab *cliutil.FabricFlags, tel *telemetry.Telemetry, plans *telemetry.Counter) ([]string, error) {
	payload, err := json.Marshal(s)
	if err != nil {
		return nil, err
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	storageChaos, err := fab.StorageChaos(tel.Registry())
	if err != nil {
		return nil, err
	}
	pool, err := worker.NewPool(worker.Options{
		Workers: workers,
		Command: func() *exec.Cmd {
			cmd := exec.Command(exe, "-worker-mode")
			cmd.Stderr = os.Stderr
			return cmd
		},
		Spec: worker.Spec{
			Kind:        specKindPlan,
			Fingerprint: worker.PayloadFingerprint(specKindPlan, payload),
			Payload:     payload,
		},
		HeartbeatInterval: hb.Interval,
		HeartbeatTimeout:  hb.Timeout,
		WrapPipes:         cliutil.PipeWrap(storageChaos),
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "faultgen: "+format+"\n", args...)
		},
		Metrics: telemetry.NewWorkerMetrics(tel.Registry()),
		Tracer:  tel.Tracer(),
	})
	if err != nil {
		return nil, err
	}
	indices := make([]int, len(s.Programs))
	for i := range indices {
		indices[i] = i
	}
	outs := make([]string, len(s.Programs))
	var lost []string
	err = pool.Run(ctx, indices, func(r worker.Result) error {
		if r.Quarantined {
			lost = append(lost, s.Programs[r.Index])
			return nil
		}
		plans.Inc()
		outs[r.Index] = string(r.Payload)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(lost) > 0 {
		return nil, fmt.Errorf("planning crashed the worker for: %s", strings.Join(lost, ", "))
	}
	return outs, nil
}

// describeFabric shards the program list over fabric executors (faultgen
// -fabric-join) and returns the rendered outputs in argument order — the
// same contract as describeProc, one level of distribution up. Coordinator
// and executors cross-check the payload fingerprint, so a mismatched
// executor (different build or flag set) is rejected at the handshake.
func describeFabric(ctx context.Context, s planSpec, fab *cliutil.FabricFlags, hb *cliutil.HeartbeatFlags, tel *telemetry.Telemetry, plans *telemetry.Counter) ([]string, error) {
	payload, err := json.Marshal(s)
	if err != nil {
		return nil, err
	}
	chaosWrap, err := fab.ChaosWrap(tel.Registry())
	if err != nil {
		return nil, err
	}
	// Live fleet view: the tracker mirrors the coordinator's sessions for
	// the -debug-addr server's /fleet endpoint.
	fleet := fabric.NewFleetTracker(len(s.Programs), tel.Registry())
	telemetry.SetFleetSource(fleet.Source())
	defer telemetry.SetFleetSource(nil)
	coord, err := fabric.NewCoordinator(fabric.CoordinatorOptions{
		Addr:     fab.Listen,
		MinHosts: fab.Hosts,
		Spec: worker.Spec{
			Kind:        specKindPlan,
			Fingerprint: worker.PayloadFingerprint(specKindPlan, payload),
			Payload:     payload,
		},
		Units:             len(s.Programs),
		HeartbeatInterval: hb.Interval,
		HeartbeatTimeout:  hb.Timeout,
		SessionTimeout:    fab.SessionTimeout,
		WrapConn:          chaosWrap,
		Metrics:           fabric.NewMetrics(tel.Registry()),
		Tracer:            tel.Tracer(),
		Registry:          tel.Registry(),
		Fleet:             fleet,
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "faultgen: "+format+"\n", args...)
		},
	})
	if err != nil {
		return nil, err
	}
	indices := make([]int, len(s.Programs))
	for i := range indices {
		indices[i] = i
	}
	outs := make([]string, len(s.Programs))
	var lost []string
	err = coord.Run(ctx, indices, func(r worker.Result) error {
		if r.Quarantined {
			lost = append(lost, s.Programs[r.Index])
			return nil
		}
		plans.Inc()
		outs[r.Index] = string(r.Payload)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(lost) > 0 {
		return nil, fmt.Errorf("planning went down with every executor host for: %s", strings.Join(lost, ", "))
	}
	return outs, nil
}

// describe renders the requested report for one program.
func describe(name, class string, n int, seed int64, withMetrics, asJSON bool) (string, error) {
	p, ok := programs.ByName(name)
	if !ok {
		return "", fmt.Errorf("unknown program %q", name)
	}
	c, err := p.Compile()
	if err != nil {
		return "", err
	}
	var sb strings.Builder

	if withMetrics {
		rep := metrics.Analyze(p.Name, c.AST)
		fmt.Fprintf(&sb, "%s: complexity-guided weights for assignment locations\n", p.Name)
		funcs := metrics.AssignFuncs(c)
		w := metrics.LocationWeights(rep, funcs)
		for i, a := range c.Debug.Assigns {
			fmt.Fprintf(&sb, "  loc %3d  %-14s line %3d  %-10s weight %.1f\n", i, a.Func, a.Line, a.LHS, w[i])
		}
		return sb.String(), nil
	}

	switch class {
	case "":
		fmt.Fprintf(&sb, "%s: %d possible assignment locations, %d possible checking locations\n",
			p.Name, len(c.Debug.Assigns), len(c.Debug.Checks))
		for _, a := range c.Debug.Assigns {
			fmt.Fprintf(&sb, "  assign  %-14s line %3d  %s = ...  store at %#x\n", a.Func, a.Line, a.LHS, a.StoreAddr)
		}
		for _, ck := range c.Debug.Checks {
			arrays := ""
			if len(ck.ArrayLoads) > 0 {
				arrays = fmt.Sprintf("  (%d array loads)", len(ck.ArrayLoads))
			}
			fmt.Fprintf(&sb, "  check   %-14s line %3d  op %-5q bc at %#x%s\n", ck.Func, ck.Line, ck.Op, ck.BcAddr, arrays)
		}
		return sb.String(), nil
	case "assign":
		plan, err := locator.PlanAssignment(c, p.Name, n, seed)
		if err != nil {
			return "", err
		}
		return emitPlan(plan, asJSON)
	case "check":
		plan, err := locator.PlanChecking(c, p.Name, n, seed)
		if err != nil {
			return "", err
		}
		return emitPlan(plan, asJSON)
	case "hardware":
		plan, err := locator.PlanHardware(c, p.Name, n, seed)
		if err != nil {
			return "", err
		}
		return emitPlan(plan, asJSON)
	default:
		return "", fmt.Errorf("unknown class %q (assign, check or hardware)", class)
	}
}

// emitPlan renders the plan either human-readably or as JSON.
func emitPlan(plan *locator.Plan, asJSON bool) (string, error) {
	if !asJSON {
		return printPlan(plan), nil
	}
	var sb strings.Builder
	enc := json.NewEncoder(&sb)
	enc.SetIndent("", "  ")
	if err := enc.Encode(plan); err != nil {
		return "", err
	}
	return sb.String(), nil
}

func printPlan(plan *locator.Plan) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %s faults: %d possible locations, %d chosen, %d faults\n",
		plan.Program, plan.Class, plan.Possible, len(plan.Chosen), len(plan.Faults))
	for i := range plan.Faults {
		f := &plan.Faults[i]
		fmt.Fprintf(&sb, "  %-40s %-12s", f.ID, f.ErrType)
		for _, c := range f.Corruptions {
			fmt.Fprintf(&sb, "  %s@%#x", corruptionName(c), c.Addr)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func corruptionName(c fault.Corruption) string {
	return c.Kind.String()
}
