package vm

import (
	"errors"
	"testing"
)

// loopImage is an infinite loop (b .), the canonical limit-expiry program.
func loopImage() Image {
	return buildImage([]Inst{{Op: OpB, Off26: 0}})
}

// TestCycleQuotaAboveWatchdog: the normal configuration — quota strictly
// above the watchdog budget — must classify a dead loop as a hang exactly as
// if no quota were set: the quota is a backstop, never a classifier.
func TestCycleQuotaAboveWatchdog(t *testing.T) {
	m := New(Config{MaxCycles: 1000})
	m.SetCycleQuota(4000)
	if err := m.Load(loopImage()); err != nil {
		t.Fatal(err)
	}
	state, err := m.Run()
	if err != nil {
		t.Fatalf("quota above the watchdog must not fire: %v", err)
	}
	if state != StateHung {
		t.Fatalf("state = %v, want hung", state)
	}
	if m.Cycles() != 1000 {
		t.Fatalf("stopped at %d cycles, want the 1000-cycle watchdog", m.Cycles())
	}
}

// TestCycleQuotaBackstop: with the watchdog lost (huge budget), the quota
// must stop the run and report ErrCycleQuota — the host-fault signal the
// campaign executor quarantines on.
func TestCycleQuotaBackstop(t *testing.T) {
	m := New(Config{MaxCycles: 1 << 40})
	m.SetCycleQuota(500)
	if err := m.Load(loopImage()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); !errors.Is(err, ErrCycleQuota) {
		t.Fatalf("err = %v, want ErrCycleQuota", err)
	}
	if m.Cycles() != 500 {
		t.Fatalf("stopped at %d cycles, want the 500-cycle quota", m.Cycles())
	}
	// The quota verdict must not leak into a later run: after Reset the same
	// machine with a sane watchdog classifies the loop as an ordinary hang.
	if err := m.Reset(); err != nil {
		t.Fatal(err)
	}
	m.SetMaxCycles(100)
	state, err := m.Run()
	if err != nil {
		t.Fatalf("after Reset: %v", err)
	}
	if state != StateHung {
		t.Fatalf("after Reset: state = %v, want hung", state)
	}
}

// TestCycleQuotaStepPath: the quota must also fire on the general (observer)
// step path, not just the fused hot loop. A watchpoint arms the step path.
func TestCycleQuotaStepPath(t *testing.T) {
	m := New(Config{MaxCycles: 1 << 40})
	m.SetCycleQuota(300)
	if err := m.Load(loopImage()); err != nil {
		t.Fatal(err)
	}
	// A watchpoint on a never-reached address arms the general step path.
	m.SetWatch([]uint32{TextBase + 0x100}, nil, func(*Machine, uint32, bool) {})
	if _, err := m.Run(); !errors.Is(err, ErrCycleQuota) {
		t.Fatalf("err = %v, want ErrCycleQuota on the step path", err)
	}
	if m.Cycles() != 300 {
		t.Fatalf("stopped at %d cycles, want the 300-cycle quota", m.Cycles())
	}
}
