// Package cliutil holds the flag validation shared by the three CLIs
// (swifi, faultgen, progrun). Every rule here exists because the
// misconfiguration it rejects used to fail later and worse: a -resume
// without -journal silently started a fresh campaign, -workers 0 looked
// like a request for the serial path but actually selected GOMAXPROCS, and
// a zero -unit-timeout read as "quarantine instantly" when the user meant
// "no deadline".
package cliutil

import (
	"flag"
	"fmt"
	"time"
)

// ValidateWorkers rejects worker counts below 1. The flag defaults to
// runtime.GOMAXPROCS(0) in every CLI, so a sub-1 value is always an
// explicit -workers 0 or negative — historically interpreted as "pick for
// me", which is indistinguishable from a typo.
func ValidateWorkers(n int) error {
	if n < 1 {
		return fmt.Errorf("-workers must be at least 1, got %d (omit the flag to use all CPUs)", n)
	}
	return nil
}

// ValidateUnitTimeout rejects an explicitly-set zero or negative duration
// for the named flag. The unset default (0) keeps meaning "no per-unit
// deadline" — only a user who typed the flag and gave it a non-positive
// value is told so, instead of getting a deadline that never (or always)
// fires.
func ValidateUnitTimeout(fs *flag.FlagSet, name string, v time.Duration) error {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	if set && v <= 0 {
		return fmt.Errorf("-%s must be positive, got %v (omit the flag to disable the per-unit deadline)", name, v)
	}
	return nil
}

// ValidateResume rejects -resume without -journal: there is no file to
// resume from, and silently running a fresh campaign would discard exactly
// the progress the user asked to keep.
func ValidateResume(resume bool, journalPath string) error {
	if resume && journalPath == "" {
		return fmt.Errorf("-resume requires -journal (there is no journal file to resume from)")
	}
	return nil
}

// ParseIsolation parses the -isolation flag shared by the CLIs, reporting
// whether process isolation (supervised worker subprocesses) was requested.
func ParseIsolation(s string) (proc bool, err error) {
	switch s {
	case "inproc":
		return false, nil
	case "proc":
		return true, nil
	default:
		return false, fmt.Errorf("-isolation must be inproc or proc, got %q", s)
	}
}
