package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/telemetry"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunVersion(t *testing.T) {
	if err := run([]string{"-version"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunReportAndTrace: -report writes a readable JSON report stamped with
// the run's parameters, and -trace creates the JSONL sink, even for static
// experiments that spawn no campaign.
func TestRunReportAndTrace(t *testing.T) {
	dir := t.TempDir()
	repPath := filepath.Join(dir, "report.json")
	trPath := filepath.Join(dir, "trace.jsonl")
	if err := run([]string{"-report", repPath, "-trace", trPath, "table2"}); err != nil {
		t.Fatal(err)
	}
	rep, err := telemetry.ReadReport(repPath)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tool != "swifi" {
		t.Errorf("report tool = %q, want swifi", rep.Tool)
	}
	if rep.Params["args"] != "table2" || rep.Params["seed"] != "2000" {
		t.Errorf("report params = %+v", rep.Params)
	}
	if _, err := os.Stat(trPath); err != nil {
		t.Errorf("trace sink not created: %v", err)
	}
}

func TestRunStaticExperiments(t *testing.T) {
	if err := run([]string{"table2", "table3", "fielddist"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunVerify(t *testing.T) {
	if err := run([]string{"-verify-cases", "2", "verify", "C.team4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("no experiment accepted")
	}
	if err := run([]string{"table99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-mode", "zap", "table2"}); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run([]string{"verify"}); err == nil {
		t.Error("verify without program accepted")
	}
	if err := run([]string{"-progress", "sometimes", "table2"}); err == nil {
		t.Error("bad -progress value accepted")
	}
}
