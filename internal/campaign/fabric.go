package campaign

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"repro/internal/chaos"
	"repro/internal/fabric"
	"repro/internal/golden"
	"repro/internal/journal"
	"repro/internal/parallel"
	"repro/internal/telemetry"
	"repro/internal/worker"
)

// This file is the distributed half of the campaign executor: with
// Config.Fabric set, the coordinator side of internal/fabric replaces the
// local dispatch loop, and JoinFabric turns any other process — usually on
// another host — into an executor running the identical local stack. As
// with process isolation, the plan never crosses the wire: both sides
// rebuild it from the serialized Config and cross-check the plan
// fingerprint, so the protocol carries only unit indices out and verdicts
// back, and the Result stays bit-identical to a single-host run for any
// fleet size or host-loss history.

// FabricOptions configures the coordinator side of a distributed campaign
// (Config.Fabric).
type FabricOptions struct {
	// Listen is the TCP address the coordinator binds (e.g. ":9370").
	Listen string
	// MinHosts is how many executors must join before the campaign shards;
	// 0 means 1.
	MinHosts int
	// HeartbeatInterval/HeartbeatTimeout tune fabric liveness; zero keeps
	// the worker-supervisor defaults (500ms / 10s), which suit LAN and
	// loopback. WAN links want looser deadlines.
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// MaxDeliveries is how many executor hosts a unit may go down with
	// before it is quarantined as a HostFault; 0 means 3.
	MaxDeliveries int
	// SessionTimeout is how long an executor session survives a lost
	// connection before its units are redelivered; zero derives 2× the
	// heartbeat timeout.
	SessionTimeout time.Duration
	// Chaos, when non-nil and enabled, wraps every accepted executor
	// connection with deterministic network-fault injection — the campaign
	// fabric's own resilience test harness. Results must stay bit-identical
	// to a clean run; the chaos_* counters report the absorbed abuse.
	Chaos *chaos.Config
}

// JoinOptions configures one executor host (JoinFabric).
type JoinOptions struct {
	// Name identifies this host in coordinator logs and per-host metrics;
	// empty picks the hostname.
	Name string
	// Workers is the local parallelism; 0 picks GOMAXPROCS.
	Workers int
	// Isolation selects how this host runs its units: in-process
	// goroutines (default) or supervised worker subprocesses.
	Isolation Isolation
	// Proc tunes the local worker pool under IsolationProc.
	Proc *ProcOptions
	// UnitPace, when positive, floors each unit's wall time on this host —
	// a fixed per-host service rate. Production paths leave it zero (run
	// flat out); the loopback scaling benchmark sets it so N executors
	// sharing one machine's CPU still model N independent hosts.
	UnitPace time.Duration
	// DialTimeout caps the initial connection establishment, retries
	// included; ReconnectWindow caps re-establishment after a lost
	// connection. Zero keeps the fabric defaults (10s / 60s).
	DialTimeout     time.Duration
	ReconnectWindow time.Duration
	// Chaos, when non-nil and enabled, wraps the dialed coordinator
	// connection with deterministic network-fault injection.
	Chaos *chaos.Config
	// Registry, when non-nil, receives the executor-side fabric and chaos
	// instruments.
	Registry *telemetry.Registry
	// Tracer, when non-nil, records this executor's unit lifecycle events
	// (dispatched/executed); with federation on they are also pushed to the
	// coordinator's merged trace. Nil with federation on creates a private
	// tracer so the merged trace still has a source.
	Tracer *telemetry.Tracer
	// NoFederation disables the telemetry federation plane: no snapshot or
	// trace frames are pushed to the coordinator. Federation is passive and
	// best-effort, so this switches observability only — it is the
	// benchmark's A/B control, not a production knob.
	NoFederation bool
	// FederationInterval floors the time between periodic federation pushes
	// (zero keeps the fabric default of 1s). Tests and benchmarks lower it
	// to exercise the push path at heartbeat speed.
	FederationInterval time.Duration
	// Log receives per-session fabric events; nil silences them.
	Log func(format string, args ...any)
}

// JoinFabric connects to a campaign coordinator and serves assigned unit
// ranges until the campaign completes (nil), the context is cancelled, or
// the session fails. The campaign spec — and with it every planning input —
// comes from the coordinator, so the joining process needs no campaign
// flags of its own.
func JoinFabric(ctx context.Context, addr string, opts JoinOptions) error {
	workers := parallel.DefaultWorkers(opts.Workers)
	// Telemetry federation: unless disabled, every executor-side instrument
	// registers on the federation's registry and every unit lifecycle event
	// lands in its trace buffer, both pushed to the coordinator on the
	// heartbeat cadence. The push is best-effort by construction, so the
	// wiring here changes what the coordinator can observe, never what it
	// merges.
	reg := opts.Registry
	tr := opts.Tracer
	var fed *fabric.Federation
	if !opts.NoFederation {
		if tr == nil {
			tr = telemetry.NewTracer(telemetry.DefaultTraceCap)
		}
		fed = fabric.NewFederation(reg, tr)
		reg = fed.Registry
	}
	// Executor-side storage/IPC chaos: the coordinator's disk is not the
	// only one that can fail. Checkpoint poisoning hits this host's golden
	// store; pipe faults hit its proc-isolation workers. (This host has no
	// journal — the verdicts live on the coordinator — so no disk wrap.)
	inj := storageInjector(opts.Chaos, reg)
	golden.Shared.SetPoison(poisonHook(inj))
	proc := opts.Proc
	if w := pipeWrap(inj); w != nil {
		p := ProcOptions{}
		if proc != nil {
			p = *proc
		}
		p.WrapPipes = w
		proc = &p
	}
	return fabric.Join(ctx, addr, fabric.ExecutorOptions{
		Name:               opts.Name,
		Workers:            workers,
		DialTimeout:        opts.DialTimeout,
		ReconnectWindow:    opts.ReconnectWindow,
		WrapConn:           chaosWrap(opts.Chaos, reg),
		Metrics:            fabric.NewExecutorMetrics(reg),
		Federation:         fed,
		FederationInterval: opts.FederationInterval,
		Log:                opts.Log,
		Batch: func(spec worker.Spec) (fabric.BatchRunner, error) {
			b, err := newFabricBatchRunner(spec, workers, opts.Isolation, proc)
			if err != nil {
				return nil, err
			}
			b.pace = opts.UnitPace
			b.met = newWorkerMetrics(reg)
			b.tracer = tr
			return b, nil
		},
	})
}

// fabricBatchRunner executes assigned batches on the local PR 1–6 stack. It
// re-plans once per session (not per batch) and keeps one unitExecutor with
// per-worker machine pools across batches, so goldens, calibration and
// pooled machines amortise over everything this host is ever assigned.
type fabricBatchRunner struct {
	cfg       Config
	units     []runUnit
	spec      worker.Spec
	workers   int
	isolation Isolation
	proc      *ProcOptions
	pace      time.Duration
	met       *telemetry.WorkerMetrics
	tracer    *telemetry.Tracer
	ex        *unitExecutor
}

func newFabricBatchRunner(spec worker.Spec, workers int, iso Isolation, proc *ProcOptions) (*fabricBatchRunner, error) {
	if spec.Kind != SpecKindCampaign {
		return nil, fmt.Errorf("campaign: fabric spec kind %q, this executor serves %q", spec.Kind, SpecKindCampaign)
	}
	cfg, err := configFromProcSpec(spec.Payload)
	if err != nil {
		return nil, err
	}
	pc, err := planCampaign(&cfg)
	if err != nil {
		return nil, fmt.Errorf("campaign: executor re-planning failed: %w", err)
	}
	if pc.fp != spec.Fingerprint {
		return nil, fmt.Errorf("campaign: rebuilt plan fingerprint %016x does not match the coordinator's %016x; differing builds or configuration", pc.fp, spec.Fingerprint)
	}
	return &fabricBatchRunner{
		cfg:       cfg,
		units:     pc.units,
		spec:      spec,
		workers:   workers,
		isolation: iso,
		proc:      proc,
		ex: &unitExecutor{
			opts:  execOpts{unitTimeout: cfg.UnitTimeout, interpOnly: cfg.InterpOnly},
			units: pc.units,
			out:   make([]unitOutcome, len(pc.units)),
			pools: make([]*machinePool, workers),
		},
	}, nil
}

func (b *fabricBatchRunner) Units() int { return len(b.units) }

func (b *fabricBatchRunner) RunBatch(ctx context.Context, batch []int, skip func(int) bool, emit func(int, journal.Outcome, []byte) error) error {
	if b.isolation == IsolationProc {
		return b.runBatchProc(ctx, batch, skip, emit)
	}
	return parallel.ForEachCtx(ctx, b.workers, len(batch), func(w, k int) error {
		u := batch[k]
		if skip(u) {
			return nil
		}
		if b.tracer != nil {
			b.tracer.Emit(traceUnit(telemetry.KindDispatched, u, &b.units[u], w))
		}
		start := time.Now()
		o, err := b.ex.runIsolated(w, &b.units[u])
		if err != nil {
			return fmt.Errorf("%s %s case %d: %w", b.units[u].program, b.units[u].f.ID, b.units[u].caseIx, err)
		}
		if b.tracer != nil {
			e := traceUnit(telemetry.KindExecuted, u, &b.units[u], w)
			e.DurUS = time.Since(start).Microseconds()
			b.tracer.Emit(e)
		}
		if b.pace > 0 {
			if d := b.pace - time.Since(start); d > 0 {
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-time.After(d):
				}
			}
		}
		return emit(u, o.journal(), nil)
	})
}

// runBatchProc serves a batch through a supervised local worker pool: the
// full sandbox semantics of IsolationProc, one subprocess fleet per batch.
// Units stolen after the batch was cut are filtered only at the start —
// the pool owns in-flight dispatch — so a mid-batch steal can execute
// twice; the coordinator's merge drops the duplicate.
func (b *fabricBatchRunner) runBatchProc(ctx context.Context, batch []int, skip func(int) bool, emit func(int, journal.Outcome, []byte) error) error {
	todo := batch[:0:0]
	for _, u := range batch {
		if !skip(u) {
			todo = append(todo, u)
		}
	}
	if len(todo) == 0 {
		return nil
	}
	po := b.proc
	if po == nil {
		po = &ProcOptions{}
	}
	spawn := po.Spawn
	if spawn == nil {
		spawn = defaultSpawn
	}
	pool, err := worker.NewPool(worker.Options{
		Workers:           b.workers,
		Command:           spawn,
		Spec:              b.spec,
		HeartbeatInterval: po.HeartbeatInterval,
		HeartbeatTimeout:  po.HeartbeatTimeout,
		UnitTimeout:       b.cfg.UnitTimeout,
		MaxDeliveries:     po.MaxDeliveries,
		MaxRestarts:       po.MaxRestarts,
		BackoffBase:       po.BackoffBase,
		BackoffMax:        po.BackoffMax,
		MemQuota:          po.MemQuota,
		Quarantine:        journal.Outcome{Mode: uint8(HostFault)},
		WrapPipes:         po.WrapPipes,
		Metrics:           b.met,
		Tracer:            b.tracer,
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "campaign: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	return pool.Run(ctx, todo, func(r worker.Result) error {
		return emit(r.Index, r.Outcome, r.Payload)
	})
}

// executeUnitsFabric is the coordinator-side counterpart of
// executeUnitsProc: journaled units are replayed exactly as everywhere
// else, the rest are sharded over the executor fleet, and every verdict is
// journaled as it arrives. On completion the journal is canonicalized —
// rewritten in unit order — so its bytes are independent of which host
// finished which unit when.
func executeUnitsFabric(cfg *Config, o execOpts, units []runUnit, fp uint64) ([]unitOutcome, []telemetry.HostStats, error) {
	ctx := o.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]unitOutcome, len(units))
	todo := make([]int, 0, len(units))
	for i := range units {
		if o.journal != nil {
			if jo, ok := o.journal.Done(i); ok {
				out[i] = outcomeFromJournal(jo)
				out[i].replayed = true
				o.met.noteReplayed(out[i])
				if o.tracer != nil {
					e := traceUnit(telemetry.KindReplayed, i, &units[i], 0)
					e.Mode = out[i].mode.String()
					o.tracer.Emit(e)
				}
				continue
			}
		}
		todo = append(todo, i)
	}
	if len(todo) == 0 {
		return out, nil, nil
	}

	spec, err := procSpecFromConfig(cfg, fp)
	if err != nil {
		return nil, nil, err
	}
	fo := cfg.Fabric
	// The sidecar WAL journals the coordinator's scheduling state next to
	// the verdict journal. A crashed coordinator restarted with -resume
	// finds it and rebuilds the session table and outstanding ranges; a
	// completed campaign removes it — only the canonical journal outlives
	// the run.
	side, err := openFabricSide(o.journal, fp, storageWrap(cfg.StorageChaos))
	if err != nil {
		return nil, nil, err
	}
	// The fleet tracker mirrors the coordinator's session table for the
	// /fleet endpoint, the TTY note and the report's hosts section. Its
	// total is the distributed portion only (replayed units never cross the
	// wire). SetFleetSource late-binds it to a -debug-addr server that
	// started before planning.
	reg := cfg.Telemetry.Registry()
	fleet := fabric.NewFleetTracker(len(todo), reg)
	telemetry.SetFleetSource(fleet.Source())
	defer telemetry.SetFleetSource(nil)
	coord, err := fabric.NewCoordinator(fabric.CoordinatorOptions{
		Addr:              fo.Listen,
		MinHosts:          fo.MinHosts,
		Spec:              spec,
		Units:             len(units),
		HeartbeatInterval: fo.HeartbeatInterval,
		HeartbeatTimeout:  fo.HeartbeatTimeout,
		SessionTimeout:    fo.SessionTimeout,
		MaxDeliveries:     fo.MaxDeliveries,
		Quarantine:        journal.Outcome{Mode: uint8(HostFault)},
		Side:              side,
		WrapConn:          chaosWrap(fo.Chaos, reg),
		Metrics:           newFabricMetrics(reg),
		Tracer:            o.tracer,
		Registry:          reg,
		Fleet:             fleet,
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "campaign: "+format+"\n", args...)
		},
	})
	if err != nil {
		if side != nil {
			side.Close()
		}
		return nil, nil, err
	}

	// onResult runs on the coordinator's event-loop goroutine, so the slot
	// writes and journal appends are serialized, exactly as in the proc
	// path.
	err = coord.Run(ctx, todo, func(r worker.Result) error {
		if r.Quarantined {
			u := &units[r.Index]
			quarantineLog(u, "went down with its executor host on every delivery; quarantined by the coordinator", nil)
		}
		out[r.Index] = outcomeFromJournal(r.Outcome)
		o.met.noteVerdict(0, out[r.Index])
		if o.tracer != nil {
			u := &units[r.Index]
			v := traceUnit(telemetry.KindVerdict, r.Index, u, 0)
			v.Mode = out[r.Index].mode.String()
			o.tracer.Emit(v)
		}
		if o.journal != nil {
			if err := o.journal.Append(r.Index, r.Outcome); err != nil {
				return fmt.Errorf("campaign: %w", err)
			}
		}
		return nil
	})
	switch {
	case err == nil:
		// The journal is canonicalized by Run, as on every executor path.
		// Completed campaign: the scheduling state is spent; drop the
		// sidecar so a later -resume replays only the verdict journal.
		if side != nil {
			if rerr := side.Remove(); rerr != nil {
				fmt.Fprintf(os.Stderr, "campaign: removing fabric sidecar: %v\n", rerr)
			}
		}
		return out, fleet.HostStats(), nil
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// Interrupted: keep the sidecar on disk — it is exactly what a
		// restarted coordinator needs to recover its sessions.
		if side != nil {
			side.Close()
		}
		return out, fleet.HostStats(), err
	default:
		if side != nil {
			side.Close()
		}
		return nil, nil, err
	}
}

// openFabricSide opens (resume) or creates the coordinator's sidecar WAL
// next to the verdict journal, bound to the plan fingerprint. Without a
// journal there is nothing to recover into, so no sidecar is kept. A
// storage-chaos wrap applies to the sidecar exactly as the CLI applies it
// to the journal: both files live on the same (possibly failing) disk.
func openFabricSide(j *journal.Journal, fp uint64, wrap journal.Wrap) (*journal.SideLog, error) {
	if j == nil {
		return nil, nil
	}
	path := j.Path() + ".fabric"
	var side *journal.SideLog
	var err error
	if j.Resumed() {
		if _, serr := os.Stat(path); serr == nil {
			side, err = journal.OpenSideWrapped(path, wrap)
		} else {
			// The previous run completed its fabric bookkeeping (or ran
			// pre-sidecar); start scheduling state fresh.
			side, err = journal.CreateSideWrapped(path, wrap)
		}
	} else {
		side, err = journal.CreateSideWrapped(path, wrap)
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: fabric sidecar: %w", err)
	}
	if err := side.Bind(fp); err != nil {
		side.Close()
		return nil, fmt.Errorf("campaign: fabric sidecar: %w", err)
	}
	return side, nil
}

// chaosWrap builds the fabric connection wrapper for a chaos config; nil or
// disabled configs yield nil (no wrapping).
func chaosWrap(cfg *chaos.Config, reg *telemetry.Registry) func(net.Conn) net.Conn {
	if !cfg.Enabled() {
		return nil
	}
	return chaos.New(*cfg, chaos.NewMetrics(reg)).Wrap
}

// storageInjector builds the storage/IPC-plane injector for a chaos config;
// nil when the config carries no disk, pipe or poison faults. It is a
// separate instance from the connection wrapper's, which is harmless: each
// plane's handle ordinals are counted independently, so the schedules are
// identical either way.
func storageInjector(cfg *chaos.Config, reg *telemetry.Registry) *chaos.Chaos {
	if !cfg.DiskEnabled() && !cfg.PipeEnabled() && (cfg == nil || cfg.DiskPoison <= 0) {
		return nil
	}
	return chaos.New(*cfg, chaos.NewMetrics(reg))
}

// storageWrap adapts a storage-chaos injector into the journal package's
// File substitution hook; nil (no wrapping) unless disk faults are
// configured.
func storageWrap(c *chaos.Chaos) journal.Wrap {
	if cc := c.Config(); !cc.DiskEnabled() {
		return nil
	}
	return func(f *os.File) journal.File { return c.WrapFile(f) }
}

// pipeWrap adapts a storage-chaos injector into the worker supervisor's
// pipe interposition hook; nil (no wrapping) unless pipe faults are
// configured.
func pipeWrap(c *chaos.Chaos) func(io.WriteCloser, io.Reader) (io.WriteCloser, io.Reader) {
	if cc := c.Config(); !cc.PipeEnabled() {
		return nil
	}
	return c.WrapPipes
}

// newFabricMetrics registers the coordinator's instruments on reg; nil
// registry, nil bundle (metrics off).
func newFabricMetrics(reg *telemetry.Registry) *fabric.Metrics {
	return fabric.NewMetrics(reg)
}
