package worker

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/journal"
)

func TestHelloRoundTrip(t *testing.T) {
	in := hello{
		Version:           ProtocolVersion,
		HeartbeatInterval: 250 * time.Millisecond,
		MemQuota:          2 << 30,
		Spec: Spec{
			Kind:        "campaign/v1",
			Fingerprint: 0xdeadbeefcafef00d,
			Payload:     []byte(`{"seed":42}`),
		},
	}
	out, err := decodeHello(encodeHello(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Version != in.Version || out.HeartbeatInterval != in.HeartbeatInterval ||
		out.MemQuota != in.MemQuota || out.Spec.Kind != in.Spec.Kind ||
		out.Spec.Fingerprint != in.Spec.Fingerprint || !bytes.Equal(out.Spec.Payload, in.Spec.Payload) {
		t.Fatalf("round trip mismatch: %+v != %+v", out, in)
	}
}

func TestHelloTruncated(t *testing.T) {
	full := encodeHello(hello{Version: 1, Spec: Spec{Kind: "k", Payload: []byte("pp")}})
	for cut := 0; cut < len(full); cut++ {
		if _, err := decodeHello(full[:cut]); err == nil {
			t.Fatalf("decodeHello accepted a %d-byte prefix of a %d-byte frame", cut, len(full))
		}
	}
}

func TestReadyRoundTrip(t *testing.T) {
	in := ready{Version: ProtocolVersion, Fingerprint: 0x0123456789abcdef, Units: 991}
	out, err := decodeReady(encodeReady(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip mismatch: %+v != %+v", out, in)
	}
	if _, err := decodeReady(encodeReady(in)[:13]); err == nil {
		t.Fatal("decodeReady accepted a short frame")
	}
}

func TestVerdictRoundTrip(t *testing.T) {
	cases := []verdict{
		{Unit: 0, Outcome: journal.Outcome{Mode: 1}},
		{Unit: 7, Outcome: journal.Outcome{Mode: 5, Activated: true, Retried: true}, Last: true},
		{Unit: 123456, Outcome: journal.Outcome{Mode: 3, Degraded: true}, Payload: []byte("case output")},
	}
	for _, in := range cases {
		out, err := decodeVerdict(encodeVerdict(in))
		if err != nil {
			t.Fatal(err)
		}
		if out.Unit != in.Unit || out.Outcome != in.Outcome || out.Last != in.Last ||
			!bytes.Equal(out.Payload, in.Payload) {
			t.Fatalf("round trip mismatch: %+v != %+v", out, in)
		}
	}
	if _, err := decodeVerdict(encodeVerdict(cases[2])[:12]); err == nil {
		t.Fatal("decodeVerdict accepted a truncated payload")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, msgExec, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != msgExec || !bytes.Equal(payload, []byte{1, 2, 3, 4}) {
		t.Fatalf("got type %d payload %v", typ, payload)
	}
}

func TestFrameRejectsBadLengths(t *testing.T) {
	// Zero-length frame: not even a type byte.
	zero := make([]byte, 4)
	if _, _, err := ReadFrame(bytes.NewReader(zero)); err == nil || !strings.Contains(err.Error(), "bad frame length") {
		t.Fatalf("zero-length frame: %v", err)
	}
	// Oversized claim: reject before allocating.
	huge := make([]byte, 4)
	binary.LittleEndian.PutUint32(huge, MaxFrame+1)
	if _, _, err := ReadFrame(bytes.NewReader(huge)); err == nil || !strings.Contains(err.Error(), "bad frame length") {
		t.Fatalf("oversized frame: %v", err)
	}
	// Header claiming more body than exists: torn, not clean EOF.
	torn := make([]byte, 4, 6)
	binary.LittleEndian.PutUint32(torn, 10)
	torn = append(torn, msgExec, 0)
	if _, _, err := ReadFrame(bytes.NewReader(torn)); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn frame: %v", err)
	}
	// Oversized write is refused at the source too.
	if err := WriteFrame(io.Discard, msgVerdict, make([]byte, MaxFrame)); err == nil {
		t.Fatal("writeFrame accepted an oversized payload")
	}
}
