// Package chaos is the fabric's adversary: a deterministic, seeded
// network-fault layer that wraps any net.Conn or net.Listener and injects
// the failures a distributed campaign will actually face — added latency
// and jitter, bandwidth caps, flipped bytes, truncated writes, silently
// dropped writes, half-open "black-hole" partitions, and mid-stream
// connection resets.
//
// The package exists to turn the repository's own method on itself: the
// fault-injection campaigns this system runs are only trustworthy if the
// harness survives the fault classes it studies (the same argument ZOFI
// makes for its own crash-handling harness). Every fabric robustness
// mechanism — per-frame CRCs, session resume, coordinator recovery — is
// validated by running full campaigns through this layer and requiring
// byte-identical journals and reports.
//
// Determinism: every fault decision comes from a splitmix64 stream derived
// from (Config.Seed, connection ordinal), where the ordinal counts wrapped
// connections in wrap order. A single connection's fault schedule is
// therefore a pure function of the seed and its ordinal; rerunning a test
// with the same seed replays the same corruption at the same byte offsets.
// Campaign *results* never depend on the schedule — that is the whole
// point — but reproducing a failure found under chaos needs only the seed.
//
// Faults are injected on the write path (the wrapped side mangles what it
// sends), so one chaotic endpoint is enough to exercise both directions of
// a protocol: the peer sees corrupt frames, the wrapper sees its own
// writes vanish. Partitions additionally stall the read path, modelling a
// link that went silent rather than a process that died.
package chaos

import (
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Config selects which faults a wrapped connection injects and how often.
// The zero Config injects nothing (Enabled reports false). Probabilities
// are per Write call, evaluated in a fixed order (partition, reset,
// truncate, drop, corrupt) so a given random stream always yields the same
// schedule.
type Config struct {
	// Seed selects the deterministic fault schedule. Two runs with the
	// same Seed and the same connection ordinals inject identical faults.
	Seed int64

	// Latency is added to every Write; Jitter adds a uniform random
	// 0..Jitter on top. Models slow and wobbly links.
	Latency time.Duration
	Jitter  time.Duration

	// Bandwidth caps the wrapped side's send rate in bytes per second
	// (0 = unlimited). Implemented as proportional sleep, not queueing.
	Bandwidth int

	// Corrupt is the per-write probability of flipping one byte of the
	// payload before it reaches the wire — the poisoned-frame case the
	// fabric's per-frame CRC exists to catch.
	Corrupt float64

	// Drop is the per-write probability of silently swallowing the write:
	// the caller sees success, the peer sees a hole in the stream.
	Drop float64

	// Truncate is the per-write probability of writing only a prefix and
	// then severing the connection — a torn frame followed by loss.
	Truncate float64

	// Reset is the per-write probability of severing the connection
	// without writing anything, like a mid-stream RST.
	Reset float64

	// Partition is the per-write probability of entering a black-hole
	// partition: writes are swallowed and reads stall for PartitionFor,
	// after which the connection reports failure. Models a half-open link
	// that only heartbeat timeouts can detect.
	Partition    float64
	PartitionFor time.Duration
}

// Enabled reports whether the config injects any fault at all.
func (c *Config) Enabled() bool {
	if c == nil {
		return false
	}
	return c.Latency > 0 || c.Jitter > 0 || c.Bandwidth > 0 ||
		c.Corrupt > 0 || c.Drop > 0 || c.Truncate > 0 || c.Reset > 0 || c.Partition > 0
}

// Metrics counts injected faults. All fields are optional; nil instruments
// (or a nil *Metrics) count nothing. The counts surface on /metrics and in
// the end-of-run report, so a chaos run states exactly how much abuse the
// campaign absorbed.
type Metrics struct {
	Corrupted  *telemetry.Counter // writes with a flipped byte
	Dropped    *telemetry.Counter // writes silently swallowed
	Truncated  *telemetry.Counter // writes cut short, connection severed
	Resets     *telemetry.Counter // connections severed mid-stream
	Partitions *telemetry.Counter // black-hole partitions entered
	Delayed    *telemetry.Counter // writes that paid latency/jitter/bandwidth sleep
}

// NewMetrics registers the chaos instruments on reg under the chaos_*
// namespace; a nil registry yields nil (counting off).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Corrupted:  reg.Counter("chaos_corrupted_writes_total"),
		Dropped:    reg.Counter("chaos_dropped_writes_total"),
		Truncated:  reg.Counter("chaos_truncated_writes_total"),
		Resets:     reg.Counter("chaos_resets_total"),
		Partitions: reg.Counter("chaos_partitions_total"),
		Delayed:    reg.Counter("chaos_delayed_writes_total"),
	}
}

// splitmix64 is the per-connection deterministic stream: tiny, seedable,
// and independent of math/rand's global state or Go version.
type splitmix64 struct{ s uint64 }

func (r *splitmix64) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform float64 in [0,1).
func (r *splitmix64) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// intn returns a uniform int in [0,n).
func (r *splitmix64) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Chaos wraps connections with a shared config, metrics sink, and the
// connection-ordinal counter that keeps schedules deterministic.
type Chaos struct {
	cfg     Config
	metrics *Metrics
	ordinal atomic.Uint64
}

// New builds a Chaos wrapper. A nil config (or one with no faults enabled)
// yields a pass-through wrapper: Wrap returns its argument unchanged.
func New(cfg Config, m *Metrics) *Chaos {
	return &Chaos{cfg: cfg, metrics: m}
}

// Wrap returns conn with the configured fault injection on its write path
// (and partition stalls on its read path). With no faults enabled it
// returns conn itself.
func (c *Chaos) Wrap(conn net.Conn) net.Conn {
	if c == nil || !c.cfg.Enabled() {
		return conn
	}
	ord := c.ordinal.Add(1) - 1
	seed := uint64(c.cfg.Seed)*0x9e3779b97f4a7c15 + ord*0xd1342543de82ef95 + 0x2545f4914f6cdd1d
	fc := &faultConn{Conn: conn, cfg: &c.cfg, m: c.metrics}
	fc.rng.s = seed
	return fc
}

// Listener wraps ln so every accepted connection is chaos-wrapped. With no
// faults enabled it returns ln itself.
func (c *Chaos) Listener(ln net.Listener) net.Listener {
	if c == nil || !c.cfg.Enabled() {
		return ln
	}
	return &faultListener{Listener: ln, chaos: c}
}

type faultListener struct {
	net.Listener
	chaos *Chaos
}

func (l *faultListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.chaos.Wrap(conn), nil
}

// faultConn injects the configured faults on Write and partition stalls on
// Read. The mutex serialises fault decisions so the rng stream stays
// deterministic under concurrent writers (the frame layers above already
// serialise writes, but the wrapper must not depend on that).
type faultConn struct {
	net.Conn
	cfg *Config
	m   *Metrics

	mu      sync.Mutex
	rng     splitmix64
	dead    bool
	parted  bool
	partEnd time.Time
}

// errInjected marks failures this layer created, so logs distinguish
// injected chaos from real network trouble.
type errInjected struct{ what string }

func (e *errInjected) Error() string { return "chaos: injected " + e.what }

// Timeout reports true so deadline-style handling applies where callers
// check for it; the fabric treats any conn error the same way (reconnect).
func (e *errInjected) Timeout() bool { return false }

func inc(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}

func (f *faultConn) Write(b []byte) (int, error) {
	f.mu.Lock()
	if f.dead {
		f.mu.Unlock()
		return 0, &errInjected{what: "reset (connection severed)"}
	}
	if f.parted {
		// Black hole: swallow silently until the partition window closes,
		// then report the connection dead.
		if time.Now().Before(f.partEnd) {
			f.mu.Unlock()
			return len(b), nil
		}
		f.dead = true
		f.mu.Unlock()
		f.Conn.Close()
		return 0, &errInjected{what: "partition expiry"}
	}

	// Fault decisions in fixed order, one rng draw each, so the schedule
	// is a pure function of the stream regardless of which faults are
	// enabled.
	pPart := f.rng.float()
	pReset := f.rng.float()
	pTrunc := f.rng.float()
	pDrop := f.rng.float()
	pCorrupt := f.rng.float()
	corruptAt := f.rng.intn(len(b))
	corruptBit := byte(1 << f.rng.intn(8))

	switch {
	case pPart < f.cfg.Partition:
		dur := f.cfg.PartitionFor
		if dur <= 0 {
			dur = 500 * time.Millisecond
		}
		f.parted = true
		f.partEnd = time.Now().Add(dur)
		f.mu.Unlock()
		if f.m != nil {
			inc(f.m.Partitions)
		}
		return len(b), nil
	case pReset < f.cfg.Reset:
		f.dead = true
		f.mu.Unlock()
		if f.m != nil {
			inc(f.m.Resets)
		}
		f.Conn.Close()
		return 0, &errInjected{what: "reset"}
	case pTrunc < f.cfg.Truncate:
		cut := len(b) / 2
		f.dead = true
		f.mu.Unlock()
		if f.m != nil {
			inc(f.m.Truncated)
		}
		if cut > 0 {
			f.Conn.Write(b[:cut]) // the torn prefix reaches the peer
		}
		f.Conn.Close()
		return cut, &errInjected{what: "truncated write"}
	case pDrop < f.cfg.Drop:
		f.mu.Unlock()
		if f.m != nil {
			inc(f.m.Dropped)
		}
		return len(b), nil
	}

	var sent []byte
	if pCorrupt < f.cfg.Corrupt && len(b) > 0 {
		sent = append(sent, b...)
		sent[corruptAt] ^= corruptBit
		if f.m != nil {
			inc(f.m.Corrupted)
		}
	}
	f.mu.Unlock()

	if d := f.delay(len(b)); d > 0 {
		if f.m != nil {
			inc(f.m.Delayed)
		}
		time.Sleep(d)
	}
	if sent != nil {
		n, err := f.Conn.Write(sent)
		if n > len(b) {
			n = len(b)
		}
		return n, err
	}
	return f.Conn.Write(b)
}

// delay computes the latency + jitter + bandwidth sleep for an n-byte
// write. The jitter draw happens under the lock via rngJitter to keep the
// stream deterministic.
func (f *faultConn) delay(n int) time.Duration {
	d := f.cfg.Latency
	if f.cfg.Jitter > 0 {
		f.mu.Lock()
		d += time.Duration(f.rng.next() % uint64(f.cfg.Jitter))
		f.mu.Unlock()
	}
	if f.cfg.Bandwidth > 0 {
		d += time.Duration(float64(n) / float64(f.cfg.Bandwidth) * float64(time.Second))
	}
	return d
}

func (f *faultConn) Read(b []byte) (int, error) {
	f.mu.Lock()
	if f.dead {
		f.mu.Unlock()
		return 0, &errInjected{what: "reset (connection severed)"}
	}
	if f.parted {
		end := f.partEnd
		f.mu.Unlock()
		// Stall like a silent link, then die. A read deadline set by the
		// caller still fires first if it is sooner — the Conn is closed
		// under us in that case and the Read returns its error.
		if wait := time.Until(end); wait > 0 {
			time.Sleep(wait)
		}
		f.mu.Lock()
		f.dead = true
		f.mu.Unlock()
		f.Conn.Close()
		return 0, &errInjected{what: "partition expiry"}
	}
	f.mu.Unlock()
	return f.Conn.Read(b)
}

// ParseSpec parses the CLI chaos spec: comma-separated key=value pairs.
//
//	seed=7,corrupt=0.01,drop=0.005,truncate=0.002,reset=0.002,
//	partition=0.001,partition-for=300ms,latency=2ms,jitter=1ms,bandwidth=1048576
//
// Unknown keys are rejected with the list of valid ones, so a typo cannot
// silently run a clean campaign that claims to be a chaos run.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return cfg, fmt.Errorf("chaos: %q is not key=value", kv)
		}
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(val, 10, 64)
		case "latency":
			cfg.Latency, err = time.ParseDuration(val)
		case "jitter":
			cfg.Jitter, err = time.ParseDuration(val)
		case "bandwidth":
			cfg.Bandwidth, err = strconv.Atoi(val)
		case "corrupt":
			cfg.Corrupt, err = parseProb(val)
		case "drop":
			cfg.Drop, err = parseProb(val)
		case "truncate":
			cfg.Truncate, err = parseProb(val)
		case "reset":
			cfg.Reset, err = parseProb(val)
		case "partition":
			cfg.Partition, err = parseProb(val)
		case "partition-for":
			cfg.PartitionFor, err = time.ParseDuration(val)
		default:
			return cfg, fmt.Errorf("chaos: unknown key %q (valid: %s)", key, strings.Join(specKeys(), ", "))
		}
		if err != nil {
			return cfg, fmt.Errorf("chaos: %s: %w", key, err)
		}
	}
	return cfg, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0,1]", p)
	}
	return p, nil
}

func specKeys() []string {
	keys := []string{"seed", "latency", "jitter", "bandwidth", "corrupt", "drop", "truncate", "reset", "partition", "partition-for"}
	sort.Strings(keys)
	return keys
}
