// Package cliutil holds the flag validation shared by the three CLIs
// (swifi, faultgen, progrun). Every rule here exists because the
// misconfiguration it rejects used to fail later and worse: a -resume
// without -journal silently started a fresh campaign, -workers 0 looked
// like a request for the serial path but actually selected GOMAXPROCS, and
// a zero -unit-timeout read as "quarantine instantly" when the user meant
// "no deadline".
package cliutil

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"repro/internal/chaos"
	"repro/internal/journal"
	"repro/internal/telemetry"
)

// ValidateWorkers rejects worker counts below 1. The flag defaults to
// runtime.GOMAXPROCS(0) in every CLI, so a sub-1 value is always an
// explicit -workers 0 or negative — historically interpreted as "pick for
// me", which is indistinguishable from a typo.
func ValidateWorkers(n int) error {
	if n < 1 {
		return fmt.Errorf("-workers must be at least 1, got %d (omit the flag to use all CPUs)", n)
	}
	return nil
}

// ValidateUnitTimeout rejects an explicitly-set zero or negative duration
// for the named flag. The unset default (0) keeps meaning "no per-unit
// deadline" — only a user who typed the flag and gave it a non-positive
// value is told so, instead of getting a deadline that never (or always)
// fires.
func ValidateUnitTimeout(fs *flag.FlagSet, name string, v time.Duration) error {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	if set && v <= 0 {
		return fmt.Errorf("-%s must be positive, got %v (omit the flag to disable the per-unit deadline)", name, v)
	}
	return nil
}

// ValidateResume rejects -resume without -journal: there is no file to
// resume from, and silently running a fresh campaign would discard exactly
// the progress the user asked to keep.
func ValidateResume(resume bool, journalPath string) error {
	if resume && journalPath == "" {
		return fmt.Errorf("-resume requires -journal (there is no journal file to resume from)")
	}
	return nil
}

// HeartbeatFlags carries the liveness cadence shared by the worker
// supervisor and the campaign fabric. The defaults are the values that
// were hardcoded before the flags existed: 500ms beats, 10s of tolerated
// silence — right for pipes and loopback, too tight for WAN links.
type HeartbeatFlags struct {
	Interval time.Duration
	Timeout  time.Duration
}

// AddHeartbeatFlags registers -heartbeat-interval and -heartbeat-timeout.
func AddHeartbeatFlags(fs *flag.FlagSet) *HeartbeatFlags {
	h := &HeartbeatFlags{}
	fs.DurationVar(&h.Interval, "heartbeat-interval", 500*time.Millisecond,
		"worker/fabric heartbeat cadence (WAN fabrics want looser values)")
	fs.DurationVar(&h.Timeout, "heartbeat-timeout", 10*time.Second,
		"silence tolerated before a worker subprocess or fabric peer is declared dead")
	return h
}

// Validate rejects a non-positive interval and a timeout under twice the
// interval. The 2× floor is the minimum that tolerates losing one beat: with
// timeout < 2×interval, a single dropped or delayed heartbeat — routine under
// load, GC pauses, or chaos testing — declares a healthy peer dead and
// triggers redelivery for nothing.
func (h *HeartbeatFlags) Validate() error {
	if h.Interval <= 0 {
		return fmt.Errorf("-heartbeat-interval must be positive, got %v", h.Interval)
	}
	if h.Timeout < 2*h.Interval {
		return fmt.Errorf("-heartbeat-timeout (%v) must be at least twice -heartbeat-interval (%v): anything tighter turns one missed beat into a false host death", h.Timeout, h.Interval)
	}
	return nil
}

// FabricFlags carries the distributed-campaign flags shared by the CLIs:
// -fabric-listen makes the process a coordinator, -fabric-join an executor,
// -fabric-hosts sets how many executors the coordinator waits for.
type FabricFlags struct {
	Listen string
	Join   string
	Hosts  int
	// DialTimeout caps an executor's initial connection establishment,
	// retries included; ReconnectWindow caps how long a lost connection may
	// spend re-establishing before the session is abandoned.
	DialTimeout     time.Duration
	ReconnectWindow time.Duration
	// SessionTimeout is the coordinator's detach grace: how long an
	// executor session survives a lost connection before its units are
	// redelivered. Zero derives 2× the heartbeat timeout.
	SessionTimeout time.Duration
	// Chaos is the -chaos fault spec ("seed=7,corrupt=0.01,drop=0.02,...");
	// empty disables injection. Parsed by ChaosConfig.
	Chaos string
}

// AddFabricFlags registers the fabric flags.
func AddFabricFlags(fs *flag.FlagSet) *FabricFlags {
	f := &FabricFlags{}
	fs.StringVar(&f.Listen, "fabric-listen", "",
		"coordinate a distributed campaign: listen on this TCP address and shard units over joined executors")
	fs.StringVar(&f.Join, "fabric-join", "",
		"join a distributed campaign as an executor: connect to this coordinator address")
	fs.IntVar(&f.Hosts, "fabric-hosts", 1,
		"executors the coordinator waits for before sharding (with -fabric-listen)")
	fs.DurationVar(&f.DialTimeout, "fabric-dial-timeout", 10*time.Second,
		"total time an executor spends establishing its first coordinator connection, retries included")
	fs.DurationVar(&f.ReconnectWindow, "fabric-reconnect-window", 60*time.Second,
		"total time an executor spends re-establishing a lost coordinator connection before abandoning the session")
	fs.DurationVar(&f.SessionTimeout, "fabric-session-timeout", 0,
		"coordinator grace for a detached executor session before its units are redelivered (0 = 2x heartbeat-timeout)")
	fs.StringVar(&f.Chaos, "chaos", "",
		"inject deterministic network faults on fabric links, e.g. seed=7,corrupt=0.01,drop=0.02,reset=0.005 (testing only)")
	return f
}

// Validate rejects contradictory fabric flags: one process is either the
// coordinator or an executor, the host floor only means something on the
// coordinator, the resilience windows must be positive, and a -chaos spec
// must parse.
func (f *FabricFlags) Validate() error {
	if f.Listen != "" && f.Join != "" {
		return fmt.Errorf("-fabric-listen and -fabric-join are mutually exclusive (coordinator or executor, not both)")
	}
	if f.Hosts < 1 {
		return fmt.Errorf("-fabric-hosts must be at least 1, got %d", f.Hosts)
	}
	if f.DialTimeout <= 0 {
		return fmt.Errorf("-fabric-dial-timeout must be positive, got %v", f.DialTimeout)
	}
	if f.ReconnectWindow <= 0 {
		return fmt.Errorf("-fabric-reconnect-window must be positive, got %v", f.ReconnectWindow)
	}
	if f.SessionTimeout < 0 {
		return fmt.Errorf("-fabric-session-timeout must not be negative, got %v (0 derives it from -heartbeat-timeout)", f.SessionTimeout)
	}
	if _, err := f.ChaosConfig(); err != nil {
		return err
	}
	return nil
}

// ChaosConfig parses the -chaos spec into a chaos configuration; an empty
// spec returns nil (no injection).
func (f *FabricFlags) ChaosConfig() (*chaos.Config, error) {
	if f.Chaos == "" {
		return nil, nil
	}
	cfg, err := chaos.ParseSpec(f.Chaos)
	if err != nil {
		return nil, fmt.Errorf("-chaos: %w", err)
	}
	return &cfg, nil
}

// ChaosWrap builds the connection wrapper for the -chaos spec, registering
// the injector's counters on reg (nil reg: injection without metrics). An
// empty spec returns a nil wrapper — the fabric's "no wrapping" value.
func (f *FabricFlags) ChaosWrap(reg *telemetry.Registry) (func(net.Conn) net.Conn, error) {
	cfg, err := f.ChaosConfig()
	if err != nil || cfg == nil {
		return nil, err
	}
	return chaos.New(*cfg, chaos.NewMetrics(reg)).Wrap, nil
}

// StorageChaos builds the storage/IPC-plane injector for the -chaos spec:
// the disk.* keys fault the journal and sidecar handles (JournalWrap), the
// pipe.* keys fault proc-isolation worker pipes (PipeWrap), disk.poison
// corrupts golden checkpoints. A spec with none of those returns nil —
// network-only chaos keeps the storage stack entirely unwrapped.
func (f *FabricFlags) StorageChaos(reg *telemetry.Registry) (*chaos.Chaos, error) {
	cfg, err := f.ChaosConfig()
	if err != nil || cfg == nil {
		return nil, err
	}
	if !cfg.DiskEnabled() && !cfg.PipeEnabled() && cfg.DiskPoison <= 0 {
		return nil, nil
	}
	return chaos.New(*cfg, chaos.NewMetrics(reg)), nil
}

// JournalWrap adapts a storage-chaos injector into the journal package's
// File substitution hook (journal.CreateWrapped / OpenWrapped); nil unless
// disk faults are configured, so clean runs take the unwrapped *os.File
// path.
func JournalWrap(c *chaos.Chaos) journal.Wrap {
	if cc := c.Config(); !cc.DiskEnabled() {
		return nil
	}
	return func(f *os.File) journal.File { return c.WrapFile(f) }
}

// PipeWrap adapts a storage-chaos injector into the worker supervisor's
// pipe interposition hook (campaign.ProcOptions.WrapPipes); nil unless pipe
// faults are configured.
func PipeWrap(c *chaos.Chaos) func(io.WriteCloser, io.Reader) (io.WriteCloser, io.Reader) {
	if cc := c.Config(); !cc.PipeEnabled() {
		return nil
	}
	return c.WrapPipes
}

// ParseIsolation parses the -isolation flag shared by the CLIs, reporting
// whether process isolation (supervised worker subprocesses) was requested.
func ParseIsolation(s string) (proc bool, err error) {
	switch s {
	case "inproc":
		return false, nil
	case "proc":
		return true, nil
	default:
		return false, fmt.Errorf("-isolation must be inproc or proc, got %q", s)
	}
}
