package main

import "testing"

func TestRunSummary(t *testing.T) {
	if err := run([]string{"JB.team11"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPlans(t *testing.T) {
	for _, class := range []string{"assign", "check", "hardware"} {
		if err := run([]string{"-class", class, "-n", "2", "JB.team11"}); err != nil {
			t.Fatalf("%s: %v", class, err)
		}
	}
}

func TestRunJSON(t *testing.T) {
	if err := run([]string{"-class", "assign", "-n", "1", "-json", "JB.team11"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMetrics(t *testing.T) {
	if err := run([]string{"-metrics", "C.team1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing program accepted")
	}
	if err := run([]string{"nope"}); err == nil {
		t.Error("unknown program accepted")
	}
	if err := run([]string{"-class", "zap", "JB.team11"}); err == nil {
		t.Error("unknown class accepted")
	}
}
