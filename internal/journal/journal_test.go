package journal_test

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/journal"
)

func tempPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "campaign.wal")
}

func TestRoundTrip(t *testing.T) {
	path := tempPath(t)
	j, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Bind(0xfeedface); err != nil {
		t.Fatal(err)
	}
	want := map[int]journal.Outcome{
		0:  {Mode: 1, Activated: true},
		7:  {Mode: 4},
		12: {Mode: 3, Activated: true, Degraded: true},
		99: {Mode: 5, Retried: true},
	}
	for u, o := range want {
		if err := j.Append(u, o); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Bind(0xfeedface); err != nil {
		t.Fatal(err)
	}
	if r.Len() != len(want) {
		t.Fatalf("reloaded %d units, want %d", r.Len(), len(want))
	}
	for u, o := range want {
		got, ok := r.Done(u)
		if !ok || got != o {
			t.Fatalf("unit %d: got (%+v, %v), want %+v", u, got, ok, o)
		}
	}
	if _, ok := r.Done(1); ok {
		t.Fatal("unit 1 was never journaled but reports done")
	}
}

func TestFingerprintMismatchRefused(t *testing.T) {
	path := tempPath(t)
	j, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Bind(111); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(0, journal.Outcome{Mode: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	r, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	err = r.Bind(222)
	if err == nil || !strings.Contains(err.Error(), "different campaign plan") {
		t.Fatalf("binding a foreign plan succeeded or gave a vague error: %v", err)
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := tempPath(t)
	j, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Bind(5); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 10; u++ {
		if err := j.Append(u, journal.Outcome{Mode: 2}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Simulate a kill mid-append: chop the last record in half.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	r, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 9 {
		t.Fatalf("torn journal reloaded %d units, want 9", r.Len())
	}
	// The truncated tail must be gone so new appends produce a clean file.
	if err := r.Bind(5); err != nil {
		t.Fatal(err)
	}
	if err := r.Append(9, journal.Outcome{Mode: 2}); err != nil {
		t.Fatal(err)
	}
	r.Close()

	r2, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Len() != 10 {
		t.Fatalf("after repair and re-append got %d units, want 10", r2.Len())
	}
}

func TestCorruptRecordCutsReplay(t *testing.T) {
	path := tempPath(t)
	j, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Bind(5); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 10; u++ {
		if err := j.Append(u, journal.Outcome{Mode: 1}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Flip a byte inside record 4 (header is 20 bytes, records 12 each).
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, 20+4*12+2); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 4 {
		t.Fatalf("replay past a corrupt record: got %d units, want 4", r.Len())
	}
	for u := 0; u < 4; u++ {
		if _, ok := r.Done(u); !ok {
			t.Fatalf("unit %d before the corruption was dropped", u)
		}
	}
}

func TestCorruptHeaderRefused(t *testing.T) {
	path := tempPath(t)
	j, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Bind(5); err != nil {
		t.Fatal(err)
	}
	j.Close()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xaa}, 9); err != nil { // inside the fingerprint
		t.Fatal(err)
	}
	f.Close()
	if _, err := journal.Open(path); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt header accepted: %v", err)
	}
}

func TestAppendBeforeBindRefused(t *testing.T) {
	j, err := journal.Create(tempPath(t))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(0, journal.Outcome{Mode: 1}); err == nil {
		t.Fatal("Append before Bind succeeded")
	}
}

func TestConcurrentAppend(t *testing.T) {
	path := tempPath(t)
	j, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Bind(9); err != nil {
		t.Fatal(err)
	}
	const n = 500
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for u := w; u < n; u += 8 {
				if err := j.Append(u, journal.Outcome{Mode: uint8(1 + u%4)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if j.Len() != n {
		t.Fatalf("got %d units, want %d", j.Len(), n)
	}
	j.Close()

	r, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != n {
		t.Fatalf("reloaded %d units, want %d", r.Len(), n)
	}
	for u := 0; u < n; u++ {
		if o, ok := r.Done(u); !ok || o.Mode != uint8(1+u%4) {
			t.Fatalf("unit %d: got (%+v, %v)", u, o, ok)
		}
	}
}

func TestOnAppendObservesProgress(t *testing.T) {
	j, err := journal.Create(tempPath(t))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Bind(1); err != nil {
		t.Fatal(err)
	}
	var seen []int
	j.OnAppend = func(done int) { seen = append(seen, done) }
	for u := 0; u < 3; u++ {
		if err := j.Append(u, journal.Outcome{Mode: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// A duplicate append must not fire the hook.
	if err := j.Append(1, journal.Outcome{Mode: 1}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[2] != 3 {
		t.Fatalf("OnAppend saw %v, want [1 2 3]", seen)
	}
}
