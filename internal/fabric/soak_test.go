package fabric

import (
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/journal"
	"repro/internal/telemetry"
)

// TestFabricPartitionHealSoak is the long-haul partition drill: campaigns
// run back to back for minutes while every link — coordinator side and
// executor side — keeps falling into multi-second asymmetric partitions
// that heal mid-campaign. The session layer must ride every one of them
// out (retransmit over the healed link, or reconnect if the silence timer
// fires first) and every round must still deliver every verdict exactly
// once with zero quarantines.
//
// The test is opt-in twice over: -short skips it, and without SWIFI_SOAK=1
// it skips too, so it costs regular CI nothing. The nightly job
// (scripts/nightly_soak.sh) sets the gate; SWIFI_SOAK_FOR overrides the
// default 2-minute budget.
func TestFabricPartitionHealSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test: skipped with -short")
	}
	if os.Getenv("SWIFI_SOAK") != "1" {
		t.Skip("soak test: set SWIFI_SOAK=1 to run (wired into scripts/nightly_soak.sh)")
	}
	soakFor := 2 * time.Minute
	if v := os.Getenv("SWIFI_SOAK_FOR"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("SWIFI_SOAK_FOR: %v", err)
		}
		soakFor = d
	}

	const units = 150
	reg := telemetry.NewRegistry()
	cm := chaos.NewMetrics(reg)
	partition := func(seed int64) *chaos.Chaos {
		return chaos.New(chaos.Config{
			Seed:          seed,
			Partition:     0.004,
			PartitionFor:  3 * time.Second,
			PartitionHeal: true,
		}, cm)
	}

	deadline := time.Now().Add(soakFor)
	rounds := 0
	for time.Now().Before(deadline) {
		rounds++
		coord, err := NewCoordinator(CoordinatorOptions{
			Addr:              "127.0.0.1:0",
			MinHosts:          2,
			Spec:              testSpec(),
			Units:             units,
			HeartbeatInterval: 50 * time.Millisecond,
			// The whole point: tolerate more silence than one partition
			// window, so a healed outage is survived in place rather than
			// declared a host death.
			HeartbeatTimeout: 10 * time.Second,
			SessionTimeout:   20 * time.Second,
			Quarantine:       journal.Outcome{Mode: 9},
			WrapConn:         partition(int64(rounds)).Wrap,
			Log:              t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		joinErr := make(chan error, 2)
		for i := 0; i < 2; i++ {
			name := fmt.Sprintf("soak-%d-%d", rounds, i)
			execChaos := partition(int64(rounds)*100 + int64(i))
			go func() {
				joinErr <- Join(ctx, coord.Addr().String(), ExecutorOptions{
					Name:            name,
					Workers:         2,
					Batch:           InProcBatch(fakeFactory(units, 5*time.Millisecond), 2),
					ReconnectWindow: 30 * time.Second,
					WrapConn:        execChaos.Wrap,
				})
			}()
		}
		results := collectRun(t, coord, units, nil)
		checkResults(t, results)
		for i := 0; i < 2; i++ {
			if err := <-joinErr; err != nil {
				t.Fatalf("round %d: executor join: %v", rounds, err)
			}
		}
		cancel()
		t.Logf("round %d complete: partitions=%d healed=%d",
			rounds, reg.Counters()["chaos_partitions_total"], reg.Counters()["chaos_partitions_healed_total"])
	}

	parts := reg.Counters()["chaos_partitions_total"]
	healed := reg.Counters()["chaos_partitions_healed_total"]
	if parts == 0 {
		t.Fatalf("%d rounds injected no partitions; raise the probability or the soak budget", rounds)
	}
	if healed == 0 {
		t.Fatal("no partition healed mid-campaign; the asymmetric-outage path went unexercised")
	}
	t.Logf("soak complete: %d rounds, %d partitions, %d healed", rounds, parts, healed)
}
