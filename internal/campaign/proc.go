package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"time"

	"repro/internal/fault"
	"repro/internal/injector"
	"repro/internal/journal"
	"repro/internal/parallel"
	"repro/internal/telemetry"
	"repro/internal/worker"
)

// This file is the process-isolation half of the campaign executor: with
// Config.Isolation set to IsolationProc, units execute in supervised worker
// subprocesses (internal/worker) instead of goroutines. The campaign plan
// is never shipped over the wire — both sides rebuild it deterministically
// from the serialized Config and cross-check the plan fingerprint in the
// handshake — so the protocol carries only unit indices out and verdicts
// back, and the Result stays bit-identical to in-process execution for any
// worker count: the same units, in the same slots, folded in the same
// planning order.

// Isolation selects where campaign units execute.
type Isolation int

const (
	// IsolationInProc runs units on goroutines in this process (the
	// default; fastest, but a hard host failure in one unit can take the
	// whole campaign down with it).
	IsolationInProc Isolation = iota
	// IsolationProc runs units in supervised worker subprocesses: a host
	// crash, OOM-kill or wedge costs one worker and at most one in-flight
	// unit delivery, never the campaign.
	IsolationProc
)

func (i Isolation) String() string {
	switch i {
	case IsolationInProc:
		return "inproc"
	case IsolationProc:
		return "proc"
	default:
		return fmt.Sprintf("isolation(%d)", int(i))
	}
}

// ProcOptions tunes the worker pool used under IsolationProc. The zero
// value (and a nil *ProcOptions) selects the worker package defaults plus
// self-re-exec spawning; tests override Spawn and the cadences.
type ProcOptions struct {
	// Spawn builds one (not yet started) worker subprocess. nil re-executes
	// the current binary with the single argument -worker-mode, which every
	// CLI wires to worker.Serve.
	Spawn func() *exec.Cmd

	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	MaxDeliveries     int
	MaxRestarts       int
	MemQuota          int64
	BackoffBase       time.Duration
	BackoffMax        time.Duration

	// WrapPipes, when non-nil, interposes on every worker subprocess's
	// stdin/stdout pair — the storage/IPC chaos plane's hook for corrupting,
	// truncating or severing supervisor pipes (see worker.Options.WrapPipes).
	// Production paths leave it nil.
	WrapPipes func(w io.WriteCloser, r io.Reader) (io.WriteCloser, io.Reader)
}

// SpecKindCampaign is the worker.Spec kind for class campaigns (§6).
const SpecKindCampaign = "campaign/v1"

// procSpec is the JSON worker spec payload: exactly the Config fields that
// determine the campaign plan (everything planFingerprint hashes is derived
// from these plus the compiled programs), with execution-only knobs reduced
// to the ones the worker itself enforces per unit.
type procSpec struct {
	Programs      []string       `json:"programs"`
	Classes       []int          `json:"classes"`
	CasesPerFault int            `json:"cases_per_fault"`
	ChosenAssign  map[string]int `json:"chosen_assign,omitempty"`
	ChosenCheck   map[string]int `json:"chosen_check,omitempty"`
	Seed          int64          `json:"seed"`
	Mode          int            `json:"mode"`
	MetricGuided  bool           `json:"metric_guided"`
	NoFastForward bool           `json:"no_fast_forward"`
	InterpOnly    bool           `json:"interp_only"`
	UnitTimeoutMS int64          `json:"unit_timeout_ms"`
}

// procSpecFromConfig serializes a filled Config into the wire spec.
func procSpecFromConfig(cfg *Config, fp uint64) (worker.Spec, error) {
	classes := make([]int, len(cfg.Classes))
	for i, c := range cfg.Classes {
		classes[i] = int(c)
	}
	payload, err := json.Marshal(procSpec{
		Programs:      cfg.Programs,
		Classes:       classes,
		CasesPerFault: cfg.CasesPerFault,
		ChosenAssign:  cfg.ChosenAssign,
		ChosenCheck:   cfg.ChosenCheck,
		Seed:          cfg.Seed,
		Mode:          int(cfg.Mode),
		MetricGuided:  cfg.MetricGuided,
		NoFastForward: cfg.NoFastForward,
		InterpOnly:    cfg.InterpOnly,
		UnitTimeoutMS: cfg.UnitTimeout.Milliseconds(),
	})
	if err != nil {
		return worker.Spec{}, err
	}
	return worker.Spec{Kind: SpecKindCampaign, Fingerprint: fp, Payload: payload}, nil
}

// configFromProcSpec is the worker-side inverse.
func configFromProcSpec(payload []byte) (Config, error) {
	var s procSpec
	if err := json.Unmarshal(payload, &s); err != nil {
		return Config{}, fmt.Errorf("campaign: bad worker spec: %w", err)
	}
	classes := make([]fault.Class, len(s.Classes))
	for i, c := range s.Classes {
		classes[i] = fault.Class(c)
	}
	return Config{
		Programs:      s.Programs,
		Classes:       classes,
		CasesPerFault: s.CasesPerFault,
		ChosenAssign:  s.ChosenAssign,
		ChosenCheck:   s.ChosenCheck,
		Seed:          s.Seed,
		Mode:          injector.Mode(s.Mode),
		MetricGuided:  s.MetricGuided,
		NoFastForward: s.NoFastForward,
		InterpOnly:    s.InterpOnly,
		UnitTimeout:   time.Duration(s.UnitTimeoutMS) * time.Millisecond,
	}, nil
}

// WorkerFactory is the worker.Factory for campaign specs: it re-plans the
// campaign from the spec payload, verifies the rebuilt plan's fingerprint
// against the supervisor's (a mismatch means differing builds or program
// tables — executing under a wrong unit numbering would corrupt the
// campaign silently), and serves units through the same per-unit isolation
// path (runIsolated) the in-process executor uses, so panic-retry, timeout
// and cycle-quota semantics are identical in both modes.
func WorkerFactory(spec worker.Spec) (worker.Runner, error) {
	if spec.Kind != SpecKindCampaign {
		return nil, fmt.Errorf("campaign: worker spec kind %q, this factory serves %q", spec.Kind, SpecKindCampaign)
	}
	cfg, err := configFromProcSpec(spec.Payload)
	if err != nil {
		return nil, err
	}
	pc, err := planCampaign(&cfg)
	if err != nil {
		return nil, fmt.Errorf("campaign: worker re-planning failed: %w", err)
	}
	if pc.fp != spec.Fingerprint {
		return nil, fmt.Errorf("campaign: rebuilt plan fingerprint %016x does not match the supervisor's %016x; differing builds or configuration", pc.fp, spec.Fingerprint)
	}
	return &campaignRunner{
		units: pc.units,
		ex: &unitExecutor{
			opts:  execOpts{unitTimeout: cfg.UnitTimeout, interpOnly: cfg.InterpOnly},
			units: pc.units,
			out:   make([]unitOutcome, len(pc.units)),
			pools: make([]*machinePool, 1),
		},
	}, nil
}

// campaignRunner executes units inside a worker process. It is a
// single-worker unitExecutor behind the worker.Runner interface: worker
// subprocesses are single-threaded unit servers (parallelism lives in the
// pool, one unit in flight per process), so slot 0 is the only pool.
type campaignRunner struct {
	units []runUnit
	ex    *unitExecutor
}

func (r *campaignRunner) Units() int { return len(r.units) }

// testProcUnitHook, when non-nil (worker processes in tests only), runs
// before each unit a campaignRunner serves; it may kill or stop the worker
// process to exercise the supervisor.
var testProcUnitHook func(unit int)

func (r *campaignRunner) Run(unit int) (journal.Outcome, []byte, error) {
	if h := testProcUnitHook; h != nil {
		h(unit)
	}
	o, err := r.ex.runIsolated(0, &r.units[unit])
	if err != nil {
		return journal.Outcome{}, nil, err
	}
	return o.journal(), nil, nil
}

// defaultSpawn re-executes the current binary in worker mode.
func defaultSpawn() *exec.Cmd {
	exe, err := os.Executable()
	if err != nil {
		exe = os.Args[0]
	}
	cmd := exec.Command(exe, "-worker-mode")
	cmd.Stderr = os.Stderr
	return cmd
}

// executeUnitsProc is the IsolationProc counterpart of executeUnitsOpts:
// journaled units are replayed exactly as in-process, the rest are driven
// through a supervised worker pool, and every verdict is journaled as it
// arrives. If the pool's circuit breaker trips — the host cannot keep
// worker subprocesses alive — the campaign degrades to in-process execution
// for the units still missing rather than failing, with the completed
// verdicts carried over via the prefill slots.
func executeUnitsProc(cfg *Config, o execOpts, units []runUnit, fp uint64) ([]unitOutcome, error) {
	ctx := o.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]unitOutcome, len(units))
	todo := make([]int, 0, len(units))
	for i := range units {
		if o.journal != nil {
			if jo, ok := o.journal.Done(i); ok {
				out[i] = outcomeFromJournal(jo)
				out[i].replayed = true
				o.met.noteReplayed(out[i])
				if o.tracer != nil {
					e := traceUnit(telemetry.KindReplayed, i, &units[i], 0)
					e.Mode = out[i].mode.String()
					o.tracer.Emit(e)
				}
				continue
			}
		}
		todo = append(todo, i)
	}
	if len(todo) == 0 {
		return out, nil
	}

	spec, err := procSpecFromConfig(cfg, fp)
	if err != nil {
		return nil, err
	}
	po := cfg.Proc
	if po == nil {
		po = &ProcOptions{}
	}
	spawn := po.Spawn
	if spawn == nil {
		spawn = defaultSpawn
	}
	var wm *telemetry.WorkerMetrics
	if o.met != nil && cfg.Telemetry != nil {
		wm = newWorkerMetrics(cfg.Telemetry.Registry())
	}
	pool, err := worker.NewPool(worker.Options{
		Workers:           parallel.DefaultWorkers(o.workers),
		Command:           spawn,
		Spec:              spec,
		HeartbeatInterval: po.HeartbeatInterval,
		HeartbeatTimeout:  po.HeartbeatTimeout,
		UnitTimeout:       o.unitTimeout,
		MaxDeliveries:     po.MaxDeliveries,
		MaxRestarts:       po.MaxRestarts,
		BackoffBase:       po.BackoffBase,
		BackoffMax:        po.BackoffMax,
		MemQuota:          po.MemQuota,
		Quarantine:        journal.Outcome{Mode: uint8(HostFault)},
		WrapPipes:         po.WrapPipes,
		Metrics:           wm,
		Tracer:            o.tracer,
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "campaign: "+format+"\n", args...)
		},
	})
	if err != nil {
		return nil, err
	}

	// onResult is serialized by the pool, so the slot writes and journal
	// appends need no further locking.
	err = pool.Run(ctx, todo, func(r worker.Result) error {
		if r.Quarantined {
			u := &units[r.Index]
			quarantineLog(u, "crashed its worker subprocess on every delivery; quarantined by the supervisor", nil)
		}
		out[r.Index] = outcomeFromJournal(r.Outcome)
		o.met.noteVerdict(0, out[r.Index])
		if o.tracer != nil {
			u := &units[r.Index]
			v := traceUnit(telemetry.KindVerdict, r.Index, u, 0)
			v.Mode = out[r.Index].mode.String()
			o.tracer.Emit(v)
		}
		if o.journal != nil {
			if err := o.journal.Append(r.Index, r.Outcome); err != nil {
				return fmt.Errorf("campaign: %w", err)
			}
		}
		return nil
	})
	switch {
	case err == nil:
		return out, nil
	case errors.Is(err, worker.ErrCircuitOpen):
		// Graceful degradation: process isolation is unavailable on this
		// host right now, but the campaign itself is fine. Finish the
		// missing units in-process; completed verdicts ride along as
		// prefilled slots (and are already journaled).
		fmt.Fprintf(os.Stderr, "campaign: process isolation degraded to in-process execution (%v)\n", err)
		o.prefill = out
		return executeUnitsOpts(o, units)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return out, err
	default:
		return nil, err
	}
}
