#!/usr/bin/env bash
# Chaos smoke: the DESIGN.md §5i contract end to end through the real
# binary, TCP, fault injection and the signal path. A journaled fig7
# campaign is sharded over two executors with every fabric link running
# under the deterministic chaos proxy; the coordinator is SIGKILLed
# mid-campaign — no goodbye, no journal close, no sidecar cleanup — and
# restarted with -resume. The merged output AND the canonical journal
# bytes must be identical to a clean single-host run, and the scheduling
# sidecar must be gone once the campaign completes.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/swifi" ./cmd/swifi
cd "$workdir"

# Single-host golden: output and canonical journal bytes.
./swifi -scale 0.05 -seed 7 -journal golden.wal fig7 > fig7_golden.txt

CHAOS='seed=7,corrupt=0.01,drop=0.01,truncate=0.005,reset=0.005'
FLAGS='-scale 0.05 -seed 7 -heartbeat-interval 100ms -heartbeat-timeout 2s'

# Coordinator 1: chaos on every accepted link, scheduling state journaled
# through the sidecar next to chaos.wal. The session timeout only has to
# cover redial-and-reattach (seconds — its clock restarts when a resumed
# coordinator recovers the session table), and it bounds how long the
# campaign stalls when an executor is truly killed below.
# shellcheck disable=SC2086
./swifi $FLAGS -journal chaos.wal \
  -fabric-listen 127.0.0.1:9372 -fabric-hosts 2 \
  -fabric-session-timeout 15s -chaos "$CHAOS" \
  fig7 > fig7_chaos.txt 2> coord1.log &
COORD=$!

# Two executors with their own chaos streams. The dial timeout covers the
# coordinator's planning phase; the reconnect window covers its death and
# restart.
./swifi -fabric-join 127.0.0.1:9372 -workers 2 \
  -fabric-dial-timeout 60s -fabric-reconnect-window 120s \
  -chaos 'seed=8,corrupt=0.01,drop=0.01' 2> exec1.log &
EXEC1=$!
./swifi -fabric-join 127.0.0.1:9372 -workers 2 \
  -fabric-dial-timeout 60s -fabric-reconnect-window 120s \
  -chaos 'seed=9,corrupt=0.01,drop=0.01' 2> exec2.log &
EXEC2=$!

# SIGKILL the coordinator mid-campaign — the crash the recovery path
# exists for.
sleep 6
kill -9 "$COORD" 2>/dev/null || echo "coordinator already done; restart degenerates to a journal replay"
wait "$COORD" || true

# Restart: -resume replays finished units from the journal, the sidecar
# rebuilds the session table and outstanding ranges, and the executors
# re-attach with their session tokens mid-flight. The report carries the
# injected-fault counts.
# shellcheck disable=SC2086
./swifi $FLAGS -journal chaos.wal -resume \
  -fabric-listen 127.0.0.1:9372 -fabric-hosts 1 \
  -fabric-session-timeout 15s -chaos "$CHAOS" \
  -report report.json \
  fig7 > fig7_chaos.txt 2> coord2.log &
COORD2=$!

# Once the recovered campaign is back underway, SIGKILL an executor too:
# its session expires and its units redeliver to the survivor.
sleep 4
kill -9 "$EXEC1" 2>/dev/null || echo "executor 1 already done; campaign must still finish clean"

wait "$COORD2"
wait "$EXEC1" || true
# The surviving executor must ride out everything and exit clean.
wait "$EXEC2"

# Bit-identical output and journal; no scheduling state left behind.
diff fig7_golden.txt fig7_chaos.txt
cmp golden.wal chaos.wal
if [ -e chaos.wal.fabric ]; then
  echo "fabric sidecar survived a completed campaign" >&2
  exit 1
fi
# The absorbed abuse must be visible: at least one nonzero chaos_*
# counter in the end-of-run report (a chaos run that injected nothing
# tested nothing).
if ! grep -Eq '"chaos_[a-z_]+": *[1-9]' report.json; then
  echo "no nonzero chaos_* counter in report.json" >&2
  exit 1
fi
echo "chaos smoke passed"
