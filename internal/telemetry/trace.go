package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Trace event kinds, covering the unit lifecycle (planned → dispatched →
// executed → verdict) plus the resilience events of the executor and the
// worker supervisor. Kinds are plain strings on the wire so readers need no
// table from this package.
const (
	KindPlanned    = "planned"        // unit entered the campaign plan
	KindDispatched = "dispatched"     // unit handed to a worker
	KindExecuted   = "executed"       // unit attempt finished (duration attached)
	KindVerdict    = "verdict"        // unit classified (mode attached)
	KindReplayed   = "replayed"       // unit outcome taken from the journal, not executed
	KindRetry      = "retry"          // first attempt panicked; retrying on a fresh machine
	KindQuarantine = "quarantine"     // unit quarantined as a host fault
	KindDegraded   = "degraded"       // golden checkpoint unusable; fell back to straight execution
	KindRestart    = "worker_restart" // a worker subprocess died abnormally
	KindRedeliver  = "redeliver"      // a unit was redelivered after a worker death
	KindBreaker    = "breaker_open"   // the worker restart circuit breaker tripped

	// Fabric kinds, emitted by the distributed-campaign coordinator.
	KindHostJoined     = "host_joined"     // an executor host completed the fabric handshake
	KindHostLost       = "host_lost"       // an executor host died; its units were redelivered
	KindSteal          = "steal"           // an idle host stole half a straggler's range
	KindRangeAssigned  = "range_assign"    // a unit range was shipped to an executor host
	KindHostDetached   = "host_detached"   // an executor connection dropped; session held for re-attach
	KindHostResumed    = "host_resumed"    // an executor re-attached to its surviving session
	KindCoordRecovered = "coord_recovered" // a restarted coordinator rebuilt state from the sidecar log
)

// Event is one structured trace event. Zero-valued fields are omitted from
// the JSONL form; T is stamped by Emit when left zero. Host names the
// executor the event happened on in a merged fleet trace; empty means the
// local process (on a coordinator: the coordinator itself).
type Event struct {
	T       time.Time `json:"t"`
	Kind    string    `json:"kind"`
	Host    string    `json:"host,omitempty"`
	Unit    int       `json:"unit,omitempty"`
	Program string    `json:"program,omitempty"`
	Fault   string    `json:"fault,omitempty"`
	Case    int       `json:"case,omitempty"`
	Mode    string    `json:"mode,omitempty"`
	Worker  int       `json:"worker,omitempty"`
	DurUS   int64     `json:"dur_us,omitempty"`
	Detail  string    `json:"detail,omitempty"`
}

// Tracer captures events in a bounded ring buffer and, when a sink is
// attached, streams every event as one JSON line. The ring holds the most
// recent events for the end-of-run report and the debug server; the sink is
// the full firehose (-trace <file>). A nil *Tracer is a no-op.
type Tracer struct {
	mu    sync.Mutex
	ring  []Event
	cap   int
	next  int    // ring insertion cursor
	total uint64 // events ever emitted
	kinds map[string]int

	sink   *bufio.Writer
	closer io.Closer
	err    error // first sink write error; reported by Close

	mirror func(Event) // federation tee; see Mirror
}

// DefaultTraceCap is the ring capacity CLIs use when none is configured.
const DefaultTraceCap = 4096

// NewTracer returns a tracer whose ring holds the last capacity events
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{cap: capacity, kinds: make(map[string]int)}
}

// SinkJSONL attaches a JSONL sink: every subsequent event is appended to w
// as one JSON object per line. If w is also an io.Closer it is closed by
// Close. Only one sink may be attached.
func (t *Tracer) SinkJSONL(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sink = bufio.NewWriter(w)
	if c, ok := w.(io.Closer); ok {
		t.closer = c
	}
}

// Emit records one event. The timestamp is stamped here when e.T is zero, so
// call sites do not pay time.Now when the tracer is nil.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	if e.T.IsZero() {
		e.T = time.Now()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, e)
	} else {
		t.ring[t.next] = e
	}
	t.next = (t.next + 1) % t.cap
	t.total++
	t.kinds[e.Kind]++
	if t.sink != nil && t.err == nil {
		b, err := json.Marshal(e)
		if err == nil {
			_, err = t.sink.Write(append(b, '\n'))
		}
		if err != nil {
			t.err = err
		}
	}
	if t.mirror != nil {
		t.mirror(e)
	}
}

// Mirror tees every subsequently emitted event into fn, in emission order
// (fn runs under the tracer's lock, so it must be non-blocking and must not
// call back into the tracer — a TraceBuffer's Add qualifies). The fabric
// executor uses this to forward the local trace stream to the coordinator.
func (t *Tracer) Mirror(fn func(Event)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.mirror = fn
}

// Events returns the ring's contents, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.ring))
	if len(t.ring) < t.cap {
		return append(out, t.ring...)
	}
	out = append(out, t.ring[t.next:]...)
	return append(out, t.ring[:t.next]...)
}

// Total returns the number of events ever emitted (ring overwrites
// included).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Summary returns the per-kind event counts over everything ever emitted.
func (t *Tracer) Summary() map[string]int {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int, len(t.kinds))
	for k, n := range t.kinds {
		out[k] = n
	}
	return out
}

// Flush writes buffered sink data through.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sink != nil && t.err == nil {
		t.err = t.sink.Flush()
	}
	return t.err
}

// Close flushes the sink, closes it when it is closable, and returns the
// first sink error encountered over the tracer's lifetime.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	err := t.Flush()
	t.mu.Lock()
	c := t.closer
	t.closer = nil
	t.mu.Unlock()
	if c != nil {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// TraceBuffer is a bounded FIFO of events awaiting forwarding — the
// executor side of fleet telemetry federation. Add never blocks: when the
// buffer is full the oldest event is dropped and counted, which is the
// federation drop contract (observation is best-effort; the verdict path
// must never wait on it). A nil *TraceBuffer is a no-op.
type TraceBuffer struct {
	mu      sync.Mutex
	buf     []Event
	cap     int
	dropped uint64
}

// NewTraceBuffer returns a forwarding buffer holding at most capacity
// events (minimum 1).
func NewTraceBuffer(capacity int) *TraceBuffer {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceBuffer{cap: capacity}
}

// Add appends one event, dropping the oldest buffered event when full.
func (b *TraceBuffer) Add(e Event) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.buf) >= b.cap {
		b.buf = b.buf[1:]
		b.dropped++
	}
	b.buf = append(b.buf, e)
}

// Drain removes and returns up to max buffered events, oldest first
// (max <= 0 drains everything).
func (b *TraceBuffer) Drain(max int) []Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	n := len(b.buf)
	if n == 0 {
		return nil
	}
	if max > 0 && n > max {
		n = max
	}
	out := make([]Event, n)
	copy(out, b.buf)
	b.buf = append(b.buf[:0], b.buf[n:]...)
	return out
}

// Len returns the number of buffered events.
func (b *TraceBuffer) Len() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.buf)
}

// Dropped returns how many events were discarded because the buffer was
// full when they arrived.
func (b *TraceBuffer) Dropped() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// ReadJSONL parses a JSONL trace stream back into events — the inverse of
// the sink, used by tests and report tooling.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return out, err
		}
		out = append(out, e)
	}
	return out, sc.Err()
}
