// Command progrun compiles and runs one target program of the suite on the
// virtual machine, with inputs from the command line. It is the debugging
// front door for the toolchain.
//
// Usage:
//
//	progrun [-faulty] [-disasm] [-trace-cycles] <program> [int...]
//	progrun -string "seed len text" JB.team6     # JamesB byte input
//	progrun -programs                            # list suite programs
//
// Camelot example:
//
//	progrun C.team1 2 3 3 0 0 7 7    # 2 knights at (0,0) and (7,7), king (3,3)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/asm"
	"repro/internal/cc"
	"repro/internal/programs"
	"repro/internal/vm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "progrun:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("progrun", flag.ContinueOnError)
	faulty := fs.Bool("faulty", false, "run the program's original (buggy) version")
	disasm := fs.Bool("disasm", false, "print the disassembly instead of running")
	pretty := fs.Bool("pretty", false, "print the normalised (pretty-printed) source instead of running")
	listP := fs.Bool("programs", false, "list the program suite and exit")
	strIn := fs.String("string", "", "byte input for the character stream (JamesB programs)")
	trace := fs.Int("trace", 0, "record and print the last N executed instructions")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listP {
		for _, p := range programs.All() {
			fault := "-"
			if p.Fault != nil {
				fault = p.Fault.ODCType.String()
			}
			fmt.Printf("%-10s %-8s %4d lines  fault: %-12s %s\n", p.Name, p.Kind, p.LineCount(), fault, p.Features)
		}
		return nil
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("no program given (try -programs)")
	}
	p, ok := programs.ByName(rest[0])
	if !ok {
		return fmt.Errorf("unknown program %q (try -programs)", rest[0])
	}
	c, err := p.Compile()
	if *faulty {
		c, err = p.CompileFaulty()
	}
	if err != nil {
		return err
	}
	if *disasm {
		fmt.Print(asm.Disassemble(c.Prog))
		return nil
	}
	if *pretty {
		fmt.Print(cc.Print(c.AST))
		return nil
	}

	var ints []int32
	for _, a := range rest[1:] {
		v, err := strconv.ParseInt(a, 10, 32)
		if err != nil {
			return fmt.Errorf("bad integer input %q", a)
		}
		ints = append(ints, int32(v))
	}
	m := vm.New(vm.Config{})
	if err := m.Load(c.Prog.Image); err != nil {
		return err
	}
	m.SetInput(ints)
	m.SetByteInput([]byte(*strIn))
	if *trace > 0 {
		m.EnableTrace(*trace)
	}
	state, err := m.Run()
	if err != nil {
		return err
	}
	os.Stdout.Write(m.Output())
	if !strings.HasSuffix(string(m.Output()), "\n") {
		fmt.Println()
	}
	switch state {
	case vm.StateHalted:
		fmt.Fprintf(os.Stderr, "[halted, exit %d, %d cycles]\n", m.ExitStatus(), m.Cycles())
	case vm.StateCrashed:
		exc, at := m.Exception()
		fmt.Fprintf(os.Stderr, "[crashed: %s at %#x after %d cycles]\n", exc, at, m.Cycles())
	case vm.StateHung:
		fmt.Fprintf(os.Stderr, "[hung after %d cycles]\n", m.Cycles())
	}
	if *trace > 0 {
		fmt.Fprintln(os.Stderr, "trace (oldest first):")
		for _, e := range m.Trace() {
			fmt.Fprintf(os.Stderr, "  %s\n", asm.FormatWord(c.Prog, e.PC, e.Word))
		}
	}
	return nil
}
