package injector_test

import (
	"errors"
	"testing"

	"repro/internal/cc"
	"repro/internal/fault"
	"repro/internal/injector"
	"repro/internal/locator"
	"repro/internal/vm"
)

// countProgram sums 0..9 into n and prints it; the baseline output is 45.
const countProgram = `
int main() {
    int i;
    int n = 0;
    for (i = 0; i < 10; i++) {
        n = n + 1;
    }
    print_int(n);
    return 0;
}`

func compile(t *testing.T, src string) *cc.Compiled {
	t.Helper()
	c, err := cc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// runWith arms f in the given mode and runs the program, returning the
// machine and session.
func runWith(t *testing.T, c *cc.Compiled, mode injector.Mode, f *fault.Fault, input []int32) (*vm.Machine, *injector.Session) {
	t.Helper()
	m := vm.New(vm.Config{MaxCycles: 1 << 20})
	if err := m.Load(c.Prog.Image); err != nil {
		t.Fatal(err)
	}
	m.SetInput(input)
	s, err := injector.Arm(m, mode, f)
	if err != nil {
		t.Fatalf("Arm: %v", err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m, s
}

// findAssign returns the AssignInfo for the given LHS on the given line.
func findAssign(t *testing.T, c *cc.Compiled, lhs string, line int) cc.AssignInfo {
	t.Helper()
	for _, a := range c.Debug.Assigns {
		if a.LHS == lhs && a.Line == line {
			return a
		}
	}
	t.Fatalf("no assignment to %s at line %d", lhs, line)
	return cc.AssignInfo{}
}

func TestStoreDataCorruptionPlusOne(t *testing.T) {
	c := compile(t, countProgram)
	a := findAssign(t, c, "n", 6) // n = n + 1 inside the loop
	f, err := locator.AssignmentFault(a, fault.ErrValuePlusOne, fault.Location{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []injector.Mode{injector.ModeHardware, injector.ModeTrap} {
		t.Run(mode.String(), func(t *testing.T) {
			m, s := runWith(t, c, mode, f, nil)
			if m.State() != vm.StateHalted {
				t.Fatalf("state %v", m.State())
			}
			// Each of the 10 stores adds an extra 1: n ends at 20.
			if got := string(m.Output()); got != "20\n" {
				t.Errorf("output %q, want \"20\\n\"", got)
			}
			if s.Activations() != 10 {
				t.Errorf("activations = %d, want 10", s.Activations())
			}
		})
	}
}

func TestNoAssignCorruption(t *testing.T) {
	c := compile(t, countProgram)
	a := findAssign(t, c, "n", 6)
	f, err := locator.AssignmentFault(a, fault.ErrNoAssign, fault.Location{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []injector.Mode{injector.ModeHardware, injector.ModeTrap} {
		t.Run(mode.String(), func(t *testing.T) {
			m, _ := runWith(t, c, mode, f, nil)
			if got := string(m.Output()); got != "0\n" {
				t.Errorf("output %q, want \"0\\n\"", got)
			}
		})
	}
}

func TestRandomValueCorruption(t *testing.T) {
	c := compile(t, countProgram)
	a := findAssign(t, c, "n", 6)
	f, err := locator.AssignmentFault(a, fault.ErrRandomValue, fault.Location{}, 12345)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := runWith(t, c, injector.ModeHardware, f, nil)
	// Every store writes 12345; the loop still terminates (i untouched).
	if got := string(m.Output()); got != "12345\n" {
		t.Errorf("output %q, want \"12345\\n\"", got)
	}
}

func TestOnceTriggerFiresOnce(t *testing.T) {
	c := compile(t, countProgram)
	a := findAssign(t, c, "n", 6)
	f, err := locator.AssignmentFault(a, fault.ErrValuePlusOne, fault.Location{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Trigger.Once = true
	for _, mode := range []injector.Mode{injector.ModeHardware, injector.ModeTrap} {
		t.Run(mode.String(), func(t *testing.T) {
			m, s := runWith(t, c, mode, f, nil)
			if got := string(m.Output()); got != "11\n" {
				t.Errorf("output %q, want \"11\\n\"", got)
			}
			if s.Activations() != 1 {
				t.Errorf("activations = %d, want 1", s.Activations())
			}
		})
	}
}

func TestCheckMutationLtToLe(t *testing.T) {
	c := compile(t, countProgram)
	var ck *cc.CheckInfo
	for i := range c.Debug.Checks {
		if c.Debug.Checks[i].Op == "<" {
			ck = &c.Debug.Checks[i]
		}
	}
	if ck == nil {
		t.Fatal("no < check")
	}
	faults, err := locator.CheckingFaults(c, *ck)
	if err != nil {
		t.Fatal(err)
	}
	byType := map[fault.ErrType]*fault.Fault{}
	for i := range faults {
		byType[faults[i].ErrType] = &faults[i]
	}
	// Applicable types for "<" with no array operands: "< <=", stuck x2.
	if len(faults) != 3 {
		t.Fatalf("applicable error types = %d (%v), want 3", len(faults), faults)
	}

	tests := []struct {
		et   fault.ErrType
		want string
	}{
		{fault.ErrLtLe, "11\n"},     // i <= 10: one extra iteration
		{fault.ErrTrueFalse, "0\n"}, // loop never entered
	}
	for _, tt := range tests {
		f := byType[tt.et]
		if f == nil {
			t.Fatalf("no fault for %s", tt.et)
		}
		for _, mode := range []injector.Mode{injector.ModeHardware, injector.ModeTrap} {
			m, _ := runWith(t, c, mode, f, nil)
			if got := string(m.Output()); got != tt.want {
				t.Errorf("%s/%v: output %q, want %q", tt.et, mode, got, tt.want)
			}
		}
	}
	// stuck-true hangs the loop.
	f := byType[fault.ErrFalseTrue]
	if f == nil {
		t.Fatal("no stuck-true fault")
	}
	m, _ := runWith(t, c, injector.ModeHardware, f, nil)
	if m.State() != vm.StateHung {
		t.Errorf("stuck-true state = %v, want hung", m.State())
	}
}

const arrayCheckProgram = `
int main() {
    int a[5];
    int i;
    int hits = 0;
    for (i = 0; i < 5; i++) a[i] = i * 10;
    for (i = 0; i < 4; i++) {
        if (a[i] == 20) hits = hits + 1;
    }
    print_int(hits);
    return 0;
}`

func TestArrayIndexShiftCorruption(t *testing.T) {
	c := compile(t, arrayCheckProgram)
	var ck *cc.CheckInfo
	for i := range c.Debug.Checks {
		if c.Debug.Checks[i].Op == "==" {
			ck = &c.Debug.Checks[i]
		}
	}
	if ck == nil {
		t.Fatal("no == check")
	}
	if len(ck.ArrayLoads) == 0 {
		t.Fatal("== check has no array loads recorded")
	}
	faults, err := locator.CheckingFaults(c, *ck)
	if err != nil {
		t.Fatal(err)
	}
	byType := map[fault.ErrType]*fault.Fault{}
	for i := range faults {
		byType[faults[i].ErrType] = &faults[i]
	}
	// == over an array: 3 operator mutations + 2 stuck + 2 index = 7.
	if len(faults) != 7 {
		t.Fatalf("applicable error types = %d, want 7", len(faults))
	}
	// [i]->[i+1]: comparison sees a[i+1], so the hit moves from i==2 to
	// i==1; still exactly one hit.
	m, _ := runWith(t, c, injector.ModeHardware, byType[fault.ErrIdxPlus], nil)
	if got := string(m.Output()); got != "1\n" {
		t.Errorf("[i+1] output %q, want \"1\\n\"", got)
	}
	// != mutation: condition flips, 3 of 4 iterations hit.
	m, _ = runWith(t, c, injector.ModeHardware, byType[fault.ErrEqNe], nil)
	if got := string(m.Output()); got != "3\n" {
		t.Errorf("=->!= output %q, want \"3\\n\"", got)
	}
}

func TestBreakpointBudgetExhaustion(t *testing.T) {
	c := compile(t, countProgram)
	// A fault needing three distinct trigger addresses, like the Figure 4
	// stack-shift emulation.
	nop := vm.Encode(vm.Inst{Op: vm.OpNop})
	f := &fault.Fault{
		ID: "three-triggers", Class: fault.ClassAssignment, ErrType: fault.ErrNoAssign,
		Trigger: fault.Trigger{Kind: fault.TriggerOnLocation},
		Corruptions: []fault.Corruption{
			{Kind: fault.CorruptFetch, Addr: vm.TextBase + 0, NewWord: nop},
			{Kind: fault.CorruptFetch, Addr: vm.TextBase + 4, NewWord: nop},
			{Kind: fault.CorruptFetch, Addr: vm.TextBase + 8, NewWord: nop},
		},
	}
	m := vm.New(vm.Config{})
	if err := m.Load(c.Prog.Image); err != nil {
		t.Fatal(err)
	}
	_, err := injector.Arm(m, injector.ModeHardware, f)
	if !errors.Is(err, injector.ErrOutOfBreakpoints) {
		t.Fatalf("Arm = %v, want ErrOutOfBreakpoints", err)
	}
	// Trap mode has no budget: arming must succeed.
	m2 := vm.New(vm.Config{})
	if err := m2.Load(c.Prog.Image); err != nil {
		t.Fatal(err)
	}
	if _, err := injector.Arm(m2, injector.ModeTrap, f); err != nil {
		t.Fatalf("trap-mode Arm: %v", err)
	}
}

func TestTrapModeIsIntrusive(t *testing.T) {
	c := compile(t, countProgram)
	a := findAssign(t, c, "n", 6)
	f, err := locator.AssignmentFault(a, fault.ErrValuePlusOne, fault.Location{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	mh := vm.New(vm.Config{})
	if err := mh.Load(c.Prog.Image); err != nil {
		t.Fatal(err)
	}
	if _, err := injector.Arm(mh, injector.ModeHardware, f); err != nil {
		t.Fatal(err)
	}
	wh, _ := mh.ReadWord(a.StoreAddr)

	mt := vm.New(vm.Config{})
	if err := mt.Load(c.Prog.Image); err != nil {
		t.Fatal(err)
	}
	if _, err := injector.Arm(mt, injector.ModeTrap, f); err != nil {
		t.Fatal(err)
	}
	wt, _ := mt.ReadWord(a.StoreAddr)

	orig, _ := c.Prog.ReadTextWord(a.StoreAddr)
	if wh != orig {
		t.Error("hardware mode modified the target program text")
	}
	if wt == orig {
		t.Error("trap mode left the target program text unmodified")
	}
	in, err := vm.Decode(wt)
	if err != nil || in.Op != vm.OpTrap {
		t.Errorf("trap mode planted %v, want trap", in.Op)
	}
}

func TestCorruptTextAtStart(t *testing.T) {
	c := compile(t, countProgram)
	a := findAssign(t, c, "n", 6)
	f := &fault.Fault{
		ID: "start-text", Class: fault.ClassAssignment, ErrType: fault.ErrNoAssign,
		Trigger: fault.Trigger{Kind: fault.TriggerAtStart},
		Corruptions: []fault.Corruption{
			{Kind: fault.CorruptText, Addr: a.StoreAddr, NewWord: vm.Encode(vm.Inst{Op: vm.OpNop})},
		},
	}
	m, s := runWith(t, c, injector.ModeHardware, f, nil)
	if got := string(m.Output()); got != "0\n" {
		t.Errorf("output %q, want \"0\\n\"", got)
	}
	if s.Activations() != 1 {
		t.Errorf("activations = %d, want 1", s.Activations())
	}
}

func TestCorruptTextOnLocation(t *testing.T) {
	c := compile(t, countProgram)
	a := findAssign(t, c, "n", 6)
	f := &fault.Fault{
		ID: "loc-text", Class: fault.ClassAssignment, ErrType: fault.ErrNoAssign,
		Trigger: fault.Trigger{Kind: fault.TriggerOnLocation},
		Corruptions: []fault.Corruption{
			{Kind: fault.CorruptText, Addr: a.StoreAddr, NewWord: vm.Encode(vm.Inst{Op: vm.OpNop})},
		},
	}
	for _, mode := range []injector.Mode{injector.ModeHardware, injector.ModeTrap} {
		t.Run(mode.String(), func(t *testing.T) {
			m, _ := runWith(t, c, mode, f, nil)
			if got := string(m.Output()); got != "0\n" {
				t.Errorf("output %q, want \"0\\n\"", got)
			}
			// The corruption is persistent: memory must now hold the nop.
			w, err := m.ReadWord(a.StoreAddr)
			if err != nil {
				t.Fatal(err)
			}
			if w != vm.Encode(vm.Inst{Op: vm.OpNop}) {
				t.Errorf("text at %#x = %#08x, want planted nop", a.StoreAddr, w)
			}
		})
	}
}

func TestRegisterCorruptionAtStart(t *testing.T) {
	// Corrupting the stack pointer at start crashes almost any program —
	// the hardware-fault flavour the paper says random injections share.
	c := compile(t, countProgram)
	f := &fault.Fault{
		ID: "reg-sp", Class: fault.ClassHardware, ErrType: "reg-xor",
		Trigger: fault.Trigger{Kind: fault.TriggerAtStart},
		Corruptions: []fault.Corruption{
			{Kind: fault.CorruptRegister, Reg: vm.RegSP, Op: fault.ValXor, Operand: 0xffff0001},
		},
	}
	m, _ := runWith(t, c, injector.ModeHardware, f, nil)
	if m.State() != vm.StateCrashed {
		t.Errorf("state = %v, want crashed", m.State())
	}
}

func TestLoadShiftOutOfRangeCrashes(t *testing.T) {
	// Shift a load's effective address far outside memory: the injector
	// must surface a protection exception, not silently continue.
	src := `
int big[4];
int main() {
    int i;
    int sum = 0;
    for (i = 0; i < 4; i++) {
        if (big[i] < 1) sum = sum + 1;
    }
    print_int(sum);
    return 0;
}`
	c := compile(t, src)
	var ck *cc.CheckInfo
	for i := range c.Debug.Checks {
		if len(c.Debug.Checks[i].ArrayLoads) > 0 {
			ck = &c.Debug.Checks[i]
		}
	}
	if ck == nil {
		t.Fatal("no array check")
	}
	f := &fault.Fault{
		ID: "wild-shift", Class: fault.ClassChecking, ErrType: fault.ErrIdxPlus,
		Trigger: fault.Trigger{Kind: fault.TriggerOnLocation},
		Corruptions: []fault.Corruption{
			{Kind: fault.CorruptLoadAddr, Addr: ck.ArrayLoads[0].Addr, Offset: 1 << 30},
		},
	}
	m, _ := runWith(t, c, injector.ModeHardware, f, nil)
	if m.State() != vm.StateCrashed {
		t.Fatalf("state = %v, want crashed", m.State())
	}
	if exc, _ := m.Exception(); exc != vm.ExcProt {
		t.Errorf("exception = %v, want protection", exc)
	}
}

func TestArmRejectsInvalidFault(t *testing.T) {
	c := compile(t, countProgram)
	m := vm.New(vm.Config{})
	if err := m.Load(c.Prog.Image); err != nil {
		t.Fatal(err)
	}
	if _, err := injector.Arm(m, injector.ModeHardware, &fault.Fault{ID: "empty"}); err == nil {
		t.Error("Arm accepted a fault with no corruptions")
	}
	bad := &fault.Fault{
		ID: "bad-start", Trigger: fault.Trigger{Kind: fault.TriggerAtStart},
		Corruptions: []fault.Corruption{{Kind: fault.CorruptFetch, Addr: 4, NewWord: 0}},
	}
	if _, err := injector.Arm(m, injector.ModeHardware, bad); err == nil {
		t.Error("Arm accepted a fetch corruption with an at-start trigger")
	}
}

// TestSkipTrigger verifies the When axis: with Skip=3 the first three
// executions of the corrupted store stay clean, so only 7 of the 10 loop
// iterations get the +1 corruption.
func TestSkipTrigger(t *testing.T) {
	c := compile(t, countProgram)
	a := findAssign(t, c, "n", 6)
	f, err := locator.AssignmentFault(a, fault.ErrValuePlusOne, fault.Location{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Trigger.Skip = 3
	for _, mode := range []injector.Mode{injector.ModeHardware, injector.ModeTrap} {
		t.Run(mode.String(), func(t *testing.T) {
			m, s := runWith(t, c, mode, f, nil)
			if got := string(m.Output()); got != "17\n" {
				t.Errorf("output %q, want \"17\\n\" (10 + 7 corrupted stores)", got)
			}
			if s.Activations() != 7 {
				t.Errorf("activations = %d, want 7", s.Activations())
			}
		})
	}
}

// TestSkipOnceTrigger: Skip+Once corrupts exactly the (Skip+1)-th execution.
func TestSkipOnceTrigger(t *testing.T) {
	c := compile(t, countProgram)
	a := findAssign(t, c, "n", 6)
	f, err := locator.AssignmentFault(a, fault.ErrValuePlusOne, fault.Location{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Trigger.Skip = 5
	f.Trigger.Once = true
	m, s := runWith(t, c, injector.ModeHardware, f, nil)
	if got := string(m.Output()); got != "11\n" {
		t.Errorf("output %q, want \"11\\n\"", got)
	}
	if s.Activations() != 1 {
		t.Errorf("activations = %d, want 1", s.Activations())
	}
}

// TestSkipBeyondExecutions: a skip larger than the execution count leaves
// the run fully clean (a dormant fault).
func TestSkipBeyondExecutions(t *testing.T) {
	c := compile(t, countProgram)
	a := findAssign(t, c, "n", 6)
	f, err := locator.AssignmentFault(a, fault.ErrValuePlusOne, fault.Location{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Trigger.Skip = 100
	m, s := runWith(t, c, injector.ModeHardware, f, nil)
	if got := string(m.Output()); got != "10\n" {
		t.Errorf("output %q, want clean \"10\\n\"", got)
	}
	if s.Activations() != 0 {
		t.Errorf("activations = %d, want 0 (dormant)", s.Activations())
	}
}
