package fabric

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/journal"
)

// The coordinator's crash-recovery state rides in a journal.SideLog beside
// the campaign journal. The campaign journal's bytes are the determinism
// contract — compared verbatim against a single-host run — so scheduling
// state (who owns which units, how many hosts each unit has gone down with,
// which session tokens are outstanding) lives in this sidecar instead. A
// coordinator restarted with -fabric-listen -resume replays the sidecar to
// rebuild its session table and outstanding ranges; executors that kept
// redialing during the outage re-attach to their recovered sessions and the
// campaign continues as if the coordinator had only been partitioned.
//
// Record kinds (payloads little-endian):
//
//	session  token u64 | workers u32 | name        — a session registered
//	assign   token u64 | runs u32 | (start,count)* — units granted to it
//	revoke   token u64 | runs u32 | (start,count)* — units stolen from it
//	expire   token u64                             — session declared dead;
//	                                                 its units were redelivered
const (
	sideSession uint8 = 1 + iota
	sideAssign
	sideRevoke
	sideExpire
)

func encodeSideSession(token uint64, workers int, name string) []byte {
	buf := make([]byte, 0, 12+len(name))
	buf = binary.LittleEndian.AppendUint64(buf, token)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(workers))
	return append(buf, name...)
}

func decodeSideSession(b []byte) (token uint64, workers int, name string, err error) {
	if len(b) < 12 {
		return 0, 0, "", fmt.Errorf("fabric: session record too short (%d bytes)", len(b))
	}
	return binary.LittleEndian.Uint64(b[0:8]), int(binary.LittleEndian.Uint32(b[8:12])), string(b[12:]), nil
}

func encodeSideUnits(token uint64, units []int) []byte {
	buf := binary.LittleEndian.AppendUint64(nil, token)
	return append(buf, encodeRuns(units)...)
}

func decodeSideUnits(b []byte, maxUnits int) (token uint64, units []int, err error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("fabric: unit-set record too short (%d bytes)", len(b))
	}
	units, err = decodeRuns(b[8:], maxUnits)
	return binary.LittleEndian.Uint64(b[0:8]), units, err
}

func encodeSideExpire(token uint64) []byte {
	return binary.LittleEndian.AppendUint64(nil, token)
}

func decodeSideExpire(b []byte) (uint64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("fabric: expire record is %d bytes, want 8", len(b))
	}
	return binary.LittleEndian.Uint64(b), nil
}

// sideSessionState is one surviving session rebuilt from the sidecar.
type sideSessionState struct {
	token   uint64
	name    string
	workers int
	owned   map[int]bool
}

// sideState is the coordinator state a sidecar replay yields.
type sideState struct {
	sessions map[uint64]*sideSessionState
	deaths   map[int]int // per-unit executor-host death counts
	maxToken uint64
}

// replaySide folds a sidecar's records into the coordinator state they
// describe. maxUnits bounds run-set expansion exactly as on the wire. A
// record for an unknown token is ignored rather than fatal: the sidecar's
// tail may reference a session whose registration record was the torn tail
// of an earlier crash, and dropping it costs only redundant execution.
func replaySide(side *journal.SideLog, maxUnits int) (*sideState, error) {
	st := &sideState{
		sessions: make(map[uint64]*sideSessionState),
		deaths:   make(map[int]int),
	}
	err := side.Replay(func(rec journal.SideRecord) error {
		switch rec.Kind {
		case sideSession:
			token, workers, name, err := decodeSideSession(rec.Payload)
			if err != nil {
				return err
			}
			st.sessions[token] = &sideSessionState{
				token: token, name: name, workers: workers, owned: make(map[int]bool),
			}
			if token > st.maxToken {
				st.maxToken = token
			}
		case sideAssign:
			token, units, err := decodeSideUnits(rec.Payload, maxUnits)
			if err != nil {
				return err
			}
			if s := st.sessions[token]; s != nil {
				for _, u := range units {
					s.owned[u] = true
				}
			}
		case sideRevoke:
			token, units, err := decodeSideUnits(rec.Payload, maxUnits)
			if err != nil {
				return err
			}
			if s := st.sessions[token]; s != nil {
				for _, u := range units {
					delete(s.owned, u)
				}
			}
		case sideExpire:
			token, err := decodeSideExpire(rec.Payload)
			if err != nil {
				return err
			}
			if s := st.sessions[token]; s != nil {
				for u := range s.owned {
					st.deaths[u]++
				}
				delete(st.sessions, token)
			}
		default:
			return fmt.Errorf("fabric: unknown sidecar record kind %d", rec.Kind)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}

// ownedSorted returns a session's owned units in ascending order.
func (s *sideSessionState) ownedSorted() []int {
	units := make([]int, 0, len(s.owned))
	for u := range s.owned {
		units = append(units, u)
	}
	sort.Ints(units)
	return units
}
