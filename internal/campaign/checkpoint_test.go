package campaign

import (
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/golden"
	"repro/internal/injector"
	"repro/internal/locator"
	"repro/internal/programs"
	"repro/internal/workload"
)

// These tests pin the central claim of golden-run checkpointing: the
// fast-forwarded execution of an injection — restore the nearest checkpoint
// before the fault's first trigger arrival, arm, run the suffix — is
// observably identical to the straight execution that reboots and replays
// the whole run. See the soundness argument in package golden.

// ffFacts is the per-run observable surface the straight and checkpointed
// paths must agree on. Activations is compared as a boolean: the lean path
// reports an at-least-once indicator, which is all the campaign consumes.
type ffFacts struct {
	res       RunResult
	activated bool
}

func factsOf(r RunResult) ffFacts {
	act := r.Activations > 0
	r.Activations = 0
	return ffFacts{res: r, activated: act}
}

// TestFastForwardMatchesStraightRun deep-compares the checkpointed path
// against the straight path for every Table 4 program, both fault classes
// and both injector modes: failure mode, machine state, exception, output,
// cycle count, exit status and the activation indicator must all match.
func TestFastForwardMatchesStraightRun(t *testing.T) {
	const nLocs, nCases = 2, 2
	seed := int64(41)
	for _, p := range programs.Table4Programs() {
		c, err := p.Compile()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		cases, err := workload.Cached(p.Kind, nCases, seed)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		budgets, err := CalibrateCycles(c, cases)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		pa, err := locator.PlanAssignment(c, p.Name, nLocs, seed)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		pc, err := locator.PlanChecking(c, p.Name, nLocs, seed)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		faults := append(append([]fault.Fault(nil), pa.Faults...), pc.Faults...)
		gold := newGoldenSource(faults)
		if gold == nil {
			t.Fatalf("%s: no location-triggered faults planned", p.Name)
		}

		straightPool := newMachinePool()
		fastPool := newMachinePool()
		for _, mode := range []injector.Mode{injector.ModeHardware, injector.ModeTrap} {
			for fi := range faults {
				f := &faults[fi]
				for ci := range cases {
					u := &runUnit{
						program: p.Name, c: c, f: f,
						cs: &cases[ci], caseIx: ci,
						budget: budgets[ci], mode: mode, gold: gold,
					}
					straight, err := straightPool.runWithFault(c, &cases[ci], f, mode, budgets[ci])
					if err != nil {
						t.Fatalf("%s %s mode %v case %d: straight: %v", p.Name, f.ID, mode, ci, err)
					}
					fast, err := fastPool.runFastForward(u)
					if err != nil {
						t.Fatalf("%s %s mode %v case %d: fast-forward: %v", p.Name, f.ID, mode, ci, err)
					}
					if got, want := factsOf(fast), factsOf(straight); !reflect.DeepEqual(got, want) {
						t.Errorf("%s %s mode %v case %d:\n  fast-forward %+v\n  straight     %+v",
							p.Name, f.ID, mode, ci, got, want)
					}
				}
			}
		}
	}
}

// TestFigure7FastForwardDeepEqual is the campaign-level form of the same
// claim, at the Figure 7 shape (assignment class, every Table 4 program):
// the Result of the checkpointed executor is deep-equal to the Result of
// the full-replay executor.
func TestFigure7FastForwardDeepEqual(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign A/B comparison is slow")
	}
	chosen := map[string]int{
		"C.team1": 2, "C.team2": 2, "C.team8": 2, "C.team9": 2,
		"C.team10": 2, "JB.team6": 2, "JB.team11": 2, "SOR": 3,
	}
	base := Config{
		Classes:       []fault.Class{fault.ClassAssignment},
		CasesPerFault: 2,
		ChosenAssign:  chosen,
		Seed:          7,
		Workers:       1,
	}
	fastCfg := base
	fast, err := Run(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	straightCfg := base
	straightCfg.NoFastForward = true
	straight, err := Run(straightCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fast, straight) {
		t.Fatalf("checkpointed Result differs from full-replay Result:\nfast:     %+v\nstraight: %+v", fast, straight)
	}
	if !reflect.DeepEqual(fast.ByProgram(fault.ClassAssignment), straight.ByProgram(fault.ClassAssignment)) {
		t.Fatal("Figure 7 aggregation differs between checkpointed and full-replay executors")
	}
}

// TestCheckpointedDeterminismAcrossWorkers runs the same checkpointed
// campaign serially and with 8 workers and requires bit-identical Results,
// while confirming the golden store actually served records (the fast path
// was exercised, not silently skipped).
func TestCheckpointedDeterminismAcrossWorkers(t *testing.T) {
	golden.Shared.Purge()
	cfg := Config{
		Programs:      []string{"JB.team6", "SOR"},
		Classes:       []fault.Class{fault.ClassAssignment, fault.ClassChecking},
		CasesPerFault: 3,
		Seed:          23,
		Workers:       1,
	}
	serial, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	records, checkpoints, _ := golden.Shared.Stats()
	if records == 0 {
		t.Fatal("campaign ran without recording any golden runs; the checkpointed path was not exercised")
	}
	if checkpoints == 0 {
		t.Fatal("golden records carry no checkpoints")
	}
	cfg.Workers = 8
	wide, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, wide) {
		t.Fatalf("Workers=1 and Workers=8 diverge on the checkpointed path:\nserial: %+v\nwide:   %+v", serial, wide)
	}
}
