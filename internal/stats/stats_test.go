package stats_test

import (
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/stats"
)

func smallResult(t *testing.T) *campaign.Result {
	t.Helper()
	res, err := campaign.Run(campaign.Config{
		Programs:      []string{"JB.team11"},
		CasesPerFault: 3,
		ChosenAssign:  map[string]int{"JB.team11": 2},
		ChosenCheck:   map[string]int{"JB.team11": 2},
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTableRender(t *testing.T) {
	tb := &stats.Table{
		Title:   "T",
		Headers: []string{"a", "bee"},
		Rows:    [][]string{{"xxxx", "y"}, {"1", "2"}},
	}
	out := tb.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "T" {
		t.Errorf("missing title: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "a     bee") {
		t.Errorf("header misaligned: %q", lines[1])
	}
	if !strings.Contains(out, "xxxx  y") {
		t.Errorf("row misaligned:\n%s", out)
	}
}

func TestTable1(t *testing.T) {
	out := stats.Table1([]stats.Table1Row{
		{Program: "C.team1", Runs: 400, Wrong: 7},
		{Program: "JB.team6", Runs: 4000, Wrong: 2},
	}).Render()
	for _, want := range []string{"C.team1", "1.75%", "98.25%", "0.05%", "99.95%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2(t *testing.T) {
	out := stats.Table2().Render()
	for _, want := range []string{"C.team1", "C.team9", "JB.team11", "SOR", "Recursive", "dynamic"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func TestTable3(t *testing.T) {
	out := stats.Table3().Render()
	for _, want := range []string{"value+1", "no assign", "<= <", "true false", "[i] [i+1]", "and or"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 3 missing %q:\n%s", want, out)
		}
	}
}

func TestTable4AndFigures(t *testing.T) {
	res := smallResult(t)
	out := stats.Table4(res).Render()
	if !strings.Contains(out, "JB.team11") || !strings.Contains(out, "TOTAL") {
		t.Errorf("Table 4 incomplete:\n%s", out)
	}
	for name, tb := range map[string]*stats.Table{
		"fig7":  stats.Figure7(res),
		"fig9":  stats.Figure9(res),
		"fig10": stats.Figure10(res),
		"fig2":  stats.Figure2(res),
	} {
		out := tb.Render()
		if !strings.Contains(out, "JB.team11") && name != "fig9" && name != "fig10" {
			t.Errorf("%s missing program row:\n%s", name, out)
		}
		if len(strings.Split(out, "\n")) < 4 {
			t.Errorf("%s suspiciously short:\n%s", name, out)
		}
	}
	// Figure 8 over the same result: checking class present too.
	if out := stats.Figure8(res).Render(); !strings.Contains(out, "JB.team11") {
		t.Errorf("fig8 missing row:\n%s", out)
	}
}

func TestSection5Tables(t *testing.T) {
	sum, err := campaign.BuildSection5Summary()
	if err != nil {
		t.Fatal(err)
	}
	out := stats.Section5(sum).Render()
	for _, want := range []string{"C.team1", "JB.team6", "not emulable", "emulable with new tool support", "43.9"} {
		if !strings.Contains(out, want) {
			t.Errorf("Section 5 table missing %q:\n%s", want, out)
		}
	}
	out = stats.FieldDistributionTable().Render()
	if !strings.Contains(out, "algorithm+function") || !strings.Contains(out, "43.91%") {
		t.Errorf("field distribution table:\n%s", out)
	}
}
