package chaos

import (
	"strings"
	"testing"
	"time"
)

// TestParseSpecDiskGrammar round-trips every storage- and pipe-plane key,
// then table-drives the rejection cases for the new grammar: bad values,
// duplicate keys, and unknown keys reported all at once.
func TestParseSpecDiskGrammar(t *testing.T) {
	cfg, err := ParseSpec("seed=9,disk.enospc=0.01,disk.short-write=0.02,disk.torn-write=0.03," +
		"disk.sync-fail=0.04,disk.sync-delay=5ms,disk.read-corrupt=0.06,disk.poison=0.07," +
		"pipe.corrupt=0.08,pipe.truncate=0.09,pipe.reset=0.1")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Seed: 9, DiskENOSPC: 0.01, DiskShortWrite: 0.02, DiskTornWrite: 0.03,
		DiskSyncFail: 0.04, DiskSyncDelay: 5 * time.Millisecond,
		DiskReadCorrupt: 0.06, DiskPoison: 0.07,
		PipeCorrupt: 0.08, PipeTruncate: 0.09, PipeReset: 0.1,
	}
	if cfg != want {
		t.Fatalf("ParseSpec = %+v, want %+v", cfg, want)
	}
	if cfg.NetEnabled() {
		t.Fatal("a storage-only spec reports network faults enabled")
	}
	if !cfg.DiskEnabled() || !cfg.PipeEnabled() || !cfg.Enabled() {
		t.Fatal("parsed storage spec reports its planes disabled")
	}

	cases := []struct {
		name, spec string
		wantErr    []string // all substrings the error must contain
	}{
		{"duplicate disk key", "disk.enospc=0.1,disk.enospc=0.2",
			[]string{"duplicate key", `"disk.enospc"`}},
		{"duplicate across planes keeps first error", "corrupt=0.1,corrupt=0.1",
			[]string{"duplicate key", `"corrupt"`}},
		{"probability above 1", "disk.torn-write=1.5",
			[]string{"disk.torn-write", "outside [0,1]"}},
		{"negative probability", "pipe.reset=-0.1",
			[]string{"pipe.reset", "outside [0,1]"}},
		{"bad duration", "disk.sync-delay=fast",
			[]string{"disk.sync-delay"}},
		{"one unknown key", "disk.enospc=0.1,disk.ensopc=0.2",
			[]string{"unknown key", `"disk.ensopc"`, "valid:", "disk.enospc"}},
		{"all unknown keys in one error", "pipe.corupt=0.1,disc.enospc=0.2,seed=1",
			[]string{"unknown keys", `"pipe.corupt"`, `"disc.enospc"`, "valid:"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec(tc.spec)
			if err == nil {
				t.Fatalf("ParseSpec(%q) accepted", tc.spec)
			}
			for _, sub := range tc.wantErr {
				if !strings.Contains(err.Error(), sub) {
					t.Errorf("error %q does not mention %q", err, sub)
				}
			}
		})
	}
}

// TestParseSpecValidKeyListComplete: the unknown-key error's valid-key list
// must track the switch — a key that parses but is missing from the list
// (or listed but rejected) sends operators down a documentation dead end.
func TestParseSpecValidKeyListComplete(t *testing.T) {
	for _, key := range specKeys() {
		val := "0.1"
		switch key {
		case "seed":
			val = "7"
		case "bandwidth":
			val = "1024"
		case "latency", "jitter", "partition-for", "disk.sync-delay":
			val = "1ms"
		case "partition-heal":
			val = "true"
		}
		if _, err := ParseSpec(key + "=" + val); err != nil {
			t.Errorf("listed key %q rejected: %v", key, err)
		}
	}
}
