package worker

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os/exec"
	"sync"
	"time"

	"repro/internal/journal"
	"repro/internal/telemetry"
)

// ErrCircuitOpen is returned by Pool.Run when worker churn exceeded
// Options.MaxRestarts: the host evidently cannot sustain process isolation
// (fork bombs into OOM, a broken binary, a hostile ulimit), so the caller
// should degrade to in-process execution rather than burn restarts forever.
var ErrCircuitOpen = errors.New("worker: circuit breaker open: too many worker restarts")

// Result is one unit's verdict as delivered to the Pool.Run callback.
// Quarantined is set when the unit crashed MaxDeliveries workers and was
// assigned Options.Quarantine instead of a real verdict.
type Result struct {
	Index       int
	Outcome     journal.Outcome
	Payload     []byte
	Quarantined bool
}

// Options configures a supervising Pool. Zero values pick the documented
// defaults; Command and Spec are mandatory.
type Options struct {
	// Workers is the number of worker processes (default 1).
	Workers int

	// Command builds the (not yet started) worker subprocess. Stdin/Stdout
	// are taken over by the pool; Stderr is left as the caller set it.
	Command func() *exec.Cmd

	// Spec is sent to every worker in the hello frame.
	Spec Spec

	// HeartbeatInterval is the cadence workers are told to beat at
	// (default 500ms). HeartbeatTimeout is how long the supervisor tolerates
	// total silence — no heartbeat, no verdict — before declaring the worker
	// wedged and killing it (default 10s).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration

	// UnitTimeout, when positive, bounds one unit's wall clock. The
	// supervisor's hard deadline per delivery is 2*UnitTimeout +
	// HeartbeatTimeout: the worker enforces the same timeout internally and
	// reports a host fault, so the supervisor's deadline only fires when the
	// worker is too wedged to do even that.
	UnitTimeout time.Duration

	// MaxDeliveries is how many workers a unit may take down before it is
	// quarantined with the Quarantine outcome (default 2: one retry).
	MaxDeliveries int

	// MaxRestarts is the pool-wide churn budget: abnormal worker deaths
	// beyond it trip the circuit breaker (default max(8, 2*Workers)).
	// Clean self-recycles (verdict with last set) are free.
	MaxRestarts int

	// BackoffBase/BackoffMax shape the exponential restart backoff
	// (defaults 100ms and 5s).
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// MemQuota is the worker RSS self-recycle threshold in bytes
	// (default 2GiB; negative disables).
	MemQuota int64

	// Quarantine is the outcome recorded for a unit that exhausted
	// MaxDeliveries.
	Quarantine journal.Outcome

	// Log, when non-nil, receives one line per supervision event (worker
	// death, redelivery, quarantine, breaker trip).
	Log func(format string, args ...any)

	// WrapPipes, when non-nil, intercepts the supervisor's side of each
	// spawned worker's pipes (the stdin writer and the stdout reader)
	// before any frame crosses them. It exists for the chaos layer: the
	// wrapper corrupts, truncates or severs the byte streams, and the CRC
	// framing plus the restart/redelivery machinery must absorb it. The
	// wrapped writer's Close must close the underlying pipe.
	WrapPipes func(w io.WriteCloser, r io.Reader) (io.WriteCloser, io.Reader)

	// Metrics, when non-nil, counts supervision events (restarts,
	// redeliveries, quarantines, breaker state) and observes the heartbeat
	// gap and delivery latency. Tracer, when non-nil, receives the matching
	// structured events. Both are passive: verdicts and requeue decisions
	// are identical with them on or off.
	Metrics *telemetry.WorkerMetrics
	Tracer  *telemetry.Tracer
}

func (o *Options) fill() {
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 500 * time.Millisecond
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 10 * time.Second
	}
	if o.MaxDeliveries < 1 {
		o.MaxDeliveries = 2
	}
	if o.MaxRestarts == 0 {
		o.MaxRestarts = 2 * o.Workers
		if o.MaxRestarts < 8 {
			o.MaxRestarts = 8
		}
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.MemQuota == 0 {
		o.MemQuota = 2 << 30
	}
}

func (o *Options) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

// Pool supervises a fleet of worker subprocesses and drives a set of unit
// indices through them.
type Pool struct {
	opts Options
}

// NewPool validates and captures the options.
func NewPool(opts Options) (*Pool, error) {
	if opts.Command == nil {
		return nil, errors.New("worker: Options.Command is required")
	}
	opts.fill()
	return &Pool{opts: opts}, nil
}

// job is one unit delivery attempt.
type job struct {
	index      int
	deliveries int // completed deliveries so far (crashes consumed)
}

// poolRun is the shared state of one Pool.Run call.
type poolRun struct {
	opts *Options
	jobs chan job
	done chan struct{} // closed when every unit has a final answer

	mu        sync.Mutex
	remaining int
	restarts  int
	tripped   bool
	onResult  func(Result) error
	cbErr     error // first error from onResult; aborts the run
}

// Run executes the given unit indices across the pool and calls onResult
// exactly once per index (serialised; never concurrently). It returns nil
// when every index has a verdict or a quarantine, ErrCircuitOpen when the
// breaker tripped (some indices then have no result — the caller falls back
// in-process), ctx.Err() on cancellation, or the first error returned by
// onResult.
func (p *Pool) Run(ctx context.Context, indices []int, onResult func(Result) error) error {
	if len(indices) == 0 {
		return nil
	}
	r := &poolRun{
		opts:      &p.opts,
		jobs:      make(chan job, len(indices)),
		done:      make(chan struct{}),
		remaining: len(indices),
		onResult:  onResult,
	}
	for _, ix := range indices {
		r.jobs <- job{index: ix}
	}

	workers := p.opts.Workers
	if workers > len(indices) {
		workers = len(indices) // never spawn a process with nothing to do
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			r.manage(ctx, slot)
		}(i)
	}
	wg.Wait()

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cbErr != nil {
		return r.cbErr
	}
	if err := ctx.Err(); err != nil && r.remaining > 0 {
		return err
	}
	if r.tripped {
		return ErrCircuitOpen
	}
	return nil
}

// finish delivers a final answer for a unit and closes the run when it was
// the last one.
func (r *poolRun) finish(res Result) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cbErr == nil && r.onResult != nil {
		if err := r.onResult(res); err != nil {
			r.cbErr = err
			r.closeDone()
			return
		}
	}
	r.remaining--
	if r.remaining == 0 {
		r.closeDone()
	}
}

// abort stops the run without finishing the remaining units.
func (r *poolRun) abort(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cbErr == nil {
		r.cbErr = err
	}
	r.closeDone()
}

func (r *poolRun) closeDone() {
	select {
	case <-r.done:
	default:
		close(r.done)
	}
}

// churn counts one abnormal worker death and reports whether the breaker is
// now open.
func (r *poolRun) churn() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.restarts++
	if m := r.opts.Metrics; m != nil {
		m.Restarts.Inc()
	}
	r.opts.Tracer.Emit(telemetry.Event{Kind: telemetry.KindRestart, Detail: fmt.Sprintf("restart %d/%d", r.restarts, r.opts.MaxRestarts)})
	if r.restarts > r.opts.MaxRestarts && !r.tripped {
		r.tripped = true
		if m := r.opts.Metrics; m != nil {
			m.BreakerOpen.Set(1)
		}
		r.opts.Tracer.Emit(telemetry.Event{Kind: telemetry.KindBreaker, Detail: fmt.Sprintf("after %d restarts", r.restarts)})
		r.opts.logf("worker: circuit breaker open after %d restarts; degrading to in-process execution", r.restarts)
		r.closeDone()
	}
	return r.tripped
}

func (r *poolRun) isTripped() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tripped
}

// requeue puts a unit back after its worker died mid-delivery, or
// quarantines it when deliveries are exhausted.
func (r *poolRun) requeue(j job) {
	j.deliveries++
	if j.deliveries >= r.opts.MaxDeliveries {
		if m := r.opts.Metrics; m != nil {
			m.Quarantines.Inc()
		}
		r.opts.Tracer.Emit(telemetry.Event{Kind: telemetry.KindQuarantine, Unit: j.index, Detail: "exhausted worker deliveries"})
		r.opts.logf("worker: unit %d crashed %d workers; quarantined as host fault", j.index, j.deliveries)
		r.finish(Result{Index: j.index, Outcome: r.opts.Quarantine, Quarantined: true})
		return
	}
	if m := r.opts.Metrics; m != nil {
		m.Redeliveries.Inc()
	}
	r.opts.Tracer.Emit(telemetry.Event{Kind: telemetry.KindRedeliver, Unit: j.index})
	r.opts.logf("worker: unit %d redelivered (attempt %d/%d)", j.index, j.deliveries+1, r.opts.MaxDeliveries)
	r.jobs <- j
}

// manage is one worker slot's lifecycle loop: spawn (with backoff), drain
// jobs through the live worker, account its death, repeat — until the run
// completes, the context is cancelled, or the breaker opens.
func (r *poolRun) manage(ctx context.Context, slot int) {
	backoff := r.opts.BackoffBase
	for {
		select {
		case <-r.done:
			return
		case <-ctx.Done():
			return
		default:
		}
		if r.isTripped() {
			return
		}

		w, err := spawn(r.opts)
		if err != nil {
			r.opts.logf("worker[%d]: spawn failed: %v", slot, err)
			if r.churn() {
				return
			}
			if !sleepCtx(ctx, r.done, backoff) {
				return
			}
			backoff = nextBackoff(backoff, r.opts.BackoffMax)
			continue
		}

		clean := r.serve(ctx, slot, w)
		w.kill()
		if clean {
			backoff = r.opts.BackoffBase // a self-recycle is not churn
			continue
		}
		if r.churn() {
			return
		}
		if !sleepCtx(ctx, r.done, backoff) {
			return
		}
		backoff = nextBackoff(backoff, r.opts.BackoffMax)
	}
}

// serve runs one worker from handshake to death. It returns true when the
// worker ended cleanly (self-recycle or run completion) and false on any
// abnormal death, which the caller counts as churn.
func (r *poolRun) serve(ctx context.Context, slot int, w *liveWorker) bool {
	// beat observes the gap between consecutive heartbeats from this worker;
	// a no-op without metrics.
	var lastBeat time.Time
	beat := func() {
		if m := r.opts.Metrics; m != nil && m.HeartbeatGap != nil {
			now := time.Now()
			if !lastBeat.IsZero() {
				m.HeartbeatGap.Observe(uint64(now.Sub(lastBeat).Microseconds()))
			}
			lastBeat = now
		}
	}

	// Handshake: wait for ready, tolerating heartbeats (planning inside the
	// worker can be slow, and heartbeats start before it).
	deadline := time.NewTimer(r.opts.HeartbeatTimeout)
	defer deadline.Stop()
	for {
		select {
		case <-ctx.Done():
			return true // not the worker's fault
		case <-r.done:
			return true
		case <-deadline.C:
			r.opts.logf("worker[%d]: no ready frame within %v", slot, r.opts.HeartbeatTimeout)
			return false
		case fr, ok := <-w.frames:
			if !ok {
				r.opts.logf("worker[%d]: died during handshake: %v", slot, w.readErr())
				return false
			}
			switch fr.typ {
			case msgHeartbeat:
				beat()
				resetTimer(deadline, r.opts.HeartbeatTimeout)
				continue
			case msgError:
				r.abort(fmt.Errorf("worker[%d]: %s", slot, fr.payload))
				return true
			case msgReady:
				rd, err := decodeReady(fr.payload)
				if err != nil {
					r.opts.logf("worker[%d]: %v", slot, err)
					return false
				}
				if rd.Version != ProtocolVersion {
					r.abort(fmt.Errorf("worker[%d]: speaks protocol version %d, supervisor speaks %d", slot, rd.Version, ProtocolVersion))
					return true
				}
				if rd.Fingerprint != r.opts.Spec.Fingerprint {
					r.abort(fmt.Errorf("worker[%d]: rebuilt plan fingerprint %016x, supervisor planned %016x — differing builds or configuration", slot, rd.Fingerprint, r.opts.Spec.Fingerprint))
					return true
				}
				w.units = int(rd.Units)
			default:
				r.opts.logf("worker[%d]: frame type %d during handshake", slot, fr.typ)
				return false
			}
		}
		break
	}

	// Serve loop: pull a job, deliver it, await its verdict under the
	// silence timer and (when configured) a per-delivery hard deadline.
	// One timer is reused across deliveries; it is re-armed per unit and
	// parked between them.
	hardTimer := time.NewTimer(time.Hour)
	hardTimer.Stop()
	defer hardTimer.Stop()
	for {
		var j job
		select {
		case <-ctx.Done():
			return true
		case <-r.done:
			return true
		case j = <-r.jobs:
		}

		if j.index >= w.units {
			// The worker planned fewer units than the supervisor; its
			// fingerprint matched so this is unreachable in practice, but an
			// out-of-range exec would kill the worker and burn a delivery.
			r.abort(fmt.Errorf("worker[%d]: plan has %d units, supervisor wants unit %d", slot, w.units, j.index))
			return true
		}
		var sent time.Time
		if m := r.opts.Metrics; m != nil && m.DeliveryLatency != nil {
			sent = time.Now()
		}
		var ix [4]byte
		binary.LittleEndian.PutUint32(ix[:], uint32(j.index))
		if err := w.send(msgExec, ix[:]); err != nil {
			r.opts.logf("worker[%d]: delivering unit %d: %v", slot, j.index, err)
			r.requeue(j)
			return false
		}

		var hard <-chan time.Time
		if r.opts.UnitTimeout > 0 {
			resetTimer(hardTimer, 2*r.opts.UnitTimeout+r.opts.HeartbeatTimeout)
			hard = hardTimer.C
		}
		resetTimer(deadline, r.opts.HeartbeatTimeout)

	await:
		for {
			select {
			case <-ctx.Done():
				return true
			case <-r.done:
				return true
			case <-deadline.C:
				r.opts.logf("worker[%d]: silent for %v on unit %d; killing", slot, r.opts.HeartbeatTimeout, j.index)
				r.requeue(j)
				return false
			case <-hard:
				r.opts.logf("worker[%d]: unit %d exceeded the hard deadline; killing", slot, j.index)
				r.requeue(j)
				return false
			case fr, ok := <-w.frames:
				if !ok {
					r.opts.logf("worker[%d]: died on unit %d: %v", slot, j.index, w.readErr())
					r.requeue(j)
					return false
				}
				resetTimer(deadline, r.opts.HeartbeatTimeout)
				switch fr.typ {
				case msgHeartbeat:
					beat()
					continue
				case msgError:
					r.abort(fmt.Errorf("worker[%d]: %s", slot, fr.payload))
					return true
				case msgVerdict:
					v, err := decodeVerdict(fr.payload)
					if err != nil {
						r.opts.logf("worker[%d]: %v", slot, err)
						r.requeue(j)
						return false
					}
					if int(v.Unit) != j.index {
						r.opts.logf("worker[%d]: verdict for unit %d, expected %d", slot, v.Unit, j.index)
						r.requeue(j)
						return false
					}
					if m := r.opts.Metrics; m != nil && m.DeliveryLatency != nil {
						m.DeliveryLatency.ObserveSince(sent)
					}
					r.finish(Result{Index: j.index, Outcome: v.Outcome, Payload: v.Payload})
					if v.Last {
						r.opts.logf("worker[%d]: self-recycled after unit %d (memory quota)", slot, j.index)
						return true
					}
					break await
				default:
					r.opts.logf("worker[%d]: unexpected frame type %d", slot, fr.typ)
					r.requeue(j)
					return false
				}
			}
		}
	}
}

// frame is one received frame.
type frame struct {
	typ     uint8
	payload []byte
}

// liveWorker is one running subprocess with its reader pump.
type liveWorker struct {
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	frames chan frame
	units  int // unit count from the worker's ready frame
	met    *telemetry.WorkerMetrics

	mu   sync.Mutex
	rerr error

	killOnce sync.Once
}

// spawn starts a worker and completes the supervisor half of the handshake
// opening (hello is sent; ready is awaited by the caller).
func spawn(opts *Options) (*liveWorker, error) {
	cmd := opts.Command()
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		stdin.Close()
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		stdin.Close()
		return nil, err
	}
	var in io.WriteCloser = stdin
	var out io.Reader = stdout
	if opts.WrapPipes != nil {
		in, out = opts.WrapPipes(stdin, stdout)
	}
	w := &liveWorker{cmd: cmd, stdin: in, frames: make(chan frame, 16), met: opts.Metrics}
	go w.pump(out)

	var memQuota uint64
	if opts.MemQuota > 0 {
		memQuota = uint64(opts.MemQuota)
	}
	if err := WriteFrameCRC(in, msgHello, encodeHello(hello{
		Version:           ProtocolVersion,
		HeartbeatInterval: opts.HeartbeatInterval,
		MemQuota:          memQuota,
		Spec:              opts.Spec,
	})); err != nil {
		w.kill()
		return nil, err
	}
	return w, nil
}

// pump reads frames off the worker's stdout into the channel. Heartbeats
// are dropped when the channel is full (they carry no data; losing one must
// not wedge the reader behind a slow supervisor).
func (w *liveWorker) pump(r io.Reader) {
	br := bufio.NewReader(r)
	for {
		typ, payload, err := ReadFrameCRC(br)
		if err != nil {
			if w.met != nil && errors.Is(err, ErrFrameCRC) {
				w.met.FramesRejected.Inc()
			}
			w.mu.Lock()
			w.rerr = err
			w.mu.Unlock()
			close(w.frames)
			return
		}
		if typ == msgHeartbeat {
			select {
			case w.frames <- frame{typ: typ}:
			default:
			}
			continue
		}
		w.frames <- frame{typ: typ, payload: payload}
	}
}

func (w *liveWorker) readErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.rerr == nil || w.rerr == io.EOF {
		return errors.New("worker process exited")
	}
	return w.rerr
}

func (w *liveWorker) send(typ uint8, payload []byte) error {
	return WriteFrameCRC(w.stdin, typ, payload)
}

// kill tears the worker down unconditionally and reaps it. Safe to call
// multiple times and after a clean exit.
func (w *liveWorker) kill() {
	w.killOnce.Do(func() {
		w.stdin.Close()
		if w.cmd.Process != nil {
			_ = w.cmd.Process.Kill()
		}
		_ = w.cmd.Wait()
		// Drain so the pump goroutine can exit even if it was blocked
		// sending a non-heartbeat frame.
		for range w.frames {
		}
	})
}

func nextBackoff(d, max time.Duration) time.Duration {
	d *= 2
	if d > max {
		return max
	}
	return d
}

// sleepCtx sleeps for d unless the context or the run finishes first; it
// reports whether the caller should keep going.
func sleepCtx(ctx context.Context, done <-chan struct{}, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-done:
		return false
	case <-t.C:
		return true
	}
}

// resetTimer safely re-arms a timer that may have fired or be pending.
func resetTimer(t *time.Timer, d time.Duration) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	t.Reset(d)
}
