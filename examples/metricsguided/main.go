// Metricsguided demonstrates the §6.1 proposal: when no field data about
// real faults exists, software-complexity metrics can guide the injection —
// choosing where to inject and how many faults per module — instead of a
// uniform random draw.
//
// It analyses C.team1, prints the per-function complexity profile, and
// compares the location distribution of uniform versus complexity-weighted
// selection.
//
//	go run ./examples/metricsguided
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/locator"
	"repro/internal/metrics"
	"repro/internal/programs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	p, ok := programs.ByName("C.team1")
	if !ok {
		return fmt.Errorf("C.team1 missing")
	}
	c, err := p.Compile()
	if err != nil {
		return err
	}
	rep := metrics.Analyze(p.Name, c.AST)

	fmt.Printf("complexity profile of %s:\n", p.Name)
	funcs := append([]metrics.FuncMetrics(nil), rep.Funcs...)
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].Score() > funcs[j].Score() })
	for _, f := range funcs {
		fmt.Printf("  %-15s cyclomatic %2d  nesting %d  Halstead volume %6.0f  score %6.1f\n",
			f.Name, f.Cyclomatic, f.MaxNesting, f.HalsteadVolume(), f.Score())
	}

	// Distribution of assignment fault locations under the two policies,
	// averaged over many seeds.
	locFuncs := metrics.AssignFuncs(c)
	weights := metrics.LocationWeights(rep, locFuncs)
	const picks = 8
	uniform := map[string]int{}
	guided := map[string]int{}
	for seed := int64(0); seed < 200; seed++ {
		for _, i := range locator.ChooseLocations(len(locFuncs), picks, seed) {
			uniform[locFuncs[i]]++
		}
		for _, i := range metrics.ChooseWeighted(weights, picks, seed) {
			guided[locFuncs[i]]++
		}
	}

	fmt.Printf("\nassignment-location selection over 200 seeds (%d locations per seed):\n", picks)
	fmt.Printf("  %-15s %-10s %-10s\n", "function", "uniform", "guided")
	var names []string
	for name := range uniform {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-15s %-10d %-10d\n", name, uniform[name], guided[name])
	}
	fmt.Println("\nguided selection concentrates injections in the complex functions,")
	fmt.Println("which the studies cited in §6.1 found to be the fault-prone ones;")
	fmt.Println("uniform selection mirrors the code's location counts instead.")
	return nil
}
