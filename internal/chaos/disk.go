package chaos

import (
	"io"
	"sync"
	"time"
)

// File is the slice of *os.File the journal stack actually uses. WrapFile
// returns this interface so the journal can hold either the raw file or
// the fault-injecting wrapper behind one field.
type File interface {
	io.Reader
	io.Writer
	io.WriterAt
	io.Seeker
	Truncate(size int64) error
	Sync() error
	Close() error
}

// WrapFile returns f with the configured disk faults injected on its
// write, read and sync paths. With no disk faults enabled it returns f
// itself. File handles draw their stream seeds from a wrap-ordinal counter
// of their own, so the schedule of the Nth wrapped file never depends on
// how many connections or pipes were wrapped before it.
func (c *Chaos) WrapFile(f File) File {
	if c == nil || !c.cfg.DiskEnabled() {
		return f
	}
	ord := c.fileOrd.Add(1) - 1
	ff := &faultFile{f: f, cfg: &c.cfg, m: c.metrics}
	ff.rng.s = c.seedFor(ord)
	return ff
}

// faultFile injects disk faults per call. The mutex serialises rng draws;
// the journal locks its own writes anyway, but the wrapper must not depend
// on that.
type faultFile struct {
	f   File
	cfg *Config
	m   *Metrics

	mu  sync.Mutex
	rng splitmix64
}

// writeFaults draws the write-path fault decisions for an n-byte write in
// fixed order — ENOSPC, short, torn, cut offset — one draw each, so the
// schedule is a pure function of the stream regardless of which faults are
// enabled. The cut offset lands in [0,n), so a faulted write always loses
// at least one byte.
func (f *faultFile) writeFaults(n int) (enospc, short, torn bool, cut int) {
	f.mu.Lock()
	pENOSPC := f.rng.float()
	pShort := f.rng.float()
	pTorn := f.rng.float()
	cut = f.rng.intn(n)
	f.mu.Unlock()
	return pENOSPC < f.cfg.DiskENOSPC, pShort < f.cfg.DiskShortWrite, pTorn < f.cfg.DiskTornWrite, cut
}

// write runs one faulted write through op (the sequential or positional
// write of the underlying file, with the prefix length as argument).
//
//   - ENOSPC: nothing written, error returned. Not sticky — a later write
//     may succeed, modelling space freed elsewhere; the journal's contract
//     is to degrade on the first failure regardless.
//   - Short write: a prefix persists and the error says so, like a write
//     cut off by a quota or signal.
//   - Torn write: a prefix persists but the call reports full success —
//     the lying-disk case that only the next reader's CRCs can discover.
func (f *faultFile) write(b []byte, op func(prefix []byte) (int, error)) (int, error) {
	if len(b) == 0 {
		return op(b)
	}
	enospc, short, torn, cut := f.writeFaults(len(b))
	switch {
	case enospc:
		if f.m != nil {
			inc(f.m.DiskENOSPC)
		}
		return 0, &errInjected{what: "disk full (ENOSPC)"}
	case short:
		if f.m != nil {
			inc(f.m.DiskShortWrites)
		}
		n, err := op(b[:cut])
		if err != nil {
			return n, err
		}
		return n, &errInjected{what: "short write"}
	case torn:
		if f.m != nil {
			inc(f.m.DiskTornWrites)
		}
		if _, err := op(b[:cut]); err != nil {
			return 0, err
		}
		return len(b), nil
	}
	return op(b)
}

func (f *faultFile) Write(b []byte) (int, error) {
	return f.write(b, f.f.Write)
}

func (f *faultFile) WriteAt(b []byte, off int64) (int, error) {
	return f.write(b, func(prefix []byte) (int, error) {
		return f.f.WriteAt(prefix, off)
	})
}

// Read corrupts one byte of the data actually read, per call — read-back
// corruption, the fault the journal's per-record CRCs exist to catch. The
// corruption is in the returned buffer only; the bytes on disk are intact,
// like a bad DMA or a flaky controller.
func (f *faultFile) Read(b []byte) (int, error) {
	n, err := f.f.Read(b)
	if n > 0 && f.cfg.DiskReadCorrupt > 0 {
		f.mu.Lock()
		hit := f.rng.float() < f.cfg.DiskReadCorrupt
		at := f.rng.intn(n)
		bit := byte(1 << f.rng.intn(8))
		f.mu.Unlock()
		if hit {
			b[at] ^= bit
			if f.m != nil {
				inc(f.m.DiskReadCorrupt)
			}
		}
	}
	return n, err
}

func (f *faultFile) Seek(offset int64, whence int) (int64, error) {
	return f.f.Seek(offset, whence)
}

func (f *faultFile) Truncate(size int64) error { return f.f.Truncate(size) }

// Sync stalls for DiskSyncDelay (a slow or contended disk) and then fails
// with probability DiskSyncFail. An injected sync failure leaves the data
// written — the ambiguity is the point: fsync reporting failure says
// nothing about what reached the platter.
func (f *faultFile) Sync() error {
	if f.cfg.DiskSyncDelay > 0 {
		time.Sleep(f.cfg.DiskSyncDelay)
	}
	if f.cfg.DiskSyncFail > 0 {
		f.mu.Lock()
		hit := f.rng.float() < f.cfg.DiskSyncFail
		f.mu.Unlock()
		if hit {
			if f.m != nil {
				inc(f.m.DiskSyncFails)
			}
			f.f.Sync()
			return &errInjected{what: "sync failure"}
		}
	}
	return f.f.Sync()
}

func (f *faultFile) Close() error { return f.f.Close() }

// WrapPipes returns the supervisor's side of a worker's stdin/stdout with
// the configured pipe faults injected. Each side gets its own stream from
// the shared pipe-ordinal counter. With no pipe faults enabled both
// arguments come back unchanged.
func (c *Chaos) WrapPipes(w io.WriteCloser, r io.Reader) (io.WriteCloser, io.Reader) {
	if c == nil || !c.cfg.PipeEnabled() {
		return w, r
	}
	pw := &faultPipeWriter{w: w, cfg: &c.cfg, m: c.metrics}
	pw.rng.s = c.seedFor(c.pipeOrd.Add(1) - 1)
	pr := &faultPipeReader{r: r, cfg: &c.cfg, m: c.metrics}
	pr.rng.s = c.seedFor(c.pipeOrd.Add(1) - 1)
	return pw, pr
}

// faultPipeWriter mangles the supervisor→worker direction. Faults are
// drawn per Write in fixed order (reset, truncate, corrupt), one draw
// each plus the corruption position, mirroring faultConn.
type faultPipeWriter struct {
	w   io.WriteCloser
	cfg *Config
	m   *Metrics

	mu   sync.Mutex
	rng  splitmix64
	dead bool
}

func (p *faultPipeWriter) Write(b []byte) (int, error) {
	p.mu.Lock()
	if p.dead {
		p.mu.Unlock()
		return 0, &errInjected{what: "pipe reset (severed)"}
	}
	pReset := p.rng.float()
	pTrunc := p.rng.float()
	pCorrupt := p.rng.float()
	corruptAt := p.rng.intn(len(b))
	corruptBit := byte(1 << p.rng.intn(8))

	switch {
	case pReset < p.cfg.PipeReset:
		p.dead = true
		p.mu.Unlock()
		if p.m != nil {
			inc(p.m.Resets)
		}
		p.w.Close()
		return 0, &errInjected{what: "pipe reset"}
	case pTrunc < p.cfg.PipeTruncate && len(b) > 0:
		cut := len(b) / 2
		p.dead = true
		p.mu.Unlock()
		if p.m != nil {
			inc(p.m.Truncated)
		}
		if cut > 0 {
			p.w.Write(b[:cut]) // the torn prefix reaches the worker
		}
		p.w.Close()
		return cut, &errInjected{what: "truncated pipe write"}
	}

	var sent []byte
	if pCorrupt < p.cfg.PipeCorrupt && len(b) > 0 {
		sent = append(sent, b...)
		sent[corruptAt] ^= corruptBit
		if p.m != nil {
			inc(p.m.Corrupted)
		}
	}
	p.mu.Unlock()
	if sent != nil {
		n, err := p.w.Write(sent)
		if n > len(b) {
			n = len(b)
		}
		return n, err
	}
	return p.w.Write(b)
}

func (p *faultPipeWriter) Close() error {
	p.mu.Lock()
	p.dead = true
	p.mu.Unlock()
	return p.w.Close()
}

// faultPipeReader mangles the worker→supervisor direction: corruption
// only. Truncation/reset of what the worker sends manifests as the worker
// dying, which the supervisor's liveness machinery already covers; a
// flipped byte in a verdict frame is the case only the CRC can catch.
type faultPipeReader struct {
	r   io.Reader
	cfg *Config
	m   *Metrics

	mu  sync.Mutex
	rng splitmix64
}

func (p *faultPipeReader) Read(b []byte) (int, error) {
	n, err := p.r.Read(b)
	if n > 0 && p.cfg.PipeCorrupt > 0 {
		p.mu.Lock()
		hit := p.rng.float() < p.cfg.PipeCorrupt
		at := p.rng.intn(n)
		bit := byte(1 << p.rng.intn(8))
		p.mu.Unlock()
		if hit {
			b[at] ^= bit
			if p.m != nil {
				inc(p.m.Corrupted)
			}
		}
	}
	return n, err
}
