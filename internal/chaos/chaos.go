// Package chaos is the harness's adversary: a deterministic, seeded
// fault layer for the three planes a campaign's recovery paths depend on.
// The network plane wraps any net.Conn or net.Listener and injects the
// failures a distributed campaign will actually face — added latency and
// jitter, bandwidth caps, flipped bytes, truncated writes, silently
// dropped writes, half-open "black-hole" partitions (optionally healing,
// for asymmetric outages), and mid-stream connection resets. The storage
// plane (WrapFile, disk.go) injects the failures durable state suffers —
// ENOSPC, short and torn writes, fsync failure and delay, read-back
// corruption, poisoned checkpoints — into the journal WAL, its fabric
// sidecar, and the golden checkpoint store. The pipe plane (WrapPipes)
// corrupts, truncates or severs the proc-isolation worker pipes so the
// CRC framing and the supervisor's restart machinery get exercised by the
// byte-level failures they exist for.
//
// The package exists to turn the repository's own method on itself: the
// fault-injection campaigns this system runs are only trustworthy if the
// harness survives the fault classes it studies (the same argument ZOFI
// makes for its own crash-handling harness). Every fabric robustness
// mechanism — per-frame CRCs, session resume, coordinator recovery — is
// validated by running full campaigns through this layer and requiring
// byte-identical journals and reports.
//
// Determinism: every fault decision comes from a splitmix64 stream derived
// from (Config.Seed, handle ordinal), where each plane counts its wrapped
// handles — connections, files, pipes — in wrap order, independently of the
// other planes. A single handle's fault schedule is therefore a pure
// function of the seed and its ordinal; rerunning a test with the same
// seed replays the same corruption at the same byte offsets.
// Campaign *results* never depend on the schedule — that is the whole
// point — but reproducing a failure found under chaos needs only the seed.
//
// Faults are injected on the write path (the wrapped side mangles what it
// sends), so one chaotic endpoint is enough to exercise both directions of
// a protocol: the peer sees corrupt frames, the wrapper sees its own
// writes vanish. Partitions additionally stall the read path, modelling a
// link that went silent rather than a process that died.
package chaos

import (
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Config selects which faults a wrapped connection injects and how often.
// The zero Config injects nothing (Enabled reports false). Probabilities
// are per Write call, evaluated in a fixed order (partition, reset,
// truncate, drop, corrupt) so a given random stream always yields the same
// schedule.
type Config struct {
	// Seed selects the deterministic fault schedule. Two runs with the
	// same Seed and the same connection ordinals inject identical faults.
	Seed int64

	// Latency is added to every Write; Jitter adds a uniform random
	// 0..Jitter on top. Models slow and wobbly links.
	Latency time.Duration
	Jitter  time.Duration

	// Bandwidth caps the wrapped side's send rate in bytes per second
	// (0 = unlimited). Implemented as proportional sleep, not queueing.
	Bandwidth int

	// Corrupt is the per-write probability of flipping one byte of the
	// payload before it reaches the wire — the poisoned-frame case the
	// fabric's per-frame CRC exists to catch.
	Corrupt float64

	// Drop is the per-write probability of silently swallowing the write:
	// the caller sees success, the peer sees a hole in the stream.
	Drop float64

	// Truncate is the per-write probability of writing only a prefix and
	// then severing the connection — a torn frame followed by loss.
	Truncate float64

	// Reset is the per-write probability of severing the connection
	// without writing anything, like a mid-stream RST.
	Reset float64

	// Partition is the per-write probability of entering a black-hole
	// partition: writes are swallowed and reads stall for PartitionFor,
	// after which the connection reports failure. Models a half-open link
	// that only heartbeat timeouts can detect.
	Partition    float64
	PartitionFor time.Duration

	// PartitionHeal makes partitions asymmetric and survivable: during the
	// window the wrapped side's writes are swallowed (A→B blocked) but its
	// reads pass through (B→A open), and when the window closes the link
	// resumes instead of dying. Models a one-way outage that heals — the
	// case session resume plus retransmit must ride out without a redial.
	PartitionHeal bool

	// Disk faults apply to handles wrapped with WrapFile, per Write /
	// WriteAt / Read / Sync call. They model the storage failures the
	// journal and checkpoint degradation contracts exist for.
	DiskENOSPC      float64       // write fails with no bytes written (disk full)
	DiskShortWrite  float64       // write persists only a prefix and reports it
	DiskTornWrite   float64       // write persists only a prefix but reports success
	DiskSyncFail    float64       // Sync reports failure (data may or may not be durable)
	DiskSyncDelay   time.Duration // every Sync stalls this long (slow/contended disk)
	DiskReadCorrupt float64       // read-back flips one byte of the returned data
	DiskPoison      float64       // golden checkpoint built with a corrupted integrity sum

	// Pipe faults apply to proc-isolation worker pipes wrapped with
	// WrapPipes, per Write/Read. There is deliberately no silent drop: real
	// pipes fail by termination (EPIPE, SIGKILL of the peer), not loss, and
	// a silently dropped exec frame would stall an idle-but-heartbeating
	// worker forever. Corrupt/truncate/reset cover the failure surface the
	// CRC framing and the supervisor's restart machinery must absorb.
	PipeCorrupt  float64 // one byte of the frame flipped in flight
	PipeTruncate float64 // a prefix written, then the pipe severed
	PipeReset    float64 // the pipe severed without writing
}

// Enabled reports whether the config injects any fault at all, on any
// plane.
func (c *Config) Enabled() bool {
	return c.NetEnabled() || c.DiskEnabled() || c.PipeEnabled()
}

// NetEnabled reports whether any network-plane fault is configured; Wrap
// and Listener are pass-throughs otherwise.
func (c *Config) NetEnabled() bool {
	if c == nil {
		return false
	}
	return c.Latency > 0 || c.Jitter > 0 || c.Bandwidth > 0 ||
		c.Corrupt > 0 || c.Drop > 0 || c.Truncate > 0 || c.Reset > 0 || c.Partition > 0
}

// DiskEnabled reports whether any storage-plane fault is configured;
// WrapFile is a pass-through otherwise. DiskPoison is excluded — it acts
// on checkpoint construction, not on a wrapped handle.
func (c *Config) DiskEnabled() bool {
	if c == nil {
		return false
	}
	return c.DiskENOSPC > 0 || c.DiskShortWrite > 0 || c.DiskTornWrite > 0 ||
		c.DiskSyncFail > 0 || c.DiskSyncDelay > 0 || c.DiskReadCorrupt > 0
}

// PipeEnabled reports whether any pipe-plane fault is configured; WrapPipes
// is a pass-through otherwise.
func (c *Config) PipeEnabled() bool {
	if c == nil {
		return false
	}
	return c.PipeCorrupt > 0 || c.PipeTruncate > 0 || c.PipeReset > 0
}

// Metrics counts injected faults. All fields are optional; nil instruments
// (or a nil *Metrics) count nothing. The counts surface on /metrics and in
// the end-of-run report, so a chaos run states exactly how much abuse the
// campaign absorbed.
type Metrics struct {
	Corrupted  *telemetry.Counter // writes with a flipped byte
	Dropped    *telemetry.Counter // writes silently swallowed
	Truncated  *telemetry.Counter // writes cut short, connection severed
	Resets     *telemetry.Counter // connections severed mid-stream
	Partitions *telemetry.Counter // black-hole partitions entered
	Healed     *telemetry.Counter // asymmetric partitions that healed
	Delayed    *telemetry.Counter // writes that paid latency/jitter/bandwidth sleep

	DiskENOSPC      *telemetry.Counter // file writes failed with injected disk-full
	DiskShortWrites *telemetry.Counter // file writes cut short, error reported
	DiskTornWrites  *telemetry.Counter // file writes cut short, success reported
	DiskSyncFails   *telemetry.Counter // Syncs failed
	DiskReadCorrupt *telemetry.Counter // file reads with a flipped byte
	DiskPoisoned    *telemetry.Counter // golden checkpoints built with a bad sum
}

// NewMetrics registers the chaos instruments on reg under the chaos_*
// namespace; a nil registry yields nil (counting off).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Corrupted:  reg.Counter("chaos_corrupted_writes_total"),
		Dropped:    reg.Counter("chaos_dropped_writes_total"),
		Truncated:  reg.Counter("chaos_truncated_writes_total"),
		Resets:     reg.Counter("chaos_resets_total"),
		Partitions: reg.Counter("chaos_partitions_total"),
		Healed:     reg.Counter("chaos_partitions_healed_total"),
		Delayed:    reg.Counter("chaos_delayed_writes_total"),

		DiskENOSPC:      reg.Counter("chaos_disk_enospc_total"),
		DiskShortWrites: reg.Counter("chaos_disk_short_writes_total"),
		DiskTornWrites:  reg.Counter("chaos_disk_torn_writes_total"),
		DiskSyncFails:   reg.Counter("chaos_disk_sync_failures_total"),
		DiskReadCorrupt: reg.Counter("chaos_disk_read_corruptions_total"),
		DiskPoisoned:    reg.Counter("chaos_disk_checkpoints_poisoned_total"),
	}
}

// splitmix64 is the per-connection deterministic stream: tiny, seedable,
// and independent of math/rand's global state or Go version.
type splitmix64 struct{ s uint64 }

func (r *splitmix64) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform float64 in [0,1).
func (r *splitmix64) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// intn returns a uniform int in [0,n).
func (r *splitmix64) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Chaos wraps connections, file handles and worker pipes with a shared
// config and metrics sink. Each plane counts its own wrap ordinal, so the
// fault schedule of a file handle is a pure function of (seed, file
// ordinal) no matter how many connections were wrapped before it.
type Chaos struct {
	cfg     Config
	metrics *Metrics
	ordinal atomic.Uint64 // net.Conn wrap order
	fileOrd atomic.Uint64 // WrapFile wrap order
	pipeOrd atomic.Uint64 // WrapPipes wrap order

	poisonMu  sync.Mutex
	poisonRng splitmix64
	poisonOn  bool
}

// New builds a Chaos wrapper. A nil config (or one with no faults enabled)
// yields a pass-through wrapper: Wrap returns its argument unchanged.
func New(cfg Config, m *Metrics) *Chaos {
	c := &Chaos{cfg: cfg, metrics: m}
	c.poisonOn = cfg.DiskPoison > 0
	// A stream of its own: checkpoint construction order must not perturb
	// the file/conn schedules (or vice versa).
	c.poisonRng.s = uint64(cfg.Seed)*0x9e3779b97f4a7c15 + 0xa0761d6478bd642f
	return c
}

// Config returns a copy of the wrapper's configuration.
func (c *Chaos) Config() Config {
	if c == nil {
		return Config{}
	}
	return c.cfg
}

// seedFor derives the per-handle stream seed from the config seed and a
// wrap ordinal. Each plane passes its own ordinal counter.
func (c *Chaos) seedFor(ord uint64) uint64 {
	return uint64(c.cfg.Seed)*0x9e3779b97f4a7c15 + ord*0xd1342543de82ef95 + 0x2545f4914f6cdd1d
}

// Wrap returns conn with the configured fault injection on its write path
// (and partition stalls on its read path). With no network faults enabled
// it returns conn itself.
func (c *Chaos) Wrap(conn net.Conn) net.Conn {
	if c == nil || !c.cfg.NetEnabled() {
		return conn
	}
	ord := c.ordinal.Add(1) - 1
	fc := &faultConn{Conn: conn, cfg: &c.cfg, m: c.metrics}
	fc.rng.s = c.seedFor(ord)
	return fc
}

// Listener wraps ln so every accepted connection is chaos-wrapped. With no
// network faults enabled it returns ln itself.
func (c *Chaos) Listener(ln net.Listener) net.Listener {
	if c == nil || !c.cfg.NetEnabled() {
		return ln
	}
	return &faultListener{Listener: ln, chaos: c}
}

// PoisonCheckpoint draws from the dedicated poison stream and reports
// whether the golden checkpoint being built should carry a corrupted
// integrity sum. With DiskPoison off it returns false without consuming a
// draw, so enabling other disk faults never shifts the poison schedule.
func (c *Chaos) PoisonCheckpoint() bool {
	if c == nil || !c.poisonOn {
		return false
	}
	c.poisonMu.Lock()
	hit := c.poisonRng.float() < c.cfg.DiskPoison
	c.poisonMu.Unlock()
	if hit && c.metrics != nil {
		inc(c.metrics.DiskPoisoned)
	}
	return hit
}

type faultListener struct {
	net.Listener
	chaos *Chaos
}

func (l *faultListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.chaos.Wrap(conn), nil
}

// faultConn injects the configured faults on Write and partition stalls on
// Read. The mutex serialises fault decisions so the rng stream stays
// deterministic under concurrent writers (the frame layers above already
// serialise writes, but the wrapper must not depend on that).
type faultConn struct {
	net.Conn
	cfg *Config
	m   *Metrics

	mu      sync.Mutex
	rng     splitmix64
	dead    bool
	parted  bool
	partEnd time.Time
}

// errInjected marks failures this layer created, so logs distinguish
// injected chaos from real network trouble.
type errInjected struct{ what string }

func (e *errInjected) Error() string { return "chaos: injected " + e.what }

// Timeout reports true so deadline-style handling applies where callers
// check for it; the fabric treats any conn error the same way (reconnect).
func (e *errInjected) Timeout() bool { return false }

func inc(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}

func (f *faultConn) Write(b []byte) (int, error) {
	f.mu.Lock()
	if f.dead {
		f.mu.Unlock()
		return 0, &errInjected{what: "reset (connection severed)"}
	}
	if f.parted {
		// Black hole: swallow silently until the partition window closes,
		// then either heal (asymmetric outage that passed) or report the
		// connection dead.
		if time.Now().Before(f.partEnd) {
			f.mu.Unlock()
			return len(b), nil
		}
		if f.cfg.PartitionHeal {
			f.parted = false
			if f.m != nil {
				inc(f.m.Healed)
			}
			// Fall through: this write goes out on the healed link.
		} else {
			f.dead = true
			f.mu.Unlock()
			f.Conn.Close()
			return 0, &errInjected{what: "partition expiry"}
		}
	}

	// Fault decisions in fixed order, one rng draw each, so the schedule
	// is a pure function of the stream regardless of which faults are
	// enabled.
	pPart := f.rng.float()
	pReset := f.rng.float()
	pTrunc := f.rng.float()
	pDrop := f.rng.float()
	pCorrupt := f.rng.float()
	corruptAt := f.rng.intn(len(b))
	corruptBit := byte(1 << f.rng.intn(8))

	switch {
	case pPart < f.cfg.Partition:
		dur := f.cfg.PartitionFor
		if dur <= 0 {
			dur = 500 * time.Millisecond
		}
		f.parted = true
		f.partEnd = time.Now().Add(dur)
		f.mu.Unlock()
		if f.m != nil {
			inc(f.m.Partitions)
		}
		return len(b), nil
	case pReset < f.cfg.Reset:
		f.dead = true
		f.mu.Unlock()
		if f.m != nil {
			inc(f.m.Resets)
		}
		f.Conn.Close()
		return 0, &errInjected{what: "reset"}
	case pTrunc < f.cfg.Truncate:
		cut := len(b) / 2
		f.dead = true
		f.mu.Unlock()
		if f.m != nil {
			inc(f.m.Truncated)
		}
		if cut > 0 {
			f.Conn.Write(b[:cut]) // the torn prefix reaches the peer
		}
		f.Conn.Close()
		return cut, &errInjected{what: "truncated write"}
	case pDrop < f.cfg.Drop:
		f.mu.Unlock()
		if f.m != nil {
			inc(f.m.Dropped)
		}
		return len(b), nil
	}

	var sent []byte
	if pCorrupt < f.cfg.Corrupt && len(b) > 0 {
		sent = append(sent, b...)
		sent[corruptAt] ^= corruptBit
		if f.m != nil {
			inc(f.m.Corrupted)
		}
	}
	f.mu.Unlock()

	if d := f.delay(len(b)); d > 0 {
		if f.m != nil {
			inc(f.m.Delayed)
		}
		time.Sleep(d)
	}
	if sent != nil {
		n, err := f.Conn.Write(sent)
		if n > len(b) {
			n = len(b)
		}
		return n, err
	}
	return f.Conn.Write(b)
}

// delay computes the latency + jitter + bandwidth sleep for an n-byte
// write. The jitter draw happens under the lock via rngJitter to keep the
// stream deterministic.
func (f *faultConn) delay(n int) time.Duration {
	d := f.cfg.Latency
	if f.cfg.Jitter > 0 {
		f.mu.Lock()
		d += time.Duration(f.rng.next() % uint64(f.cfg.Jitter))
		f.mu.Unlock()
	}
	if f.cfg.Bandwidth > 0 {
		d += time.Duration(float64(n) / float64(f.cfg.Bandwidth) * float64(time.Second))
	}
	return d
}

func (f *faultConn) Read(b []byte) (int, error) {
	f.mu.Lock()
	if f.dead {
		f.mu.Unlock()
		return 0, &errInjected{what: "reset (connection severed)"}
	}
	if f.parted {
		if f.cfg.PartitionHeal {
			// Asymmetric partition: our writes are black-holed but the
			// peer's still reach us, so reads pass through.
			f.mu.Unlock()
			return f.Conn.Read(b)
		}
		end := f.partEnd
		f.mu.Unlock()
		// Stall like a silent link, then die. A read deadline set by the
		// caller still fires first if it is sooner — the Conn is closed
		// under us in that case and the Read returns its error.
		if wait := time.Until(end); wait > 0 {
			time.Sleep(wait)
		}
		f.mu.Lock()
		f.dead = true
		f.mu.Unlock()
		f.Conn.Close()
		return 0, &errInjected{what: "partition expiry"}
	}
	f.mu.Unlock()
	return f.Conn.Read(b)
}

// ParseSpec parses the CLI chaos spec: comma-separated key=value pairs.
//
//	seed=7,corrupt=0.01,drop=0.005,truncate=0.002,reset=0.002,
//	partition=0.001,partition-for=300ms,partition-heal=true,
//	latency=2ms,jitter=1ms,bandwidth=1048576,
//	disk.enospc=0.01,disk.short-write=0.005,disk.torn-write=0.005,
//	disk.sync-fail=0.01,disk.sync-delay=2ms,disk.read-corrupt=0.005,
//	disk.poison=0.02,pipe.corrupt=0.01,pipe.truncate=0.005,pipe.reset=0.005
//
// Unknown keys are rejected — all of them in one error, with the list of
// valid ones — so a typo cannot silently run a clean campaign that claims
// to be a chaos run, and a spec with three typos needs one round trip, not
// three. Duplicate keys are rejected too: a spec where "corrupt" appears
// twice has no single reading, and last-one-wins would hide the earlier
// value the operator thought was in force.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	seen := make(map[string]bool)
	var unknown []string
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return cfg, fmt.Errorf("chaos: %q is not key=value", kv)
		}
		if seen[key] {
			return cfg, fmt.Errorf("chaos: duplicate key %q", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(val, 10, 64)
		case "latency":
			cfg.Latency, err = time.ParseDuration(val)
		case "jitter":
			cfg.Jitter, err = time.ParseDuration(val)
		case "bandwidth":
			cfg.Bandwidth, err = strconv.Atoi(val)
		case "corrupt":
			cfg.Corrupt, err = parseProb(val)
		case "drop":
			cfg.Drop, err = parseProb(val)
		case "truncate":
			cfg.Truncate, err = parseProb(val)
		case "reset":
			cfg.Reset, err = parseProb(val)
		case "partition":
			cfg.Partition, err = parseProb(val)
		case "partition-for":
			cfg.PartitionFor, err = time.ParseDuration(val)
		case "partition-heal":
			cfg.PartitionHeal, err = strconv.ParseBool(val)
		case "disk.enospc":
			cfg.DiskENOSPC, err = parseProb(val)
		case "disk.short-write":
			cfg.DiskShortWrite, err = parseProb(val)
		case "disk.torn-write":
			cfg.DiskTornWrite, err = parseProb(val)
		case "disk.sync-fail":
			cfg.DiskSyncFail, err = parseProb(val)
		case "disk.sync-delay":
			cfg.DiskSyncDelay, err = time.ParseDuration(val)
		case "disk.read-corrupt":
			cfg.DiskReadCorrupt, err = parseProb(val)
		case "disk.poison":
			cfg.DiskPoison, err = parseProb(val)
		case "pipe.corrupt":
			cfg.PipeCorrupt, err = parseProb(val)
		case "pipe.truncate":
			cfg.PipeTruncate, err = parseProb(val)
		case "pipe.reset":
			cfg.PipeReset, err = parseProb(val)
		default:
			unknown = append(unknown, strconv.Quote(key))
			continue
		}
		if err != nil {
			return cfg, fmt.Errorf("chaos: %s: %w", key, err)
		}
	}
	if len(unknown) > 0 {
		noun := "key"
		if len(unknown) > 1 {
			noun = "keys"
		}
		return cfg, fmt.Errorf("chaos: unknown %s %s (valid: %s)",
			noun, strings.Join(unknown, ", "), strings.Join(specKeys(), ", "))
	}
	return cfg, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0,1]", p)
	}
	return p, nil
}

func specKeys() []string {
	keys := []string{
		"seed", "latency", "jitter", "bandwidth", "corrupt", "drop",
		"truncate", "reset", "partition", "partition-for", "partition-heal",
		"disk.enospc", "disk.short-write", "disk.torn-write",
		"disk.sync-fail", "disk.sync-delay", "disk.read-corrupt",
		"disk.poison", "pipe.corrupt", "pipe.truncate", "pipe.reset",
	}
	sort.Strings(keys)
	return keys
}
