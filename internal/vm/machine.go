package vm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
)

// Register conventions used by the toolchain (they mirror the PowerPC EABI
// closely enough that the paper's listings read naturally):
//
//	r0        hardwired zero (reads as 0, writes are ignored)
//	r1 (SP)   stack pointer, grows down
//	r3..r10   arguments / return value / scratch
//	r30 (FP)  frame pointer
//	r10       system-call number (by convention of OpSc)
const (
	RegZero = 0
	RegSP   = 1
	RegRet  = 3
	RegFP   = 30
	RegSys  = 10
)

// Default machine geometry.
const (
	DefaultMemSize   = 1 << 20 // 1 MiB
	DefaultMaxCycles = 8 << 20 // watchdog: ~8.4M instructions
	TextBase         = 0x1000  // load address of the text segment
	WordSize         = 4       // bytes per machine word
	NumIABR          = 2       // PPC 601: two instruction-address breakpoints
)

// Dirty-page tracking granularity. Stores are word- or byte-sized and words
// are 4-aligned, so no write ever crosses a page boundary.
const (
	pageShift = 10 // 1024-byte pages
	pageSize  = 1 << pageShift
)

// Per-page dirty flags. pageBoot marks a page modified since Load/Reset (its
// content may differ from the pristine image); pageSnap marks it modified
// since the machine's most recent Snapshot. pageSnap implies pageBoot.
const (
	pageBoot uint8 = 1 << iota
	pageSnap
)

// Exc identifies a hardware exception. Any exception terminates the run with
// StateCrashed; the paper's "program crash" failure mode.
type Exc int

// Exception causes.
const (
	ExcNone     Exc = iota
	ExcIllegal      // undecodable instruction word
	ExcAlign        // misaligned word access or misaligned PC
	ExcProt         // access outside a mapped, permitted segment
	ExcDivZero      // divw/mod with zero divisor
	ExcStackOvf     // SP pushed below the stack limit
	ExcBadSys       // undefined system-call number
	ExcTrap         // OpTrap executed with no trap handler armed
)

var excNames = map[Exc]string{
	ExcNone:     "none",
	ExcIllegal:  "illegal instruction",
	ExcAlign:    "alignment",
	ExcProt:     "memory protection",
	ExcDivZero:  "division by zero",
	ExcStackOvf: "stack overflow",
	ExcBadSys:   "bad system call",
	ExcTrap:     "unhandled trap",
}

// String returns a human-readable exception name.
func (e Exc) String() string {
	if s, ok := excNames[e]; ok {
		return s
	}
	return "exc(" + strconv.Itoa(int(e)) + ")"
}

// State is the execution state of a Machine.
type State int

// Machine states.
const (
	StateReady   State = iota + 1 // loaded, not yet run
	StateRunning                  // inside Run
	StateHalted                   // program exited via SysExit
	StateCrashed                  // hardware exception raised
	StateHung                     // watchdog expired (paper: "program hang")
)

var stateNames = map[State]string{
	StateReady:   "ready",
	StateRunning: "running",
	StateHalted:  "halted",
	StateCrashed: "crashed",
	StateHung:    "hung",
}

// String returns a human-readable state name.
func (s State) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return "state(" + strconv.Itoa(int(s)) + ")"
}

// System-call numbers (placed in r10 before OpSc).
const (
	SysExit      = 1 // status in r3
	SysReadInt   = 2 // result in r3; r4=0 on success, r4=1 on end of input
	SysWriteInt  = 3 // writes decimal of r3 followed by '\n'
	SysWriteChar = 4 // writes byte r3
	SysReadChar  = 5 // result in r3 (-1 on end of input)
	SysBrk       = 6 // r3 = size to extend heap by; returns old break in r3
)

// FetchHook may rewrite an instruction word as it crosses the bus from memory
// to the processor. This is Xception's "error inserted in the data fetched"
// location for opcode fetches: memory is untouched, only the executed word
// changes. Return the (possibly modified) word.
type FetchHook func(addr uint32, word uint32) uint32

// LoadHook may rewrite a data word fetched by lwz/lwzx/lbz/lbzx.
type LoadHook func(addr uint32, value uint32) uint32

// StoreHook may rewrite a data word about to be stored by stw/stwx/stb/stbx.
type StoreHook func(addr uint32, value uint32) uint32

// IABRHook runs when instruction fetch hits an armed instruction-address
// breakpoint register, before the instruction executes.
type IABRHook func(m *Machine, addr uint32)

// TrapHook runs when OpTrap executes in intrusive trigger mode. It must
// either emulate the displaced instruction or restore it; if no hook is set,
// OpTrap raises ExcTrap.
type TrapHook func(m *Machine, addr uint32) error

// Machine is one processor plus its private memory, I/O streams and debug
// facilities. A fresh Machine per injection run models the paper's
// "target system is rebooted between injections".
type Machine struct {
	mem  []byte
	regs [32]uint32
	pc   uint32
	lr   uint32
	cr   [8]crField

	textBase uint32
	textEnd  uint32
	dataBase uint32
	brk      uint32
	stackLim uint32

	state State
	exc   Exc
	excAt uint32

	exitStatus int32
	cycles     uint64
	maxCycles  uint64

	// cycleQuota is the hard instruction quota of the worker sandbox: a
	// host-robustness backstop set (when non-zero) above the calibrated
	// watchdog budget. The watchdog expiring classifies the *target* as hung;
	// the quota expiring means the *host* mis-set or lost the watchdog, so
	// Run reports ErrCycleQuota instead of a target state. runLimit caches
	// min(maxCycles, cycleQuota) so the hot loop keeps its single compare;
	// quotaHit carries the quota verdict from the step path out to Run.
	cycleQuota uint64
	runLimit   uint64
	quotaHit   bool

	input   []int32 // integer input stream (SysReadInt)
	inPos   int
	inBytes []byte // byte input stream (SysReadChar)
	inBPos  int
	output  []byte

	iabr      [NumIABR]uint32
	iabrSet   [NumIABR]bool
	iabrAny   bool
	iabrHook  IABRHook
	fetchHook FetchHook
	loadHook  LoadHook
	storeHook StoreHook
	trapHook  TrapHook

	// trace, when non-nil, records recently executed instructions.
	trace *traceRing

	// decoded caches the decoded form of every text word so the fetch path
	// does not re-decode on each cycle; decodedOK marks valid entries. The
	// cache is refreshed by Load and by WriteWord into text. Invariant:
	// an entry with decodedOK false is the zero Inst, so its OpIllegal
	// opcode raises ExcIllegal in execute — letting the fast loop skip the
	// decodedOK load entirely.
	decoded   []Inst
	decodedOK []bool

	// textWritable permits stores into the text segment. The injector sets
	// it while planting persistent instruction-memory corruptions or trap
	// words; target programs always run with it off, so a wild store into
	// code raises ExcProt like on the Parsytec (whose text pages were
	// read-only).
	textWritable bool

	// hot caches "no per-step observer is armed": no watchpoints, no trace
	// ring, no fetch hook, no live breakpoint hook. Run uses it to pick the
	// fused fast loop over the general step; every setter that arms or
	// clears one of those observers refreshes it via updateHot. Load/store/
	// trap hooks are irrelevant — they cost nothing on the fetch path.
	hot bool

	// Block compilation (block.go/compile.go). blocks caches one compiled
	// basic block per text-word entry index (nil = not yet compiled);
	// blockOK caches block-dispatch eligibility the way hot does for the
	// fast loop — it additionally tolerates watchpoints, which the block
	// dispatcher proves absent per block; interpOnly is the -interp-only
	// A/B switch forcing the per-instruction paths, persistent across
	// Load/Reset/Restore like the watchdog budget.
	blocks     []*block
	blockOK    bool
	interpOnly bool

	// img is the image installed by Load, retained so Reset can restore
	// the machine without a reload. textDirty records that text memory (and
	// hence the decoded cache) was modified after Load — by the injector
	// planting persistent corruptions or trap words, or by PlantDecoded —
	// so Reset knows when the decoded cache must be rebuilt.
	img       Image
	textDirty bool

	// textMods lists the decoded-cache indices whose entry — or backing text
	// word — may differ from the pristine image: every PlantDecoded and every
	// WriteWord into text records its index here. It lets Reset and Restore
	// re-decode exactly the touched entries instead of rebuilding the whole
	// cache; textModsOvf set means the list overflowed (maxTextMods) and a
	// full rebuild is required. decodeRebuilds counts those full rebuilds —
	// the redundant-rebuild regression test asserts it stays zero on the
	// precise paths.
	textMods       []uint32
	textModsOvf    bool
	decodeRebuilds int

	// Dirty-page tracking: pageFlags holds pageBoot/pageSnap bits per page
	// and dirtyPages lists every page with pageBoot set, so Reset, Snapshot
	// and Restore cost O(pages actually written) instead of O(memory size).
	// prevSnap is the machine's most recent Snapshot; pages unchanged since
	// it was taken are shared with it (copy-on-write) by the next Snapshot.
	pageFlags  []uint8
	dirtyPages []uint32
	prevSnap   *Snapshot

	// Watchpoints (see watch.go): the golden runner uses them to take
	// checkpoints at the first arrival of planned trigger addresses and at
	// fixed cycle marks.
	watchIdx      []bool
	watchAny      bool
	watchCycles   []uint64
	watchCyclePos int
	watchHook     WatchHook
}

// Config parameterises a new Machine. The zero value selects defaults.
type Config struct {
	MemSize   uint32 // total memory; default DefaultMemSize
	MaxCycles uint64 // watchdog budget; default DefaultMaxCycles
}

// ErrNotLoaded is returned by Run when no program has been loaded.
var ErrNotLoaded = errors.New("vm: no program loaded")

// New creates a machine with no program loaded.
func New(cfg Config) *Machine {
	if cfg.MemSize == 0 {
		cfg.MemSize = DefaultMemSize
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = DefaultMaxCycles
	}
	return &Machine{
		mem:       make([]byte, cfg.MemSize),
		maxCycles: cfg.MaxCycles,
		runLimit:  cfg.MaxCycles,
	}
}

// crField is one condition-register field as set by cmpw/cmpwi: a bitmask
// with exactly one of crLT/crGT/crEQ set. The bit layout is also the
// Snapshot.Checksum wire encoding of a field, so it must not change.
type crField uint8

// crField bits.
const (
	crLT crField = 1 << iota
	crGT
	crEQ
)

func compare(a, b int32) crField {
	if a < b {
		return crLT
	}
	if a > b {
		return crGT
	}
	return crEQ
}

func (f crField) holds(c Cond) bool {
	switch c {
	case CondLT:
		return f&crLT != 0
	case CondLE:
		return f&(crLT|crEQ) != 0
	case CondEQ:
		return f&crEQ != 0
	case CondGE:
		return f&(crGT|crEQ) != 0
	case CondGT:
		return f&crGT != 0
	case CondNE:
		return f&crEQ == 0
	}
	return false
}

// condEnc packs a branch condition into the mask-test form the block engine
// evaluates branchlessly: the condition holds iff (field & enc&7 != 0) !=
// (enc&8 != 0). Encoding at block-compile time replaces holds' per-execution
// switch with one AND and one compare.
func condEnc(c Cond) uint8 {
	switch c {
	case CondLT:
		return uint8(crLT)
	case CondLE:
		return uint8(crLT | crEQ)
	case CondEQ:
		return uint8(crEQ)
	case CondGE:
		return uint8(crGT | crEQ)
	case CondGT:
		return uint8(crGT)
	case CondNE:
		return uint8(crEQ) | 8
	}
	return 0
}

// crHolds evaluates a condEnc-encoded condition against a CR field.
func crHolds(f crField, enc uint8) bool {
	return (f&crField(enc&7) != 0) != (enc&8 != 0)
}

// Image is a loadable program: machine code plus initialised data.
type Image struct {
	Text  []uint32 // machine code, loaded at TextBase
	Data  []byte   // initialised data, loaded right after text
	Entry uint32   // entry point (absolute address)
}

// Load maps the image, resets registers, and primes the stack. It leaves the
// machine in StateReady.
func (m *Machine) Load(img Image) error {
	textBytes := uint32(len(img.Text)) * WordSize
	dataStart := TextBase + textBytes
	if int(dataStart)+len(img.Data) > len(m.mem)/2 {
		return fmt.Errorf("vm: image too large: %d text bytes + %d data bytes", textBytes, len(img.Data))
	}
	if m.pageFlags == nil {
		m.pageFlags = make([]uint8, (len(m.mem)+pageSize-1)/pageSize)
	}
	for i := range m.mem {
		m.mem[i] = 0
	}
	m.textBase = TextBase
	m.textEnd = dataStart
	for i, w := range img.Text {
		m.putWordRaw(TextBase+uint32(i)*WordSize, w)
	}
	copy(m.mem[dataStart:], img.Data)
	m.dataBase = dataStart
	m.brk = dataStart + uint32(len(img.Data))
	// Align the break.
	m.brk = (m.brk + WordSize - 1) &^ (WordSize - 1)

	memTop := uint32(len(m.mem))
	m.stackLim = m.brk + (memTop-m.brk)/2 // lower half above brk is heap room
	m.regs = [32]uint32{}
	m.regs[RegSP] = memTop - 16
	m.regs[RegFP] = memTop - 16
	m.decoded = make([]Inst, len(img.Text))
	m.decodedOK = make([]bool, len(img.Text))
	for i, w := range img.Text {
		if in, err := Decode(w); err == nil {
			m.decoded[i] = in
			m.decodedOK[i] = true
		}
	}
	m.blocks = make([]*block, len(img.Text))
	m.textMods = m.textMods[:0]
	m.textModsOvf = false
	m.pc = img.Entry
	m.lr = 0
	m.cr = [8]crField{}
	m.state = StateReady
	m.exc = ExcNone
	m.cycles = 0
	m.exitStatus = 0
	m.inPos, m.inBPos = 0, 0
	m.output = m.output[:0]
	m.img = img
	m.textDirty = false
	// Memory now equals the pristine image by construction.
	clear(m.pageFlags)
	m.dirtyPages = m.dirtyPages[:0]
	m.prevSnap = nil
	m.clearWatch()
	return nil
}

// markPage flags one page dirty since boot and since the last snapshot,
// registering it in the dirty list on its first write.
func (m *Machine) markPage(pi uint32) {
	if m.pageFlags[pi] == 0 {
		m.dirtyPages = append(m.dirtyPages, pi)
	}
	m.pageFlags[pi] = pageBoot | pageSnap
}

// refreshPage rewrites one page to its pristine post-Load content: zeros,
// overlaid with the text and data segments where they intersect the page.
// It writes memory directly and leaves the page flags to the caller.
func (m *Machine) refreshPage(pi uint32) {
	lo := pi << pageShift
	hi := lo + pageSize
	if hi > uint32(len(m.mem)) {
		hi = uint32(len(m.mem))
	}
	clear(m.mem[lo:hi])
	if lo < m.textEnd && hi > m.textBase {
		a, b := lo, hi
		if a < m.textBase {
			a = m.textBase
		}
		if b > m.textEnd {
			b = m.textEnd
		}
		for addr := a; addr < b; addr += WordSize {
			w := m.img.Text[(addr-m.textBase)/WordSize]
			m.mem[addr] = byte(w >> 24)
			m.mem[addr+1] = byte(w >> 16)
			m.mem[addr+2] = byte(w >> 8)
			m.mem[addr+3] = byte(w)
		}
	}
	dEnd := m.dataBase + uint32(len(m.img.Data))
	if lo < dEnd && hi > m.dataBase {
		a, b := lo, hi
		if a < m.dataBase {
			a = m.dataBase
		}
		if b > dEnd {
			b = dEnd
		}
		copy(m.mem[a:b], m.img.Data[a-m.dataBase:b-m.dataBase])
	}
}

// setDecoded installs the decoding of word w at decoded-cache index i,
// preserving the invariant that undecodable entries are the zero Inst.
func (m *Machine) setDecoded(i, w uint32) {
	if in, err := Decode(w); err == nil {
		m.decoded[i] = in
		m.decodedOK[i] = true
	} else {
		m.decoded[i] = Inst{}
		m.decodedOK[i] = false
	}
}

// maxTextMods caps the precise text-modification list. Campaigns plant one
// or two corruptions per run, so the cap only trips on pathological
// self-rewriting loads, which degrade to a full cache rebuild.
const maxTextMods = 32

// noteTextMod records that decoded entry i (or its backing text word) may now
// differ from the pristine image. It is the single place textDirty is set.
func (m *Machine) noteTextMod(i uint32) {
	m.textDirty = true
	if m.textModsOvf {
		return
	}
	for _, j := range m.textMods {
		if j == i {
			return
		}
	}
	if len(m.textMods) >= maxTextMods {
		m.textModsOvf = true
		m.textMods = m.textMods[:0]
		return
	}
	m.textMods = append(m.textMods, i)
}

// redecodeFromImage re-syncs the decoded cache (and the compiled blocks it
// feeds) with the pristine image after Reset restored text memory. With a
// precise modification list only the touched entries are re-decoded; an
// overflowed list forces the full rebuild.
func (m *Machine) redecodeFromImage() {
	if m.textModsOvf {
		for i, w := range m.img.Text {
			m.setDecoded(uint32(i), w)
		}
		m.clearBlocks()
		m.decodeRebuilds++
	} else {
		for _, i := range m.textMods {
			m.setDecoded(i, m.img.Text[i])
			m.invalidateBlocksAt(i)
		}
	}
	m.textMods = m.textMods[:0]
	m.textModsOvf = false
	m.textDirty = false
}

// DecodeRebuilds reports how many full decoded-cache rebuilds the machine has
// performed since New (observability for the redundant-rebuild regression
// test; Reset and Restore normally re-decode only the modified entries).
func (m *Machine) DecodeRebuilds() int { return m.decodeRebuilds }

// Reset restores a loaded machine to its post-Load state — memory image,
// registers, cycle counter, I/O positions, breakpoint registers, hooks and
// trace all return to what a fresh New+Load would produce — without
// reallocating the memory or decode arrays. It is the fast "reboot between
// injections" used by the parallel campaign executor's machine pools; a
// reset machine is behaviourally indistinguishable from a fresh one (see
// TestResetMatchesFreshMachine).
func (m *Machine) Reset() error {
	if m.state == 0 {
		return ErrNotLoaded
	}
	// Only pages actually written since Load/Reset can differ from the
	// image, so reverting those restores all of memory.
	for _, pi := range m.dirtyPages {
		m.refreshPage(pi)
		m.pageFlags[pi] = 0
	}
	m.dirtyPages = m.dirtyPages[:0]
	m.prevSnap = nil
	m.brk = m.dataBase + uint32(len(m.img.Data))
	m.brk = (m.brk + WordSize - 1) &^ (WordSize - 1)

	memTop := uint32(len(m.mem))
	m.stackLim = m.brk + (memTop-m.brk)/2
	m.regs = [32]uint32{}
	m.regs[RegSP] = memTop - 16
	m.regs[RegFP] = memTop - 16
	if m.textDirty {
		m.redecodeFromImage()
	}
	m.pc = m.img.Entry
	m.lr = 0
	m.cr = [8]crField{}
	m.state = StateReady
	m.exc = ExcNone
	m.excAt = 0
	m.cycles = 0
	m.quotaHit = false
	m.exitStatus = 0
	m.input = m.input[:0]
	m.inBytes = m.inBytes[:0]
	m.inPos, m.inBPos = 0, 0
	m.output = m.output[:0]

	m.iabr = [NumIABR]uint32{}
	m.iabrSet = [NumIABR]bool{}
	m.iabrAny = false
	m.iabrHook = nil
	m.fetchHook = nil
	m.loadHook = nil
	m.storeHook = nil
	m.trapHook = nil
	m.trace = nil
	m.textWritable = false
	m.clearWatch()
	return nil
}

// SetMaxCycles replaces the watchdog budget (0 restores the default). The
// campaign executor calibrates a per-case budget and installs it on the
// pooled machine before each run.
func (m *Machine) SetMaxCycles(n uint64) {
	if n == 0 {
		n = DefaultMaxCycles
	}
	m.maxCycles = n
	m.recomputeRunLimit()
}

// ErrCycleQuota is returned by Run when the hard cycle quota (SetCycleQuota)
// expires. It signals a host-side failure — the watchdog budget was lost or
// mis-set — not a target outcome: the campaign executor quarantines the unit
// instead of classifying it.
var ErrCycleQuota = errors.New("vm: hard cycle quota exceeded")

// SetCycleQuota installs a hard instruction quota (0 disables it, the
// default). The quota is a robustness backstop, not a classification
// mechanism: callers set it strictly above the watchdog budget, so an honest
// run always hits the watchdog (and classifies as a hang) first. Run returns
// ErrCycleQuota if the quota ever expires.
func (m *Machine) SetCycleQuota(n uint64) {
	m.cycleQuota = n
	m.recomputeRunLimit()
}

func (m *Machine) recomputeRunLimit() {
	m.runLimit = m.maxCycles
	if m.cycleQuota != 0 && m.cycleQuota < m.runLimit {
		m.runLimit = m.cycleQuota
	}
}

// limitExpire classifies an expired run limit: reaching the hard quota marks
// the run as a host fault (quotaHit makes Run return ErrCycleQuota); reaching
// only the watchdog budget is the paper's dead-loop timeout, state hung.
func (m *Machine) limitExpire() {
	if m.cycleQuota != 0 && m.cycles >= m.cycleQuota {
		m.quotaHit = true
	}
	m.state = StateHung
}

// SetInput installs the integer input stream consumed by SysReadInt.
func (m *Machine) SetInput(ints []int32) {
	m.input = append(m.input[:0], ints...)
	m.inPos = 0
}

// SetByteInput installs the byte input stream consumed by SysReadChar.
func (m *Machine) SetByteInput(b []byte) {
	m.inBytes = append(m.inBytes[:0], b...)
	m.inBPos = 0
}

// Output returns a copy of everything the program wrote.
func (m *Machine) Output() []byte {
	out := make([]byte, len(m.output))
	copy(out, m.output)
	return out
}

// State reports the current execution state.
func (m *Machine) State() State { return m.state }

// Exception reports the exception that crashed the machine (ExcNone if it
// did not crash) and the PC at which it was raised.
func (m *Machine) Exception() (Exc, uint32) { return m.exc, m.excAt }

// ExitStatus returns the SysExit status (meaningful once StateHalted).
func (m *Machine) ExitStatus() int32 { return m.exitStatus }

// Cycles returns the number of instructions executed so far.
func (m *Machine) Cycles() uint64 { return m.cycles }

// PC returns the current program counter.
func (m *Machine) PC() uint32 { return m.pc }

// SetPC overrides the program counter (debugger/injector use).
func (m *Machine) SetPC(pc uint32) { m.pc = pc }

// Reg returns general-purpose register n (r0 always reads zero). The read
// is branchless: regs[0] is kept zero as an invariant — Load, Reset and
// Restore all establish it and SetReg refuses to break it.
func (m *Machine) Reg(n uint8) uint32 {
	return m.regs[n&31]
}

// SetReg writes general-purpose register n (writes to r0 are ignored). The
// write is branchless: it lands unconditionally and r0 is re-zeroed, which
// restores the regs[0]==0 invariant Reg relies on.
func (m *Machine) SetReg(n uint8, v uint32) {
	m.regs[n&31] = v
	m.regs[0] = 0
}

// LR returns the link register.
func (m *Machine) LR() uint32 { return m.lr }

// TextRange returns the [base, end) byte range of the text segment.
func (m *Machine) TextRange() (base, end uint32) { return m.textBase, m.textEnd }

// SetIABR arms instruction-address breakpoint register i (0 or 1). Arming a
// register out of range returns an error: the PPC 601 has exactly two.
func (m *Machine) SetIABR(i int, addr uint32) error {
	if i < 0 || i >= NumIABR {
		return fmt.Errorf("vm: IABR index %d out of range (processor has %d)", i, NumIABR)
	}
	m.iabr[i] = addr
	m.iabrSet[i] = true
	m.iabrAny = true
	m.updateHot()
	return nil
}

// ClearIABR disarms breakpoint register i.
func (m *Machine) ClearIABR(i int) {
	if i >= 0 && i < NumIABR {
		m.iabrSet[i] = false
	}
	m.iabrAny = false
	for _, set := range m.iabrSet {
		if set {
			m.iabrAny = true
		}
	}
	m.updateHot()
}

// SetIABRHook installs the callback run on IABR hits.
func (m *Machine) SetIABRHook(h IABRHook) { m.iabrHook = h; m.updateHot() }

// SetFetchHook installs the instruction-bus corruption hook.
func (m *Machine) SetFetchHook(h FetchHook) { m.fetchHook = h; m.updateHot() }

// updateHot refreshes the fast-loop and block-dispatch eligibility caches;
// see the hot and blockOK fields. blockOK tolerates watchpoints — the block
// dispatcher proves per block that none can fire inside it and falls back to
// step otherwise — but needs everything else the fast loop needs.
func (m *Machine) updateHot() {
	m.hot = !m.watchAny && m.trace == nil && m.fetchHook == nil &&
		!(m.iabrAny && m.iabrHook != nil)
	m.blockOK = !m.interpOnly && m.blocks != nil && m.trace == nil &&
		m.fetchHook == nil && !(m.iabrAny && m.iabrHook != nil)
}

// SetInterpOnly forces the per-instruction interpreter paths, disabling
// compiled-block dispatch: the -interp-only A/B switch used to validate that
// both engines produce bit-identical runs. Unlike hooks it survives Load,
// Reset and Restore, like the watchdog budget.
func (m *Machine) SetInterpOnly(v bool) {
	m.interpOnly = v
	m.updateHot()
}

// SetLoadHook installs the data-load corruption hook.
func (m *Machine) SetLoadHook(h LoadHook) { m.loadHook = h }

// SetStoreHook installs the data-store corruption hook.
func (m *Machine) SetStoreHook(h StoreHook) { m.storeHook = h }

// SetTrapHook installs the software-breakpoint handler.
func (m *Machine) SetTrapHook(h TrapHook) { m.trapHook = h }

// SetTextWritable toggles injector write access to the text segment.
func (m *Machine) SetTextWritable(w bool) { m.textWritable = w }

// InjectException raises an exception from outside the core (injector use):
// a corrupted bus operation that would have faulted on real hardware, e.g. a
// shifted load address leaving mapped memory, must crash the run.
func (m *Machine) InjectException(e Exc) {
	m.raise(e, m.pc)
}

// ReadMem copies n bytes starting at addr with injector privileges.
func (m *Machine) ReadMem(addr uint32, n int) ([]byte, error) {
	end := addr + uint32(n)
	if end < addr || int(end) > len(m.mem) {
		return nil, fmt.Errorf("vm: read of %d bytes at %#x out of range", n, addr)
	}
	out := make([]byte, n)
	copy(out, m.mem[addr:end])
	return out, nil
}

// raise records an exception and moves the machine to StateCrashed.
func (m *Machine) raise(e Exc, at uint32) {
	m.state = StateCrashed
	m.exc = e
	m.excAt = at
}

// putWordRaw writes a big-endian word without protection checks (loader use).
func (m *Machine) putWordRaw(addr, w uint32) {
	if pi := addr >> pageShift; m.pageFlags[pi] != pageBoot|pageSnap {
		m.markPage(pi)
	}
	binary.BigEndian.PutUint32(m.mem[addr:], w)
}

func (m *Machine) getWordRaw(addr uint32) uint32 {
	return binary.BigEndian.Uint32(m.mem[addr:])
}

// ReadWord reads a word with the injector's privileges (no protection check
// beyond bounds). It is used to inspect and corrupt code or data.
func (m *Machine) ReadWord(addr uint32) (uint32, error) {
	if addr%WordSize != 0 || int(addr)+WordSize > len(m.mem) {
		return 0, fmt.Errorf("vm: read of word at %#x out of range", addr)
	}
	return m.getWordRaw(addr), nil
}

// WriteWord writes a word with the injector's privileges. Writing into text
// requires SetTextWritable(true); this keeps accidental self-modification by
// target programs impossible while letting the injector plant corruptions.
func (m *Machine) WriteWord(addr, w uint32) error {
	if addr%WordSize != 0 || int(addr)+WordSize > len(m.mem) {
		return fmt.Errorf("vm: write of word at %#x out of range", addr)
	}
	if addr >= m.textBase && addr < m.textEnd {
		if !m.textWritable {
			return fmt.Errorf("vm: write into read-only text at %#x", addr)
		}
		i := (addr - m.textBase) / WordSize
		m.setDecoded(i, w)
		m.noteTextMod(i)
		m.invalidateBlocksAt(i)
	}
	m.putWordRaw(addr, w)
	return nil
}

// loadWord performs a program-level 32-bit load with protection checks.
func (m *Machine) loadWord(addr uint32) (uint32, bool) {
	if addr%WordSize != 0 {
		m.raise(ExcAlign, m.pc)
		return 0, false
	}
	if !m.dataAccessible(addr, WordSize) {
		m.raise(ExcProt, m.pc)
		return 0, false
	}
	v := m.getWordRaw(addr)
	if m.loadHook != nil {
		v = m.loadHook(addr, v)
	}
	return v, true
}

func (m *Machine) storeWord(addr, v uint32) bool {
	if addr%WordSize != 0 {
		m.raise(ExcAlign, m.pc)
		return false
	}
	if !m.dataWritable(addr, WordSize) {
		m.raise(ExcProt, m.pc)
		return false
	}
	if m.storeHook != nil {
		v = m.storeHook(addr, v)
	}
	m.putWordRaw(addr, v)
	return true
}

func (m *Machine) loadByte(addr uint32) (uint32, bool) {
	if !m.dataAccessible(addr, 1) {
		m.raise(ExcProt, m.pc)
		return 0, false
	}
	v := uint32(m.mem[addr])
	if m.loadHook != nil {
		v = m.loadHook(addr, v)
	}
	return v & 0xff, true
}

func (m *Machine) storeByte(addr, v uint32) bool {
	if !m.dataWritable(addr, 1) {
		m.raise(ExcProt, m.pc)
		return false
	}
	if m.storeHook != nil {
		v = m.storeHook(addr, v)
	}
	if pi := addr >> pageShift; m.pageFlags[pi] != pageBoot|pageSnap {
		m.markPage(pi)
	}
	m.mem[addr] = byte(v)
	return true
}

// dataAccessible reports whether [addr, addr+n) is readable by the program:
// anywhere in text (constants live there) or above the data base.
func (m *Machine) dataAccessible(addr, n uint32) bool {
	// Both range conditions fold into one unsigned comparison: addr-base
	// underflows to a huge value for addr below the base, and the bound
	// keeps addr+n within memory (n <= 4 << base, so it cannot underflow).
	return addr-m.textBase <= uint32(len(m.mem))-n-m.textBase
}

// dataWritable reports whether [addr, addr+n) is writable by the program:
// data, heap or stack, but never text.
func (m *Machine) dataWritable(addr, n uint32) bool {
	return addr-m.dataBase <= uint32(len(m.mem))-n-m.dataBase
}

// Run executes until the program halts, crashes, hangs, or the watchdog
// expires. It returns the final state.
func (m *Machine) Run() (State, error) {
	if m.state == 0 {
		return 0, ErrNotLoaded
	}
	if m.state != StateReady {
		return m.state, fmt.Errorf("vm: machine not ready (state %s)", m.state)
	}
	m.state = StateRunning
	// Hot-loop invariants: the text geometry and the decoded cache's
	// backing array are fixed for the lifetime of a run — only Load
	// replaces them, and hooks must never re-Load a running machine.
	// Hoisting them saves their reload on every instruction (the compiler
	// cannot prove the execute call leaves them alone). In-place cache
	// updates (WriteWord, PlantDecoded from a trap hook) still land in the
	// hoisted slice's backing array.
	decoded := m.decoded
	textBase := m.textBase
	for m.state == StateRunning {
		// Compiled-block dispatch outranks both interpreter loops; it
		// returns when the run ends or when eligibility flips (a trap hook
		// arming an observer mid-run), so the loop re-checks and falls
		// through to the per-instruction paths.
		if m.blockOK {
			m.runBlocks()
			continue
		}
		// The fast loop is the general step with every absent-observer
		// check hoisted out. hot is re-read each iteration because a trap
		// hook (which execute can invoke) may arm an observer mid-run.
		if !m.hot {
			m.step()
			continue
		}
		if m.cycles >= m.runLimit {
			m.limitExpire()
			break
		}
		m.cycles++
		pc := m.pc
		if pc&(WordSize-1) != 0 {
			m.raise(ExcAlign, pc)
			break
		}
		idx := (pc - textBase) / WordSize
		if idx >= uint32(len(decoded)) {
			m.raise(ExcProt, pc)
			break
		}
		// No decodedOK check: undecodable entries are kept as the zero
		// Inst, whose OpIllegal raises ExcIllegal at pc inside execute —
		// the same exception the check would produce.
		//
		// The most frequent opcodes are executed inline to spare the call
		// into execute's full switch; each case replicates its execute
		// counterpart exactly (the straight-vs-checkpointed equivalence
		// tests compare the two paths instruction stream for instruction
		// stream). The stack-overflow check runs only on writes to SP
		// here: with no observer hooks armed, SP cannot move any other
		// way — ops that can reach a hook (loads, stores, sc, trap) and
		// all rarer ops take the execute path with its unconditional
		// check.
		in := decoded[idx]
		switch in.Op {
		case OpAddi:
			m.regs[in.RD&31] = m.regs[in.RA&31] + uint32(in.Imm)
			m.regs[0] = 0
			if in.RD == RegSP && m.regs[RegSP] < m.stackLim && m.regs[RegSP] != 0 {
				m.raise(ExcStackOvf, pc)
				break
			}
			m.pc = pc + WordSize
		case OpAdd:
			m.regs[in.RD&31] = m.regs[in.RA&31] + m.regs[in.RB&31]
			m.regs[0] = 0
			if in.RD == RegSP && m.regs[RegSP] < m.stackLim && m.regs[RegSP] != 0 {
				m.raise(ExcStackOvf, pc)
				break
			}
			m.pc = pc + WordSize
		case OpCmpwi:
			m.cr[(in.RD>>2)&7] = compare(int32(m.regs[in.RA&31]), in.Imm)
			m.pc = pc + WordSize
		case OpCmpw:
			m.cr[(in.RD>>2)&7] = compare(int32(m.regs[in.RA&31]), int32(m.regs[in.RB&31]))
			m.pc = pc + WordSize
		case OpBc:
			if m.cr[in.RA&7].holds(Cond(in.RD)) {
				m.pc = pc + uint32(in.Imm)
			} else {
				m.pc = pc + WordSize
			}
		case OpB:
			m.pc = pc + uint32(in.Off26)
		case OpBl:
			m.lr = pc + WordSize
			m.pc = pc + uint32(in.Off26)
		case OpBlr:
			m.pc = m.lr
		case OpMflr:
			m.regs[in.RD&31] = m.lr
			m.regs[0] = 0
			if in.RD == RegSP && m.regs[RegSP] < m.stackLim && m.regs[RegSP] != 0 {
				m.raise(ExcStackOvf, pc)
				break
			}
			m.pc = pc + WordSize
		case OpMtlr:
			m.lr = m.regs[in.RD&31]
			m.pc = pc + WordSize
		case OpNop:
			m.pc = pc + WordSize
		default:
			m.execute(pc, in)
		}
	}
	if m.quotaHit {
		m.quotaHit = false
		return m.state, fmt.Errorf("%w after %d cycles (quota %d, watchdog %d)",
			ErrCycleQuota, m.cycles, m.cycleQuota, m.maxCycles)
	}
	return m.state, nil
}

// step fetches, decodes and executes one instruction.
func (m *Machine) step() {
	// Watchpoints fire before the cycle is counted and before the watchdog,
	// so a snapshot taken in the hook records cycles == completed
	// instructions and a resumed machine executes the watched instruction
	// exactly once.
	if m.watchAny {
		m.checkWatch()
	}
	if m.cycles >= m.runLimit {
		m.limitExpire()
		return
	}
	m.cycles++

	pc := m.pc
	if pc&(WordSize-1) != 0 {
		m.raise(ExcAlign, pc)
		return
	}
	// Unsigned wrap makes a single bounds check cover both ends of text.
	idx := (pc - m.textBase) / WordSize
	if idx >= uint32(len(m.decoded)) {
		m.raise(ExcProt, pc)
		return
	}

	if m.iabrAny && m.iabrHook != nil {
		for i := 0; i < NumIABR; i++ {
			if m.iabrSet[i] && m.iabr[i] == pc {
				m.iabrHook(m, pc)
			}
		}
	}

	if m.trace != nil {
		m.trace.add(TraceEntry{PC: pc, Word: m.getWordRaw(pc)})
	}

	if m.fetchHook != nil {
		word := m.getWordRaw(pc)
		if corrupted := m.fetchHook(pc, word); corrupted != word {
			if m.trace != nil {
				m.trace.add(TraceEntry{PC: pc, Word: corrupted})
			}
			in, err := Decode(corrupted)
			if err != nil {
				m.raise(ExcIllegal, pc)
				return
			}
			m.execute(pc, in)
			return
		}
	}
	if !m.decodedOK[idx] {
		m.raise(ExcIllegal, pc)
		return
	}
	m.execute(pc, m.decoded[idx])
}

// ExecuteInjected executes a single already-decoded instruction word at the
// current PC on behalf of a trap handler (intrusive trigger mode): the trap
// displaced the original instruction, and the injector supplies the word —
// possibly corrupted — to run in its place. The PC advance/branch semantics
// are identical to normal execution.
func (m *Machine) ExecuteInjected(word uint32) error {
	in, err := Decode(word)
	if err != nil {
		m.raise(ExcIllegal, m.pc)
		return nil
	}
	m.execute(m.pc, in)
	return nil
}

// execute runs one decoded instruction located at pc.
func (m *Machine) execute(pc uint32, in Inst) {
	next := pc + WordSize
	switch in.Op {
	case OpAddi:
		m.SetReg(in.RD, m.Reg(in.RA)+uint32(in.Imm))
	case OpAddis:
		m.SetReg(in.RD, m.Reg(in.RA)+uint32(in.Imm)<<16)
	case OpMulli:
		m.SetReg(in.RD, uint32(int32(m.Reg(in.RA))*in.Imm))
	case OpAndi:
		m.SetReg(in.RD, m.Reg(in.RA)&uint32(uint16(in.Imm)))
	case OpOri:
		m.SetReg(in.RD, m.Reg(in.RA)|uint32(uint16(in.Imm)))
	case OpXori:
		m.SetReg(in.RD, m.Reg(in.RA)^uint32(uint16(in.Imm)))
	case OpLwz:
		v, ok := m.loadWord(m.Reg(in.RA) + uint32(in.Imm))
		if !ok {
			return
		}
		m.SetReg(in.RD, v)
	case OpStw:
		if !m.storeWord(m.Reg(in.RA)+uint32(in.Imm), m.Reg(in.RD)) {
			return
		}
	case OpLbz:
		v, ok := m.loadByte(m.Reg(in.RA) + uint32(in.Imm))
		if !ok {
			return
		}
		m.SetReg(in.RD, v)
	case OpStb:
		if !m.storeByte(m.Reg(in.RA)+uint32(in.Imm), m.Reg(in.RD)) {
			return
		}
	case OpCmpwi:
		m.cr[(in.RD>>2)&7] = compare(int32(m.Reg(in.RA)), in.Imm)
	case OpAdd:
		m.SetReg(in.RD, m.Reg(in.RA)+m.Reg(in.RB))
	case OpSubf:
		m.SetReg(in.RD, m.Reg(in.RB)-m.Reg(in.RA))
	case OpMullw:
		m.SetReg(in.RD, uint32(int32(m.Reg(in.RA))*int32(m.Reg(in.RB))))
	case OpDivw:
		d := int32(m.Reg(in.RB))
		if d == 0 {
			m.raise(ExcDivZero, pc)
			return
		}
		m.SetReg(in.RD, uint32(int32(m.Reg(in.RA))/d))
	case OpMod:
		d := int32(m.Reg(in.RB))
		if d == 0 {
			m.raise(ExcDivZero, pc)
			return
		}
		m.SetReg(in.RD, uint32(int32(m.Reg(in.RA))%d))
	case OpAnd:
		m.SetReg(in.RD, m.Reg(in.RA)&m.Reg(in.RB))
	case OpOr:
		m.SetReg(in.RD, m.Reg(in.RA)|m.Reg(in.RB))
	case OpXor:
		m.SetReg(in.RD, m.Reg(in.RA)^m.Reg(in.RB))
	case OpSlw:
		m.SetReg(in.RD, m.Reg(in.RA)<<(m.Reg(in.RB)&31))
	case OpSrw:
		m.SetReg(in.RD, m.Reg(in.RA)>>(m.Reg(in.RB)&31))
	case OpSraw:
		m.SetReg(in.RD, uint32(int32(m.Reg(in.RA))>>(m.Reg(in.RB)&31)))
	case OpNeg:
		m.SetReg(in.RD, uint32(-int32(m.Reg(in.RA))))
	case OpCmpw:
		m.cr[(in.RD>>2)&7] = compare(int32(m.Reg(in.RA)), int32(m.Reg(in.RB)))
	case OpLwzx:
		v, ok := m.loadWord(m.Reg(in.RA) + m.Reg(in.RB))
		if !ok {
			return
		}
		m.SetReg(in.RD, v)
	case OpStwx:
		if !m.storeWord(m.Reg(in.RA)+m.Reg(in.RB), m.Reg(in.RD)) {
			return
		}
	case OpLbzx:
		v, ok := m.loadByte(m.Reg(in.RA) + m.Reg(in.RB))
		if !ok {
			return
		}
		m.SetReg(in.RD, v)
	case OpStbx:
		if !m.storeByte(m.Reg(in.RA)+m.Reg(in.RB), m.Reg(in.RD)) {
			return
		}
	case OpB:
		next = pc + uint32(in.Off26)
	case OpBl:
		m.lr = pc + WordSize
		next = pc + uint32(in.Off26)
	case OpBc:
		if m.cr[in.RA&7].holds(Cond(in.RD)) {
			next = pc + uint32(in.Imm)
		}
	case OpBlr:
		next = m.lr
	case OpMflr:
		m.SetReg(in.RD, m.lr)
	case OpMtlr:
		m.lr = m.Reg(in.RD)
	case OpSc:
		if !m.syscall() {
			return
		}
	case OpTrap:
		if m.trapHook == nil {
			m.raise(ExcTrap, pc)
			return
		}
		// The trap handler emulates the displaced instruction itself and is
		// responsible for PC semantics; if it leaves the PC at the trap, we
		// would re-trap forever, so the handler contract is to call
		// ExecuteInjected (which advances or branches).
		if err := m.trapHook(m, pc); err != nil {
			m.raise(ExcTrap, pc)
		}
		return
	case OpNop:
		// nothing
	default:
		m.raise(ExcIllegal, pc)
		return
	}
	if m.state != StateRunning && m.state != StateReady {
		return
	}
	// Stack overflow check: trip when SP dives below the heap guard. It
	// must run after every instruction, not only those with RD == SP: an
	// injector hook (CorruptRegister) can move SP from outside execute,
	// and the trap at the next instruction is part of the observable
	// failure-mode timing.
	if m.regs[RegSP] < m.stackLim && m.regs[RegSP] != 0 {
		m.raise(ExcStackOvf, pc)
		return
	}
	m.pc = next
}

// syscall dispatches OpSc. Returns false when the run should stop (exit or
// exception).
func (m *Machine) syscall() bool {
	switch m.Reg(RegSys) {
	case SysExit:
		m.exitStatus = int32(m.Reg(RegRet))
		m.state = StateHalted
		return false
	case SysReadInt:
		if m.inPos < len(m.input) {
			m.SetReg(RegRet, uint32(m.input[m.inPos]))
			m.SetReg(4, 0)
			m.inPos++
		} else {
			m.SetReg(RegRet, 0)
			m.SetReg(4, 1)
		}
	case SysWriteInt:
		m.output = strconv.AppendInt(m.output, int64(int32(m.Reg(RegRet))), 10)
		m.output = append(m.output, '\n')
	case SysWriteChar:
		m.output = append(m.output, byte(m.Reg(RegRet)))
	case SysReadChar:
		if m.inBPos < len(m.inBytes) {
			m.SetReg(RegRet, uint32(m.inBytes[m.inBPos]))
			m.inBPos++
		} else {
			m.SetReg(RegRet, ^uint32(0))
		}
	case SysBrk:
		old := m.brk
		sz := m.Reg(RegRet)
		nb := m.brk + ((sz + WordSize - 1) &^ (WordSize - 1))
		if nb < m.brk || nb > m.stackLim {
			m.raise(ExcProt, m.pc)
			return false
		}
		m.brk = nb
		m.SetReg(RegRet, old)
	default:
		m.raise(ExcBadSys, m.pc)
		return false
	}
	return true
}
