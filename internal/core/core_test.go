package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// tiny returns an engine small enough for unit tests.
func tiny() *core.Engine {
	e := core.New(0.01)
	return e
}

func TestExperimentIDsAllDispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("runs scaled campaigns")
	}
	e := tiny()
	for _, id := range core.ExperimentIDs() {
		if id == "table1" {
			continue // exercised separately; the intensive floor is slow
		}
		out, err := e.Experiment(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(out) < 40 {
			t.Errorf("%s output suspiciously short:\n%s", id, out)
		}
	}
}

func TestExperimentUnknown(t *testing.T) {
	if _, err := tiny().Experiment("table99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestStaticExperiments(t *testing.T) {
	e := tiny()
	for id, want := range map[string]string{
		"table2":    "C.team9",
		"table3":    "value+1",
		"fielddist": "algorithm",
		"summary5":  "not emulable",
	} {
		out, err := e.Experiment(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(out, want) {
			t.Errorf("%s missing %q:\n%s", id, want, out)
		}
	}
}

func TestVerifyRealFault(t *testing.T) {
	e := tiny()
	out, err := e.VerifyRealFault("C.team4", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "equivalence: 3/3") {
		t.Errorf("C.team4 emulation not equivalent:\n%s", out)
	}
	out, err = e.VerifyRealFault("JB.team7", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "category C") {
		t.Errorf("JB.team7 should be non-emulable:\n%s", out)
	}
	if _, err := e.VerifyRealFault("nope", 1); err == nil {
		t.Error("unknown program accepted")
	}
}

func TestMetricsReport(t *testing.T) {
	out, err := tiny().Experiment("metrics")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"C.team1", "SOR", "Cyclomatic", "main"} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics report missing %q", want)
		}
	}
}

func TestCampaignResultCached(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a scaled campaign")
	}
	e := core.New(0.01)
	a, err := e.CampaignResult()
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.CampaignResult()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("campaign result not cached")
	}
}
