package worker

import (
	"bytes"
	"encoding/binary"
	"errors"
	"runtime"
	"testing"
)

// FuzzReadFrame feeds arbitrary byte streams to the frame reader. Whatever
// a dying or hostile peer sends — truncated frames, corrupt length
// prefixes, garbage types — ReadFrame must fail cleanly or return a payload
// that re-encodes to exactly the bytes it consumed; it must never panic and
// never hand back more bytes than arrived.
func FuzzReadFrame(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteFrame(&valid, msgHello, []byte("spec payload")); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:3]) // torn header
	f.Add(valid.Bytes()[:6]) // torn body
	f.Add([]byte{})          // clean EOF
	f.Add(make([]byte, 4))   // zero-length claim
	lying := make([]byte, 8) // prefix claims more than MaxFrame
	binary.LittleEndian.PutUint32(lying, MaxFrame+1)
	f.Add(lying)
	big := make([]byte, 4, 4+readChunk+64) // body spanning multiple chunks
	binary.LittleEndian.PutUint32(big, uint32(readChunk+64))
	big = append(big, make([]byte, readChunk+64)...)
	f.Add(big)

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if 5+len(payload) > len(data) {
			t.Fatalf("ReadFrame returned %d payload bytes from a %d-byte stream", len(payload), len(data))
		}
		var re bytes.Buffer
		if werr := WriteFrame(&re, typ, payload); werr != nil {
			t.Fatalf("accepted frame does not re-encode: %v", werr)
		}
		if !bytes.Equal(re.Bytes(), data[:re.Len()]) {
			t.Fatalf("re-encoded frame differs from the consumed prefix")
		}
	})
}

// FuzzReadFrameCRC feeds arbitrary byte streams to the CRC frame reader —
// the framing the fabric speaks over TCP, where chaos (or reality) flips
// bytes. Beyond ReadFrame's obligations, any frame it accepts must carry a
// checksum that matches its bytes: the corpus seeds corrupt-CRC frames
// (one bit flipped anywhere), truncated bodies, and replayed/concatenated
// frames, and the property re-encodes accepted frames to prove the reader
// consumed exactly one intact frame.
func FuzzReadFrameCRC(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteFrameCRC(&valid, msgVerdict, []byte("verdict payload")); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	// Corrupt-CRC corpus: every byte position of a valid frame flipped.
	for i := 4; i < valid.Len(); i++ {
		bad := append([]byte(nil), valid.Bytes()...)
		bad[i] ^= 0x40
		f.Add(bad)
	}
	f.Add(valid.Bytes()[:3])                       // torn header
	f.Add(valid.Bytes()[:7])                       // truncated body
	f.Add(valid.Bytes()[:valid.Len()-2])           // truncated checksum
	f.Add(append(valid.Bytes(), valid.Bytes()...)) // replayed frame
	short := make([]byte, 4+3)                     // body shorter than a checksum
	binary.LittleEndian.PutUint32(short, 3)
	f.Add(short)
	// Federation-plane frames (the fabric's telemetry snapshot and trace
	// types, 11 and 12) ride this framing too; their payload layouts are
	// hand-rolled here because the fabric package sits above this one.
	snap := binary.LittleEndian.AppendUint64(nil, 1722000000000000) // sent-us
	snap = binary.LittleEndian.AppendUint32(snap, 1)                // entry count
	snap = binary.LittleEndian.AppendUint16(snap, 5)                // name length
	snap = append(snap, "units"...)
	snap = binary.LittleEndian.AppendUint64(snap, 42) // value
	var fedSnap bytes.Buffer
	if err := WriteFrameCRC(&fedSnap, 11, snap); err != nil {
		f.Fatal(err)
	}
	f.Add(fedSnap.Bytes())
	ev := binary.LittleEndian.AppendUint64(nil, 1722000000000000) // sent-us
	ev = binary.LittleEndian.AppendUint32(ev, 1)                  // event count
	ev = binary.LittleEndian.AppendUint64(ev, 1722000000000001)   // t-us
	ev = binary.LittleEndian.AppendUint64(ev, 99)                 // dur-us
	ev = binary.LittleEndian.AppendUint32(ev, 5)                  // unit
	ev = binary.LittleEndian.AppendUint32(ev, 2)                  // case
	ev = binary.LittleEndian.AppendUint32(ev, 1)                  // worker
	for _, s := range []string{"executed", "tritype", "MFC-1", "crash", ""} {
		ev = binary.LittleEndian.AppendUint16(ev, uint16(len(s)))
		ev = append(ev, s...)
	}
	var fedTrace bytes.Buffer
	if err := WriteFrameCRC(&fedTrace, 12, ev); err != nil {
		f.Fatal(err)
	}
	f.Add(fedTrace.Bytes())
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrameCRC(bytes.NewReader(data))
		if err != nil {
			return
		}
		if 9+len(payload) > len(data) {
			t.Fatalf("ReadFrameCRC returned %d payload bytes from a %d-byte stream", len(payload), len(data))
		}
		var re bytes.Buffer
		if werr := WriteFrameCRC(&re, typ, payload); werr != nil {
			t.Fatalf("accepted frame does not re-encode: %v", werr)
		}
		if !bytes.Equal(re.Bytes(), data[:re.Len()]) {
			t.Fatalf("re-encoded frame differs from the consumed prefix")
		}
	})
}

// TestReadFrameCRCRejectsEveryBitFlip is the deterministic core of the
// poisoned-frame story: flipping any single bit anywhere in a CRC frame's
// type, payload or checksum must be detected. (Length-prefix flips are
// covered separately: they change how many bytes are consumed, so they
// surface as torn frames or checksum mismatches depending on direction.)
func TestReadFrameCRCRejectsEveryBitFlip(t *testing.T) {
	var valid bytes.Buffer
	if err := WriteFrameCRC(&valid, msgExec, []byte("unit 12345")); err != nil {
		t.Fatal(err)
	}
	for i := 4; i < valid.Len(); i++ {
		for bit := 0; bit < 8; bit++ {
			bad := append([]byte(nil), valid.Bytes()...)
			bad[i] ^= 1 << bit
			_, _, err := ReadFrameCRC(bytes.NewReader(bad))
			if err == nil {
				t.Fatalf("flip of byte %d bit %d went undetected", i, bit)
			}
		}
	}
	// And the pristine frame still reads.
	typ, payload, err := ReadFrameCRC(bytes.NewReader(valid.Bytes()))
	if err != nil || typ != msgExec || string(payload) != "unit 12345" {
		t.Fatalf("pristine CRC frame: typ=%d payload=%q err=%v", typ, payload, err)
	}
}

// TestReadFrameCRCErrorIdentity: corrupt frames must be distinguishable
// from torn ones — the fabric reconnects on ErrFrameCRC and counts it.
func TestReadFrameCRCErrorIdentity(t *testing.T) {
	var valid bytes.Buffer
	if err := WriteFrameCRC(&valid, msgReady, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), valid.Bytes()...)
	bad[6] ^= 0x01
	_, _, err := ReadFrameCRC(bytes.NewReader(bad))
	if !errors.Is(err, ErrFrameCRC) {
		t.Fatalf("corrupt frame error = %v, want ErrFrameCRC", err)
	}
	if _, _, err := ReadFrameCRC(bytes.NewReader(valid.Bytes()[:5])); errors.Is(err, ErrFrameCRC) {
		t.Fatal("torn frame misreported as a checksum mismatch")
	}
}

// TestReadFrameAllocationBound pins the chunked-allocation property the
// fuzz target cannot observe directly: a length prefix claiming MaxFrame on
// a connection that then dies costs at most a chunk or so of memory, not
// the 16MB the prefix promised.
func TestReadFrameAllocationBound(t *testing.T) {
	torn := make([]byte, 4, 4+readChunk/2)
	binary.LittleEndian.PutUint32(torn, MaxFrame)
	torn = append(torn, make([]byte, readChunk/2)...)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if _, _, err := ReadFrame(bytes.NewReader(torn)); err == nil {
		t.Fatal("torn frame read succeeded")
	}
	runtime.ReadMemStats(&after)
	if got := after.TotalAlloc - before.TotalAlloc; got > 4*readChunk {
		t.Fatalf("torn MaxFrame claim allocated %d bytes, want at most %d", got, 4*readChunk)
	}
}
