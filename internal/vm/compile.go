package vm

// Block compilation: decode.go's cached instruction stream is lowered, one
// basic block at a time and lazily at actual entry points, into the micro-op
// form block.go executes. Blocks may overlap — a branch landing mid-block
// simply compiles its own block starting there — which keeps compilation a
// pure function of the decoded cache with no control-flow discovery pass.
//
// Superinstruction selection is driven by the dynamic opcode n-gram profile
// of the paper's seven target programs (array/loop code throughout): the
// compare+branch pair that ends nearly every loop body, the load+add-
// immediate pair of induction-variable updates, the addis+ori 32-bit
// constant materialisation, the mulli+add address computation of array
// indexing and its load-element extensions, and add+store. Fusion is purely
// peephole and only applies when it cannot change semantics: components are
// executed strictly in order inside the micro-op, any component that can
// fault carries its exact PC and cycle cost, and sequences that write the
// stack pointer (which would need the interpreter's guard between
// components) are left unfused.

// compileBlock compiles (and caches) the block entered at text word idx.
func (m *Machine) compileBlock(idx uint32) *block {
	b := m.buildBlock(idx)
	m.blocks[idx] = b
	return b
}

// fuseDest reports whether a fused pattern may write register r with no check
// between components: not the stack pointer (which would need the guard) and
// not r0 (whose writes the compiler elides instead of re-zeroing, so the
// executor's fused bodies never see an r0 destination).
func fuseDest(r uint8) bool { return r != RegSP && r != RegZero }

// Block terminal kinds found by the scanner.
const (
	termFall   = iota // fell off the cap, the text end, or stopped before a trap
	termBranch        // consumed a control-transfer instruction (b/bl/blr/bc/sc)
	termIll           // consumed an undecodable word (raises ExcIllegal)
)

// buildBlock scans the straight-line instruction run starting at text word
// start and lowers it to micro-ops.
func (m *Machine) buildBlock(start uint32) *block {
	decoded := m.decoded
	end := uint32(len(decoded))
	base := m.textBase

	if decoded[start].Op == OpTrap {
		// The trap-hook protocol (displaced-instruction emulation) belongs to
		// the interpreter; the dispatcher steps this block.
		return &block{interp: true, n: 1}
	}

	insts := make([]Inst, 0, 16)
	idx := start
	kind := termFall
scan:
	for uint32(len(insts)) < maxBlockInsts && idx < end {
		in := decoded[idx]
		switch in.Op {
		case OpTrap:
			// End before the trap; it starts its own (interpreted) block.
			break scan
		case OpB, OpBl, OpBlr, OpBc, OpSc:
			insts = append(insts, in)
			idx++
			kind = termBranch
			break scan
		case OpIllegal:
			insts = append(insts, in)
			idx++
			kind = termIll
			break scan
		default:
			insts = append(insts, in)
			idx++
		}
	}

	n := uint32(len(insts))
	b := &block{ops: make([]uop, 0, len(insts)+1), n: n}
	pcAt := func(i int) uint32 { return base + (start+uint32(i))*WordSize }

	for i := 0; i < len(insts); i++ {
		rem := len(insts) - i
		in := insts[i]

		// Superinstructions, longest first. Control-transfer opcodes only
		// appear as the final instruction, so multi-instruction patterns can
		// never swallow a terminal by accident; patterns ending in OpBc are
		// terminal by construction.
		if rem >= 4 && in.Op == OpLwz && fuseDest(in.RD) &&
			insts[i+1].Op == OpAddi && fuseDest(insts[i+1].RD) &&
			insts[i+2].Op == OpCmpw && insts[i+3].Op == OpBc {
			lw, ad, cm, bc := in, insts[i+1], insts[i+2], insts[i+3]
			b.ops = append(b.ops, uop{
				code: uLwzAddiCmpwBc, pc: pcAt(i), cyc: uint8(i + 4),
				d: lw.RD, a: lw.RA, imm: lw.Imm,
				d2: ad.RD, a2: ad.RA, imm2: ad.Imm,
				d3: (cm.RD >> 2) & 7, a3: cm.RA, b3: cm.RB,
				b: bc.RA & 7, cond: condEnc(Cond(bc.RD)),
				imm3: int32(pcAt(i+3) + uint32(bc.Imm)),
			})
			i += 3
			continue
		}
		if rem >= 3 && in.Op == OpLwz && fuseDest(in.RD) &&
			insts[i+1].Op == OpMulli && fuseDest(insts[i+1].RD) &&
			insts[i+2].Op == OpAdd && fuseDest(insts[i+2].RD) {
			lw, mu, ad := in, insts[i+1], insts[i+2]
			b.ops = append(b.ops, uop{
				code: uLwzMulliAdd, pc: pcAt(i), cyc: uint8(i + 1),
				d: lw.RD, a: lw.RA, imm: lw.Imm,
				d2: mu.RD, a2: mu.RA, imm2: mu.Imm,
				d3: ad.RD, a3: ad.RA, b3: ad.RB,
			})
			i += 2
			continue
		}
		if rem >= 2 {
			nx := insts[i+1]
			fused := true
			switch {
			case in.Op == OpCmpwi && nx.Op == OpBc:
				b.ops = append(b.ops, uop{
					code: uCmpwiBc, pc: pcAt(i), cyc: uint8(i + 2),
					d: (in.RD >> 2) & 7, a: in.RA, imm: in.Imm,
					a2: nx.RA & 7, cond: condEnc(Cond(nx.RD)),
					imm2: int32(pcAt(i+1) + uint32(nx.Imm)),
				})
			case in.Op == OpCmpw && nx.Op == OpBc:
				b.ops = append(b.ops, uop{
					code: uCmpwBc, pc: pcAt(i), cyc: uint8(i + 2),
					d: (in.RD >> 2) & 7, a: in.RA, b: in.RB,
					a2: nx.RA & 7, cond: condEnc(Cond(nx.RD)),
					imm2: int32(pcAt(i+1) + uint32(nx.Imm)),
				})
			case in.Op == OpLwz && fuseDest(in.RD) && nx.Op == OpAddi && fuseDest(nx.RD):
				b.ops = append(b.ops, uop{
					code: uLwzAddi, pc: pcAt(i), cyc: uint8(i + 1),
					d: in.RD, a: in.RA, imm: in.Imm,
					d2: nx.RD, a2: nx.RA, imm2: nx.Imm,
				})
			case in.Op == OpAddis && fuseDest(in.RD) && nx.Op == OpOri && fuseDest(nx.RD):
				b.ops = append(b.ops, uop{
					code: uAddisOri, pc: pcAt(i), cyc: uint8(i + 1),
					d: in.RD, a: in.RA, imm: int32(uint32(in.Imm) << 16),
					d2: nx.RD, a2: nx.RA, imm2: nx.Imm,
				})
			case in.Op == OpMulli && fuseDest(in.RD) && nx.Op == OpAdd && fuseDest(nx.RD):
				b.ops = append(b.ops, uop{
					code: uMulliAdd, pc: pcAt(i), cyc: uint8(i + 1),
					d: in.RD, a: in.RA, imm: in.Imm,
					d2: nx.RD, a2: nx.RA, b2: nx.RB,
				})
			case in.Op == OpAdd && fuseDest(in.RD) && nx.Op == OpLwz && fuseDest(nx.RD):
				b.ops = append(b.ops, uop{
					code: uAddLwz, pc: pcAt(i), cyc: uint8(i + 2),
					d: in.RD, a: in.RA, b: in.RB,
					d2: nx.RD, a2: nx.RA, imm2: nx.Imm,
				})
			case in.Op == OpAdd && fuseDest(in.RD) && nx.Op == OpStw:
				b.ops = append(b.ops, uop{
					code: uAddStw, pc: pcAt(i), cyc: uint8(i + 2),
					d: in.RD, a: in.RA, b: in.RB,
					d2: nx.RD, a2: nx.RA, imm2: nx.Imm,
				})
			default:
				fused = false
			}
			if fused {
				i++
				continue
			}
		}

		m.emitSingle(b, in, pcAt(i), i, int(n))
	}

	if kind == termFall {
		// No control transfer: hand the next address back to the dispatcher.
		b.ops = append(b.ops, uop{code: uEnd, pc: base + idx*WordSize, cyc: uint8(n)})
	}

	// A conditional branch back to this block's own entry is a self-loop:
	// mark it so the executor can re-enter the trace without a dispatch.
	if len(b.ops) > 0 {
		u := &b.ops[len(b.ops)-1]
		entry := base + start*WordSize
		switch u.code {
		case uBc:
			if uint32(u.imm) == entry {
				u.flags |= flagBackedge
			}
		case uCmpwiBc, uCmpwBc:
			if uint32(u.imm2) == entry {
				u.flags |= flagBackedge
			}
		case uLwzAddiCmpwBc:
			if uint32(u.imm3) == entry {
				u.flags |= flagBackedge
			}
		}
	}

	// Second-slot pair fusion (see pairTab): rewrite the first code of each
	// hot adjacent pair to the pair's code; the second micro-op stays in
	// place as the pair's operand slot and is skipped at dispatch. Purely a
	// dispatch-count optimisation — both components keep their own PC and
	// cycle fields, so fault behaviour is unchanged.
	for i := 0; i+1 < len(b.ops); i++ {
		if f := pairTab[b.ops[i].code][b.ops[i+1].code]; f != uNone {
			b.ops[i].code = f
			i++
		}
	}
	return b
}

// emitSingle lowers one instruction to its micro-op, followed by a stack
// guard when it writes SP (the compile-time equivalent of the interpreter's
// per-instruction check; memory loads carry their own guard in the checked
// tail). i is the instruction's index in the block, n the block's total
// instruction count.
func (m *Machine) emitSingle(b *block, in Inst, pc uint32, i, n int) {
	u := uop{pc: pc, d: in.RD, a: in.RA, imm: in.Imm, cyc: uint8(i + 1)}
	guard := false
	switch in.Op {
	case OpAddi:
		u.code, guard = uAddi, in.RD == RegSP
	case OpAddis:
		u.code, guard = uAddis, in.RD == RegSP
		u.imm = int32(uint32(in.Imm) << 16)
	case OpMulli:
		u.code, guard = uMulli, in.RD == RegSP
	case OpAndi:
		u.code, guard = uAndi, in.RD == RegSP
	case OpOri:
		u.code, guard = uOri, in.RD == RegSP
	case OpXori:
		u.code, guard = uXori, in.RD == RegSP
	case OpAdd, OpSubf, OpMullw, OpDivw, OpMod, OpAnd, OpOr, OpXor, OpSlw, OpSrw, OpSraw:
		u.b = in.RB
		guard = in.RD == RegSP
		switch in.Op {
		case OpAdd:
			u.code = uAdd
		case OpSubf:
			u.code = uSubf
		case OpMullw:
			u.code = uMullw
		case OpDivw:
			u.code = uDivw
		case OpMod:
			u.code = uMod
		case OpAnd:
			u.code = uAnd
		case OpOr:
			u.code = uOr
		case OpXor:
			u.code = uXor
		case OpSlw:
			u.code = uSlw
		case OpSrw:
			u.code = uSrw
		case OpSraw:
			u.code = uSraw
		}
	case OpNeg:
		u.code, guard = uNeg, in.RD == RegSP
	case OpCmpwi:
		u.code = uCmpwi
		u.d = (in.RD >> 2) & 7
	case OpCmpw:
		u.code = uCmpw
		u.d = (in.RD >> 2) & 7
		u.b = in.RB
	case OpMflr:
		u.code, guard = uMflr, in.RD == RegSP
	case OpMtlr:
		u.code = uMtlr
	case OpLwz:
		u.code = uLwz
		if in.RD == RegSP || in.RD == RegZero {
			u.code = uLwzSP
		}
	case OpStw:
		u.code = uStw
	case OpLbz:
		u.code = uLbz
		if in.RD == RegSP || in.RD == RegZero {
			u.code = uLbzSP
		}
	case OpStb:
		u.code = uStb
	case OpLwzx:
		u.b = in.RB
		u.code = uLwzx
		if in.RD == RegSP || in.RD == RegZero {
			u.code = uLwzxSP
		}
	case OpStwx:
		u.b = in.RB
		u.code = uStwx
	case OpLbzx:
		u.b = in.RB
		u.code = uLbzx
		if in.RD == RegSP || in.RD == RegZero {
			u.code = uLbzxSP
		}
	case OpStbx:
		u.b = in.RB
		u.code = uStbx
	case OpNop:
		// A nop has no effect the block does not already account for: its
		// cycle is in n and the block-level PC advance covers it.
		return
	case OpB:
		u.code, u.cyc = uB, uint8(n)
		u.imm = int32(pc + uint32(in.Off26))
	case OpBl:
		u.code, u.cyc = uBl, uint8(n)
		u.imm = int32(pc + uint32(in.Off26))
	case OpBlr:
		u.code, u.cyc = uBlr, uint8(n)
	case OpBc:
		u.code, u.cyc = uBc, uint8(n)
		u.a = in.RA & 7
		u.cond = condEnc(Cond(in.RD))
		u.imm = int32(pc + uint32(in.Imm))
		u.imm2 = int32(pc + WordSize)
	case OpSc:
		u.code, u.cyc = uSc, uint8(n)
	default:
		// OpIllegal (an undecodable or zeroed word) and any unknown opcode
		// raise exactly like the interpreter's execute default.
		u.code, u.cyc = uRaiseIll, uint8(n)
	}
	// r0 is hardwired to zero, so an instruction whose only effect is writing
	// r0 is architecturally a nop: emit nothing (its cycle is covered by the
	// block count, like OpNop). The executor's register-writing case bodies
	// rely on this — they skip the interpreter's r0 re-zero. Faultable
	// micro-ops (division, loads, syscalls) are excluded: uDivw/uMod keep the
	// re-zero in their bodies and r0-destination loads run the checked helper.
	if in.RD == RegZero {
		switch u.code {
		case uAddi, uAddis, uMulli, uAndi, uOri, uXori, uAdd, uSubf, uMullw,
			uAnd, uOr, uXor, uSlw, uSrw, uSraw, uNeg, uMflr:
			return
		}
	}
	b.ops = append(b.ops, u)
	if guard {
		b.ops = append(b.ops, uop{code: uGuardSP, pc: pc, cyc: uint8(i + 1)})
	}
}
