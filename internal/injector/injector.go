// Package injector is the Xception-equivalent SWIFI engine: it arms fault
// triggers on a virtual machine and applies the corruptions of a fault
// definition while a target program runs, without modifying the target
// application source.
//
// Two trigger mechanisms are provided, mirroring the trade-off discussed in
// §5 of the paper:
//
//   - ModeHardware uses the processor's instruction-address breakpoint
//     registers. It is non-intrusive but the PowerPC 601 has only two, so a
//     fault needing more than two distinct trigger addresses (the Figure 4
//     stack-shift emulation) cannot be armed: Arm returns
//     ErrOutOfBreakpoints, reproducing the limitation the paper reports.
//   - ModeTrap plants trap instructions over the trigger locations — "the
//     traditional SWIFI approach of inserting trap instructions ... but this
//     technique is very intrusive". It has no budget limit; the displaced
//     instructions are emulated by the trap handler.
package injector

import (
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/vm"
)

// Mode selects the trigger mechanism.
type Mode int

// Trigger modes.
const (
	ModeHardware Mode = iota + 1 // IABR-backed, max vm.NumIABR distinct addresses
	ModeTrap                     // trap-instruction insertion, unlimited, intrusive
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeHardware:
		return "hardware breakpoints"
	case ModeTrap:
		return "trap insertion"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ErrOutOfBreakpoints is returned by Arm when a fault needs more distinct
// hardware trigger addresses than the processor has breakpoint registers.
var ErrOutOfBreakpoints = errors.New("injector: fault needs more trigger addresses than available breakpoint registers")

// Session is one armed fault on one machine. Create a fresh machine and
// session per injection run (the campaigns "reboot between injections").
type Session struct {
	m    *vm.Machine
	mode Mode
	f    *fault.Fault

	activations uint64

	// Location-triggered corruption tables, keyed by instruction address.
	fetchRepl  map[uint32]uint32
	textWrites map[uint32]uint32
	storeOps   map[uint32][]fault.Corruption
	loadShift  map[uint32]int32
	regOps     map[uint32][]fault.Corruption

	// Trap mode: displaced original words.
	origWords map[uint32]uint32
	// seen counts executions of each trigger address, implementing the
	// When axis (Trigger.Skip / Trigger.Once).
	seen map[uint32]uint64
}

// Arm validates the fault and installs its triggers on m. The machine must
// already have the target program loaded.
func Arm(m *vm.Machine, mode Mode, f *fault.Fault) (*Session, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	s := &Session{
		m: m, mode: mode, f: f,
		fetchRepl:  make(map[uint32]uint32),
		textWrites: make(map[uint32]uint32),
		storeOps:   make(map[uint32][]fault.Corruption),
		loadShift:  make(map[uint32]int32),
		regOps:     make(map[uint32][]fault.Corruption),
		origWords:  make(map[uint32]uint32),
		seen:       make(map[uint32]uint64),
	}

	if f.Trigger.Kind == fault.TriggerAtStart {
		// Apply permanent corruptions immediately; only CorruptText and
		// CorruptRegister make sense before execution begins.
		for _, c := range f.Corruptions {
			switch c.Kind {
			case fault.CorruptText:
				if err := s.writeText(c.Addr, c.NewWord); err != nil {
					return nil, err
				}
				s.activations++
			case fault.CorruptRegister:
				m.SetReg(c.Reg, c.Op.Apply(m.Reg(c.Reg), c.Operand))
				s.activations++
			default:
				return nil, fmt.Errorf("injector: corruption kind %v cannot fire at start", c.Kind)
			}
		}
		return s, nil
	}

	// Location-triggered: build dispatch tables.
	for _, c := range f.Corruptions {
		switch c.Kind {
		case fault.CorruptText:
			s.textWrites[c.Addr] = c.NewWord
		case fault.CorruptFetch:
			s.fetchRepl[c.Addr] = c.NewWord
		case fault.CorruptStoreData:
			s.storeOps[c.Addr] = append(s.storeOps[c.Addr], c)
		case fault.CorruptLoadAddr:
			s.loadShift[c.Addr] = c.Offset
		case fault.CorruptRegister:
			s.regOps[c.Addr] = append(s.regOps[c.Addr], c)
		}
	}

	addrs := f.TriggerAddrs()
	switch mode {
	case ModeHardware:
		if len(addrs) > vm.NumIABR {
			return nil, fmt.Errorf("%w: need %d, have %d", ErrOutOfBreakpoints, len(addrs), vm.NumIABR)
		}
		for i, a := range addrs {
			if err := m.SetIABR(i, a); err != nil {
				return nil, err
			}
		}
		if len(s.textWrites) > 0 || len(s.regOps) > 0 {
			m.SetIABRHook(s.onBreakpoint)
		}
		// The fetch hook runs on every instruction; install the cheapest
		// variant that covers the fault.
		switch len(s.fetchRepl) {
		case 0:
		case 1:
			var a1, w1 uint32
			for a, w := range s.fetchRepl {
				a1, w1 = a, w
			}
			m.SetFetchHook(func(addr, word uint32) uint32 {
				if addr != a1 || !s.shouldApply(a1) {
					return word
				}
				s.activations++
				return w1
			})
		default:
			m.SetFetchHook(s.onFetch)
		}
	case ModeTrap:
		for _, a := range addrs {
			w, err := m.ReadWord(a)
			if err != nil {
				return nil, fmt.Errorf("injector: trigger address %#x: %w", a, err)
			}
			s.origWords[a] = w
			if err := s.writeText(a, vm.Encode(vm.Inst{Op: vm.OpTrap})); err != nil {
				return nil, err
			}
		}
		m.SetTrapHook(s.onTrap)
	default:
		return nil, fmt.Errorf("injector: unknown mode %d", mode)
	}
	if len(s.loadShift) > 0 {
		m.SetLoadHook(s.onLoad)
	}
	if len(s.storeOps) > 0 {
		m.SetStoreHook(s.onStore)
	}
	return s, nil
}

// Activations reports how many times the fault's corruptions were applied —
// whether the faulty code was exercised at all, which the paper uses to
// separate dormant faults from activated ones.
func (s *Session) Activations() uint64 { return s.activations }

// Fault returns the armed fault definition.
func (s *Session) Fault() *fault.Fault { return s.f }

// Mode returns the session's trigger mechanism.
func (s *Session) Mode() Mode { return s.mode }

func (s *Session) writeText(addr, word uint32) error {
	s.m.SetTextWritable(true)
	defer s.m.SetTextWritable(false)
	return s.m.WriteWord(addr, word)
}

// shouldApply advances the execution counter of the trigger address and
// reports whether the corruption applies this time, honouring the When
// parameters: the first Skip executions stay clean, and with Once set only
// the (Skip+1)-th execution is corrupted.
func (s *Session) shouldApply(addr uint32) bool {
	s.seen[addr]++
	k := s.seen[addr]
	skip := uint64(s.f.Trigger.Skip)
	if k <= skip {
		return false
	}
	if s.f.Trigger.Once && k != skip+1 {
		return false
	}
	return true
}

// onBreakpoint handles IABR hits (hardware mode): permanent text rewrites
// and register corruptions happen here, before the instruction executes.
func (s *Session) onBreakpoint(m *vm.Machine, addr uint32) {
	_, isWrite := s.textWrites[addr]
	if !isWrite && len(s.regOps[addr]) == 0 {
		return
	}
	if !s.shouldApply(addr) {
		return
	}
	if w, ok := s.textWrites[addr]; ok {
		if err := s.writeText(addr, w); err == nil {
			s.activations++
			delete(s.textWrites, addr) // memory now holds the corruption
		}
	}
	for _, c := range s.regOps[addr] {
		m.SetReg(c.Reg, c.Op.Apply(m.Reg(c.Reg), c.Operand))
		s.activations++
	}
}

// onFetch implements transient instruction-bus corruption (hardware mode).
func (s *Session) onFetch(addr, word uint32) uint32 {
	if w, ok := s.fetchRepl[addr]; ok && s.shouldApply(addr) {
		s.activations++
		return w
	}
	return word
}

// onLoad shifts the effective address of corrupted loads. The corruption is
// keyed by the PC of the load instruction; the magnitude of the shift equals
// the element size, so it also selects how many bytes to re-read.
func (s *Session) onLoad(addr, value uint32) uint32 {
	off, ok := s.loadShift[s.m.PC()]
	if !ok || !s.shouldApply(s.m.PC()) {
		return value
	}
	s.activations++
	shifted := addr + uint32(off)
	size := off
	if size < 0 {
		size = -size
	}
	buf, err := s.m.ReadMem(shifted, int(size))
	if err != nil {
		// The shifted access leaves mapped memory: on real hardware this is
		// a machine check / DSI exception.
		s.m.InjectException(vm.ExcProt)
		return value
	}
	var v uint32
	for _, b := range buf {
		v = v<<8 | uint32(b)
	}
	return v
}

// onStore transforms values written by corrupted store instructions.
func (s *Session) onStore(addr, value uint32) uint32 {
	ops, ok := s.storeOps[s.m.PC()]
	if !ok || !s.shouldApply(s.m.PC()) {
		return value
	}
	_ = addr
	for _, c := range ops {
		value = c.Op.Apply(value, c.Operand)
		s.activations++
	}
	return value
}

// onTrap handles trap-mode triggers: it applies corruptions and emulates the
// displaced instruction.
func (s *Session) onTrap(m *vm.Machine, addr uint32) error {
	orig, ok := s.origWords[addr]
	if !ok {
		return fmt.Errorf("injector: stray trap at %#x", addr)
	}
	word := orig
	hasTrigger := false
	if _, ok := s.textWrites[addr]; ok {
		hasTrigger = true
	}
	if _, ok := s.fetchRepl[addr]; ok {
		hasTrigger = true
	}
	if len(s.regOps[addr]) > 0 {
		hasTrigger = true
	}
	if hasTrigger && s.shouldApply(addr) {
		if w, ok := s.textWrites[addr]; ok {
			// Permanent rewrite: replace the trap with the corrupted word
			// and let it execute from memory ever after.
			if err := s.writeText(addr, w); err != nil {
				return err
			}
			s.activations++
			delete(s.origWords, addr)
			return m.ExecuteInjected(w)
		}
		if w, ok := s.fetchRepl[addr]; ok {
			s.activations++
			word = w
		}
		for _, c := range s.regOps[addr] {
			m.SetReg(c.Reg, c.Op.Apply(m.Reg(c.Reg), c.Operand))
			s.activations++
		}
	}
	// Load/store corruptions apply inside ExecuteInjected via the hooks,
	// which key on the PC (still the trap address here).
	return m.ExecuteInjected(word)
}
