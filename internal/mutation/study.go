package mutation

import (
	"fmt"

	"repro/internal/campaign"
	"repro/internal/fault"
	"repro/internal/injector"
	"repro/internal/locator"
	"repro/internal/programs"
	"repro/internal/vm"
	"repro/internal/workload"
)

// StudyResult is the outcome of the mutation-versus-injection comparison.
type StudyResult struct {
	Program    string
	Locations  int // checking locations compared
	Pairs      int // (mutant, injection) pairs
	Runs       int // total paired runs
	Equivalent int // runs where mutant and injection behaved identically
	// PerType counts equivalent/total runs per error type.
	PerType map[fault.ErrType]*PairCount
}

// PairCount is the equivalence tally of one error type.
type PairCount struct {
	Equivalent int
	Total      int
}

// Study compares, for nLocs checking locations of the program, the
// source-level mutant of each operator error type against the machine-level
// injection of the same error type into the unmutated binary. Perfect
// emulation means every paired run is identical — which is exactly what
// the §5 methodology claims for checking faults.
func Study(p *programs.Program, nLocs, nCases int, seed int64) (*StudyResult, error) {
	c, err := p.Compile()
	if err != nil {
		return nil, err
	}
	cases, err := workload.Generate(p.Kind, nCases, seed)
	if err != nil {
		return nil, err
	}
	res := &StudyResult{
		Program: p.Name,
		PerType: make(map[fault.ErrType]*PairCount),
	}
	chosen := locator.ChooseLocations(len(c.Debug.Checks), nLocs, seed)
	for _, li := range chosen {
		ck := c.Debug.Checks[li]
		mutants, err := OperatorMutants(p.Source, ck)
		if err != nil {
			return nil, err
		}
		if len(mutants) == 0 {
			continue
		}
		injections, err := locator.CheckingFaults(c, ck)
		if err != nil {
			return nil, err
		}
		byType := make(map[fault.ErrType]*fault.Fault)
		for i := range injections {
			byType[injections[i].ErrType] = &injections[i]
		}
		res.Locations++
		for mi := range mutants {
			m := &mutants[mi]
			inj, ok := byType[m.ErrType]
			if !ok {
				return nil, fmt.Errorf("mutation: no injection counterpart for %s at %d:%d", m.ErrType, m.Line, m.Col)
			}
			mc, err := m.Compile()
			if err != nil {
				return nil, err
			}
			res.Pairs++
			for ci := range cases {
				mutRun, err := campaign.RunClean(mc, cases[ci].Input, cases[ci].Golden, vm.DefaultMaxCycles)
				if err != nil {
					return nil, err
				}
				injRun, err := campaign.RunWithFault(c, cases[ci].Input, cases[ci].Golden, inj, injector.ModeHardware, vm.DefaultMaxCycles)
				if err != nil {
					return nil, err
				}
				res.Runs++
				pc := res.PerType[m.ErrType]
				if pc == nil {
					pc = &PairCount{}
					res.PerType[m.ErrType] = pc
				}
				pc.Total++
				if mutRun.Mode == injRun.Mode && mutRun.Output == injRun.Output {
					res.Equivalent++
					pc.Equivalent++
				}
			}
		}
	}
	return res, nil
}
