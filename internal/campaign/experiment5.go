package campaign

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cc"
	"repro/internal/fault"
	"repro/internal/injector"
	"repro/internal/locator"
	"repro/internal/odc"
	"repro/internal/parallel"
	"repro/internal/programs"
	"repro/internal/vm"
	"repro/internal/workload"
)

// This file implements the paper's first experiment (§5): for each real
// software fault, attempt to build an equivalent Xception-style injection
// on the corrected binary and verify that the injected runs reproduce the
// faulty program's behaviour exactly.

// Strategy selects one of the two emulation strategies shown in the paper's
// Figures 3 and 5.
type Strategy int

// Emulation strategies.
const (
	// StrategyTextAtStart plants the corruption permanently in instruction
	// memory before the program runs ("opcode fetch from the first program
	// code address ... error inserted in memory", strategy 1).
	StrategyTextAtStart Strategy = iota + 1
	// StrategyFetchEveryExec corrupts the fetched instruction word on every
	// execution, leaving memory intact ("changing the fetched operand every
	// time the instruction is executed", strategy 2).
	StrategyFetchEveryExec
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyTextAtStart:
		return "persistent instruction-memory corruption at start"
	case StrategyFetchEveryExec:
		return "transient fetch-bus corruption on every execution"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// Emulation is the result of analysing one real fault for emulability.
type Emulation struct {
	Program  string
	ODCType  odc.DefectType
	Verdict  odc.EmulationVerdict
	Fault    *fault.Fault // nil when the fault is not emulable
	Triggers int          // distinct trigger addresses the fault needs
	// NeedsTraps is true when the fault exceeds the hardware breakpoint
	// budget and can only be armed in trap mode (the paper's category B).
	NeedsTraps bool
	Evidence   string
}

// lineOf returns the 1-based line number at which fragment starts in src,
// or 0 if absent.
func lineOf(src, fragment string) int {
	i := strings.Index(src, fragment)
	if i < 0 {
		return 0
	}
	return 1 + strings.Count(src[:i], "\n")
}

// BuildEmulation analyses one real-fault program and constructs the
// injected-fault emulation where the paper found one to exist.
func BuildEmulation(p *programs.Program) (*Emulation, error) {
	if p.Fault == nil {
		return nil, fmt.Errorf("campaign: %s has no real fault", p.Name)
	}
	em := &Emulation{
		Program: p.Name,
		ODCType: p.Fault.ODCType,
		Verdict: odc.VerdictFor(p.Fault.ODCType),
	}
	correct, err := p.Compile()
	if err != nil {
		return nil, err
	}
	faulty, err := p.CompileFaulty()
	if err != nil {
		return nil, err
	}

	switch p.Name {
	case "C.team1":
		// Checking fault: ">=" shipped as ">" — a single bc-condition
		// rewrite (Figure 5).
		f, err := emulateCheckMutation(correct, p, fault.ErrGeGt)
		if err != nil {
			return nil, err
		}
		em.Fault = f
	case "C.team4":
		// Assignment fault in a for-init: 0 shipped as 1 — the value+1
		// error type on the initialising store (Figure 3).
		f, err := emulateAssignMutation(correct, p, fault.ErrValuePlusOne)
		if err != nil {
			return nil, err
		}
		em.Fault = f
	case "JB.team6":
		// Stack-shift assignment fault (Figure 4).
		f, err := locator.StackShiftFault(correct, faulty, "main")
		if err != nil {
			return nil, err
		}
		em.Fault = f
		em.Verdict = odc.EmulableWithSupport
	default:
		// Algorithm faults: the corrective diff changes the shape of the
		// generated code; no What/Where corruption set reproduces it.
		em.Evidence = algorithmEvidence(correct, faulty)
		return em, nil
	}

	em.Fault.Where.Program = p.Name
	em.Triggers = len(em.Fault.TriggerAddrs())
	em.NeedsTraps = em.Triggers > vm.NumIABR
	if em.NeedsTraps {
		em.Verdict = odc.EmulableWithSupport
		em.Evidence = fmt.Sprintf("needs %d trigger addresses; the processor has %d breakpoint registers",
			em.Triggers, vm.NumIABR)
	} else {
		em.Evidence = fmt.Sprintf("single-location corruption (%d trigger address)", em.Triggers)
	}
	return em, nil
}

// emulateCheckMutation finds the checking location of the program's real
// fault and returns the operator-mutation fault of the given error type.
func emulateCheckMutation(c *cc.Compiled, p *programs.Program, et fault.ErrType) (*fault.Fault, error) {
	line := lineOf(p.Source, p.Fault.CorrectCode)
	if line == 0 {
		return nil, fmt.Errorf("campaign: %s: corrective fragment not found", p.Name)
	}
	var pick *cc.CheckInfo
	for i := range c.Debug.Checks {
		ck := &c.Debug.Checks[i]
		if ck.Line != line {
			continue
		}
		if _, ok := fault.OperatorMutations(ck.Op)[et]; !ok {
			continue
		}
		if pick == nil || ck.Col < pick.Col {
			pick = ck
		}
	}
	if pick == nil {
		return nil, fmt.Errorf("campaign: %s: no mutable check on line %d", p.Name, line)
	}
	faults, err := locator.CheckingFaults(c, *pick)
	if err != nil {
		return nil, err
	}
	for i := range faults {
		if faults[i].ErrType == et {
			f := faults[i]
			f.ID = fmt.Sprintf("%s/real/%s", p.Name, et)
			return &f, nil
		}
	}
	return nil, fmt.Errorf("campaign: %s: error type %s not applicable at line %d", p.Name, et, line)
}

// emulateAssignMutation finds the assignment location of the program's real
// fault and returns the value-mutation fault of the given error type.
func emulateAssignMutation(c *cc.Compiled, p *programs.Program, et fault.ErrType) (*fault.Fault, error) {
	line := lineOf(p.Source, p.Fault.CorrectCode)
	if line == 0 {
		return nil, fmt.Errorf("campaign: %s: corrective fragment not found", p.Name)
	}
	for _, a := range c.Debug.Assigns {
		if a.Line == line && a.InLoopHeader {
			f, err := locator.AssignmentFault(a, et, fault.Location{
				Program: p.Name, Func: a.Func, Line: a.Line, Detail: a.LHS,
			}, 0)
			if err != nil {
				return nil, err
			}
			f.ID = fmt.Sprintf("%s/real/%s", p.Name, et)
			return f, nil
		}
	}
	return nil, fmt.Errorf("campaign: %s: no loop-header assignment on line %d", p.Name, line)
}

// algorithmEvidence summarises why an algorithm fault defeats machine-level
// emulation: the faulty and corrected binaries differ structurally, not by
// an operand or operator.
func algorithmEvidence(correct, faulty *cc.Compiled) string {
	ct := len(correct.Prog.Image.Text)
	ft := len(faulty.Prog.Image.Text)
	diff := 0
	n := ct
	if ft < n {
		n = ft
	}
	for i := 0; i < n; i++ {
		if correct.Prog.Image.Text[i] != faulty.Prog.Image.Text[i] {
			diff++
		}
	}
	diff += ct - n + ft - n
	return fmt.Sprintf("code shape changes: %d vs %d instructions, %d words differ", ct, ft, diff)
}

// EquivalenceReport is the outcome of verifying one emulation against the
// real faulty program.
type EquivalenceReport struct {
	Program    string
	Strategy   Strategy
	Mode       injector.Mode
	Cases      int
	Equivalent int // runs where the injected run reproduced the faulty run exactly
	FaultShown int // runs where the real fault changed the output (the interesting cases)
}

// applyStrategy converts the default fault into the requested strategy.
// StrategyTextAtStart rewrites instruction memory once, before execution:
// for fetch corruptions it plants the same word persistently; for the
// value±1 assignment error types it edits the immediate of the constant-
// producing addi, exactly as the paper's Figure 3 strategy 1 does.
func applyStrategy(c *cc.Compiled, f *fault.Fault, s Strategy) (*fault.Fault, error) {
	switch s {
	case StrategyFetchEveryExec:
		return f, nil
	case StrategyTextAtStart:
		if len(f.Corruptions) != 1 {
			return nil, fmt.Errorf("campaign: strategy 1 needs a single corruption, fault %s has %d", f.ID, len(f.Corruptions))
		}
		corr := f.Corruptions[0]
		g := *f
		g.Trigger = fault.Trigger{Kind: fault.TriggerAtStart}
		switch corr.Kind {
		case fault.CorruptFetch:
			g.Corruptions = []fault.Corruption{{
				Kind: fault.CorruptText, Addr: corr.Addr, NewWord: corr.NewWord,
			}}
			return &g, nil
		case fault.CorruptStoreData:
			if corr.Op != fault.ValPlusOne && corr.Op != fault.ValMinusOne {
				return nil, fmt.Errorf("campaign: strategy 1 cannot express store transform %d in memory", corr.Op)
			}
			// The instruction before the store must be the addi that
			// materialises the assigned constant.
			w, err := c.Prog.ReadTextWord(corr.Addr - vm.WordSize)
			if err != nil {
				return nil, err
			}
			in, err := vm.Decode(w)
			if err != nil || in.Op != vm.OpAddi || in.RA != vm.RegZero {
				return nil, fmt.Errorf("campaign: strategy 1 needs a constant assignment; %#x does not hold one", corr.Addr-vm.WordSize)
			}
			if corr.Op == fault.ValPlusOne {
				in.Imm++
			} else {
				in.Imm--
			}
			g.Corruptions = []fault.Corruption{{
				Kind: fault.CorruptText, Addr: corr.Addr - vm.WordSize, NewWord: vm.Encode(in),
			}}
			return &g, nil
		}
		return nil, fmt.Errorf("campaign: strategy 1 cannot express corruption kind %v", corr.Kind)
	}
	return nil, fmt.Errorf("campaign: unknown strategy %d", s)
}

// VerifyEmulation runs the faulty binary and the corrected-binary-plus-
// injection side by side over the cases and counts exact behavioural
// matches ("if the results are the same in both runs it means Xception do
// emulate the fault accurately"). The case pairs fan out over
// runtime.GOMAXPROCS(0) workers; see VerifyEmulationWorkers.
func VerifyEmulation(p *programs.Program, em *Emulation, s Strategy, mode injector.Mode, cases []workload.Case) (*EquivalenceReport, error) {
	return VerifyEmulationWorkers(p, em, s, mode, cases, 0)
}

// VerifyEmulationWorkers is VerifyEmulation with an explicit worker count
// (0 selects runtime.GOMAXPROCS(0), 1 the serial path). Each case is an
// independent pair of runs — the real faulty binary and the injected
// corrected binary — so the pairs shard across workers; the counts are
// folded in case order and are identical for any worker count.
func VerifyEmulationWorkers(p *programs.Program, em *Emulation, s Strategy, mode injector.Mode, cases []workload.Case, workers int) (*EquivalenceReport, error) {
	if em.Fault == nil {
		return nil, fmt.Errorf("campaign: %s is not emulable", p.Name)
	}
	correct, err := p.Compile()
	if err != nil {
		return nil, err
	}
	faulty, err := p.CompileFaulty()
	if err != nil {
		return nil, err
	}
	f, err := applyStrategy(correct, em.Fault, s)
	if err != nil {
		return nil, err
	}
	rep := &EquivalenceReport{Program: p.Name, Strategy: s, Mode: mode, Cases: len(cases)}
	type pairOutcome struct {
		equivalent bool
		faultShown bool
	}
	pools := make([]*machinePool, parallel.DefaultWorkers(workers))
	outcomes, err := parallel.Map(workers, len(cases), func(w, i int) (pairOutcome, error) {
		if pools[w] == nil {
			pools[w] = newMachinePool()
		}
		real, err := pools[w].runClean(faulty, &cases[i], vm.DefaultMaxCycles)
		if err != nil {
			return pairOutcome{}, err
		}
		injected, err := pools[w].runWithFault(correct, &cases[i], f, mode, vm.DefaultMaxCycles)
		if err != nil {
			return pairOutcome{}, err
		}
		return pairOutcome{
			equivalent: real.Mode == injected.Mode && real.Output == injected.Output,
			faultShown: real.Mode != Correct,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, o := range outcomes {
		if o.equivalent {
			rep.Equivalent++
		}
		if o.faultShown {
			rep.FaultShown++
		}
	}
	return rep, nil
}

// Section5Summary aggregates the §5 verdicts plus the field-data share they
// cover, reproducing the paper's A/B/C conclusion and the ≈44% figure.
type Section5Summary struct {
	Emulations []Emulation
	// ShareByVerdict maps each verdict to the percentage of field faults
	// (per the ODC field distribution) whose defect type gets it.
	ShareByVerdict map[odc.EmulationVerdict]float64
	NotEmulablePct float64
}

// BuildSection5Summary analyses every real-fault program.
func BuildSection5Summary() (*Section5Summary, error) {
	sum := &Section5Summary{
		ShareByVerdict: make(map[odc.EmulationVerdict]float64),
		NotEmulablePct: odc.NotEmulableShare(),
	}
	for _, p := range programs.RealFaultPrograms() {
		em, err := BuildEmulation(p)
		if err != nil {
			return nil, fmt.Errorf("campaign: %s: %w", p.Name, err)
		}
		sum.Emulations = append(sum.Emulations, *em)
	}
	for _, fs := range odc.FieldDistribution() {
		sum.ShareByVerdict[odc.VerdictFor(fs.Type)] += fs.Share
	}
	sort.Slice(sum.Emulations, func(i, j int) bool {
		return sum.Emulations[i].Program < sum.Emulations[j].Program
	})
	return sum, nil
}
