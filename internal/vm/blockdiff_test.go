package vm

import (
	"math/rand"
	"testing"
)

// Differential fuzz for the block-compiled engine: every program, however
// pathological, must behave bit-identically under the per-instruction
// interpreter and the block engine — same final registers and condition
// field, same memory (via the snapshot checksum), same output, same cycle
// count, same exception and faulting PC, same exit status. Programs are
// generated from a seeded source, so failures replay by seed.

// fuzzSetupLen/fuzzBodyLen fix the program shape so branch targets and the
// data-segment address are known before generation starts.
const (
	fuzzSetupLen = 8
	fuzzBodyLen  = 96
	fuzzTotalLen = fuzzSetupLen + fuzzBodyLen + 2 // + exit sequence
)

// genFuzzProgram builds one random program: a setup prologue that points
// r20/r21 into the data segment and seeds a few scratch registers, a body of
// weighted random instructions (arithmetic, compares, branches in both
// directions, memory traffic both aligned and occasionally not, syscalls,
// lr traffic, and raw — possibly undecodable — words), and an exit sequence
// reached on fall-through. Wild branches, wild pointers, division by zero
// and illegal words are all in scope: the contract under test is that both
// engines fault the same way, not that programs are well-behaved.
func genFuzzProgram(rng *rand.Rand) []uint32 {
	dataStart := uint32(TextBase + fuzzTotalLen*WordSize)
	text := make([]uint32, 0, fuzzTotalLen)
	emit := func(in Inst) { text = append(text, Encode(in)) }

	emit(Inst{Op: OpAddis, RD: 20, RA: RegZero, Imm: int32(int16(dataStart >> 16))})
	emit(Inst{Op: OpOri, RD: 20, RA: 20, Imm: int32(dataStart & 0xffff)})
	emit(Inst{Op: OpAddi, RD: 21, RA: 20, Imm: 256})
	emit(Inst{Op: OpAddi, RD: 4, RA: RegZero, Imm: int32(rng.Intn(64))})
	emit(Inst{Op: OpAddi, RD: 5, RA: RegZero, Imm: int32(rng.Intn(64)) - 32})
	emit(Inst{Op: OpAddi, RD: 6, RA: RegZero, Imm: int32(rng.Intn(200)) + 1})
	emit(Inst{Op: OpAddi, RD: 7, RA: RegZero, Imm: 3})
	emit(Inst{Op: OpNop})

	srcRegs := []uint8{2, 3, 4, 5, 6, 7, 8, 9, 20, 21}
	src := func() uint8 { return srcRegs[rng.Intn(len(srcRegs))] }
	dest := func() uint8 {
		// Mostly scratch registers; occasionally r0 (architectural zero,
		// elided at compile time) or the data bases themselves (turning
		// later memory traffic into wild-pointer coverage).
		switch rng.Intn(24) {
		case 0:
			return RegZero
		case 1:
			return 20 + uint8(rng.Intn(2))
		default:
			return 2 + uint8(rng.Intn(8))
		}
	}
	target := func() int { return fuzzSetupLen + rng.Intn(fuzzBodyLen) }

	for len(text) < fuzzSetupLen+fuzzBodyLen {
		i := len(text)
		switch k := rng.Intn(100); {
		case k < 22:
			ops := []Opcode{OpAdd, OpSubf, OpMullw, OpAnd, OpOr, OpXor, OpSlw, OpSrw, OpSraw, OpNeg, OpDivw, OpMod}
			emit(Inst{Op: ops[rng.Intn(len(ops))], RD: dest(), RA: src(), RB: src()})
		case k < 40:
			ops := []Opcode{OpAddi, OpAddis, OpMulli, OpAndi, OpOri, OpXori}
			emit(Inst{Op: ops[rng.Intn(len(ops))], RD: dest(), RA: src(), Imm: int32(rng.Intn(512)) - 128})
		case k < 50:
			if rng.Intn(2) == 0 {
				emit(Inst{Op: OpCmpwi, RD: uint8(rng.Intn(8)) << 2, RA: src(), Imm: int32(rng.Intn(64)) - 16})
			} else {
				emit(Inst{Op: OpCmpw, RD: uint8(rng.Intn(8)) << 2, RA: src(), RB: src()})
			}
		case k < 62:
			emit(Inst{Op: OpBc, RD: uint8(1 + rng.Intn(6)), RA: uint8(rng.Intn(8)), Imm: int32(target()-i) * WordSize})
		case k < 66:
			emit(Inst{Op: OpB, Off26: int32(target()-i) * WordSize})
		case k < 80:
			ops := []Opcode{OpLwz, OpStw, OpLbz, OpStb}
			op := ops[rng.Intn(len(ops))]
			off := int32(rng.Intn(64)) * WordSize
			if op == OpLbz || op == OpStb {
				off += int32(rng.Intn(4)) // byte accesses need no alignment
			} else if rng.Intn(16) == 0 {
				off++ // rare misaligned word access: must fault identically
			}
			emit(Inst{Op: op, RD: dest(), RA: 20 + uint8(rng.Intn(2)), Imm: off})
		case k < 86:
			ops := []Opcode{OpLwzx, OpStwx, OpLbzx, OpStbx}
			ra := uint8(20)
			if rng.Intn(4) == 0 {
				ra = src() // arbitrary base value: wild-pointer coverage
			}
			emit(Inst{Op: ops[rng.Intn(len(ops))], RD: dest(), RA: ra, RB: 4 + uint8(rng.Intn(3))})
		case k < 90:
			switch rng.Intn(3) {
			case 0:
				emit(Inst{Op: OpMflr, RD: dest()})
			case 1:
				emit(Inst{Op: OpMtlr, RD: src()})
			default:
				emit(Inst{Op: OpBl, Off26: int32(target()-i) * WordSize})
			}
		case k < 94 && len(text)+1 < fuzzSetupLen+fuzzBodyLen:
			emit(Inst{Op: OpAddi, RD: RegSys, RA: RegZero, Imm: int32(1 + rng.Intn(6))})
			emit(Inst{Op: OpSc})
		case k < 97:
			emit(Inst{Op: OpNop})
		default:
			text = append(text, rng.Uint32()) // raw word, possibly undecodable
		}
	}
	emit(Inst{Op: OpAddi, RD: RegSys, RA: RegZero, Imm: SysExit})
	emit(Inst{Op: OpSc})
	return text
}

// diffState is everything observable about a finished run. It is a
// comparable struct so two runs diverge iff the structs differ.
type diffState struct {
	state  State
	exc    Exc
	excAt  uint32
	cycles uint64
	exit   int32
	pc     uint32
	lr     uint32
	regs   [32]uint32
	cr     [8]crField
	output string
	sum    uint64
}

func captureDiff(m *Machine) diffState {
	d := diffState{
		state:  m.state,
		exc:    m.exc,
		excAt:  m.excAt,
		cycles: m.cycles,
		exit:   m.exitStatus,
		pc:     m.pc,
		lr:     m.lr,
		regs:   m.regs,
		cr:     m.cr,
		output: string(m.Output()),
	}
	if s := m.Snapshot(); s != nil {
		d.sum = s.Checksum()
	}
	return d
}

// runFuzzPair generates the program for seed, runs it once on the
// interpreter and once on the block engine (arm customizes both machines
// identically before Run), and fails on any observable divergence. It
// returns the cycle count so callers can assert the corpus is not vacuous.
func runFuzzPair(t *testing.T, seed int64, arm func(m *Machine)) uint64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	text := genFuzzProgram(rng)
	data := make([]byte, 512)
	for i := range data {
		data[i] = byte(i*37 + 11)
	}
	ints := make([]int32, 16)
	for i := range ints {
		ints[i] = rng.Int31n(200) - 100
	}
	bts := make([]byte, 16)
	for i := range bts {
		bts[i] = byte(rng.Intn(256))
	}
	img := Image{Text: text, Data: data, Entry: TextBase}

	run := func(interpOnly bool) diffState {
		m := New(Config{})
		if err := m.Load(img); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m.SetInterpOnly(interpOnly)
		m.SetMaxCycles(20000)
		m.SetInput(append([]int32(nil), ints...))
		m.SetByteInput(append([]byte(nil), bts...))
		if arm != nil {
			arm(m)
		}
		if !interpOnly && !m.blockOK {
			t.Fatalf("seed %d: block engine unexpectedly disabled", seed)
		}
		if _, err := m.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		return captureDiff(m)
	}
	ref, blk := run(true), run(false)
	if ref != blk {
		t.Errorf("seed %d: interpreter and block engine diverge\ninterp: %+v\nblock:  %+v", seed, ref, blk)
	}
	return ref.cycles
}

func TestBlockDiffFuzz(t *testing.T) {
	var cycles uint64
	for seed := int64(0); seed < 64; seed++ {
		cycles += runFuzzPair(t, seed, nil)
	}
	// Many random programs fault within a few hundred cycles — that is the
	// point — but the corpus as a whole must still execute real work.
	if cycles < 50000 {
		t.Fatalf("fuzz corpus only executed %d cycles; generator is broken", cycles)
	}
}

// TestBlockDiffFuzzHooks re-runs a slice of the corpus with load and store
// hooks armed. Hooks force every memory uop down its checked slow path but
// leave the block engine enabled; corruption decisions are pure functions of
// the address, so both engines see the same values.
func TestBlockDiffFuzzHooks(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		runFuzzPair(t, seed, func(m *Machine) {
			m.SetLoadHook(func(addr, v uint32) uint32 {
				if addr&0x40 != 0 {
					return v ^ 0x00ff00ff
				}
				return v
			})
			m.SetStoreHook(func(addr, v uint32) uint32 {
				if addr&0x20 != 0 {
					return v ^ 0x80000001
				}
				return v
			})
		})
	}
}

// TestBlockDiffFuzzPlanted re-runs a slice of the corpus with a decoded
// corruption planted into the body before Run — the campaign's
// every-execution instruction-bus fault. The planted word is random and may
// be undecodable; both engines must execute (or fault on) it identically.
func TestBlockDiffFuzzPlanted(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		runFuzzPair(t, seed, func(m *Machine) {
			prng := rand.New(rand.NewSource(seed ^ 0x5eed))
			idx := fuzzSetupLen + prng.Intn(fuzzBodyLen)
			if err := m.PlantDecoded(TextBase+uint32(idx)*WordSize, prng.Uint32()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBlockDiffFuzzMidRunPlant re-runs a slice of the corpus planting the
// corruption from a cycle-mark watch hook mid-execution, which exercises
// block invalidation while the block engine is live: the spin guard must
// notice the invalidated block and re-dispatch, landing the plant at the
// same cycle as the interpreter does.
func TestBlockDiffFuzzMidRunPlant(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		runFuzzPair(t, seed, func(m *Machine) {
			prng := rand.New(rand.NewSource(seed ^ 0x11ced))
			idx := fuzzSetupLen + prng.Intn(fuzzBodyLen)
			word := prng.Uint32()
			at := uint64(100 + prng.Intn(2000))
			m.SetWatch(nil, []uint64{at}, func(m *Machine, pc uint32, cycleMark bool) {
				// Error ignored: planting can only fail for an out-of-text
				// address, and idx is in the body by construction.
				m.PlantDecoded(TextBase+uint32(idx)*WordSize, word)
			})
		})
	}
}
