// Command faultgen enumerates fault locations and generates fault lists —
// the front end of Table 4. For a given program it prints the possible
// assignment and checking locations found in the compiler's debug
// information, or expands a chosen subset into the full fault list.
//
// Usage:
//
//	faultgen <program>                  # location summary (Table 4 inputs)
//	faultgen -class check -n 5 <program>  # expanded fault list
//	faultgen -metrics <program>           # complexity-guided location weights
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/fault"
	"repro/internal/locator"
	"repro/internal/metrics"
	"repro/internal/programs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "faultgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("faultgen", flag.ContinueOnError)
	class := fs.String("class", "", "expand faults for one class: assign or check")
	n := fs.Int("n", 5, "number of locations to choose")
	seed := fs.Int64("seed", 2000, "random seed for location choice")
	withMetrics := fs.Bool("metrics", false, "print complexity-guided location weights (§6.1)")
	asJSON := fs.Bool("json", false, "emit the expanded fault list as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) != 1 {
		return fmt.Errorf("usage: faultgen [flags] <program>")
	}
	p, ok := programs.ByName(rest[0])
	if !ok {
		return fmt.Errorf("unknown program %q", rest[0])
	}
	c, err := p.Compile()
	if err != nil {
		return err
	}

	if *withMetrics {
		rep := metrics.Analyze(p.Name, c.AST)
		fmt.Printf("%s: complexity-guided weights for assignment locations\n", p.Name)
		funcs := metrics.AssignFuncs(c)
		w := metrics.LocationWeights(rep, funcs)
		for i, a := range c.Debug.Assigns {
			fmt.Printf("  loc %3d  %-14s line %3d  %-10s weight %.1f\n", i, a.Func, a.Line, a.LHS, w[i])
		}
		return nil
	}

	switch *class {
	case "":
		fmt.Printf("%s: %d possible assignment locations, %d possible checking locations\n",
			p.Name, len(c.Debug.Assigns), len(c.Debug.Checks))
		for _, a := range c.Debug.Assigns {
			fmt.Printf("  assign  %-14s line %3d  %s = ...  store at %#x\n", a.Func, a.Line, a.LHS, a.StoreAddr)
		}
		for _, ck := range c.Debug.Checks {
			arrays := ""
			if len(ck.ArrayLoads) > 0 {
				arrays = fmt.Sprintf("  (%d array loads)", len(ck.ArrayLoads))
			}
			fmt.Printf("  check   %-14s line %3d  op %-5q bc at %#x%s\n", ck.Func, ck.Line, ck.Op, ck.BcAddr, arrays)
		}
	case "assign":
		plan, err := locator.PlanAssignment(c, p.Name, *n, *seed)
		if err != nil {
			return err
		}
		return emitPlan(plan, *asJSON)
	case "check":
		plan, err := locator.PlanChecking(c, p.Name, *n, *seed)
		if err != nil {
			return err
		}
		return emitPlan(plan, *asJSON)
	case "hardware":
		plan, err := locator.PlanHardware(c, p.Name, *n, *seed)
		if err != nil {
			return err
		}
		return emitPlan(plan, *asJSON)
	default:
		return fmt.Errorf("unknown class %q (assign, check or hardware)", *class)
	}
	return nil
}

// emitPlan prints the plan either human-readably or as JSON.
func emitPlan(plan *locator.Plan, asJSON bool) error {
	if !asJSON {
		printPlan(plan)
		return nil
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(plan)
}

func printPlan(plan *locator.Plan) {
	fmt.Printf("%s %s faults: %d possible locations, %d chosen, %d faults\n",
		plan.Program, plan.Class, plan.Possible, len(plan.Chosen), len(plan.Faults))
	for i := range plan.Faults {
		f := &plan.Faults[i]
		fmt.Printf("  %-40s %-12s", f.ID, f.ErrType)
		for _, c := range f.Corruptions {
			fmt.Printf("  %s@%#x", corruptionName(c), c.Addr)
		}
		fmt.Println()
	}
}

func corruptionName(c fault.Corruption) string {
	return c.Kind.String()
}
