package journal_test

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/journal"
)

func sideRoundTrip(t *testing.T, path string, fp uint64, recs []journal.SideRecord) {
	t.Helper()
	s, err := journal.CreateSide(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Bind(fp); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := s.Append(r.Kind, r.Payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSideLogRoundTrip: records written before a "crash" replay intact, in
// order, with their kinds and payloads.
func TestSideLogRoundTrip(t *testing.T) {
	path := tempPath(t)
	recs := []journal.SideRecord{
		{Kind: 1, Payload: []byte("session token 7")},
		{Kind: 2, Payload: []byte{}},
		{Kind: 3, Payload: bytes.Repeat([]byte{0xAB}, 300)},
	}
	sideRoundTrip(t, path, 0xfab51c, recs)

	s, err := journal.OpenSide(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !s.Resumed() {
		t.Fatal("reopened sidelog does not report resumed")
	}
	if err := s.Bind(0xfab51c); err != nil {
		t.Fatal(err)
	}
	var got []journal.SideRecord
	if err := s.Replay(func(r journal.SideRecord) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Kind != recs[i].Kind || !bytes.Equal(got[i].Payload, recs[i].Payload) {
			t.Fatalf("record %d: got kind %d payload %q, want kind %d payload %q",
				i, got[i].Kind, got[i].Payload, recs[i].Kind, recs[i].Payload)
		}
	}
}

// TestSideLogTornTail: a record cut off mid-write — at every possible byte
// boundary — must be truncated away, keeping every record before it.
func TestSideLogTornTail(t *testing.T) {
	path := tempPath(t)
	sideRoundTrip(t, path, 0x7ea4, []journal.SideRecord{
		{Kind: 1, Payload: []byte("keep me")},
		{Kind: 2, Payload: []byte("tear me")},
	})
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	firstEnd := 20 + 5 + len("keep me") + 4
	for cut := firstEnd + 1; cut < len(whole); cut++ {
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := journal.OpenSide(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		var kinds []uint8
		s.Replay(func(r journal.SideRecord) error {
			kinds = append(kinds, r.Kind)
			return nil
		})
		s.Close()
		if len(kinds) != 1 || kinds[0] != 1 {
			t.Fatalf("cut %d: replayed kinds %v, want [1]", cut, kinds)
		}
	}
}

// TestSideLogCorruptRecord: a bit flip inside a record must cut replay off
// at the last good record before it.
func TestSideLogCorruptRecord(t *testing.T) {
	path := tempPath(t)
	sideRoundTrip(t, path, 0xbad, []journal.SideRecord{
		{Kind: 1, Payload: []byte("good")},
		{Kind: 2, Payload: []byte("evil")},
		{Kind: 3, Payload: []byte("unreachable")},
	})
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	secondPayload := 20 + (5 + 4 + 4) + 5 + 1 // into record 2's payload
	whole[secondPayload] ^= 0x10
	if err := os.WriteFile(path, whole, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := journal.OpenSide(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var kinds []uint8
	s.Replay(func(r journal.SideRecord) error {
		kinds = append(kinds, r.Kind)
		return nil
	})
	if len(kinds) != 1 || kinds[0] != 1 {
		t.Fatalf("replayed kinds %v after corruption, want [1]", kinds)
	}
}

// TestSideLogFingerprintMismatch: resuming against a different campaign
// plan must be refused, mirroring Journal.Bind.
func TestSideLogFingerprintMismatch(t *testing.T) {
	path := tempPath(t)
	sideRoundTrip(t, path, 0x1111, nil)
	s, err := journal.OpenSide(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Bind(0x2222); err == nil {
		t.Fatal("sidelog bound to a different plan fingerprint")
	}
}

// TestSideLogAppendAfterReopen: recovery appends extend the truncated tail.
func TestSideLogAppendAfterReopen(t *testing.T) {
	path := tempPath(t)
	sideRoundTrip(t, path, 0x3333, []journal.SideRecord{{Kind: 1, Payload: []byte("a")}})
	s, err := journal.OpenSide(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Bind(0x3333); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(2, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := journal.OpenSide(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var kinds []uint8
	s2.Replay(func(r journal.SideRecord) error {
		kinds = append(kinds, r.Kind)
		return nil
	})
	if len(kinds) != 2 || kinds[0] != 1 || kinds[1] != 2 {
		t.Fatalf("replayed kinds %v, want [1 2]", kinds)
	}
}

// TestSideLogRemove: Remove deletes the file so a later campaign over the
// same journal path starts with no stale coordination state.
func TestSideLogRemove(t *testing.T) {
	path := tempPath(t)
	s, err := journal.CreateSide(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Bind(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("sidelog still exists after Remove: %v", err)
	}
}
