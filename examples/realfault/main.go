// Realfault reproduces the §5 case studies (paper Figures 3-6): for each
// real software fault of the suite it shows the corrective source diff, the
// machine code around the fault, the Xception-style emulation when one
// exists, and the behavioural-equivalence verification — including the
// Figure 4 breakpoint-exhaustion finding for the JB.team6 stack shift.
//
//	go run ./examples/realfault
package main

import (
	"errors"
	"fmt"
	"log"
	"strings"

	"repro/internal/asm"
	"repro/internal/campaign"
	"repro/internal/injector"
	"repro/internal/programs"
	"repro/internal/vm"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	for _, p := range programs.RealFaultPrograms() {
		fmt.Printf("==== %s ====================================================\n", p.Name)
		fmt.Printf("ODC type: %s\n", p.Fault.ODCType)
		fmt.Printf("fault:    %s\n", p.Fault.Description)
		if p.Fault.CorrectCode != "" {
			fmt.Printf("faulty source:\n%s\ncorrected source:\n%s\n",
				indent(p.Fault.FaultyCode), indent(p.Fault.CorrectCode))
		}

		em, err := campaign.BuildEmulation(p)
		if err != nil {
			return err
		}
		fmt.Printf("verdict:  %s (%s)\n", em.Verdict, em.Evidence)
		if em.Fault == nil {
			fmt.Println("no machine-level emulation exists: the corrective diff changes")
			fmt.Println("the shape of the generated code (paper category C).")
			fmt.Println()
			continue
		}

		// Show the corrupted instruction(s) like the paper's listings.
		c, err := p.Compile()
		if err != nil {
			return err
		}
		show := em.Fault.Corruptions
		if len(show) > 3 {
			show = show[:3]
		}
		for _, corr := range show {
			orig, err := c.Prog.ReadTextWord(corr.Addr)
			if err != nil {
				return err
			}
			fmt.Printf("  at %#06x: %s\n", corr.Addr, asm.FormatWord(c.Prog, corr.Addr, orig))
			if corr.NewWord != 0 {
				fmt.Printf("   becomes:  %s\n", asm.FormatWord(c.Prog, corr.Addr, corr.NewWord))
			} else {
				fmt.Printf("   corrupted on the %s\n", corr.Kind)
			}
		}
		if len(em.Fault.Corruptions) > len(show) {
			fmt.Printf("  ... and %d more corrupted locations\n", len(em.Fault.Corruptions)-len(show))
		}

		// Verify equivalence: corrected binary + injection vs faulty binary.
		cases, err := workload.Generate(p.Kind, 40, 99)
		if err != nil {
			return err
		}
		mode := injector.ModeHardware
		if em.NeedsTraps {
			_, err := campaign.VerifyEmulation(p, em, campaign.StrategyFetchEveryExec, injector.ModeHardware, cases)
			if errors.Is(err, injector.ErrOutOfBreakpoints) {
				fmt.Printf("hardware triggers: REFUSED — %d trigger addresses exceed the %d breakpoint\n",
					em.Triggers, vm.NumIABR)
				fmt.Println("registers of the PowerPC 601 (the paper's point B); using trap insertion.")
			}
			mode = injector.ModeTrap
		}
		rep, err := campaign.VerifyEmulation(p, em, campaign.StrategyFetchEveryExec, mode, cases)
		if err != nil {
			return err
		}
		fmt.Printf("equivalence (%v): %d/%d runs identical to the real faulty binary\n",
			mode, rep.Equivalent, rep.Cases)
		fmt.Println()
	}
	return nil
}

func indent(s string) string {
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = "    | " + strings.TrimLeft(lines[i], " ")
	}
	return strings.Join(lines, "\n")
}
