//go:build !unix

package journal

import "os"

// lockFile is a no-op on platforms without flock. The single-writer
// guarantee then rests on the operator, as it did before journal locking.
func lockFile(*os.File) error { return nil }
