package odc

import (
	"math"
	"strings"
	"testing"
)

func TestDefectTypeNames(t *testing.T) {
	for _, d := range Types() {
		if strings.HasPrefix(d.String(), "defect(") {
			t.Errorf("type %d has no name", d)
		}
	}
	if got := Assignment.String(); got != "assignment" {
		t.Errorf("Assignment.String() = %q", got)
	}
	if got := DefectType(99).String(); got != "defect(99)" {
		t.Errorf("unknown type = %q", got)
	}
}

func TestTriggerNames(t *testing.T) {
	for tr := TriggerStartup; tr <= TriggerNormalMode; tr++ {
		if strings.HasPrefix(tr.String(), "trigger(") {
			t.Errorf("trigger %d has no name", tr)
		}
	}
}

func TestFieldDistributionShares(t *testing.T) {
	dist := FieldDistribution()
	if len(dist) != 6 {
		t.Fatalf("distribution has %d entries, want 6", len(dist))
	}
	var sum float64
	seen := make(map[DefectType]bool)
	for _, fs := range dist {
		if fs.Share <= 0 || fs.Share > 100 {
			t.Errorf("%v share %.2f out of range", fs.Type, fs.Share)
		}
		if seen[fs.Type] {
			t.Errorf("%v appears twice", fs.Type)
		}
		seen[fs.Type] = true
		sum += fs.Share
	}
	if sum < 90 || sum > 100 {
		t.Errorf("shares sum to %.2f, want 90..100 (code-related defects only)", sum)
	}
}

// TestNotEmulableShare checks the paper's headline number: algorithm and
// function faults, which SWIFI cannot emulate, are "nearly 44%" of field
// faults.
func TestNotEmulableShare(t *testing.T) {
	got := NotEmulableShare()
	if math.Abs(got-44.0) > 1.0 {
		t.Errorf("not-emulable share = %.2f%%, want about 44%%", got)
	}
}

func TestVerdicts(t *testing.T) {
	tests := []struct {
		d    DefectType
		want EmulationVerdict
	}{
		{Assignment, Emulable},
		{Checking, Emulable},
		{Interface, EmulableWithSupport},
		{Timing, EmulableWithSupport},
		{Algorithm, NotEmulable},
		{Function, NotEmulable},
	}
	for _, tt := range tests {
		if got := VerdictFor(tt.d); got != tt.want {
			t.Errorf("VerdictFor(%v) = %v, want %v", tt.d, got, tt.want)
		}
	}
	for v := Emulable; v <= NotEmulable; v++ {
		if strings.HasPrefix(v.String(), "verdict(") {
			t.Errorf("verdict %d has no name", v)
		}
	}
}
