// Package cc implements a compiler for a small C subset targeting the
// repository's virtual machine. It is the stand-in for the C toolchain of
// the paper's Parsytec system and plays two roles:
//
//   - it compiles the target-program suite (Camelot, JamesB, SOR variants)
//     to machine code, so that real software faults exist as source-level
//     diffs while fault injection happens at machine-code level — the
//     abstraction gap of the paper's Figure 1;
//   - it emits the debug information ("the compiler facilities in terms of
//     symbol tables and labels", §6.3) that the fault locator uses to
//     enumerate the assignment and checking fault locations of Table 4.
//
// The language: int and char scalars, pointers, fixed-size (possibly
// two-dimensional) arrays, functions with up to eight int-compatible
// parameters, recursion, if/else, while, for, break/continue, the ternary
// operator, short-circuit && and ||, and the builtins read_int, read_char,
// print_int, print_char, malloc, free and exit.
package cc

import "fmt"

// tokKind enumerates lexical token kinds.
type tokKind int

// Token kinds.
const (
	tokEOF tokKind = iota + 1
	tokIdent
	tokNumber
	tokString
	tokChar

	// Punctuation and operators.
	tokLParen     // (
	tokRParen     // )
	tokLBrace     // {
	tokRBrace     // }
	tokLBracket   // [
	tokRBracket   // ]
	tokSemi       // ;
	tokComma      // ,
	tokAssign     // =
	tokPlus       // +
	tokMinus      // -
	tokStar       // *
	tokSlash      // /
	tokPercent    // %
	tokAmp        // &
	tokNot        // !
	tokQuestion   // ?
	tokColon      // :
	tokEq         // ==
	tokNe         // !=
	tokLt         // <
	tokLe         // <=
	tokGt         // >
	tokGe         // >=
	tokAndAnd     // &&
	tokOrOr       // ||
	tokPlusPlus   // ++
	tokMinusMinus // --
	tokPlusEq     // +=
	tokMinusEq    // -=

	// Keywords.
	tokInt
	tokChar_
	tokVoid
	tokIf
	tokElse
	tokWhile
	tokFor
	tokReturn
	tokBreak
	tokContinue
)

var keywords = map[string]tokKind{
	"int":      tokInt,
	"char":     tokChar_,
	"void":     tokVoid,
	"if":       tokIf,
	"else":     tokElse,
	"while":    tokWhile,
	"for":      tokFor,
	"return":   tokReturn,
	"break":    tokBreak,
	"continue": tokContinue,
}

var tokNames = map[tokKind]string{
	tokEOF: "end of file", tokIdent: "identifier", tokNumber: "number",
	tokString: "string", tokChar: "character literal",
	tokLParen: "(", tokRParen: ")", tokLBrace: "{", tokRBrace: "}",
	tokLBracket: "[", tokRBracket: "]", tokSemi: ";", tokComma: ",",
	tokAssign: "=", tokPlus: "+", tokMinus: "-", tokStar: "*",
	tokSlash: "/", tokPercent: "%", tokAmp: "&", tokNot: "!",
	tokQuestion: "?", tokColon: ":",
	tokEq: "==", tokNe: "!=", tokLt: "<", tokLe: "<=", tokGt: ">", tokGe: ">=",
	tokAndAnd: "&&", tokOrOr: "||",
	tokPlusPlus: "++", tokMinusMinus: "--", tokPlusEq: "+=", tokMinusEq: "-=",
	tokInt: "int", tokChar_: "char", tokVoid: "void",
	tokIf: "if", tokElse: "else", tokWhile: "while", tokFor: "for",
	tokReturn: "return", tokBreak: "break", tokContinue: "continue",
}

func (k tokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// token is one lexical token with its source position.
type token struct {
	kind tokKind
	text string // identifier text or raw literal
	val  int32  // numeric value for tokNumber/tokChar
	str  string // decoded value for tokString
	line int
	col  int
}

// Error is a compile error with source position.
type Error struct {
	Line int
	Col  int
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...interface{}) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
