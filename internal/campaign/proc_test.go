package campaign

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/worker"
)

// The proc-isolation tests run the campaign's real worker path: the test
// binary re-executes itself as a worker subprocess (REPRO_CAMPAIGN_WORKER),
// re-plans the campaign from the wire spec via WorkerFactory exactly as
// swifi -worker-mode does, and misbehaves on cue — SIGKILL mid-unit,
// SIGSTOP (heartbeat stall), deterministic crash, refusal to start — so the
// supervisor's redelivery, quarantine and circuit-breaker policies are
// exercised against real process death, not simulations. Every test's
// ground truth is the in-process Result: the tentpole's contract is
// bit-identical aggregates under any isolation mode.
func TestMain(m *testing.M) {
	if os.Getenv("REPRO_CAMPAIGN_WORKER") == "1" {
		if os.Getenv("REPRO_WORKER_EXIT_AT_START") == "1" {
			os.Exit(3)
		}
		installWorkerMisbehavior()
		if err := worker.Serve(os.Stdin, os.Stdout, WorkerFactory); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// installWorkerMisbehavior arms testProcUnitHook from the environment the
// supervising test set on the worker subprocess.
func installWorkerMisbehavior() {
	killUnit := envUnit("REPRO_WORKER_KILL_UNIT")
	stallUnit := envUnit("REPRO_WORKER_STALL_UNIT")
	if killUnit < 0 && stallUnit < 0 {
		return
	}
	testProcUnitHook = func(unit int) {
		if unit == killUnit && claimOnceFlag() {
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
		}
		if unit == stallUnit && claimOnceFlag() {
			// SIGSTOP freezes heartbeats along with everything else: the
			// worker is alive but wedged, which only the silence timer can
			// detect.
			syscall.Kill(os.Getpid(), syscall.SIGSTOP)
		}
	}
}

func envUnit(name string) int {
	v := os.Getenv(name)
	if v == "" {
		return -1
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return -1
	}
	return n
}

// claimOnceFlag returns true at most once across all workers sharing the
// flag file; with no flag file configured the misbehavior repeats forever.
func claimOnceFlag() bool {
	path := os.Getenv("REPRO_WORKER_ONCE_FLAG")
	if path == "" {
		return true
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return false
	}
	f.Close()
	return true
}

// procConfig is isolationConfig under process isolation, spawning this test
// binary as the worker with the given extra environment.
func procConfig(env ...string) Config {
	cfg := isolationConfig()
	cfg.Isolation = IsolationProc
	cfg.Proc = &ProcOptions{
		Spawn: func() *exec.Cmd {
			cmd := exec.Command(os.Args[0])
			cmd.Env = append(os.Environ(), "REPRO_CAMPAIGN_WORKER=1")
			cmd.Env = append(cmd.Env, env...)
			cmd.Stderr = os.Stderr
			return cmd
		},
		HeartbeatInterval: 50 * time.Millisecond,
		BackoffBase:       10 * time.Millisecond,
		BackoffMax:        100 * time.Millisecond,
	}
	return cfg
}

// TestProcMatchesInProc: the tentpole's core contract. A healthy worker
// pool must reproduce the in-process campaign bit for bit — same entries,
// same counts, same activations — under a multi-worker pool.
func TestProcMatchesInProc(t *testing.T) {
	ref, err := Run(isolationConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(procConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !sameEntries(res, ref) {
		t.Error("proc isolation changed the campaign outcome")
	}
	if res.Exec != ref.Exec {
		t.Errorf("proc ExecStats %+v, in-process %+v", res.Exec, ref.Exec)
	}
}

// TestProcWorkerKilledMidUnit: SIGKILL delivered to a worker in the middle
// of a unit must cost nothing — the unit is redelivered to a fresh worker
// and the aggregates stay bit-identical, with zero HostFaults.
func TestProcWorkerKilledMidUnit(t *testing.T) {
	ref, err := Run(isolationConfig())
	if err != nil {
		t.Fatal(err)
	}
	flag := filepath.Join(t.TempDir(), "killed")
	res, err := Run(procConfig(
		"REPRO_WORKER_KILL_UNIT=1",
		"REPRO_WORKER_ONCE_FLAG="+flag))
	if err != nil {
		t.Fatalf("campaign died with a SIGKILLed worker: %v", err)
	}
	if _, err := os.Stat(flag); err != nil {
		t.Fatal("the scripted SIGKILL never happened; the test proved nothing")
	}
	if res.Exec.HostFaults != 0 {
		t.Errorf("%d units quarantined; the killed delivery should have been redelivered", res.Exec.HostFaults)
	}
	if !sameEntries(res, ref) {
		t.Error("a worker death changed the campaign outcome")
	}
}

// TestProcHeartbeatStall: a worker that wedges (SIGSTOP — alive, silent)
// must be detected by the silence timer, killed, and its unit redelivered
// with no effect on the aggregates.
func TestProcHeartbeatStall(t *testing.T) {
	ref, err := Run(isolationConfig())
	if err != nil {
		t.Fatal(err)
	}
	flag := filepath.Join(t.TempDir(), "stalled")
	cfg := procConfig(
		"REPRO_WORKER_STALL_UNIT=2",
		"REPRO_WORKER_ONCE_FLAG="+flag)
	cfg.Proc.HeartbeatTimeout = 2 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("campaign died with a stalled worker: %v", err)
	}
	if _, err := os.Stat(flag); err != nil {
		t.Fatal("the scripted stall never happened; the test proved nothing")
	}
	if res.Exec.HostFaults != 0 {
		t.Errorf("%d units quarantined; the stalled delivery should have been redelivered", res.Exec.HostFaults)
	}
	if !sameEntries(res, ref) {
		t.Error("a stalled worker changed the campaign outcome")
	}
}

// TestProcDoubleRedeliveryQuarantine: a unit that kills every worker it is
// delivered to must be quarantined as exactly one HostFault after
// MaxDeliveries attempts; every other unit still reports its true verdict.
func TestProcDoubleRedeliveryQuarantine(t *testing.T) {
	ref, err := Run(isolationConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := procConfig("REPRO_WORKER_KILL_UNIT=0") // no once-flag: kills every time
	cfg.Proc.MaxDeliveries = 2
	cfg.Proc.MaxRestarts = 100
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("campaign died on a poison unit: %v", err)
	}
	if res.Exec.HostFaults != 1 {
		t.Fatalf("quarantined %d units, want exactly the poison unit", res.Exec.HostFaults)
	}
	if res.Runs != ref.Runs {
		t.Errorf("res.Runs = %d, want %d (quarantined units still count)", res.Runs, ref.Runs)
	}
	hostFaults := 0
	for i := range res.Entries {
		hostFaults += res.Entries[i].Counts[HostFault]
	}
	if hostFaults != 1 {
		t.Errorf("entries count %d HostFault verdicts, want 1", hostFaults)
	}
}

// TestProcCircuitBreakerFallsBack: when workers cannot start at all, the
// breaker must trip and the campaign must complete in-process with the
// identical Result — graceful degradation, not failure.
func TestProcCircuitBreakerFallsBack(t *testing.T) {
	ref, err := Run(isolationConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := procConfig("REPRO_WORKER_EXIT_AT_START=1")
	cfg.Proc.MaxRestarts = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("campaign died behind the circuit breaker: %v", err)
	}
	if res.Exec.HostFaults != 0 {
		t.Errorf("%d units quarantined by the fallback", res.Exec.HostFaults)
	}
	if !sameEntries(res, ref) {
		t.Error("the in-process fallback changed the campaign outcome")
	}
	if res.Exec != ref.Exec {
		t.Errorf("fallback ExecStats %+v, in-process %+v", res.Exec, ref.Exec)
	}
}

// TestProcJournalResumesInProcess: a proc campaign interrupted mid-run
// leaves a journal that an in-process campaign resumes to the identical
// Result — the two isolation modes share one plan fingerprint and one wire
// encoding for outcomes.
func TestProcJournalResumesInProcess(t *testing.T) {
	ref, err := Run(isolationConfig())
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "proc.wal")
	j, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	j.OnAppend = func(done int) {
		if done >= 2 {
			cancel()
		}
	}
	cfg := procConfig()
	cfg.Ctx = ctx
	cfg.Journal = j
	_, err = Run(cfg)
	var ie *InterruptedError
	if !errors.As(err, &ie) {
		j.Close()
		t.Fatalf("want an interrupt partway through, got %v", err)
	}
	if ie.Done >= ie.Total {
		t.Fatalf("interrupt landed after completion (%d/%d); the resume would be vacuous", ie.Done, ie.Total)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() < 2 {
		t.Fatalf("journal replays %d units, want at least the 2 appended before the interrupt", j2.Len())
	}
	resumed := isolationConfig() // in-process resume of a proc journal
	resumed.Journal = j2
	res, err := Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !sameEntries(res, ref) {
		t.Error("resuming a proc journal in-process changed the campaign outcome")
	}
}
