package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunStaticExperiments(t *testing.T) {
	if err := run([]string{"table2", "table3", "fielddist"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunVerify(t *testing.T) {
	if err := run([]string{"-verify-cases", "2", "verify", "C.team4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("no experiment accepted")
	}
	if err := run([]string{"table99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-mode", "zap", "table2"}); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run([]string{"verify"}); err == nil {
		t.Error("verify without program accepted")
	}
}
