package worker

import (
	"bytes"
	"encoding/binary"
	"runtime"
	"testing"
)

// FuzzReadFrame feeds arbitrary byte streams to the frame reader. Whatever
// a dying or hostile peer sends — truncated frames, corrupt length
// prefixes, garbage types — ReadFrame must fail cleanly or return a payload
// that re-encodes to exactly the bytes it consumed; it must never panic and
// never hand back more bytes than arrived.
func FuzzReadFrame(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteFrame(&valid, msgHello, []byte("spec payload")); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:3])             // torn header
	f.Add(valid.Bytes()[:6])             // torn body
	f.Add([]byte{})                      // clean EOF
	f.Add(make([]byte, 4))               // zero-length claim
	lying := make([]byte, 8)             // prefix claims more than MaxFrame
	binary.LittleEndian.PutUint32(lying, MaxFrame+1)
	f.Add(lying)
	big := make([]byte, 4, 4+readChunk+64) // body spanning multiple chunks
	binary.LittleEndian.PutUint32(big, uint32(readChunk+64))
	big = append(big, make([]byte, readChunk+64)...)
	f.Add(big)

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if 5+len(payload) > len(data) {
			t.Fatalf("ReadFrame returned %d payload bytes from a %d-byte stream", len(payload), len(data))
		}
		var re bytes.Buffer
		if werr := WriteFrame(&re, typ, payload); werr != nil {
			t.Fatalf("accepted frame does not re-encode: %v", werr)
		}
		if !bytes.Equal(re.Bytes(), data[:re.Len()]) {
			t.Fatalf("re-encoded frame differs from the consumed prefix")
		}
	})
}

// TestReadFrameAllocationBound pins the chunked-allocation property the
// fuzz target cannot observe directly: a length prefix claiming MaxFrame on
// a connection that then dies costs at most a chunk or so of memory, not
// the 16MB the prefix promised.
func TestReadFrameAllocationBound(t *testing.T) {
	torn := make([]byte, 4, 4+readChunk/2)
	binary.LittleEndian.PutUint32(torn, MaxFrame)
	torn = append(torn, make([]byte, readChunk/2)...)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if _, _, err := ReadFrame(bytes.NewReader(torn)); err == nil {
		t.Fatal("torn frame read succeeded")
	}
	runtime.ReadMemStats(&after)
	if got := after.TotalAlloc - before.TotalAlloc; got > 4*readChunk {
		t.Fatalf("torn MaxFrame claim allocated %d bytes, want at most %d", got, 4*readChunk)
	}
}
