package fabric

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/telemetry"
	"repro/internal/worker"
)

func TestSnapshotRoundTrip(t *testing.T) {
	cases := [][]snapEntry{
		nil,
		{{Name: "a_total", Value: 0}},
		{{Name: "fabric_units_executed_total", Value: 42}, {Name: "chaos_drops_total", Value: 7}, {Name: "x", Value: 1 << 60}},
	}
	for _, in := range cases {
		sentUS, out, err := decodeSnapshot(encodeSnapshot(12345, in), maxSnapEntries)
		if err != nil {
			t.Fatalf("entries %v: %v", in, err)
		}
		if sentUS != 12345 {
			t.Fatalf("sent-us %d, want 12345", sentUS)
		}
		if len(in) == 0 && len(out) == 0 {
			continue
		}
		if !reflect.DeepEqual(out, in) {
			t.Fatalf("round trip mismatch: %v != %v", out, in)
		}
	}
}

func TestSnapshotTruncated(t *testing.T) {
	full := encodeSnapshot(99, []snapEntry{{Name: "abc", Value: 5}, {Name: "de", Value: 6}})
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := decodeSnapshot(full[:cut], maxSnapEntries); err == nil {
			t.Fatalf("decodeSnapshot accepted a %d-byte prefix of a %d-byte frame", cut, len(full))
		}
	}
	// Trailing garbage is rejected too: a frame is exactly its entries.
	if _, _, err := decodeSnapshot(append(full, 0), maxSnapEntries); err == nil {
		t.Fatal("decodeSnapshot accepted trailing bytes")
	}
}

func TestSnapshotEntryBound(t *testing.T) {
	entries := make([]snapEntry, 10)
	for i := range entries {
		entries[i] = snapEntry{Name: fmt.Sprintf("c%d", i), Value: uint64(i)}
	}
	if _, _, err := decodeSnapshot(encodeSnapshot(0, entries), 5); err == nil {
		t.Fatal("decodeSnapshot expanded past the entry bound")
	}
}

func TestTraceEventsRoundTrip(t *testing.T) {
	now := time.UnixMicro(time.Now().UnixMicro()).UTC() // microsecond precision, what the wire keeps
	in := []telemetry.Event{
		{T: now, Kind: telemetry.KindExecuted, Unit: 7, Case: 3, Worker: 1, DurUS: 12345, Program: "tritype", Fault: "MFC-1", Mode: "crash", Detail: "d"},
		{Kind: telemetry.KindDispatched, Unit: 8},
	}
	sentUS, out, err := decodeTraceEvents(encodeTraceEvents(777, in), maxTraceEvents)
	if err != nil {
		t.Fatal(err)
	}
	if sentUS != 777 {
		t.Fatalf("sent-us %d, want 777", sentUS)
	}
	if len(out) != len(in) {
		t.Fatalf("%d events decoded, want %d", len(out), len(in))
	}
	if !out[0].T.Equal(in[0].T) {
		t.Fatalf("timestamp %v != %v", out[0].T, in[0].T)
	}
	out[0].T, in[0].T = time.Time{}, time.Time{}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", out, in)
	}
	// The Host field deliberately does not cross the wire: attribution
	// comes from the authenticated session, not from what a frame claims.
	spoofed := []telemetry.Event{{Kind: "executed", Host: "someone-else"}}
	_, out, err = decodeTraceEvents(encodeTraceEvents(0, spoofed), maxTraceEvents)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Host != "" {
		t.Fatalf("host %q crossed the wire", out[0].Host)
	}
}

func TestTraceEventsTruncated(t *testing.T) {
	full := encodeTraceEvents(5, []telemetry.Event{{Kind: "executed", Program: "p", Unit: 1}})
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := decodeTraceEvents(full[:cut], maxTraceEvents); err == nil {
			t.Fatalf("decodeTraceEvents accepted a %d-byte prefix of a %d-byte frame", cut, len(full))
		}
	}
	if _, _, err := decodeTraceEvents(append(full, 0), maxTraceEvents); err == nil {
		t.Fatal("decodeTraceEvents accepted trailing bytes")
	}
	if _, _, err := decodeTraceEvents(encodeTraceEvents(0, make([]telemetry.Event, 4)), 2); err == nil {
		t.Fatal("decodeTraceEvents expanded past the event bound")
	}
}

// fedRunner executes the fake plan while emitting one executed event per
// unit on its host's tracer — the minimal stand-in for the campaign
// executor's per-unit lifecycle emission.
type fedRunner struct {
	units int
	tr    *telemetry.Tracer
}

func (r *fedRunner) Units() int { return r.units }

func (r *fedRunner) Run(unit int) (journal.Outcome, []byte, error) {
	r.tr.Emit(telemetry.Event{Kind: telemetry.KindDispatched, Unit: unit})
	r.tr.Emit(telemetry.Event{Kind: telemetry.KindExecuted, Unit: unit, DurUS: 1})
	o, p := testOutcome(unit)
	return o, p, nil
}

// TestFederationLoopback is the tentpole's end-to-end contract: two named
// executors push telemetry and trace frames to a real coordinator over
// loopback TCP, and by the end of the run the coordinator must hold
// host-labelled series for both, a merged host-attributed trace whose
// per-host event order is preserved, and a fleet view accounting for every
// merged verdict.
func TestFederationLoopback(t *testing.T) {
	const units = 60
	const hosts = 2
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(4 * units * hosts)
	fleet := NewFleetTracker(units, reg)
	coord, err := NewCoordinator(CoordinatorOptions{
		Addr:              "127.0.0.1:0",
		MinHosts:          hosts,
		Spec:              testSpec(),
		Units:             units,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
		SessionTimeout:    150 * time.Millisecond,
		Quarantine:        journal.Outcome{Mode: 9},
		Tracer:            tracer,
		Registry:          reg,
		Fleet:             fleet,
		Log:               t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	joinErr := make(chan error, hosts)
	for i := 0; i < hosts; i++ {
		name := fmt.Sprintf("exec-%d", i)
		go func() {
			execTracer := telemetry.NewTracer(4 * units)
			fed := NewFederation(nil, execTracer)
			factory := func(spec worker.Spec) (worker.Runner, error) {
				return &fedRunner{units: units, tr: execTracer}, nil
			}
			joinErr <- Join(ctx, coord.Addr().String(), ExecutorOptions{
				Name:    name,
				Workers: 2,
				Batch:   InProcBatch(factory, 2),
				// Push at heartbeat speed so the periodic path (not just the
				// final flush) is exercised.
				Federation:         fed,
				FederationInterval: time.Millisecond,
			})
		}()
	}
	results := collectRun(t, coord, units, nil)
	checkResults(t, results)
	for i := 0; i < hosts; i++ {
		if err := <-joinErr; err != nil {
			t.Fatalf("executor join: %v", err)
		}
	}

	// Federated metrics: a host-labelled executed series per executor. The
	// final absolute values must cover every unit; a mid-run steal can
	// execute a unit on both hosts, so the sum is a floor, not an identity.
	counts := reg.Counters()
	var fedSum uint64
	for i := 0; i < hosts; i++ {
		name := fmt.Sprintf("fabric_units_executed_total{host=%q}", fmt.Sprintf("exec-%d", i))
		v, ok := counts[name]
		if !ok {
			t.Fatalf("series %s missing from the coordinator registry (have %d series)", name, len(counts))
		}
		if v == 0 {
			t.Errorf("series %s is zero; the host executed nothing?", name)
		}
		fedSum += v
	}
	if fedSum < units {
		t.Errorf("federated executed sum %d, want at least %d", fedSum, units)
	}

	// Merged trace: host attribution on every forwarded event, both hosts
	// represented, and per-host emission order preserved (dispatched before
	// executed for every unit; frames are pushed and ingested in order).
	perHost := make(map[string]map[int]string) // host → unit → last kind seen
	hostEvents := make(map[string]int)
	for _, e := range tracer.Events() {
		if e.Kind != telemetry.KindDispatched && e.Kind != telemetry.KindExecuted {
			continue
		}
		if e.Host == "" {
			t.Fatalf("forwarded event without host attribution: %+v", e)
		}
		hostEvents[e.Host]++
		m := perHost[e.Host]
		if m == nil {
			m = make(map[int]string)
			perHost[e.Host] = m
		}
		switch e.Kind {
		case telemetry.KindDispatched:
			if m[e.Unit] != "" {
				t.Errorf("host %s unit %d dispatched twice in the merged trace", e.Host, e.Unit)
			}
		case telemetry.KindExecuted:
			if m[e.Unit] != telemetry.KindDispatched {
				t.Errorf("host %s unit %d executed before dispatched: order lost in the merge", e.Host, e.Unit)
			}
		}
		m[e.Unit] = e.Kind
	}
	if len(hostEvents) != hosts {
		t.Fatalf("merged trace covers hosts %v, want %d hosts", hostEvents, hosts)
	}
	var total int
	for _, n := range hostEvents {
		total += n
	}
	if total < 2*units {
		t.Errorf("merged trace has %d lifecycle events, want at least %d", total, 2*units)
	}

	// Fleet view: every verdict attributed, both hosts present and named.
	snap := fleet.Snapshot()
	if snap.Total != units || snap.Done != units {
		t.Errorf("fleet progress %d/%d, want %d/%d", snap.Done, snap.Total, units, units)
	}
	if len(snap.Hosts) != hosts {
		t.Fatalf("fleet view has %d hosts, want %d", len(snap.Hosts), hosts)
	}
	merged := 0
	for _, h := range snap.Hosts {
		if !strings.HasPrefix(h.Name, "exec-") {
			t.Errorf("fleet host name %q, want exec-*", h.Name)
		}
		if h.Executed == 0 {
			t.Errorf("fleet host %s reports zero federated executed units", h.Name)
		}
		merged += h.Merged
	}
	// Merged counts only first deliveries (the coordinator drops steal
	// duplicates), so this one IS exact.
	if merged != units {
		t.Errorf("fleet merged total %d, want %d", merged, units)
	}
	stats := fleet.HostStats()
	if len(stats) != hosts {
		t.Fatalf("HostStats has %d rows, want %d", len(stats), hosts)
	}
}

// TestFederationOffIsInert: with Federation unset nothing about the run
// changes and no federated series appear — the A/B the overhead benchmark
// relies on.
func TestFederationOffIsInert(t *testing.T) {
	const units = 30
	reg := telemetry.NewRegistry()
	fleet := NewFleetTracker(units, reg)
	coord, err := NewCoordinator(CoordinatorOptions{
		Addr:              "127.0.0.1:0",
		MinHosts:          1,
		Spec:              testSpec(),
		Units:             units,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
		SessionTimeout:    150 * time.Millisecond,
		Quarantine:        journal.Outcome{Mode: 9},
		Registry:          reg,
		Fleet:             fleet,
		Log:               t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	joinErr := make(chan error, 1)
	go func() {
		joinErr <- Join(ctx, coord.Addr().String(), ExecutorOptions{
			Name:    "exec-0",
			Workers: 2,
			Batch:   InProcBatch(fakeFactory(units, 0), 2),
		})
	}()
	checkResults(t, collectRun(t, coord, units, nil))
	if err := <-joinErr; err != nil {
		t.Fatalf("executor join: %v", err)
	}
	for name := range reg.Counters() {
		if strings.Contains(name, "{host=") {
			t.Errorf("federated series %s appeared without federation", name)
		}
	}
	snap := fleet.Snapshot()
	if len(snap.Hosts) != 1 || snap.Hosts[0].Merged != units {
		t.Errorf("fleet view %+v: session tracking must work without federation", snap.Hosts)
	}
	if snap.Hosts[0].Executed != 0 {
		t.Errorf("fleet Executed %d without federation, want 0", snap.Hosts[0].Executed)
	}
}

func TestFormatRuns(t *testing.T) {
	cases := []struct {
		units []int
		want  string
	}{
		{nil, ""},
		{[]int{5}, "5"},
		{[]int{0, 1, 2, 3}, "0-3"},
		{[]int{0, 1, 2, 9, 11, 12}, "0-2,9,11-12"},
	}
	for _, c := range cases {
		if got := formatRuns(c.units); got != c.want {
			t.Errorf("formatRuns(%v) = %q, want %q", c.units, got, c.want)
		}
	}
}
