package telemetry

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"
)

// ProgressSnap is one sample of campaign state for the progress surface,
// produced by the snapshot callback the campaign installs.
type ProgressSnap struct {
	Done  int64  // units finished (executed or replayed)
	Total int64  // units planned
	Parts []Part // running tallies in presentation order (verdict modes)
	Note  string // trailing health note ("", or e.g. "2 worker restarts")
}

// Part is one named tally of a progress snapshot.
type Part struct {
	Name string
	N    uint64
}

// Progress renders a live campaign progress line on a writer (normally
// stderr). On a TTY the line is redrawn in place with \r; on anything else
// one full line is printed per interval, so logs stay readable. A nil
// *Progress is a no-op, and Start without a snapshot source renders
// nothing — experiments that never run a campaign stay silent.
//
// Progress is restartable: a CLI creates it once and every campaign.Run
// brackets its execution phase with Start/Stop.
type Progress struct {
	w        io.Writer
	tty      bool
	interval time.Duration

	mu      sync.Mutex
	snap    func() ProgressSnap
	stop    chan struct{}
	done    chan struct{}
	started time.Time
	lastLen int
}

// NewProgress returns a progress surface writing to w. tty selects in-place
// redraw; interval is the refresh cadence (0 picks 500ms on a TTY, 10s
// otherwise).
func NewProgress(w io.Writer, tty bool, interval time.Duration) *Progress {
	if interval <= 0 {
		if tty {
			interval = 500 * time.Millisecond
		} else {
			interval = 10 * time.Second
		}
	}
	return &Progress{w: w, tty: tty, interval: interval}
}

// IsTTY reports whether f is a character device — the auto mode of the
// -progress flag.
func IsTTY(f *os.File) bool {
	fi, err := f.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice != 0
}

// Start begins rendering from the snapshot callback until Stop. A second
// Start before Stop is ignored (campaigns never nest, but an engine may run
// several in sequence).
func (p *Progress) Start(snap func() ProgressSnap) {
	if p == nil || snap == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stop != nil {
		return
	}
	p.snap = snap
	p.started = time.Now()
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	go p.loop(p.stop, p.done)
}

// Stop halts rendering, draws one final line and (on a TTY) terminates it
// with a newline so subsequent output starts clean.
func (p *Progress) Stop() {
	if p == nil {
		return
	}
	p.mu.Lock()
	stop, done := p.stop, p.done
	p.stop, p.done = nil, nil
	p.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

func (p *Progress) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			p.render(true)
			return
		case <-t.C:
			p.render(false)
		}
	}
}

// render draws one progress sample. final adds the terminating newline on a
// TTY (non-TTY lines always end in one).
func (p *Progress) render(final bool) {
	p.mu.Lock()
	snap := p.snap
	started := p.started
	p.mu.Unlock()
	if snap == nil {
		return
	}
	s := snap()
	if s.Total == 0 && s.Done == 0 {
		return
	}
	line := renderLine(s, time.Since(started))
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.tty {
		pad := ""
		if n := p.lastLen - len(line); n > 0 {
			pad = strings.Repeat(" ", n)
		}
		fmt.Fprintf(p.w, "\r%s%s", line, pad)
		p.lastLen = len(line)
		if final {
			fmt.Fprintln(p.w)
			p.lastLen = 0
		}
	} else {
		fmt.Fprintln(p.w, line)
	}
}

// renderLine formats one progress sample: count, percentage, rate, ETA, the
// running verdict tallies, and the health note.
func renderLine(s ProgressSnap, elapsed time.Duration) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d/%d", s.Done, s.Total)
	if s.Total > 0 {
		fmt.Fprintf(&sb, " (%.1f%%)", 100*float64(s.Done)/float64(s.Total))
	}
	if secs := elapsed.Seconds(); secs > 0 && s.Done > 0 {
		rate := float64(s.Done) / secs
		fmt.Fprintf(&sb, "  %.0f/s", rate)
		if left := s.Total - s.Done; left > 0 && rate > 0 {
			eta := time.Duration(float64(left)/rate) * time.Second
			fmt.Fprintf(&sb, "  ETA %s", eta.Round(time.Second))
		}
	}
	for _, part := range s.Parts {
		fmt.Fprintf(&sb, "  %s %d", part.Name, part.N)
	}
	if s.Note != "" {
		fmt.Fprintf(&sb, "  [%s]", s.Note)
	}
	return sb.String()
}
