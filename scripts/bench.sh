#!/bin/sh
# bench.sh — run the performance benchmarks and emit a machine-readable
# BENCH_<tag>.json artifact (ns/op, B/op, allocs/op and the custom metrics
# the benchmarks report, e.g. the campaign's "runs" and the VM's Minstr/s).
#
# Usage:
#   scripts/bench.sh [tag] [bench-regex]
#
#   tag          suffix of the artifact: BENCH_<tag>.json (default: local)
#   bench-regex  benchmarks to run (default: the campaign A/B pair, the VM
#                throughput benchmarks — block-compiled vs interpreter —
#                and the block-compile cost benchmark)
#
# EXTRA_LABELS may hold additional "-label k=v" pairs to embed in the
# artifact, e.g. baseline numbers measured on a pre-change checkout:
#   EXTRA_LABELS="-label baseline_campaign_s=48.3" scripts/bench.sh pr2
#
# The campaign pair runs the Table 4 benchmark twice in one binary:
# "straight" replays every injection in full (the pre-checkpoint executor)
# and "workers=1" goes through golden-run checkpointing; the ratio of their
# ns/op is the fast-forward speed-up on identical work. benchtime=1x keeps
# the run at one iteration per sub-benchmark — the campaign is deterministic,
# so more iterations only add time. For A/B comparisons measuring small
# deltas (e.g. the telemetry overhead pair) set BENCHTIME=5x: the first
# iteration builds the shared golden-run store, so single-iteration numbers
# mix warmup into whichever sub-benchmark runs first.
set -eu

cd "$(dirname "$0")/.."

TAG="${1:-local}"
BENCH="${2:-Table4Parallel/(straight|workers=1\$)|VMThroughput|BlockCompile}"
OUT="BENCH_${TAG}.json"

go test -run=NONE -bench "$BENCH" -benchtime="${BENCHTIME:-1x}" -timeout 60m . |
	tee /dev/stderr |
	go run ./tools/benchjson \
		-label "tag=$TAG" \
		-label "commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
		${EXTRA_LABELS:-} \
		>"$OUT"

echo "wrote $OUT" >&2
