// Package odc models the Orthogonal Defect Classification schema
// (Chillarege et al.) as used by the paper: defect types directly related to
// code, system-test trigger classes, and the field-data distribution from
// Christmansson & Chillarege [5] that the paper's 44% claim rests on.
package odc

import "fmt"

// DefectType is an ODC defect (fault) type. A defect is characterised by
// the change in the code necessary to correct it.
type DefectType int

// The ODC defect types directly related to code (paper §3).
const (
	Assignment DefectType = iota + 1 // values assigned incorrectly or not assigned
	Checking                         // missing/incorrect validation, loop or conditional
	Interface                        // errors in interaction among components/modules
	Timing                           // missing or incorrect serialisation of shared resources
	Algorithm                        // incorrect/missing implementation fixable without design change
	Function                         // incorrect/missing capability requiring a design change
)

var defectNames = map[DefectType]string{
	Assignment: "assignment",
	Checking:   "checking",
	Interface:  "interface",
	Timing:     "timing/serialization",
	Algorithm:  "algorithm",
	Function:   "function",
}

// String returns the lowercase ODC name of the defect type.
func (d DefectType) String() string {
	if s, ok := defectNames[d]; ok {
		return s
	}
	return fmt.Sprintf("defect(%d)", int(d))
}

// Types lists every defect type in canonical order.
func Types() []DefectType {
	return []DefectType{Assignment, Checking, Interface, Timing, Algorithm, Function}
}

// Trigger is an ODC system-test trigger class: the broad environmental
// condition under which a fault is exposed in the field.
type Trigger int

// System-test trigger classes (paper §3). All experiments in the paper (and
// in this reproduction) run under TriggerNormalMode.
const (
	TriggerStartup Trigger = iota + 1
	TriggerWorkloadStress
	TriggerRecovery
	TriggerConfiguration
	TriggerNormalMode
)

var triggerNames = map[Trigger]string{
	TriggerStartup:        "startup/restart",
	TriggerWorkloadStress: "workload volume/stress",
	TriggerRecovery:       "recovery/exception",
	TriggerConfiguration:  "hardware/software configuration",
	TriggerNormalMode:     "normal mode",
}

// String returns the ODC trigger-class name.
func (t Trigger) String() string {
	if s, ok := triggerNames[t]; ok {
		return s
	}
	return fmt.Sprintf("trigger(%d)", int(t))
}

// FieldShare is the share of field defects of one ODC type.
type FieldShare struct {
	Type  DefectType
	Share float64 // percentage of all field defects
}

// FieldDistribution returns the defect-type distribution of discovered field
// faults reported by Christmansson & Chillarege (FTCS-26, 1996), which the
// paper uses to size the emulation gap: algorithm plus function faults —
// the classes machine-level SWIFI cannot emulate — account for nearly 44%.
func FieldDistribution() []FieldShare {
	return []FieldShare{
		{Assignment, 21.98},
		{Checking, 17.48},
		{Interface, 8.17},
		{Timing, 4.46},
		{Algorithm, 40.12},
		{Function, 3.79},
		// The remaining ~4% of the original data set are build/package and
		// documentation defects, which have no code-level representation
		// and are omitted here.
	}
}

// EmulationVerdict classifies how well machine-level SWIFI can emulate a
// defect type (the paper's §5 conclusion, categories A/B/C).
type EmulationVerdict int

// Emulation verdicts.
const (
	Emulable            EmulationVerdict = iota + 1 // A: accurately emulable today
	EmulableWithSupport                             // B: emulable with new triggers/models/tools
	NotEmulable                                     // C: beyond machine-level SWIFI
)

var verdictNames = map[EmulationVerdict]string{
	Emulable:            "emulable",
	EmulableWithSupport: "emulable with new tool support",
	NotEmulable:         "not emulable by SWIFI",
}

// String returns a human-readable verdict.
func (v EmulationVerdict) String() string {
	if s, ok := verdictNames[v]; ok {
		return s
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// VerdictFor returns the paper's emulation verdict for a defect type.
func VerdictFor(d DefectType) EmulationVerdict {
	switch d {
	case Assignment, Checking:
		return Emulable
	case Interface:
		// "Interface faults are somehow similar to assignment faults ...
		// and some of them can be emulated."
		return EmulableWithSupport
	case Timing:
		// "heavily dependent on the specific fault."
		return EmulableWithSupport
	case Algorithm, Function:
		return NotEmulable
	}
	return NotEmulable
}

// NotEmulableShare returns the percentage of field faults whose type the
// paper concludes cannot be emulated (algorithm + function ≈ 44%).
func NotEmulableShare() float64 {
	var total float64
	for _, fs := range FieldDistribution() {
		if VerdictFor(fs.Type) == NotEmulable {
			total += fs.Share
		}
	}
	return total
}
