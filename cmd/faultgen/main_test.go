package main

import (
	"path/filepath"
	"testing"

	"repro/internal/telemetry"
)

func TestRunSummary(t *testing.T) {
	if err := run([]string{"JB.team11"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPlans(t *testing.T) {
	for _, class := range []string{"assign", "check", "hardware"} {
		if err := run([]string{"-class", class, "-n", "2", "JB.team11"}); err != nil {
			t.Fatalf("%s: %v", class, err)
		}
	}
}

func TestRunJSON(t *testing.T) {
	if err := run([]string{"-class", "assign", "-n", "1", "-json", "JB.team11"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMetrics(t *testing.T) {
	if err := run([]string{"-metrics", "C.team1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunVersion(t *testing.T) {
	if err := run([]string{"-version"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunReport: planning with -report records the plan counter per program.
func TestRunReport(t *testing.T) {
	repPath := filepath.Join(t.TempDir(), "report.json")
	if err := run([]string{"-class", "assign", "-n", "1", "-report", repPath, "JB.team11", "C.team1"}); err != nil {
		t.Fatal(err)
	}
	rep, err := telemetry.ReadReport(repPath)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tool != "faultgen" || rep.Units.Total != 2 {
		t.Errorf("report = tool %q units %+v", rep.Tool, rep.Units)
	}
	if rep.Counters["faultgen_plans_total"] != 2 {
		t.Errorf("faultgen_plans_total = %d, want 2", rep.Counters["faultgen_plans_total"])
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing program accepted")
	}
	if err := run([]string{"nope"}); err == nil {
		t.Error("unknown program accepted")
	}
	if err := run([]string{"-class", "zap", "JB.team11"}); err == nil {
		t.Error("unknown class accepted")
	}
}
