package main

import "testing"

func TestRunListPrograms(t *testing.T) {
	if err := run([]string{"-programs"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCamelot(t *testing.T) {
	if err := run([]string{"C.team1", "1", "0", "0", "7", "7"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFaultyAndTrace(t *testing.T) {
	if err := run([]string{"-faulty", "-trace", "4", "JB.team7", "5", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDisasm(t *testing.T) {
	if err := run([]string{"-disasm", "JB.team11"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("no program accepted")
	}
	if err := run([]string{"nope"}); err == nil {
		t.Error("unknown program accepted")
	}
	if err := run([]string{"C.team1", "abc"}); err == nil {
		t.Error("bad integer accepted")
	}
	if err := run([]string{"-faulty", "SOR"}); err == nil {
		t.Error("faulty SOR accepted (has no fault)")
	}
}
