package cc_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/vm"
)

// This file property-tests the compiler against a reference evaluator:
// random expression trees are compiled, run on the VM, and compared with
// direct Go evaluation under C semantics (int32 wrap-around, truncating
// division). Division and modulo by zero are avoided by construction.

// exprNode is a randomly generated expression with its expected value.
type exprNode struct {
	src string
	val int32
}

// genExpr builds a random expression of the given depth budget.
func genExpr(rng *rand.Rand, depth int) exprNode {
	if depth <= 0 || rng.Intn(4) == 0 {
		v := int32(rng.Intn(2001) - 1000)
		if v < 0 {
			// Negative literals parse as unary minus on a literal; wrap in
			// parens so they can appear as operands anywhere.
			return exprNode{src: fmt.Sprintf("(%d)", v), val: v}
		}
		return exprNode{src: fmt.Sprintf("%d", v), val: v}
	}
	switch rng.Intn(9) {
	case 0, 1:
		x := genExpr(rng, depth-1)
		y := genExpr(rng, depth-1)
		return exprNode{src: "(" + x.src + " + " + y.src + ")", val: x.val + y.val}
	case 2, 3:
		x := genExpr(rng, depth-1)
		y := genExpr(rng, depth-1)
		return exprNode{src: "(" + x.src + " - " + y.src + ")", val: x.val - y.val}
	case 4:
		x := genExpr(rng, depth-1)
		y := genExpr(rng, depth-1)
		return exprNode{src: "(" + x.src + " * " + y.src + ")", val: x.val * y.val}
	case 5:
		x := genExpr(rng, depth-1)
		y := genExpr(rng, depth-1)
		if y.val == 0 {
			return exprNode{src: "(" + x.src + " / 7)", val: x.val / 7}
		}
		return exprNode{src: "(" + x.src + " / " + y.src + ")", val: x.val / y.val}
	case 6:
		x := genExpr(rng, depth-1)
		y := genExpr(rng, depth-1)
		if y.val == 0 {
			return exprNode{src: "(" + x.src + " % 13)", val: x.val % 13}
		}
		return exprNode{src: "(" + x.src + " % " + y.src + ")", val: x.val % y.val}
	case 7:
		x := genExpr(rng, depth-1)
		return exprNode{src: "(-" + x.src + ")", val: -x.val}
	default:
		x := genExpr(rng, depth-1)
		y := genExpr(rng, depth-1)
		ops := []struct {
			op string
			f  func(a, b int32) bool
		}{
			{"<", func(a, b int32) bool { return a < b }},
			{"<=", func(a, b int32) bool { return a <= b }},
			{">", func(a, b int32) bool { return a > b }},
			{">=", func(a, b int32) bool { return a >= b }},
			{"==", func(a, b int32) bool { return a == b }},
			{"!=", func(a, b int32) bool { return a != b }},
		}
		o := ops[rng.Intn(len(ops))]
		v := int32(0)
		if o.f(x.val, y.val) {
			v = 1
		}
		return exprNode{src: "(" + x.src + " " + o.op + " " + y.src + ")", val: v}
	}
}

// TestCompilerExpressionProperty compiles and runs 120 random expressions,
// comparing the VM result with the reference value.
func TestCompilerExpressionProperty(t *testing.T) {
	n := 120
	if testing.Short() {
		n = 20
	}
	rng := rand.New(rand.NewSource(20000625)) // DSN 2000, June 25
	for i := 0; i < n; i++ {
		e := genExpr(rng, 4)
		src := "int main() { print_int(" + e.src + "); return 0; }"
		c, err := cc.Compile(src)
		if err != nil {
			t.Fatalf("expr %d: compile %q: %v", i, e.src, err)
		}
		m := vm.New(vm.Config{})
		if err := m.Load(c.Prog.Image); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if m.State() != vm.StateHalted {
			t.Fatalf("expr %d %q: state %v", i, e.src, m.State())
		}
		want := fmt.Sprintf("%d\n", e.val)
		if got := string(m.Output()); got != want {
			t.Errorf("expr %d: %s = %q, want %q", i, e.src, strings.TrimSpace(got), strings.TrimSpace(want))
		}
	}
}

// TestCompilerStatementProperty checks randomly generated straight-line
// programs over a handful of int variables against a Go interpreter of the
// same statements.
func TestCompilerStatementProperty(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 10
	}
	rng := rand.New(rand.NewSource(42))
	vars := []string{"a", "b", "c", "d"}
	for i := 0; i < n; i++ {
		env := map[string]int32{}
		var body strings.Builder
		for _, v := range vars {
			init := int32(rng.Intn(100))
			fmt.Fprintf(&body, "    int %s = %d;\n", v, init)
			env[v] = init
		}
		stmts := 3 + rng.Intn(8)
		for s := 0; s < stmts; s++ {
			dst := vars[rng.Intn(len(vars))]
			x := vars[rng.Intn(len(vars))]
			y := vars[rng.Intn(len(vars))]
			switch rng.Intn(4) {
			case 0:
				fmt.Fprintf(&body, "    %s = %s + %s;\n", dst, x, y)
				env[dst] = env[x] + env[y]
			case 1:
				fmt.Fprintf(&body, "    %s = %s - %s;\n", dst, x, y)
				env[dst] = env[x] - env[y]
			case 2:
				fmt.Fprintf(&body, "    %s = %s * %s;\n", dst, x, y)
				env[dst] = env[x] * env[y]
			case 3:
				k := int32(1 + rng.Intn(9))
				fmt.Fprintf(&body, "    if (%s > %s) { %s = %s %% %d; }\n", x, y, dst, dst, k)
				if env[x] > env[y] {
					env[dst] = env[dst] % k
				}
			}
		}
		var want strings.Builder
		for _, v := range vars {
			fmt.Fprintf(&body, "    print_int(%s);\n", v)
			fmt.Fprintf(&want, "%d\n", env[v])
		}
		src := "int main() {\n" + body.String() + "    return 0;\n}"
		c, err := cc.Compile(src)
		if err != nil {
			t.Fatalf("program %d: %v\n%s", i, err, src)
		}
		m := vm.New(vm.Config{})
		if err := m.Load(c.Prog.Image); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if got := string(m.Output()); got != want.String() {
			t.Errorf("program %d output %q, want %q\n%s", i, got, want.String(), src)
		}
	}
}
