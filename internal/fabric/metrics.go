package fabric

import (
	"fmt"

	"repro/internal/telemetry"
)

// NewMetrics registers the coordinator's instrument bundle on reg under the
// fabric_* namespace; a nil registry yields nil (metrics off). Every CLI
// that hosts a coordinator uses this bundle, so the /metrics surface and
// the end-of-run report name the same series everywhere.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Hosts:       reg.Gauge("fabric_hosts"),
		Assigned:    reg.Counter("fabric_units_assigned_total"),
		Steals:      reg.Counter("fabric_steals_total"),
		Redelivered: reg.Counter("fabric_units_redelivered_total"),
		HostDeaths:  reg.Counter("fabric_host_deaths_total"),
		Quarantines: reg.Counter("fabric_quarantines_total"),
		Resumed:     reg.Counter("fabric_sessions_resumed_total"),
		BadFrames:   reg.Counter("fabric_frames_rejected_total"),
		HostUnits: func(host string) *telemetry.Counter {
			return reg.Counter(fmt.Sprintf(`fabric_host_units_total{host=%q}`, host))
		},
	}
}

// NewExecutorMetrics registers the executor-side instruments on reg; a nil
// registry yields nil.
func NewExecutorMetrics(reg *telemetry.Registry) *ExecutorMetrics {
	if reg == nil {
		return nil
	}
	return &ExecutorMetrics{
		Reconnects: reg.Counter("fabric_reconnects_total"),
		Resumes:    reg.Counter("fabric_session_resumes_total"),
	}
}
