// Package golden runs each (program, test case) pair once fault-free and
// records everything a fault-injection campaign can reuse: the run's outcome
// (output, final state, cycle count), the execution count and first-arrival
// cycle of every planned trigger address, and a machine checkpoint
// (vm.Snapshot) taken at each first arrival plus a few fixed cycle
// quantiles.
//
// The record makes two fast paths sound for every injection of the same
// (program, case):
//
//   - Dormant shortcut: an injected run is byte-identical to the golden run
//     up to the first application of a corruption. If no trigger address
//     executes often enough to apply (Count <= Skip for all of them), the
//     corruption never applies and the injected run IS the golden run — no
//     execution needed.
//   - Fast-forward: otherwise the injected run can start from the latest
//     checkpoint at or before the first arrival of any executed trigger
//     address. Before that point zero trigger addresses have executed, so
//     the injector's per-address execution counters — which restart at zero
//     after a restore — count exactly what they would have counted in a
//     full run, for any Skip/Once policy.
//
// Records are built on demand, once, under single-flight, and are immutable
// afterwards; any number of campaign workers may read them concurrently.
package golden

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"repro/internal/cc"
	"repro/internal/telemetry"
	"repro/internal/vm"
	"repro/internal/workload"
)

// WatchSet is a canonicalised set of instruction addresses to watch during a
// golden run: the union of every planned trigger address of a campaign over
// one program. Its hash is part of the record's identity, so campaigns with
// different plans do not share records built for the wrong address set.
type WatchSet struct {
	addrs []uint32
	key   uint64
}

// NewWatchSet sorts, dedups and fingerprints the addresses.
func NewWatchSet(addrs []uint32) WatchSet {
	s := append([]uint32(nil), addrs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:0]
	var last uint32
	for i, a := range s {
		if i == 0 || a != last {
			out = append(out, a)
			last = a
		}
	}
	h := fnv.New64a()
	var b [4]byte
	for _, a := range out {
		binary.BigEndian.PutUint32(b[:], a)
		h.Write(b[:])
	}
	return WatchSet{addrs: out, key: h.Sum64()}
}

// Addrs returns the canonical (sorted, distinct) address list.
func (w WatchSet) Addrs() []uint32 { return w.addrs }

// Checkpoint is one restartable point of a golden run.
type Checkpoint struct {
	Addr   uint32 // watched address first reached here; 0 for a cycle mark
	Cycles uint64 // completed instructions before the snapshot point
	Snap   *vm.Snapshot
	// Sum is the snapshot's Checksum at record time. The executor verifies
	// it before restoring; a mismatch means the retained snapshot no longer
	// matches what the golden run recorded (host memory corruption, or a
	// bug mutating shared state) and the unit must not fast-forward.
	Sum uint64
}

// Verify recomputes the snapshot checksum and reports whether the
// checkpoint is still intact.
func (cp *Checkpoint) Verify() bool {
	return cp.Snap != nil && cp.Snap.Checksum() == cp.Sum
}

// Record is the reusable outcome of one fault-free run.
type Record struct {
	State      vm.State
	Exc        vm.Exc
	Output     string
	Cycles     uint64
	ExitStatus int32

	// First maps each watched address that executed to the cycle count at
	// its first arrival; Count to its total number of executions.
	First map[uint32]uint64
	Count map[uint32]uint64

	// Checkpoints in increasing cycle order: one at the first arrival of
	// each executed watched address, plus the cycle-quantile marks
	// requested by the caller (for triggers not tied to a location).
	Checkpoints []Checkpoint
}

// Nearest returns the latest checkpoint taken at or before the given cycle,
// or nil if the earliest checkpoint is already past it.
func (r *Record) Nearest(cycle uint64) *Checkpoint {
	i := sort.Search(len(r.Checkpoints), func(i int) bool { return r.Checkpoints[i].Cycles > cycle })
	if i == 0 {
		return nil
	}
	return &r.Checkpoints[i-1]
}

// RestorePoint computes the fast-forward decision for a location-triggered
// fault over the given trigger addresses and Skip count: whether any
// corruption will apply at all (the fault is activated rather than dormant),
// and the latest cycle an injected run may be restored at — the minimum
// first arrival over the trigger addresses that execute. Restoring at or
// before that cycle is sound for any Skip/Once policy because no trigger
// address has executed yet, so the injector's execution counters see every
// arrival a full run would count.
func (r *Record) RestorePoint(addrs []uint32, skip uint64) (applying bool, safe uint64) {
	safe = ^uint64(0)
	for _, a := range addrs {
		n := r.Count[a]
		if n == 0 {
			continue
		}
		if f := r.First[a]; f < safe {
			safe = f
		}
		if n > skip {
			applying = true
		}
	}
	return applying, safe
}

// Store builds and serves Records. Each (compiled program, case, watch set)
// triple is recorded at most once, under single-flight; concurrent callers
// for the same key block until the one golden run finishes. Programs and
// cases are keyed by pointer identity — programs.Program.Compile and
// workload.Cached both return canonical values, so campaign layers hit the
// same entries across runs.
type Store struct {
	mu      sync.Mutex
	entries map[storeKey]*storeEntry
	pools   sync.Map // *cc.Compiled -> *sync.Pool of *vm.Machine
	met     telemetry.GoldenMetrics
	poison  func() bool // chaos hook: corrupt the next checkpoint's sum
}

// SetMetrics installs the store's instrument bundle: golden runs recorded,
// checkpoints retained, record latency. Records built before the call are
// not retroactively counted; the zero bundle (the default) disables all of
// it. Safe to call concurrently with Run.
func (s *Store) SetMetrics(m telemetry.GoldenMetrics) {
	s.mu.Lock()
	s.met = m
	s.mu.Unlock()
}

func (s *Store) metrics() telemetry.GoldenMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.met
}

// SetPoison installs a hook consulted once per checkpoint as it is built:
// when it returns true, the checkpoint's integrity sum is corrupted on
// purpose. It is the chaos layer's handle on the store — a poisoned
// checkpoint must fail Verify in the executor and send the unit down the
// straight-execution path with an identical result, exactly as a
// genuinely rotted snapshot would. A nil fn (the default) disables it.
// Safe to call concurrently with Run.
func (s *Store) SetPoison(fn func() bool) {
	s.mu.Lock()
	s.poison = fn
	s.mu.Unlock()
}

func (s *Store) poisonFn() func() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.poison
}

type storeKey struct {
	c  *cc.Compiled
	cs *workload.Case
	ws uint64
}

type storeEntry struct {
	once sync.Once
	rec  *Record
	err  error
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{entries: make(map[storeKey]*storeEntry)}
}

// Shared is the process-wide store used by the campaign executor, so
// repeated campaigns over the same workload — including benchmark
// iterations — reuse golden runs the way they reuse calibration budgets.
var Shared = NewStore()

// Run returns the record for (c, cs, ws), building it on first use by
// running the program fault-free with the given watchdog budget. marks
// lists extra cycle counts to checkpoint at (quantiles for triggers not
// tied to a location); it is not part of the key, so callers must derive it
// deterministically from the budget.
func (s *Store) Run(c *cc.Compiled, cs *workload.Case, budget uint64, marks []uint64, ws WatchSet) (*Record, error) {
	key := storeKey{c: c, cs: cs, ws: ws.key}
	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok {
		e = &storeEntry{}
		s.entries[key] = e
	}
	s.mu.Unlock()
	e.once.Do(func() { e.rec, e.err = s.record(c, cs, budget, marks, ws) })
	return e.rec, e.err
}

func (s *Store) record(c *cc.Compiled, cs *workload.Case, budget uint64, marks []uint64, ws WatchSet) (*Record, error) {
	met := s.metrics()
	var start time.Time
	if met.RunLatency != nil {
		start = time.Now()
	}
	m, err := s.acquire(c)
	if err != nil {
		return nil, err
	}
	defer s.release(c, m)
	m.SetMaxCycles(budget)
	m.SetInput(cs.Input.Ints)
	m.SetByteInput(cs.Input.Bytes)

	rec := &Record{
		First: make(map[uint32]uint64),
		Count: make(map[uint32]uint64),
	}
	poison := s.poisonFn()
	// checksum computes the integrity sum a checkpoint is stored with,
	// flipping bits when the poison hook fires so the executor's Verify
	// rejects the checkpoint later.
	checksum := func(snap *vm.Snapshot) uint64 {
		sum := snap.Checksum()
		if poison != nil && poison() {
			sum ^= 0xdead_beef_dead_beef
		}
		return sum
	}
	m.SetWatch(ws.addrs, marks, func(mm *vm.Machine, pc uint32, cycleMark bool) {
		if cycleMark {
			snap := mm.Snapshot()
			rec.Checkpoints = append(rec.Checkpoints, Checkpoint{Cycles: mm.Cycles(), Snap: snap, Sum: checksum(snap)})
			return
		}
		n := rec.Count[pc]
		rec.Count[pc] = n + 1
		if n == 0 {
			rec.First[pc] = mm.Cycles()
			snap := mm.Snapshot()
			rec.Checkpoints = append(rec.Checkpoints, Checkpoint{Addr: pc, Cycles: mm.Cycles(), Snap: snap, Sum: checksum(snap)})
		}
	})
	if _, err := m.Run(); err != nil {
		return nil, err
	}
	rec.State = m.State()
	rec.Exc, _ = m.Exception()
	rec.Output = string(m.Output())
	rec.Cycles = m.Cycles()
	rec.ExitStatus = m.ExitStatus()
	met.Runs.Inc()
	met.Checkpoints.Add(uint64(len(rec.Checkpoints)))
	if met.RunLatency != nil {
		met.RunLatency.ObserveSince(start)
	}
	return rec, nil
}

// acquire hands out a rebooted machine for the program, reusing pooled ones.
func (s *Store) acquire(c *cc.Compiled) (*vm.Machine, error) {
	pi, _ := s.pools.LoadOrStore(c, &sync.Pool{})
	if v := pi.(*sync.Pool).Get(); v != nil {
		m := v.(*vm.Machine)
		if err := m.Reset(); err != nil {
			return nil, err
		}
		return m, nil
	}
	m := vm.New(vm.Config{})
	if err := m.Load(c.Prog.Image); err != nil {
		return nil, err
	}
	return m, nil
}

func (s *Store) release(c *cc.Compiled, m *vm.Machine) {
	// Drop the watch hook now (it closes over the record) rather than at
	// the next Reset.
	m.ClearWatch()
	if pi, ok := s.pools.Load(c); ok {
		pi.(*sync.Pool).Put(m)
	}
}

// Stats reports the store's current size: how many records it holds and the
// total checkpoints and distinct page copies they retain. Shared pages are
// counted once, so pages*1024 approximates the memory pinned by snapshots.
func (s *Store) Stats() (records, checkpoints, pages int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[*vm.Snapshot]bool)
	for _, e := range s.entries {
		if e.rec == nil {
			continue
		}
		records++
		checkpoints += len(e.rec.Checkpoints)
		for i := range e.rec.Checkpoints {
			snap := e.rec.Checkpoints[i].Snap
			if !seen[snap] {
				seen[snap] = true
				pages += snap.Pages()
			}
		}
	}
	// Pages shared across snapshots are still multiply counted here; the
	// figure is an upper bound.
	return records, checkpoints, pages
}

// Each calls fn for every completed record in the store. The iteration
// order is unspecified. Records are immutable by contract once built;
// mutating one through this hook (as the degradation tests do, to simulate
// in-store corruption) is only safe while no campaign is executing.
func (s *Store) Each(fn func(*Record)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.entries {
		if e.rec != nil {
			fn(e.rec)
		}
	}
}

// Purge drops every record, releasing the checkpoints' memory. Long-lived
// processes that sweep many distinct workloads can call it between sweeps.
func (s *Store) Purge() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = make(map[storeKey]*storeEntry)
}
