// Package fabric is the distributed campaign layer: it lifts the worker
// protocol's framing (internal/worker) off stdin/stdout onto TCP so one
// coordinator process can shard a campaign's plan-index space across
// executor processes on other hosts, work-steal from stragglers, and merge
// the verdict stream deterministically.
//
// The division of labour mirrors the single-host stack one level up. The
// coordinator plans the campaign serially (exactly as a local run would),
// listens for executors, and owns the scheduling policy: initial contiguous
// range shards weighted by each host's worker count, half-range steals when
// a host goes idle, redelivery of a dead host's unfinished units, and
// at-most-N host deaths before a unit is quarantined. Executors rebuild the
// identical plan from the spec in the hello frame — the plan itself is
// never shipped, only the Config that determines it, cross-checked by the
// plan fingerprint — and run their assigned ranges on the whole local
// stack: machine pools, golden checkpointing, the block engine, and
// optionally the process-isolation sandbox.
//
// Because verdicts are deterministic (the repository-wide bit-identical
// contract), duplicate execution is harmless: a unit that was stolen while
// in flight, or redelivered after a host died mid-range, produces the same
// verdict twice and the second copy is dropped at the merge. That is what
// keeps the scheduling policy simple — nothing needs distributed consensus,
// only the coordinator's single-threaded event loop.
//
// The wire protocol, version 2 (all integers little-endian), framed as the
// worker protocol's CRC form (length u32 | type u8 | payload | crc32 u32,
// length counting type+payload+crc, MaxFrame-bounded). Version 1 spoke the
// plain frame form over a trusted loopback; version 2 assumes the network
// itself is under fault injection, so every frame is checksummed and a
// poisoned frame severs the connection for re-establishment rather than
// desynchronizing the stream:
//
//	hello     version u16 | heartbeat-ms u32 | deadline-ms u32 |
//	          fingerprint u64 | kind-len u16 | kind | spec-len u32 | spec
//	ready     version u16 | fingerprint u64 | units u32 | workers u32 |
//	          token u64 | name-len u16 | name
//	assign    runs u32 | (start u32 | count u32)*
//	revoke    runs u32 | (start u32 | count u32)*
//	verdict   seq u32 | unit u32 | mode u8 | flags u8 |
//	          payload-len u32 | payload
//	heartbeat (empty, both directions)
//	shutdown  (empty; campaign complete, executor exits cleanly)
//	error     message (UTF-8; either side aborts the campaign)
//	welcome   token u64 | resumed u8 | acked u32
//	ack       seq u32
//
// The coordinator opens with hello; the executor answers ready after
// re-planning, echoing the negotiated version and the plan fingerprint it
// reconstructed, plus its session token — zero on a first join, the token
// from the welcome frame when re-attaching after a connection loss. The
// coordinator answers ready with welcome: the session token to present next
// time, whether the session resumed (an existing session's assignments
// survive the reconnect), and the highest verdict sequence number it has
// processed, which lets the executor prune its retransmit buffer.
//
// Assign and revoke carry run-length-encoded sorted unit sets: a fresh
// campaign's shard is one run, a resumed campaign's holes make more.
// Verdict mode/flags use the journal.Outcome wire encoding, the same bytes
// the journal appends and the worker protocol ships, so a verdict crosses
// host, supervisor and journal without translation. Each verdict carries a
// per-session sequence number, acknowledged by the coordinator only after
// the verdict is durably journaled; unacknowledged verdicts are buffered by
// the executor and retransmitted on re-attach, where the sequence number
// (and, behind it, the done-set) makes duplicate delivery idempotent.
package fabric

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"repro/internal/journal"
	"repro/internal/worker"
)

// ProtocolVersion is the fabric frame-format version sent in hello and
// echoed in ready. Mixed-build coordinator/executor pairs fail the
// handshake instead of mis-parsing frames.
const ProtocolVersion = 2

// Message types. The numbering space is independent of the worker
// protocol's — the two never share a stream.
const (
	msgHello uint8 = 1 + iota
	msgReady
	msgAssign
	msgRevoke
	msgVerdict
	msgHeartbeat
	msgShutdown
	msgError
	msgWelcome
	msgAck
)

// hello is the coordinator's opening frame.
type hello struct {
	Version           uint16
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	Spec              worker.Spec
}

// ready is the executor's handshake answer. Token is zero on a first join
// and the welcome-issued session token when re-attaching.
type ready struct {
	Version     uint16
	Fingerprint uint64
	Units       uint32
	Workers     uint32
	Token       uint64
	Name        string
}

// welcome is the coordinator's answer to ready: the session identity the
// executor keeps across reconnects, whether an existing session's
// assignments survived, and the retransmit-buffer watermark.
type welcome struct {
	Token   uint64
	Resumed bool
	Acked   uint32
}

// verdict is one completed unit crossing back to the coordinator. Seq is
// the per-session sequence number (1-based; monotone over the session's
// whole lifetime, reconnects included).
type verdict struct {
	Seq     uint32
	Unit    uint32
	Outcome journal.Outcome
	Payload []byte
}

func encodeHello(h hello) []byte {
	kind := []byte(h.Spec.Kind)
	buf := make([]byte, 0, 24+len(kind)+len(h.Spec.Payload))
	buf = binary.LittleEndian.AppendUint16(buf, h.Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.HeartbeatInterval/time.Millisecond))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.HeartbeatTimeout/time.Millisecond))
	buf = binary.LittleEndian.AppendUint64(buf, h.Spec.Fingerprint)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(kind)))
	buf = append(buf, kind...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(h.Spec.Payload)))
	buf = append(buf, h.Spec.Payload...)
	return buf
}

func decodeHello(b []byte) (hello, error) {
	var h hello
	if len(b) < 24 {
		return h, fmt.Errorf("fabric: hello frame too short (%d bytes)", len(b))
	}
	h.Version = binary.LittleEndian.Uint16(b[0:2])
	h.HeartbeatInterval = time.Duration(binary.LittleEndian.Uint32(b[2:6])) * time.Millisecond
	h.HeartbeatTimeout = time.Duration(binary.LittleEndian.Uint32(b[6:10])) * time.Millisecond
	h.Spec.Fingerprint = binary.LittleEndian.Uint64(b[10:18])
	kn := int(binary.LittleEndian.Uint16(b[18:20]))
	b = b[20:]
	if len(b) < kn+4 {
		return h, fmt.Errorf("fabric: hello frame truncated in kind")
	}
	h.Spec.Kind = string(b[:kn])
	b = b[kn:]
	pn := int(binary.LittleEndian.Uint32(b[:4]))
	b = b[4:]
	if len(b) != pn {
		return h, fmt.Errorf("fabric: hello spec length %d, frame holds %d", pn, len(b))
	}
	h.Spec.Payload = b
	return h, nil
}

func encodeReady(r ready) []byte {
	name := []byte(r.Name)
	buf := make([]byte, 0, 28+len(name))
	buf = binary.LittleEndian.AppendUint16(buf, r.Version)
	buf = binary.LittleEndian.AppendUint64(buf, r.Fingerprint)
	buf = binary.LittleEndian.AppendUint32(buf, r.Units)
	buf = binary.LittleEndian.AppendUint32(buf, r.Workers)
	buf = binary.LittleEndian.AppendUint64(buf, r.Token)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
	buf = append(buf, name...)
	return buf
}

func decodeReady(b []byte) (ready, error) {
	var r ready
	if len(b) < 28 {
		return r, fmt.Errorf("fabric: ready frame too short (%d bytes)", len(b))
	}
	r.Version = binary.LittleEndian.Uint16(b[0:2])
	r.Fingerprint = binary.LittleEndian.Uint64(b[2:10])
	r.Units = binary.LittleEndian.Uint32(b[10:14])
	r.Workers = binary.LittleEndian.Uint32(b[14:18])
	r.Token = binary.LittleEndian.Uint64(b[18:26])
	nn := int(binary.LittleEndian.Uint16(b[26:28]))
	if len(b)-28 != nn {
		return r, fmt.Errorf("fabric: ready name length %d, frame holds %d", nn, len(b)-28)
	}
	r.Name = string(b[28:])
	return r, nil
}

func encodeWelcome(w welcome) []byte {
	buf := make([]byte, 0, 13)
	buf = binary.LittleEndian.AppendUint64(buf, w.Token)
	if w.Resumed {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint32(buf, w.Acked)
	return buf
}

func decodeWelcome(b []byte) (welcome, error) {
	var w welcome
	if len(b) != 13 {
		return w, fmt.Errorf("fabric: welcome frame is %d bytes, want 13", len(b))
	}
	w.Token = binary.LittleEndian.Uint64(b[0:8])
	w.Resumed = b[8] != 0
	w.Acked = binary.LittleEndian.Uint32(b[9:13])
	return w, nil
}

func encodeAck(seq uint32) []byte {
	return binary.LittleEndian.AppendUint32(nil, seq)
}

func decodeAck(b []byte) (uint32, error) {
	if len(b) != 4 {
		return 0, fmt.Errorf("fabric: ack frame is %d bytes, want 4", len(b))
	}
	return binary.LittleEndian.Uint32(b), nil
}

func encodeVerdict(v verdict) []byte {
	buf := make([]byte, 0, 14+len(v.Payload))
	buf = binary.LittleEndian.AppendUint32(buf, v.Seq)
	buf = binary.LittleEndian.AppendUint32(buf, v.Unit)
	buf = append(buf, v.Outcome.Mode, v.Outcome.Flags())
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.Payload)))
	buf = append(buf, v.Payload...)
	return buf
}

func decodeVerdict(b []byte) (verdict, error) {
	var v verdict
	if len(b) < 14 {
		return v, fmt.Errorf("fabric: verdict frame too short (%d bytes)", len(b))
	}
	v.Seq = binary.LittleEndian.Uint32(b[0:4])
	v.Unit = binary.LittleEndian.Uint32(b[4:8])
	v.Outcome = journal.DecodeOutcome(b[8], b[9])
	pn := int(binary.LittleEndian.Uint32(b[10:14]))
	if len(b)-14 != pn {
		return v, fmt.Errorf("fabric: verdict payload length %d, frame holds %d", pn, len(b)-14)
	}
	if pn > 0 {
		v.Payload = b[14:]
	}
	return v, nil
}

// encodeRuns compresses a sorted unit-index set into run-length form: the
// assign/revoke payload. Callers must pass sorted, duplicate-free indices.
func encodeRuns(units []int) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, 0)
	runs := uint32(0)
	for i := 0; i < len(units); {
		start := units[i]
		j := i + 1
		for j < len(units) && units[j] == units[j-1]+1 {
			j++
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(start))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(j-i))
		runs++
		i = j
	}
	binary.LittleEndian.PutUint32(buf[0:4], runs)
	return buf
}

// decodeRuns expands a run-length payload back into sorted unit indices.
// maxUnits bounds the total expansion, so a hostile frame cannot make the
// receiver allocate beyond the plan's own size.
func decodeRuns(b []byte, maxUnits int) ([]int, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("fabric: run-set frame too short (%d bytes)", len(b))
	}
	runs := int(binary.LittleEndian.Uint32(b[0:4]))
	b = b[4:]
	if len(b) != runs*8 {
		return nil, fmt.Errorf("fabric: run-set claims %d runs, frame holds %d bytes", runs, len(b))
	}
	var units []int
	for i := 0; i < runs; i++ {
		start := int(binary.LittleEndian.Uint32(b[i*8 : i*8+4]))
		count := int(binary.LittleEndian.Uint32(b[i*8+4 : i*8+8]))
		if count == 0 {
			return nil, fmt.Errorf("fabric: empty run in run-set")
		}
		if len(units)+count > maxUnits {
			return nil, fmt.Errorf("fabric: run-set expands past the plan's %d units", maxUnits)
		}
		for u := start; u < start+count; u++ {
			units = append(units, u)
		}
	}
	if !sort.IntsAreSorted(units) {
		return nil, fmt.Errorf("fabric: run-set is not sorted")
	}
	return units, nil
}
