// Classcampaign runs a scaled-down version of the §6 experiment on two
// JamesB programs and prints the Figure 7/8-style failure-mode breakdown,
// demonstrating the What/Where/Which/When pipeline end to end:
// enumerate locations -> choose randomly -> expand Table 3 error types ->
// inject per input -> classify outcomes.
//
//	go run ./examples/classcampaign
package main

import (
	"fmt"
	"log"

	"repro/internal/campaign"
	"repro/internal/stats"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := campaign.Config{
		Programs:      []string{"JB.team6", "JB.team11"},
		CasesPerFault: 25,
		Seed:          2000,
	}
	fmt.Println("running a scaled §6 class campaign on JB.team6 and JB.team11 ...")
	res, err := campaign.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("done: %d injected runs\n\n", res.Runs)

	fmt.Println(stats.Table4(res).Render())
	fmt.Println(stats.Figure7(res).Render())
	fmt.Println(stats.Figure8(res).Render())
	fmt.Println(stats.Figure9(res).Render())
	fmt.Println(stats.Figure10(res).Render())

	fmt.Println("Note how much harder the injected faults hit than the real ones:")
	fmt.Println("the faulty JB.team6 produced 0.05% wrong results under intensive")
	fmt.Println("test (Table 1), while injected faults leave only a fraction of")
	fmt.Println("runs correct — the paper attributes the gap to the fault triggers.")
	return nil
}
