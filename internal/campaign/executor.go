package campaign

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/cc"
	"repro/internal/fault"
	"repro/internal/golden"
	"repro/internal/injector"
	"repro/internal/journal"
	"repro/internal/parallel"
	"repro/internal/programs"
	"repro/internal/telemetry"
	"repro/internal/vm"
	"repro/internal/workload"
)

// This file is the parallel campaign executor. Every injection of the
// paper's experiments is an independent run — a freshly rebooted machine, a
// deterministic input, one armed fault — so the execution of a campaign
// shards perfectly across workers. The design keeps all randomness in
// planning, which stays serial, and fans out only the runs: results are
// written into per-unit slots and aggregated in planning order, so a
// campaign's Result is bit-identical for any worker count.
//
// The per-worker machinePool supplies the other half of the speed-up:
// instead of allocating a fresh 1 MiB machine per injection (the literal
// reading of "the target system is rebooted between injections"), each
// worker keeps one loaded machine per compiled program and reboots it with
// vm.(*Machine).Reset, which restores the post-Load state without
// reallocating the memory or decode arrays.

// machinePool caches loaded machines per compiled program. Each executor
// worker owns exactly one pool, so pools need no locking. degraded counts
// checkpoint-integrity fallbacks taken on this pool (see noteDegraded).
type machinePool struct {
	machines map[*cc.Compiled]*vm.Machine
	degraded int
	// interpOnly is stamped onto every handed-out machine; see
	// Config.InterpOnly.
	interpOnly bool
	// met/w are the owning worker's metric bundle and shard index; both are
	// zero for pools outside an instrumented campaign (calibration, clean
	// batches, worker subprocesses), making every count below a no-op.
	met *campMetrics
	w   int
}

// ffwd counter helpers; nil-safe through campMetrics.
func (p *machinePool) countFfwdHit() {
	if p.met != nil {
		p.met.ffwdHits.AddShard(p.w, 1)
	}
}

func (p *machinePool) countFfwdMiss() {
	if p.met != nil {
		p.met.ffwdMisses.AddShard(p.w, 1)
	}
}

func (p *machinePool) countDormantSkip() {
	if p.met != nil {
		p.met.dormantSkips.AddShard(p.w, 1)
	}
}

// degradeLogOnce gates the one diagnostic line degraded-mode execution
// prints: the event is surfaced per-run in the result's ExecStats, so the
// log exists to timestamp the first occurrence, not to spam one line per
// affected unit.
var degradeLogOnce sync.Once

// noteDegraded records that a golden checkpoint could not be used — its
// integrity hash no longer matched, or the restore failed — and the unit
// fell back to straight (full replay) execution. The outcome of the unit is
// unaffected: the fast path is an execution shortcut, so skipping it
// changes timing only.
func (p *machinePool) noteDegraded(reason string) {
	p.degraded++
	degradeLogOnce.Do(func() {
		fmt.Fprintf(os.Stderr, "campaign: degraded mode: %s; falling back to straight execution (counted in the run summary, logged once)\n", reason)
	})
}

func newMachinePool() *machinePool {
	return &machinePool{machines: make(map[*cc.Compiled]*vm.Machine)}
}

// acquire returns a ready (rebooted) machine for the compiled program with
// the input and watchdog budget installed.
func (p *machinePool) acquire(c *cc.Compiled, in programs.Input, maxCycles uint64) (*vm.Machine, error) {
	m, ok := p.machines[c]
	if !ok {
		m = vm.New(vm.Config{})
		if err := m.Load(c.Prog.Image); err != nil {
			return nil, err
		}
		p.machines[c] = m
	} else if err := m.Reset(); err != nil {
		return nil, err
	}
	m.SetInterpOnly(p.interpOnly)
	m.SetMaxCycles(maxCycles)
	m.SetCycleQuota(hardQuota(maxCycles))
	m.SetInput(in.Ints)
	m.SetByteInput(in.Bytes)
	return m, nil
}

// restored hands out a pooled machine rewound to a golden-run checkpoint
// instead of rebooted: the fast-forward path of the checkpointed executor.
func (p *machinePool) restored(c *cc.Compiled, cp *golden.Checkpoint, maxCycles uint64) (*vm.Machine, error) {
	m, ok := p.machines[c]
	if !ok {
		m = vm.New(vm.Config{})
		if err := m.Load(c.Prog.Image); err != nil {
			return nil, err
		}
		p.machines[c] = m
	}
	if err := m.Restore(cp.Snap); err != nil {
		return nil, err
	}
	m.SetInterpOnly(p.interpOnly)
	m.SetMaxCycles(maxCycles)
	m.SetCycleQuota(hardQuota(maxCycles))
	return m, nil
}

// runClean executes one clean run on a pooled machine.
func (p *machinePool) runClean(c *cc.Compiled, cs *workload.Case, maxCycles uint64) (RunResult, error) {
	m, err := p.acquire(c, cs.Input, maxCycles)
	if err != nil {
		return RunResult{}, err
	}
	if _, err := m.Run(); err != nil {
		return RunResult{}, err
	}
	_, res := classify(m, cs.Golden)
	return res, nil
}

// runWithFault executes one injected run on a pooled machine: the straight
// path — reboot, arm, replay the whole run.
func (p *machinePool) runWithFault(c *cc.Compiled, cs *workload.Case, f *fault.Fault, mode injector.Mode, maxCycles uint64) (RunResult, error) {
	m, err := p.acquire(c, cs.Input, maxCycles)
	if err != nil {
		return RunResult{}, err
	}
	s, err := injector.Arm(m, mode, f)
	if err != nil {
		return RunResult{}, err
	}
	if _, err := m.Run(); err != nil {
		return RunResult{}, err
	}
	_, res := classify(m, cs.Golden)
	res.Activations = s.Activations()
	return res, nil
}

// runFastForward executes one injection over the golden record: dormant
// faults reuse the recorded outcome outright, activated faults restore the
// nearest checkpoint before the first trigger arrival and run only the
// suffix. The outcome is identical to runWithFault (see the soundness
// argument in package golden and TestFastForwardMatchesStraightRun); only
// RunResult.Activations degrades to an at-least-once indicator when the
// fault was armed leanly.
func (p *machinePool) runFastForward(u *runUnit) (RunResult, error) {
	if u.f.Trigger.Kind != fault.TriggerOnLocation {
		// At-start faults apply before the first instruction; there is no
		// fault-free prefix to skip.
		return p.runWithFault(u.c, u.cs, u.f, u.mode, u.budget)
	}
	rec, err := u.gold.store.Run(u.c, u.cs, u.budget, quantileMarks(u.budget), u.gold.ws)
	if err != nil {
		return RunResult{}, err
	}
	applying, safe := rec.RestorePoint(u.f.TriggerAddrs(), uint64(u.f.Trigger.Skip))
	if !applying {
		// Dormant: the corruption never applies, so the injected run is the
		// golden run. Arm on a rebooted machine anyway — arming has its own
		// observable failures (e.g. breakpoint exhaustion) that must stay
		// identical to the straight path — then skip the execution.
		m, err := p.acquire(u.c, u.cs.Input, u.budget)
		if err != nil {
			return RunResult{}, err
		}
		if _, err := injector.Arm(m, u.mode, u.f); err != nil {
			return RunResult{}, err
		}
		p.countDormantSkip()
		return resultFromRecord(rec, u.cs.Golden), nil
	}
	cp := rec.Nearest(safe)
	if cp == nil {
		p.countFfwdMiss()
		return p.runWithFault(u.c, u.cs, u.f, u.mode, u.budget)
	}
	// Degraded-mode checkpointing: a checkpoint whose integrity hash no
	// longer matches its snapshot, or whose restore errors, must not be
	// trusted — restoring it would replay the injection on corrupted state.
	// Both cases fall back to the straight path (reboot + full replay),
	// which produces the identical outcome at fast-forward's cost.
	if !cp.Verify() {
		p.noteDegraded(fmt.Sprintf("golden checkpoint for %s case %d failed its integrity check", u.program, u.caseIx))
		p.countFfwdMiss()
		return p.runWithFault(u.c, u.cs, u.f, u.mode, u.budget)
	}
	m, err := p.restored(u.c, cp, u.budget)
	if err != nil {
		p.noteDegraded(fmt.Sprintf("golden checkpoint restore for %s case %d failed: %v", u.program, u.caseIx, err))
		p.countFfwdMiss()
		return p.runWithFault(u.c, u.cs, u.f, u.mode, u.budget)
	}
	p.countFfwdHit()
	lean, err := injector.ArmLean(m, u.mode, u.f)
	if err != nil {
		return RunResult{}, err
	}
	var s *injector.Session
	if !lean {
		if s, err = injector.Arm(m, u.mode, u.f); err != nil {
			return RunResult{}, err
		}
	}
	if _, err := m.Run(); err != nil {
		return RunResult{}, err
	}
	_, res := classify(m, u.cs.Golden)
	if lean {
		// Planted corruptions are not intercepted, so there is no exact
		// count; the restore point guarantees at least one application.
		res.Activations = 1
	} else {
		res.Activations = s.Activations()
	}
	return res, nil
}

// goldenSource tells the executor how to fast-forward a unit: which store
// holds the golden records and the watch set they were (or will be)
// recorded under. Units with a nil source take the straight path.
type goldenSource struct {
	store *golden.Store
	ws    golden.WatchSet
}

// newGoldenSource builds the per-program source from every planned fault's
// trigger addresses. It returns nil — disabling fast-forward — when no
// fault is location-triggered.
func newGoldenSource(faults ...[]fault.Fault) *goldenSource {
	var addrs []uint32
	for _, fs := range faults {
		for fi := range fs {
			f := &fs[fi]
			if f.Trigger.Kind == fault.TriggerOnLocation {
				addrs = append(addrs, f.TriggerAddrs()...)
			}
		}
	}
	if len(addrs) == 0 {
		return nil
	}
	return &goldenSource{store: golden.Shared, ws: golden.NewWatchSet(addrs)}
}

// runUnit is one injection of a planned campaign: the (program, fault,
// input) triple plus its calibrated watchdog budget and the index of the
// Entry it aggregates into. cs points into the canonical case slice — the
// golden store keys records by that pointer. A non-nil gold enables the
// checkpointed fast path.
type runUnit struct {
	program string
	c       *cc.Compiled
	f       *fault.Fault
	cs      *workload.Case
	caseIx  int
	budget  uint64
	mode    injector.Mode
	entry   int
	gold    *goldenSource
}

// unitOutcome is the per-run data an Entry aggregates, plus the resilience
// flags the run summary and the journal carry. The zero value (mode 0) is
// reserved for "not executed": an interrupted campaign leaves the slots of
// unreached units zero, and the partial aggregation skips them.
type unitOutcome struct {
	mode      FailureMode
	activated bool
	degraded  bool // a golden checkpoint failed integrity/restore; unit ran straight
	retried   bool // first attempt panicked host-side; retry on a fresh machine succeeded
	// replayed marks an outcome taken from the journal instead of executed
	// this run. It is execution provenance, not part of the unit's result, so
	// it is never journaled — a journal replayed twice still says "replayed"
	// each time about its own run.
	replayed bool
}

func (o unitOutcome) journal() journal.Outcome {
	return journal.Outcome{Mode: uint8(o.mode), Activated: o.activated, Degraded: o.degraded, Retried: o.retried}
}

func outcomeFromJournal(o journal.Outcome) unitOutcome {
	return unitOutcome{mode: FailureMode(o.Mode), activated: o.Activated, degraded: o.Degraded, retried: o.Retried}
}

// execOpts is the resilience configuration of one executor invocation. The
// zero value reproduces the legacy behaviour: background context, no
// journal, no wall-clock deadline.
type execOpts struct {
	ctx         context.Context
	workers     int
	journal     *journal.Journal // completed units are appended; journaled units replayed
	unitTimeout time.Duration    // host wall-clock deadline per unit attempt; 0 = off
	interpOnly  bool             // force the interpreter on pooled machines (A/B reference)
	// prefill, when non-nil, carries outcomes already obtained elsewhere
	// (the proc path's circuit-breaker fallback): non-zero slots are taken
	// as done instead of executed. Prefilled slots were already counted by
	// whoever obtained them, so the metric/trace paths below skip them.
	prefill []unitOutcome
	// met/tracer instrument execution; both nil outside telemetry-carrying
	// campaigns (the zero value keeps the legacy behaviour and cost).
	met    *campMetrics
	tracer *telemetry.Tracer
}

// executeUnits fans the planned units out over the worker pool and returns
// their outcomes in unit order. Each worker keeps its own machine pool.
func executeUnits(workers int, units []runUnit) ([]unitOutcome, error) {
	return executeUnitsOpts(execOpts{workers: workers}, units)
}

// executeUnitsOpts is the resilient executor behind every campaign:
//
//   - Units already on the journal are replayed from it, not executed —
//     the resume half of crash-safe campaigns.
//   - Each executed unit runs with per-unit isolation (see runIsolated):
//     host panics are retried once on a fresh machine and then quarantined
//     as HostFault verdicts instead of crashing the process.
//   - Completed units are appended to the journal as they finish, so a kill
//     at any point loses at most in-flight work.
//   - Cancelling ctx stops the hand-out, drains in-flight units (and their
//     journal appends), and returns the partial outcome slots alongside the
//     context error — the graceful-shutdown half.
//
// On a fatal (non-panic) unit error the outcomes are nil, as before; on
// cancellation they are partial, with unreached slots left at mode 0.
func executeUnitsOpts(o execOpts, units []runUnit) ([]unitOutcome, error) {
	ctx := o.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]unitOutcome, len(units))
	todo := make([]int, 0, len(units))
	for i := range units {
		if o.prefill != nil && o.prefill[i].mode != 0 {
			out[i] = o.prefill[i]
			continue
		}
		if o.journal != nil {
			if jo, ok := o.journal.Done(i); ok {
				out[i] = outcomeFromJournal(jo)
				out[i].replayed = true
				o.met.noteReplayed(out[i])
				if o.tracer != nil {
					e := traceUnit(telemetry.KindReplayed, i, &units[i], 0)
					e.Mode = out[i].mode.String()
					o.tracer.Emit(e)
				}
				continue
			}
		}
		todo = append(todo, i)
	}
	if len(todo) == 0 {
		return out, nil
	}
	ex := &unitExecutor{
		opts:  o,
		units: units,
		out:   out,
		pools: make([]*machinePool, parallel.DefaultWorkers(o.workers)),
	}
	err := parallel.ForEachCtx(ctx, o.workers, len(todo), func(w, k int) error {
		return ex.run(w, todo[k])
	})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return out, err
		}
		return nil, err
	}
	return out, nil
}

// unitExecutor carries the per-invocation state of executeUnitsOpts. Worker
// w touches only pools[w] and the out slots of indices it claimed, so the
// struct needs no locking.
type unitExecutor struct {
	opts  execOpts
	units []runUnit
	out   []unitOutcome
	pools []*machinePool
}

func (e *unitExecutor) pool(w int) *machinePool {
	if e.pools[w] == nil {
		e.pools[w] = newMachinePool()
		e.pools[w].met, e.pools[w].w = e.opts.met, w
		e.pools[w].interpOnly = e.opts.interpOnly
	}
	return e.pools[w]
}

// discard drops worker w's machine pool. Called after a host panic or an
// abandoned (timed-out) attempt: the pooled machines may hold corrupted
// state — or still be owned by the abandoned goroutine — and must never be
// handed to another unit.
func (e *unitExecutor) discard(w int) { e.pools[w] = nil }

// run executes one unit with isolation, observes it, and journals the
// outcome. The observability block is bracketed on e.opts.met/tracer being
// nil, so the uninstrumented path pays two pointer checks and no time.Now.
func (e *unitExecutor) run(w, i int) error {
	u := &e.units[i]
	observed := e.opts.met != nil || e.opts.tracer != nil
	var start time.Time
	if observed {
		start = time.Now()
		if e.opts.tracer != nil {
			e.opts.tracer.Emit(traceUnit(telemetry.KindDispatched, i, u, w))
		}
	}
	o, err := e.runIsolated(w, u)
	if err != nil {
		return fmt.Errorf("campaign: %s %s case %d: %w", u.program, u.f.ID, u.caseIx, err)
	}
	if observed {
		dur := time.Since(start)
		e.opts.met.noteVerdict(w, o)
		if e.opts.met != nil {
			e.opts.met.unitLatency.Observe(uint64(dur.Microseconds()))
		}
		emitOutcomeTrace(e.opts.tracer, i, u, w, o, dur)
	}
	e.out[i] = o
	if e.opts.journal != nil {
		if err := e.opts.journal.Append(i, o.journal()); err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
	}
	return nil
}

// runIsolated is the per-unit isolation policy of the tentpole: a host-side
// panic in one injection is retried exactly once on a fresh machine (the
// worker's whole pool is discarded — a panicking decode may have corrupted
// any pooled machine), and a second panic — or a wall-clock timeout —
// quarantines the unit as a HostFault verdict instead of killing the
// campaign. Ordinary unit errors (arm failures and the like) stay fatal,
// exactly as before.
func (e *unitExecutor) runIsolated(w int, u *runUnit) (unitOutcome, error) {
	pool := e.pool(w)
	d0 := pool.degraded
	r, err, timedOut := e.attempt(pool, u, 1)
	if timedOut {
		e.discard(w)
		quarantineLog(u, fmt.Sprintf("exceeded the %v unit deadline; abandoned", e.opts.unitTimeout), nil)
		return unitOutcome{mode: HostFault}, nil
	}
	if errors.Is(err, vm.ErrCycleQuota) {
		// The hard instruction quota only fires when watchdog accounting is
		// itself broken; the unit's machine state cannot be trusted and a
		// retry would spin just as long. Deterministic quarantine, no retry.
		e.discard(w)
		quarantineLog(u, fmt.Sprintf("hard cycle quota: %v", err), nil)
		return unitOutcome{mode: HostFault}, nil
	}
	var pe *parallel.PanicError
	if !errors.As(err, &pe) {
		if err != nil {
			return unitOutcome{}, err
		}
		return unitOutcome{mode: r.Mode, activated: r.Activations > 0, degraded: pool.degraded > d0}, nil
	}

	// First attempt panicked host-side: retry once, on a brand-new pool.
	e.discard(w)
	fresh := e.pool(w)
	d1 := fresh.degraded
	r2, err2, timedOut2 := e.attempt(fresh, u, 2)
	if timedOut2 {
		e.discard(w)
		quarantineLog(u, fmt.Sprintf("retry exceeded the %v unit deadline; abandoned", e.opts.unitTimeout), nil)
		return unitOutcome{mode: HostFault}, nil
	}
	if errors.Is(err2, vm.ErrCycleQuota) {
		e.discard(w)
		quarantineLog(u, fmt.Sprintf("hard cycle quota on retry: %v", err2), nil)
		return unitOutcome{mode: HostFault}, nil
	}
	var pe2 *parallel.PanicError
	if errors.As(err2, &pe2) {
		e.discard(w)
		quarantineLog(u, fmt.Sprintf("host panic on fresh machine after panic %v: %v", pe.Value, pe2.Value), pe2.Stack)
		return unitOutcome{mode: HostFault}, nil
	}
	if err2 != nil {
		return unitOutcome{}, err2
	}
	return unitOutcome{mode: r2.Mode, activated: r2.Activations > 0, degraded: fresh.degraded > d1, retried: true}, nil
}

// attempt executes one unit attempt, optionally bounded by the host
// wall-clock watchdog. With a deadline armed the attempt runs on its own
// goroutine; on expiry the goroutine is abandoned (it writes only into its
// own channel and the discarded pool, so nothing races) and the unit is
// reported timed out. Without a deadline the attempt runs inline — the
// deterministic default.
func (e *unitExecutor) attempt(pool *machinePool, u *runUnit, attempt int) (RunResult, error, bool) {
	if e.opts.unitTimeout <= 0 {
		r, err := runUnitGuarded(pool, u, attempt)
		return r, err, false
	}
	type res struct {
		r   RunResult
		err error
	}
	ch := make(chan res, 1)
	go func() {
		r, err := runUnitGuarded(pool, u, attempt)
		ch <- res{r, err}
	}()
	t := time.NewTimer(e.opts.unitTimeout)
	defer t.Stop()
	select {
	case v := <-ch:
		return v.r, v.err, false
	case <-t.C:
		return RunResult{}, nil, true
	}
}

// runUnitGuarded executes one unit attempt with panic isolation: a panic
// anywhere in the interpreter, injector or golden-store path comes back as
// a *parallel.PanicError instead of unwinding the worker.
func runUnitGuarded(pool *machinePool, u *runUnit, attempt int) (r RunResult, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &parallel.PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	if h := testUnitHook; h != nil {
		h(u, attempt)
	}
	if u.gold != nil {
		return pool.runFastForward(u)
	}
	return pool.runWithFault(u.c, u.cs, u.f, u.mode, u.budget)
}

// testUnitHook, when non-nil (tests only), runs before every unit attempt;
// it may panic or stall to exercise the isolation machinery.
var testUnitHook func(u *runUnit, attempt int)

// quarantineLog records a quarantined unit on stderr with its fault
// descriptor and, for panics, the captured stack. The per-mode tallies only
// say how many units were lost; this is where to look up which.
func quarantineLog(u *runUnit, reason string, stack []byte) {
	fmt.Fprintf(os.Stderr, "campaign: host fault quarantined: program %s fault %s case %d: %s\n",
		u.program, u.f.ID, u.caseIx, reason)
	if len(stack) > 0 {
		os.Stderr.Write(stack)
	}
}

// RunCleanBatch executes the program over every case with no fault armed,
// fanning the runs across workers with pooled machines. Results are in
// case order, identical to calling RunClean per case.
func RunCleanBatch(c *cc.Compiled, cases []workload.Case, maxCycles uint64, workers int) ([]RunResult, error) {
	return RunCleanBatchCtx(context.Background(), c, cases, maxCycles, workers)
}

// RunCleanBatchCtx is RunCleanBatch with cooperative cancellation: once ctx
// is done no new case starts, in-flight cases drain, and the ctx error is
// returned (results are dropped — clean batches are cheap to redo and have
// no journal).
func RunCleanBatchCtx(ctx context.Context, c *cc.Compiled, cases []workload.Case, maxCycles uint64, workers int) ([]RunResult, error) {
	pools := make([]*machinePool, parallel.DefaultWorkers(workers))
	return parallel.MapCtx(ctx, workers, len(cases), func(w, i int) (RunResult, error) {
		if pools[w] == nil {
			pools[w] = newMachinePool()
		}
		return pools[w].runClean(c, &cases[i], maxCycles)
	})
}

// Watchdog budget formula (see CalibrateCycles): budget = clean-run cycles
// times budgetFactor plus budgetSlack.
const (
	budgetFactor = 3
	budgetSlack  = 50_000
)

// hardQuota derives a unit's hard instruction quota from its watchdog
// budget. The quota sits strictly above the watchdog, so on a healthy host
// it never fires — a hang is always classified by the watchdog as the
// target's own failure mode first. It is the backstop for the pathological
// case where watchdog accounting itself is corrupted (a host bug, not a
// target fault): vm.Run then stops at the quota with vm.ErrCycleQuota and
// runIsolated quarantines the unit as a HostFault instead of spinning the
// worker forever.
const quotaFactor = 4

func hardQuota(maxCycles uint64) uint64 {
	if maxCycles == 0 {
		maxCycles = vm.DefaultMaxCycles // SetMaxCycles treats 0 the same way
	}
	return maxCycles*quotaFactor + budgetSlack
}

// quantileMarks derives the cycle counts the golden runner checkpoints at
// for triggers not tied to a location: the quartiles of the calibrated
// clean-run length, recovered by inverting the budget formula. Location
// faults never use these (the first-arrival checkpoint is always at least
// as good), but skip/random-trigger policies added later can.
func quantileMarks(budget uint64) []uint64 {
	if budget <= budgetSlack {
		return nil
	}
	clean := (budget - budgetSlack) / budgetFactor
	var marks []uint64
	for _, q := range [...]uint64{clean / 4, clean / 2, 3 * clean / 4} {
		if q > 0 && (len(marks) == 0 || q > marks[len(marks)-1]) {
			marks = append(marks, q)
		}
	}
	return marks
}

// calibKey identifies one calibration: budgets depend only on the compiled
// program and the exact case set. Case sets obtained through
// workload.Cached are canonical per (kind, n, seed), so repeated campaigns
// at the same scale and seed hit the cache.
type calibKey struct {
	c     *cc.Compiled
	first *workload.Case
	n     int
}

var calibCache sync.Map // calibKey -> []uint64

// CalibrateCyclesWorkers is CalibrateCycles with an explicit worker count
// (0 selects runtime.GOMAXPROCS(0), 1 the serial path). Budgets are cached
// per (compiled program, case set), so repeated campaigns on the same
// workload do not recalibrate; the returned slice is shared and must be
// treated as read-only.
func CalibrateCyclesWorkers(c *cc.Compiled, cases []workload.Case, workers int) ([]uint64, error) {
	if len(cases) == 0 {
		return nil, nil
	}
	key := calibKey{c: c, first: &cases[0], n: len(cases)}
	if v, ok := calibCache.Load(key); ok {
		return v.([]uint64), nil
	}
	pools := make([]*machinePool, parallel.DefaultWorkers(workers))
	budgets, err := parallel.Map(workers, len(cases), func(w, i int) (uint64, error) {
		if pools[w] == nil {
			pools[w] = newMachinePool()
		}
		res, err := pools[w].runClean(c, &cases[i], vm.DefaultMaxCycles)
		if err != nil {
			return 0, err
		}
		if res.Mode != Correct {
			return 0, fmt.Errorf("campaign: clean run %d not correct (mode %v, state %v)", i, res.Mode, res.State)
		}
		return res.Cycles*budgetFactor + budgetSlack, nil
	})
	if err != nil {
		return nil, err
	}
	calibCache.Store(key, budgets)
	return budgets, nil
}
