// Package fault defines the fault model of the Xception-style injector: a
// fault is described by What (the corruption), Where (the location in code
// or on a bus), Which (the instruction or event acting as trigger) and When
// (on which executions of the trigger the error is inserted) — the
// decomposition proposed in §3 of the paper.
package fault

import (
	"fmt"

	"repro/internal/odc"
)

// Class is the software-fault class a fault emulates.
type Class int

// Fault classes used in the §6 campaigns, plus a hardware-style class used
// by the comparison/ablation experiments (the paper observes that injected
// errors inevitably emulate hardware faults too).
const (
	ClassAssignment Class = iota + 1
	ClassChecking
	ClassHardware
)

var classNames = map[Class]string{
	ClassAssignment: "assignment",
	ClassChecking:   "checking",
	ClassHardware:   "hardware",
}

// String returns the class name.
func (c Class) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// ODCType maps a fault class to the ODC defect type it emulates.
func (c Class) ODCType() (odc.DefectType, bool) {
	switch c {
	case ClassAssignment:
		return odc.Assignment, true
	case ClassChecking:
		return odc.Checking, true
	}
	return 0, false
}

// ErrType identifies one entry of the error-type subset (paper Table 3).
// The string values match the series labels of Figures 9 and 10.
type ErrType string

// Assignment error types (Figure 9 series).
const (
	ErrValuePlusOne  ErrType = "value+1"
	ErrValueMinusOne ErrType = "value-1"
	ErrNoAssign      ErrType = "no assign"
	ErrRandomValue   ErrType = "random"
)

// Checking error types (Figure 10 series): "orig mut" pairs, stuck
// conditions, and array-index offsets.
const (
	ErrLeLt      ErrType = "<= <"
	ErrLtLe      ErrType = "< <="
	ErrGeGt      ErrType = ">= >"
	ErrGtGe      ErrType = "> >="
	ErrEqNe      ErrType = "= !="
	ErrEqGe      ErrType = "= >="
	ErrEqLe      ErrType = "= <="
	ErrNeEq      ErrType = "!= ="
	ErrAndOr     ErrType = "and or"
	ErrOrAnd     ErrType = "or and"
	ErrTrueFalse ErrType = "true false"
	ErrFalseTrue ErrType = "false true"
	ErrIdxPlus   ErrType = "[i] [i+1]"
	ErrIdxMinus  ErrType = "[i] [i-1]"
)

// AssignmentErrTypes lists the assignment error types in figure order.
func AssignmentErrTypes() []ErrType {
	return []ErrType{ErrValuePlusOne, ErrValueMinusOne, ErrNoAssign, ErrRandomValue}
}

// CheckingErrTypes lists the checking error types in figure order.
func CheckingErrTypes() []ErrType {
	return []ErrType{
		ErrLeLt, ErrLtLe, ErrGeGt, ErrGtGe,
		ErrEqNe, ErrEqGe, ErrEqLe, ErrNeEq,
		ErrAndOr, ErrOrAnd, ErrTrueFalse, ErrFalseTrue,
		ErrIdxPlus, ErrIdxMinus,
	}
}

// OperatorMutations returns the mutated operators Table 3 allows for a
// source comparison operator, keyed by the resulting ErrType.
func OperatorMutations(op string) map[ErrType]string {
	switch op {
	case "<":
		return map[ErrType]string{ErrLtLe: "<="}
	case "<=":
		return map[ErrType]string{ErrLeLt: "<"}
	case ">":
		return map[ErrType]string{ErrGtGe: ">="}
	case ">=":
		return map[ErrType]string{ErrGeGt: ">"}
	case "==":
		return map[ErrType]string{ErrEqNe: "!=", ErrEqGe: ">=", ErrEqLe: "<="}
	case "!=":
		return map[ErrType]string{ErrNeEq: "=="}
	}
	return nil
}

// CorruptionKind is the mechanism by which an error is inserted — the What
// and Where of the fault model, expressed at the level Xception works at.
type CorruptionKind int

// Corruption kinds.
const (
	// CorruptText rewrites the instruction word in memory once, when the
	// trigger fires (the paper's "error inserted in memory at the location
	// of the instruction to be changed", Figures 3/5 strategy 1).
	CorruptText CorruptionKind = iota + 1
	// CorruptFetch rewrites the instruction word on the bus every time it
	// is fetched, leaving memory intact (Figures 3/5 strategy 2, "error
	// inserted in the data fetched").
	CorruptFetch
	// CorruptStoreData transforms the value being stored by the store
	// instruction at Addr (data-bus write corruption).
	CorruptStoreData
	// CorruptLoadAddr shifts the effective address of the load at Addr by
	// Offset bytes (the [i]->[i±1] checking error types).
	CorruptLoadAddr
	// CorruptRegister XORs Mask into register Reg when the trigger fires —
	// the classic Xception hardware-fault model, kept for the comparison
	// experiments.
	CorruptRegister
)

var corruptionNames = map[CorruptionKind]string{
	CorruptText:      "instruction memory",
	CorruptFetch:     "instruction fetch bus",
	CorruptStoreData: "data bus (store)",
	CorruptLoadAddr:  "data address (load)",
	CorruptRegister:  "register",
}

// String names the corruption mechanism.
func (k CorruptionKind) String() string {
	if s, ok := corruptionNames[k]; ok {
		return s
	}
	return fmt.Sprintf("corruption(%d)", int(k))
}

// ValueOp transforms a stored value (CorruptStoreData).
type ValueOp int

// Value transformations for assignment error types.
const (
	ValPlusOne  ValueOp = iota + 1 // value+1
	ValMinusOne                    // value-1
	ValSet                         // replace with Value (pre-drawn random)
	ValXor                         // value ^ Value (hardware-style bit flips)
)

// Apply performs the transformation.
func (op ValueOp) Apply(v uint32, operand uint32) uint32 {
	switch op {
	case ValPlusOne:
		return v + 1
	case ValMinusOne:
		return v - 1
	case ValSet:
		return operand
	case ValXor:
		return v ^ operand
	}
	return v
}

// Corruption is one error insertion. A fault may need several (the Figure 4
// stack-shift emulation corrupts every instruction referencing the shifted
// variables).
type Corruption struct {
	Kind    CorruptionKind
	Addr    uint32  // instruction address the corruption acts at
	NewWord uint32  // CorruptText, CorruptFetch
	Op      ValueOp // CorruptStoreData, CorruptRegister
	Operand uint32  // operand of Op
	Offset  int32   // CorruptLoadAddr: byte shift of the effective address
	Reg     uint8   // CorruptRegister
}

// TriggerKind is the Which of the fault model.
type TriggerKind int

// Trigger kinds.
const (
	// TriggerAtStart fires before the first instruction (used with
	// CorruptText to plant a permanent corruption; equivalent to an opcode
	// fetch trigger on the entry point, which "assures the fault is always
	// triggered").
	TriggerAtStart TriggerKind = iota + 1
	// TriggerOnLocation fires at every fetch of each corruption's own
	// instruction address — the §6 campaigns trigger this way.
	TriggerOnLocation
)

// Trigger is the Which/When pair.
type Trigger struct {
	Kind TriggerKind
	// Once restricts insertion to a single firing (When); the §6
	// campaigns use Once=false, i.e. "the fault was inserted every time the
	// trigger instruction was executed".
	Once bool
	// Skip delays the first insertion: the corruption stays dormant for
	// the first Skip executions of the trigger instruction. Together with
	// Once this expresses "inject exactly at the N-th execution" — the
	// knob the paper's conclusion asks for when it calls for an
	// independent evaluation of fault types and fault triggers.
	Skip int
}

// Location identifies the source-level provenance of a fault, for reporting.
type Location struct {
	Program string // target program name (e.g. "C.team1")
	Func    string
	Line    int
	Detail  string // LHS for assignments, operator for checks
}

// String renders the location compactly.
func (l Location) String() string {
	return fmt.Sprintf("%s:%s:%d(%s)", l.Program, l.Func, l.Line, l.Detail)
}

// Fault is a complete, injectable fault definition.
type Fault struct {
	ID          string
	Class       Class
	ErrType     ErrType
	Trigger     Trigger
	Corruptions []Corruption
	Where       Location
}

// Validate checks internal consistency.
func (f *Fault) Validate() error {
	if len(f.Corruptions) == 0 {
		return fmt.Errorf("fault %s: no corruptions", f.ID)
	}
	for i, c := range f.Corruptions {
		switch c.Kind {
		case CorruptText, CorruptFetch, CorruptStoreData, CorruptLoadAddr, CorruptRegister:
		default:
			return fmt.Errorf("fault %s: corruption %d has unknown kind %d", f.ID, i, c.Kind)
		}
		if c.Kind == CorruptLoadAddr && c.Offset == 0 {
			return fmt.Errorf("fault %s: corruption %d shifts load address by zero", f.ID, i)
		}
	}
	switch f.Trigger.Kind {
	case TriggerAtStart, TriggerOnLocation:
	default:
		return fmt.Errorf("fault %s: unknown trigger kind %d", f.ID, f.Trigger.Kind)
	}
	if f.Trigger.Skip < 0 {
		return fmt.Errorf("fault %s: negative trigger skip %d", f.ID, f.Trigger.Skip)
	}
	return nil
}

// TriggerAddrs returns the distinct instruction addresses the fault must be
// triggered at; its length is the number of breakpoint registers a
// hardware-triggered injection consumes.
func (f *Fault) TriggerAddrs() []uint32 {
	seen := make(map[uint32]bool)
	var out []uint32
	for _, c := range f.Corruptions {
		if !seen[c.Addr] {
			seen[c.Addr] = true
			out = append(out, c.Addr)
		}
	}
	return out
}
