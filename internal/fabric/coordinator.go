package fabric

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"time"

	"repro/internal/journal"
	"repro/internal/telemetry"
	"repro/internal/worker"
)

// Metrics is the coordinator's instrument bundle. All fields are optional;
// a nil *Metrics (or nil fields) disables observation without changing any
// scheduling decision.
type Metrics struct {
	// Hosts is the number of currently connected executors.
	Hosts *telemetry.Gauge
	// Assigned counts unit assignments, including redeliveries and steals
	// (one unit assigned twice counts twice).
	Assigned *telemetry.Counter
	// Steals counts half-range steal operations (not units).
	Steals *telemetry.Counter
	// Redelivered counts units returned to the pending set by a host death.
	Redelivered *telemetry.Counter
	// HostDeaths counts executor connections lost before the campaign
	// finished.
	HostDeaths *telemetry.Counter
	// Quarantines counts units that exhausted MaxDeliveries host deaths.
	Quarantines *telemetry.Counter
	// HostUnits, when non-nil, returns the per-host completed-unit counter
	// for an executor name (the per-host gauge plane of the live progress
	// story).
	HostUnits func(host string) *telemetry.Counter
}

// CoordinatorOptions configures one campaign's coordinator.
type CoordinatorOptions struct {
	// Addr is the TCP listen address (e.g. ":9370", "127.0.0.1:0").
	Addr string

	// MinHosts is how many executors must be connected and ready before
	// the initial shard is cut (default 1). Executors joining later are
	// fed by redelivery and stealing.
	MinHosts int

	// Spec is sent to every executor in the hello frame; executors rebuild
	// the plan from it and must reproduce Spec.Fingerprint.
	Spec worker.Spec

	// Units is the total unit count of the plan. An executor whose rebuilt
	// plan disagrees is rejected at the handshake.
	Units int

	// HeartbeatInterval is the cadence both sides beat at (default 500ms).
	// HeartbeatTimeout is how long either side tolerates total silence
	// before declaring its peer dead (default 10s). WAN links want looser
	// values than the defaults, which are inherited from the pipe-local
	// worker supervisor.
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration

	// MaxDeliveries is how many executor hosts a unit may go down with
	// before it is quarantined with the Quarantine outcome (default 3).
	MaxDeliveries int

	// Quarantine is the outcome recorded for a unit that exhausted
	// MaxDeliveries.
	Quarantine journal.Outcome

	// Metrics/Tracer observe scheduling; both are passive.
	Metrics *Metrics
	Tracer  *telemetry.Tracer

	// Log, when non-nil, receives one line per fabric event (join, loss,
	// steal, quarantine).
	Log func(format string, args ...any)
}

func (o *CoordinatorOptions) fill() {
	if o.MinHosts < 1 {
		o.MinHosts = 1
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 500 * time.Millisecond
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 10 * time.Second
	}
	if o.MaxDeliveries < 1 {
		o.MaxDeliveries = 3
	}
}

func (o *CoordinatorOptions) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

// Coordinator owns the listening socket and the scheduling policy of one
// campaign. Create with NewCoordinator, drive with Run.
type Coordinator struct {
	opts CoordinatorOptions
	ln   net.Listener
}

// NewCoordinator validates the options and binds the listen socket, so the
// address (and any bind error) surfaces before planning-time work is spent.
func NewCoordinator(opts CoordinatorOptions) (*Coordinator, error) {
	if opts.Units <= 0 {
		return nil, errors.New("fabric: CoordinatorOptions.Units must be positive")
	}
	opts.fill()
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("fabric: %w", err)
	}
	return &Coordinator{opts: opts, ln: ln}, nil
}

// Addr returns the bound listen address (useful with ":0").
func (c *Coordinator) Addr() net.Addr { return c.ln.Addr() }

// Close releases the listen socket. Run closes it itself on return; Close
// exists for callers that never get to Run.
func (c *Coordinator) Close() error { return c.ln.Close() }

// event is one message into the coordinator's single-threaded loop.
type event struct {
	x       *executorConn
	typ     uint8  // frame type for frame events
	payload []byte // frame payload
	err     error  // non-nil: the connection died
	join    bool   // handshake completed; register x
}

// executorConn is one connected executor as the event loop sees it. All
// fields except the write path are owned by the loop goroutine.
type executorConn struct {
	id       int
	name     string
	workers  int
	conn     net.Conn
	wtimeout time.Duration
	live     bool
	assigned int // units currently owned (assigned, no verdict yet)
	done     *telemetry.Counter
}

// send writes one frame under a write deadline. Only the event loop writes
// to executors, so no locking is needed on this side.
func (x *executorConn) send(typ uint8, payload []byte) error {
	_ = x.conn.SetWriteDeadline(time.Now().Add(x.wtimeout))
	return worker.WriteFrame(x.conn, typ, payload)
}

// coordRun is the state of one Run call, touched only by the loop
// goroutine.
type coordRun struct {
	opts    *CoordinatorOptions
	events  chan event
	stop    chan struct{} // closed on loop exit; unblocks reader sends
	execs   map[int]*executorConn
	nextID  int
	started bool
	pending []int // sorted unit indices awaiting an owner
	owner   map[int]*executorConn
	done    map[int]bool
	deaths  map[int]int
	doneN   int
	total   int
	onRes   func(worker.Result) error
	fatal   error // first onResult error; ends the run
}

// Run shards the given unit indices over the connected executors and calls
// onResult exactly once per index (always from this goroutine; never
// concurrently). It returns nil when every index has a verdict or a
// quarantine, ctx.Err() on cancellation (some indices then have no result),
// the first error returned by onResult, or a fatal executor error. The
// listener is closed on return.
func (c *Coordinator) Run(ctx context.Context, indices []int, onResult func(worker.Result) error) error {
	defer c.ln.Close()
	if len(indices) == 0 {
		return nil
	}
	pending := append([]int(nil), indices...)
	sort.Ints(pending)
	r := &coordRun{
		opts:    &c.opts,
		events:  make(chan event, 64),
		stop:    make(chan struct{}),
		execs:   make(map[int]*executorConn),
		pending: pending,
		owner:   make(map[int]*executorConn),
		done:    make(map[int]bool),
		deaths:  make(map[int]int),
		total:   len(indices),
		onRes:   onResult,
	}
	defer close(r.stop)

	// Accept loop: handshakes happen off the event loop (planning inside
	// the executor can take seconds), completed executors are handed in.
	go func() {
		for {
			conn, err := c.ln.Accept()
			if err != nil {
				return // listener closed: Run is exiting
			}
			go c.handshake(conn, r)
		}
	}()

	c.opts.logf("fabric: listening on %s for %d executor(s), %d units to run",
		c.ln.Addr(), c.opts.MinHosts, len(indices))

	beat := time.NewTicker(c.opts.HeartbeatInterval)
	defer beat.Stop()
	for {
		select {
		case <-ctx.Done():
			r.shutdownAll()
			return ctx.Err()
		case <-beat.C:
			for _, x := range r.liveExecs() {
				if err := x.send(msgHeartbeat, nil); err != nil {
					r.dropExec(x, fmt.Errorf("heartbeat write: %w", err))
				}
			}
		case ev := <-r.events:
			var err error
			switch {
			case ev.join:
				r.addExec(ev.x)
			case ev.err != nil:
				r.dropExec(ev.x, ev.err)
			default:
				err = r.frame(ev.x, ev.typ, ev.payload)
			}
			if err != nil {
				r.shutdownAll()
				return err
			}
		}
		if r.doneN == r.total {
			r.shutdownAll()
			return nil
		}
	}
}

// handshake runs the coordinator side of one executor's handshake: hello
// out, ready in (tolerating heartbeats), validation. A mismatched executor
// is rejected — error frame, close — without disturbing the campaign: at
// fleet scale a stray join must not kill a half-finished run.
func (c *Coordinator) handshake(conn net.Conn, r *coordRun) {
	x := &executorConn{conn: conn, wtimeout: c.opts.HeartbeatTimeout}
	reject := func(err error) {
		c.opts.logf("fabric: rejecting %s: %v", conn.RemoteAddr(), err)
		_ = x.send(msgError, []byte(err.Error()))
		conn.Close()
	}
	if err := x.send(msgHello, encodeHello(hello{
		Version:           ProtocolVersion,
		HeartbeatInterval: c.opts.HeartbeatInterval,
		HeartbeatTimeout:  c.opts.HeartbeatTimeout,
		Spec:              c.opts.Spec,
	})); err != nil {
		conn.Close()
		return
	}
	for {
		_ = conn.SetReadDeadline(time.Now().Add(c.opts.HeartbeatTimeout))
		typ, payload, err := worker.ReadFrame(conn)
		if err != nil {
			reject(fmt.Errorf("no ready frame: %w", err))
			return
		}
		switch typ {
		case msgHeartbeat:
			continue // re-planning inside the executor; keep waiting
		case msgError:
			reject(fmt.Errorf("executor error during handshake: %s", payload))
			return
		case msgReady:
			rd, err := decodeReady(payload)
			if err != nil {
				reject(err)
				return
			}
			if rd.Version != ProtocolVersion {
				reject(fmt.Errorf("executor speaks protocol version %d, coordinator speaks %d", rd.Version, ProtocolVersion))
				return
			}
			if rd.Fingerprint != c.opts.Spec.Fingerprint {
				reject(fmt.Errorf("executor rebuilt plan fingerprint %016x, coordinator planned %016x — differing builds or configuration", rd.Fingerprint, c.opts.Spec.Fingerprint))
				return
			}
			if int(rd.Units) != c.opts.Units {
				reject(fmt.Errorf("executor plan has %d units, coordinator planned %d", rd.Units, c.opts.Units))
				return
			}
			x.name = rd.Name
			if x.name == "" {
				x.name = conn.RemoteAddr().String()
			}
			x.workers = int(rd.Workers)
			if x.workers < 1 {
				x.workers = 1
			}
			select {
			case r.events <- event{x: x, join: true}:
			case <-r.stop:
				conn.Close()
				return
			}
			c.readLoop(x, r)
			return
		default:
			reject(fmt.Errorf("frame type %d during handshake", typ))
			return
		}
	}
}

// readLoop pumps one registered executor's frames into the event loop,
// enforcing the silence deadline on every read.
func (c *Coordinator) readLoop(x *executorConn, r *coordRun) {
	for {
		_ = x.conn.SetReadDeadline(time.Now().Add(c.opts.HeartbeatTimeout))
		typ, payload, err := worker.ReadFrame(x.conn)
		ev := event{x: x, typ: typ, payload: payload}
		if err != nil {
			ev = event{x: x, err: err}
		}
		select {
		case r.events <- ev:
		case <-r.stop:
			x.conn.Close()
			return
		}
		if err != nil {
			return
		}
	}
}

// liveExecs snapshots the live executors in id order, so scheduling
// decisions are deterministic for a given event sequence.
func (r *coordRun) liveExecs() []*executorConn {
	ids := make([]int, 0, len(r.execs))
	for id := range r.execs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	xs := make([]*executorConn, len(ids))
	for i, id := range ids {
		xs[i] = r.execs[id]
	}
	return xs
}

// addExec registers a ready executor and reschedules.
func (r *coordRun) addExec(x *executorConn) {
	x.id = r.nextID
	r.nextID++
	x.live = true
	r.execs[x.id] = x
	if m := r.opts.Metrics; m != nil {
		if m.Hosts != nil {
			m.Hosts.Set(int64(len(r.execs)))
		}
		if m.HostUnits != nil {
			x.done = m.HostUnits(x.name)
		}
	}
	r.opts.Tracer.Emit(telemetry.Event{Kind: telemetry.KindHostJoined, Detail: fmt.Sprintf("%s (%d workers)", x.name, x.workers)})
	r.opts.logf("fabric: executor %s joined (%d workers; %d/%d hosts)", x.name, x.workers, len(r.execs), r.opts.MinHosts)
	r.schedule()
}

// dropExec handles an executor death: its unfinished units go back to
// pending (counting one delivery each; exhausted units are quarantined) and
// the fleet is rescheduled — host loss is redelivery at range granularity.
func (r *coordRun) dropExec(x *executorConn, err error) {
	if !x.live {
		return
	}
	x.live = false
	delete(r.execs, x.id)
	x.conn.Close()
	var lost []int
	for u, o := range r.owner {
		if o == x {
			lost = append(lost, u)
		}
	}
	sort.Ints(lost)
	m := r.opts.Metrics
	if m != nil {
		if m.Hosts != nil {
			m.Hosts.Set(int64(len(r.execs)))
		}
		if m.HostDeaths != nil {
			m.HostDeaths.Inc()
		}
	}
	r.opts.Tracer.Emit(telemetry.Event{Kind: telemetry.KindHostLost, Detail: fmt.Sprintf("%s: %v (%d units redelivered)", x.name, err, len(lost))})
	r.opts.logf("fabric: lost executor %s (%v); redelivering %d units", x.name, err, len(lost))
	for _, u := range lost {
		delete(r.owner, u)
		r.deaths[u]++
		if r.deaths[u] >= r.opts.MaxDeliveries {
			r.quarantine(u)
			continue
		}
		if m != nil && m.Redelivered != nil {
			m.Redelivered.Inc()
		}
		r.pending = append(r.pending, u)
	}
	sort.Ints(r.pending)
	r.schedule()
}

// quarantine records the Quarantine outcome for a unit that went down with
// MaxDeliveries executor hosts.
func (r *coordRun) quarantine(u int) {
	if r.done[u] {
		return
	}
	r.done[u] = true
	r.doneN++
	if m := r.opts.Metrics; m != nil && m.Quarantines != nil {
		m.Quarantines.Inc()
	}
	r.opts.Tracer.Emit(telemetry.Event{Kind: telemetry.KindQuarantine, Unit: u, Detail: "exhausted executor-host deliveries"})
	r.opts.logf("fabric: unit %d went down with %d executor hosts; quarantined as host fault", u, r.deaths[u])
	r.deliver(worker.Result{Index: u, Outcome: r.opts.Quarantine, Quarantined: true})
}

// deliver invokes onResult; an error is remembered as fatal by frame().
func (r *coordRun) deliver(res worker.Result) {
	if r.onRes == nil {
		return
	}
	if err := r.onRes(res); err != nil {
		// Surface through the loop: stash as a synthetic fatal event.
		r.fatal = err
	}
}

// frame handles one frame from a registered executor. A returned error is
// fatal to the whole run (onResult failure or an executor-reported fatal
// unit error — the same unit would fail on any host).
func (r *coordRun) frame(x *executorConn, typ uint8, payload []byte) error {
	switch typ {
	case msgHeartbeat:
		return r.fatalErr()
	case msgError:
		return fmt.Errorf("fabric: executor %s: %s", x.name, payload)
	case msgVerdict:
		v, err := decodeVerdict(payload)
		if err != nil {
			r.dropExec(x, err)
			return r.fatalErr()
		}
		u := int(v.Unit)
		if u < 0 || u >= r.opts.Units {
			r.dropExec(x, fmt.Errorf("verdict for unit %d outside the %d-unit plan", u, r.opts.Units))
			return r.fatalErr()
		}
		if r.done[u] {
			return r.fatalErr() // duplicate (steal race or redelivery); first verdict won
		}
		r.done[u] = true
		r.doneN++
		if o := r.owner[u]; o != nil {
			o.assigned--
			delete(r.owner, u)
		}
		if x.done != nil {
			x.done.Inc()
		}
		r.deliver(worker.Result{Index: u, Outcome: v.Outcome, Payload: v.Payload})
		if err := r.fatalErr(); err != nil {
			return err
		}
		r.schedule()
		return nil
	default:
		r.dropExec(x, fmt.Errorf("unexpected frame type %d", typ))
		return r.fatalErr()
	}
}

// fatal holds the first onResult error; fatalErr drains it.
func (r *coordRun) fatalErr() error { return r.fatal }

// schedule is the whole balancing policy, run after every join, verdict
// and death:
//
//  1. Nothing happens until MinHosts executors are ready; then the pending
//     set (the full todo on a fresh start) is cut into contiguous ranges
//     weighted by each host's worker count — the initial shard.
//  2. Units returned by a host death are redistributed the same way.
//  3. With nothing pending, an idle executor steals the top half (by plan
//     index) of the most-loaded executor's unfinished units: the victim is
//     revoked the range, the thief is assigned it. Executors run their
//     ranges in ascending order, so the stolen tail is the least likely to
//     be in flight; a unit that was anyway produces a duplicate verdict,
//     which the merge drops.
func (r *coordRun) schedule() {
	if !r.started {
		if len(r.execs) < r.opts.MinHosts {
			return
		}
		r.started = true
		r.opts.logf("fabric: %d executor(s) ready; sharding %d units", len(r.execs), len(r.pending))
	}
	xs := r.liveExecs()
	if len(xs) == 0 {
		return
	}
	if len(r.pending) > 0 {
		r.distribute(xs, r.pending)
		r.pending = nil
		return
	}
	for _, thief := range xs {
		if thief.assigned > 0 {
			continue
		}
		var victim *executorConn
		for _, x := range xs {
			if x == thief {
				continue
			}
			if victim == nil || x.assigned > victim.assigned {
				victim = x
			}
		}
		if victim == nil || victim.assigned < 2 {
			continue
		}
		var units []int
		for u, o := range r.owner {
			if o == victim {
				units = append(units, u)
			}
		}
		sort.Ints(units)
		stolen := units[len(units)-len(units)/2:]
		for _, u := range stolen {
			r.owner[u] = thief
		}
		victim.assigned -= len(stolen)
		thief.assigned += len(stolen)
		if m := r.opts.Metrics; m != nil && m.Steals != nil {
			m.Steals.Inc()
		}
		r.opts.Tracer.Emit(telemetry.Event{Kind: telemetry.KindSteal, Detail: fmt.Sprintf("%d units %s -> %s", len(stolen), victim.name, thief.name)})
		r.opts.logf("fabric: %s stole %d units from %s", thief.name, len(stolen), victim.name)
		if err := victim.send(msgRevoke, encodeRuns(stolen)); err != nil {
			r.dropExec(victim, fmt.Errorf("revoke write: %w", err))
			// dropExec reschedules; the stolen units stay with the thief.
		}
		r.assign(thief, stolen)
	}
}

// distribute cuts a sorted unit set into contiguous slices weighted by each
// executor's worker count and assigns them in id order.
func (r *coordRun) distribute(xs []*executorConn, units []int) {
	totalW := 0
	for _, x := range xs {
		totalW += x.workers
	}
	start, given := 0, 0
	for i, x := range xs {
		var n int
		if i == len(xs)-1 {
			n = len(units) - start
		} else {
			given += x.workers
			n = len(units)*given/totalW - start
		}
		if n <= 0 {
			continue
		}
		slice := units[start : start+n]
		start += n
		for _, u := range slice {
			r.owner[u] = x
		}
		x.assigned += len(slice)
		r.assign(x, slice)
	}
}

// assign ships one sorted unit set to an executor. The owner bookkeeping is
// the caller's; assign only encodes, counts and writes.
func (r *coordRun) assign(x *executorConn, units []int) {
	if len(units) == 0 || !x.live {
		return
	}
	if m := r.opts.Metrics; m != nil && m.Assigned != nil {
		m.Assigned.Add(uint64(len(units)))
	}
	r.opts.Tracer.Emit(telemetry.Event{Kind: telemetry.KindRangeAssigned, Detail: fmt.Sprintf("%d units -> %s", len(units), x.name)})
	if err := x.send(msgAssign, encodeRuns(units)); err != nil {
		r.dropExec(x, fmt.Errorf("assign write: %w", err))
	}
}

// shutdownAll releases every executor (best effort) and closes the fleet.
func (r *coordRun) shutdownAll() {
	for _, x := range r.liveExecs() {
		_ = x.send(msgShutdown, nil)
		x.conn.Close()
		x.live = false
	}
	if m := r.opts.Metrics; m != nil && m.Hosts != nil {
		m.Hosts.Set(0)
	}
}
