// Command progrun compiles and runs one target program of the suite on the
// virtual machine, with inputs from the command line. It is the debugging
// front door for the toolchain.
//
// Usage:
//
//	progrun [-faulty] [-disasm] [-itrace N] <program> [int...]
//	progrun -string "seed len text" JB.team6     # JamesB byte input
//	progrun -programs                            # list suite programs
//	progrun -selftest 500 -workers 8 C.team1     # batch-run against the oracle
//	progrun -selftest 2000 -fabric-listen :9371 C.team1  # shard the batch over executors
//	progrun -fabric-join host:9371               # join a coordinator as an executor
//
// -itrace prints the last N executed instructions; -trace <file> (shared
// with the other CLIs) streams structured telemetry events as JSON lines.
//
// Camelot example:
//
//	progrun C.team1 2 3 3 0 0 7 7    # 2 knights at (0,0) and (7,7), king (3,3)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/asm"
	"repro/internal/campaign"
	"repro/internal/cc"
	"repro/internal/cliutil"
	"repro/internal/fabric"
	"repro/internal/journal"
	"repro/internal/parallel"
	"repro/internal/programs"
	"repro/internal/telemetry"
	"repro/internal/vm"
	"repro/internal/worker"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "progrun:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("progrun", flag.ContinueOnError)
	faulty := fs.Bool("faulty", false, "run the program's original (buggy) version")
	disasm := fs.Bool("disasm", false, "print the disassembly instead of running")
	pretty := fs.Bool("pretty", false, "print the normalised (pretty-printed) source instead of running")
	listP := fs.Bool("programs", false, "list the program suite and exit")
	strIn := fs.String("string", "", "byte input for the character stream (JamesB programs)")
	itrace := fs.Int("itrace", 0, "record and print the last N executed instructions")
	interpOnly := fs.Bool("interp-only", false, "disable the block-compiled VM engine (per-instruction interpreter; results are identical)")
	selftest := fs.Int("selftest", 0, "run N generated inputs against the oracle instead of one run")
	seed := fs.Int64("seed", 99, "random seed for -selftest input generation")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "parallel workers for -selftest (1 = serial)")
	isolation := fs.String("isolation", "inproc", "-selftest execution: inproc (goroutines) or proc (supervised worker subprocesses)")
	workerMode := fs.Bool("worker-mode", false, "internal: serve selftest cases over stdin/stdout (spawned by -isolation=proc)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	version := fs.Bool("version", false, "print the binary version and exit")
	tf := cliutil.AddTelemetryFlags(fs)
	hb := cliutil.AddHeartbeatFlags(fs)
	fab := cliutil.AddFabricFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workerMode {
		return worker.Serve(os.Stdin, os.Stdout, selftestFactory)
	}
	if *version {
		cliutil.PrintVersion("progrun")
		return nil
	}
	procIsolation, err := cliutil.ParseIsolation(*isolation)
	if err != nil {
		return err
	}
	if err := cliutil.ValidateWorkers(*workers); err != nil {
		return err
	}
	if err := hb.Validate(); err != nil {
		return err
	}
	if err := fab.Validate(); err != nil {
		return err
	}
	if fab.Listen != "" && *selftest <= 0 {
		return fmt.Errorf("-fabric-listen coordinates a -selftest batch; give -selftest N too")
	}
	stopProf, err := cliutil.StartProfiles("progrun", *cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProf()
	if *listP {
		for _, p := range programs.All() {
			fault := "-"
			if p.Fault != nil {
				fault = p.Fault.ODCType.String()
			}
			fmt.Printf("%-10s %-8s %4d lines  fault: %-12s %s\n", p.Name, p.Kind, p.LineCount(), fault, p.Features)
		}
		return nil
	}
	if fab.Join != "" {
		// Executor mode: the program, case count and seed come from the
		// coordinator's spec; only local execution knobs apply here.
		// Telemetry is set up before joining — historically this branch
		// returned before tf.Setup ran, so -debug-addr on a progrun
		// executor silently did nothing.
		if err := cliutil.ValidateFabricTelemetry(fab, tf); err != nil {
			return err
		}
		tel, telCleanup, err := tf.Setup("progrun")
		if err != nil {
			return err
		}
		defer telCleanup()
		fed := fabric.NewFederation(tel.Registry(), tel.Tracer())
		chaosWrap, err := fab.ChaosWrap(fed.Registry)
		if err != nil {
			return err
		}
		ctx, stopSignals := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		defer stopSignals()
		return fabric.Join(ctx, fab.Join, fabric.ExecutorOptions{
			Workers:         *workers,
			Batch:           fabric.InProcBatch(selftestFactory, *workers),
			DialTimeout:     fab.DialTimeout,
			ReconnectWindow: fab.ReconnectWindow,
			WrapConn:        chaosWrap,
			Metrics:         fabric.NewExecutorMetrics(fed.Registry),
			Federation:      fed,
			Log: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "progrun: "+format+"\n", args...)
			},
		})
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("no program given (try -programs)")
	}
	p, ok := programs.ByName(rest[0])
	if !ok {
		return fmt.Errorf("unknown program %q (try -programs)", rest[0])
	}
	c, err := p.Compile()
	if *faulty {
		c, err = p.CompileFaulty()
	}
	if err != nil {
		return err
	}
	if *disasm {
		fmt.Print(asm.Disassemble(c.Prog))
		return nil
	}
	if *pretty {
		fmt.Print(cc.Print(c.AST))
		return nil
	}
	tel, telCleanup, err := tf.Setup("progrun")
	if err != nil {
		return err
	}
	defer telCleanup()
	if *selftest > 0 {
		return runSelftest(p, c, *selftest, *seed, *workers, procIsolation, *faulty, hb, fab, tel, tf)
	}

	var ints []int32
	for _, a := range rest[1:] {
		v, err := strconv.ParseInt(a, 10, 32)
		if err != nil {
			return fmt.Errorf("bad integer input %q", a)
		}
		ints = append(ints, int32(v))
	}
	m := vm.New(vm.Config{})
	if err := m.Load(c.Prog.Image); err != nil {
		return err
	}
	m.SetInterpOnly(*interpOnly)
	m.SetInput(ints)
	m.SetByteInput([]byte(*strIn))
	if *itrace > 0 {
		m.EnableTrace(*itrace)
	}
	runStart := time.Now()
	state, err := m.Run()
	if err != nil {
		return err
	}
	tel.Tracer().Emit(telemetry.Event{
		Kind: telemetry.KindExecuted, Program: p.Name,
		DurUS: time.Since(runStart).Microseconds(),
	})
	os.Stdout.Write(m.Output())
	if !strings.HasSuffix(string(m.Output()), "\n") {
		fmt.Println()
	}
	switch state {
	case vm.StateHalted:
		fmt.Fprintf(os.Stderr, "[halted, exit %d, %d cycles]\n", m.ExitStatus(), m.Cycles())
	case vm.StateCrashed:
		exc, at := m.Exception()
		fmt.Fprintf(os.Stderr, "[crashed: %s at %#x after %d cycles]\n", exc, at, m.Cycles())
	case vm.StateHung:
		fmt.Fprintf(os.Stderr, "[hung after %d cycles]\n", m.Cycles())
	}
	if *itrace > 0 {
		fmt.Fprintln(os.Stderr, "trace (oldest first):")
		for _, e := range m.Trace() {
			fmt.Fprintf(os.Stderr, "  %s\n", asm.FormatWord(c.Prog, e.PC, e.Word))
		}
	}
	rep := telemetry.NewReport("progrun")
	rep.Params["program"] = p.Name
	rep.Units.Total = 1
	rep.Units.Executed = 1
	return tf.WriteReport(rep, tel)
}

// caseResult is one selftest case's outcome, in the shape both execution
// paths produce: the in-process batch directly, the worker path as the
// verdict payload on the wire.
type caseResult struct {
	Mode   campaign.FailureMode `json:"mode"`
	State  string               `json:"state"`
	Output string               `json:"output"`
}

// runSelftest batch-runs the compiled program over n generated inputs and
// checks every output against the oracle — the fast way to confirm a
// (possibly faulty) build still behaves before pointing a campaign at it.
// With proc set the cases run in supervised worker subprocesses instead of
// goroutines; the verdicts are identical.
func runSelftest(p *programs.Program, c *cc.Compiled, n int, seed int64, workers int, proc, faulty bool, hb *cliutil.HeartbeatFlags, fab *cliutil.FabricFlags, tel *telemetry.Telemetry, tf *cliutil.TelemetryFlags) error {
	workers = parallel.DefaultWorkers(workers)
	cases, err := workload.Generate(p.Kind, n, seed)
	if err != nil {
		return err
	}
	// SIGINT/SIGTERM drains in-flight runs instead of killing them mid-case.
	ctx, stopSignals := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stopSignals()
	start := time.Now()
	var results []caseResult
	if fab.Listen != "" {
		results, err = selftestFabric(ctx, selftestSpec{Program: p.Name, Faulty: faulty, N: n, Seed: seed}, fab, hb, tel)
		if err != nil {
			return err
		}
	} else if proc {
		results, err = selftestProc(ctx, selftestSpec{Program: p.Name, Faulty: faulty, N: n, Seed: seed}, workers, hb, fab, tel)
		if err != nil {
			return err
		}
	} else {
		rr, err := campaign.RunCleanBatchCtx(ctx, c, cases, vm.DefaultMaxCycles, workers)
		if err != nil {
			return err
		}
		results = make([]caseResult, len(rr))
		for i, r := range rr {
			results[i] = caseResult{Mode: r.Mode, State: r.State.String(), Output: string(r.Output)}
		}
	}
	elapsed := time.Since(start)
	counts := make(map[campaign.FailureMode]int)
	firstWrong := -1
	for i, r := range results {
		counts[r.Mode]++
		if r.Mode != campaign.Correct && firstWrong < 0 {
			firstWrong = i
		}
	}
	if reg := tel.Registry(); reg != nil {
		reg.Counter("selftest_runs_total").Add(uint64(len(results)))
		for m, cnt := range counts {
			reg.Counter(fmt.Sprintf(`selftest_verdicts_total{mode=%q}`, m)).Add(uint64(cnt))
		}
	}
	if tr := tel.Tracer(); tr != nil {
		for i, r := range results {
			tr.Emit(telemetry.Event{Kind: telemetry.KindVerdict, Unit: i, Program: p.Name, Mode: r.Mode.String()})
		}
	}
	tally := campaign.ModeTally(counts)
	fmt.Printf("%s: %d runs in %s (%d workers): %s\n",
		p.Name, len(results), elapsed.Round(time.Millisecond), workers, telemetry.FormatTally(tally))
	rep := telemetry.NewReport("progrun")
	rep.Params["program"] = p.Name
	rep.Params["selftest"] = strconv.Itoa(n)
	rep.Params["seed"] = strconv.FormatInt(seed, 10)
	rep.Params["faulty"] = strconv.FormatBool(faulty)
	rep.Units.Total = len(results)
	rep.Units.Executed = len(results)
	rep.Tallies = tally
	if werr := tf.WriteReport(rep, tel); werr != nil {
		return werr
	}
	if firstWrong >= 0 {
		r := results[firstWrong]
		fmt.Printf("first deviation at case %d (mode %s, state %s):\n  input: %v %q\n  got:    %q\n  golden: %q\n",
			firstWrong, r.Mode, r.State,
			cases[firstWrong].Input.Ints, cases[firstWrong].Input.Bytes,
			r.Output, cases[firstWrong].Golden)
		return fmt.Errorf("%d of %d runs deviated from the oracle", len(results)-counts[campaign.Correct], len(results))
	}
	return nil
}

// specKindSelftest is the worker.Spec kind progrun serves in -worker-mode.
const specKindSelftest = "selftest/v1"

// selftestSpec is the progrun worker spec payload: one unit per generated
// case, numbered in generation order.
type selftestSpec struct {
	Program string `json:"program"`
	Faulty  bool   `json:"faulty"`
	N       int    `json:"n"`
	Seed    int64  `json:"seed"`
}

// selftestFactory is the worker-side factory: recompile the program and
// regenerate the identical case set (workload generation is deterministic
// per kind, count and seed), then serve cases as units.
func selftestFactory(spec worker.Spec) (worker.Runner, error) {
	if spec.Kind != specKindSelftest {
		return nil, fmt.Errorf("worker spec kind %q, progrun serves %q", spec.Kind, specKindSelftest)
	}
	if fp := worker.PayloadFingerprint(spec.Kind, spec.Payload); fp != spec.Fingerprint {
		return nil, fmt.Errorf("spec fingerprint %016x does not match payload hash %016x", spec.Fingerprint, fp)
	}
	var s selftestSpec
	if err := json.Unmarshal(spec.Payload, &s); err != nil {
		return nil, err
	}
	p, ok := programs.ByName(s.Program)
	if !ok {
		return nil, fmt.Errorf("unknown program %q", s.Program)
	}
	var c *cc.Compiled
	var err error
	if s.Faulty {
		c, err = p.CompileFaulty()
	} else {
		c, err = p.Compile()
	}
	if err != nil {
		return nil, err
	}
	cases, err := workload.Generate(p.Kind, s.N, s.Seed)
	if err != nil {
		return nil, err
	}
	return &selftestRunner{c: c, cases: cases}, nil
}

type selftestRunner struct {
	c     *cc.Compiled
	cases []workload.Case
}

func (r *selftestRunner) Units() int { return len(r.cases) }

func (r *selftestRunner) Run(unit int) (journal.Outcome, []byte, error) {
	cs := &r.cases[unit]
	res, err := campaign.RunClean(r.c, cs.Input, cs.Golden, vm.DefaultMaxCycles)
	if err != nil {
		return journal.Outcome{}, nil, err
	}
	payload, err := json.Marshal(caseResult{Mode: res.Mode, State: res.State.String(), Output: string(res.Output)})
	if err != nil {
		return journal.Outcome{}, nil, err
	}
	return journal.Outcome{Mode: uint8(res.Mode)}, payload, nil
}

// selftestProc fans the cases out over supervised progrun worker
// subprocesses and returns per-case results in case order. A case that
// repeatedly crashes its worker comes back as a HostFault deviation rather
// than aborting the batch.
func selftestProc(ctx context.Context, s selftestSpec, workers int, hb *cliutil.HeartbeatFlags, fab *cliutil.FabricFlags, tel *telemetry.Telemetry) ([]caseResult, error) {
	payload, err := json.Marshal(s)
	if err != nil {
		return nil, err
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	storageChaos, err := fab.StorageChaos(tel.Registry())
	if err != nil {
		return nil, err
	}
	pool, err := worker.NewPool(worker.Options{
		Workers: workers,
		Command: func() *exec.Cmd {
			cmd := exec.Command(exe, "-worker-mode")
			cmd.Stderr = os.Stderr
			return cmd
		},
		Spec: worker.Spec{
			Kind:        specKindSelftest,
			Fingerprint: worker.PayloadFingerprint(specKindSelftest, payload),
			Payload:     payload,
		},
		HeartbeatInterval: hb.Interval,
		HeartbeatTimeout:  hb.Timeout,
		WrapPipes:         cliutil.PipeWrap(storageChaos),
		Quarantine:        journal.Outcome{Mode: uint8(campaign.HostFault)},
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "progrun: "+format+"\n", args...)
		},
		Metrics: telemetry.NewWorkerMetrics(tel.Registry()),
		Tracer:  tel.Tracer(),
	})
	if err != nil {
		return nil, err
	}
	results := make([]caseResult, s.N)
	err = pool.Run(ctx, caseIndices(s.N), selftestResult(results))
	if err != nil {
		return nil, err
	}
	return results, nil
}

// selftestFabric shards the case set over fabric executors (progrun
// -fabric-join) — the same contract as selftestProc, one level of
// distribution up. Executors regenerate the identical case set from the
// spec (generation is deterministic per kind, count and seed), so only
// verdicts cross the wire.
func selftestFabric(ctx context.Context, s selftestSpec, fab *cliutil.FabricFlags, hb *cliutil.HeartbeatFlags, tel *telemetry.Telemetry) ([]caseResult, error) {
	payload, err := json.Marshal(s)
	if err != nil {
		return nil, err
	}
	chaosWrap, err := fab.ChaosWrap(tel.Registry())
	if err != nil {
		return nil, err
	}
	// Live fleet view: the tracker mirrors the coordinator's sessions for
	// the -debug-addr server's /fleet endpoint.
	fleet := fabric.NewFleetTracker(s.N, tel.Registry())
	telemetry.SetFleetSource(fleet.Source())
	defer telemetry.SetFleetSource(nil)
	coord, err := fabric.NewCoordinator(fabric.CoordinatorOptions{
		Addr:     fab.Listen,
		MinHosts: fab.Hosts,
		Spec: worker.Spec{
			Kind:        specKindSelftest,
			Fingerprint: worker.PayloadFingerprint(specKindSelftest, payload),
			Payload:     payload,
		},
		Units:             s.N,
		HeartbeatInterval: hb.Interval,
		HeartbeatTimeout:  hb.Timeout,
		SessionTimeout:    fab.SessionTimeout,
		WrapConn:          chaosWrap,
		Metrics:           fabric.NewMetrics(tel.Registry()),
		Quarantine:        journal.Outcome{Mode: uint8(campaign.HostFault)},
		Tracer:            tel.Tracer(),
		Registry:          tel.Registry(),
		Fleet:             fleet,
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "progrun: "+format+"\n", args...)
		},
	})
	if err != nil {
		return nil, err
	}
	defer coord.Close()
	results := make([]caseResult, s.N)
	err = coord.Run(ctx, caseIndices(s.N), selftestResult(results))
	if err != nil {
		return nil, err
	}
	return results, nil
}

// caseIndices is the identity unit list 0..n-1 both batch backends take.
func caseIndices(n int) []int {
	indices := make([]int, n)
	for i := range indices {
		indices[i] = i
	}
	return indices
}

// selftestResult builds the verdict callback shared by the proc and fabric
// backends: decode the payload into its case slot, mapping quarantined
// cases to HostFault deviations.
func selftestResult(results []caseResult) func(worker.Result) error {
	return func(r worker.Result) error {
		if r.Quarantined {
			results[r.Index] = caseResult{Mode: campaign.HostFault, State: "quarantined"}
			return nil
		}
		var cr caseResult
		if err := json.Unmarshal(r.Payload, &cr); err != nil {
			return fmt.Errorf("case %d verdict payload: %w", r.Index, err)
		}
		results[r.Index] = cr
		return nil
	}
}
