package campaign

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/fault"
	"repro/internal/telemetry"
)

// This file is the campaign side of the observability layer: the metric
// bundle the executor updates on its hot path, the trace events it emits,
// the progress snapshot the live surface renders, and the report filler.
// Everything here is strictly passive — telemetry observes execution and
// never feeds back into it, which is what keeps a campaign's Result
// bit-identical with telemetry on or off (asserted by the property tests in
// telemetry_test.go). A nil *campMetrics (telemetry off) makes every method
// a single pointer check.

// campMetrics is the executor's instrument bundle, registered once per
// campaign-carrying registry. Counter updates on the unit path use the
// worker index as the shard, so parallel workers do not contend.
type campMetrics struct {
	unitsTotal    *telemetry.Gauge   // units planned (accumulates over sequential campaigns)
	unitsDone     *telemetry.Counter // executed + replayed
	unitsExecuted *telemetry.Counter
	unitsReplayed *telemetry.Counter
	verdicts      map[FailureMode]*telemetry.Counter
	activated     *telemetry.Counter
	ffwdHits      *telemetry.Counter // injections started from a restored checkpoint
	ffwdMisses    *telemetry.Counter // location faults that had to replay from reboot
	dormantSkips  *telemetry.Counter // dormant faults served from the golden record
	degraded      *telemetry.Counter
	retries       *telemetry.Counter
	quarantines   *telemetry.Counter
	unitLatency   *telemetry.Histogram

	// restarts is the worker supervisor's restart counter (same registry,
	// same name), read by the progress note so the live line surfaces worker
	// health without a second plumbing path.
	restarts *telemetry.Counter

	// fabricHosts/fabricDeaths are the coordinator's fleet instruments
	// (same registry, same names as newFabricMetrics registers), read by
	// the progress note so a distributed campaign's live line shows the
	// fleet size and losses. Both stay zero on single-host runs.
	fabricHosts  *telemetry.Gauge
	fabricDeaths *telemetry.Counter

	// reg is kept so the progress note can sum the federated per-host
	// executed gauges (fabric_units_executed_total{host=...}) — the
	// fleet-wide view on the coordinator's TTY line. Single-host runs have
	// no host-labeled series, so the scan costs one map walk per tick and
	// contributes nothing.
	reg *telemetry.Registry
}

// newCampMetrics registers the campaign instruments on reg; a nil registry
// yields a nil bundle, the telemetry-off fast path.
func newCampMetrics(reg *telemetry.Registry) *campMetrics {
	if reg == nil {
		return nil
	}
	m := &campMetrics{
		unitsTotal:    reg.Gauge("campaign_units_total"),
		unitsDone:     reg.Counter("campaign_units_done_total"),
		unitsExecuted: reg.Counter("campaign_units_executed_total"),
		unitsReplayed: reg.Counter("campaign_units_replayed_total"),
		verdicts:      make(map[FailureMode]*telemetry.Counter, len(Modes())),
		activated:     reg.Counter("campaign_activated_total"),
		ffwdHits:      reg.Counter("campaign_ffwd_hits_total"),
		ffwdMisses:    reg.Counter("campaign_ffwd_misses_total"),
		dormantSkips:  reg.Counter("campaign_dormant_skips_total"),
		degraded:      reg.Counter("campaign_degraded_total"),
		retries:       reg.Counter("campaign_retries_total"),
		quarantines:   reg.Counter("campaign_quarantines_total"),
		unitLatency:   reg.Histogram("campaign_unit_latency_us", telemetry.DefaultLatencyBuckets),
		restarts:      reg.Counter("worker_restarts_total"),
		fabricHosts:   reg.Gauge("fabric_hosts"),
		fabricDeaths:  reg.Counter("fabric_host_deaths_total"),
		reg:           reg,
	}
	for _, mode := range tallyModes() {
		m.verdicts[mode] = reg.Counter(fmt.Sprintf(`campaign_verdicts_total{mode=%q}`, mode))
	}
	return m
}

// tallyModes is the verdict-counter domain: the paper's four modes plus the
// HostFault quarantine bucket.
func tallyModes() []FailureMode { return append(Modes(), HostFault) }

// noteVerdict records one freshly executed unit's outcome on shard w.
func (m *campMetrics) noteVerdict(w int, o unitOutcome) {
	if m == nil {
		return
	}
	m.unitsDone.AddShard(w, 1)
	m.unitsExecuted.AddShard(w, 1)
	if c := m.verdicts[o.mode]; c != nil {
		c.AddShard(w, 1)
	}
	if o.activated {
		m.activated.AddShard(w, 1)
	}
	if o.degraded {
		m.degraded.AddShard(w, 1)
	}
	if o.retried {
		m.retries.AddShard(w, 1)
	}
	if o.mode == HostFault {
		m.quarantines.AddShard(w, 1)
	}
}

// noteReplayed records one unit taken from the journal instead of executed.
func (m *campMetrics) noteReplayed(o unitOutcome) {
	if m == nil {
		return
	}
	m.unitsDone.Inc()
	m.unitsReplayed.Inc()
	if c := m.verdicts[o.mode]; c != nil {
		c.Inc()
	}
	if o.activated {
		m.activated.Inc()
	}
}

// snapshot builds the live progress sample: done/total, the running
// failure-mode tallies, and a worker-health note.
func (m *campMetrics) snapshot() telemetry.ProgressSnap {
	s := telemetry.ProgressSnap{
		Done:  int64(m.unitsDone.Value()),
		Total: m.unitsTotal.Value(),
	}
	for _, mode := range tallyModes() {
		if n := m.verdicts[mode].Value(); n > 0 || mode != HostFault {
			s.Parts = append(s.Parts, telemetry.Part{Name: mode.String(), N: n})
		}
	}
	var notes []string
	if n := m.fabricHosts.Value(); n > 0 {
		note := fmt.Sprintf("%d hosts", n)
		if d := m.fabricDeaths.Value(); d > 0 {
			note += fmt.Sprintf(" (%d lost)", d)
		}
		// Fleet-wide executed total from the federated per-host gauges:
		// what the whole fleet has run, as opposed to Done (what the
		// coordinator has merged). The two differ by in-flight verdicts
		// and steal duplicates.
		var fleetExec uint64
		for name, v := range m.reg.Counters() {
			if strings.HasPrefix(name, `fabric_units_executed_total{host=`) {
				fleetExec += v
			}
		}
		if fleetExec > 0 {
			note += fmt.Sprintf(", fleet executed %d", fleetExec)
		}
		notes = append(notes, note)
	}
	if n := m.restarts.Value(); n > 0 {
		notes = append(notes, fmt.Sprintf("%d worker restarts", n))
	}
	s.Note = strings.Join(notes, ", ")
	return s
}

// newWorkerMetrics registers the worker-supervisor instruments on reg; nil
// registry, nil bundle (the supervisor treats that as disabled).
func newWorkerMetrics(reg *telemetry.Registry) *telemetry.WorkerMetrics {
	return telemetry.NewWorkerMetrics(reg)
}

// newJournalMetrics registers the journal instruments on reg.
func newJournalMetrics(reg *telemetry.Registry) telemetry.JournalMetrics {
	if reg == nil {
		return telemetry.JournalMetrics{}
	}
	return telemetry.JournalMetrics{
		Appends:       reg.Counter("journal_appends_total"),
		AppendLatency: reg.Histogram("journal_append_latency_us", telemetry.DefaultLatencyBuckets),
		DegradedMode:  reg.Gauge("journal_degraded_mode"),
	}
}

// newGoldenMetrics registers the golden-store instruments on reg.
func newGoldenMetrics(reg *telemetry.Registry) telemetry.GoldenMetrics {
	if reg == nil {
		return telemetry.GoldenMetrics{}
	}
	return telemetry.GoldenMetrics{
		Runs:        reg.Counter("golden_runs_total"),
		Checkpoints: reg.Counter("golden_checkpoints_total"),
		RunLatency:  reg.Histogram("golden_run_latency_us", telemetry.DefaultLatencyBuckets),
	}
}

// traceUnit emits the dispatch-side fields shared by a unit's trace events.
func traceUnit(kind string, i int, u *runUnit, w int) telemetry.Event {
	return telemetry.Event{
		Kind:    kind,
		Unit:    i,
		Program: u.program,
		Fault:   u.f.ID,
		Case:    u.caseIx,
		Worker:  w,
	}
}

// emitOutcomeTrace emits the post-execution events of one unit: executed
// (with duration), the resilience flags, and the verdict.
func emitOutcomeTrace(tr *telemetry.Tracer, i int, u *runUnit, w int, o unitOutcome, dur time.Duration) {
	if tr == nil {
		return
	}
	e := traceUnit(telemetry.KindExecuted, i, u, w)
	e.DurUS = dur.Microseconds()
	tr.Emit(e)
	if o.retried {
		tr.Emit(traceUnit(telemetry.KindRetry, i, u, w))
	}
	if o.degraded {
		tr.Emit(traceUnit(telemetry.KindDegraded, i, u, w))
	}
	if o.mode == HostFault {
		tr.Emit(traceUnit(telemetry.KindQuarantine, i, u, w))
	}
	v := traceUnit(telemetry.KindVerdict, i, u, w)
	v.Mode = o.mode.String()
	tr.Emit(v)
}

// ModeTally converts a failure-mode distribution into the report's
// string-keyed tally form.
func ModeTally(counts map[FailureMode]int) telemetry.Tally {
	t := make(telemetry.Tally, len(counts))
	for m, n := range counts {
		t[m.String()] = n
	}
	return t
}

// FillReport copies a campaign Result into a report: the unit stats
// (including the replayed-versus-executed split of a resumed run), the
// overall per-class tallies, the per-program and per-error-type breakdowns
// behind Figures 7–10, and the resilience counters.
func FillReport(r *telemetry.Report, res *Result) {
	if r == nil || res == nil {
		return
	}
	r.Units.Total += res.Runs
	r.Units.Executed += res.Runs - res.Exec.Replayed
	r.Units.Replayed += res.Exec.Replayed
	r.Units.Quarantined += res.Exec.HostFaults

	classes := make(map[fault.Class]bool)
	for i := range res.Entries {
		classes[res.Entries[i].Class] = true
	}
	for class := range classes {
		total := res.Total(class)
		r.Tallies.Add(ModeTally(total.Counts))
		prog := r.Group(class.String() + "/program")
		for name, d := range res.ByProgram(class) {
			t := prog[name]
			if t == nil {
				t = make(telemetry.Tally)
				prog[name] = t
			}
			t.Add(ModeTally(d.Counts))
		}
		errs := r.Group(class.String() + "/errtype")
		for name, d := range res.ByErrType(class) {
			t := errs[name]
			if t == nil {
				t = make(telemetry.Tally)
				errs[name] = t
			}
			t.Add(ModeTally(d.Counts))
		}
	}

	if res.Exec != (ExecStats{}) {
		if r.Resilience == nil {
			r.Resilience = make(map[string]int)
		}
		r.Resilience["degraded"] += res.Exec.Degraded
		r.Resilience["retried"] += res.Exec.Retried
		r.Resilience["hostfaults"] += res.Exec.HostFaults
		r.Resilience["replayed"] += res.Exec.Replayed
	}

	// Fabric campaigns: the per-host fleet breakdown. Sequential campaigns
	// (fig7 runs one per class) each contribute their hosts; the fleet is
	// usually the same, so the rows repeat per campaign by design — the
	// report is a log of what ran, not a deduplicated inventory.
	r.Hosts = append(r.Hosts, res.Hosts...)
}
