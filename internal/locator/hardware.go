package locator

import (
	"fmt"
	"math/rand"

	"repro/internal/cc"
	"repro/internal/fault"
	"repro/internal/vm"
)

// PlanHardware builds a classic Xception hardware-fault campaign plan:
// transient single-bit faults at random points of the program, the model
// the tool was originally built for. The paper observes that the §6
// software-fault emulations "also emulate hardware faults, which might
// explain the general small percentage of correct results"; running this
// plan side by side with the software-fault plans makes the comparison
// concrete.
//
// Two classic fault models are drawn in equal shares:
//
//   - register faults: one bit of one general-purpose register flips the
//     first time a randomly chosen instruction executes;
//   - bus faults: one bit of the fetched instruction word flips on every
//     fetch of a randomly chosen instruction.
func PlanHardware(c *cc.Compiled, program string, n int, seed int64) (*Plan, error) {
	textLen := len(c.Prog.Image.Text)
	if textLen == 0 {
		return nil, fmt.Errorf("locator: %s has no text", program)
	}
	p := &Plan{
		Program:  program,
		Class:    fault.ClassHardware,
		Possible: textLen, // every instruction is a candidate fault point
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		addr := vm.TextBase + uint32(rng.Intn(textLen))*vm.WordSize
		var f fault.Fault
		if i%2 == 0 {
			reg := uint8(1 + rng.Intn(31)) // r1..r31; r0 is hardwired zero
			mask := uint32(1) << uint(rng.Intn(32))
			f = fault.Fault{
				ID:      fmt.Sprintf("%s/hw/reg/%d", program, i),
				Class:   fault.ClassHardware,
				ErrType: "register bit-flip",
				Trigger: fault.Trigger{Kind: fault.TriggerOnLocation, Once: true},
				Corruptions: []fault.Corruption{{
					Kind: fault.CorruptRegister, Addr: addr,
					Reg: reg, Op: fault.ValXor, Operand: mask,
				}},
				Where: fault.Location{Program: program, Detail: fmt.Sprintf("r%d^%#x", reg, mask)},
			}
		} else {
			orig, err := c.Prog.ReadTextWord(addr)
			if err != nil {
				return nil, err
			}
			mask := uint32(1) << uint(rng.Intn(32))
			f = fault.Fault{
				ID:      fmt.Sprintf("%s/hw/bus/%d", program, i),
				Class:   fault.ClassHardware,
				ErrType: "fetch-bus bit-flip",
				Trigger: fault.Trigger{Kind: fault.TriggerOnLocation},
				Corruptions: []fault.Corruption{{
					Kind: fault.CorruptFetch, Addr: addr, NewWord: orig ^ mask,
				}},
				Where: fault.Location{Program: program, Detail: fmt.Sprintf("bit %#x", mask)},
			}
		}
		p.Chosen = append(p.Chosen, int((addr-vm.TextBase)/vm.WordSize))
		p.Faults = append(p.Faults, f)
	}
	return p, nil
}
