// Package parallel is the worker-pool substrate of the experiment
// management layer. The paper's campaigns are embarrassingly parallel —
// every injection runs on a freshly rebooted machine with a deterministic
// seed, so runs share no state — and this package supplies the one
// scheduling primitive the executors need: fan an index space out over a
// fixed set of workers and join with a deterministic error.
//
// Determinism contract: ForEach itself imposes no ordering on side
// effects, so callers write results into per-index slots and aggregate
// serially after the join. On failure the error reported is the one from
// the lowest index that failed among the indices actually executed, which
// makes the error stable across schedules whenever the first failing index
// is reached on every schedule (campaign executors fail fast and treat any
// error as fatal, so the distinction only matters for error text).
//
// Isolation contract: a panic inside fn never escapes. It is recovered —
// on the worker goroutine and on the legacy serial path alike — and
// converted into a *PanicError carrying the panic value and stack, so one
// misbehaving unit reports an error instead of killing the whole process
// (or, worse, deadlocking the join on a dead worker goroutine).
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is a panic from a ForEach/Map body, recovered and converted
// into an error. Callers that want to treat host-side panics differently
// from ordinary unit errors (the campaign executor quarantines them as
// HostFault verdicts) unwrap it with errors.As.
type PanicError struct {
	Index int    // the index whose fn panicked
	Value any    // the value passed to panic
	Stack []byte // debug.Stack() captured at the recovery point
}

// Error renders the panic value; the stack is carried separately so error
// text stays one line.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: panic in unit %d: %v", e.Index, e.Value)
}

// DefaultWorkers resolves a worker-count knob: values above zero are taken
// as-is, anything else selects runtime.GOMAXPROCS(0).
func DefaultWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// call runs fn(worker, i) with panic isolation.
func call(fn func(worker, i int) error, worker, i int) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Index: i, Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(worker, i)
}

// ForEach executes fn(worker, i) for every i in [0, n) across the given
// number of workers (normalised through DefaultWorkers). The worker
// argument is a stable identifier in [0, workers) so callers can keep
// per-worker state — machine pools — without locking. With one worker
// every call runs on the caller's goroutine in index order: the legacy
// serial path, bit-identical to a plain loop.
//
// The first error stops the distribution of new indices; indices already
// claimed still complete. ForEach returns the error of the lowest failed
// index.
func ForEach(workers, n int, fn func(worker, i int) error) error {
	return ForEachCtx(context.Background(), workers, n, fn)
}

// ForEachCtx is ForEach with cooperative cancellation: once ctx is done no
// new index is handed out, indices already claimed drain to completion
// (in-flight units are never abandoned mid-run), and the join returns
// ctx.Err() — unless some unit failed first, in which case the usual
// lowest-failed-index error wins. The drain property is what lets the
// campaign layer flush every completed unit to its journal on SIGINT.
func ForEachCtx(ctx context.Context, workers, n int, fn func(worker, i int) error) error {
	workers = DefaultWorkers(workers)
	if n <= 0 {
		return ctx.Err()
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := call(fn, 0, i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}

	var (
		next   atomic.Int64 // next index to hand out
		failed atomic.Bool  // stops the hand-out once any index errors
		wg     sync.WaitGroup

		mu      sync.Mutex
		errIdx  int
		bestErr error
	)
	record := func(i int, err error) {
		failed.Store(true)
		mu.Lock()
		if bestErr == nil || i < errIdx {
			errIdx, bestErr = i, err
		}
		mu.Unlock()
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for !failed.Load() && ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := call(fn, worker, i); err != nil {
					record(i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if bestErr != nil {
		return bestErr
	}
	return ctx.Err()
}

// Map runs fn over [0, n) with ForEach and collects the results in index
// order, so the output is independent of the schedule.
func Map[T any](workers, n int, fn func(worker, i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), workers, n, fn)
}

// MapCtx is Map with the cancellation semantics of ForEachCtx.
func MapCtx[T any](ctx context.Context, workers, n int, fn func(worker, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachCtx(ctx, workers, n, func(worker, i int) error {
		v, err := fn(worker, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
