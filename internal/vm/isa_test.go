package vm

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// allOpcodes lists every defined opcode for table-driven coverage.
var allOpcodes = []Opcode{
	OpAddi, OpAddis, OpMulli, OpAndi, OpOri, OpXori,
	OpLwz, OpStw, OpLbz, OpStb, OpCmpwi,
	OpAdd, OpSubf, OpMullw, OpDivw, OpMod,
	OpAnd, OpOr, OpXor, OpSlw, OpSrw, OpSraw,
	OpNeg, OpCmpw, OpLwzx, OpStwx, OpLbzx, OpStbx,
	OpB, OpBl, OpBc, OpBlr, OpMflr, OpMtlr, OpSc, OpTrap, OpNop,
}

func TestEncodeDecodeRoundTripTable(t *testing.T) {
	tests := []struct {
		name string
		in   Inst
	}{
		{"addi", Inst{Op: OpAddi, RD: 3, RA: 0, Imm: 1}},
		{"addi negative", Inst{Op: OpAddi, RD: 5, RA: 5, Imm: -32768}},
		{"addis", Inst{Op: OpAddis, RD: 4, RA: 0, Imm: 0x7fff}},
		{"ori max uimm", Inst{Op: OpOri, RD: 4, RA: 4, Imm: 0xffff}},
		{"lwz", Inst{Op: OpLwz, RD: 4, RA: 1, Imm: 24}},
		{"stw negative disp", Inst{Op: OpStw, RD: 3, RA: 30, Imm: -8}},
		{"cmpwi", Inst{Op: OpCmpwi, RD: 7 << 2, RA: 3, Imm: -1}},
		{"add", Inst{Op: OpAdd, RD: 3, RA: 4, RB: 5}},
		{"divw", Inst{Op: OpDivw, RD: 31, RA: 30, RB: 29}},
		{"neg", Inst{Op: OpNeg, RD: 6, RA: 7}},
		{"b forward", Inst{Op: OpB, Off26: 4096}},
		{"b backward", Inst{Op: OpB, Off26: -8}},
		{"bl far", Inst{Op: OpBl, Off26: 1 << 20}},
		{"bl far back", Inst{Op: OpBl, Off26: -(1 << 20)}},
		{"bc lt", Inst{Op: OpBc, RD: uint8(CondLT), RA: 0, Imm: 16}},
		{"bc ne back", Inst{Op: OpBc, RD: uint8(CondNE), RA: 7, Imm: -64}},
		{"blr", Inst{Op: OpBlr}},
		{"mflr", Inst{Op: OpMflr, RD: 12}},
		{"sc", Inst{Op: OpSc}},
		{"trap", Inst{Op: OpTrap}},
		{"nop", Inst{Op: OpNop}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			w := Encode(tt.in)
			got, err := Decode(w)
			if err != nil {
				t.Fatalf("Decode(%#08x): %v", w, err)
			}
			if got != tt.in {
				t.Errorf("round trip: got %+v, want %+v", got, tt.in)
			}
		})
	}
}

// TestEncodeDecodeRoundTripProperty checks that every canonicalised random
// instruction survives encode→decode unchanged.
func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	canonical := func() Inst {
		op := allOpcodes[rng.Intn(len(allOpcodes))]
		in := Inst{Op: op}
		switch op.form() {
		case formD:
			in.RD = uint8(rng.Intn(32))
			in.RA = uint8(rng.Intn(32))
			in.Imm = int32(int16(rng.Uint32()))
		case formDU:
			in.RD = uint8(rng.Intn(32))
			in.RA = uint8(rng.Intn(32))
			in.Imm = int32(uint16(rng.Uint32()))
		case formX:
			in.RD = uint8(rng.Intn(32))
			in.RA = uint8(rng.Intn(32))
			in.RB = uint8(rng.Intn(32))
		case formXD:
			in.RD = uint8(rng.Intn(32))
			in.RA = uint8(rng.Intn(32))
		case formI:
			in.Off26 = int32(rng.Intn(1<<26)) - (1 << 25)
		case formB:
			in.RD = uint8([]Cond{CondLT, CondLE, CondEQ, CondGE, CondGT, CondNE}[rng.Intn(6)])
			in.RA = uint8(rng.Intn(8))
			in.Imm = int32(int16(rng.Uint32()))
		case formR:
			in.RD = uint8(rng.Intn(32))
		}
		return in
	}
	f := func() bool {
		in := canonical()
		got, err := Decode(Encode(in))
		if err != nil {
			t.Logf("decode error for %+v: %v", in, err)
			return false
		}
		return got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestDecodeNeverPanics feeds random 32-bit words to the decoder; it may
// reject them but must never panic — bit-flipped instructions take exactly
// this path during injection campaigns.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(w uint32) bool {
		in, err := Decode(w)
		if err == nil {
			// A successfully decoded word must re-encode to itself: the
			// encoding has no don't-care bits for decoded fields... except
			// X-form padding, which Decode ignores. Check opcode stability.
			if Opcode(Encode(in)>>26) != in.Op {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeIllegal(t *testing.T) {
	tests := []struct {
		name string
		w    uint32
	}{
		{"all zero", 0},
		{"all ones opcode", 0xffffffff},
		{"undefined slot 12", uint32(12) << 26},
		{"undefined slot 15", uint32(15) << 26},
		{"undefined slot 33", uint32(33) << 26},
		{"undefined slot 63", uint32(63) << 26},
		{"bc bad cond 0", Encode(Inst{Op: OpBc, RD: 0, RA: 0, Imm: 8})},
		{"bc bad cond 31", Encode(Inst{Op: OpBc, RD: 31, RA: 0, Imm: 8})},
		{"bc bad crf", Encode(Inst{Op: OpBc, RD: uint8(CondEQ), RA: 9, Imm: 8})},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode(tt.w); err == nil {
				t.Errorf("Decode(%#08x) succeeded, want error", tt.w)
			}
		})
	}
}

func TestOpcodeStrings(t *testing.T) {
	for _, op := range allOpcodes {
		if s := op.String(); strings.HasPrefix(s, "op(") {
			t.Errorf("opcode %d has no name", op)
		}
		if !op.Defined() {
			t.Errorf("opcode %v not Defined", op)
		}
	}
	if Opcode(60).Defined() {
		t.Error("opcode 60 should be undefined")
	}
	if got := Opcode(60).String(); got != "op(60)" {
		t.Errorf("Opcode(60).String() = %q", got)
	}
}

func TestInstString(t *testing.T) {
	tests := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpAddi, RD: 3, RA: 0, Imm: 1}, "addi r3,r0,1"},
		{Inst{Op: OpLwz, RD: 4, RA: 1, Imm: 24}, "lwz r4,24(r1)"},
		{Inst{Op: OpStw, RD: 5, RA: 30, Imm: -8}, "stw r5,-8(r30)"},
		{Inst{Op: OpCmpwi, RD: 6 << 2, RA: 3, Imm: 0}, "cmpwi cr6,r3,0"},
		{Inst{Op: OpCmpw, RD: 0, RA: 3, RB: 4}, "cmpw cr0,r3,r4"},
		{Inst{Op: OpAdd, RD: 3, RA: 4, RB: 5}, "add r3,r4,r5"},
		{Inst{Op: OpNeg, RD: 3, RA: 3}, "neg r3,r3"},
		{Inst{Op: OpB, Off26: 16}, "b +16"},
		{Inst{Op: OpBc, RD: uint8(CondGE), RA: 1, Imm: -4}, "bc ge,cr1,-4"},
		{Inst{Op: OpMflr, RD: 0}, "mflr r0"},
		{Inst{Op: OpBlr}, "blr"},
		{Inst{Op: OpSc}, "sc"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestCondValidity(t *testing.T) {
	valid := []Cond{CondLT, CondLE, CondEQ, CondGE, CondGT, CondNE}
	for _, c := range valid {
		if !c.Valid() {
			t.Errorf("cond %v should be valid", c)
		}
	}
	for _, c := range []Cond{0, 7, 12, 31} {
		if c.Valid() {
			t.Errorf("cond %d should be invalid", c)
		}
	}
}

func TestExcAndStateStrings(t *testing.T) {
	for e := ExcNone; e <= ExcTrap; e++ {
		if strings.HasPrefix(e.String(), "exc(") {
			t.Errorf("exception %d has no name", e)
		}
	}
	for s := StateReady; s <= StateHung; s++ {
		if strings.HasPrefix(s.String(), "state(") {
			t.Errorf("state %d has no name", s)
		}
	}
}
