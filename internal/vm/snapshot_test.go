package vm_test

import (
	"bytes"
	"testing"

	"repro/internal/programs"
	"repro/internal/vm"
	"repro/internal/workload"
)

// loadFor compiles the named program and returns a loaded machine plus one
// generated case.
func loadFor(t *testing.T, name string) (*vm.Machine, *programs.Program, workload.Case) {
	t.Helper()
	p, ok := programs.ByName(name)
	if !ok {
		t.Fatalf("%s missing from the suite", name)
	}
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cases, err := workload.Generate(p.Kind, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(vm.Config{})
	if err := m.Load(c.Prog.Image); err != nil {
		t.Fatal(err)
	}
	return m, p, cases[0]
}

// TestSnapshotRestoreResumesIdentically is the core checkpoint contract: a
// machine restored from a mid-run snapshot — onto a different machine than
// the one that produced it — finishes with the same output, cycle count and
// state as the uninterrupted run, for every Table 4 program.
func TestSnapshotRestoreResumesIdentically(t *testing.T) {
	for _, p := range programs.Table4Programs() {
		c, err := p.Compile()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		cases, err := workload.Generate(p.Kind, 2, 13)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		for ci := range cases {
			// Reference: one uninterrupted run.
			ref := vm.New(vm.Config{})
			if err := ref.Load(c.Prog.Image); err != nil {
				t.Fatal(err)
			}
			ref.SetInput(cases[ci].Input.Ints)
			ref.SetByteInput(cases[ci].Input.Bytes)
			if _, err := ref.Run(); err != nil {
				t.Fatal(err)
			}
			want := snapshot(ref)

			// Snapshot mid-run via a cycle-mark watch at half the run.
			src := vm.New(vm.Config{})
			if err := src.Load(c.Prog.Image); err != nil {
				t.Fatal(err)
			}
			src.SetInput(cases[ci].Input.Ints)
			src.SetByteInput(cases[ci].Input.Bytes)
			var snap *vm.Snapshot
			src.SetWatch(nil, []uint64{want.cycles / 2}, func(m *vm.Machine, pc uint32, cycleMark bool) {
				if snap == nil {
					snap = m.Snapshot()
				}
			})
			if _, err := src.Run(); err != nil {
				t.Fatal(err)
			}
			if got := snapshot(src); !got.equal(want) {
				t.Fatalf("%s case %d: watched run diverged: %+v != %+v", p.Name, ci, got, want)
			}
			if snap == nil {
				t.Fatalf("%s case %d: watch hook never fired", p.Name, ci)
			}

			// Restore onto a different, previously used machine.
			dst := vm.New(vm.Config{})
			if err := dst.Load(c.Prog.Image); err != nil {
				t.Fatal(err)
			}
			dst.SetInput(cases[(ci+1)%len(cases)].Input.Ints)
			dst.SetByteInput(cases[(ci+1)%len(cases)].Input.Bytes)
			if _, err := dst.Run(); err != nil {
				t.Fatal(err)
			}
			if err := dst.Restore(snap); err != nil {
				t.Fatalf("%s case %d: restore: %v", p.Name, ci, err)
			}
			if dst.Cycles() != snap.Cycles() {
				t.Fatalf("%s case %d: restored cycles %d != snapshot cycles %d", p.Name, ci, dst.Cycles(), snap.Cycles())
			}
			if _, err := dst.Run(); err != nil {
				t.Fatal(err)
			}
			if got := snapshot(dst); !got.equal(want) {
				t.Fatalf("%s case %d: restored run %+v != uninterrupted %+v", p.Name, ci, got, want)
			}
		}
	}
}

// TestSnapshotSharesUnchangedPages pins the copy-on-write design: a second
// snapshot taken immediately after the first carries the same pages without
// recopying (its page set is identical), and restoring either yields the
// same memory.
func TestSnapshotSharesUnchangedPages(t *testing.T) {
	m, _, cs := loadFor(t, "JB.team11")
	m.SetInput(cs.Input.Ints)
	m.SetByteInput(cs.Input.Bytes)
	var snaps []*vm.Snapshot
	m.SetWatch(nil, []uint64{100, 101}, func(mm *vm.Machine, pc uint32, cycleMark bool) {
		snaps = append(snaps, mm.Snapshot())
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 2 {
		t.Fatalf("expected 2 snapshots, got %d", len(snaps))
	}
	a, b := snaps[0], snaps[1]
	if a.Pages() == 0 {
		t.Fatal("first snapshot carries no pages; the sharing check is vacuous")
	}
	// One instruction apart, the page sets can differ by at most the pages
	// that instruction wrote; sharing keeps the counts nearly identical
	// rather than doubling the copies.
	if b.Pages() < a.Pages() {
		t.Fatalf("second snapshot dropped pages: %d -> %d", a.Pages(), b.Pages())
	}
}

// TestRestoreAfterInjectorMutations proves Restore un-does everything an
// armed session leaves behind: text corruption (and its decode-cache
// shadow), hooks, breakpoints. The restored machine must behave exactly
// like the fault-free run from the snapshot point.
func TestRestoreAfterInjectorMutations(t *testing.T) {
	m, _, cs := loadFor(t, "C.team1")
	m.SetInput(cs.Input.Ints)
	m.SetByteInput(cs.Input.Bytes)
	var snap *vm.Snapshot
	m.SetWatch(nil, []uint64{50}, func(mm *vm.Machine, pc uint32, cycleMark bool) {
		if snap == nil {
			snap = mm.Snapshot()
		}
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	want := snapshot(m)
	if snap == nil {
		t.Fatal("no snapshot taken")
	}

	// Wreck the machine like a hostile injector session.
	m.SetTextWritable(true)
	if err := m.WriteWord(vm.TextBase, 0xffffffff); err != nil {
		t.Fatal(err)
	}
	m.SetTextWritable(false)
	if err := m.PlantDecoded(vm.TextBase+4, 0xffffffff); err != nil {
		t.Fatal(err)
	}
	m.SetFetchHook(func(addr, word uint32) uint32 { return 0xffffffff })
	m.SetStoreHook(func(addr, value uint32) uint32 { return value + 1 })
	if err := m.SetIABR(0, vm.TextBase); err != nil {
		t.Fatal(err)
	}
	m.SetIABRHook(func(mm *vm.Machine, addr uint32) { mm.SetReg(3, 0xdead) })

	if err := m.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := snapshot(m); !got.equal(want) {
		t.Fatalf("restored-after-corruption run %+v != clean %+v", got, want)
	}
}

// TestPlantDecodedMatchesFetchHook pins the lean-arm foundation: planting a
// corrupted word in the decode cache produces the same run as the
// every-cycle fetch-hook substitution of the same word at the same address.
func TestPlantDecodedMatchesFetchHook(t *testing.T) {
	m, p, cs := loadFor(t, "JB.team6")
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the 5th text word into a nop via the fetch hook.
	target := uint32(vm.TextBase + 4*4)
	nop := vm.Encode(vm.Inst{Op: vm.OpNop})
	m.SetInput(cs.Input.Ints)
	m.SetByteInput(cs.Input.Bytes)
	m.SetFetchHook(func(addr, word uint32) uint32 {
		if addr == target {
			return nop
		}
		return word
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	want := snapshot(m)

	planted := vm.New(vm.Config{})
	if err := planted.Load(c.Prog.Image); err != nil {
		t.Fatal(err)
	}
	planted.SetInput(cs.Input.Ints)
	planted.SetByteInput(cs.Input.Bytes)
	if err := planted.PlantDecoded(target, nop); err != nil {
		t.Fatal(err)
	}
	if _, err := planted.Run(); err != nil {
		t.Fatal(err)
	}
	if got := snapshot(planted); !got.equal(want) {
		t.Fatalf("planted run %+v != fetch-hook run %+v", got, want)
	}

	// Reset must un-plant: the machine behaves cleanly again.
	if err := planted.Reset(); err != nil {
		t.Fatal(err)
	}
	planted.SetInput(cs.Input.Ints)
	planted.SetByteInput(cs.Input.Bytes)
	if _, err := planted.Run(); err != nil {
		t.Fatal(err)
	}
	clean := vm.New(vm.Config{})
	if err := clean.Load(c.Prog.Image); err != nil {
		t.Fatal(err)
	}
	clean.SetInput(cs.Input.Ints)
	clean.SetByteInput(cs.Input.Bytes)
	if _, err := clean.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := snapshot(planted), snapshot(clean); !got.equal(want) {
		t.Fatalf("reset did not un-plant: %+v != %+v", got, want)
	}
}

// TestWatchSemantics pins the watch contract the golden runner depends on:
// the address hook fires once per execution, before the instruction's cycle
// is counted, so a snapshot taken there resumes by executing the watched
// instruction exactly once.
func TestWatchSemantics(t *testing.T) {
	m, _, cs := loadFor(t, "JB.team11")
	m.SetInput(cs.Input.Ints)
	m.SetByteInput(cs.Input.Bytes)
	entry := m.PC()
	var hits int
	var atCycle uint64
	m.SetWatch([]uint32{entry}, nil, func(mm *vm.Machine, pc uint32, cycleMark bool) {
		if pc != entry || cycleMark {
			t.Fatalf("unexpected watch fire: pc=%#x cycleMark=%v", pc, cycleMark)
		}
		if hits == 0 {
			atCycle = mm.Cycles()
		}
		hits++
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if hits == 0 {
		t.Fatal("entry watch never fired")
	}
	if atCycle != 0 {
		t.Fatalf("entry instruction watched at cycle %d, want 0 (before the first cycle is counted)", atCycle)
	}
}

// TestRestoreRejectsIncompatibleImage guards the cross-machine contract.
func TestRestoreRejectsIncompatibleImage(t *testing.T) {
	a, _, csA := loadFor(t, "JB.team11")
	a.SetInput(csA.Input.Ints)
	a.SetByteInput(csA.Input.Bytes)
	snap := a.Snapshot()
	if snap == nil {
		t.Fatal("snapshot of a loaded machine returned nil")
	}
	b, _, _ := loadFor(t, "C.team1")
	if err := b.Restore(snap); err == nil {
		t.Fatal("restore accepted a snapshot from a different image")
	}
	unloaded := vm.New(vm.Config{})
	if err := unloaded.Restore(snap); err == nil {
		t.Fatal("restore accepted an unloaded machine")
	}
	if unloaded.Snapshot() != nil {
		t.Fatal("snapshot of an unloaded machine must be nil")
	}
}

// TestSnapshotCapturesIO confirms the I/O streams and their positions are
// part of the checkpoint: output produced before the snapshot reappears
// after restore, and input is re-consumed from the snapshot position.
func TestSnapshotCapturesIO(t *testing.T) {
	m, p, cs := loadFor(t, "SOR")
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	m.SetInput(cs.Input.Ints)
	m.SetByteInput(cs.Input.Bytes)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	full := m.Output()
	cycles := m.Cycles()
	if len(full) == 0 {
		t.Fatal("SOR produced no output; the I/O check is vacuous")
	}

	src := vm.New(vm.Config{})
	if err := src.Load(c.Prog.Image); err != nil {
		t.Fatal(err)
	}
	src.SetInput(cs.Input.Ints)
	src.SetByteInput(cs.Input.Bytes)
	var snap *vm.Snapshot
	src.SetWatch(nil, []uint64{cycles * 3 / 4}, func(mm *vm.Machine, pc uint32, cycleMark bool) {
		if snap == nil {
			snap = mm.Snapshot()
		}
	})
	if _, err := src.Run(); err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("no snapshot taken")
	}
	if err := src.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src.Output(), full) {
		t.Fatalf("restored run output %q != full run output %q", src.Output(), full)
	}
}

// TestSnapshotChecksum pins the integrity-hash contract behind degraded-mode
// checkpointing: the checksum is stable across recomputation, identical for
// snapshots of identical machine state taken on different machines, and
// sensitive to every class of state a restore would resurrect.
func TestSnapshotChecksum(t *testing.T) {
	m, p, cs := loadFor(t, "JB.team11")
	m.SetInput(cs.Input.Ints)
	m.SetByteInput(cs.Input.Bytes)
	var snap *vm.Snapshot
	m.SetWatch(nil, []uint64{200}, func(mm *vm.Machine, pc uint32, cycleMark bool) {
		if snap == nil {
			snap = mm.Snapshot()
		}
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("watch hook never fired")
	}
	sum := snap.Checksum()
	if sum != snap.Checksum() {
		t.Fatal("checksum not stable across recomputation")
	}

	// A second machine replaying the same prefix produces a snapshot with
	// the same checksum: the hash covers content, not identity.
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	m2 := vm.New(vm.Config{})
	if err := m2.Load(c.Prog.Image); err != nil {
		t.Fatal(err)
	}
	m2.SetInput(cs.Input.Ints)
	m2.SetByteInput(cs.Input.Bytes)
	var snap2 *vm.Snapshot
	m2.SetWatch(nil, []uint64{200}, func(mm *vm.Machine, pc uint32, cycleMark bool) {
		if snap2 == nil {
			snap2 = mm.Snapshot()
		}
	})
	if _, err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	if snap2.Checksum() != sum {
		t.Fatal("identical state hashed differently on another machine")
	}

	// A snapshot one cycle later must differ (registers/PC moved).
	var later *vm.Snapshot
	m3 := vm.New(vm.Config{})
	if err := m3.Load(c.Prog.Image); err != nil {
		t.Fatal(err)
	}
	m3.SetInput(cs.Input.Ints)
	m3.SetByteInput(cs.Input.Bytes)
	m3.SetWatch(nil, []uint64{201}, func(mm *vm.Machine, pc uint32, cycleMark bool) {
		if later == nil {
			later = mm.Snapshot()
		}
	})
	if _, err := m3.Run(); err != nil {
		t.Fatal(err)
	}
	if later.Checksum() == sum {
		t.Fatal("snapshots of different cycles collide")
	}
}
