// Command progrun compiles and runs one target program of the suite on the
// virtual machine, with inputs from the command line. It is the debugging
// front door for the toolchain.
//
// Usage:
//
//	progrun [-faulty] [-disasm] [-trace-cycles] <program> [int...]
//	progrun -string "seed len text" JB.team6     # JamesB byte input
//	progrun -programs                            # list suite programs
//	progrun -selftest 500 -workers 8 C.team1     # batch-run against the oracle
//
// Camelot example:
//
//	progrun C.team1 2 3 3 0 0 7 7    # 2 knights at (0,0) and (7,7), king (3,3)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/asm"
	"repro/internal/campaign"
	"repro/internal/cc"
	"repro/internal/parallel"
	"repro/internal/programs"
	"repro/internal/vm"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "progrun:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("progrun", flag.ContinueOnError)
	faulty := fs.Bool("faulty", false, "run the program's original (buggy) version")
	disasm := fs.Bool("disasm", false, "print the disassembly instead of running")
	pretty := fs.Bool("pretty", false, "print the normalised (pretty-printed) source instead of running")
	listP := fs.Bool("programs", false, "list the program suite and exit")
	strIn := fs.String("string", "", "byte input for the character stream (JamesB programs)")
	trace := fs.Int("trace", 0, "record and print the last N executed instructions")
	selftest := fs.Int("selftest", 0, "run N generated inputs against the oracle instead of one run")
	seed := fs.Int64("seed", 99, "random seed for -selftest input generation")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "parallel workers for -selftest (1 = serial)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "progrun:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "progrun:", err)
			}
		}()
	}
	if *listP {
		for _, p := range programs.All() {
			fault := "-"
			if p.Fault != nil {
				fault = p.Fault.ODCType.String()
			}
			fmt.Printf("%-10s %-8s %4d lines  fault: %-12s %s\n", p.Name, p.Kind, p.LineCount(), fault, p.Features)
		}
		return nil
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("no program given (try -programs)")
	}
	p, ok := programs.ByName(rest[0])
	if !ok {
		return fmt.Errorf("unknown program %q (try -programs)", rest[0])
	}
	c, err := p.Compile()
	if *faulty {
		c, err = p.CompileFaulty()
	}
	if err != nil {
		return err
	}
	if *disasm {
		fmt.Print(asm.Disassemble(c.Prog))
		return nil
	}
	if *pretty {
		fmt.Print(cc.Print(c.AST))
		return nil
	}
	if *selftest > 0 {
		return runSelftest(p, c, *selftest, *seed, *workers)
	}

	var ints []int32
	for _, a := range rest[1:] {
		v, err := strconv.ParseInt(a, 10, 32)
		if err != nil {
			return fmt.Errorf("bad integer input %q", a)
		}
		ints = append(ints, int32(v))
	}
	m := vm.New(vm.Config{})
	if err := m.Load(c.Prog.Image); err != nil {
		return err
	}
	m.SetInput(ints)
	m.SetByteInput([]byte(*strIn))
	if *trace > 0 {
		m.EnableTrace(*trace)
	}
	state, err := m.Run()
	if err != nil {
		return err
	}
	os.Stdout.Write(m.Output())
	if !strings.HasSuffix(string(m.Output()), "\n") {
		fmt.Println()
	}
	switch state {
	case vm.StateHalted:
		fmt.Fprintf(os.Stderr, "[halted, exit %d, %d cycles]\n", m.ExitStatus(), m.Cycles())
	case vm.StateCrashed:
		exc, at := m.Exception()
		fmt.Fprintf(os.Stderr, "[crashed: %s at %#x after %d cycles]\n", exc, at, m.Cycles())
	case vm.StateHung:
		fmt.Fprintf(os.Stderr, "[hung after %d cycles]\n", m.Cycles())
	}
	if *trace > 0 {
		fmt.Fprintln(os.Stderr, "trace (oldest first):")
		for _, e := range m.Trace() {
			fmt.Fprintf(os.Stderr, "  %s\n", asm.FormatWord(c.Prog, e.PC, e.Word))
		}
	}
	return nil
}

// runSelftest batch-runs the compiled program over n generated inputs and
// checks every output against the oracle — the fast way to confirm a
// (possibly faulty) build still behaves before pointing a campaign at it.
func runSelftest(p *programs.Program, c *cc.Compiled, n int, seed int64, workers int) error {
	workers = parallel.DefaultWorkers(workers)
	cases, err := workload.Generate(p.Kind, n, seed)
	if err != nil {
		return err
	}
	// SIGINT/SIGTERM drains in-flight runs instead of killing them mid-case.
	ctx, stopSignals := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stopSignals()
	start := time.Now()
	results, err := campaign.RunCleanBatchCtx(ctx, c, cases, vm.DefaultMaxCycles, workers)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	counts := make(map[campaign.FailureMode]int)
	firstWrong := -1
	for i, r := range results {
		counts[r.Mode]++
		if r.Mode != campaign.Correct && firstWrong < 0 {
			firstWrong = i
		}
	}
	fmt.Printf("%s: %d runs in %s (%d workers): %d correct, %d incorrect, %d hang, %d crash\n",
		p.Name, len(results), elapsed.Round(time.Millisecond), workers,
		counts[campaign.Correct], counts[campaign.Incorrect], counts[campaign.Hang], counts[campaign.Crash])
	if firstWrong >= 0 {
		r := results[firstWrong]
		fmt.Printf("first deviation at case %d (mode %s, state %s):\n  input: %v %q\n  got:    %q\n  golden: %q\n",
			firstWrong, r.Mode, r.State,
			cases[firstWrong].Input.Ints, cases[firstWrong].Input.Bytes,
			r.Output, cases[firstWrong].Golden)
		return fmt.Errorf("%d of %d runs deviated from the oracle", len(results)-counts[campaign.Correct], len(results))
	}
	return nil
}
