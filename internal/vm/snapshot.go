package vm

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
)

// Snapshot/Restore is the mechanism behind golden-run checkpointing: the
// campaign executor restores a worker machine to the state a fault-free run
// had just before the injection's first trigger arrival, instead of
// rebooting and replaying the whole prefix. A snapshot holds only the pages
// written since Load — at 1024-byte granularity — so both taking and
// restoring one cost O(dirty pages), not O(memory size). Consecutive
// snapshots of the same machine share the copies of pages that did not
// change in between (copy-on-write), which keeps a golden run's checkpoint
// chain cheap even when checkpoints are cycles apart.

// Snapshot is an immutable copy of a machine's execution state: registers,
// CR, LR, PC, cycle counter, exception/exit state, I/O streams with their
// positions, the dirty pages of memory, and whether the text segment (and
// hence the decoded-instruction cache) had been modified. It is safe to
// restore concurrently onto any number of machines loaded with the same
// image.
//
// Deliberately excluded: the watchdog budget (callers set it per run via
// SetMaxCycles), hooks, breakpoint registers, watchpoints and the trace
// ring. Restore clears all of those, exactly like Reset, so an injector
// session must be armed after Restore — never before.
type Snapshot struct {
	regs       [32]uint32
	pc, lr     uint32
	cr         [8]crField
	brk        uint32
	state      State
	exc        Exc
	excAt      uint32
	exitStatus int32
	cycles     uint64

	input   []int32
	inPos   int
	inBytes []byte
	inBPos  int
	output  []byte

	// pages holds a copy of every page whose content differs (or may
	// differ) from the pristine image, keyed by page index. Entries may be
	// shared with earlier snapshots of the same machine.
	pages     map[uint32][]byte
	textDirty bool

	// textMods/textModsOvf carry the machine's precise text-modification
	// list (see the Machine fields), so Restore can re-decode exactly the
	// entries where either side of the restore diverged from the image
	// instead of rebuilding the whole decoded cache.
	textMods    []uint32
	textModsOvf bool

	// Image geometry, to reject restoring onto an incompatible machine.
	memSize  int
	textEnd  uint32
	dataBase uint32
	textLen  int
}

// Cycles returns the value of the machine's cycle counter at snapshot time —
// with the step ordering of watchpoints, the number of completed
// instructions before the instruction the machine was about to execute.
func (s *Snapshot) Cycles() uint64 { return s.cycles }

// Pages returns the number of memory pages the snapshot carries (shared or
// owned); a cost observability hook for tests and stats.
func (s *Snapshot) Pages() int { return len(s.pages) }

// Checksum fingerprints the snapshot's full restorable state: registers,
// control state, I/O streams, geometry and every carried page (in address
// order, so the map's iteration order cannot leak in). Restoring a snapshot
// whose current Checksum differs from the one recorded when it was taken
// would resurrect corrupted machine state, which is why the campaign
// executor verifies it before every fast-forward and degrades to straight
// execution on mismatch.
func (s *Snapshot) Checksum() uint64 {
	h := fnv.New64a()
	var b [8]byte
	w32 := func(v uint32) {
		binary.LittleEndian.PutUint32(b[:4], v)
		h.Write(b[:4])
	}
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	for _, r := range s.regs {
		w32(r)
	}
	w32(s.pc)
	w32(s.lr)
	for _, f := range s.cr {
		// crField's bit layout (lt=1, gt=2, eq=4) is this wire encoding.
		w32(uint32(f))
	}
	w32(s.brk)
	w32(uint32(s.state))
	w32(uint32(s.exc))
	w32(s.excAt)
	w32(uint32(s.exitStatus))
	w64(s.cycles)

	w32(uint32(len(s.input)))
	for _, v := range s.input {
		w32(uint32(v))
	}
	w32(uint32(s.inPos))
	w32(uint32(len(s.inBytes)))
	h.Write(s.inBytes)
	w32(uint32(s.inBPos))
	w32(uint32(len(s.output)))
	h.Write(s.output)

	if s.textDirty {
		w32(1)
	} else {
		w32(0)
	}
	if s.textModsOvf {
		w32(1)
	} else {
		w32(0)
	}
	w32(uint32(len(s.textMods)))
	for _, i := range s.textMods {
		w32(i)
	}
	w32(uint32(s.memSize))
	w32(s.textEnd)
	w32(s.dataBase)
	w32(uint32(s.textLen))

	idx := make([]uint32, 0, len(s.pages))
	for pi := range s.pages {
		idx = append(idx, pi)
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	for _, pi := range idx {
		w32(pi)
		h.Write(s.pages[pi])
	}
	return h.Sum64()
}

// Snapshot captures the machine's current execution state. It returns nil if
// no program is loaded. Taking a snapshot does not disturb the run: it may
// be called from a watch hook mid-execution and the machine continues
// exactly as if it had not been called.
func (m *Machine) Snapshot() *Snapshot {
	if m.state == 0 {
		return nil
	}
	s := &Snapshot{
		regs:        m.regs,
		pc:          m.pc,
		lr:          m.lr,
		cr:          m.cr,
		brk:         m.brk,
		state:       m.state,
		exc:         m.exc,
		excAt:       m.excAt,
		exitStatus:  m.exitStatus,
		cycles:      m.cycles,
		input:       append([]int32(nil), m.input...),
		inPos:       m.inPos,
		inBytes:     append([]byte(nil), m.inBytes...),
		inBPos:      m.inBPos,
		output:      append([]byte(nil), m.output...),
		textDirty:   m.textDirty,
		textMods:    append([]uint32(nil), m.textMods...),
		textModsOvf: m.textModsOvf,
		memSize:     len(m.mem),
		textEnd:     m.textEnd,
		dataBase:    m.dataBase,
		textLen:     len(m.img.Text),
	}
	s.pages = make(map[uint32][]byte, len(m.dirtyPages))
	for _, pi := range m.dirtyPages {
		// A page untouched since the previous snapshot shares that
		// snapshot's copy instead of being copied again.
		if m.pageFlags[pi]&pageSnap == 0 && m.prevSnap != nil {
			if pg, ok := m.prevSnap.pages[pi]; ok {
				s.pages[pi] = pg
				continue
			}
		}
		lo := pi << pageShift
		hi := lo + pageSize
		if hi > uint32(len(m.mem)) {
			hi = uint32(len(m.mem))
		}
		pg := make([]byte, hi-lo)
		copy(pg, m.mem[lo:hi])
		s.pages[pi] = pg
		m.pageFlags[pi] = pageBoot
	}
	m.prevSnap = s
	return s
}

// Restore rewinds the machine to the snapshot's state. The machine must be
// loaded with the same image the snapshot was taken from (any machine for
// the same compiled program qualifies, not just the one that produced it).
//
// Memory is restored page-wise: pages dirty on this machine but absent from
// the snapshot revert to the pristine image, then the snapshot's pages are
// copied in. Hooks, breakpoint registers, watchpoints, trace and text
// writability are cleared as by Reset, so injector sessions must re-arm on
// the restored machine. A snapshot taken mid-run (inside a watch hook)
// restores to StateReady, so Run resumes from the snapshot point; the cycle
// counter is restored too, keeping watchdog semantics identical to a full
// replay. The watchdog budget itself is not part of the snapshot — set it
// with SetMaxCycles after Restore.
func (m *Machine) Restore(s *Snapshot) error {
	if m.state == 0 {
		return ErrNotLoaded
	}
	if s == nil {
		return fmt.Errorf("vm: restore of nil snapshot")
	}
	if len(m.mem) != s.memSize || m.textEnd != s.textEnd || m.dataBase != s.dataBase || len(m.img.Text) != s.textLen {
		return fmt.Errorf("vm: snapshot is from an incompatible machine or image")
	}

	for _, pi := range m.dirtyPages {
		if _, ok := s.pages[pi]; !ok {
			m.refreshPage(pi)
			m.pageFlags[pi] = 0
		}
	}
	m.dirtyPages = m.dirtyPages[:0]
	for pi, pg := range s.pages {
		copy(m.mem[pi<<pageShift:], pg)
		// Dirty since boot, clean since "the last snapshot" (s itself), so
		// a future Snapshot of this machine can share the page with s.
		m.pageFlags[pi] = pageBoot
		m.dirtyPages = append(m.dirtyPages, pi)
	}
	m.prevSnap = s

	m.regs = s.regs
	m.pc = s.pc
	m.lr = s.lr
	m.cr = s.cr
	m.brk = s.brk
	// stackLim is a Load-time constant of the image (SysBrk moves brk but
	// never the stack guard), so the loaded machine's value already matches.
	m.state = s.state
	if s.state == StateRunning {
		m.state = StateReady
	}
	m.exc = s.exc
	m.excAt = s.excAt
	m.exitStatus = s.exitStatus
	m.cycles = s.cycles
	m.quotaHit = false
	m.input = append(m.input[:0], s.input...)
	m.inPos = s.inPos
	m.inBytes = append(m.inBytes[:0], s.inBytes...)
	m.inBPos = s.inBPos
	m.output = append(m.output[:0], s.output...)

	// The decoded cache mirrors text memory; re-sync it from the restored
	// memory wherever either side of the restore had text modifications
	// (planted entries revert, since plants never touch memory; written
	// words re-decode to their corrupted form). The union of the two
	// modification lists is exhaustive — every unlisted entry matches the
	// pristine image on both sides — so the whole-cache rebuild only runs
	// when a list overflowed. Blocks compiled over a re-decoded entry are
	// dropped either way.
	if m.textModsOvf || s.textModsOvf {
		for i := range m.decoded {
			m.setDecoded(uint32(i), m.getWordRaw(m.textBase+uint32(i)*WordSize))
		}
		m.clearBlocks()
		m.decodeRebuilds++
	} else {
		for _, i := range m.textMods {
			m.setDecoded(i, m.getWordRaw(m.textBase+i*WordSize))
			m.invalidateBlocksAt(i)
		}
		for _, i := range s.textMods {
			m.setDecoded(i, m.getWordRaw(m.textBase+i*WordSize))
			m.invalidateBlocksAt(i)
		}
	}
	// Adopt the snapshot's (conservative) view: restoring drops plants, but
	// textDirty/textMods only promise "may differ", exactly as before.
	m.textDirty = s.textDirty
	m.textMods = append(m.textMods[:0], s.textMods...)
	m.textModsOvf = s.textModsOvf

	m.iabr = [NumIABR]uint32{}
	m.iabrSet = [NumIABR]bool{}
	m.iabrAny = false
	m.iabrHook = nil
	m.fetchHook = nil
	m.loadHook = nil
	m.storeHook = nil
	m.trapHook = nil
	m.trace = nil
	m.textWritable = false
	m.clearWatch()
	return nil
}

// PlantDecoded replaces the decoded-cache entry for one text address with
// the decoding of word, leaving text memory untouched. This is the
// zero-overhead form of an every-execution instruction-bus corruption: the
// straight engine's fetch hook intercepts every cycle to substitute the word
// at one address, while a planted entry executes at full speed with
// bit-identical semantics (an undecodable word raises ExcIllegal at the
// address, exactly like a corrupted fetch). Reset and Restore rebuild the
// cache from memory, un-planting it.
func (m *Machine) PlantDecoded(addr, word uint32) error {
	if addr%WordSize != 0 || addr < m.textBase || addr >= m.textEnd {
		return fmt.Errorf("vm: plant outside text at %#x", addr)
	}
	i := (addr - m.textBase) / WordSize
	m.setDecoded(i, word)
	m.noteTextMod(i)
	m.invalidateBlocksAt(i)
	return nil
}
