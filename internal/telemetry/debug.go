package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// expvarReg is the registry the process-wide expvar "telemetry" variable
// reads from; swapped by StartDebugServer. Publishing happens once — expvar
// panics on duplicate names — and surviving a registry swap matters for
// tests that start several servers.
var (
	expvarReg  atomic.Pointer[Registry]
	expvarOnce sync.Once
)

// fleetSource feeds /fleet. It is process-wide like the expvar registry:
// the debug server starts before the campaign (and so before any fabric
// coordinator) exists, so the coordinator installs its live view late via
// SetFleetSource. Nil means no fleet is running.
var fleetSource atomic.Pointer[func() any]

// SetFleetSource installs (or, with nil, removes) the process-wide /fleet
// snapshot source. The function must be safe to call from any goroutine;
// its return value is rendered as JSON.
func SetFleetSource(fn func() any) {
	if fn == nil {
		fleetSource.Store(nil)
		return
	}
	fleetSource.Store(&fn)
}

// DebugServer is a running debug HTTP endpoint. Close stops it.
type DebugServer struct {
	Addr string // actual listen address (useful with ":0")
	ln   net.Listener
	srv  *http.Server
}

// StartDebugServer serves the observability surfaces on addr (host:port;
// port 0 picks a free one):
//
//	/metrics     Prometheus text exposition of the registry (on a fabric
//	             coordinator this includes the host-labelled federated series)
//	/fleet       live fleet view as JSON (per-host ranges, throughput,
//	             heartbeat lag); {"hosts":null} when no fleet is running
//	/healthz     liveness probe: always 200 "ok"
//	/debug/vars  expvar (Go runtime memstats plus the registry snapshot)
//	/debug/pprof net/http/pprof profiles (heap, goroutine, profile, trace…)
//
// The server runs on its own mux — nothing leaks onto http.DefaultServeMux —
// and on its own goroutine; it never blocks campaign execution.
func StartDebugServer(addr string, reg *Registry) (*DebugServer, error) {
	expvarReg.Store(reg)
	expvarOnce.Do(func() {
		expvar.Publish("telemetry", expvar.Func(func() any {
			return expvarReg.Load().Counters()
		}))
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/fleet", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var snap any
		if fn := fleetSource.Load(); fn != nil {
			snap = (*fn)()
		}
		if snap == nil {
			snap = map[string]any{"hosts": nil}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "endpoints: /metrics /fleet /healthz /debug/vars /debug/pprof/")
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: debug server: %w", err)
	}
	d := &DebugServer{Addr: ln.Addr().String(), ln: ln, srv: &http.Server{Handler: mux}}
	go d.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return d, nil
}

// Close shuts the server down immediately (in-flight scrapes are dropped —
// the debug surface has no delivery guarantees).
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	return d.srv.Close()
}
