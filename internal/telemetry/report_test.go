package telemetry

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestReportRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("campaign_units_executed_total").Add(7)
	reg.Histogram("campaign_unit_latency_us", DefaultLatencyBuckets).Observe(42)
	tr := NewTracer(8)
	tr.Emit(Event{Kind: KindVerdict, Mode: "correct"})
	tel := &Telemetry{Reg: reg, Trace: tr}

	r := NewReport("swifi")
	r.Params["experiment"] = "fig7"
	r.Units = UnitStats{Total: 10, Executed: 7, Replayed: 3}
	r.Tallies = Tally{"correct": 8, "crash": 2}
	r.Group("program")["JB.team1"] = Tally{"correct": 8, "crash": 2}
	r.FillTelemetry(tel)
	r.ElapsedMS = 1500

	path := filepath.Join(t.TempDir(), "report.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "swifi" || got.Units != r.Units || got.ElapsedMS != 1500 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Tallies["correct"] != 8 || got.Tallies["crash"] != 2 {
		t.Fatalf("tallies = %+v", got.Tallies)
	}
	if got.Counters["campaign_units_executed_total"] != 7 {
		t.Fatalf("counters = %+v", got.Counters)
	}
	if len(got.Histograms) != 1 || got.Histograms[0].Count != 1 {
		t.Fatalf("histograms = %+v", got.Histograms)
	}
	if got.Trace[KindVerdict] != 1 {
		t.Fatalf("trace = %+v", got.Trace)
	}
	if got.Group("program")["JB.team1"]["correct"] != 8 {
		t.Fatalf("groups = %+v", got.Groups)
	}
	if got.Version.Go == "" {
		t.Fatal("version not stamped")
	}
}

func TestFillTelemetryNil(t *testing.T) {
	r := NewReport("x")
	r.FillTelemetry(nil)
	if r.Counters != nil || r.Histograms != nil || r.Trace != nil {
		t.Fatal("nil telemetry must not fill anything")
	}
}

func TestTallyAdd(t *testing.T) {
	a := Tally{"correct": 1, "hang": 2}
	a.Add(Tally{"correct": 3, "crash": 1})
	if a["correct"] != 4 || a["hang"] != 2 || a["crash"] != 1 {
		t.Fatalf("got %+v", a)
	}
}

func TestFormatTally(t *testing.T) {
	got := FormatTally(Tally{"correct": 5, "crash": 1, "hostfault": 2})
	want := "correct 5, incorrect 0, hang 0, crash 1, hostfault 2"
	if got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
	// Zero-valued extras are dropped; base modes always shown.
	got = FormatTally(Tally{"hostfault": 0})
	want = "correct 0, incorrect 0, hang 0, crash 0"
	if got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestVersionString(t *testing.T) {
	v := Version{Module: "(devel)", Revision: "abcdef0123456789", Modified: true, Go: "go1.22.0"}
	s := v.String()
	for _, want := range []string{"(devel)", "rev abcdef012345", "(modified)", "go1.22.0"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	if BinaryVersion().Go == "" {
		t.Fatal("BinaryVersion must report the toolchain")
	}
}
