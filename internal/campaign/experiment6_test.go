package campaign_test

import (
	"testing"

	"repro/internal/campaign"
	"repro/internal/fault"
)

// smallCfg keeps campaign tests fast: two small programs, few locations,
// few cases.
func smallCfg() campaign.Config {
	return campaign.Config{
		Programs:      []string{"JB.team11", "JB.team6"},
		CasesPerFault: 4,
		ChosenAssign:  map[string]int{"JB.team11": 3, "JB.team6": 3},
		ChosenCheck:   map[string]int{"JB.team11": 3, "JB.team6": 3},
		Seed:          5,
	}
}

func TestClassCampaignSmall(t *testing.T) {
	res, err := campaign.Run(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs == 0 {
		t.Fatal("no runs executed")
	}
	// Plan arithmetic: injected = faults × cases.
	if len(res.Plans) != 4 {
		t.Fatalf("plans = %d, want 4 (2 programs × 2 classes)", len(res.Plans))
	}
	totalInjected := 0
	for _, pl := range res.Plans {
		if pl.Chosen > pl.Possible {
			t.Errorf("%s/%v: chosen %d > possible %d", pl.Program, pl.Class, pl.Chosen, pl.Possible)
		}
		if pl.Class == fault.ClassAssignment && pl.Faults != pl.Chosen*4 {
			t.Errorf("%s assignment: faults = %d, want chosen×4 = %d", pl.Program, pl.Faults, pl.Chosen*4)
		}
		if pl.Injected != pl.Faults*4 {
			t.Errorf("%s/%v: injected = %d, want faults×cases = %d", pl.Program, pl.Class, pl.Injected, pl.Faults*4)
		}
		totalInjected += pl.Injected
	}
	if res.Runs != totalInjected {
		t.Errorf("runs = %d, want %d", res.Runs, totalInjected)
	}
	// Every entry's counts must sum to its runs.
	for _, e := range res.Entries {
		sum := 0
		for _, n := range e.Counts {
			sum += n
		}
		if sum != e.Runs {
			t.Errorf("%s/%s/%s: counts sum %d != runs %d", e.Program, e.Class, e.ErrType, sum, e.Runs)
		}
		if e.Activated > e.Runs {
			t.Errorf("%s/%s/%s: activated %d > runs %d", e.Program, e.Class, e.ErrType, e.Activated, e.Runs)
		}
	}
}

func TestClassCampaignDeterministic(t *testing.T) {
	cfg := smallCfg()
	cfg.Programs = []string{"JB.team11"}
	a, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Entries) != len(b.Entries) {
		t.Fatalf("entry counts differ: %d vs %d", len(a.Entries), len(b.Entries))
	}
	for i := range a.Entries {
		ea, eb := a.Entries[i], b.Entries[i]
		if ea.Program != eb.Program || ea.ErrType != eb.ErrType || ea.Runs != eb.Runs {
			t.Fatalf("entry %d differs: %+v vs %+v", i, ea, eb)
		}
		for m, n := range ea.Counts {
			if eb.Counts[m] != n {
				t.Errorf("entry %d mode %v: %d vs %d", i, m, n, eb.Counts[m])
			}
		}
	}
}

func TestCampaignAggregations(t *testing.T) {
	res, err := campaign.Run(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	byProg := res.ByProgram(fault.ClassAssignment)
	if len(byProg) != 2 {
		t.Fatalf("ByProgram has %d programs, want 2", len(byProg))
	}
	byType := res.ByErrType(fault.ClassAssignment)
	if len(byType) != 4 {
		t.Fatalf("assignment ByErrType has %d types, want 4", len(byType))
	}
	for _, et := range fault.AssignmentErrTypes() {
		if _, ok := byType[string(et)]; !ok {
			t.Errorf("missing error type %s", et)
		}
	}
	total := res.Total(fault.ClassAssignment)
	sum := 0
	for _, d := range byProg {
		sum += d.Runs
	}
	if total.Runs != sum {
		t.Errorf("total runs %d != sum by program %d", total.Runs, sum)
	}
	var pct float64
	for _, m := range campaign.Modes() {
		pct += total.Pct(m)
	}
	if pct < 99.9 || pct > 100.1 {
		t.Errorf("percentages sum to %.2f", pct)
	}
}

// TestInjectedFaultsHitHard is the paper's headline §6 observation: the
// injected faults have a much stronger impact than the real software
// faults — only a small share of runs stays correct, far below the ≥94%
// correct rate of every faulty program in Table 1.
func TestInjectedFaultsHitHard(t *testing.T) {
	cfg := smallCfg()
	cfg.CasesPerFault = 6
	res, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range []fault.Class{fault.ClassAssignment, fault.ClassChecking} {
		d := res.Total(class)
		if d.Runs == 0 {
			t.Fatalf("no %v runs", class)
		}
		if d.Pct(campaign.Correct) > 80 {
			t.Errorf("%v faults: %.1f%% correct; injected faults should hit much harder than real ones",
				class, d.Pct(campaign.Correct))
		}
		if d.Counts[campaign.Incorrect] == 0 {
			t.Errorf("%v faults never produced incorrect results", class)
		}
	}
}

func TestCampaignUnknownProgram(t *testing.T) {
	_, err := campaign.Run(campaign.Config{Programs: []string{"nope"}, CasesPerFault: 1})
	if err == nil {
		t.Fatal("campaign accepted unknown program")
	}
}

func TestHardwareClassCampaign(t *testing.T) {
	cfg := campaign.Config{
		Programs:      []string{"JB.team11"},
		Classes:       []fault.Class{fault.ClassHardware},
		CasesPerFault: 3,
		ChosenAssign:  map[string]int{"JB.team11": 6},
		Seed:          5,
	}
	res, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := res.Total(fault.ClassHardware)
	if d.Runs != 18 {
		t.Fatalf("hardware runs = %d, want 6 faults x 3 cases", d.Runs)
	}
	if len(res.Plans) != 1 || res.Plans[0].Class != fault.ClassHardware {
		t.Fatalf("plans = %+v", res.Plans)
	}
	// Random bit flips must produce at least one abnormal outcome over 18
	// runs (crashes are their signature failure mode).
	if d.Counts[campaign.Correct] == d.Runs {
		t.Error("every hardware fault stayed dormant; plan is not injecting")
	}
}

func TestMetricGuidedCampaign(t *testing.T) {
	cfg := smallCfg()
	cfg.Programs = []string{"JB.team6"}
	cfg.MetricGuided = true
	guided, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MetricGuided = false
	uniform, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if guided.Runs == 0 || uniform.Runs == 0 {
		t.Fatal("empty campaign")
	}
	// Both policies expand the same number of assignment faults per chosen
	// location; the plans may differ in which checking locations (and thus
	// how many applicable error types) they pick.
	for _, res := range []*campaign.Result{guided, uniform} {
		for _, pl := range res.Plans {
			if pl.Class == fault.ClassAssignment && pl.Faults != pl.Chosen*4 {
				t.Errorf("assignment faults = %d, want %d", pl.Faults, pl.Chosen*4)
			}
		}
	}
}

// TestTriggerStudy checks the conclusion-section hypothesis the study was
// built for: with the fault types held fixed, softer triggers (one-shot,
// late activation) leave more runs correct than the always-on §6 trigger.
func TestTriggerStudy(t *testing.T) {
	res, err := campaign.RunTriggerStudy("JB.team11", 3, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dists) != len(res.Policies) || len(res.Policies) != 3 {
		t.Fatalf("policies/dists = %d/%d", len(res.Policies), len(res.Dists))
	}
	for i, d := range res.Dists {
		if d.Runs != res.Faults*res.Cases {
			t.Errorf("%s: runs = %d, want %d", res.Policies[i].Name, d.Runs, res.Faults*res.Cases)
		}
	}
	always := res.Dists[0]
	late := res.Dists[2]
	if late.Pct(campaign.Correct) < always.Pct(campaign.Correct) {
		t.Errorf("late activation (%.1f%% correct) should be gentler than always-on (%.1f%%)",
			late.Pct(campaign.Correct), always.Pct(campaign.Correct))
	}
	if late.Activated >= always.Activated {
		t.Errorf("late activation fired in %d runs, always-on in %d; expected fewer", late.Activated, always.Activated)
	}
	if _, err := campaign.RunTriggerStudy("nope", 1, 1, 1); err == nil {
		t.Error("unknown program accepted")
	}
}
