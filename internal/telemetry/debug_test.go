package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("campaign_units_done_total").Add(12)
	d, err := StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	base := "http://" + d.Addr

	metrics := getBody(t, base+"/metrics")
	if !strings.Contains(metrics, "campaign_units_done_total 12") {
		t.Fatalf("/metrics missing counter:\n%s", metrics)
	}
	vars := getBody(t, base+"/debug/vars")
	if !strings.Contains(vars, "campaign_units_done_total") {
		t.Fatalf("/debug/vars missing telemetry var:\n%s", vars)
	}
	if cmdline := getBody(t, base+"/debug/pprof/cmdline"); cmdline == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
	if idx := getBody(t, base+"/"); !strings.Contains(idx, "/metrics") {
		t.Fatalf("index = %q", idx)
	}
}

func TestDebugServerRestartSwapsRegistry(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("first_total").Inc()
	d1, err := StartDebugServer("127.0.0.1:0", r1)
	if err != nil {
		t.Fatal(err)
	}
	d1.Close()

	r2 := NewRegistry()
	r2.Counter("second_total").Add(2)
	d2, err := StartDebugServer("127.0.0.1:0", r2)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	// expvar "telemetry" must now reflect r2 (Publish happened once, but the
	// registry pointer was swapped).
	var vars string
	deadline := time.Now().Add(2 * time.Second)
	for {
		vars = getBody(t, fmt.Sprintf("http://%s/debug/vars", d2.Addr))
		if strings.Contains(vars, "second_total") || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.Contains(vars, "second_total") {
		t.Fatalf("expvar not swapped to new registry:\n%s", vars)
	}
}
